// Package graph implements the directed social-network substrate the paper
// evaluates on: a compact adjacency-list graph, random-graph generators
// (Erdős–Rényi, Barabási–Albert, configuration model, truncated power-law
// sequences), structural metrics (degrees, k-core, Brandes betweenness,
// clustering, components) and edge-list IO.
//
// Node identifiers are dense integers in [0, NumNodes). The paper
// characterizes users by "social connectivity", which for the directed
// Digg2009 follower graph we take as the out-degree (the number of
// followers a spreader can reach); TotalDegree is also provided.
package graph

import (
	"fmt"
	"sort"
)

// Graph is a directed multigraph with a fixed node count. The zero value is
// not usable; construct with New. Methods that return adjacency slices
// return internal views that must not be mutated.
type Graph struct {
	out [][]int
	in  [][]int
	m   int
}

// New returns an empty directed graph on n nodes.
// It panics if n is negative.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: New with negative n=%d", n))
	}
	return &Graph{
		out: make([][]int, n),
		in:  make([][]int, n),
	}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.out) }

// NumEdges returns the number of directed edges (arcs).
func (g *Graph) NumEdges() int { return g.m }

// AddEdge adds the directed edge u → v. Parallel edges and self-loops are
// permitted (the configuration model may produce them; callers that care
// use Simplify). It returns an error if either endpoint is out of range.
func (g *Graph) AddEdge(u, v int) error {
	if err := g.check(u); err != nil {
		return err
	}
	if err := g.check(v); err != nil {
		return err
	}
	g.out[u] = append(g.out[u], v)
	g.in[v] = append(g.in[v], u)
	g.m++
	return nil
}

// AddUndirected adds both arcs u → v and v → u.
func (g *Graph) AddUndirected(u, v int) error {
	if err := g.AddEdge(u, v); err != nil {
		return err
	}
	return g.AddEdge(v, u)
}

// OutNeighbors returns the targets of edges leaving u as an internal view.
func (g *Graph) OutNeighbors(u int) []int { return g.out[u] }

// InNeighbors returns the sources of edges entering u as an internal view.
func (g *Graph) InNeighbors(u int) []int { return g.in[u] }

// OutDegree returns the number of edges leaving u.
func (g *Graph) OutDegree(u int) int { return len(g.out[u]) }

// InDegree returns the number of edges entering u.
func (g *Graph) InDegree(u int) int { return len(g.in[u]) }

// TotalDegree returns InDegree(u) + OutDegree(u).
func (g *Graph) TotalDegree(u int) int { return len(g.in[u]) + len(g.out[u]) }

// OutDegrees returns the out-degree sequence as a fresh slice.
func (g *Graph) OutDegrees() []int {
	ds := make([]int, len(g.out))
	for u := range g.out {
		ds[u] = len(g.out[u])
	}
	return ds
}

// TotalDegrees returns the total-degree sequence as a fresh slice.
func (g *Graph) TotalDegrees() []int {
	ds := make([]int, len(g.out))
	for u := range g.out {
		ds[u] = len(g.out[u]) + len(g.in[u])
	}
	return ds
}

// Simplify returns a copy of g with self-loops and duplicate arcs removed.
func (g *Graph) Simplify() *Graph {
	ng := New(g.NumNodes())
	seen := make(map[int]struct{})
	for u := range g.out {
		clear(seen)
		for _, v := range g.out[u] {
			if v == u {
				continue
			}
			if _, dup := seen[v]; dup {
				continue
			}
			seen[v] = struct{}{}
			// Endpoints are valid by construction.
			_ = ng.AddEdge(u, v)
		}
	}
	return ng
}

// MaxDegree returns the maximum out-degree in the graph, or 0 for an empty
// graph.
func (g *Graph) MaxDegree() int {
	var m int
	for u := range g.out {
		if d := len(g.out[u]); d > m {
			m = d
		}
	}
	return m
}

// MeanOutDegree returns the average out-degree (edges per node), or 0 for an
// empty graph.
func (g *Graph) MeanOutDegree() float64 {
	if len(g.out) == 0 {
		return 0
	}
	return float64(g.m) / float64(len(g.out))
}

// DistinctOutDegrees returns the number of distinct out-degree values — the
// paper's "848 groups" statistic for Digg2009.
func (g *Graph) DistinctOutDegrees() int {
	set := make(map[int]struct{})
	for u := range g.out {
		set[len(g.out[u])] = struct{}{}
	}
	return len(set)
}

// DegreeHistogram returns the sorted distinct out-degree values and the
// number of nodes holding each.
func (g *Graph) DegreeHistogram() (degrees []int, counts []int) {
	hist := make(map[int]int)
	for u := range g.out {
		hist[len(g.out[u])]++
	}
	degrees = make([]int, 0, len(hist))
	for d := range hist {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	counts = make([]int, len(degrees))
	for i, d := range degrees {
		counts[i] = hist[d]
	}
	return degrees, counts
}

func (g *Graph) check(u int) error {
	if u < 0 || u >= len(g.out) {
		return fmt.Errorf("graph: node %d out of range [0, %d)", u, len(g.out))
	}
	return nil
}
