package graph

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// KCore computes the k-core number of every node using the
// Batagelj–Zaveršnik bucket algorithm on total degree (the paper's "Core"
// heterogeneity measure). The core number of a node is the largest k such
// that the node belongs to a subgraph where every node has total degree at
// least k.
func (g *Graph) KCore() []int {
	n := g.NumNodes()
	deg := g.TotalDegrees()
	maxDeg := 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}

	// Bucket sort nodes by degree.
	bin := make([]int, maxDeg+2)
	for _, d := range deg {
		bin[d]++
	}
	start := 0
	for d := 0; d <= maxDeg; d++ {
		c := bin[d]
		bin[d] = start
		start += c
	}
	pos := make([]int, n)  // position of node in vert
	vert := make([]int, n) // nodes sorted by current degree
	for u := 0; u < n; u++ {
		pos[u] = bin[deg[u]]
		vert[pos[u]] = u
		bin[deg[u]]++
	}
	for d := maxDeg; d > 0; d-- {
		bin[d] = bin[d-1]
	}
	bin[0] = 0

	core := make([]int, n)
	copy(core, deg)
	lowered := func(v int) {
		// Move v one bucket down (degree decreased by one).
		dv := core[v]
		pv := pos[v]
		pw := bin[dv]
		w := vert[pw]
		if v != w {
			pos[v], pos[w] = pw, pv
			vert[pv], vert[pw] = w, v
		}
		bin[dv]++
		core[v]--
	}
	for i := 0; i < n; i++ {
		u := vert[i]
		for _, v := range g.out[u] {
			if core[v] > core[u] {
				lowered(v)
			}
		}
		for _, v := range g.in[u] {
			if core[v] > core[u] {
				lowered(v)
			}
		}
	}
	return core
}

// Betweenness computes node betweenness centrality with Brandes' algorithm
// over out-edges. If samples > 0 and samples < NumNodes, an unbiased
// estimate is computed from that many uniformly sampled source nodes and
// rescaled by n/samples (needed at Digg scale, where exact Brandes is
// O(n·m)). rng may be nil when samples <= 0.
func (g *Graph) Betweenness(samples int, rng *rand.Rand) ([]float64, error) {
	n := g.NumNodes()
	bc := make([]float64, n)
	if n == 0 {
		return bc, nil
	}

	sources := make([]int, 0, n)
	scale := 1.0
	switch {
	case samples <= 0 || samples >= n:
		for u := 0; u < n; u++ {
			sources = append(sources, u)
		}
	default:
		if rng == nil {
			return nil, fmt.Errorf("graph: Betweenness with samples=%d needs rng", samples)
		}
		perm := rng.Perm(n)
		sources = append(sources, perm[:samples]...)
		scale = float64(n) / float64(samples)
	}

	// Reusable per-source buffers.
	dist := make([]int, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	preds := make([][]int, n)
	order := make([]int, 0, n)
	queue := make([]int, 0, n)

	for _, s := range sources {
		for i := range dist {
			dist[i] = -1
			sigma[i] = 0
			delta[i] = 0
			preds[i] = preds[i][:0]
		}
		order = order[:0]
		queue = queue[:0]

		dist[s] = 0
		sigma[s] = 1
		queue = append(queue, s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for _, w := range g.out[v] {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
				if dist[w] == dist[v]+1 {
					sigma[w] += sigma[v]
					preds[w] = append(preds[w], v)
				}
			}
		}
		for i := len(order) - 1; i >= 0; i-- {
			w := order[i]
			for _, v := range preds[w] {
				delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
			}
			if w != s {
				bc[w] += delta[w] * scale
			}
		}
	}
	return bc, nil
}

// ClusteringCoefficient returns the local clustering coefficient of node u
// treating the graph as undirected: the fraction of pairs of neighbors of u
// that are themselves connected (in either direction). Nodes with fewer than
// two neighbors have coefficient 0.
func (g *Graph) ClusteringCoefficient(u int) float64 {
	nbrs := g.undirectedNeighborSet(u)
	k := len(nbrs)
	if k < 2 {
		return 0
	}
	var links int
	for v := range nbrs {
		for _, w := range g.out[v] {
			if w == v {
				continue
			}
			if _, ok := nbrs[w]; ok {
				links++
			}
		}
	}
	// Each undirected neighbor link contributes once per stored arc; a
	// mutual pair contributes 2 which matches the "either direction counts
	// once, both directions count twice" convention normalized below.
	return float64(links) / float64(k*(k-1))
}

// GlobalClustering returns the average local clustering coefficient over a
// sample of nodes (all nodes when samples <= 0).
func (g *Graph) GlobalClustering(samples int, rng *rand.Rand) float64 {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	var (
		sum   float64
		count int
	)
	if samples <= 0 || samples >= n {
		for u := 0; u < n; u++ {
			sum += g.ClusteringCoefficient(u)
			count++
		}
	} else {
		perm := rng.Perm(n)
		for _, u := range perm[:samples] {
			sum += g.ClusteringCoefficient(u)
			count++
		}
	}
	return sum / float64(count)
}

// WeaklyConnectedComponents labels every node with a component id in
// [0, #components) ignoring edge direction, and returns the labels together
// with the size of the largest component.
func (g *Graph) WeaklyConnectedComponents() (labels []int, largest int) {
	n := g.NumNodes()
	labels = make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	var comp int
	queue := make([]int, 0, n)
	for s := 0; s < n; s++ {
		if labels[s] >= 0 {
			continue
		}
		size := 0
		labels[s] = comp
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			size++
			for _, w := range g.out[v] {
				if labels[w] < 0 {
					labels[w] = comp
					queue = append(queue, w)
				}
			}
			for _, w := range g.in[v] {
				if labels[w] < 0 {
					labels[w] = comp
					queue = append(queue, w)
				}
			}
		}
		if size > largest {
			largest = size
		}
		comp++
	}
	return labels, largest
}

func (g *Graph) undirectedNeighborSet(u int) map[int]struct{} {
	nbrs := make(map[int]struct{}, len(g.out[u])+len(g.in[u]))
	for _, v := range g.out[u] {
		if v != u {
			nbrs[v] = struct{}{}
		}
	}
	for _, v := range g.in[u] {
		if v != u {
			nbrs[v] = struct{}{}
		}
	}
	return nbrs
}

// ErrDegenerateCorrelation is returned by DegreeAssortativity when one side
// of the edge-endpoint degree distribution has zero variance (e.g. a
// regular graph), making the correlation undefined.
var ErrDegenerateCorrelation = errors.New("graph: assortativity undefined (zero degree variance)")

// DegreeAssortativity returns the Pearson correlation, over all directed
// edges u → v, between the out-degree of the source u and the in-degree of
// the target v (the directed out–in assortativity of Newman). Positive
// values mean active spreaders follow popular users; configuration-model
// graphs are uncorrelated (≈ 0) by construction — a property the paper's
// mean-field Θ coupling implicitly assumes.
func (g *Graph) DegreeAssortativity() (float64, error) {
	if g.m == 0 {
		return 0, errors.New("graph: assortativity of an empty graph")
	}
	var sx, sy, sxx, syy, sxy float64
	for u := range g.out {
		du := float64(len(g.out[u]))
		for _, v := range g.out[u] {
			dv := float64(len(g.in[v]))
			sx += du
			sy += dv
			sxx += du * du
			syy += dv * dv
			sxy += du * dv
		}
	}
	n := float64(g.m)
	covXY := sxy/n - (sx/n)*(sy/n)
	varX := sxx/n - (sx/n)*(sx/n)
	varY := syy/n - (sy/n)*(sy/n)
	if varX <= 0 || varY <= 0 {
		return 0, ErrDegenerateCorrelation
	}
	return covXY / math.Sqrt(varX*varY), nil
}
