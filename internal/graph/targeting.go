package graph

import (
	"fmt"
	"math/rand"
	"sort"
)

// The paper's introduction describes blocking rumors "at influential users"
// identified by their Degree, Betweenness or Core. This file implements
// those selection strategies so the agent-based experiments can compare
// them (experiment ablT).

// TopKByOutDegree returns the k nodes with the highest out-degree,
// descending (ties broken by node id for determinism).
func (g *Graph) TopKByOutDegree(k int) ([]int, error) {
	return g.topK(k, func(u int) float64 { return float64(g.OutDegree(u)) })
}

// TopKByTotalDegree returns the k nodes with the highest total degree.
func (g *Graph) TopKByTotalDegree(k int) ([]int, error) {
	return g.topK(k, func(u int) float64 { return float64(g.TotalDegree(u)) })
}

// TopKByCore returns the k nodes with the highest k-core number.
func (g *Graph) TopKByCore(k int) ([]int, error) {
	core := g.KCore()
	return g.topK(k, func(u int) float64 { return float64(core[u]) })
}

// TopKByBetweenness returns the k nodes with the highest (optionally
// sampled) betweenness centrality. samples and rng follow Betweenness.
func (g *Graph) TopKByBetweenness(k, samples int, rng *rand.Rand) ([]int, error) {
	bc, err := g.Betweenness(samples, rng)
	if err != nil {
		return nil, err
	}
	return g.topK(k, func(u int) float64 { return bc[u] })
}

// RandomK returns k distinct nodes chosen uniformly at random — the
// untargeted baseline.
func (g *Graph) RandomK(k int, rng *rand.Rand) ([]int, error) {
	n := g.NumNodes()
	if err := checkK(k, n); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("graph: RandomK needs a rand source")
	}
	return rng.Perm(n)[:k], nil
}

func (g *Graph) topK(k int, score func(int) float64) ([]int, error) {
	n := g.NumNodes()
	if err := checkK(k, n); err != nil {
		return nil, err
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		sa, sb := score(idx[a]), score(idx[b])
		if sa != sb {
			return sa > sb
		}
		return idx[a] < idx[b]
	})
	return idx[:k], nil
}

func checkK(k, n int) error {
	if k < 0 || k > n {
		return fmt.Errorf("graph: k = %d outside [0, %d]", k, n)
	}
	return nil
}
