package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes the graph as one "u v" line per directed edge.
// Lines are emitted in node order, making the output deterministic.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# nodes=%d edges=%d\n", g.NumNodes(), g.NumEdges()); err != nil {
		return fmt.Errorf("graph: write header: %w", err)
	}
	for u := range g.out {
		for _, v := range g.out[u] {
			if _, err := bw.WriteString(strconv.Itoa(u) + " " + strconv.Itoa(v) + "\n"); err != nil {
				return fmt.Errorf("graph: write edge: %w", err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graph: flush edge list: %w", err)
	}
	return nil
}

// ReadEdgeList parses a whitespace-separated edge list ("u v" per line;
// '#'-prefixed lines and blank lines are ignored). Node ids may be sparse
// and arbitrary non-negative integers; they are remapped to a dense range in
// first-seen order. It returns the graph and the original ids indexed by
// dense id.
func ReadEdgeList(r io.Reader) (*Graph, []int64, error) {
	type edge struct{ u, v int }
	var (
		edges []edge
		ids   []int64
	)
	remap := make(map[int64]int)
	dense := func(raw int64) int {
		if id, ok := remap[raw]; ok {
			return id
		}
		id := len(ids)
		remap[raw] = id
		ids = append(ids, raw)
		return id
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("graph: line %d: want 2 fields, got %d", line, len(fields))
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad source id: %w", line, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad target id: %w", line, err)
		}
		if u < 0 || v < 0 {
			return nil, nil, fmt.Errorf("graph: line %d: negative node id", line)
		}
		edges = append(edges, edge{dense(u), dense(v)})
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("graph: scan edge list: %w", err)
	}

	g := New(len(ids))
	for _, e := range edges {
		// Dense ids are in range by construction.
		_ = g.AddEdge(e.u, e.v)
	}
	return g, ids, nil
}
