package graph

import (
	"strings"
	"testing"
)

// FuzzReadEdgeList checks the edge-list parser never panics and that every
// accepted input yields a structurally consistent graph.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n10 20\n\n20 10\n")
	f.Add("a b\n")
	f.Add("-1 2\n")
	f.Add("1\n")
	f.Add("9999999999999999999999 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, ids, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		if g.NumNodes() != len(ids) {
			t.Fatalf("nodes %d != ids %d", g.NumNodes(), len(ids))
		}
		var arcs int
		for u := 0; u < g.NumNodes(); u++ {
			for _, v := range g.OutNeighbors(u) {
				if v < 0 || v >= g.NumNodes() {
					t.Fatalf("edge target %d out of range", v)
				}
				arcs++
			}
		}
		if arcs != g.NumEdges() {
			t.Fatalf("adjacency count %d != NumEdges %d", arcs, g.NumEdges())
		}
	})
}
