package graph

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ErdosRenyi generates a directed G(n, m) graph with exactly m arcs chosen
// uniformly at random without self-loops (parallel arcs possible but rare
// for sparse graphs). rng must be non-nil.
func ErdosRenyi(n, m int, rng *rand.Rand) (*Graph, error) {
	if n <= 1 {
		return nil, fmt.Errorf("graph: ErdosRenyi needs n > 1, got %d", n)
	}
	if m < 0 {
		return nil, fmt.Errorf("graph: ErdosRenyi needs m >= 0, got %d", m)
	}
	g := New(n)
	for i := 0; i < m; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n - 1)
		if v >= u {
			v++
		}
		// Endpoints are in range by construction.
		_ = g.AddEdge(u, v)
	}
	return g, nil
}

// BarabasiAlbert generates an undirected Barabási–Albert preferential-
// attachment graph (stored as a symmetric directed graph) on n nodes where
// each arriving node attaches mAttach edges to existing nodes with
// probability proportional to their degree. The resulting degree
// distribution follows a power law with exponent ≈ 3.
func BarabasiAlbert(n, mAttach int, rng *rand.Rand) (*Graph, error) {
	if mAttach < 1 {
		return nil, fmt.Errorf("graph: BarabasiAlbert needs mAttach >= 1, got %d", mAttach)
	}
	if n <= mAttach {
		return nil, fmt.Errorf("graph: BarabasiAlbert needs n > mAttach (%d <= %d)", n, mAttach)
	}
	g := New(n)
	// Repeated-node list: node u appears once per incident edge endpoint,
	// so sampling uniformly from it is degree-proportional sampling.
	targets := make([]int, 0, 2*mAttach*n)

	// Seed: a star over the first mAttach+1 nodes so every seed node has
	// non-zero degree.
	for v := 1; v <= mAttach; v++ {
		if err := g.AddUndirected(0, v); err != nil {
			return nil, err
		}
		targets = append(targets, 0, v)
	}

	chosen := make(map[int]struct{}, mAttach)
	for u := mAttach + 1; u < n; u++ {
		clear(chosen)
		for len(chosen) < mAttach {
			v := targets[rng.Intn(len(targets))]
			if v == u {
				continue
			}
			chosen[v] = struct{}{}
		}
		for v := range chosen {
			if err := g.AddUndirected(u, v); err != nil {
				return nil, err
			}
			targets = append(targets, u, v)
		}
	}
	return g, nil
}

// PowerLawDegreeSequence samples n degrees from a truncated discrete power
// law P(k) ∝ k^-gamma on [kmin, kmax]. The sequence is returned unsorted.
func PowerLawDegreeSequence(n int, gamma float64, kmin, kmax int, rng *rand.Rand) ([]int, error) {
	if n <= 0 {
		return nil, fmt.Errorf("graph: PowerLawDegreeSequence needs n > 0, got %d", n)
	}
	if kmin < 1 || kmax < kmin {
		return nil, fmt.Errorf("graph: invalid degree range [%d, %d]", kmin, kmax)
	}
	if gamma <= 0 {
		return nil, fmt.Errorf("graph: PowerLawDegreeSequence needs gamma > 0, got %g", gamma)
	}
	// Build the CDF of the truncated discrete power law.
	nk := kmax - kmin + 1
	cdf := make([]float64, nk)
	var total float64
	for i := 0; i < nk; i++ {
		total += math.Pow(float64(kmin+i), -gamma)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	seq := make([]int, n)
	for i := range seq {
		u := rng.Float64()
		// Binary search the CDF.
		lo, hi := 0, nk-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		seq[i] = kmin + lo
	}
	return seq, nil
}

// ErrDegreeSequence is returned by ConfigurationModel when the requested
// degree sequence cannot be realized.
var ErrDegreeSequence = errors.New("graph: unrealizable degree sequence")

// ConfigurationModel builds a directed graph whose out-degree sequence is
// outDeg by pairing out-stubs with in-stubs drawn uniformly at random. Each
// node's in-degree is sampled implicitly: in-stubs are assigned uniformly at
// random across nodes, which matches a follower graph where popularity and
// activity are uncorrelated. Self-loops are re-drawn a bounded number of
// times and then dropped; parallel arcs are kept (the mean-field model only
// consumes degrees).
func ConfigurationModel(outDeg []int, rng *rand.Rand) (*Graph, error) {
	n := len(outDeg)
	if n == 0 {
		return nil, ErrDegreeSequence
	}
	g := New(n)
	for u, d := range outDeg {
		if d < 0 {
			return nil, fmt.Errorf("%w: negative degree %d at node %d", ErrDegreeSequence, d, u)
		}
		for e := 0; e < d; e++ {
			v := rng.Intn(n)
			for retry := 0; v == u && retry < 8; retry++ {
				v = rng.Intn(n)
			}
			if v == u {
				continue // drop stubborn self-loop
			}
			// Endpoints are valid by construction.
			_ = g.AddEdge(u, v)
		}
	}
	return g, nil
}
