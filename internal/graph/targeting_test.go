package graph

import (
	"math/rand"
	"testing"
)

// targetingGraph: a star (hub 0) plus a pendant chain, so every centrality
// has an unambiguous winner.
func targetingGraph(t *testing.T) *Graph {
	t.Helper()
	g := New(7)
	for v := 1; v <= 4; v++ {
		if err := g.AddUndirected(0, v); err != nil {
			t.Fatal(err)
		}
	}
	// Chain 4—5—6 hangs off the star.
	if err := g.AddUndirected(4, 5); err != nil {
		t.Fatal(err)
	}
	if err := g.AddUndirected(5, 6); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestTopKByOutDegree(t *testing.T) {
	g := targetingGraph(t)
	top, err := g.TopKByOutDegree(2)
	if err != nil {
		t.Fatal(err)
	}
	if top[0] != 0 {
		t.Errorf("top degree node = %d, want hub 0", top[0])
	}
	if top[1] != 4 && top[1] != 5 { // degree 2 nodes
		t.Errorf("second node = %d, want 4 or 5", top[1])
	}
}

func TestTopKByTotalDegree(t *testing.T) {
	g := targetingGraph(t)
	top, err := g.TopKByTotalDegree(1)
	if err != nil {
		t.Fatal(err)
	}
	if top[0] != 0 {
		t.Errorf("top total-degree node = %d, want hub 0", top[0])
	}
}

func TestTopKByCore(t *testing.T) {
	// A 4-clique with pendants: clique nodes have the top core numbers.
	g := New(6)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			if err := g.AddUndirected(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := g.AddUndirected(0, 4); err != nil {
		t.Fatal(err)
	}
	if err := g.AddUndirected(1, 5); err != nil {
		t.Fatal(err)
	}
	top, err := g.TopKByCore(4)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]bool{0: true, 1: true, 2: true, 3: true}
	for _, u := range top {
		if !want[u] {
			t.Errorf("core-targeted node %d not in the clique", u)
		}
	}
}

func TestTopKByBetweenness(t *testing.T) {
	g := targetingGraph(t)
	top, err := g.TopKByBetweenness(2, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Hub 0 and bridge 4 (or 5) carry the shortest paths.
	if top[0] != 0 && top[0] != 4 && top[0] != 5 {
		t.Errorf("top betweenness node = %d, want a bridge or the hub", top[0])
	}
}

func TestRandomK(t *testing.T) {
	g := targetingGraph(t)
	rng := rand.New(rand.NewSource(1))
	picks, err := g.RandomK(3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(picks) != 3 {
		t.Fatalf("len = %d", len(picks))
	}
	seen := make(map[int]bool)
	for _, u := range picks {
		if u < 0 || u >= g.NumNodes() || seen[u] {
			t.Fatalf("invalid or duplicate pick %d", u)
		}
		seen[u] = true
	}
	if _, err := g.RandomK(3, nil); err == nil {
		t.Error("nil rng: want error")
	}
}

func TestTopKBounds(t *testing.T) {
	g := targetingGraph(t)
	if _, err := g.TopKByOutDegree(-1); err == nil {
		t.Error("k < 0: want error")
	}
	if _, err := g.TopKByOutDegree(100); err == nil {
		t.Error("k > n: want error")
	}
	all, err := g.TopKByOutDegree(g.NumNodes())
	if err != nil || len(all) != g.NumNodes() {
		t.Errorf("k = n: got %d nodes, err %v", len(all), err)
	}
	zero, err := g.TopKByOutDegree(0)
	if err != nil || len(zero) != 0 {
		t.Errorf("k = 0: got %v, err %v", zero, err)
	}
}

func TestTopKDeterministicTieBreak(t *testing.T) {
	// All-equal degrees: ties break by ascending node id.
	g := New(4)
	for u := 0; u < 4; u++ {
		if err := g.AddEdge(u, (u+1)%4); err != nil {
			t.Fatal(err)
		}
	}
	top, err := g.TopKByOutDegree(4)
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range top {
		if u != i {
			t.Fatalf("tie break not by id: %v", top)
		}
	}
}
