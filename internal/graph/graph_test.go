package graph

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewAndAddEdge(t *testing.T) {
	g := New(3)
	if g.NumNodes() != 3 || g.NumEdges() != 0 {
		t.Fatalf("fresh graph: nodes=%d edges=%d", g.NumNodes(), g.NumEdges())
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Errorf("edges = %d, want 2", g.NumEdges())
	}
	if g.OutDegree(0) != 1 || g.InDegree(1) != 1 || g.TotalDegree(1) != 2 {
		t.Errorf("degrees wrong: out(0)=%d in(1)=%d tot(1)=%d",
			g.OutDegree(0), g.InDegree(1), g.TotalDegree(1))
	}
	if got := g.OutNeighbors(0); len(got) != 1 || got[0] != 1 {
		t.Errorf("OutNeighbors(0) = %v", got)
	}
	if got := g.InNeighbors(2); len(got) != 1 || got[0] != 1 {
		t.Errorf("InNeighbors(2) = %v", got)
	}
}

func TestAddEdgeOutOfRange(t *testing.T) {
	g := New(2)
	if err := g.AddEdge(0, 5); err == nil {
		t.Error("AddEdge(0, 5) on 2-node graph: want error")
	}
	if err := g.AddEdge(-1, 0); err == nil {
		t.Error("AddEdge(-1, 0): want error")
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestAddUndirected(t *testing.T) {
	g := New(2)
	if err := g.AddUndirected(0, 1); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 || g.OutDegree(0) != 1 || g.OutDegree(1) != 1 {
		t.Errorf("AddUndirected produced edges=%d out(0)=%d out(1)=%d",
			g.NumEdges(), g.OutDegree(0), g.OutDegree(1))
	}
}

func TestSimplify(t *testing.T) {
	g := New(3)
	for _, e := range [][2]int{{0, 1}, {0, 1}, {0, 0}, {1, 2}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	s := g.Simplify()
	if s.NumEdges() != 2 {
		t.Errorf("Simplify edges = %d, want 2", s.NumEdges())
	}
	if s.OutDegree(0) != 1 {
		t.Errorf("Simplify out(0) = %d, want 1", s.OutDegree(0))
	}
}

func TestDegreeStats(t *testing.T) {
	g := New(4)
	// degrees: 0→{1,2,3}, 1→{2}, rest 0
	for _, v := range []int{1, 2, 3} {
		if err := g.AddEdge(0, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if got := g.MaxDegree(); got != 3 {
		t.Errorf("MaxDegree = %d, want 3", got)
	}
	if got := g.MeanOutDegree(); got != 1 {
		t.Errorf("MeanOutDegree = %v, want 1", got)
	}
	if got := g.DistinctOutDegrees(); got != 3 { // degrees {0, 1, 3}
		t.Errorf("DistinctOutDegrees = %d, want 3", got)
	}
	ds, cs := g.DegreeHistogram()
	if len(ds) != 3 || ds[0] != 0 || ds[1] != 1 || ds[2] != 3 {
		t.Errorf("DegreeHistogram degrees = %v", ds)
	}
	if cs[0] != 2 || cs[1] != 1 || cs[2] != 1 {
		t.Errorf("DegreeHistogram counts = %v", cs)
	}
	if got := g.OutDegrees(); len(got) != 4 || got[0] != 3 {
		t.Errorf("OutDegrees = %v", got)
	}
	if got := g.TotalDegrees(); got[2] != 2 {
		t.Errorf("TotalDegrees[2] = %d, want 2", got[2])
	}
}

func TestErdosRenyi(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, err := ErdosRenyi(100, 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 500 {
		t.Errorf("edges = %d, want 500", g.NumEdges())
	}
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range g.OutNeighbors(u) {
			if v == u {
				t.Fatalf("self-loop at %d", u)
			}
		}
	}
	if _, err := ErdosRenyi(1, 5, rng); err == nil {
		t.Error("n=1: want error")
	}
	if _, err := ErdosRenyi(5, -1, rng); err == nil {
		t.Error("m=-1: want error")
	}
}

func TestBarabasiAlbert(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const (
		n       = 2000
		mAttach = 3
	)
	g, err := BarabasiAlbert(n, mAttach, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Seed star has mAttach undirected edges; each later node adds mAttach.
	wantUndirected := mAttach + (n-mAttach-1)*mAttach
	if g.NumEdges() != 2*wantUndirected {
		t.Errorf("edges = %d, want %d", g.NumEdges(), 2*wantUndirected)
	}
	// Every non-seed node has out-degree >= mAttach.
	for u := mAttach + 1; u < n; u++ {
		if g.OutDegree(u) < mAttach {
			t.Fatalf("node %d out-degree %d < mAttach", u, g.OutDegree(u))
		}
	}
	// Heavy tail: the max degree should far exceed the mean.
	if g.MaxDegree() < 5*int(g.MeanOutDegree()) {
		t.Errorf("max degree %d not heavy-tailed vs mean %.1f", g.MaxDegree(), g.MeanOutDegree())
	}
	if _, err := BarabasiAlbert(3, 3, rng); err == nil {
		t.Error("n <= mAttach: want error")
	}
	if _, err := BarabasiAlbert(10, 0, rng); err == nil {
		t.Error("mAttach=0: want error")
	}
}

func TestPowerLawDegreeSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	seq, err := PowerLawDegreeSequence(10000, 2.2, 1, 995, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 10000 {
		t.Fatalf("len = %d", len(seq))
	}
	var sum, min, max int
	min = seq[0]
	for _, k := range seq {
		sum += k
		if k < min {
			min = k
		}
		if k > max {
			max = k
		}
	}
	if min < 1 || max > 995 {
		t.Errorf("degree range [%d, %d] outside [1, 995]", min, max)
	}
	mean := float64(sum) / float64(len(seq))
	if mean < 1 || mean > 100 {
		t.Errorf("implausible mean degree %v", mean)
	}

	// A steeper exponent must produce a smaller mean.
	seq2, err := PowerLawDegreeSequence(10000, 3.0, 1, 995, rng)
	if err != nil {
		t.Fatal(err)
	}
	var sum2 int
	for _, k := range seq2 {
		sum2 += k
	}
	if float64(sum2)/float64(len(seq2)) >= mean {
		t.Errorf("gamma=3 mean %v not below gamma=2.2 mean %v",
			float64(sum2)/float64(len(seq2)), mean)
	}

	for _, bad := range []struct {
		n, kmin, kmax int
		gamma         float64
	}{
		{0, 1, 10, 2}, {10, 0, 10, 2}, {10, 5, 4, 2}, {10, 1, 10, 0},
	} {
		if _, err := PowerLawDegreeSequence(bad.n, bad.gamma, bad.kmin, bad.kmax, rng); err == nil {
			t.Errorf("PowerLawDegreeSequence(%+v): want error", bad)
		}
	}
}

func TestConfigurationModel(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	outDeg := []int{3, 0, 2, 1, 5}
	g, err := ConfigurationModel(outDeg, rng)
	if err != nil {
		t.Fatal(err)
	}
	for u, want := range outDeg {
		if got := g.OutDegree(u); got != want {
			t.Errorf("out-degree(%d) = %d, want %d", u, got, want)
		}
	}
	if _, err := ConfigurationModel(nil, rng); err == nil {
		t.Error("empty sequence: want error")
	}
	if _, err := ConfigurationModel([]int{-1}, rng); err == nil {
		t.Error("negative degree: want error")
	}
}

func TestKCoreDirectedCycle(t *testing.T) {
	g := New(4)
	// Directed 3-cycle plus a pendant: core numbers on total degree.
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {0, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	core := g.KCore()
	// Node 3 has total degree 1 → core 1. Cycle nodes keep core 2.
	want := []int{2, 2, 2, 1}
	for i, w := range want {
		if core[i] != w {
			t.Errorf("core[%d] = %d, want %d (all: %v)", i, core[i], w, core)
		}
	}
}

func TestKCoreClique(t *testing.T) {
	// Symmetric 4-clique: every node has total degree 6, core = 6.
	g := New(4)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			if err := g.AddUndirected(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, c := range g.KCore() {
		if c != 6 {
			t.Errorf("core[%d] = %d, want 6", i, c)
		}
	}
}

func TestBetweennessDirectedPath(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	bc, err := g.Betweenness(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1, 0}
	for i, w := range want {
		if bc[i] != w {
			t.Errorf("bc[%d] = %v, want %v", i, bc[i], w)
		}
	}
}

func TestBetweennessStar(t *testing.T) {
	// Undirected star on 5 nodes: center lies on all 4*3 = 12 directed
	// leaf-to-leaf shortest paths.
	g := New(5)
	for v := 1; v < 5; v++ {
		if err := g.AddUndirected(0, v); err != nil {
			t.Fatal(err)
		}
	}
	bc, err := g.Betweenness(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bc[0] != 12 {
		t.Errorf("center betweenness = %v, want 12", bc[0])
	}
	for v := 1; v < 5; v++ {
		if bc[v] != 0 {
			t.Errorf("leaf %d betweenness = %v, want 0", v, bc[v])
		}
	}
}

func TestBetweennessSampledApproximatesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, err := ErdosRenyi(300, 3000, rng)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := g.Betweenness(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := g.Betweenness(150, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Compare totals: the estimator is unbiased, so total mass should be
	// within 20% on a graph this regular.
	var se, sa float64
	for i := range exact {
		se += exact[i]
		sa += approx[i]
	}
	if sa < 0.8*se || sa > 1.2*se {
		t.Errorf("sampled betweenness mass %v not within 20%% of exact %v", sa, se)
	}
	if _, err := g.Betweenness(10, nil); err == nil {
		t.Error("sampling without rng: want error")
	}
}

func TestClusteringCoefficient(t *testing.T) {
	// Symmetric triangle: coefficient 1 everywhere.
	g := New(3)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}} {
		if err := g.AddUndirected(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	for u := 0; u < 3; u++ {
		if c := g.ClusteringCoefficient(u); c != 1 {
			t.Errorf("triangle cc(%d) = %v, want 1", u, c)
		}
	}

	// Symmetric path: middle node has unconnected neighbors.
	p := New(3)
	if err := p.AddUndirected(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.AddUndirected(1, 2); err != nil {
		t.Fatal(err)
	}
	if c := p.ClusteringCoefficient(1); c != 0 {
		t.Errorf("path cc(1) = %v, want 0", c)
	}
	if c := p.ClusteringCoefficient(0); c != 0 { // fewer than 2 neighbors
		t.Errorf("path cc(0) = %v, want 0", c)
	}
	if gc := g.GlobalClustering(0, nil); gc != 1 {
		t.Errorf("triangle global clustering = %v, want 1", gc)
	}
}

func TestWeaklyConnectedComponents(t *testing.T) {
	g := New(5)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(2, 1); err != nil { // direction ignored for WCC
		t.Fatal(err)
	}
	if err := g.AddEdge(3, 4); err != nil {
		t.Fatal(err)
	}
	labels, largest := g.WeaklyConnectedComponents()
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Errorf("nodes 0,1,2 not in one component: %v", labels)
	}
	if labels[3] != labels[4] || labels[3] == labels[0] {
		t.Errorf("nodes 3,4 mislabeled: %v", labels)
	}
	if largest != 3 {
		t.Errorf("largest = %d, want 3", largest)
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g, err := ErdosRenyi(50, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	g2, ids, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Errorf("round trip edges = %d, want %d", g2.NumEdges(), g.NumEdges())
	}
	// Isolated nodes are not representable in an edge list; every read id
	// must map back to a node with at least one incident edge.
	if len(ids) > g.NumNodes() {
		t.Errorf("read %d ids from a %d-node graph", len(ids), g.NumNodes())
	}
}

func TestReadEdgeListSparseIDs(t *testing.T) {
	in := "# comment\n1000 2000\n2000 30\n\n30 1000\n"
	g, ids, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Errorf("nodes=%d edges=%d, want 3, 3", g.NumNodes(), g.NumEdges())
	}
	if ids[0] != 1000 || ids[1] != 2000 || ids[2] != 30 {
		t.Errorf("ids = %v, want first-seen order [1000 2000 30]", ids)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"1\n",     // too few fields
		"a b\n",   // non-numeric source
		"1 b\n",   // non-numeric target
		"-1 2\n",  // negative id
		"0 1\n2",  // truncated tail: last line cut mid-record, no newline
		"1 -2\n",  // negative target
		"1 99999999999999999999\n", // target overflows int64
	}
	for _, in := range cases {
		if _, _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("ReadEdgeList(%q): want error", in)
		}
	}
}

// TestReadEdgeListDegenerate pins the parser's behavior on inputs that are
// empty rather than corrupt: no edges is a valid (order-zero) graph, not an
// error — rumord boots fine over an empty upload the same way the WAL
// replays fine over a zero-length segment.
func TestReadEdgeListDegenerate(t *testing.T) {
	for _, in := range []string{"", "\n\n", "# only a comment\n", "  \n\t\n# c\n"} {
		g, ids, err := ReadEdgeList(strings.NewReader(in))
		if err != nil {
			t.Errorf("ReadEdgeList(%q): %v", in, err)
			continue
		}
		if g.NumNodes() != 0 || g.NumEdges() != 0 || len(ids) != 0 {
			t.Errorf("ReadEdgeList(%q): nodes=%d edges=%d ids=%d, want an empty graph",
				in, g.NumNodes(), g.NumEdges(), len(ids))
		}
	}
}

// TestReadEdgeListErrorLine checks diagnostics point at the offending line
// (counting comments and blanks), so a multi-megabyte upload is debuggable.
func TestReadEdgeListErrorLine(t *testing.T) {
	in := "# header\n0 1\n\n0 oops\n"
	_, _, err := ReadEdgeList(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Errorf("err = %v, want a complaint about line 4", err)
	}
}

// TestReadEdgeListOverlongLine drives the scanner past its 1 MiB line cap:
// the parser must fail cleanly (no panic, no silent truncation).
func TestReadEdgeListOverlongLine(t *testing.T) {
	in := "0 1\n# " + strings.Repeat("x", 2*1024*1024) + "\n1 0\n"
	if _, _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
		t.Error("2 MiB line: want a scan error, got nil")
	}
}

// errReader fails after its prefix is consumed, simulating a read error
// (network drop, truncated pipe) mid-file.
type errReader struct {
	prefix *strings.Reader
}

func (r *errReader) Read(p []byte) (int, error) {
	if r.prefix.Len() > 0 {
		return r.prefix.Read(p)
	}
	return 0, fmt.Errorf("synthetic read failure")
}

func TestReadEdgeListReaderFailure(t *testing.T) {
	r := &errReader{prefix: strings.NewReader("0 1\n1 2\n")}
	_, _, err := ReadEdgeList(r)
	if err == nil || !strings.Contains(err.Error(), "synthetic read failure") {
		t.Errorf("err = %v, want the wrapped reader failure", err)
	}
}

// Property: configuration model preserves the requested out-degree sequence
// (self-loop drops are vanishingly rare at these sizes and retried 8 times).
func TestQuickConfigurationDegrees(t *testing.T) {
	f := func(raw []uint8, seed int64) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 50 {
			raw = raw[:50]
		}
		outDeg := make([]int, len(raw))
		for i, r := range raw {
			outDeg[i] = int(r % 8)
		}
		g, err := ConfigurationModel(outDeg, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		for u, want := range outDeg {
			got := g.OutDegree(u)
			if got > want || got < want-1 { // allow one dropped self-loop
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: every k-core number is between 0 and the node's total degree.
func TestQuickKCoreBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := ErdosRenyi(60, 240, rng)
		if err != nil {
			return false
		}
		core := g.KCore()
		for u, c := range core {
			if c < 0 || c > g.TotalDegree(u) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: betweenness is non-negative and zero on sinks with no throughput.
func TestQuickBetweennessNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := ErdosRenyi(40, 120, rng)
		if err != nil {
			return false
		}
		bc, err := g.Betweenness(0, nil)
		if err != nil {
			return false
		}
		for _, b := range bc {
			if b < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkConfigurationModelDiggScale(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	seq, err := PowerLawDegreeSequence(71367, 2.05, 1, 995, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ConfigurationModel(seq, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKCore(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g, err := ErdosRenyi(10000, 100000, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.KCore()
	}
}

func TestDegreeAssortativityConfigurationModelNearZero(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	seq, err := PowerLawDegreeSequence(20000, 1.8, 1, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	g, err := ConfigurationModel(seq, rng)
	if err != nil {
		t.Fatal(err)
	}
	r, err := g.DegreeAssortativity()
	if err != nil {
		t.Fatal(err)
	}
	// The configuration model wires stubs independently: uncorrelated.
	if r < -0.05 || r > 0.05 {
		t.Errorf("configuration-model assortativity = %v, want ≈ 0", r)
	}
}

func TestDegreeAssortativityDisassortativeStar(t *testing.T) {
	// Hub-and-spoke with a few peripheral links: high-degree sources point
	// at low-in-degree targets and vice versa → negative correlation.
	g := New(12)
	for v := 1; v < 10; v++ {
		if err := g.AddUndirected(0, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddUndirected(10, 11); err != nil {
		t.Fatal(err)
	}
	r, err := g.DegreeAssortativity()
	if err != nil {
		t.Fatal(err)
	}
	if r >= 0 {
		t.Errorf("star assortativity = %v, want negative", r)
	}
}

func TestDegreeAssortativityDegenerate(t *testing.T) {
	// Directed ring: every out- and in-degree is 1 → zero variance.
	g := New(5)
	for u := 0; u < 5; u++ {
		if err := g.AddEdge(u, (u+1)%5); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := g.DegreeAssortativity(); err == nil {
		t.Error("regular graph: want ErrDegenerateCorrelation")
	}
	if _, err := New(3).DegreeAssortativity(); err == nil {
		t.Error("empty graph: want error")
	}
}
