package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestDefault(t *testing.T) {
	if got := Default(4); got != 4 {
		t.Errorf("Default(4) = %d", got)
	}
	if got := Default(0); got < 1 {
		t.Errorf("Default(0) = %d, want ≥ 1", got)
	}
	if got := Default(-3); got < 1 {
		t.Errorf("Default(-3) = %d, want ≥ 1", got)
	}
}

func TestNumShards(t *testing.T) {
	cases := []struct{ n, size, want int }{
		{0, 10, 0}, {1, 10, 1}, {10, 10, 1}, {11, 10, 2}, {100, 7, 15}, {5, 0, 0},
	}
	for _, c := range cases {
		if got := NumShards(c.n, c.size); got != c.want {
			t.Errorf("NumShards(%d, %d) = %d, want %d", c.n, c.size, got, c.want)
		}
	}
}

// TestForEachShardCoverage: every index is visited exactly once and shard
// boundaries are identical for any worker count.
func TestForEachShardCoverage(t *testing.T) {
	const n, size = 1003, 64
	for _, workers := range []int{1, 2, 8, 100} {
		visits := make([]int32, n)
		err := ForEachShard(workers, n, size, func(shard, lo, hi int) error {
			if lo != shard*size {
				return fmt.Errorf("shard %d: lo = %d", shard, lo)
			}
			if want := min(lo+size, n); hi != want {
				return fmt.Errorf("shard %d: hi = %d, want %d", shard, hi, want)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&visits[i], 1)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, v)
			}
		}
	}
}

func TestForEachShardError(t *testing.T) {
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 4} {
		err := ForEachShard(workers, 100, 10, func(shard, lo, hi int) error {
			if shard == 3 {
				return sentinel
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Errorf("workers=%d: err = %v, want sentinel", workers, err)
		}
	}
}

func TestForEachShardEmpty(t *testing.T) {
	called := false
	err := ForEachShard(4, 0, 10, func(shard, lo, hi int) error {
		called = true
		return nil
	})
	if err != nil || called {
		t.Errorf("empty range: err=%v called=%v", err, called)
	}
}

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{1, 8} {
		out, err := Map(workers, 50, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapError(t *testing.T) {
	sentinel := errors.New("job failed")
	out, err := Map(4, 20, func(i int) (int, error) {
		if i == 7 {
			return 0, sentinel
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want sentinel", err)
	}
	if out != nil {
		t.Errorf("partial results not discarded: %v", out)
	}
}

func TestDo(t *testing.T) {
	var a, b atomic.Bool
	err := Do(2,
		func() error { a.Store(true); return nil },
		func() error { b.Store(true); return nil },
	)
	if err != nil || !a.Load() || !b.Load() {
		t.Errorf("Do: err=%v a=%v b=%v", err, a.Load(), b.Load())
	}
	sentinel := errors.New("task failed")
	if err := Do(2, func() error { return sentinel }); !errors.Is(err, sentinel) {
		t.Errorf("Do error: %v", err)
	}
}

func TestActive(t *testing.T) {
	if got := Active(); got != 0 {
		t.Fatalf("Active() = %d at rest, want 0", got)
	}
	var peak atomic.Int64
	err := ForEachShard(4, 16, 1, func(_, _, _ int) error {
		if a := int64(Active()); a > peak.Load() {
			peak.Store(a)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p < 1 || p > 4 {
		t.Errorf("peak Active() = %d, want within [1, 4]", p)
	}
	// Inline (serial) execution still registers as one busy worker.
	var inline int
	if err := ForEachShard(1, 2, 1, func(_, _, _ int) error { inline = Active(); return nil }); err != nil {
		t.Fatal(err)
	}
	if inline != 1 {
		t.Errorf("inline Active() = %d, want 1", inline)
	}
	if got := Active(); got != 0 {
		t.Errorf("Active() = %d after runs, want 0", got)
	}
}
