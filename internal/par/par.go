// Package par is the repository's fan-out substrate: a small bounded
// worker pool for data-parallel loops whose results must not depend on the
// degree of parallelism.
//
// The central discipline is that work is split into *fixed* units — shards
// of an index range, or individual jobs — whose boundaries depend only on
// the problem size, never on the worker count. Each unit writes its output
// into a slot owned by its unit index, and callers combine the slots in
// unit order. Because floating-point reduction order is then a function of
// the problem alone, a caller that follows this discipline gets bit-identical
// results whether the loop ran on one goroutine or sixteen. The ABM
// transition sweep (internal/abm) and the experiment fan-outs
// (internal/experiments) both build on this property; the determinism
// regression tests assert it end-to-end.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// active counts fan-out worker goroutines currently executing shards,
// process-wide. It feeds rumord's worker-utilization gauge; inline (single
// worker) runs are counted too, so a serial sweep still registers as one
// busy worker.
var active atomic.Int64

// Active reports the number of fan-out workers currently executing shards
// across all concurrent ForEachShard/Map/Do calls in the process.
func Active() int { return int(active.Load()) }

// Default resolves a worker-count setting: values above zero are returned
// unchanged, anything else selects runtime.GOMAXPROCS(0) — the number of
// OS threads the scheduler will actually run, not the machine's core count.
// Respecting GOMAXPROCS keeps fan-outs honest under `go test -cpu 1,4,8`
// (the multi-core bench rig sweeps exactly this knob) and under deployments
// that cap the process below the machine size. A resolved value of 1 means
// "run inline on the calling goroutine".
func Default(workers int) int {
	if workers > 0 {
		return workers
	}
	return runtime.GOMAXPROCS(0)
}

// NumShards returns the number of fixed-size shards covering [0, n).
func NumShards(n, shardSize int) int {
	if n <= 0 || shardSize <= 0 {
		return 0
	}
	return (n + shardSize - 1) / shardSize
}

// ForEachShard partitions [0, n) into ⌈n/shardSize⌉ contiguous shards and
// calls fn(shard, lo, hi) once per shard, running up to workers calls
// concurrently. Shard boundaries depend only on n and shardSize — never on
// workers — so per-shard partial results combined in shard order are
// bit-identical at any parallelism.
//
// fn must only write to state owned by its shard. If any call returns an
// error, remaining shards may be skipped and the error with the lowest
// shard index among the completed calls is returned. With workers ≤ 1 the
// shards run inline in order and the first error returns immediately.
func ForEachShard(workers, n, shardSize int, fn func(shard, lo, hi int) error) error {
	shards := NumShards(n, shardSize)
	if shards == 0 {
		return nil
	}
	if workers = Default(workers); workers > shards {
		workers = shards
	}
	if workers <= 1 {
		active.Add(1)
		defer active.Add(-1)
		for s := 0; s < shards; s++ {
			lo := s * shardSize
			hi := min(lo+shardSize, n)
			if err := fn(s, lo, hi); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next   atomic.Int64 // next shard to claim
		failed atomic.Bool  // stops dispatch after the first error
		errs   = make([]error, shards)
		wg     sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			active.Add(1)
			defer active.Add(-1)
			for !failed.Load() {
				s := int(next.Add(1)) - 1
				if s >= shards {
					return
				}
				lo := s * shardSize
				hi := min(lo+shardSize, n)
				if err := fn(s, lo, hi); err != nil {
					errs[s] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs fn(i) for every i in [0, jobs) on up to workers goroutines and
// returns the results indexed by job, so callers consume them in a
// deterministic order regardless of completion order. On error the
// semantics of ForEachShard apply and the partial results are discarded.
func Map[T any](workers, jobs int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, jobs)
	err := ForEachShard(workers, jobs, 1, func(_, i, _ int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Do runs the given heterogeneous tasks concurrently on up to workers
// goroutines and returns the first error by task index.
func Do(workers int, tasks ...func() error) error {
	return ForEachShard(workers, len(tasks), 1, func(_, i, _ int) error {
		return tasks[i]()
	})
}
