package ode

import (
	"math"
	"testing"
)

// decayRHS is a small linear test system y' = -y.
func decayRHS(_ float64, y, dydt []float64) {
	for i := range y {
		dydt[i] = -y[i]
	}
}

func TestSolveFixedProgress(t *testing.T) {
	var steps []int
	var lastT float64
	opts := &Options{
		ProgressEvery: 10,
		Progress: func(step, total int, tm float64, y []float64) {
			if total != 100 {
				t.Errorf("total = %d, want 100", total)
			}
			if len(y) != 2 {
				t.Errorf("state dim %d, want 2", len(y))
			}
			steps = append(steps, step)
			lastT = tm
		},
	}
	_, err := SolveFixed(decayRHS, []float64{1, 2}, 0, 1, 0.01, &RK4{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 10 {
		t.Fatalf("checkpoints = %v, want every 10th of 100 steps", steps)
	}
	for i, s := range steps {
		if s != 10*(i+1) {
			t.Fatalf("checkpoint steps %v not on the cadence", steps)
		}
	}
	if lastT != 1 {
		t.Errorf("final checkpoint at t=%g, want 1", lastT)
	}
}

func TestSolveFixedProgressFinalStepOffCadence(t *testing.T) {
	var last int
	opts := &Options{
		ProgressEvery: 7,
		Progress:      func(step, total int, _ float64, _ []float64) { last = step },
	}
	_, err := SolveFixed(decayRHS, []float64{1}, 0, 1, 0.01, &Euler{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if last != 100 {
		t.Errorf("final checkpoint step = %d, want 100 even though 100 %% 7 != 0", last)
	}
}

func TestSolveAdaptiveProgress(t *testing.T) {
	var calls int
	opts := &AdaptiveOptions{
		Options: Options{
			ProgressEvery: 1,
			Progress: func(step, total int, _ float64, _ []float64) {
				if total != 0 {
					t.Errorf("adaptive total = %d, want 0 (open-ended)", total)
				}
				calls++
			},
		},
	}
	sol, err := SolveAdaptive(decayRHS, []float64{1, 0.5}, 0, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if calls != sol.Len()-1 {
		t.Errorf("progress calls = %d, want one per accepted step (%d)", calls, sol.Len()-1)
	}
}

// The instrumentation-overhead pair recorded by scripts/bench.sh pr3: the
// same 2000-step RK4 integration with no hook versus a counting hook on
// the default 256-step cadence. The acceptance bound is <5% overhead.
func benchSolveFixed(b *testing.B, opts *Options) {
	y0 := make([]float64, 32)
	for i := range y0 {
		y0[i] = 1 + math.Sqrt(float64(i))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SolveFixed(decayRHS, y0, 0, 2, 0.001, &RK4{}, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveFixedProgressOff(b *testing.B) {
	benchSolveFixed(b, &Options{Record: 64})
}

func BenchmarkSolveFixedProgressOn(b *testing.B) {
	var checkpoints int
	benchSolveFixed(b, &Options{
		Record:   64,
		Progress: func(step, total int, t float64, y []float64) { checkpoints++ },
	})
}
