package ode

import (
	"errors"
	"fmt"
	"math"

	"rumornet/internal/floats"
)

// ErrNewton is returned when the implicit stepper's Newton iteration fails
// to converge even after step-size reduction.
var ErrNewton = errors.New("ode: Newton iteration did not converge")

// ImplicitOptions configures SolveImplicit on top of Options.
type ImplicitOptions struct {
	Options

	// Theta selects the method: 1.0 is backward Euler (order 1,
	// L-stable), 0.5 is the implicit trapezoidal rule (order 2,
	// A-stable). Values in (0, 1] are admitted. Default 0.5.
	Theta float64

	// NewtonTol is the residual tolerance of the inner Newton solve
	// (default 1e-10 scaled by the state norm).
	NewtonTol float64

	// MaxNewton bounds Newton iterations per step (default 25).
	MaxNewton int

	// JacobianEps is the finite-difference perturbation used to form
	// ∂f/∂y (default 1e-8 relative).
	JacobianEps float64
}

func (o *ImplicitOptions) theta() float64 {
	if o == nil || o.Theta <= 0 || o.Theta > 1 {
		return 0.5
	}
	return o.Theta
}

func (o *ImplicitOptions) newtonTol() float64 {
	if o == nil || o.NewtonTol <= 0 {
		return 1e-10
	}
	return o.NewtonTol
}

func (o *ImplicitOptions) maxNewton() int {
	if o == nil || o.MaxNewton <= 0 {
		return 25
	}
	return o.MaxNewton
}

func (o *ImplicitOptions) jacEps() float64 {
	if o == nil || o.JacobianEps <= 0 {
		return 1e-8
	}
	return o.JacobianEps
}

// SolveImplicit integrates y' = f(t, y) with the θ-method (backward Euler
// for θ = 1, implicit trapezoid for θ = 0.5), solving the per-step
// nonlinear system with Newton's method on a finite-difference Jacobian.
// Use it for stiff problems — such as the paper's literal Fig. 3 parameter
// set, whose ε2 = 10⁻⁴ makes explicit steppers crawl. Each step costs one
// n×n Jacobian assembly (n RHS evaluations) and an LU solve per Newton
// iteration, so prefer the explicit solvers for non-stiff work.
func SolveImplicit(f Func, y0 []float64, t0, tf, h float64, opts *ImplicitOptions) (*Solution, error) {
	if err := checkSpan(t0, tf, h); err != nil {
		return nil, err
	}
	n := len(y0)
	if n == 0 {
		return nil, errors.New("ode: empty initial state")
	}
	var optBase *Options
	if opts != nil {
		optBase = &opts.Options
	}
	theta := opts.theta()
	steps := int(math.Ceil((tf - t0) / h))
	if ms := optBase.maxSteps(); steps > ms {
		return nil, fmt.Errorf("ode: %d steps exceed MaxSteps=%d", steps, ms)
	}
	rec := optBase.record()

	sol := &Solution{
		T: make([]float64, 0, steps/rec+2),
		Y: make([][]float64, 0, steps/rec+2),
	}
	y := floats.Clone(y0)
	sol.T = append(sol.T, t0)
	sol.Y = append(sol.Y, floats.Clone(y))

	var (
		fy   = make([]float64, n) // f(t, y) at the step start
		fz   = make([]float64, n) // f(t+h, z) at the Newton iterate
		g    = make([]float64, n) // Newton residual
		z    = make([]float64, n) // Newton iterate
		dz   = make([]float64, n)
		fpz  = make([]float64, n)
		jac  = newMatrix(n)
		lu   = newMatrix(n)
		perm = make([]int, n)
	)

	t := t0
	for i := 0; i < steps; i++ {
		step := h
		if t+step > tf {
			step = tf - t
		}
		f(t, y, fy)

		// Predictor: explicit Euler.
		copy(z, y)
		floats.AddScaled(z, step, fy)

		converged := false
		for attempt := 0; attempt < 2 && !converged; attempt++ {
			// Assemble J_G = I − h·θ·∂f/∂z once per step (modified Newton).
			f(t+step, z, fz)
			assembleNewtonJacobian(f, t+step, z, fz, fpz, jac, step*theta, opts.jacEps())
			copyMatrix(lu, jac)
			if err := luFactor(lu, perm); err != nil {
				return sol, fmt.Errorf("ode: implicit step at t=%g: %w", t, err)
			}

			tol := opts.newtonTol() * (1 + floats.NormInf(y))
			for iter := 0; iter < opts.maxNewton(); iter++ {
				f(t+step, z, fz)
				// G(z) = z − y − h[(1−θ) f(t, y) + θ f(t+h, z)].
				for j := 0; j < n; j++ {
					g[j] = z[j] - y[j] - step*((1-theta)*fy[j]+theta*fz[j])
				}
				if floats.NormInf(g) <= tol {
					converged = true
					break
				}
				copy(dz, g)
				luSolve(lu, perm, dz)
				floats.Sub(z, dz)
				if !floats.AllFinite(z) {
					break
				}
			}
			if !converged {
				// Retry once from a fresh predictor with a re-assembled
				// Jacobian at the midpoint guess.
				copy(z, y)
				floats.AddScaled(z, step/2, fy)
			}
		}
		if !converged {
			return sol, fmt.Errorf("%w at t=%g (h=%g)", ErrNewton, t, step)
		}

		copy(y, z)
		t += step
		if i == steps-1 {
			t = tf
		}
		optBase.project(y)
		if !floats.AllFinite(y) {
			return sol, fmt.Errorf("ode: state became non-finite at t=%g", t)
		}
		if (i+1)%rec == 0 || i == steps-1 {
			sol.T = append(sol.T, t)
			sol.Y = append(sol.Y, floats.Clone(y))
		}
		if optBase.stop(t, y) {
			if sol.T[len(sol.T)-1] != t {
				sol.T = append(sol.T, t)
				sol.Y = append(sol.Y, floats.Clone(y))
			}
			return sol, nil
		}
	}
	return sol, nil
}

// assembleNewtonJacobian fills jac with I − hθ·∂f/∂z using forward
// differences around z (fz = f(t, z) already evaluated).
func assembleNewtonJacobian(f Func, t float64, z, fz, scratch []float64, jac [][]float64, hTheta, eps float64) {
	n := len(z)
	for c := 0; c < n; c++ {
		d := eps * (1 + math.Abs(z[c]))
		orig := z[c]
		z[c] = orig + d
		f(t, z, scratch)
		z[c] = orig
		for r := 0; r < n; r++ {
			jac[r][c] = -hTheta * (scratch[r] - fz[r]) / d
		}
		jac[c][c]++
	}
}

func newMatrix(n int) [][]float64 {
	backing := make([]float64, n*n)
	m := make([][]float64, n)
	for r := range m {
		m[r] = backing[r*n : (r+1)*n]
	}
	return m
}

func copyMatrix(dst, src [][]float64) {
	for r := range src {
		copy(dst[r], src[r])
	}
}

// luFactor performs in-place LU factorization with partial pivoting,
// recording the row permutation in perm.
func luFactor(a [][]float64, perm []int) error {
	n := len(a)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		// Pivot selection.
		pivot := col
		best := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > best {
				best = v
				pivot = r
			}
		}
		if best == 0 {
			return fmt.Errorf("ode: singular Newton Jacobian at column %d", col)
		}
		if pivot != col {
			a[pivot], a[col] = a[col], a[pivot]
			perm[pivot], perm[col] = perm[col], perm[pivot]
		}
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			m := a[r][col] * inv
			a[r][col] = m
			if m == 0 {
				continue
			}
			arow, crow := a[r], a[col]
			for c := col + 1; c < n; c++ {
				arow[c] -= m * crow[c]
			}
		}
	}
	return nil
}

// luSolve solves A x = b in place on b using a factorization from luFactor.
func luSolve(lu [][]float64, perm []int, b []float64) {
	n := len(lu)
	// Apply the permutation.
	tmp := make([]float64, n)
	for i := 0; i < n; i++ {
		tmp[i] = b[perm[i]]
	}
	copy(b, tmp)
	// Forward substitution (unit lower triangle).
	for r := 1; r < n; r++ {
		var sum float64
		row := lu[r]
		for c := 0; c < r; c++ {
			sum += row[c] * b[c]
		}
		b[r] -= sum
	}
	// Back substitution.
	for r := n - 1; r >= 0; r-- {
		var sum float64
		row := lu[r]
		for c := r + 1; c < n; c++ {
			sum += row[c] * b[c]
		}
		b[r] = (b[r] - sum) / row[r]
	}
}
