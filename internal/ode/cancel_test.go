package ode

import (
	"context"
	"errors"
	"testing"
)

func TestSolveFixedCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SolveFixed(expDecay, []float64{1}, 0, 10, 1e-4, &RK4{}, &Options{Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveFixed with cancelled ctx: %v, want context.Canceled", err)
	}
}

func TestSolveFixedNilCtxCompletes(t *testing.T) {
	sol, err := SolveFixed(expDecay, []float64{1}, 0, 2, 1e-3, &RK4{}, &Options{Ctx: nil})
	if err != nil {
		t.Fatal(err)
	}
	if tf, _ := sol.Last(); tf != 2 {
		t.Errorf("final time = %g, want 2", tf)
	}
}

func TestSolveAdaptiveCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SolveAdaptive(expDecay, []float64{1}, 0, 10, &AdaptiveOptions{Options: Options{Ctx: ctx}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveAdaptive with cancelled ctx: %v, want context.Canceled", err)
	}
}
