package ode

import (
	"context"
	"errors"
	"testing"
)

func TestSolveFixedCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SolveFixed(expDecay, []float64{1}, 0, 10, 1e-4, &RK4{}, &Options{Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveFixed with cancelled ctx: %v, want context.Canceled", err)
	}
}

func TestSolveFixedNilCtxCompletes(t *testing.T) {
	sol, err := SolveFixed(expDecay, []float64{1}, 0, 2, 1e-3, &RK4{}, &Options{Ctx: nil})
	if err != nil {
		t.Fatal(err)
	}
	if tf, _ := sol.Last(); tf != 2 {
		t.Errorf("final time = %g, want 2", tf)
	}
}

func TestSolveAdaptiveCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SolveAdaptive(expDecay, []float64{1}, 0, 10, &AdaptiveOptions{Options: Options{Ctx: ctx}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveAdaptive with cancelled ctx: %v, want context.Canceled", err)
	}
}

// TestSolveFixedCancelledNearFinalStep pins the poll-on-final-step rule:
// a cancellation that lands after the last 256-step cadence boundary but
// before the final partial step must still abort the run. With 300 steps
// the cadence polls at steps 0 and 256 only, so without the extra
// final-step poll this cancellation (fired around step 298) would be
// silently swallowed and the solve would "complete" cancelled.
func TestSolveFixedCancelledNearFinalStep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const steps = 300
	h := 1.0 / steps
	f := func(tt float64, y, dydt []float64) {
		if tt > 1-2.5*h { // two steps short of tf: past the last cadence poll
			cancel()
		}
		dydt[0] = -y[0]
	}
	sol, err := SolveFixed(f, []float64{1}, 0, 1, h, NewRK4(1), &Options{Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancellation near tf: err = %v, want context.Canceled", err)
	}
	if tf, _ := sol.Last(); tf >= 1 {
		t.Errorf("partial solution reaches tf = %g despite cancellation", tf)
	}
}
