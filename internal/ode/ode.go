// Package ode implements initial-value-problem solvers for systems of
// ordinary differential equations, written from scratch on the standard
// library (Go has no mature scientific stack).
//
// It provides the classic fixed-step Runge–Kutta family (Euler, Heun, RK4)
// and an adaptive Dormand–Prince 5(4) pair with a PI step-size controller.
// The package is the numeric substrate for the heterogeneous SIR rumor model
// (internal/core) and the Pontryagin forward–backward sweep solver
// (internal/control).
//
// Concurrency: Stepper implementations carry per-call scratch buffers and
// are NOT safe for concurrent use. Steppers are cheap to construct — when
// fanning integrations across goroutines (see internal/par and
// internal/experiments), create one Stepper per goroutine rather than
// sharing one.
package ode

import (
	"context"
	"errors"
	"fmt"
	"math"

	"rumornet/internal/floats"
)

// Func is the right-hand side of an ODE system y' = f(t, y). Implementations
// must write the derivative into dydt (which has len(y) elements) and must
// not retain either slice.
type Func func(t float64, y []float64, dydt []float64)

// Solution is a sampled trajectory of an ODE system. T holds the sample
// times in increasing order and Y[i] the state at T[i]. Each Y[i] is an
// independent copy; callers may mutate them freely.
type Solution struct {
	T []float64
	Y [][]float64
}

// Len returns the number of samples in the trajectory.
func (s *Solution) Len() int { return len(s.T) }

// Last returns the final time and state of the trajectory.
// It panics if the solution is empty.
func (s *Solution) Last() (t float64, y []float64) {
	if len(s.T) == 0 {
		panic("ode: Last on empty Solution")
	}
	return s.T[len(s.T)-1], s.Y[len(s.Y)-1]
}

// At returns the state at time t by linear interpolation between the two
// bracketing samples. Times outside the sampled range clamp to the nearest
// endpoint.
func (s *Solution) At(t float64) []float64 {
	if len(s.T) == 0 {
		panic("ode: At on empty Solution")
	}
	out := make([]float64, len(s.Y[0]))
	s.AtInto(t, out)
	return out
}

// AtInto is At without the allocation: it writes the interpolated state
// into dst, which must have the state dimension. Hot loops that evaluate a
// trajectory at many times — the FBSM co-state sweep above all — call this
// with a reused buffer so interpolation costs no allocation per call.
func (s *Solution) AtInto(t float64, dst []float64) {
	n := len(s.T)
	if n == 0 {
		panic("ode: AtInto on empty Solution")
	}
	if len(dst) != len(s.Y[0]) {
		panic(fmt.Sprintf("ode: AtInto dst dimension %d, want %d", len(dst), len(s.Y[0])))
	}
	if t <= s.T[0] {
		copy(dst, s.Y[0])
		return
	}
	if t >= s.T[n-1] {
		copy(dst, s.Y[n-1])
		return
	}
	// Binary search for the bracketing interval.
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if s.T[mid] <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	span := s.T[hi] - s.T[lo]
	w := 0.0
	if span > 0 {
		w = (t - s.T[lo]) / span
	}
	ylo, yhi := s.Y[lo], s.Y[hi]
	for i := range dst {
		dst[i] = ylo[i] + w*(yhi[i]-ylo[i])
	}
}

// Series extracts component j of the state as a time series aligned with T.
func (s *Solution) Series(j int) []float64 {
	out := make([]float64, len(s.Y))
	for i, y := range s.Y {
		out[i] = y[j]
	}
	return out
}

// Options configures an integration run. The zero value is usable: it means
// "no projection, no stop condition, default step limits".
type Options struct {
	// Project, if non-nil, is applied to the state after every accepted
	// step. It is used by the SIR model to keep densities inside the
	// simplex against round-off drift.
	Project func(y []float64)

	// Ctx, if non-nil, is polled during the integration; once it is
	// cancelled the solver abandons the run and returns the partial
	// solution together with an error wrapping ctx.Err(). This is how job
	// timeouts reach the innermost loops of long simulations and FBSM
	// sweeps without the solvers importing any service machinery.
	//
	// Fixed-step solvers poll every 256 accepted steps and additionally
	// before the final (possibly partial) step, so cancellation latency is
	// bounded by 256 steps everywhere, including just short of tf.
	Ctx context.Context

	// Stop, if non-nil, terminates the integration early when it returns
	// true. The sample at which it fired is included in the solution.
	Stop func(t float64, y []float64) bool

	// MaxSteps bounds the number of accepted steps (default 10_000_000).
	MaxSteps int

	// Record decides how many accepted steps to skip between retained
	// samples for fixed-step methods (default 1: keep every step).
	Record int

	// Progress, if non-nil, is called every ProgressEvery accepted steps
	// (and once at the final step) with the step index, the total step
	// count (0 when open-ended, as in SolveAdaptive), the time reached
	// and the current state. The state slice is reused by the solver and
	// is only valid during the call. Keeping the hook at a coarse cadence
	// keeps its overhead well under the ~5% instrumentation budget (see
	// BENCH_PR3.json); the package stays free of any observability
	// dependency — internal/core adapts this callback onto obs.Progress.
	Progress func(step, total int, t float64, y []float64)

	// ProgressEvery is the number of accepted steps between Progress
	// calls (default 256, matching the context-poll cadence).
	ProgressEvery int
}

func (o *Options) maxSteps() int {
	if o == nil || o.MaxSteps <= 0 {
		return 10_000_000
	}
	return o.MaxSteps
}

func (o *Options) record() int {
	if o == nil || o.Record <= 0 {
		return 1
	}
	return o.Record
}

func (o *Options) project(y []float64) {
	if o != nil && o.Project != nil {
		o.Project(y)
	}
}

func (o *Options) stop(t float64, y []float64) bool {
	return o != nil && o.Stop != nil && o.Stop(t, y)
}

// ctxPollInterval is how many fixed steps pass between context polls: rare
// enough that the check is free next to the RHS evaluations, frequent
// enough that cancellation lands within a fraction of a millisecond.
const ctxPollInterval = 256

func (o *Options) progressEvery() int {
	if o == nil || o.ProgressEvery <= 0 {
		return ctxPollInterval
	}
	return o.ProgressEvery
}

// progress reports a checkpoint when a Progress hook is set and the step
// lands on the cadence (or is the final step).
func (o *Options) progress(step, total int, t float64, y []float64) {
	if o == nil || o.Progress == nil {
		return
	}
	if step%o.progressEvery() == 0 || step == total {
		o.Progress(step, total, t, y)
	}
}

func (o *Options) cancelled(t float64) error {
	if o == nil || o.Ctx == nil {
		return nil
	}
	if err := o.Ctx.Err(); err != nil {
		return fmt.Errorf("ode: integration cancelled at t=%g: %w", t, err)
	}
	return nil
}

// Stepper advances an ODE state by one fixed step. Implementations keep
// internal scratch buffers and are therefore not safe for concurrent use;
// create one Stepper per goroutine.
//
// The provided steppers (Euler, Heun, RK4) size their scratch once — at
// construction via NewEuler/NewHeun/NewRK4, or lazily on the first Step —
// and the hot path performs no allocation afterwards: the only per-step
// sizing cost is a length compare that re-allocates solely when the system
// dimension changes. SolveFixed pre-sizes the stepper before entering its
// loop, so a fixed-step solve does zero allocations per step.
type Stepper interface {
	// Step writes the state at t+h into dst given the state y at t.
	// dst and y must not alias.
	Step(f Func, t float64, y []float64, h float64, dst []float64)
	// Order returns the classical convergence order of the method.
	Order() int
	// Name returns a short human-readable method name.
	Name() string
}

// Statically verify the steppers satisfy the interface.
var (
	_ Stepper = (*Euler)(nil)
	_ Stepper = (*Heun)(nil)
	_ Stepper = (*RK4)(nil)
)

// Euler is the first-order explicit Euler method. Cheap and inaccurate;
// provided mainly as a baseline for convergence tests.
type Euler struct {
	k []float64
}

// Resize sizes the scratch for dimension-n systems; it is a no-op when the
// stepper is already sized for n.
func (e *Euler) Resize(n int) {
	if len(e.k) != n {
		e.k = make([]float64, n)
	}
}

// NewEuler returns an Euler stepper with scratch preallocated for
// dimension-n systems.
func NewEuler(n int) *Euler {
	e := &Euler{}
	e.Resize(n)
	return e
}

// Step implements Stepper.
func (e *Euler) Step(f Func, t float64, y []float64, h float64, dst []float64) {
	if len(e.k) != len(y) { // cold path: unsized or re-dimensioned stepper
		e.Resize(len(y))
	}
	f(t, y, e.k)
	copy(dst, y)
	floats.AddScaled(dst, h, e.k)
}

// Order implements Stepper.
func (e *Euler) Order() int { return 1 }

// Name implements Stepper.
func (e *Euler) Name() string { return "euler" }

// Heun is the second-order explicit trapezoidal (improved Euler) method.
type Heun struct {
	k1, k2, tmp []float64
}

// Resize sizes the scratch for dimension-n systems; it is a no-op when the
// stepper is already sized for n. The stage buffers are carved from one
// contiguous arena so the stages stream through adjacent cache lines.
func (hn *Heun) Resize(n int) {
	if len(hn.k1) == n {
		return
	}
	buf := make([]float64, 3*n)
	hn.k1 = buf[0*n : 1*n : 1*n]
	hn.k2 = buf[1*n : 2*n : 2*n]
	hn.tmp = buf[2*n : 3*n : 3*n]
}

// NewHeun returns a Heun stepper with scratch preallocated for dimension-n
// systems.
func NewHeun(n int) *Heun {
	hn := &Heun{}
	hn.Resize(n)
	return hn
}

// Step implements Stepper.
func (hn *Heun) Step(f Func, t float64, y []float64, h float64, dst []float64) {
	if len(hn.k1) != len(y) { // cold path: unsized or re-dimensioned stepper
		hn.Resize(len(y))
	}

	f(t, y, hn.k1)
	copy(hn.tmp, y)
	floats.AddScaled(hn.tmp, h, hn.k1)
	f(t+h, hn.tmp, hn.k2)

	copy(dst, y)
	floats.AddScaled(dst, h/2, hn.k1)
	floats.AddScaled(dst, h/2, hn.k2)
}

// Order implements Stepper.
func (hn *Heun) Order() int { return 2 }

// Name implements Stepper.
func (hn *Heun) Name() string { return "heun" }

// RK4 is the classic fourth-order Runge–Kutta method; the workhorse for the
// SIR simulations and the forward–backward sweep.
type RK4 struct {
	k1, k2, k3, k4, tmp []float64
}

// Resize sizes the scratch for dimension-n systems; it is a no-op when the
// stepper is already sized for n. The four stage buffers and the trial
// state share one contiguous arena so a step streams through adjacent
// cache lines instead of five scattered allocations.
func (r *RK4) Resize(n int) {
	if len(r.k1) == n {
		return
	}
	buf := make([]float64, 5*n)
	r.k1 = buf[0*n : 1*n : 1*n]
	r.k2 = buf[1*n : 2*n : 2*n]
	r.k3 = buf[2*n : 3*n : 3*n]
	r.k4 = buf[3*n : 4*n : 4*n]
	r.tmp = buf[4*n : 5*n : 5*n]
}

// NewRK4 returns an RK4 stepper with scratch preallocated for dimension-n
// systems.
func NewRK4(n int) *RK4 {
	r := &RK4{}
	r.Resize(n)
	return r
}

// Step implements Stepper.
func (r *RK4) Step(f Func, t float64, y []float64, h float64, dst []float64) {
	if len(r.k1) != len(y) { // cold path: unsized or re-dimensioned stepper
		r.Resize(len(y))
	}

	f(t, y, r.k1)

	copy(r.tmp, y)
	floats.AddScaled(r.tmp, h/2, r.k1)
	f(t+h/2, r.tmp, r.k2)

	copy(r.tmp, y)
	floats.AddScaled(r.tmp, h/2, r.k2)
	f(t+h/2, r.tmp, r.k3)

	copy(r.tmp, y)
	floats.AddScaled(r.tmp, h, r.k3)
	f(t+h, r.tmp, r.k4)

	copy(dst, y)
	floats.AddScaled(dst, h/6, r.k1)
	floats.AddScaled(dst, h/3, r.k2)
	floats.AddScaled(dst, h/3, r.k3)
	floats.AddScaled(dst, h/6, r.k4)
}

// Order implements Stepper.
func (r *RK4) Order() int { return 4 }

// Name implements Stepper.
func (r *RK4) Name() string { return "rk4" }

// SolveFixed integrates y' = f(t, y) from (t0, y0) to tf with constant step
// h using the given stepper, returning the sampled trajectory. The final
// step is shortened so the trajectory ends exactly at tf. y0 is not
// modified.
//
// The step loop is allocation-free: the stepper is pre-sized before the
// loop, the double-buffered state is reused across steps, and every
// retained sample is a row of one flat backing array sized up front from
// the step count and Record cadence. The total allocation count of a solve
// is therefore a small constant, independent of the number of steps (see
// TestSolveFixedStepLoopZeroAlloc).
func SolveFixed(f Func, y0 []float64, t0, tf, h float64, st Stepper, opts *Options) (*Solution, error) {
	if err := checkSpan(t0, tf, h); err != nil {
		return nil, err
	}
	n := len(y0)
	if st == nil {
		st = NewRK4(n)
	} else if rs, ok := st.(interface{ Resize(int) }); ok {
		// Size the scratch now so the loop below never hits a stepper's
		// lazy-allocation path.
		rs.Resize(n)
	}
	steps := int(math.Ceil((tf - t0) / h))
	if ms := opts.maxSteps(); steps > ms {
		return nil, fmt.Errorf("ode: %d steps exceed MaxSteps=%d", steps, ms)
	}
	rec := opts.record()

	// Exact sample budget: the initial state, every rec-th step, the final
	// step, and at most one extra off-cadence Stop sample.
	maxSamples := steps/rec + 3
	sol := &Solution{
		T: make([]float64, 0, maxSamples),
		Y: make([][]float64, 0, maxSamples),
	}
	backing := make([]float64, maxSamples*n)
	record := func(t float64, y []float64) {
		j := len(sol.Y)
		var row []float64
		if j < maxSamples {
			row = backing[j*n : (j+1)*n : (j+1)*n]
			copy(row, y)
		} else {
			row = floats.Clone(y) // unreachable by construction; stay safe
		}
		sol.T = append(sol.T, t)
		sol.Y = append(sol.Y, row)
	}

	y := floats.Clone(y0)
	next := make([]float64, n)
	t := t0
	record(t, y)

	// Hoist the hook presence checks so an uninstrumented run pays only a
	// registered-boolean branch per step.
	hook := opts != nil && opts.Progress != nil
	every := opts.progressEvery()

	for i := 0; i < steps; i++ {
		// Poll on the cadence boundary and before the final (possibly
		// partial) step, so cancellation latency stays bounded near tf too.
		if i%ctxPollInterval == 0 || i == steps-1 {
			if err := opts.cancelled(t); err != nil {
				return sol, err
			}
		}
		step := h
		if t+step > tf {
			step = tf - t
		}
		st.Step(f, t, y, step, next)
		y, next = next, y
		t += step
		if i == steps-1 {
			t = tf
		}
		opts.project(y)
		if !floats.AllFinite(y) {
			return sol, fmt.Errorf("ode: state became non-finite at t=%g", t)
		}
		if hook && ((i+1)%every == 0 || i == steps-1) {
			opts.Progress(i+1, steps, t, y)
		}
		if (i+1)%rec == 0 || i == steps-1 {
			record(t, y)
		}
		if opts.stop(t, y) {
			if sol.T[len(sol.T)-1] != t {
				record(t, y)
			}
			return sol, nil
		}
	}
	return sol, nil
}

// ErrStepUnderflow is returned by SolveAdaptive when the error controller
// drives the step size below the representable minimum, which usually means
// the problem is too stiff for an explicit method at the requested tolerance.
var ErrStepUnderflow = errors.New("ode: adaptive step size underflow")

// AdaptiveOptions configures SolveAdaptive on top of Options.
type AdaptiveOptions struct {
	Options

	// AbsTol and RelTol are the per-component absolute and relative error
	// tolerances (defaults 1e-9 and 1e-6).
	AbsTol, RelTol float64

	// InitialStep is the first trial step (default: span/100).
	InitialStep float64

	// MaxStep caps the step size (default: the full span).
	MaxStep float64
}

func (a *AdaptiveOptions) absTol() float64 {
	if a == nil || a.AbsTol <= 0 {
		return 1e-9
	}
	return a.AbsTol
}

func (a *AdaptiveOptions) relTol() float64 {
	if a == nil || a.RelTol <= 0 {
		return 1e-6
	}
	return a.RelTol
}

// Dormand–Prince 5(4) Butcher tableau.
var (
	dpC = [7]float64{0, 1. / 5, 3. / 10, 4. / 5, 8. / 9, 1, 1}
	dpA = [7][6]float64{
		{},
		{1. / 5},
		{3. / 40, 9. / 40},
		{44. / 45, -56. / 15, 32. / 9},
		{19372. / 6561, -25360. / 2187, 64448. / 6561, -212. / 729},
		{9017. / 3168, -355. / 33, 46732. / 5247, 49. / 176, -5103. / 18656},
		{35. / 384, 0, 500. / 1113, 125. / 192, -2187. / 6784, 11. / 84},
	}
	// 5th-order solution weights (same as the last A row: FSAL property).
	dpB5 = [7]float64{35. / 384, 0, 500. / 1113, 125. / 192, -2187. / 6784, 11. / 84, 0}
	// 4th-order embedded weights.
	dpB4 = [7]float64{5179. / 57600, 0, 7571. / 16695, 393. / 640, -92097. / 339200, 187. / 2100, 1. / 40}
)

// SolveAdaptive integrates y' = f(t, y) from (t0, y0) to tf with the
// Dormand–Prince 5(4) embedded pair and a PI step-size controller. Every
// accepted step is recorded in the returned Solution. y0 is not modified.
func SolveAdaptive(f Func, y0 []float64, t0, tf float64, opts *AdaptiveOptions) (*Solution, error) {
	span := tf - t0
	if span <= 0 {
		return nil, fmt.Errorf("ode: non-positive time span [%g, %g]", t0, tf)
	}
	n := len(y0)
	if n == 0 {
		return nil, errors.New("ode: empty initial state")
	}

	atol, rtol := opts.absTol(), opts.relTol()
	h := span / 100
	if opts != nil && opts.InitialStep > 0 {
		h = opts.InitialStep
	}
	hMax := span
	if opts != nil && opts.MaxStep > 0 {
		hMax = opts.MaxStep
	}
	var optBase *Options
	if opts != nil {
		optBase = &opts.Options
	}
	maxSteps := optBase.maxSteps()

	k := make([][]float64, 7)
	for i := range k {
		k[i] = make([]float64, n)
	}
	y := floats.Clone(y0)
	ytmp := make([]float64, n)
	y5 := make([]float64, n)
	y4 := make([]float64, n)

	sol := &Solution{T: []float64{t0}, Y: [][]float64{floats.Clone(y)}}
	t := t0

	const (
		safety   = 0.9
		minScale = 0.2
		maxScale = 5.0
		beta     = 0.04 // PI controller damping
	)
	errPrev := 1.0
	accepted := 0

	for t < tf {
		if err := optBase.cancelled(t); err != nil {
			return sol, err
		}
		if h > hMax {
			h = hMax
		}
		if t+h > tf {
			h = tf - t
		}
		if h <= math.Nextafter(t, math.Inf(1))-t {
			return sol, fmt.Errorf("%w at t=%g", ErrStepUnderflow, t)
		}

		// Evaluate the seven stages.
		f(t, y, k[0])
		for s := 1; s < 7; s++ {
			copy(ytmp, y)
			for j := 0; j < s; j++ {
				if a := dpA[s][j]; a != 0 {
					floats.AddScaled(ytmp, h*a, k[j])
				}
			}
			f(t+dpC[s]*h, ytmp, k[s])
		}

		// 5th- and 4th-order candidates.
		copy(y5, y)
		copy(y4, y)
		for s := 0; s < 7; s++ {
			if dpB5[s] != 0 {
				floats.AddScaled(y5, h*dpB5[s], k[s])
			}
			if dpB4[s] != 0 {
				floats.AddScaled(y4, h*dpB4[s], k[s])
			}
		}

		// Weighted RMS error norm.
		var errNorm float64
		for i := 0; i < n; i++ {
			sc := atol + rtol*math.Max(math.Abs(y[i]), math.Abs(y5[i]))
			e := (y5[i] - y4[i]) / sc
			errNorm += e * e
		}
		errNorm = math.Sqrt(errNorm / float64(n))

		if errNorm <= 1 || h <= hMax*1e-12 {
			// Accept.
			t += h
			copy(y, y5)
			optBase.project(y)
			if !floats.AllFinite(y) {
				return sol, fmt.Errorf("ode: state became non-finite at t=%g", t)
			}
			sol.T = append(sol.T, t)
			sol.Y = append(sol.Y, floats.Clone(y))
			accepted++
			optBase.progress(accepted, 0, t, y)
			if accepted > maxSteps {
				return sol, fmt.Errorf("ode: exceeded MaxSteps=%d", maxSteps)
			}
			if optBase.stop(t, y) {
				return sol, nil
			}
			errPrev = math.Max(errNorm, 1e-10)
		}

		// PI step-size update (applies to both accepted and rejected steps).
		scale := safety * math.Pow(errNorm+1e-16, -0.2+beta) * math.Pow(errPrev, beta)
		scale = floats.Clamp(scale, minScale, maxScale)
		h *= scale
		if !(h > 0) || math.IsInf(h, 0) || math.IsNaN(h) {
			return sol, fmt.Errorf("%w (h=%g) at t=%g", ErrStepUnderflow, h, t)
		}
	}
	return sol, nil
}

func checkSpan(t0, tf, h float64) error {
	if tf <= t0 {
		return fmt.Errorf("ode: non-positive time span [%g, %g]", t0, tf)
	}
	if h <= 0 {
		return fmt.Errorf("ode: non-positive step size %g", h)
	}
	return nil
}

