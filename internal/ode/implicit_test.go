package ode

import (
	"math"
	"testing"
	"testing/quick"
)

// stiff is y' = −1000(y − cos t) − sin t with exact solution y = cos t for
// y(0) = 1. Explicit RK4 requires h ≲ 2.8/1000; the implicit solver does
// not.
func stiff(t float64, y, dydt []float64) {
	dydt[0] = -1000*(y[0]-math.Cos(t)) - math.Sin(t)
}

func TestSolveImplicitStiff(t *testing.T) {
	sol, err := SolveImplicit(stiff, []float64{1}, 0, 2, 0.01, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, y := sol.Last()
	if d := math.Abs(y[0] - math.Cos(2)); d > 1e-4 {
		t.Errorf("y(2) = %v, want cos(2) = %v (err %g)", y[0], math.Cos(2), d)
	}
}

func TestExplicitRK4FailsWhereImplicitSucceeds(t *testing.T) {
	// The same stiff problem at h = 0.01 violates RK4's stability bound
	// (1000·0.01 = 10 > 2.79): the explicit solution must blow up (the
	// driver reports a non-finite state), while SolveImplicit above
	// handled it. This is the motivation test for the implicit stepper.
	_, err := SolveFixed(stiff, []float64{1}, 0, 2, 0.01, &RK4{}, nil)
	if err == nil {
		t.Error("explicit RK4 unexpectedly stable on the stiff problem")
	}
}

func TestSolveImplicitOrders(t *testing.T) {
	tests := []struct {
		name      string
		theta     float64
		wantOrder float64
	}{
		{"backward-euler", 1.0, 1},
		{"trapezoid", 0.5, 2},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			errAt := func(h float64) float64 {
				sol, err := SolveImplicit(logistic, []float64{0.2}, 0, 2, h,
					&ImplicitOptions{Theta: tt.theta})
				if err != nil {
					t.Fatalf("SolveImplicit(h=%v): %v", h, err)
				}
				_, y := sol.Last()
				return math.Abs(y[0] - logisticExact(0.2, 2))
			}
			e1, e2 := errAt(0.05), errAt(0.025)
			order := math.Log2(e1 / e2)
			if math.Abs(order-tt.wantOrder) > 0.35 {
				t.Errorf("empirical order = %.2f, want ~%v (e1=%g e2=%g)",
					order, tt.wantOrder, e1, e2)
			}
		})
	}
}

func TestSolveImplicitMultiDimensional(t *testing.T) {
	// Harmonic oscillator: trapezoid is symplectic-adjacent and keeps the
	// energy bounded.
	sol, err := SolveImplicit(harmonic, []float64{1, 0}, 0, 2*math.Pi, 1e-3, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, y := sol.Last()
	if math.Abs(y[0]-1) > 1e-4 || math.Abs(y[1]) > 1e-4 {
		t.Errorf("after one period y = %v, want (1, 0)", y)
	}
}

func TestSolveImplicitStopAndProject(t *testing.T) {
	opts := &ImplicitOptions{
		Options: Options{
			Stop: func(_ float64, y []float64) bool { return y[0] < 0.5 },
		},
	}
	sol, err := SolveImplicit(expDecay, []float64{1}, 0, 10, 1e-3, opts)
	if err != nil {
		t.Fatal(err)
	}
	tf, y := sol.Last()
	if y[0] >= 0.5 || math.Abs(tf-math.Ln2) > 0.01 {
		t.Errorf("stop condition: t=%v y=%v", tf, y[0])
	}

	grow := func(_ float64, y, dydt []float64) { dydt[0] = 1 }
	popts := &ImplicitOptions{
		Options: Options{Project: func(y []float64) {
			if y[0] > 0.3 {
				y[0] = 0.3
			}
		}},
	}
	psol, err := SolveImplicit(grow, []float64{0}, 0, 1, 1e-2, popts)
	if err != nil {
		t.Fatal(err)
	}
	_, py := psol.Last()
	if py[0] != 0.3 {
		t.Errorf("projection: y = %v, want 0.3", py[0])
	}
}

func TestSolveImplicitValidation(t *testing.T) {
	if _, err := SolveImplicit(expDecay, []float64{1}, 1, 0, 0.1, nil); err == nil {
		t.Error("reversed span: want error")
	}
	if _, err := SolveImplicit(expDecay, nil, 0, 1, 0.1, nil); err == nil {
		t.Error("empty state: want error")
	}
	if _, err := SolveImplicit(expDecay, []float64{1}, 0, 1e6, 1e-6,
		&ImplicitOptions{Options: Options{MaxSteps: 10}}); err == nil {
		t.Error("MaxSteps: want error")
	}
}

func TestLUFactorSolve(t *testing.T) {
	a := newMatrix(3)
	vals := [][]float64{{2, 1, 1}, {4, -6, 0}, {-2, 7, 2}}
	for r := range vals {
		copy(a[r], vals[r])
	}
	perm := make([]int, 3)
	if err := luFactor(a, perm); err != nil {
		t.Fatal(err)
	}
	// Solve A x = b with known x = (1, 2, 3): b = A x.
	b := []float64{2*1 + 1*2 + 1*3, 4*1 - 6*2, -2*1 + 7*2 + 2*3}
	luSolve(a, perm, b)
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-12 {
			t.Errorf("x[%d] = %v, want %v", i, b[i], want[i])
		}
	}
}

func TestLUFactorSingular(t *testing.T) {
	a := newMatrix(2)
	a[0][0], a[0][1] = 1, 2
	a[1][0], a[1][1] = 2, 4 // linearly dependent
	perm := make([]int, 2)
	if err := luFactor(a, perm); err == nil {
		t.Error("singular matrix: want error")
	}
}

// Property: implicit trapezoid and explicit RK4 agree on the (non-stiff)
// logistic equation across random horizons.
func TestQuickImplicitMatchesExplicit(t *testing.T) {
	f := func(raw uint8) bool {
		span := 0.5 + float64(raw)/255*5
		im, err1 := SolveImplicit(logistic, []float64{0.1}, 0, span, 1e-3, nil)
		ex, err2 := SolveFixed(logistic, []float64{0.1}, 0, span, 1e-3, &RK4{}, nil)
		if err1 != nil || err2 != nil {
			return false
		}
		_, a := im.Last()
		_, b := ex.Last()
		return math.Abs(a[0]-b[0]) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSolveImplicitStiff(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SolveImplicit(stiff, []float64{1}, 0, 1, 0.01, nil); err != nil {
			b.Fatal(err)
		}
	}
}
