package ode

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"rumornet/internal/floats"
)

// expDecay is y' = -y with solution y(t) = y0 * exp(-t).
func expDecay(_ float64, y, dydt []float64) {
	for i, v := range y {
		dydt[i] = -v
	}
}

// logistic is y' = y(1-y) with solution y(t) = 1/(1 + (1/y0 - 1) e^{-t}).
func logistic(_ float64, y, dydt []float64) {
	dydt[0] = y[0] * (1 - y[0])
}

func logisticExact(y0, t float64) float64 {
	return 1 / (1 + (1/y0-1)*math.Exp(-t))
}

// harmonic is the oscillator y” = -y as a first-order system.
func harmonic(_ float64, y, dydt []float64) {
	dydt[0] = y[1]
	dydt[1] = -y[0]
}

func TestSolveFixedExpDecay(t *testing.T) {
	steppers := []Stepper{&Euler{}, &Heun{}, &RK4{}}
	tols := []float64{2e-2, 2e-4, 1e-8}
	for i, st := range steppers {
		st := st
		t.Run(st.Name(), func(t *testing.T) {
			sol, err := SolveFixed(expDecay, []float64{1}, 0, 2, 1e-3, st, nil)
			if err != nil {
				t.Fatalf("SolveFixed: %v", err)
			}
			tf, y := sol.Last()
			if tf != 2 {
				t.Errorf("final time = %v, want 2", tf)
			}
			want := math.Exp(-2)
			if d := math.Abs(y[0] - want); d > tols[i] {
				t.Errorf("y(2) = %v, want %v (|err| %g > %g)", y[0], want, d, tols[i])
			}
		})
	}
}

func TestSolveFixedLogistic(t *testing.T) {
	sol, err := SolveFixed(logistic, []float64{0.01}, 0, 10, 1e-3, &RK4{}, nil)
	if err != nil {
		t.Fatalf("SolveFixed: %v", err)
	}
	for i, ti := range sol.T {
		want := logisticExact(0.01, ti)
		if d := math.Abs(sol.Y[i][0] - want); d > 1e-8 {
			t.Fatalf("t=%v: y=%v want %v", ti, sol.Y[i][0], want)
		}
	}
}

func TestSolveFixedHarmonicEnergy(t *testing.T) {
	// RK4 should conserve the oscillator energy to high accuracy over a
	// few periods with a small step.
	sol, err := SolveFixed(harmonic, []float64{1, 0}, 0, 4*math.Pi, 1e-3, &RK4{}, nil)
	if err != nil {
		t.Fatalf("SolveFixed: %v", err)
	}
	_, y := sol.Last()
	energy := y[0]*y[0] + y[1]*y[1]
	if math.Abs(energy-1) > 1e-9 {
		t.Errorf("energy drift: %v, want 1", energy)
	}
	if math.Abs(y[0]-1) > 1e-8 || math.Abs(y[1]) > 1e-8 {
		t.Errorf("after 2 periods y = %v, want (1, 0)", y)
	}
}

// TestConvergenceOrder verifies the empirical convergence order of each
// fixed-step method on the logistic equation by halving the step size.
func TestConvergenceOrder(t *testing.T) {
	tests := []struct {
		st        Stepper
		wantOrder float64
	}{
		{&Euler{}, 1},
		{&Heun{}, 2},
		{&RK4{}, 4},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.st.Name(), func(t *testing.T) {
			errAt := func(h float64) float64 {
				sol, err := SolveFixed(logistic, []float64{0.2}, 0, 2, h, tt.st, nil)
				if err != nil {
					t.Fatalf("SolveFixed(h=%v): %v", h, err)
				}
				_, y := sol.Last()
				return math.Abs(y[0] - logisticExact(0.2, 2))
			}
			e1, e2 := errAt(0.1), errAt(0.05)
			order := math.Log2(e1 / e2)
			if math.Abs(order-tt.wantOrder) > 0.35 {
				t.Errorf("empirical order = %.2f, want ~%v (e1=%g e2=%g)", order, tt.wantOrder, e1, e2)
			}
			if o := tt.st.Order(); float64(o) != tt.wantOrder {
				t.Errorf("Order() = %d, want %v", o, tt.wantOrder)
			}
		})
	}
}

func TestSolveAdaptiveExpDecay(t *testing.T) {
	sol, err := SolveAdaptive(expDecay, []float64{1}, 0, 5, &AdaptiveOptions{AbsTol: 1e-10, RelTol: 1e-8})
	if err != nil {
		t.Fatalf("SolveAdaptive: %v", err)
	}
	tf, y := sol.Last()
	if tf != 5 {
		t.Errorf("final time = %v, want 5", tf)
	}
	want := math.Exp(-5)
	if d := math.Abs(y[0] - want); d > 1e-7 {
		t.Errorf("y(5) = %v, want %v (err %g)", y[0], want, d)
	}
}

func TestSolveAdaptiveMatchesFixed(t *testing.T) {
	// The adaptive solver and a fine fixed-step RK4 must agree on the
	// harmonic oscillator.
	ad, err := SolveAdaptive(harmonic, []float64{0, 1}, 0, 10, &AdaptiveOptions{AbsTol: 1e-11, RelTol: 1e-9})
	if err != nil {
		t.Fatalf("SolveAdaptive: %v", err)
	}
	fx, err := SolveFixed(harmonic, []float64{0, 1}, 0, 10, 1e-4, &RK4{}, &Options{Record: 100})
	if err != nil {
		t.Fatalf("SolveFixed: %v", err)
	}
	_, ya := ad.Last()
	_, yf := fx.Last()
	if !floats.EqualWithin(ya, yf, 1e-6) {
		t.Errorf("adaptive %v vs fixed %v", ya, yf)
	}
}

func TestSolveAdaptiveUsesFewerStepsWhenFlat(t *testing.T) {
	// After the transient, exp decay is nearly flat; the controller should
	// grow the step far beyond the initial one.
	sol, err := SolveAdaptive(expDecay, []float64{1}, 0, 50, &AdaptiveOptions{AbsTol: 1e-6, RelTol: 1e-6})
	if err != nil {
		t.Fatalf("SolveAdaptive: %v", err)
	}
	if sol.Len() > 400 {
		t.Errorf("adaptive solver took %d samples on a flat problem, want far fewer", sol.Len())
	}
}

func TestStopCondition(t *testing.T) {
	opts := &Options{Stop: func(_ float64, y []float64) bool { return y[0] < 0.5 }}
	sol, err := SolveFixed(expDecay, []float64{1}, 0, 10, 1e-3, &RK4{}, opts)
	if err != nil {
		t.Fatalf("SolveFixed: %v", err)
	}
	tf, y := sol.Last()
	if y[0] >= 0.5 {
		t.Errorf("stop condition not honored: y=%v", y[0])
	}
	// y = 0.5 at t = ln 2 ≈ 0.693.
	if math.Abs(tf-math.Ln2) > 0.01 {
		t.Errorf("stopped at t=%v, want ~%v", tf, math.Ln2)
	}
}

func TestProjection(t *testing.T) {
	// Project clamps the state at 0.8; the trajectory must never exceed it.
	growth := func(_ float64, y, dydt []float64) { dydt[0] = 1 }
	opts := &Options{Project: func(y []float64) { floats.ClampAll(y, 0, 0.8) }}
	sol, err := SolveFixed(growth, []float64{0}, 0, 2, 1e-2, &RK4{}, opts)
	if err != nil {
		t.Fatalf("SolveFixed: %v", err)
	}
	for i, y := range sol.Y {
		if y[0] > 0.8+1e-12 {
			t.Fatalf("sample %d: projection violated, y=%v", i, y[0])
		}
	}
	_, y := sol.Last()
	if y[0] != 0.8 {
		t.Errorf("final y = %v, want 0.8", y[0])
	}
}

func TestRecordThinning(t *testing.T) {
	sol, err := SolveFixed(expDecay, []float64{1}, 0, 1, 1e-3, &RK4{}, &Options{Record: 100})
	if err != nil {
		t.Fatalf("SolveFixed: %v", err)
	}
	if sol.Len() > 13 {
		t.Errorf("Record=100 kept %d samples, want ~11", sol.Len())
	}
	if tf, _ := sol.Last(); tf != 1 {
		t.Errorf("final time = %v, want 1 despite thinning", tf)
	}
}

func TestSolutionAt(t *testing.T) {
	sol := &Solution{
		T: []float64{0, 1, 2},
		Y: [][]float64{{0}, {10}, {40}},
	}
	tests := []struct {
		t    float64
		want float64
	}{
		{-1, 0},  // clamp low
		{0, 0},   // endpoint
		{0.5, 5}, // interpolate
		{1.5, 25},
		{2, 40},
		{3, 40}, // clamp high
	}
	for _, tt := range tests {
		if got := sol.At(tt.t)[0]; got != tt.want {
			t.Errorf("At(%v) = %v, want %v", tt.t, got, tt.want)
		}
	}
}

func TestSolutionSeries(t *testing.T) {
	sol := &Solution{T: []float64{0, 1}, Y: [][]float64{{1, 2}, {3, 4}}}
	if got := sol.Series(1); !floats.EqualWithin(got, []float64{2, 4}, 0) {
		t.Errorf("Series(1) = %v, want [2 4]", got)
	}
}

func TestErrorCases(t *testing.T) {
	if _, err := SolveFixed(expDecay, []float64{1}, 1, 0, 0.1, &RK4{}, nil); err == nil {
		t.Error("reversed span: want error")
	}
	if _, err := SolveFixed(expDecay, []float64{1}, 0, 1, -0.1, &RK4{}, nil); err == nil {
		t.Error("negative step: want error")
	}
	if _, err := SolveFixed(expDecay, []float64{1}, 0, 1e6, 1e-6, &RK4{}, &Options{MaxSteps: 100}); err == nil {
		t.Error("MaxSteps exceeded: want error")
	}
	if _, err := SolveAdaptive(expDecay, nil, 0, 1, nil); err == nil {
		t.Error("empty state: want error")
	}
	if _, err := SolveAdaptive(expDecay, []float64{1}, 2, 2, nil); err == nil {
		t.Error("zero span: want error")
	}
}

func TestNonFiniteDetection(t *testing.T) {
	blowup := func(_ float64, y, dydt []float64) { dydt[0] = y[0] * y[0] }
	// y' = y^2 with y(0)=1 blows up at t=1.
	_, err := SolveFixed(blowup, []float64{1}, 0, 2, 1e-4, &RK4{}, nil)
	if err == nil {
		t.Error("finite-time blowup: want non-finite state error")
	}
}

func TestStepUnderflowErrorIsSentinel(t *testing.T) {
	if !errors.Is(ErrStepUnderflow, ErrStepUnderflow) {
		t.Error("sentinel identity broken")
	}
}

// Property: for the linear system y' = -y, the solution scales linearly with
// the initial condition (superposition).
func TestQuickLinearity(t *testing.T) {
	f := func(y0raw, craw uint16) bool {
		y0 := 0.1 + float64(y0raw)/65535*10 // in [0.1, 10.1]
		c := 0.1 + float64(craw)/65535*5    // in [0.1, 5.1]
		s1, err1 := SolveFixed(expDecay, []float64{y0}, 0, 1, 1e-3, &RK4{}, nil)
		s2, err2 := SolveFixed(expDecay, []float64{c * y0}, 0, 1, 1e-3, &RK4{}, nil)
		if err1 != nil || err2 != nil {
			return false
		}
		_, a := s1.Last()
		_, b := s2.Last()
		return math.Abs(c*a[0]-b[0]) < 1e-9*(1+math.Abs(b[0]))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: autonomous systems are time-shift invariant — integrating from
// t0 to t0+1 gives the same result for any t0.
func TestQuickTimeShiftInvariance(t *testing.T) {
	f := func(shiftRaw uint16) bool {
		t0 := float64(shiftRaw) / 65535 * 100
		s, err := SolveFixed(logistic, []float64{0.3}, t0, t0+1, 1e-3, &RK4{}, nil)
		if err != nil {
			return false
		}
		_, y := s.Last()
		return math.Abs(y[0]-logisticExact(0.3, 1)) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: the adaptive solver's terminal value agrees with the analytic
// solution within a factor of the requested tolerance across random spans.
func TestQuickAdaptiveAccuracy(t *testing.T) {
	f := func(spanRaw uint16) bool {
		span := 0.5 + float64(spanRaw)/65535*9.5 // [0.5, 10]
		sol, err := SolveAdaptive(logistic, []float64{0.05}, 0, span,
			&AdaptiveOptions{AbsTol: 1e-9, RelTol: 1e-7})
		if err != nil {
			return false
		}
		_, y := sol.Last()
		return math.Abs(y[0]-logisticExact(0.05, span)) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRK4Step(b *testing.B) {
	st := &RK4{}
	y := make([]float64, 1696) // 848 groups × (S, I): the Digg-scale state
	dst := make([]float64, len(y))
	for i := range y {
		y[i] = 0.5
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Step(expDecay, 0, y, 1e-2, dst)
	}
}

func BenchmarkSolveAdaptiveOscillator(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SolveAdaptive(harmonic, []float64{1, 0}, 0, 20, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// TestStepperStepZeroAlloc tracks the zero-alloc contract of the fixed-step
// steppers: once sized (constructor or first Step), Step must not allocate.
func TestStepperStepZeroAlloc(t *testing.T) {
	const dim = 1696 // 848 groups × (S, I): the Digg-scale state
	y := make([]float64, dim)
	dst := make([]float64, dim)
	for i := range y {
		y[i] = 0.5
	}
	steppers := []Stepper{NewEuler(dim), NewHeun(dim), NewRK4(dim)}
	for _, st := range steppers {
		allocs := testing.AllocsPerRun(20, func() {
			st.Step(expDecay, 0, y, 1e-3, dst)
		})
		if allocs != 0 {
			t.Errorf("%s: Step allocates %v times per call, want 0", st.Name(), allocs)
		}
	}
}

// TestSolveFixedStepLoopZeroAlloc pins the per-step allocation count of the
// fixed-step solver to zero: a 100× longer integration must allocate exactly
// as many times as a short one (the constant setup — solution backing,
// double buffer, stepper scratch — is all that is permitted).
func TestSolveFixedStepLoopZeroAlloc(t *testing.T) {
	y0 := make([]float64, 64)
	for i := range y0 {
		y0[i] = 1
	}
	solve := func(tf float64) float64 {
		return testing.AllocsPerRun(10, func() {
			if _, err := SolveFixed(expDecay, y0, 0, tf, 1e-3, NewRK4(len(y0)), &Options{Record: 1 << 30}); err != nil {
				t.Fatal(err)
			}
		})
	}
	short, long := solve(0.1), solve(10) // 100 steps vs 10_000 steps
	if long != short {
		t.Errorf("allocs grew with step count: %v (100 steps) vs %v (10000 steps); step loop is not alloc-free",
			short, long)
	}
}

// benchmarkStepCost times one fixed step of the given stepper on the
// Digg-scale state dimension — the RK4-vs-Heun pair quantifies the per-step
// price of the two extra stages.
func benchmarkStepCost(b *testing.B, st Stepper) {
	y := make([]float64, 1696)
	dst := make([]float64, len(y))
	for i := range y {
		y[i] = 0.5
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Step(expDecay, 0, y, 1e-2, dst)
	}
}

// BenchmarkStepCost compares the per-step cost of the fixed-step methods at
// the Digg-scale dimension: RK4 evaluates four stages to Heun's two, so its
// step should cost about twice as much — if it costs more, the stage
// buffers have stopped streaming.
func BenchmarkStepCost(b *testing.B) {
	b.Run("heun", func(b *testing.B) { benchmarkStepCost(b, NewHeun(1696)) })
	b.Run("rk4", func(b *testing.B) { benchmarkStepCost(b, NewRK4(1696)) })
}

// BenchmarkSolveFixedDiggScale times a full fixed-step solve at the
// Digg-scale dimension with the default record cadence; with the
// preallocated trajectory backing and pre-sized stepper the whole solve
// performs a small constant number of allocations regardless of step count
// (TestSolveFixedStepLoopZeroAlloc pins that).
func BenchmarkSolveFixedDiggScale(b *testing.B) {
	y0 := make([]float64, 1696)
	for i := range y0 {
		y0[i] = 0.5
	}
	st := NewRK4(len(y0))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveFixed(expDecay, y0, 0, 1, 1e-3, st, nil); err != nil {
			b.Fatal(err)
		}
	}
}
