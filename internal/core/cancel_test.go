package core

import (
	"context"
	"errors"
	"testing"
)

func TestSimulateCtxCancelled(t *testing.T) {
	m := epidemicModel(t)
	ic, err := m.UniformIC(0.1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.SimulateCtx(ctx, ic, 50, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("SimulateCtx with cancelled ctx: %v, want context.Canceled", err)
	}
}

// TestSimulateBackgroundMatchesCtx pins that Simulate and
// SimulateCtx(background) produce identical trajectories.
func TestSimulateBackgroundMatchesCtx(t *testing.T) {
	m := epidemicModel(t)
	ic, err := m.UniformIC(0.1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.Simulate(ic, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.SimulateCtx(context.Background(), ic, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.T) != len(b.T) {
		t.Fatalf("length mismatch: %d vs %d", len(a.T), len(b.T))
	}
	for i := range a.Y {
		for j := range a.Y[i] {
			if a.Y[i][j] != b.Y[i][j] {
				t.Fatalf("state diverged at sample %d component %d", i, j)
			}
		}
	}
}
