package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"rumornet/internal/floats"
	"rumornet/internal/obs"
	"rumornet/internal/ode"
)

// UniformIC builds the paper's initial condition with the same seed
// infection i0 in every group: I_i(0) = i0, S_i(0) = 1 − i0, R_i(0) = 0.
func (m *Model) UniformIC(i0 float64) ([]float64, error) {
	if i0 <= 0 || i0 >= 1 {
		return nil, fmt.Errorf("core: initial infection %g outside (0, 1)", i0)
	}
	y := make([]float64, 2*m.n)
	for i := 0; i < m.n; i++ {
		y[i] = 1 - i0
		y[m.n+i] = i0
	}
	return y, nil
}

// RandomIC builds a random initial condition with I_i(0) uniform in
// (0, maxI0] and S_i(0) = 1 − I_i(0) (R_i(0) = 0), matching the paper's
// "10 different initial conditions" runs.
func (m *Model) RandomIC(maxI0 float64, rng *rand.Rand) ([]float64, error) {
	if maxI0 <= 0 || maxI0 >= 1 {
		return nil, fmt.Errorf("core: maxI0 %g outside (0, 1)", maxI0)
	}
	if rng == nil {
		return nil, errors.New("core: RandomIC needs a rand source")
	}
	y := make([]float64, 2*m.n)
	for i := 0; i < m.n; i++ {
		i0 := maxI0 * (1 - rng.Float64()) // in (0, maxI0]
		y[i] = 1 - i0
		y[m.n+i] = i0
	}
	return y, nil
}

// SimOptions configures Simulate.
type SimOptions struct {
	// Step is the RK4 step size (default tf/2000).
	Step float64
	// Record keeps every Record-th step (default: chosen so the trajectory
	// holds ~2000 samples).
	Record int
	// Eps1At and Eps2At, when non-nil, override the model's constant
	// countermeasures with time-varying controls.
	Eps1At, Eps2At func(t float64) float64
	// Project, when true, clamps each group's (S, I) into the state space
	// Ω after every step. The paper's raw ODE does not enforce Ω; enable
	// this only for scenario exploration, not figure reproduction.
	Project bool
	// Progress, if non-nil, receives StageODE checkpoints every
	// ProgressEvery accepted steps: steps taken, total, time reached and
	// the infectivity Θ(t). rumord's job runner threads its progress sink
	// here so long integrations are visible on GET /v1/jobs/{id}.
	Progress obs.Progress
	// ProgressEvery is the step cadence of Progress (default 256).
	ProgressEvery int
}

// Trajectory is a simulated solution with model-aware accessors.
type Trajectory struct {
	*ode.Solution
	m *Model
}

// Simulate integrates the model from the packed initial condition ic over
// (0, tf] with fixed-step RK4 (the trajectories are smooth and non-stiff at
// the paper's parameter scales; see internal/ode for adaptive alternatives).
func (m *Model) Simulate(ic []float64, tf float64, opts *SimOptions) (*Trajectory, error) {
	return m.SimulateCtx(context.Background(), ic, tf, opts)
}

// SimulateCtx is Simulate with cancellation: the integration polls ctx and
// aborts with an error wrapping ctx.Err() once it is cancelled, so callers
// (the rumord job runner in particular) can enforce per-job timeouts.
func (m *Model) SimulateCtx(ctx context.Context, ic []float64, tf float64, opts *SimOptions) (*Trajectory, error) {
	if len(ic) != 2*m.n {
		return nil, fmt.Errorf("core: initial condition dimension %d, want %d", len(ic), 2*m.n)
	}
	if tf <= 0 {
		return nil, fmt.Errorf("core: non-positive horizon %g", tf)
	}
	step := tf / 2000
	if opts != nil && opts.Step > 0 {
		step = opts.Step
	}
	rec := 0
	if opts != nil && opts.Record > 0 {
		rec = opts.Record
	}
	if rec == 0 {
		if total := int(tf / step); total > 2000 {
			rec = total / 2000
		} else {
			rec = 1
		}
	}

	rhs := ode.Func(m.RHS)
	if opts != nil && (opts.Eps1At != nil || opts.Eps2At != nil) {
		e1 := opts.Eps1At
		e2 := opts.Eps2At
		if e1 == nil {
			e1 = func(float64) float64 { return m.p.Eps1 }
		}
		if e2 == nil {
			e2 = func(float64) float64 { return m.p.Eps2 }
		}
		rhs = m.ControlledRHS(e1, e2)
	}

	oopts := &ode.Options{Record: rec, Ctx: ctx}
	if opts != nil && opts.Progress != nil {
		prog := opts.Progress
		n := m.n
		alpha := m.p.Alpha
		oopts.ProgressEvery = opts.ProgressEvery
		oopts.Progress = func(step, total int, t float64, y []float64) {
			// Checkpoint invariants for internal/obs/invariant: the smallest
			// group density I_i and the worst excess of S_i+I_i over the
			// 1+α·t inflow envelope (System (1) gives d(S_i+I_i)/dt ≤ α).
			// O(n) at the progress cadence — once per 256 steps by default.
			minI := y[n]
			massErr := y[0] + y[n] - 1
			for i := 1; i < n; i++ {
				if y[n+i] < minI {
					minI = y[n+i]
				}
				if ex := y[i] + y[n+i] - 1; ex > massErr {
					massErr = ex
				}
			}
			prog(obs.Event{
				Stage: obs.StageODE, Step: step, Total: total, T: t,
				Value: m.Theta(y), MinI: minI, MassErr: massErr - alpha*t,
			})
		}
	}
	if opts != nil && opts.Project {
		n := m.n
		oopts.Project = func(y []float64) {
			for i := 0; i < n; i++ {
				y[i] = floats.Clamp(y[i], 0, 1)
				y[n+i] = floats.Clamp(y[n+i], 0, 1-y[i])
			}
		}
	}

	sol, err := ode.SolveFixed(rhs, ic, 0, tf, step, ode.NewRK4(2*m.n), oopts)
	if err != nil {
		return nil, fmt.Errorf("core: simulate: %w", err)
	}
	return &Trajectory{Solution: sol, m: m}, nil
}

// SSeries returns the susceptible density of group i over time.
func (tr *Trajectory) SSeries(i int) []float64 { return tr.Series(i) }

// ISeries returns the infected density of group i over time.
func (tr *Trajectory) ISeries(i int) []float64 { return tr.Series(tr.m.n + i) }

// RSeries returns the derived recovered density R_i = 1 − S_i − I_i.
func (tr *Trajectory) RSeries(i int) []float64 {
	out := make([]float64, len(tr.Y))
	for j, y := range tr.Y {
		out[j] = 1 - y[i] - y[tr.m.n+i]
	}
	return out
}

// TotalISeries returns Σ_i I_i(t) — the objective's terminal quantity.
func (tr *Trajectory) TotalISeries() []float64 {
	out := make([]float64, len(tr.Y))
	n := tr.m.n
	for j, y := range tr.Y {
		out[j] = floats.Sum(y[n : 2*n])
	}
	return out
}

// MeanISeries returns the population-weighted infected density
// Σ_i P(k_i) I_i(t) — the fraction of all users infected.
func (tr *Trajectory) MeanISeries() []float64 {
	out := make([]float64, len(tr.Y))
	n := tr.m.n
	for j, y := range tr.Y {
		var s float64
		for i := 0; i < n; i++ {
			s += tr.m.dist.Prob(i) * y[n+i]
		}
		out[j] = s
	}
	return out
}

// ThetaSeries returns Θ(t) along the trajectory.
func (tr *Trajectory) ThetaSeries() []float64 {
	out := make([]float64, len(tr.Y))
	for j, y := range tr.Y {
		out[j] = tr.m.Theta(y)
	}
	return out
}

// DistTo returns the paper's Euclidean-labelled (but ∞-norm defined)
// distance Dist(t) = ‖E(t) − E*‖_∞ between the trajectory and an
// equilibrium, computed over all 3n coordinates (S, I and derived R).
func (tr *Trajectory) DistTo(eq *Equilibrium) []float64 {
	n := tr.m.n
	out := make([]float64, len(tr.Y))
	for j, y := range tr.Y {
		var d float64
		for i := 0; i < n; i++ {
			ds := abs(y[i] - eq.Y[i])
			di := abs(y[n+i] - eq.Y[n+i])
			dr := abs((1 - y[i] - y[n+i]) - (1 - eq.Y[i] - eq.Y[n+i]))
			if ds > d {
				d = ds
			}
			if di > d {
				d = di
			}
			if dr > d {
				d = dr
			}
		}
		out[j] = d
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
