package core

import (
	"errors"
	"fmt"
)

// R0Sensitivity holds the partial derivatives of the threshold with respect
// to the operational parameters — the levers a countermeasure planner can
// actually pull. Since r0 = α·Σλφ/(⟨k⟩ ε1 ε2):
//
//	∂r0/∂α  =  r0/α,   ∂r0/∂ε1 = −r0/ε1,   ∂r0/∂ε2 = −r0/ε2.
type R0Sensitivity struct {
	R0     float64
	DAlpha float64 // ∂r0/∂α
	DEps1  float64 // ∂r0/∂ε1
	DEps2  float64 // ∂r0/∂ε2
	// Elasticities (d ln r0 / d ln p): +1 for α, −1 for ε1 and ε2 — the
	// threshold responds equally (and oppositely) to relative changes in
	// either countermeasure, so the cheaper one should be scaled first.
	ElastAlpha, ElastEps1, ElastEps2 float64
}

// Sensitivity returns the closed-form threshold sensitivities at the
// model's parameters.
func (m *Model) Sensitivity() R0Sensitivity {
	r0 := m.R0()
	s := R0Sensitivity{
		R0:         r0,
		ElastAlpha: 1,
		ElastEps1:  -1,
		ElastEps2:  -1,
	}
	if m.p.Alpha > 0 {
		s.DAlpha = r0 / m.p.Alpha
	}
	s.DEps1 = -r0 / m.p.Eps1
	s.DEps2 = -r0 / m.p.Eps2
	return s
}

// RequiredEps2 returns the smallest blocking rate ε2 that drives the
// threshold to targetR0 while keeping ε1 fixed — the "how hard must we
// block" planning query. It returns an error if targetR0 is not positive.
func (m *Model) RequiredEps2(targetR0 float64) (float64, error) {
	if targetR0 <= 0 {
		return 0, fmt.Errorf("core: target r0 = %g must be positive", targetR0)
	}
	// r0 ∝ 1/ε2 ⇒ ε2* = ε2 · r0/target.
	return m.p.Eps2 * m.R0() / targetR0, nil
}

// RequiredEps1 is the ε1 counterpart of RequiredEps2.
func (m *Model) RequiredEps1(targetR0 float64) (float64, error) {
	if targetR0 <= 0 {
		return 0, fmt.Errorf("core: target r0 = %g must be positive", targetR0)
	}
	return m.p.Eps1 * m.R0() / targetR0, nil
}

// SweepVerdicts classifies every (ε1, ε2) combination by Theorem 5,
// returning verdicts[i][j] for eps1s[i] × eps2s[j] — the extinction-
// frontier map of the threshold example.
func (m *Model) SweepVerdicts(eps1s, eps2s []float64) ([][]Verdict, error) {
	if len(eps1s) == 0 || len(eps2s) == 0 {
		return nil, errors.New("core: empty sweep axes")
	}
	out := make([][]Verdict, len(eps1s))
	for i, e1 := range eps1s {
		if e1 <= 0 {
			return nil, fmt.Errorf("core: sweep ε1 = %g must be positive", e1)
		}
		out[i] = make([]Verdict, len(eps2s))
		for j, e2 := range eps2s {
			if e2 <= 0 {
				return nil, fmt.Errorf("core: sweep ε2 = %g must be positive", e2)
			}
			if m.R0At(e1, e2) <= 1 {
				out[i][j] = VerdictExtinct
			} else {
				out[i][j] = VerdictEpidemic
			}
		}
	}
	return out, nil
}

// PeakInfo describes the maximum of the population-weighted infected
// fraction along a trajectory.
type PeakInfo struct {
	Time  float64
	Value float64
}

// Peak returns the time and value of the maximum population-weighted
// infected fraction.
func (tr *Trajectory) Peak() PeakInfo {
	mean := tr.MeanISeries()
	best := PeakInfo{Time: tr.T[0], Value: mean[0]}
	for j, v := range mean {
		if v > best.Value {
			best = PeakInfo{Time: tr.T[j], Value: v}
		}
	}
	return best
}

// ErrNotExtinct is returned by TimeToExtinction when the infection never
// falls below the threshold within the trajectory.
var ErrNotExtinct = errors.New("core: infection did not fall below the threshold")

// TimeToExtinction returns the first time the population-weighted infected
// fraction falls (and stays, for the remainder of the trajectory) below
// threshold.
func (tr *Trajectory) TimeToExtinction(threshold float64) (float64, error) {
	if threshold <= 0 {
		return 0, fmt.Errorf("core: threshold %g must be positive", threshold)
	}
	mean := tr.MeanISeries()
	// Scan backwards for the last sample at or above the threshold.
	last := -1
	for j := len(mean) - 1; j >= 0; j-- {
		if mean[j] >= threshold {
			last = j
			break
		}
	}
	switch {
	case last == len(mean)-1:
		return 0, ErrNotExtinct
	case last < 0:
		return tr.T[0], nil // below threshold from the start
	default:
		return tr.T[last+1], nil
	}
}
