package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"rumornet/internal/degreedist"
)

func TestSensitivityClosedForm(t *testing.T) {
	m := extinctModel(t)
	s := m.Sensitivity()
	p := m.Params()
	if math.Abs(s.DAlpha-s.R0/p.Alpha) > 1e-12 {
		t.Errorf("DAlpha = %v, want %v", s.DAlpha, s.R0/p.Alpha)
	}
	if math.Abs(s.DEps1+s.R0/p.Eps1) > 1e-12 {
		t.Errorf("DEps1 = %v, want %v", s.DEps1, -s.R0/p.Eps1)
	}
	if s.ElastAlpha != 1 || s.ElastEps1 != -1 || s.ElastEps2 != -1 {
		t.Errorf("elasticities = %+v", s)
	}
}

// TestSensitivityMatchesFiniteDifference validates the closed forms
// numerically.
func TestSensitivityMatchesFiniteDifference(t *testing.T) {
	m := extinctModel(t)
	p := m.Params()
	s := m.Sensitivity()
	const h = 1e-7

	fd := func(perturb func(*Params, float64)) float64 {
		pp := p
		perturb(&pp, h)
		mp, err := NewModel(m.Dist(), pp)
		if err != nil {
			t.Fatal(err)
		}
		pm := p
		perturb(&pm, -h)
		mm, err := NewModel(m.Dist(), pm)
		if err != nil {
			t.Fatal(err)
		}
		return (mp.R0() - mm.R0()) / (2 * h)
	}

	if got := fd(func(q *Params, d float64) { q.Alpha += d }); math.Abs(got-s.DAlpha) > 1e-4*(1+math.Abs(s.DAlpha)) {
		t.Errorf("∂r0/∂α finite diff %v vs closed form %v", got, s.DAlpha)
	}
	if got := fd(func(q *Params, d float64) { q.Eps1 += d }); math.Abs(got-s.DEps1) > 1e-3*(1+math.Abs(s.DEps1)) {
		t.Errorf("∂r0/∂ε1 finite diff %v vs closed form %v", got, s.DEps1)
	}
	if got := fd(func(q *Params, d float64) { q.Eps2 += d }); math.Abs(got-s.DEps2) > 1e-3*(1+math.Abs(s.DEps2)) {
		t.Errorf("∂r0/∂ε2 finite diff %v vs closed form %v", got, s.DEps2)
	}
}

func TestRequiredEps(t *testing.T) {
	m := epidemicModel(t) // r0 = 2.1661
	e2, err := m.RequiredEps2(0.9)
	if err != nil {
		t.Fatal(err)
	}
	// Verify: with ε2 = e2 the threshold equals 0.9.
	if got := m.R0At(m.Params().Eps1, e2); math.Abs(got-0.9) > 1e-9 {
		t.Errorf("r0 at required ε2 = %v, want 0.9", got)
	}
	e1, err := m.RequiredEps1(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.R0At(e1, m.Params().Eps2); math.Abs(got-0.9) > 1e-9 {
		t.Errorf("r0 at required ε1 = %v, want 0.9", got)
	}
	if _, err := m.RequiredEps2(0); err == nil {
		t.Error("target 0: want error")
	}
	if _, err := m.RequiredEps1(-1); err == nil {
		t.Error("negative target: want error")
	}
}

func TestSweepVerdicts(t *testing.T) {
	m := extinctModel(t)
	eps1s := []float64{0.01, 0.5}
	eps2s := []float64{0.01, 0.5}
	v, err := m.SweepVerdicts(eps1s, eps2s)
	if err != nil {
		t.Fatal(err)
	}
	// Weak countermeasures: epidemic; strong: extinct.
	if v[0][0] != VerdictEpidemic {
		t.Errorf("weak corner = %v, want epidemic", v[0][0])
	}
	if v[1][1] != VerdictExtinct {
		t.Errorf("strong corner = %v, want extinct", v[1][1])
	}
	// Monotonicity along each axis: once extinct, stronger stays extinct.
	for i := range eps1s {
		for j := 1; j < len(eps2s); j++ {
			if v[i][j-1] == VerdictExtinct && v[i][j] != VerdictExtinct {
				t.Errorf("verdict not monotone in ε2 at (%d, %d)", i, j)
			}
		}
	}
	if _, err := m.SweepVerdicts(nil, eps2s); err == nil {
		t.Error("empty axis: want error")
	}
	if _, err := m.SweepVerdicts([]float64{0}, eps2s); err == nil {
		t.Error("zero ε1: want error")
	}
	if _, err := m.SweepVerdicts(eps1s, []float64{-1}); err == nil {
		t.Error("negative ε2: want error")
	}
}

func TestTrajectoryPeak(t *testing.T) {
	m := extinctModel(t)
	ic, err := m.UniformIC(0.1)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := m.Simulate(ic, 200, nil)
	if err != nil {
		t.Fatal(err)
	}
	pk := tr.Peak()
	mean := tr.MeanISeries()
	if pk.Value < mean[0] || pk.Value < mean[len(mean)-1] {
		t.Errorf("peak %v below endpoints", pk.Value)
	}
	if pk.Time < 0 || pk.Time > 200 {
		t.Errorf("peak time %v outside horizon", pk.Time)
	}
}

func TestTimeToExtinction(t *testing.T) {
	m := extinctModel(t)
	ic, err := m.UniformIC(0.1)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := m.Simulate(ic, 800, nil)
	if err != nil {
		t.Fatal(err)
	}
	tExt, err := tr.TimeToExtinction(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if tExt <= 0 || tExt >= 800 {
		t.Errorf("extinction time = %v", tExt)
	}
	// After tExt the infection stays below the threshold.
	mean := tr.MeanISeries()
	for j, tj := range tr.T {
		if tj >= tExt && mean[j] >= 0.01 {
			t.Fatalf("infection %v above threshold at t=%v >= tExt=%v", mean[j], tj, tExt)
		}
	}
	// A threshold that is never reached errors.
	if _, err := tr.TimeToExtinction(1e-12); !errors.Is(err, ErrNotExtinct) {
		t.Errorf("unreachable threshold error = %v, want ErrNotExtinct", err)
	}
	if _, err := tr.TimeToExtinction(0); err == nil {
		t.Error("zero threshold: want error")
	}
	// A threshold above the initial value: extinct from the start.
	t0, err := tr.TimeToExtinction(0.99)
	if err != nil || t0 != tr.T[0] {
		t.Errorf("instant extinction = %v, %v", t0, err)
	}
}

// Property: RequiredEps2 inverts R0At exactly for random targets.
func TestQuickRequiredEps2Inverts(t *testing.T) {
	m := epidemicModel(t)
	f := func(raw uint8) bool {
		target := 0.1 + float64(raw)/255*4
		e2, err := m.RequiredEps2(target)
		if err != nil {
			return false
		}
		return math.Abs(m.R0At(m.Params().Eps1, e2)-target) < 1e-9*(1+target)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the verdict sweep is consistent with R0At everywhere.
func TestQuickSweepConsistent(t *testing.T) {
	d, err := degreedist.TruncatedPowerLaw(1.5, 1, 15)
	if err != nil {
		t.Fatal(err)
	}
	m, err := CalibratedModel(d, 0.01, 0.1, 0.05, 1.5, degreedist.OmegaSaturating(0.5, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	f := func(r1, r2 uint8) bool {
		e1 := 0.01 + float64(r1)/255
		e2 := 0.01 + float64(r2)/255
		v, err := m.SweepVerdicts([]float64{e1}, []float64{e2})
		if err != nil {
			return false
		}
		want := VerdictEpidemic
		if m.R0At(e1, e2) <= 1 {
			want = VerdictExtinct
		}
		return v[0][0] == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
