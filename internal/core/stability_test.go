package core

import (
	"math"
	"testing"
	"testing/quick"

	"rumornet/internal/degreedist"
)

func TestJacobianHandComputed(t *testing.T) {
	// Two groups, fully hand-checkable.
	d, err := degreedist.Uniform([]int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	const (
		alpha = 0.01
		e1    = 0.1
		e2    = 0.2
	)
	m, err := NewModel(d, Params{
		Alpha:  alpha,
		Eps1:   e1,
		Eps2:   e2,
		Lambda: degreedist.LambdaLinear(0.1), // λ = {0.2, 0.4}
		Omega:  degreedist.OmegaLinear(),     // φ = {1, 2}, ⟨k⟩ = 3
	})
	if err != nil {
		t.Fatal(err)
	}
	y := []float64{0.9, 0.8, 0.1, 0.2}
	theta := m.Theta(y) // 0.5/3

	jac := m.Jacobian(y)
	// ∂Ṡ_0/∂S_0 = −λ_0 Θ − ε1.
	if want := -0.2*theta - e1; math.Abs(jac[0][0]-want) > 1e-15 {
		t.Errorf("J[0][0] = %v, want %v", jac[0][0], want)
	}
	// ∂Ṡ_0/∂S_1 = 0 (no direct S–S coupling).
	if jac[0][1] != 0 {
		t.Errorf("J[0][1] = %v, want 0", jac[0][1])
	}
	// ∂Ṡ_0/∂I_1 = −λ_0 S_0 φ_1/⟨k⟩ = −0.2·0.9·2/3.
	if want := -0.2 * 0.9 * 2 / 3; math.Abs(jac[0][3]-want) > 1e-15 {
		t.Errorf("J[0][3] = %v, want %v", jac[0][3], want)
	}
	// ∂İ_1/∂S_1 = λ_1 Θ.
	if want := 0.4 * theta; math.Abs(jac[3][1]-want) > 1e-15 {
		t.Errorf("J[3][1] = %v, want %v", jac[3][1], want)
	}
	// ∂İ_1/∂I_1 = λ_1 S_1 φ_1/⟨k⟩ − ε2.
	if want := 0.4*0.8*2/3 - e2; math.Abs(jac[3][3]-want) > 1e-15 {
		t.Errorf("J[3][3] = %v, want %v", jac[3][3], want)
	}
}

// TestJacobianMatchesFiniteDifferences validates every entry against a
// central finite difference of the RHS.
func TestJacobianMatchesFiniteDifferences(t *testing.T) {
	m := epidemicModel(t)
	ic, err := m.UniformIC(0.2)
	if err != nil {
		t.Fatal(err)
	}
	jac := m.Jacobian(ic)
	dim := m.StateDim()
	const h = 1e-6
	fPlus := make([]float64, dim)
	fMinus := make([]float64, dim)
	yPert := make([]float64, dim)
	for c := 0; c < dim; c++ {
		copy(yPert, ic)
		yPert[c] += h
		m.RHS(0, yPert, fPlus)
		yPert[c] -= 2 * h
		m.RHS(0, yPert, fMinus)
		for r := 0; r < dim; r++ {
			fd := (fPlus[r] - fMinus[r]) / (2 * h)
			if math.Abs(jac[r][c]-fd) > 1e-6*(1+math.Abs(fd)) {
				t.Fatalf("J[%d][%d] = %v, finite difference %v", r, c, jac[r][c], fd)
			}
		}
	}
}

func TestStabilityE0Theorem2(t *testing.T) {
	// r0 < 1: stable; the lead eigenvalue is Γ − ε2 = ε2(r0 − 1) < 0.
	ext := extinctModel(t)
	rep := ext.StabilityE0()
	if !rep.Stable {
		t.Error("subcritical E0 reported unstable")
	}
	wantLead := ext.Params().Eps2 * (ext.R0() - 1)
	if math.Abs(rep.Eigenvalues[2]-wantLead) > 1e-12 {
		t.Errorf("Γ − ε2 = %v, want ε2(r0−1) = %v", rep.Eigenvalues[2], wantLead)
	}
	if rep.Eigenvalues[0] != -ext.Params().Eps1 || rep.Eigenvalues[1] != -ext.Params().Eps2 {
		t.Errorf("trivial eigenvalues wrong: %v", rep.Eigenvalues)
	}

	// r0 > 1: unstable with positive lead eigenvalue.
	epi := epidemicModel(t)
	rep = epi.StabilityE0()
	if rep.Stable {
		t.Error("supercritical E0 reported stable")
	}
	if rep.LeadEigenvalue <= 0 {
		t.Errorf("lead eigenvalue = %v, want > 0", rep.LeadEigenvalue)
	}
}

// TestDominantEigenvalueMatchesClosedForm cross-checks the numeric power
// iteration against the Theorem 2 closed-form spectrum at E0.
func TestDominantEigenvalueMatchesClosedForm(t *testing.T) {
	for _, m := range []*Model{extinctModel(t), epidemicModel(t)} {
		rep := m.StabilityE0()
		got, err := m.DominantRealEigenvalue(m.ZeroEquilibrium().Y)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-rep.LeadEigenvalue) > 1e-6*(1+math.Abs(rep.LeadEigenvalue)) {
			t.Errorf("numeric lead eigenvalue %v, closed form %v", got, rep.LeadEigenvalue)
		}
	}
}

// TestDominantEigenvalueNegativeAtEPlus: the positive equilibrium of a
// supercritical system is locally stable, so the lead eigenvalue of the
// Jacobian there must be negative.
func TestDominantEigenvalueNegativeAtEPlus(t *testing.T) {
	m := epidemicModel(t)
	ep, err := m.PositiveEquilibrium()
	if err != nil {
		t.Fatal(err)
	}
	lead, err := m.DominantRealEigenvalue(ep.Y)
	if err != nil {
		t.Fatal(err)
	}
	if lead >= 0 {
		t.Errorf("lead eigenvalue at E+ = %v, want < 0 (Theorem 4)", lead)
	}
}

// Property: the Theorem 2 verdict (sign of Γ − ε2) agrees with the r0
// threshold across random calibrations.
func TestQuickStabilityMatchesThreshold(t *testing.T) {
	d := testDist(t)
	f := func(raw uint16) bool {
		target := 0.1 + float64(raw)/65535*3.0 // r0 ∈ [0.1, 3.1]
		m, err := CalibratedModel(d, 0.01, 0.1, 0.05, target, degreedist.OmegaSaturating(0.5, 0.5))
		if err != nil {
			return false
		}
		rep := m.StabilityE0()
		return rep.Stable == (m.R0() < 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkJacobianDiggScale(b *testing.B) {
	d, err := degreedist.TruncatedPowerLaw(1.5, 1, 995)
	if err != nil {
		b.Fatal(err)
	}
	m, err := CalibratedModel(d, 0.01, 0.2, 0.05, 0.722, degreedist.OmegaSaturating(0.5, 0.5))
	if err != nil {
		b.Fatal(err)
	}
	ic, err := m.UniformIC(0.1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Jacobian(ic)
	}
}
