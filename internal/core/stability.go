package core

import (
	"errors"
	"fmt"
	"math"
)

// Jacobian returns the 2n×2n Jacobian matrix of the (S, I) subsystem
// (System (2)) at the packed state y, in the same [S..., I...] block order.
// Entry [r][c] is ∂(dy_r/dt)/∂y_c:
//
//	∂Ṡ_i/∂S_j = δ_ij (−λ_i Θ − ε1)
//	∂Ṡ_i/∂I_j = −λ_i S_i φ_j/⟨k⟩
//	∂İ_i/∂S_j = δ_ij λ_i Θ
//	∂İ_i/∂I_j = λ_i S_i φ_j/⟨k⟩ − δ_ij ε2
//
// This is the object the paper linearizes for Theorem 2. The matrix is
// dense; at Digg scale (n = 848) it holds ~23 MB, so reserve it for
// analysis rather than hot loops.
func (m *Model) Jacobian(y []float64) [][]float64 {
	n := m.n
	theta := m.Theta(y)
	e1, e2 := m.p.Eps1, m.p.Eps2
	jac := make([][]float64, 2*n)
	for r := range jac {
		jac[r] = make([]float64, 2*n)
	}
	for i := 0; i < n; i++ {
		li := m.lambda[i]
		si := y[i]
		jac[i][i] = -li*theta - e1
		jac[n+i][i] = li * theta
		for j := 0; j < n; j++ {
			coef := li * si * m.varphi[j] / m.meanK
			jac[i][n+j] -= coef
			jac[n+i][n+j] += coef
		}
		jac[n+i][n+i] -= e2
	}
	return jac
}

// StabilityReport is the Theorem 2 local analysis at the zero equilibrium.
type StabilityReport struct {
	// Gamma is Γ = (1/⟨k⟩) Σ λ(k_i) φ(k_i) S0 with S0 = α/ε1.
	Gamma float64
	// Eigenvalues holds the distinct analytic eigenvalues of J(E0):
	// −ε1 (multiplicity n), −ε2 (multiplicity n−1) and Γ − ε2.
	Eigenvalues [3]float64
	// LeadEigenvalue is the largest eigenvalue, whose sign decides local
	// stability: Γ − ε2 = ε2(r0 − 1) when S0 = α/ε1 < ... (see below).
	LeadEigenvalue float64
	// Stable reports whether every eigenvalue is negative (E0 locally
	// asymptotically stable — Theorem 2's r0 < 1 case).
	Stable bool
}

// StabilityE0 computes the closed-form Theorem 2 analysis: at E0 the
// Jacobian is block upper-triangular with a rank-one perturbation of −ε2 I
// in the infected block, so its spectrum is exactly
//
//	{−ε1 (×n), −ε2 (×(n−1)), Γ − ε2},
//
// and E0 is locally asymptotically stable iff Γ < ε2, i.e. r0 < 1.
func (m *Model) StabilityE0() StabilityReport {
	s0 := m.p.Alpha / m.p.Eps1
	gamma := m.sumLV * s0 / m.meanK
	lead := gamma - m.p.Eps2
	if -m.p.Eps1 > lead {
		lead = -m.p.Eps1
	}
	return StabilityReport{
		Gamma:          gamma,
		Eigenvalues:    [3]float64{-m.p.Eps1, -m.p.Eps2, gamma - m.p.Eps2},
		LeadEigenvalue: lead,
		Stable:         gamma-m.p.Eps2 < 0, // −ε1, −ε2 < 0 always
	}
}

// ErrPowerIteration is returned when the dominant-eigenvalue iteration does
// not converge.
var ErrPowerIteration = errors.New("core: power iteration did not converge")

// DominantRealEigenvalue numerically estimates the largest real part among
// the eigenvalues of the Jacobian at y, using shifted power iteration:
// because the spectrum of this system at its equilibria is real (the
// infected block is a rank-one update of a scaled identity and the
// susceptible block is diagonal), iterating on J + σI with a positive shift
// σ large enough to make all shifted eigenvalues positive converges to
// σ + max Re λ. It cross-checks the closed-form Theorem 2 spectrum and
// extends the analysis to states other than E0.
func (m *Model) DominantRealEigenvalue(y []float64) (float64, error) {
	jac := m.Jacobian(y)
	dim := len(jac)

	// A provably sufficient shift: Gershgorin bound on |λ|.
	var bound float64
	for r := 0; r < dim; r++ {
		var row float64
		for c := 0; c < dim; c++ {
			row += math.Abs(jac[r][c])
		}
		if row > bound {
			bound = row
		}
	}
	shift := bound + 1
	for r := 0; r < dim; r++ {
		jac[r][r] += shift
	}

	// Power iteration with Rayleigh-quotient convergence check.
	v := make([]float64, dim)
	for i := range v {
		v[i] = 1 / math.Sqrt(float64(dim))
	}
	w := make([]float64, dim)
	var prev float64 = math.Inf(1)
	for iter := 0; iter < 10000; iter++ {
		matVec(jac, v, w)
		// Rayleigh quotient (v normalized).
		var rq float64
		for i := range v {
			rq += v[i] * w[i]
		}
		norm := 0.0
		for _, x := range w {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return -shift, nil // nilpotent: all eigenvalues at −shift
		}
		for i := range w {
			v[i] = w[i] / norm
		}
		if math.Abs(rq-prev) <= 1e-12*(1+math.Abs(rq)) {
			return rq - shift, nil
		}
		prev = rq
	}
	return 0, fmt.Errorf("%w after 10000 iterations", ErrPowerIteration)
}

func matVec(a [][]float64, x, dst []float64) {
	for r := range a {
		var sum float64
		row := a[r]
		for c, v := range x {
			sum += row[c] * v
		}
		dst[r] = sum
	}
}
