// Package core implements the paper's primary contribution: the
// heterogeneous-network SIR rumor-propagation model (System (1)), its
// epidemic threshold r0, the equilibrium solutions E0/E+ of Theorem 1 and
// the stability results of Theorems 2–5.
//
// Users are partitioned into n degree groups. The model state is the vector
// [S_1..S_n, I_1..I_n]; the recovered densities are derived as
// R_i = 1 − S_i − I_i (the paper's state space Ω; see DESIGN.md for why the
// third rate equation is redundant under this normalization).
package core

import (
	"errors"
	"fmt"
	"math"

	"rumornet/internal/degreedist"
	"rumornet/internal/ode"
)

// Params holds the epidemic and countermeasure rates of System (1)
// (Table I of the paper).
type Params struct {
	// Alpha is the rate at which new (susceptible) individuals begin to
	// concern about the rumor.
	Alpha float64
	// Eps1 is the immunization rate on susceptible individuals
	// (spreading truth).
	Eps1 float64
	// Eps2 is the blocking rate on infected individuals.
	Eps2 float64
	// Lambda is the rumor acceptance rate λ(k) ≥ 0. (The paper's prose
	// bounds λ in (0, 1), but its own evaluation uses λ(k_i) = k_i, a
	// transition rate; the model accepts any non-negative rate.)
	Lambda degreedist.KFunc
	// Omega is the infectivity ω(k) of an infected individual.
	Omega degreedist.KFunc
}

func (p Params) validate() error {
	switch {
	case p.Alpha < 0:
		return fmt.Errorf("core: Alpha = %g must be non-negative", p.Alpha)
	case p.Eps1 <= 0:
		return fmt.Errorf("core: Eps1 = %g must be positive (E0 has S = α/ε1)", p.Eps1)
	case p.Eps2 <= 0:
		return fmt.Errorf("core: Eps2 = %g must be positive", p.Eps2)
	case p.Lambda == nil:
		return errors.New("core: Lambda function is required")
	case p.Omega == nil:
		return errors.New("core: Omega function is required")
	}
	return nil
}

// Model is the heterogeneous SIR system over a fixed degree distribution.
// It is immutable after construction and safe for concurrent use.
type Model struct {
	dist  *degreedist.Dist
	p     Params
	n     int
	meanK float64

	lambda []float64 // λ(k_i)
	varphi []float64 // φ(k_i) = ω(k_i) P(k_i)
	// lamphi interleaves the two rate tables as (λ(k_i), φ(k_i)) pairs so
	// the fused RHS sweep reads one sequential stream instead of gathering
	// from two parallel arrays; see DESIGN.md §11 "Hot-loop layout".
	lamphi []float64
	sumLV  float64 // Σ λ(k_i) φ(k_i)
}

// NewModel validates the parameters and precomputes the per-group rates.
func NewModel(dist *degreedist.Dist, p Params) (*Model, error) {
	if dist == nil {
		return nil, errors.New("core: nil degree distribution")
	}
	if err := dist.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid distribution: %w", err)
	}
	if err := p.validate(); err != nil {
		return nil, err
	}
	n := dist.N()
	m := &Model{
		dist:   dist,
		p:      p,
		n:      n,
		meanK:  dist.MeanDegree(),
		lambda: make([]float64, n),
		varphi: make([]float64, n),
		lamphi: make([]float64, 2*n),
	}
	for i := 0; i < n; i++ {
		k := float64(dist.Degree(i))
		lam := p.Lambda(k)
		if lam < 0 {
			return nil, fmt.Errorf("core: λ(%g) = %g negative", k, lam)
		}
		om := p.Omega(k)
		if om < 0 {
			return nil, fmt.Errorf("core: ω(%g) = %g negative", k, om)
		}
		m.lambda[i] = lam
		m.varphi[i] = om * dist.Prob(i)
		m.lamphi[2*i] = lam
		m.lamphi[2*i+1] = m.varphi[i]
		m.sumLV += lam * m.varphi[i]
	}
	if m.meanK <= 0 {
		return nil, errors.New("core: mean degree must be positive")
	}
	return m, nil
}

// N returns the number of degree groups.
func (m *Model) N() int { return m.n }

// Dist returns the model's degree distribution.
func (m *Model) Dist() *degreedist.Dist { return m.dist }

// Params returns the model parameters.
func (m *Model) Params() Params { return m.p }

// MeanDegree returns ⟨k⟩.
func (m *Model) MeanDegree() float64 { return m.meanK }

// Lambda returns λ(k_i) for group i.
func (m *Model) Lambda(i int) float64 { return m.lambda[i] }

// Varphi returns φ(k_i) = ω(k_i) P(k_i) for group i.
func (m *Model) Varphi(i int) float64 { return m.varphi[i] }

// StateDim returns the dimension of the packed ODE state, 2n.
func (m *Model) StateDim() int { return 2 * m.n }

// S returns S_i from a packed state vector.
func (m *Model) S(y []float64, i int) float64 { return y[i] }

// I returns I_i from a packed state vector.
func (m *Model) I(y []float64, i int) float64 { return y[m.n+i] }

// R returns the derived recovered density R_i = 1 − S_i − I_i.
func (m *Model) R(y []float64, i int) float64 { return 1 - y[i] - y[m.n+i] }

// Theta computes the average rumor infectivity
// Θ = (1/⟨k⟩) Σ φ(k_i) I_i — the coupling term of System (1).
func (m *Model) Theta(y []float64) float64 {
	var sum float64
	is := y[m.n : 2*m.n]
	for i, phi := range m.varphi {
		sum += phi * is[i]
	}
	return sum / m.meanK
}

// RHS writes the time derivative of the packed state under the model's
// constant countermeasures (Eps1, Eps2). It implements ode.Func.
func (m *Model) RHS(t float64, y, dydt []float64) {
	m.rhs(y, dydt, m.p.Eps1, m.p.Eps2)
}

// ControlledRHS returns an ode.Func whose countermeasure rates are the
// time-varying controls eps1(t), eps2(t) — the dynamic control system of
// Section IV.
func (m *Model) ControlledRHS(eps1, eps2 func(t float64) float64) ode.Func {
	return func(t float64, y, dydt []float64) {
		m.rhs(y, dydt, eps1(t), eps2(t))
	}
}

// rhs is the fused hot loop of System (1): a first sweep accumulates the Θ
// numerator while stashing the Θ-independent factor λ_i·S_i in dydt, and a
// second sweep applies the now-known coupling. The interleaved (λ, φ) table
// and the capped sub-slices keep every access sequential and bounds-check
// free. The arithmetic evaluates in exactly the order of the pre-fusion
// Theta-then-loop formulation, so trajectories are bit-identical to it (the
// golden test in core_test.go pins this).
func (m *Model) rhs(y, dydt []float64, e1, e2 float64) {
	n := m.n
	ss := y[:n:n]
	is := y[n : 2*n : 2*n]
	ds := dydt[:n:n]
	di := dydt[n : 2*n : 2*n]
	lp := m.lamphi[: 2*n : 2*n]

	var acc float64
	j := 0
	for i := 0; i < n; i++ {
		ds[i] = lp[j] * ss[i] // stash λ_i·S_i
		acc += lp[j+1] * is[i]
		j += 2
	}
	theta := acc / m.meanK
	alpha := m.p.Alpha
	for i := 0; i < n; i++ {
		force := ds[i] * theta
		ds[i] = alpha - force - e1*ss[i]
		di[i] = force - e2*is[i]
	}
}

// R0 returns the paper's epidemic threshold
//
//	r0 = (α/⟨k⟩) Σ λ(k_i) φ(k_i) / (ε1 ε2)
//
// under the model's constant countermeasures. The rumor becomes extinct iff
// r0 ≤ 1 (Theorem 5).
func (m *Model) R0() float64 { return m.R0At(m.p.Eps1, m.p.Eps2) }

// R0At returns the threshold under hypothetical countermeasure rates; used
// to track r0(t) along an optimal-control schedule (Fig. 4(b)).
func (m *Model) R0At(eps1, eps2 float64) float64 {
	if eps1 <= 0 || eps2 <= 0 {
		return math.Inf(1)
	}
	return m.p.Alpha * m.sumLV / (m.meanK * eps1 * eps2)
}

// EffectiveR0 returns the instantaneous stability indicator of Theorem 2,
//
//	r_eff(t) = Γ(t)/ε2 with Γ(t) = (1/⟨k⟩) Σ λ(k_i) φ(k_i) S_i(t):
//
// the infection grows at time t iff r_eff(t) > 1 (the sign of the critical
// eigenvalue χ3 = Γ − ε2). Unlike the nominal r0 it reflects the current
// susceptible pool, which is what an operator tracking a live outbreak sees
// (used for Fig. 4(b)).
func (m *Model) EffectiveR0(y []float64, eps2 float64) float64 {
	if eps2 <= 0 {
		return math.Inf(1)
	}
	var gamma float64
	for i := 0; i < m.n; i++ {
		gamma += m.lambda[i] * m.varphi[i] * y[i]
	}
	return gamma / (m.meanK * eps2)
}

// Verdict is the propagation outcome determined by the critical conditions.
type Verdict int

// Verdict values (Theorem 5).
const (
	// VerdictExtinct: r0 ≤ 1, the infection is no longer epidemic and the
	// rumor will be extinct (E0 globally asymptotically stable).
	VerdictExtinct Verdict = iota + 1
	// VerdictEpidemic: r0 > 1, the rumor continuously propagates and the
	// infected densities converge to a positive stable level (E+ globally
	// asymptotically stable).
	VerdictEpidemic
)

// String returns a short human-readable verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictExtinct:
		return "extinct"
	case VerdictEpidemic:
		return "epidemic"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Classify applies Theorem 5 to the model's countermeasure level.
func (m *Model) Classify() Verdict {
	if m.R0() <= 1 {
		return VerdictExtinct
	}
	return VerdictEpidemic
}
