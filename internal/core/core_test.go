package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rumornet/internal/degreedist"
	"rumornet/internal/obs"
)

// testDist returns a small truncated power-law distribution for fast tests.
func testDist(t testing.TB) *degreedist.Dist {
	t.Helper()
	d, err := degreedist.TruncatedPowerLaw(1.5, 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// extinctModel returns a calibrated model with r0 = 0.722 (paper Fig. 2).
func extinctModel(t testing.TB) *Model {
	t.Helper()
	m, err := CalibratedModel(testDist(t), 0.01, 0.2, 0.05, 0.722, degreedist.OmegaSaturating(0.5, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// epidemicModel returns a calibrated model with r0 = 2.1661 (paper Fig. 3).
func epidemicModel(t testing.TB) *Model {
	t.Helper()
	m, err := CalibratedModel(testDist(t), 0.01, 0.05, 0.01, 2.1661, degreedist.OmegaSaturating(0.5, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewModelValidation(t *testing.T) {
	d := testDist(t)
	good := Params{
		Alpha:  0.01,
		Eps1:   0.1,
		Eps2:   0.05,
		Lambda: degreedist.LambdaLinear(0.01),
		Omega:  degreedist.OmegaSaturating(0.5, 0.5),
	}
	if _, err := NewModel(d, good); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}

	cases := []struct {
		name   string
		dist   *degreedist.Dist
		mutate func(*Params)
	}{
		{"nil dist", nil, func(*Params) {}},
		{"negative alpha", d, func(p *Params) { p.Alpha = -1 }},
		{"zero eps1", d, func(p *Params) { p.Eps1 = 0 }},
		{"zero eps2", d, func(p *Params) { p.Eps2 = 0 }},
		{"nil lambda", d, func(p *Params) { p.Lambda = nil }},
		{"nil omega", d, func(p *Params) { p.Omega = nil }},
		{"negative lambda", d, func(p *Params) { p.Lambda = func(float64) float64 { return -0.1 } }},
		{"negative omega", d, func(p *Params) { p.Omega = func(float64) float64 { return -1 } }},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			p := good
			tt.mutate(&p)
			if _, err := NewModel(tt.dist, p); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestThetaHandComputed(t *testing.T) {
	// Two groups: k = {2, 4}, P = {0.5, 0.5}, ω(k) = k.
	d, err := degreedist.Uniform([]int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(d, Params{
		Alpha:  0.01,
		Eps1:   0.1,
		Eps2:   0.1,
		Lambda: degreedist.LambdaLinear(0.1),
		Omega:  degreedist.OmegaLinear(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// ⟨k⟩ = 3, φ = {1, 2}. With I = {0.1, 0.2}:
	// Θ = (1·0.1 + 2·0.2)/3 = 0.5/3.
	y := []float64{0.9, 0.8, 0.1, 0.2}
	want := 0.5 / 3
	if got := m.Theta(y); math.Abs(got-want) > 1e-15 {
		t.Errorf("Theta = %v, want %v", got, want)
	}
}

func TestRHSHandComputed(t *testing.T) {
	d, err := degreedist.Uniform([]int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	const (
		alpha = 0.01
		e1    = 0.1
		e2    = 0.2
	)
	m, err := NewModel(d, Params{
		Alpha:  alpha,
		Eps1:   e1,
		Eps2:   e2,
		Lambda: degreedist.LambdaLinear(0.1), // λ = {0.2, 0.4}
		Omega:  degreedist.OmegaLinear(),
	})
	if err != nil {
		t.Fatal(err)
	}
	y := []float64{0.9, 0.8, 0.1, 0.2}
	theta := m.Theta(y)
	dydt := make([]float64, 4)
	m.RHS(0, y, dydt)

	wantS0 := alpha - 0.2*0.9*theta - e1*0.9
	wantI1 := 0.4*0.8*theta - e2*0.2
	if math.Abs(dydt[0]-wantS0) > 1e-15 {
		t.Errorf("dS_0 = %v, want %v", dydt[0], wantS0)
	}
	if math.Abs(dydt[3]-wantI1) > 1e-15 {
		t.Errorf("dI_1 = %v, want %v", dydt[3], wantI1)
	}
}

func TestR0HandComputed(t *testing.T) {
	d, err := degreedist.Uniform([]int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(d, Params{
		Alpha:  0.02,
		Eps1:   0.1,
		Eps2:   0.05,
		Lambda: degreedist.LambdaLinear(0.1),
		Omega:  degreedist.OmegaLinear(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Σ λφ = 0.2·1 + 0.4·2 = 1.0; r0 = α·Σ/( ⟨k⟩ ε1 ε2 ) = 0.02/(3·0.005).
	want := 0.02 * 1.0 / (3 * 0.1 * 0.05)
	if got := m.R0(); math.Abs(got-want) > 1e-12 {
		t.Errorf("R0 = %v, want %v", got, want)
	}
	if got := m.R0At(0.2, 0.05); math.Abs(got-want/2) > 1e-12 {
		t.Errorf("R0At(2ε1) = %v, want %v", got, want/2)
	}
	if !math.IsInf(m.R0At(0, 0.1), 1) {
		t.Error("R0At(0, ·) should be +Inf")
	}
}

func TestCalibration(t *testing.T) {
	for _, target := range []float64{0.722, 1.0, 2.1661} {
		m, err := CalibratedModel(testDist(t), 0.01, 0.1, 0.05, target, degreedist.OmegaSaturating(0.5, 0.5))
		if err != nil {
			t.Fatalf("target %v: %v", target, err)
		}
		if got := m.R0(); math.Abs(got-target) > 1e-9 {
			t.Errorf("calibrated R0 = %v, want %v", got, target)
		}
	}
	if _, err := CalibrateLambdaScale(testDist(t), -1, 1, 1, 1, degreedist.OmegaLinear()); err == nil {
		t.Error("negative alpha: want error")
	}
	if _, err := CalibrateLambdaScale(nil, 1, 1, 1, 1, degreedist.OmegaLinear()); err == nil {
		t.Error("nil dist: want error")
	}
}

func TestVerdictString(t *testing.T) {
	if VerdictExtinct.String() != "extinct" || VerdictEpidemic.String() != "epidemic" {
		t.Error("verdict strings wrong")
	}
	if Verdict(99).String() == "" {
		t.Error("unknown verdict should still format")
	}
}

func TestZeroEquilibrium(t *testing.T) {
	m := extinctModel(t)
	e0 := m.ZeroEquilibrium()
	wantS := m.Params().Alpha / m.Params().Eps1 // 0.05
	for i := 0; i < m.N(); i++ {
		if got := m.S(e0.Y, i); math.Abs(got-wantS) > 1e-15 {
			t.Errorf("S0_%d = %v, want %v", i, got, wantS)
		}
		if got := m.I(e0.Y, i); got != 0 {
			t.Errorf("I0_%d = %v, want 0", i, got)
		}
		if got := m.R(e0.Y, i); math.Abs(got-(1-wantS)) > 1e-15 {
			t.Errorf("R0_%d = %v, want %v", i, got, 1-wantS)
		}
	}
	if !e0.Physical {
		t.Error("E0 with S = 0.05 should be physical")
	}
	if e0.Theta != 0 {
		t.Errorf("Θ at E0 = %v, want 0", e0.Theta)
	}
	// RHS vanishes at E0 in the (S, I) subsystem.
	dydt := make([]float64, m.StateDim())
	m.RHS(0, e0.Y, dydt)
	for i, v := range dydt {
		if math.Abs(v) > 1e-14 {
			t.Errorf("RHS[%d] at E0 = %v, want 0", i, v)
		}
	}
}

func TestPositiveEquilibriumExists(t *testing.T) {
	m := epidemicModel(t)
	ep, err := m.PositiveEquilibrium()
	if err != nil {
		t.Fatal(err)
	}
	if ep.Theta <= 0 {
		t.Fatalf("Θ+ = %v, want > 0", ep.Theta)
	}
	if got := m.FTheta(ep.Theta); math.Abs(got) > 1e-9 {
		t.Errorf("F(Θ+) = %v, want 0", got)
	}
	// Self-consistency: Θ recomputed from the equilibrium state equals Θ+.
	if got := m.Theta(ep.Y); math.Abs(got-ep.Theta) > 1e-9 {
		t.Errorf("Theta(E+) = %v, want %v", got, ep.Theta)
	}
	// The RHS vanishes at E+.
	dydt := make([]float64, m.StateDim())
	m.RHS(0, ep.Y, dydt)
	for i, v := range dydt {
		if math.Abs(v) > 1e-12 {
			t.Errorf("RHS[%d] at E+ = %v, want 0", i, v)
		}
	}
	for i := 0; i < m.N(); i++ {
		if m.I(ep.Y, i) <= 0 || m.S(ep.Y, i) <= 0 {
			t.Errorf("group %d: E+ not strictly positive (S=%v, I=%v)",
				i, m.S(ep.Y, i), m.I(ep.Y, i))
		}
	}
}

func TestPositiveEquilibriumAbsentWhenSubcritical(t *testing.T) {
	m := extinctModel(t)
	if _, err := m.PositiveEquilibrium(); !errors.Is(err, ErrNoPositiveEquilibrium) {
		t.Errorf("error = %v, want ErrNoPositiveEquilibrium", err)
	}
}

func TestFThetaShape(t *testing.T) {
	m := epidemicModel(t)
	// F(0) = 1 − r0 < 0 and F is strictly increasing.
	if got := m.FTheta(0); math.Abs(got-(1-m.R0())) > 1e-12 {
		t.Errorf("F(0) = %v, want %v", got, 1-m.R0())
	}
	prev := m.FTheta(0)
	for _, theta := range []float64{1e-4, 1e-3, 1e-2, 0.1, 1, 10} {
		cur := m.FTheta(theta)
		if cur <= prev {
			t.Errorf("F not increasing at Θ=%v: %v <= %v", theta, cur, prev)
		}
		prev = cur
	}
}

func TestAnalyze(t *testing.T) {
	ext, err := extinctModel(t).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if ext.Verdict != VerdictExtinct || ext.Positive != nil || ext.Zero == nil {
		t.Errorf("extinct Analyze = %+v", ext)
	}
	epi, err := epidemicModel(t).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if epi.Verdict != VerdictEpidemic || epi.Positive == nil {
		t.Errorf("epidemic Analyze = %+v", epi)
	}
}

// TestTheorem3GlobalStabilityE0 is the numeric counterpart of Theorem 3:
// for r0 < 1 every trajectory converges to E0.
func TestTheorem3GlobalStabilityE0(t *testing.T) {
	m := extinctModel(t)
	e0 := m.ZeroEquilibrium()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		ic, err := m.RandomIC(0.5, rng)
		if err != nil {
			t.Fatal(err)
		}
		// The linear decay rate near E0 is ε2(1 − r0) ≈ 1/72, so allow a
		// horizon of several time constants.
		tr, err := m.Simulate(ic, 800, nil)
		if err != nil {
			t.Fatal(err)
		}
		dist := tr.DistTo(e0)
		final := dist[len(dist)-1]
		if final > 1e-3 {
			t.Errorf("trial %d: Dist0(tf) = %v, want → 0", trial, final)
		}
		if dist[0] < final {
			t.Errorf("trial %d: distance grew from %v to %v", trial, dist[0], final)
		}
	}
}

// TestTheorem4GlobalStabilityEPlus is the numeric counterpart of Theorem 4:
// for r0 > 1 every trajectory converges to E+.
func TestTheorem4GlobalStabilityEPlus(t *testing.T) {
	m := epidemicModel(t)
	ep, err := m.PositiveEquilibrium()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 5; trial++ {
		ic, err := m.RandomIC(0.5, rng)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := m.Simulate(ic, 3000, nil)
		if err != nil {
			t.Fatal(err)
		}
		dist := tr.DistTo(ep)
		final := dist[len(dist)-1]
		if final > 1e-2 {
			t.Errorf("trial %d: Dist+(tf) = %v, want → 0", trial, final)
		}
	}
}

func TestLyapunovV0EventuallyDecreasing(t *testing.T) {
	m := extinctModel(t)
	ic, err := m.UniformIC(0.3)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := m.Simulate(ic, 400, nil)
	if err != nil {
		t.Fatal(err)
	}
	// V0 = Θ/ε2 must be non-negative everywhere and strictly decreasing on
	// the second half of the trajectory (after S has fallen below α/ε1).
	var vs []float64
	for _, y := range tr.Y {
		v := m.LyapunovV0(y)
		if v < 0 {
			t.Fatalf("V0 = %v < 0", v)
		}
		vs = append(vs, v)
	}
	for j := len(vs) / 2; j+1 < len(vs); j++ {
		if vs[j+1] > vs[j]+1e-15 {
			t.Fatalf("V0 increased at sample %d: %v → %v", j, vs[j], vs[j+1])
		}
	}
}

func TestLyapunovVPlusProperties(t *testing.T) {
	m := epidemicModel(t)
	ep, err := m.PositiveEquilibrium()
	if err != nil {
		t.Fatal(err)
	}
	// V+ vanishes at the equilibrium itself.
	v0, err := m.LyapunovVPlus(ep.Y, ep)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v0) > 1e-12 {
		t.Errorf("V+(E+) = %v, want 0", v0)
	}
	// V+ is positive away from the equilibrium and decreases along the flow.
	ic, err := m.UniformIC(0.2)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := m.Simulate(ic, 2000, nil)
	if err != nil {
		t.Fatal(err)
	}
	var prev float64 = math.Inf(1)
	for j, y := range tr.Y {
		v, err := m.LyapunovVPlus(y, ep)
		if err != nil {
			t.Fatalf("sample %d: %v", j, err)
		}
		if v < -1e-12 {
			t.Fatalf("V+ = %v < 0 at sample %d", v, j)
		}
		if j > len(tr.Y)/10 && v > prev+1e-9 {
			t.Fatalf("V+ increased at sample %d: %v → %v", j, prev, v)
		}
		prev = v
	}
	// Error paths.
	if _, err := m.LyapunovVPlus(ep.Y, nil); err == nil {
		t.Error("nil equilibrium: want error")
	}
	zero := make([]float64, m.StateDim())
	if _, err := m.LyapunovVPlus(zero, ep); err == nil {
		t.Error("Θ = 0 state: want error")
	}
}

func TestICBuilders(t *testing.T) {
	m := extinctModel(t)
	ic, err := m.UniformIC(0.1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.N(); i++ {
		if m.S(ic, i) != 0.9 || m.I(ic, i) != 0.1 || math.Abs(m.R(ic, i)) > 1e-15 {
			t.Fatalf("UniformIC group %d = (%v, %v, %v)", i, m.S(ic, i), m.I(ic, i), m.R(ic, i))
		}
	}
	if _, err := m.UniformIC(0); err == nil {
		t.Error("i0=0: want error")
	}
	if _, err := m.UniformIC(1); err == nil {
		t.Error("i0=1: want error")
	}

	rng := rand.New(rand.NewSource(1))
	ric, err := m.RandomIC(0.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.N(); i++ {
		inf := m.I(ric, i)
		if inf <= 0 || inf > 0.2 {
			t.Fatalf("RandomIC I_%d = %v outside (0, 0.2]", i, inf)
		}
		if math.Abs(m.S(ric, i)+inf-1) > 1e-15 {
			t.Fatalf("RandomIC group %d: S+I != 1", i)
		}
	}
	if _, err := m.RandomIC(0.5, nil); err == nil {
		t.Error("nil rng: want error")
	}
	if _, err := m.RandomIC(2, rng); err == nil {
		t.Error("maxI0=2: want error")
	}
}

func TestSimulateValidation(t *testing.T) {
	m := extinctModel(t)
	if _, err := m.Simulate([]float64{1}, 10, nil); err == nil {
		t.Error("wrong dimension: want error")
	}
	ic, err := m.UniformIC(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Simulate(ic, -1, nil); err == nil {
		t.Error("negative horizon: want error")
	}
}

func TestTrajectoryAccessors(t *testing.T) {
	m := extinctModel(t)
	ic, err := m.UniformIC(0.1)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := m.Simulate(ic, 10, &SimOptions{Step: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	n := tr.Len()
	s0 := tr.SSeries(0)
	i0 := tr.ISeries(0)
	r0 := tr.RSeries(0)
	if len(s0) != n || len(i0) != n || len(r0) != n {
		t.Fatal("series length mismatch")
	}
	for j := 0; j < n; j++ {
		if math.Abs(s0[j]+i0[j]+r0[j]-1) > 1e-12 {
			t.Fatalf("S+I+R != 1 at sample %d", j)
		}
	}
	ti := tr.TotalISeries()
	mi := tr.MeanISeries()
	th := tr.ThetaSeries()
	if len(ti) != n || len(mi) != n || len(th) != n {
		t.Fatal("aggregate series length mismatch")
	}
	if ti[0] <= mi[0] {
		t.Errorf("TotalI %v should exceed population-weighted MeanI %v", ti[0], mi[0])
	}
	if th[0] <= 0 {
		t.Errorf("Θ(0) = %v, want > 0", th[0])
	}
}

func TestControlledRHSMatchesConstant(t *testing.T) {
	m := extinctModel(t)
	ic, err := m.UniformIC(0.1)
	if err != nil {
		t.Fatal(err)
	}
	p := m.Params()
	ctrl := m.ControlledRHS(
		func(float64) float64 { return p.Eps1 },
		func(float64) float64 { return p.Eps2 },
	)
	a := make([]float64, m.StateDim())
	b := make([]float64, m.StateDim())
	m.RHS(0, ic, a)
	ctrl(0, ic, b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("component %d: constant %v vs controlled %v", i, a[i], b[i])
		}
	}
}

func TestSimulateWithProjection(t *testing.T) {
	m := epidemicModel(t)
	ic, err := m.UniformIC(0.3)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := m.Simulate(ic, 100, &SimOptions{Project: true})
	if err != nil {
		t.Fatal(err)
	}
	for j, y := range tr.Y {
		for i := 0; i < m.N(); i++ {
			s, inf := m.S(y, i), m.I(y, i)
			if s < 0 || inf < 0 || s+inf > 1+1e-12 {
				t.Fatalf("sample %d group %d outside Ω: S=%v I=%v", j, i, s, inf)
			}
		}
	}
}

// Property: the threshold separates growth from decay — for random
// calibrated models, the early-time aggregate infection derivative at the
// zero equilibrium's neighborhood has the sign of r0 − 1.
func TestQuickThresholdSeparatesRegimes(t *testing.T) {
	d := testDist(t)
	f := func(seedRaw uint16, super bool) bool {
		target := 0.2 + float64(seedRaw)/65535*0.7 // r0 in [0.2, 0.9]
		if super {
			target = 1.2 + float64(seedRaw)/65535*2 // r0 in [1.2, 3.2]
		}
		m, err := CalibratedModel(d, 0.01, 0.1, 0.05, target, degreedist.OmegaSaturating(0.5, 0.5))
		if err != nil {
			return false
		}
		ic, err := m.UniformIC(1e-3)
		if err != nil {
			return false
		}
		tr, err := m.Simulate(ic, 600, nil)
		if err != nil {
			return false
		}
		final := tr.MeanISeries()[tr.Len()-1]
		if super {
			return final > 1e-3 // persists
		}
		return final < 1e-3 // dies out
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// Property: S_i stays positive along any simulated trajectory (α inflow
// prevents extinction of the susceptible pool).
func TestQuickSusceptiblesStayPositive(t *testing.T) {
	d := testDist(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, err := CalibratedModel(d, 0.01, 0.1, 0.05, 0.5+rng.Float64()*2, degreedist.OmegaSaturating(0.5, 0.5))
		if err != nil {
			return false
		}
		ic, err := m.RandomIC(0.9, rng)
		if err != nil {
			return false
		}
		tr, err := m.Simulate(ic, 200, nil)
		if err != nil {
			return false
		}
		for _, y := range tr.Y {
			for i := 0; i < m.N(); i++ {
				if m.S(y, i) <= 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// BenchmarkRHSDiggScale times the fused-Θ RHS sweep on the 848-group
// Digg-scale state; allocs/op must stay 0 (TestRHSZeroAlloc asserts it).
func BenchmarkRHSDiggScale(b *testing.B) {
	m := diggScaleModel(b)
	ic, err := m.UniformIC(0.1)
	if err != nil {
		b.Fatal(err)
	}
	dydt := make([]float64, m.StateDim())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.RHS(0, ic, dydt)
	}
}

func BenchmarkSimulateFig2Scale(b *testing.B) {
	d, err := degreedist.TruncatedPowerLaw(1.5, 1, 995)
	if err != nil {
		b.Fatal(err)
	}
	m, err := CalibratedModel(d, 0.01, 0.2, 0.05, 0.722, degreedist.OmegaSaturating(0.5, 0.5))
	if err != nil {
		b.Fatal(err)
	}
	ic, err := m.UniformIC(0.1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Simulate(ic, 150, &SimOptions{Step: 0.1}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestEffectiveR0(t *testing.T) {
	m := extinctModel(t)
	// At the zero equilibrium S = α/ε1, Γ/ε2 equals the nominal r0.
	e0 := m.ZeroEquilibrium()
	if got := m.EffectiveR0(e0.Y, m.Params().Eps2); math.Abs(got-m.R0()) > 1e-12 {
		t.Errorf("EffectiveR0(E0) = %v, want nominal r0 %v", got, m.R0())
	}
	// With a fuller susceptible pool (S = 1) it exceeds the nominal r0.
	full := make([]float64, m.StateDim())
	for i := 0; i < m.N(); i++ {
		full[i] = 1
	}
	if got := m.EffectiveR0(full, m.Params().Eps2); got <= m.R0() {
		t.Errorf("EffectiveR0(S=1) = %v, want > %v", got, m.R0())
	}
	if !math.IsInf(m.EffectiveR0(full, 0), 1) {
		t.Error("EffectiveR0 with eps2=0 should be +Inf")
	}
}

// The progress checkpoints must carry healthy invariant fields on a clean
// run: MinI stays non-negative and MassErr below roundoff, so
// internal/obs/invariant's monitors stay silent on good trajectories.
func TestSimulateProgressInvariantFields(t *testing.T) {
	m := epidemicModel(t)
	ic, err := m.UniformIC(0.1)
	if err != nil {
		t.Fatal(err)
	}
	var events []obs.Event
	_, err = m.Simulate(ic, 50, &SimOptions{
		Progress:      func(ev obs.Event) { events = append(events, ev) },
		ProgressEvery: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no progress events")
	}
	for _, ev := range events {
		if ev.Stage != obs.StageODE {
			t.Fatalf("stage %q, want %q", ev.Stage, obs.StageODE)
		}
		if ev.Value < 0 || ev.Value > 1 {
			t.Errorf("Θ = %v outside [0, 1] at t=%v", ev.Value, ev.T)
		}
		if ev.MinI < 0 {
			t.Errorf("MinI = %v negative at t=%v on a healthy run", ev.MinI, ev.T)
		}
		if ev.MassErr > 1e-9 {
			t.Errorf("MassErr = %v above roundoff at t=%v", ev.MassErr, ev.T)
		}
	}
}

// diggScaleModel builds the 848-group Digg-scale model the RHS hot-loop
// benchmarks and equivalence tests share.
func diggScaleModel(tb testing.TB) *Model {
	tb.Helper()
	d, err := degreedist.TruncatedPowerLaw(1.5, 1, 995)
	if err != nil {
		tb.Fatal(err)
	}
	m, err := CalibratedModel(d, 0.01, 0.2, 0.05, 0.722, degreedist.OmegaSaturating(0.5, 0.5))
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

// referenceRHS is the pre-fusion formulation of System (1)'s right-hand
// side — Theta() first, then the derivative loop — kept verbatim as the
// golden reference for the fused sweep in Model.rhs.
func referenceRHS(m *Model, y, dydt []float64, e1, e2 float64) {
	n := m.N()
	theta := m.Theta(y)
	alpha := m.Params().Alpha
	for i := 0; i < n; i++ {
		s, inf := y[i], y[n+i]
		force := m.Lambda(i) * s * theta
		dydt[i] = alpha - force - e1*s
		dydt[n+i] = force - e2*inf
	}
}

// TestRHSMatchesReference pins the fused-Θ RHS to the pre-refactor
// Theta-then-loop path bit for bit: same states, same controls, byte-equal
// derivatives. Any reordering of the Θ accumulation or the force
// arithmetic shows up here as an exact-inequality failure.
func TestRHSMatchesReference(t *testing.T) {
	m := diggScaleModel(t)
	dim := m.StateDim()
	rng := rand.New(rand.NewSource(17))
	y := make([]float64, dim)
	got := make([]float64, dim)
	want := make([]float64, dim)
	for trial := 0; trial < 25; trial++ {
		for i := 0; i < m.N(); i++ {
			y[m.N()+i] = rng.Float64()
			y[i] = (1 - y[m.N()+i]) * rng.Float64()
		}
		e1 := m.Params().Eps1 * (0.5 + rng.Float64())
		e2 := m.Params().Eps2 * (0.5 + rng.Float64())
		m.rhs(y, got, e1, e2)
		referenceRHS(m, y, want, e1, e2)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: dydt[%d] = %x, reference %x (not bit-identical)",
					trial, i, got[i], want[i])
			}
		}
	}
}

// TestRHSZeroAlloc tracks the 0-alloc claim on the Digg-scale RHS: the
// fused sweep must not allocate, or every RK4 stage of every step pays it.
func TestRHSZeroAlloc(t *testing.T) {
	m := diggScaleModel(t)
	ic, err := m.UniformIC(0.1)
	if err != nil {
		t.Fatal(err)
	}
	dydt := make([]float64, m.StateDim())
	if allocs := testing.AllocsPerRun(100, func() {
		m.RHS(0, ic, dydt)
	}); allocs != 0 {
		t.Errorf("RHS allocates %v times per call, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		m.Theta(ic)
	}); allocs != 0 {
		t.Errorf("Theta allocates %v times per call, want 0", allocs)
	}
}

// BenchmarkTheta tracks the coupling accessor on its own: it is the half
// of the pre-fusion RHS that the fused sweep absorbed, and it still runs
// standalone in trajectory post-processing (ThetaSeries, progress hooks).
func BenchmarkTheta(b *testing.B) {
	m := diggScaleModel(b)
	ic, err := m.UniformIC(0.1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += m.Theta(ic)
	}
	_ = sink
}
