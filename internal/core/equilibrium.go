package core

import (
	"errors"
	"fmt"
	"math"
)

// Equilibrium is a fixed point of System (1) in packed [S..., I...] layout.
type Equilibrium struct {
	// Y is the packed state [S_1..S_n, I_1..I_n].
	Y []float64
	// Theta is the equilibrium average infectivity Θ*.
	Theta float64
	// Physical reports whether every group satisfies the paper's state
	// space Ω: S, I ≥ 0 and S + I ≤ 1. The raw ODE system does not enforce
	// Ω (its α-inflow has no outflow), so extreme parameters can yield
	// formally correct but unphysical equilibria; see DESIGN.md.
	Physical bool
}

// ZeroEquilibrium returns E0 of Theorem 1 Case 1:
// S_i = α/ε1, I_i = 0 (and hence R_i = 1 − α/ε1). It always exists.
func (m *Model) ZeroEquilibrium() *Equilibrium {
	y := make([]float64, 2*m.n)
	s0 := m.p.Alpha / m.p.Eps1
	for i := 0; i < m.n; i++ {
		y[i] = s0
	}
	return &Equilibrium{
		Y:        y,
		Theta:    0,
		Physical: s0 <= 1,
	}
}

// ErrNoPositiveEquilibrium is returned by PositiveEquilibrium when r0 ≤ 1
// (Theorem 1 Case 1: only E0 exists).
var ErrNoPositiveEquilibrium = errors.New("core: no positive equilibrium (r0 <= 1)")

// FTheta evaluates the fixed-point function of Equation (5),
//
//	F(Θ) = 1 − (1/⟨k⟩) Σ α λ(k_i) φ(k_i) / (ε2 (λ(k_i) Θ + ε1)),
//
// whose positive root is the equilibrium infectivity Θ+. F is strictly
// increasing with F(0+) = 1 − r0 and F(∞) = 1.
func (m *Model) FTheta(theta float64) float64 {
	var sum float64
	alpha, e1, e2 := m.p.Alpha, m.p.Eps1, m.p.Eps2
	for i := 0; i < m.n; i++ {
		lam := m.lambda[i]
		sum += alpha * lam * m.varphi[i] / (e2 * (lam*theta + e1))
	}
	return 1 - sum/m.meanK
}

// PositiveEquilibrium computes E+ of Theorem 1 Case 2 by bisection on
// F(Θ) = 0. It returns ErrNoPositiveEquilibrium when r0 ≤ 1.
func (m *Model) PositiveEquilibrium() (*Equilibrium, error) {
	if m.R0() <= 1 {
		return nil, ErrNoPositiveEquilibrium
	}
	// F(0+) = 1 − r0 < 0 and F is strictly increasing to 1, so a bracket
	// [lo, hi] with F(hi) > 0 always exists; grow hi geometrically.
	lo := 0.0
	hi := 1.0
	for iter := 0; m.FTheta(hi) <= 0; iter++ {
		if iter > 200 {
			return nil, errors.New("core: failed to bracket Θ+ (F never positive)")
		}
		hi *= 2
	}
	for iter := 0; iter < 200 && hi-lo > 1e-15*(1+hi); iter++ {
		mid := (lo + hi) / 2
		if m.FTheta(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	thetaPlus := (lo + hi) / 2
	if thetaPlus <= 0 {
		return nil, fmt.Errorf("core: bisection collapsed to Θ+ = %g", thetaPlus)
	}

	// Back-substitute (Theorem 1 Case 2):
	//   I+_i = α λ Θ+ / (ε2 (λ Θ+ + ε1)),  S+_i = ε2 I+_i / (λ Θ+).
	y := make([]float64, 2*m.n)
	alpha, e1, e2 := m.p.Alpha, m.p.Eps1, m.p.Eps2
	physical := true
	for i := 0; i < m.n; i++ {
		lt := m.lambda[i] * thetaPlus
		ip := alpha * lt / (e2 * (lt + e1))
		var sp float64
		if lt > 0 {
			sp = e2 * ip / lt
		} else {
			sp = alpha / e1 // group decoupled from the rumor (λ = 0)
		}
		y[i] = sp
		y[m.n+i] = ip
		if sp < 0 || ip < 0 || sp+ip > 1+1e-9 {
			physical = false
		}
	}
	return &Equilibrium{Y: y, Theta: thetaPlus, Physical: physical}, nil
}

// Equilibria bundles the full Theorem 1 analysis at the model's
// countermeasure level.
type Equilibria struct {
	R0       float64
	Verdict  Verdict
	Zero     *Equilibrium
	Positive *Equilibrium // nil when r0 ≤ 1
}

// Analyze computes r0, the verdict, and all equilibrium solutions.
func (m *Model) Analyze() (*Equilibria, error) {
	eq := &Equilibria{
		R0:      m.R0(),
		Verdict: m.Classify(),
		Zero:    m.ZeroEquilibrium(),
	}
	if eq.R0 > 1 {
		pos, err := m.PositiveEquilibrium()
		if err != nil {
			return nil, err
		}
		eq.Positive = pos
	}
	return eq, nil
}

// LyapunovV0 evaluates the Lyapunov function of Theorem 3, V = Θ/ε2, whose
// trajectory derivative is Θ(t)(r0(S) − 1); it decreases once the
// susceptible densities have fallen below their equilibrium level.
func (m *Model) LyapunovV0(y []float64) float64 {
	return m.Theta(y) / m.p.Eps2
}

// LyapunovVPlus evaluates the Lyapunov function of Theorem 4 around the
// positive equilibrium eq:
//
//	V = (1/2⟨k⟩) Σ φ_i (S_i − S+_i)²/S+_i  +  Θ − Θ+ − Θ+ ln(Θ/Θ+).
//
// It is non-negative and vanishes exactly at E+. The state must have
// Θ(y) > 0.
func (m *Model) LyapunovVPlus(y []float64, eq *Equilibrium) (float64, error) {
	if eq == nil || eq.Theta <= 0 {
		return 0, errors.New("core: LyapunovVPlus needs a positive equilibrium")
	}
	theta := m.Theta(y)
	if theta <= 0 {
		return 0, fmt.Errorf("core: LyapunovVPlus undefined at Θ = %g", theta)
	}
	var sum float64
	for i := 0; i < m.n; i++ {
		sp := eq.Y[i]
		if sp <= 0 {
			return 0, fmt.Errorf("core: equilibrium S+_%d = %g not positive", i, sp)
		}
		d := y[i] - sp
		sum += m.varphi[i] * d * d / sp
	}
	v := sum/(2*m.meanK) + theta - eq.Theta - eq.Theta*math.Log(theta/eq.Theta)
	return v, nil
}
