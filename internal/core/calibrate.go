package core

import (
	"fmt"

	"rumornet/internal/degreedist"
)

// CalibrateLambdaScale returns the scale of a linear acceptance rate
// λ(k) = scale·k such that the model's threshold equals targetR0 on the
// given distribution and parameters — the per-experiment calibration knob
// described in DESIGN.md (the paper's printed r0 values, 0.7220 and 2.1661,
// are not recoverable from its stated parameters alone).
//
// From r0 = (α/⟨k⟩ε1ε2)·Σ λ(k_i)φ(k_i) with λ(k) = scale·k:
//
//	scale = targetR0 · ⟨k⟩ · ε1 · ε2 / (α · Σ k_i φ(k_i)).
func CalibrateLambdaScale(dist *degreedist.Dist, alpha, eps1, eps2, targetR0 float64, omega degreedist.KFunc) (float64, error) {
	if dist == nil || omega == nil {
		return 0, fmt.Errorf("core: calibration needs a distribution and ω")
	}
	if err := dist.Validate(); err != nil {
		return 0, fmt.Errorf("core: calibration: %w", err)
	}
	if alpha <= 0 || eps1 <= 0 || eps2 <= 0 || targetR0 <= 0 {
		return 0, fmt.Errorf("core: calibration needs positive α, ε1, ε2, r0 (got %g, %g, %g, %g)",
			alpha, eps1, eps2, targetR0)
	}
	// Σ k_i ω(k_i) P(k_i) = E[k ω(k)].
	sumKPhi := dist.Moment(func(k float64) float64 { return k * omega(k) })
	if sumKPhi <= 0 {
		return 0, fmt.Errorf("core: E[k·ω(k)] = %g not positive", sumKPhi)
	}
	return targetR0 * dist.MeanDegree() * eps1 * eps2 / (alpha * sumKPhi), nil
}

// CalibratedModel builds a model whose threshold is exactly targetR0 using
// the linear acceptance family and the given infectivity.
func CalibratedModel(dist *degreedist.Dist, alpha, eps1, eps2, targetR0 float64, omega degreedist.KFunc) (*Model, error) {
	scale, err := CalibrateLambdaScale(dist, alpha, eps1, eps2, targetR0, omega)
	if err != nil {
		return nil, err
	}
	return NewModel(dist, Params{
		Alpha:  alpha,
		Eps1:   eps1,
		Eps2:   eps2,
		Lambda: degreedist.LambdaLinear(scale),
		Omega:  omega,
	})
}
