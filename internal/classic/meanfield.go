package classic

import (
	"fmt"

	"rumornet/internal/ode"
)

// DKMeanField is the deterministic (mean-field) Daley–Kendall system over
// population fractions x (ignorant), y (spreader), z (stifler):
//
//	dx/dt = −β x y
//	dy/dt =  β x y − γ y (y + z)
//	dz/dt =  γ y (y + z)
//
// the N → ∞ limit of the Gillespie process in RunDK with Variant
// DaleyKendall (pair rates scaled by N).
type DKMeanField struct {
	// Beta is the spreading contact rate.
	Beta float64
	// GammaStifle is the stifling contact rate.
	GammaStifle float64
}

// RHS implements ode.Func over the state [x, y, z].
func (d DKMeanField) RHS(_ float64, s, ds []float64) {
	x, y, z := s[0], s[1], s[2]
	spread := d.Beta * x * y
	stifle := d.GammaStifle * y * (y + z)
	ds[0] = -spread
	ds[1] = spread - stifle
	ds[2] = stifle
}

// Solve integrates the mean field from an initial spreader fraction y0
// (x = 1 − y0, z = 0) until the spreader fraction falls below 10⁻⁸ or tMax
// elapses, returning the trajectory.
func (d DKMeanField) Solve(y0, tMax float64) (*ode.Solution, error) {
	if d.Beta <= 0 || d.GammaStifle <= 0 {
		return nil, fmt.Errorf("classic: mean field needs positive rates (β=%g, γ=%g)",
			d.Beta, d.GammaStifle)
	}
	if y0 <= 0 || y0 >= 1 {
		return nil, fmt.Errorf("classic: initial spreader fraction %g outside (0, 1)", y0)
	}
	if tMax <= 0 {
		return nil, fmt.Errorf("classic: non-positive horizon %g", tMax)
	}
	ic := []float64{1 - y0, y0, 0}
	opts := &ode.Options{
		Stop: func(_ float64, s []float64) bool { return s[1] < 1e-8 },
	}
	sol, err := ode.SolveFixed(d.RHS, ic, 0, tMax, tMax/200000, &ode.RK4{}, opts)
	if err != nil {
		return nil, fmt.Errorf("classic: mean field: %w", err)
	}
	return sol, nil
}

// FinalIgnorant integrates the mean field to extinction and returns the
// final ignorant fraction x(∞). With β = γ and y0 → 0 it converges to the
// classical fixed point θ = e^(−2(1−θ)) ≈ 0.2032 (see DKFinalSize).
func (d DKMeanField) FinalIgnorant(y0 float64) (float64, error) {
	sol, err := d.Solve(y0, 1e4)
	if err != nil {
		return 0, err
	}
	_, s := sol.Last()
	if s[1] >= 1e-6 {
		return 0, fmt.Errorf("classic: spreaders did not die out (y = %g)", s[1])
	}
	return s[0], nil
}
