package classic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rumornet/internal/core"
	"rumornet/internal/degreedist"
)

func heteroModel(t testing.TB) *core.Model {
	t.Helper()
	d, err := degreedist.TruncatedPowerLaw(1.5, 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.CalibratedModel(d, 0.01, 0.1, 0.05, 1.8, degreedist.OmegaSaturating(0.5, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestHomogenize(t *testing.T) {
	m := heteroModel(t)
	h, err := Homogenize(m)
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != 1 {
		t.Fatalf("homogenized groups = %d, want 1", h.N())
	}
	wantK := math.Round(m.MeanDegree())
	if got := float64(h.Dist().Degree(0)); got != wantK {
		t.Errorf("homogenized degree = %v, want %v", got, wantK)
	}
	if h.Params().Alpha != m.Params().Alpha {
		t.Error("Homogenize changed alpha")
	}
	if _, err := Homogenize(nil); err == nil {
		t.Error("nil model: want error")
	}
}

// TestHomogenizeUnderestimatesHeterogeneousThreshold demonstrates the
// paper's motivation: ignoring degree heterogeneity distorts the threshold.
func TestHomogenizeChangesThreshold(t *testing.T) {
	m := heteroModel(t)
	h, err := Homogenize(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h.R0()-m.R0()) < 1e-6 {
		t.Errorf("homogenized r0 %v identical to heterogeneous %v; heterogeneity should matter",
			h.R0(), m.R0())
	}
}

func TestDKConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	good := DKConfig{N: 100, Spreaders0: 1, Beta: 1, GammaStifle: 1, Variant: DaleyKendall}
	if _, err := RunDK(good, rng); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*DKConfig)
	}{
		{"tiny N", func(c *DKConfig) { c.N = 1 }},
		{"no spreaders", func(c *DKConfig) { c.Spreaders0 = 0 }},
		{"all spreaders", func(c *DKConfig) { c.Spreaders0 = 100 }},
		{"zero beta", func(c *DKConfig) { c.Beta = 0 }},
		{"zero gamma", func(c *DKConfig) { c.GammaStifle = 0 }},
		{"bad variant", func(c *DKConfig) { c.Variant = 0 }},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			c := good
			tt.mutate(&c)
			if _, err := RunDK(c, rng); err == nil {
				t.Error("want error")
			}
		})
	}
	if _, err := RunDK(good, nil); err == nil {
		t.Error("nil rng: want error")
	}
}

func TestDKConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := DKConfig{N: 500, Spreaders0: 5, Beta: 1, GammaStifle: 1, Variant: DaleyKendall}
	res, err := RunDK(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.T {
		if res.X[i]+res.Y[i]+res.Z[i] != cfg.N {
			t.Fatalf("event %d: X+Y+Z = %d, want %d", i,
				res.X[i]+res.Y[i]+res.Z[i], cfg.N)
		}
		if res.X[i] < 0 || res.Y[i] < 0 || res.Z[i] < 0 {
			t.Fatalf("event %d: negative compartment", i)
		}
	}
	if !res.Extinct {
		t.Error("rumor did not go extinct")
	}
	// Times strictly increase.
	for i := 1; i < len(res.T); i++ {
		if res.T[i] <= res.T[i-1] {
			t.Fatalf("time not increasing at event %d", i)
		}
	}
}

func TestDKFinalSizeFixedPoint(t *testing.T) {
	theta := DKFinalSize()
	// θ = exp(−2(1−θ)) — verify the fixed point and the classical value.
	if math.Abs(theta-math.Exp(-2*(1-theta))) > 1e-12 {
		t.Errorf("fixed point violated: θ = %v", theta)
	}
	if math.Abs(theta-0.2031878) > 1e-4 {
		t.Errorf("θ = %v, want ≈ 0.2031878", theta)
	}
}

// TestDKMatchesClassicalFinalSize checks the Gillespie simulation against
// the classical 20.3% final ignorant fraction.
func TestDKMatchesClassicalFinalSize(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := DKConfig{N: 2000, Spreaders0: 2, Beta: 1, GammaStifle: 1, Variant: DaleyKendall}
	mean, err := MeanFinalIgnorant(cfg, 40, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-DKFinalSize()) > 0.03 {
		t.Errorf("simulated final ignorant fraction %v, want ≈ %v", mean, DKFinalSize())
	}
}

// TestMakiThompsonStiflesFaster: MT stifling contacts are ordered (rate
// doubled for spreader-spreader meetings), so the rumor reaches fewer
// people than under DK dynamics with the same rates... in expectation the
// final ignorant fraction differs measurably.
func TestMakiThompsonDiffersFromDK(t *testing.T) {
	mt := DKConfig{N: 2000, Spreaders0: 2, Beta: 1, GammaStifle: 1, Variant: MakiThompson}
	dk := mt
	dk.Variant = DaleyKendall
	mtMean, err := MeanFinalIgnorant(mt, 40, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	dkMean, err := MeanFinalIgnorant(dk, 40, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mtMean-dkMean) < 1e-3 {
		t.Errorf("MT (%v) and DK (%v) final sizes indistinguishable", mtMean, dkMean)
	}
}

func TestMeanFinalIgnorantValidation(t *testing.T) {
	cfg := DKConfig{N: 100, Spreaders0: 1, Beta: 1, GammaStifle: 1, Variant: DaleyKendall}
	if _, err := MeanFinalIgnorant(cfg, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("zero trials: want error")
	}
}

// Property: the final ignorant count never exceeds the initial one, and the
// process always terminates extinct within the event budget at these sizes.
func TestQuickDKMonotoneIgnorants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := DKConfig{N: 300, Spreaders0: 3, Beta: 1, GammaStifle: 1, Variant: DaleyKendall}
		res, err := RunDK(cfg, rng)
		if err != nil {
			return false
		}
		for i := 1; i < len(res.X); i++ {
			if res.X[i] > res.X[i-1] {
				return false // ignorants can only decrease
			}
		}
		return res.Extinct
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestDKMeanFieldMatchesFixedPoint(t *testing.T) {
	mf := DKMeanField{Beta: 1, GammaStifle: 1}
	final, err := mf.FinalIgnorant(1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(final-DKFinalSize()) > 2e-3 {
		t.Errorf("mean-field final ignorant = %v, want fixed point %v", final, DKFinalSize())
	}
}

func TestDKMeanFieldMatchesGillespie(t *testing.T) {
	// The stochastic process at N = 2000 should land near the ODE limit.
	mf := DKMeanField{Beta: 1, GammaStifle: 1}
	odeFinal, err := mf.FinalIgnorant(2.0 / 2000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DKConfig{N: 2000, Spreaders0: 2, Beta: 1, GammaStifle: 1, Variant: DaleyKendall}
	mcFinal, err := MeanFinalIgnorant(cfg, 40, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(odeFinal-mcFinal) > 0.05 {
		t.Errorf("ODE final %v vs Gillespie mean %v", odeFinal, mcFinal)
	}
}

func TestDKMeanFieldConservesMass(t *testing.T) {
	mf := DKMeanField{Beta: 1.5, GammaStifle: 0.8}
	sol, err := mf.Solve(0.01, 100)
	if err != nil {
		t.Fatal(err)
	}
	for j, s := range sol.Y {
		if math.Abs(s[0]+s[1]+s[2]-1) > 1e-9 {
			t.Fatalf("sample %d: x+y+z = %v", j, s[0]+s[1]+s[2])
		}
		if s[0] < -1e-12 || s[1] < -1e-9 || s[2] < -1e-12 {
			t.Fatalf("sample %d: negative compartment %v", j, s)
		}
	}
}

func TestDKMeanFieldValidation(t *testing.T) {
	if _, err := (DKMeanField{Beta: 0, GammaStifle: 1}).Solve(0.1, 10); err == nil {
		t.Error("zero beta: want error")
	}
	if _, err := (DKMeanField{Beta: 1, GammaStifle: 1}).Solve(0, 10); err == nil {
		t.Error("y0 = 0: want error")
	}
	if _, err := (DKMeanField{Beta: 1, GammaStifle: 1}).Solve(0.1, -1); err == nil {
		t.Error("negative horizon: want error")
	}
}
