// Package classic implements the baseline rumor models the paper builds on
// and compares against conceptually: the homogeneous-mixing SIR reduction
// (what "overlooking network heterogeneity" means in the introduction) and
// the classical Daley–Kendall (1965) and Maki–Thompson (1973) stochastic
// rumor models, simulated exactly with the Gillespie algorithm.
package classic

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"rumornet/internal/core"
	"rumornet/internal/degreedist"
)

// Homogenize collapses a heterogeneous model onto a single degree group at
// the mean degree ⟨k⟩, preserving α, ε1, ε2 and evaluating λ and ω at ⟨k⟩.
// This is the homogeneous-mixing baseline of the ablation ablH: it answers
// "what would the model predict if every user had average connectivity?".
func Homogenize(m *core.Model) (*core.Model, error) {
	if m == nil {
		return nil, errors.New("classic: nil model")
	}
	k := int(math.Round(m.MeanDegree()))
	if k < 1 {
		k = 1
	}
	dist, err := degreedist.Uniform([]int{k})
	if err != nil {
		return nil, fmt.Errorf("classic: homogenize: %w", err)
	}
	return core.NewModel(dist, m.Params())
}

// DKVariant selects the classical stochastic rumor model variant.
type DKVariant int

// Variants.
const (
	// DaleyKendall: when two spreaders meet, BOTH become stiflers.
	DaleyKendall DKVariant = iota + 1
	// MakiThompson: when a spreader contacts another spreader or a
	// stifler, only the INITIATING spreader becomes a stifler.
	MakiThompson
)

// DKConfig parameterizes a classical rumor run.
type DKConfig struct {
	// N is the population size.
	N int
	// Spreaders0 is the initial number of spreaders (ignorants make up the
	// rest; no stiflers initially).
	Spreaders0 int
	// Beta is the per-pair contact rate at which a spreader converts an
	// ignorant (X + Y → 2Y).
	Beta float64
	// GammaStifle is the per-pair rate at which spreader-spreader or
	// spreader-stifler contacts stifle (classically equal to Beta).
	GammaStifle float64
	// Variant selects Daley–Kendall or Maki–Thompson semantics.
	Variant DKVariant
	// MaxEvents bounds the Gillespie event count (default 10 N).
	MaxEvents int
}

func (c DKConfig) validate() error {
	switch {
	case c.N < 2:
		return fmt.Errorf("classic: population %d too small", c.N)
	case c.Spreaders0 < 1 || c.Spreaders0 >= c.N:
		return fmt.Errorf("classic: initial spreaders %d outside [1, %d)", c.Spreaders0, c.N)
	case c.Beta <= 0:
		return fmt.Errorf("classic: Beta = %g must be positive", c.Beta)
	case c.GammaStifle <= 0:
		return fmt.Errorf("classic: GammaStifle = %g must be positive", c.GammaStifle)
	case c.Variant != DaleyKendall && c.Variant != MakiThompson:
		return fmt.Errorf("classic: unknown variant %d", int(c.Variant))
	}
	return nil
}

// DKResult is the outcome of one stochastic rumor realization.
type DKResult struct {
	// T holds event times; X, Y, Z the ignorant/spreader/stifler counts
	// after each event (index 0 is the initial state at time 0).
	T       []float64
	X, Y, Z []int
	// FinalIgnorant is X(∞)/N — the classical "final size" statistic
	// (≈ 0.203 for Daley–Kendall with Beta = GammaStifle).
	FinalIgnorant float64
	// Extinct reports whether the spreader pool died out (always true at
	// the end of a complete run).
	Extinct bool
}

// RunDK simulates one realization of the classical rumor process with the
// Gillespie stochastic simulation algorithm.
func RunDK(cfg DKConfig, rng *rand.Rand) (*DKResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, errors.New("classic: RunDK needs a rand source")
	}
	maxEvents := cfg.MaxEvents
	if maxEvents <= 0 {
		maxEvents = 10 * cfg.N
	}

	x, y, z := cfg.N-cfg.Spreaders0, cfg.Spreaders0, 0
	t := 0.0
	res := &DKResult{
		T: []float64{0},
		X: []int{x}, Y: []int{y}, Z: []int{z},
	}
	nf := float64(cfg.N)

	for ev := 0; y > 0 && ev < maxEvents; ev++ {
		// Mass-action pair rates scaled by population.
		rateSpread := cfg.Beta * float64(x) * float64(y) / nf
		var rateStifleYY, rateStifleYZ float64
		switch cfg.Variant {
		case DaleyKendall:
			// Unordered spreader pairs.
			rateStifleYY = cfg.GammaStifle * float64(y) * float64(y-1) / (2 * nf)
			rateStifleYZ = cfg.GammaStifle * float64(y) * float64(z) / nf
		case MakiThompson:
			// Ordered contacts: initiating spreader meets spreader/stifler.
			rateStifleYY = cfg.GammaStifle * float64(y) * float64(y-1) / nf
			rateStifleYZ = cfg.GammaStifle * float64(y) * float64(z) / nf
		}
		total := rateSpread + rateStifleYY + rateStifleYZ
		if total <= 0 {
			break
		}
		t += rng.ExpFloat64() / total
		u := rng.Float64() * total
		switch {
		case u < rateSpread:
			x--
			y++
		case u < rateSpread+rateStifleYY:
			if cfg.Variant == DaleyKendall {
				y -= 2
				z += 2
			} else {
				y--
				z++
			}
		default:
			y--
			z++
		}
		res.T = append(res.T, t)
		res.X = append(res.X, x)
		res.Y = append(res.Y, y)
		res.Z = append(res.Z, z)
	}
	res.FinalIgnorant = float64(x) / nf
	res.Extinct = y == 0
	return res, nil
}

// DKFinalSize returns the deterministic final ignorant fraction θ of the
// Daley–Kendall model with Beta = GammaStifle, the root of
//
//	θ = exp(−2(1−θ))           (≈ 0.2031878)
//
// computed by fixed-point iteration; the classical "80% of the population
// eventually hears the rumor" result.
func DKFinalSize() float64 {
	theta := 0.2
	for i := 0; i < 200; i++ {
		theta = math.Exp(-2 * (1 - theta))
	}
	return theta
}

// MeanFinalIgnorant runs trials independent realizations and averages the
// final ignorant fraction.
func MeanFinalIgnorant(cfg DKConfig, trials int, rng *rand.Rand) (float64, error) {
	if trials < 1 {
		return 0, fmt.Errorf("classic: trials %d < 1", trials)
	}
	var sum float64
	for i := 0; i < trials; i++ {
		res, err := RunDK(cfg, rng)
		if err != nil {
			return 0, err
		}
		sum += res.FinalIgnorant
	}
	return sum / float64(trials), nil
}
