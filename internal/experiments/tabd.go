package experiments

import (
	"math/rand"

	"rumornet/internal/digg"
	"rumornet/internal/graph"
	"rumornet/internal/plot"
)

// TabDatasetSummary regenerates the dataset description of Section V: the
// Digg2009 statistics (71,367 users, 1,731,658 links, 848 degree groups,
// degree range [1, 995], ⟨k⟩ ≈ 24), measured on the calibrated synthetic
// network. In Quick mode it scales the node count down 10×, keeping the
// degree support.
func TabDatasetSummary(cfg Config) (*Result, error) {
	rng := rand.New(rand.NewSource(cfg.seed()))
	res := &Result{
		ID:    "tabD",
		Title: "Dataset summary: synthetic Digg2009 vs published statistics",
	}

	users := digg.PaperUsers
	if cfg.Quick {
		users = digg.PaperUsers / 10
	}
	seq, err := digg.SampleDegreeSequence(users, rng)
	if err != nil {
		return nil, err
	}
	g, err := graph.ConfigurationModel(seq, rng)
	if err != nil {
		return nil, err
	}
	s := digg.Summarize(g)

	res.setScalar("users", float64(s.Users))
	res.setScalar("links", float64(s.Links))
	res.setScalar("groups", float64(s.Groups))
	res.setScalar("minDegree", float64(s.MinDegree))
	res.setScalar("maxDegree", float64(s.MaxDegree))
	res.setScalar("meanDegree", s.MeanDegree)
	res.setScalar("powerLawGamma", s.PowerLawGamma)
	res.setScalar("largestWCC", float64(s.LargestWCC))

	res.addNote("paper: users=%d links=%d groups=%d degree=[%d,%d] mean≈%.0f",
		digg.PaperUsers, digg.PaperLinks, digg.PaperGroups,
		digg.PaperMinDegree, digg.PaperMaxDegree, digg.PaperMeanDegree)
	res.addNote("measured: %s", s)
	if !cfg.Quick {
		if ok, why := s.MatchesPaper(); ok {
			res.addNote("verdict: synthetic network matches every published statistic")
			res.setScalar("matchesPaper", 1)
		} else {
			res.addNote("verdict: MISMATCH — %s", why)
			res.setScalar("matchesPaper", 0)
		}
	} else {
		res.addNote("quick mode: node count scaled down 10x; full check via cmd/figgen tabD")
	}

	// Degree distribution (log-log material) as the plotted series.
	degrees, counts := g.DegreeHistogram()
	series := plot.Series{Name: "P(k)", X: make([]float64, 0, len(degrees)), Y: make([]float64, 0, len(degrees))}
	total := float64(g.NumNodes())
	for i, d := range degrees {
		if d == 0 {
			continue
		}
		series.X = append(series.X, float64(d))
		series.Y = append(series.Y, float64(counts[i])/total)
	}
	res.Series = append(res.Series, series)
	return res, nil
}
