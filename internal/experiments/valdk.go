package experiments

import (
	"math"
	"math/rand"

	"rumornet/internal/classic"
	"rumornet/internal/plot"
)

// ValidationDK (valDK) validates the classical-rumor-model lineage the
// paper builds on (Section III cites Daley–Kendall 1965 and Maki–Thompson
// 1973): the Gillespie stochastic simulation must land on the mean-field
// ODE trajectory and both must hit the classical final-size law
// θ = e^(−2(1−θ)) ≈ 0.2032 for β = γ.
func ValidationDK(cfg Config) (*Result, error) {
	rng := rand.New(rand.NewSource(cfg.seed()))
	population := 5000
	trials := 20
	if cfg.Quick {
		population = 1500
		trials = 8
	}

	res := &Result{
		ID:    "valDK",
		Title: "Validation: Daley–Kendall Gillespie vs mean-field ODE and the 20.3% law",
	}

	// Mean-field trajectory.
	mf := classic.DKMeanField{Beta: 1, GammaStifle: 1}
	y0 := 2.0 / float64(population)
	sol, err := mf.Solve(y0, 60)
	if err != nil {
		return nil, err
	}
	res.Series = append(res.Series,
		plot.Series{Name: "mean-field ignorant x(t)", X: sol.T, Y: sol.Series(0)},
		plot.Series{Name: "mean-field spreader y(t)", X: sol.T, Y: sol.Series(1)},
	)

	// One representative stochastic path (thinned for plotting).
	dkCfg := classic.DKConfig{
		N:          population,
		Spreaders0: 2,
		Beta:       1, GammaStifle: 1,
		Variant: classic.DaleyKendall,
	}
	run, err := classic.RunDK(dkCfg, rng)
	if err != nil {
		return nil, err
	}
	thin := len(run.T)/200 + 1
	gx := plot.Series{Name: "Gillespie ignorant X/N"}
	for j := 0; j < len(run.T); j += thin {
		gx.X = append(gx.X, run.T[j])
		gx.Y = append(gx.Y, float64(run.X[j])/float64(population))
	}
	res.Series = append(res.Series, gx)

	// Final-size statistics.
	mcFinal, err := classic.MeanFinalIgnorant(dkCfg, trials, rng)
	if err != nil {
		return nil, err
	}
	odeFinal, err := mf.FinalIgnorant(y0)
	if err != nil {
		return nil, err
	}
	law := classic.DKFinalSize()
	res.setScalar("finalIgnorantLaw", law)
	res.setScalar("finalIgnorantODE", odeFinal)
	res.setScalar("finalIgnorantGillespie", mcFinal)
	res.setScalar("gapODE", math.Abs(odeFinal-law))
	res.setScalar("gapGillespie", math.Abs(mcFinal-law))

	mtCfg := dkCfg
	mtCfg.Variant = classic.MakiThompson
	mtFinal, err := classic.MeanFinalIgnorant(mtCfg, trials, rng)
	if err != nil {
		return nil, err
	}
	res.setScalar("finalIgnorantMakiThompson", mtFinal)

	res.addNote("classical law θ = e^(−2(1−θ)) = %.4f; ODE limit %.4f; Gillespie mean "+
		"(%d trials, N = %d) %.4f; Maki–Thompson variant %.4f", law, odeFinal, trials,
		population, mcFinal, mtFinal)
	return res, nil
}
