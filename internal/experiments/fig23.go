package experiments

import (
	"fmt"
	"math/rand"

	"rumornet/internal/core"
	"rumornet/internal/par"
	"rumornet/internal/plot"
)

// trajKind selects which compartment a trajectory figure plots.
type trajKind int

const (
	trajS trajKind = iota + 1
	trajI
	trajR
)

// Fig2aDistToE0 regenerates Fig. 2(a): the ∞-norm distance between the
// trajectory E(t) and the zero equilibrium E0 for 10 random initial
// conditions, in the extinction regime r0 = 0.7220 < 1. All ten curves must
// converge to zero (Theorem 3: E0 globally asymptotically stable).
func Fig2aDistToE0(cfg Config) (*Result, error) {
	m, err := fig2Model(cfg)
	if err != nil {
		return nil, err
	}
	return distFigure(cfg, m, "fig2a",
		"Fig. 2(a): Dist0(t) under 10 initial conditions (r0 = 0.7220 < 1)",
		fig2Tf, false)
}

// Fig2bSusceptible regenerates Fig. 2(b): S_{k_i}(t) for groups spread
// across the distribution (the paper's i = 1, 50, ..., 800).
func Fig2bSusceptible(cfg Config) (*Result, error) {
	m, err := fig2Model(cfg)
	if err != nil {
		return nil, err
	}
	return trajFigure(cfg, m, "fig2b", "Fig. 2(b): S_ki(t), extinction regime", fig2Tf, trajS, 17)
}

// Fig2cInfected regenerates Fig. 2(c): I_{k_i}(t) in the extinction regime.
func Fig2cInfected(cfg Config) (*Result, error) {
	m, err := fig2Model(cfg)
	if err != nil {
		return nil, err
	}
	return trajFigure(cfg, m, "fig2c", "Fig. 2(c): I_ki(t), extinction regime", fig2Tf, trajI, 17)
}

// Fig2dRecovered regenerates Fig. 2(d): R_{k_i}(t) in the extinction regime.
func Fig2dRecovered(cfg Config) (*Result, error) {
	m, err := fig2Model(cfg)
	if err != nil {
		return nil, err
	}
	return trajFigure(cfg, m, "fig2d", "Fig. 2(d): R_ki(t), extinction regime", fig2Tf, trajR, 17)
}

// Fig3aDistToEPlus regenerates Fig. 3(a): the distance between E(t) and the
// positive equilibrium E+ for 10 random initial conditions, in the epidemic
// regime r0 = 2.1661 > 1 (Theorem 4: E+ globally asymptotically stable).
func Fig3aDistToEPlus(cfg Config) (*Result, error) {
	m, err := fig3Model(cfg)
	if err != nil {
		return nil, err
	}
	return distFigure(cfg, m, "fig3a",
		"Fig. 3(a): Dist+(t) under 10 initial conditions (r0 = 2.1661 > 1)",
		fig3Tf, true)
}

// Fig3bSusceptible regenerates Fig. 3(b): S_{k_i}(t) for the 20
// lowest-degree groups in the epidemic regime.
func Fig3bSusceptible(cfg Config) (*Result, error) {
	m, err := fig3Model(cfg)
	if err != nil {
		return nil, err
	}
	return trajFigure(cfg, m, "fig3b", "Fig. 3(b): S_ki(t), epidemic regime", fig3Tf, trajS, 20)
}

// Fig3cInfected regenerates Fig. 3(c): I_{k_i}(t) in the epidemic regime.
func Fig3cInfected(cfg Config) (*Result, error) {
	m, err := fig3Model(cfg)
	if err != nil {
		return nil, err
	}
	return trajFigure(cfg, m, "fig3c", "Fig. 3(c): I_ki(t), epidemic regime", fig3Tf, trajI, 20)
}

// Fig3dRecovered regenerates Fig. 3(d): R_{k_i}(t) in the epidemic regime.
func Fig3dRecovered(cfg Config) (*Result, error) {
	m, err := fig3Model(cfg)
	if err != nil {
		return nil, err
	}
	return trajFigure(cfg, m, "fig3d", "Fig. 3(d): R_ki(t), epidemic regime", fig3Tf, trajR, 20)
}

// distFigure runs the 10-initial-conditions convergence experiment against
// E0 (plus=false) or E+ (plus=true).
func distFigure(cfg Config, m *core.Model, id, title string, tf float64, plus bool) (*Result, error) {
	res := &Result{ID: id, Title: title}
	res.setScalar("r0", m.R0())
	res.addNote("calibrated λ(k) = %.6g·k pins r0 = %.4f on the synthetic Digg distribution",
		m.Lambda(0)/float64(m.Dist().Degree(0)), m.R0())

	var eq *core.Equilibrium
	if plus {
		var err error
		eq, err = m.PositiveEquilibrium()
		if err != nil {
			return nil, err
		}
		res.setScalar("thetaPlus", eq.Theta)
	} else {
		eq = m.ZeroEquilibrium()
	}

	runs := 10
	if cfg.Quick {
		runs = 3
	}
	// Draw every IC serially first — the random stream is identical to the
	// serial implementation's — then integrate the independent trajectories
	// concurrently (Simulate builds one ode.RK4 stepper per call, so each
	// worker steps in isolation) and collect the series in trial order.
	rng := rand.New(rand.NewSource(cfg.seed()))
	ics := make([][]float64, runs)
	for trial := range ics {
		ic, err := m.RandomIC(0.5, rng)
		if err != nil {
			return nil, err
		}
		ics[trial] = ic
	}
	type trajDist struct {
		t, dist []float64
	}
	dists, err := par.Map(cfg.workers(), runs, func(trial int) (trajDist, error) {
		tr, err := m.Simulate(ics[trial], tf, simOpts(cfg, tf))
		if err != nil {
			return trajDist{}, err
		}
		return trajDist{t: tr.T, dist: tr.DistTo(eq)}, nil
	})
	if err != nil {
		return nil, err
	}
	var worstFinal float64
	for trial, d := range dists {
		res.Series = append(res.Series, plot.Series{
			Name: fmt.Sprintf("IC %d", trial+1),
			X:    d.t,
			Y:    d.dist,
		})
		if f := d.dist[len(d.dist)-1]; f > worstFinal {
			worstFinal = f
		}
	}
	res.setScalar("worstFinalDist", worstFinal)
	res.addNote("worst final distance across %d initial conditions: %.3g (paper: all curves → 0)",
		runs, worstFinal)
	return res, nil
}

// trajFigure plots one compartment for a spread of degree groups under a
// single random initial condition.
func trajFigure(cfg Config, m *core.Model, id, title string, tf float64, kind trajKind, nGroups int) (*Result, error) {
	res := &Result{ID: id, Title: title}
	res.setScalar("r0", m.R0())

	rng := rand.New(rand.NewSource(cfg.seed()))
	ic, err := m.RandomIC(0.5, rng)
	if err != nil {
		return nil, err
	}
	tr, err := m.Simulate(ic, tf, simOpts(cfg, tf))
	if err != nil {
		return nil, err
	}
	picks := groupPicks(m.N(), nGroups)
	for _, i := range picks {
		var y []float64
		switch kind {
		case trajS:
			y = tr.SSeries(i)
		case trajI:
			y = tr.ISeries(i)
		default:
			y = tr.RSeries(i)
		}
		res.Series = append(res.Series, plot.Series{
			Name: fmt.Sprintf("k=%d", m.Dist().Degree(i)),
			X:    tr.T,
			Y:    y,
		})
	}
	res.addNote("plotted %d of %d degree groups under one random initial condition", len(picks), m.N())
	return res, nil
}

// simOpts picks simulation resolution by fidelity.
func simOpts(cfg Config, tf float64) *core.SimOptions {
	if cfg.Quick {
		return &core.SimOptions{Step: tf / 600}
	}
	return &core.SimOptions{Step: tf / 3000}
}
