package experiments

import (
	"fmt"

	"rumornet/internal/plot"
	"rumornet/internal/spatial"
)

// ExtensionSpatialFront (extS) exercises the temporal–spatial extension:
// a localized rumor outbreak in a 1-D reaction–diffusion medium develops a
// traveling infection front whose speed approaches the Fisher–KPP value
// 2√(D·(λS0 − ε2)) — the PDE behaviour the paper's related work (refs
// [28], [29]) models. The figure shows infected-density profiles at
// successive times plus the front position.
func ExtensionSpatialFront(cfg Config) (*Result, error) {
	patches := 201
	tf := 60.0
	if cfg.Quick {
		patches = 101
		tf = 30
	}
	m, err := spatial.New(spatial.Config{
		Patches: patches,
		Length:  float64(patches),
		Alpha:   0,
		Lambda:  1.0,
		Eps1:    0,
		Eps2:    0.2,
		DS:      0,
		DI:      0.5,
	})
	if err != nil {
		return nil, err
	}
	ic, err := m.SeedCenter(1, 0.5)
	if err != nil {
		return nil, err
	}
	sol, err := m.Simulate(ic, tf, 0.05)
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:    "extS",
		Title: "Extension: traveling rumor front in a reaction–diffusion medium",
	}
	// Infected profiles at a few snapshot times.
	for _, frac := range []float64{0.2, 0.5, 1.0} {
		t := frac * tf
		y := sol.At(t)
		s := plot.Series{Name: fmt.Sprintf("I(x) at t=%.0f", t)}
		for p := 0; p < m.Patches(); p++ {
			s.X = append(s.X, m.Position(p))
			s.Y = append(s.Y, y[m.Patches()+p])
		}
		res.Series = append(res.Series, s)
	}

	speed, err := m.MeasureFrontSpeed(sol, 0.05)
	if err != nil {
		return nil, err
	}
	fisher := m.FisherSpeed(1)
	res.setScalar("measuredFrontSpeed", speed)
	res.setScalar("fisherSpeed", fisher)
	res.setScalar("speedRatio", speed/fisher)
	res.addNote("measured front speed %.3f vs Fisher–KPP prediction %.3f (ratio %.2f); "+
		"pulled fronts on a lattice approach the continuum speed from below",
		speed, fisher, speed/fisher)
	return res, nil
}
