package experiments

import (
	"math/rand"

	"rumornet/internal/abm"
	"rumornet/internal/core"
	"rumornet/internal/degreedist"
	"rumornet/internal/digg"
	"rumornet/internal/graph"
	"rumornet/internal/plot"
)

// ExtensionTraceIC (extV) exercises the vote-trace substrate: the earliest
// voters of a Digg story skew toward well-connected users, so a
// trace-seeded outbreak starts "hub-loaded". The experiment compares three
// initial conditions carrying the same total infection mass — uniform
// across groups (the paper's IC), the trace-driven composition, and the
// trace-seeded agent-based ground truth — and shows the composition alone
// changes the early growth.
func ExtensionTraceIC(cfg Config) (*Result, error) {
	rng := rand.New(rand.NewSource(cfg.seed()))
	nodes := 20000
	if cfg.Quick {
		nodes = 5000
	}
	g, err := graph.BarabasiAlbert(nodes, 5, rng)
	if err != nil {
		return nil, err
	}
	dist, err := degreedist.FromGraph(g)
	if err != nil {
		return nil, err
	}

	// Synthetic vote traces; seed from the biggest story's early voters.
	votes, err := digg.SampleVotes(g, 30, 0.04, rng)
	if err != nil {
		return nil, err
	}
	idx := digg.IndexVotes(votes)
	ids := make([]int64, g.NumNodes())
	for i := range ids {
		ids[i] = int64(i)
	}
	nSeeds := nodes / 200 // 0.5% of users
	seeds, err := idx.SeedsFromStory(idx.Stories()[0], nSeeds, ids)
	if err != nil {
		return nil, err
	}

	// Group-resolved IC from the seed set: I_i(0) = seeds in group i /
	// nodes in group i.
	groupOf := make(map[int]int, dist.N())
	for i := 0; i < dist.N(); i++ {
		groupOf[dist.Degree(i)] = i
	}
	groupTotal := make([]float64, dist.N())
	for u := 0; u < g.NumNodes(); u++ {
		if i, ok := groupOf[g.OutDegree(u)]; ok {
			groupTotal[i]++
		}
	}
	seedCount := make([]float64, dist.N())
	var seedDegreeSum float64
	for _, u := range seeds {
		if i, ok := groupOf[g.OutDegree(u)]; ok {
			seedCount[i]++
		}
		seedDegreeSum += float64(g.OutDegree(u))
	}

	const (
		eps1 = 0.002
		eps2 = 0.05
	)
	lambda := degreedist.LambdaLinear(0.15)
	m, err := core.NewModel(dist, core.Params{
		Alpha: 0, Eps1: eps1, Eps2: eps2,
		Lambda: lambda, Omega: paperOmega(),
	})
	if err != nil {
		return nil, err
	}

	// Trace-driven IC.
	traceIC := make([]float64, m.StateDim())
	var totalI float64
	for i := 0; i < m.N(); i++ {
		inf := 0.0
		if groupTotal[i] > 0 {
			inf = seedCount[i] / groupTotal[i]
		}
		traceIC[i] = 1 - inf
		traceIC[m.N()+i] = inf
		totalI += dist.Prob(i) * inf
	}
	// Uniform IC with the same population-weighted infection mass.
	uniformIC, err := m.UniformIC(totalI)
	if err != nil {
		return nil, err
	}

	tf := 60.0
	trTrace, err := m.Simulate(traceIC, tf, simOpts(cfg, tf))
	if err != nil {
		return nil, err
	}
	trUniform, err := m.Simulate(uniformIC, tf, simOpts(cfg, tf))
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:    "extV",
		Title: "Extension: trace-driven vs uniform initial conditions (same infected mass)",
	}
	res.Series = append(res.Series,
		plot.Series{Name: "ODE, trace-driven IC", X: trTrace.T, Y: trTrace.MeanISeries()},
		plot.Series{Name: "ODE, uniform IC", X: trUniform.T, Y: trUniform.MeanISeries()},
	)

	// Ground truth: the trace-seeded quenched ABM.
	steps := int(tf / 0.5)
	r, err := abm.Run(g, abm.Config{
		Lambda: lambda, Omega: paperOmega(),
		Eps1: eps1, Eps2: eps2,
		I0: totalI, Seeds: seeds,
		Dt: 0.5, Steps: steps,
		Mode:    abm.ModeQuenched,
		Workers: cfg.Workers,
	}, rng)
	if err != nil {
		return nil, err
	}
	res.Series = append(res.Series, plot.Series{Name: "ABM, trace-seeded", X: r.T, Y: r.I})

	res.setScalar("seedMeanDegree", seedDegreeSum/float64(len(seeds)))
	res.setScalar("graphMeanDegree", dist.MeanDegree())
	// The long-run attractor is IC-independent; the composition shows in
	// the initial infectivity Θ(0) and the early growth.
	theta0Trace := m.Theta(traceIC)
	theta0Uniform := m.Theta(uniformIC)
	res.setScalar("theta0Trace", theta0Trace)
	res.setScalar("theta0Uniform", theta0Uniform)
	res.setScalar("earlyITrace", trTrace.MeanISeries()[trTrace.Len()/12])
	res.setScalar("earlyIUniform", trUniform.MeanISeries()[trUniform.Len()/12])
	res.addNote("early voters average degree %.1f vs network mean %.1f: the trace-driven "+
		"IC is hub-loaded, so its initial infectivity Θ(0) = %.4g exceeds the uniform "+
		"IC's %.4g at identical infected mass, accelerating the early phase",
		seedDegreeSum/float64(len(seeds)), dist.MeanDegree(), theta0Trace, theta0Uniform)
	return res, nil
}
