package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"rumornet/internal/abm"
	"rumornet/internal/classic"
	"rumornet/internal/control"
	"rumornet/internal/core"
	"rumornet/internal/degreedist"
	"rumornet/internal/graph"
	"rumornet/internal/par"
	"rumornet/internal/plot"
)

// AblationAdjoint (ablA) compares the exact adjoint (full cross-group Θ
// coupling) against the paper's diagonal co-state equation (16) on the
// Fig. 4(a) problem: same objective, same bounds, different backward sweep.
func AblationAdjoint(cfg Config) (*Result, error) {
	m, err := fig3Model(cfg)
	if err != nil {
		return nil, err
	}
	ic, err := m.UniformIC(fig4IC)
	if err != nil {
		return nil, err
	}
	tf := fig4Tf
	if cfg.Quick {
		tf = 40
	}

	res := &Result{
		ID:    "ablA",
		Title: "Ablation: exact vs paper-diagonal adjoint in the FBSM",
	}
	variants := []struct {
		name    string
		adjoint control.Adjoint
	}{
		{"exact adjoint", control.AdjointExact},
		{"paper diagonal adjoint (Eq. 16)", control.AdjointDiagonal},
	}
	pols, err := par.Map(cfg.workers(), len(variants), func(i int) (*control.Policy, error) {
		opts := fig4Options(cfg)
		opts.Adjoint = variants[i].adjoint
		pol, err := control.Optimize(m, ic, tf, opts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", variants[i].name, err)
		}
		return pol, nil
	})
	if err != nil {
		return nil, err
	}
	for i, pol := range pols {
		res.Series = append(res.Series,
			plot.Series{Name: variants[i].name + " ε1", X: pol.Schedule.T, Y: pol.Schedule.Eps1},
			plot.Series{Name: variants[i].name + " ε2", X: pol.Schedule.T, Y: pol.Schedule.Eps2},
		)
		res.setScalar("J:"+variants[i].name, pol.Cost.Total)
	}
	exact := res.Scalars["J:exact adjoint"]
	diag := res.Scalars["J:paper diagonal adjoint (Eq. 16)"]
	res.setScalar("relativeGap", math.Abs(diag-exact)/exact)
	res.addNote("J_exact = %.4g vs J_diag = %.4g (relative gap %.3g): dropping the "+
		"cross-group Θ coupling from the co-state weakens the blocking signal on a "+
		"many-group network, so the diagonal policy under-controls and pays a higher "+
		"true objective — the simplification in the paper's Eq. (16) is not free",
		exact, diag, math.Abs(diag-exact)/exact)
	return res, nil
}

// AblationInfectivity (ablW) compares the three infectivity families the
// paper discusses — constant, linear ω(k) = k, and the adopted saturating
// k^0.5/(1+k^0.5) — each calibrated to the SAME threshold r0 = 0.7220 in
// the Fig. 2 regime. Equal thresholds isolate the effect of where the
// infectivity mass sits in the degree spectrum: linear ω concentrates it on
// hubs (a hub-heavy rumor needs a far smaller per-contact acceptance rate
// to reach the same r0), which reshapes the transient even at a fixed
// asymptotic verdict.
func AblationInfectivity(cfg Config) (*Result, error) {
	d, err := diggDist(cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:    "ablW",
		Title: "Ablation: infectivity families ω(k), each calibrated to r0 = 0.7220",
	}
	variants := []struct {
		name  string
		omega degreedist.KFunc
	}{
		{"ω(k) = c (identical infectivity)", degreedist.OmegaConstant(0.5)},
		{"ω(k) = k (linear)", degreedist.OmegaLinear()},
		{"ω(k) = √k/(1+√k) (saturating, paper)", paperOmega()},
	}
	tf := fig2Tf
	type calibrated struct {
		scale float64
		theta []float64
		t     []float64
	}
	outs, err := par.Map(cfg.workers(), len(variants), func(i int) (calibrated, error) {
		v := variants[i]
		scale, err := core.CalibrateLambdaScale(d, fig2Alpha, fig2Eps1, fig2Eps2, fig2R0, v.omega)
		if err != nil {
			return calibrated{}, fmt.Errorf("%s: %w", v.name, err)
		}
		m, err := core.NewModel(d, core.Params{
			Alpha:  fig2Alpha,
			Eps1:   fig2Eps1,
			Eps2:   fig2Eps2,
			Lambda: degreedist.LambdaLinear(scale),
			Omega:  v.omega,
		})
		if err != nil {
			return calibrated{}, fmt.Errorf("%s: %w", v.name, err)
		}
		ic, err := m.UniformIC(0.1)
		if err != nil {
			return calibrated{}, err
		}
		tr, err := m.Simulate(ic, tf, simOpts(cfg, tf))
		if err != nil {
			return calibrated{}, fmt.Errorf("%s: %w", v.name, err)
		}
		return calibrated{scale: scale, theta: tr.ThetaSeries(), t: tr.T}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, out := range outs {
		res.Series = append(res.Series, plot.Series{
			Name: variants[i].name, X: out.t, Y: out.theta,
		})
		res.setScalar("lambdaScale:"+variants[i].name, out.scale)
		res.setScalar("peakTheta:"+variants[i].name, maxOf(out.theta))
	}
	res.addNote("all variants share r0 = %.4f; the calibrated acceptance scale differs by "+
		"orders of magnitude (linear ω needs the smallest λ because hubs carry E[k²] "+
		"infectivity mass) — the paper's argument for a saturating ω", fig2R0)
	return res, nil
}

func maxOf(xs []float64) float64 {
	var m float64
	for _, v := range xs {
		if v > m {
			m = v
		}
	}
	return m
}

// AblationHomogeneous (ablH) quantifies what ignoring network heterogeneity
// costs: the heterogeneous model vs its homogeneous-mixing reduction at the
// mean degree, in both the Fig. 2 and Fig. 3 regimes.
func AblationHomogeneous(cfg Config) (*Result, error) {
	res := &Result{
		ID:    "ablH",
		Title: "Ablation: heterogeneous model vs homogeneous-mixing reduction",
	}
	regimes := []struct {
		name  string
		build func(Config) (*core.Model, error)
		tf    float64
	}{
		{"extinction regime (fig2)", fig2Model, fig2Tf},
		{"epidemic regime (fig3)", fig3Model, fig3Tf},
	}
	type regimeOut struct {
		trH, trHom   *core.Trajectory
		r0Het, r0Hom float64
	}
	outs, err := par.Map(cfg.workers(), len(regimes), func(i int) (regimeOut, error) {
		reg := regimes[i]
		m, err := reg.build(cfg)
		if err != nil {
			return regimeOut{}, err
		}
		h, err := classic.Homogenize(m)
		if err != nil {
			return regimeOut{}, err
		}
		icH, err := m.UniformIC(0.1)
		if err != nil {
			return regimeOut{}, err
		}
		icHom, err := h.UniformIC(0.1)
		if err != nil {
			return regimeOut{}, err
		}
		trH, err := m.Simulate(icH, reg.tf, simOpts(cfg, reg.tf))
		if err != nil {
			return regimeOut{}, err
		}
		trHom, err := h.Simulate(icHom, reg.tf, simOpts(cfg, reg.tf))
		if err != nil {
			return regimeOut{}, err
		}
		return regimeOut{trH: trH, trHom: trHom, r0Het: m.R0(), r0Hom: h.R0()}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, out := range outs {
		reg := regimes[i]
		res.Series = append(res.Series,
			plot.Series{Name: reg.name + ": heterogeneous", X: out.trH.T, Y: out.trH.MeanISeries()},
			plot.Series{Name: reg.name + ": homogeneous", X: out.trHom.T, Y: out.trHom.MeanISeries()},
		)
		res.setScalar("r0 hetero "+reg.name, out.r0Het)
		res.setScalar("r0 homog "+reg.name, out.r0Hom)
	}
	res.addNote("collapsing the degree distribution to ⟨k⟩ changes the threshold and the " +
		"transient — the heterogeneity the paper's model is built to capture")
	return res, nil
}

// ValidationABM (valABM) cross-validates the mean-field ODE against the
// agent-based Monte-Carlo simulation on an explicit synthetic Digg graph,
// in both annealed (mean-field contacts) and quenched (graph edges) modes.
func ValidationABM(cfg Config) (*Result, error) {
	rng := rand.New(rand.NewSource(cfg.seed()))
	nodes := 30000
	trials := 3
	if cfg.Quick {
		nodes = 5000
		trials = 2
	}
	seq, err := graph.PowerLawDegreeSequence(nodes, 1.8, 1, 100, rng)
	if err != nil {
		return nil, err
	}
	g, err := graph.ConfigurationModel(seq, rng)
	if err != nil {
		return nil, err
	}
	dist, err := degreedist.FromGraph(g)
	if err != nil {
		return nil, err
	}

	// Closed population (α = 0) so the ABM and ODE share dynamics exactly.
	lambda := degreedist.LambdaLinear(0.01)
	omega := paperOmega()
	const (
		eps1 = 0.005
		eps2 = 0.05
		i0   = 0.05
		dt   = 0.5
	)
	steps := 160
	if cfg.Quick {
		steps = 80
	}
	m, err := core.NewModel(dist, core.Params{
		Alpha: 0, Eps1: eps1, Eps2: eps2, Lambda: lambda, Omega: omega,
	})
	if err != nil {
		return nil, err
	}
	ic, err := m.UniformIC(i0)
	if err != nil {
		return nil, err
	}
	tf := dt * float64(steps)
	tr, err := m.Simulate(ic, tf, &core.SimOptions{Step: dt / 10})
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:    "valABM",
		Title: "Validation: mean-field ODE vs agent-based Monte Carlo",
	}
	res.Series = append(res.Series, plot.Series{
		Name: "ODE mean-field", X: tr.T, Y: tr.MeanISeries(),
	})

	for _, mode := range []struct {
		name string
		mode abm.Mode
	}{
		{"ABM annealed", abm.ModeAnnealed},
		{"ABM quenched", abm.ModeQuenched},
	} {
		r, err := abm.MeanRun(g, abm.Config{
			Lambda: lambda, Omega: omega,
			Eps1: eps1, Eps2: eps2,
			I0: i0, Dt: dt, Steps: steps,
			Mode:    mode.mode,
			Workers: cfg.Workers,
		}, trials, rng)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", mode.name, err)
		}
		res.Series = append(res.Series, plot.Series{Name: mode.name, X: r.T, Y: r.I})

		var worst float64
		for j, tj := range r.T {
			y := tr.At(tj)
			var odeAt float64
			for i := 0; i < m.N(); i++ {
				odeAt += m.Dist().Prob(i) * m.I(y, i)
			}
			if d := math.Abs(odeAt - r.I[j]); d > worst {
				worst = d
			}
		}
		res.setScalar("maxAbsGap:"+mode.name, worst)
	}
	res.addNote("annealed ABM is the finite-N realization of the mean-field assumption; "+
		"its gap to the ODE (%.3g) is Monte-Carlo noise. The quenched gap (%.3g) measures "+
		"the real-network correction the paper's model ignores.",
		res.Scalars["maxAbsGap:ABM annealed"], res.Scalars["maxAbsGap:ABM quenched"])
	return res, nil
}
