package experiments

import (
	"fmt"

	"rumornet/internal/control"
	"rumornet/internal/core"
	"rumornet/internal/par"
	"rumornet/internal/plot"
)

// fig4IC is the initial infected density for the control experiments.
const fig4IC = 0.1

func fig4Options(cfg Config) control.Options {
	opts := control.Options{
		Grid:    1000,
		Eps1Max: fig4EpsMax,
		Eps2Max: fig4EpsMax,
		Cost:    control.Cost{C1: fig4C1, C2: fig4C2},
	}
	if cfg.Quick {
		opts.Grid = 250
	}
	// The fig4 regime needs ~70-90 sweeps to converge; leave headroom.
	opts.MaxIter = 250
	return opts
}

// fig4Policy computes the optimized countermeasure policy over (0, tf] in
// the epidemic regime (the paper's "keeping the other parameters
// unchanged" base is Fig. 3's).
func fig4Policy(cfg Config, tf float64) (*core.Model, *control.Policy, error) {
	m, err := fig3Model(cfg)
	if err != nil {
		return nil, nil, err
	}
	ic, err := m.UniformIC(fig4IC)
	if err != nil {
		return nil, nil, err
	}
	pol, err := control.Optimize(m, ic, tf, fig4Options(cfg))
	if err != nil {
		return nil, nil, err
	}
	return m, pol, nil
}

// Fig4aOptimalControls regenerates Fig. 4(a): the optimized ε1(t), ε2(t)
// over (0, 100] with c1 = 5, c2 = 10. The paper's qualitative shape:
// spreading truth dominates early (ε1 > ε2), blocking dominates near the
// deadline (ε1 < ε2).
func Fig4aOptimalControls(cfg Config) (*Result, error) {
	m, pol, err := fig4Policy(cfg, fig4Tf)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:    "fig4a",
		Title: "Fig. 4(a): optimized countermeasures ε1(t), ε2(t) (c1=5, c2=10)",
	}
	res.Series = append(res.Series,
		plot.Series{Name: "ε1 (spread truth)", X: pol.Schedule.T, Y: pol.Schedule.Eps1},
		plot.Series{Name: "ε2 (block rumors)", X: pol.Schedule.T, Y: pol.Schedule.Eps2},
	)
	res.setScalar("r0", m.R0())
	res.setScalar("J", pol.Cost.Total)
	res.setScalar("terminalI", pol.Cost.Terminal)
	res.setScalar("iterations", float64(pol.Iterations))
	if pol.Converged {
		res.setScalar("converged", 1)
	} else {
		res.setScalar("converged", 0)
	}

	// Quantify the crossover the paper highlights.
	early, late := dominanceSplit(pol)
	res.setScalar("eps1DominantEarlyFrac", early)
	res.setScalar("eps2DominantLateFrac", late)
	res.addNote("FBSM converged=%v after %d sweeps; J = %.4g (terminal %.3g + running %.4g)",
		pol.Converged, pol.Iterations, pol.Cost.Total, pol.Cost.Terminal, pol.Cost.Running)
	res.addNote("paper shape: ε1 > ε2 early, ε1 < ε2 late — measured: "+
		"ε1 dominates %.0f%% of the first half, ε2 dominates %.0f%% of the last fifth",
		100*early, 100*late)
	return res, nil
}

// dominanceSplit measures how often ε1 > ε2 in the first half of the
// horizon and how often ε2 > ε1 in the final fifth.
func dominanceSplit(pol *control.Policy) (eps1Early, eps2Late float64) {
	n := len(pol.Schedule.T)
	half := n / 2
	var e1dom int
	for j := 0; j < half; j++ {
		if pol.Schedule.Eps1[j] > pol.Schedule.Eps2[j] {
			e1dom++
		}
	}
	lastFifth := n - n/5
	var e2dom int
	for j := lastFifth; j < n; j++ {
		if pol.Schedule.Eps2[j] > pol.Schedule.Eps1[j] {
			e2dom++
		}
	}
	return float64(e1dom) / float64(half), float64(e2dom) / float64(n-lastFifth)
}

// Fig4bThresholdEvolution regenerates Fig. 4(b): the threshold under the
// optimized countermeasures decreasing with time and crossing 1. Following
// Theorem 2's stability indicator we plot the effective reproduction number
// r_eff(t) = Γ(t)/ε2(t), which reflects the shrinking susceptible pool;
// the nominal r0(ε1(t), ε2(t)) is exported alongside (it diverges where the
// optimizer shuts ε1 off, an artifact the paper's figure does not show —
// see EXPERIMENTS.md).
func Fig4bThresholdEvolution(cfg Config) (*Result, error) {
	m, pol, err := fig4Policy(cfg, fig4Tf)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:    "fig4b",
		Title: "Fig. 4(b): threshold evolution under optimized countermeasures",
	}
	tr := pol.Trajectory
	eff := make([]float64, tr.Len())
	nominal := make([]float64, tr.Len())
	crossT := -1.0 // last downward crossing: extinct for good afterwards
	peak := 0.0
	for j := range tr.T {
		t := tr.T[j]
		e1 := pol.Schedule.Eps1At(t)
		e2 := pol.Schedule.Eps2At(t)
		eff[j] = m.EffectiveR0(tr.Y[j], e2)
		nominal[j] = m.R0At(e1, e2)
		if eff[j] > peak {
			peak = eff[j]
		}
		if j > 0 && eff[j] <= 1 && eff[j-1] > 1 {
			crossT = t
		}
	}
	res.Series = append(res.Series,
		plot.Series{Name: "r_eff(t) = Γ(t)/ε2(t)", X: tr.T, Y: eff},
		plot.Series{Name: "nominal r0(ε1(t), ε2(t))", X: tr.T, Y: nominal},
	)
	res.setScalar("initialEff", eff[0])
	res.setScalar("peakEff", peak)
	res.setScalar("finalEff", eff[len(eff)-1])
	res.setScalar("crossTime", crossT)
	res.addNote("r_eff peaks at %.3g (the optimizer's opening blocking burst briefly "+
		"suppresses it at t = 0), decays to %.3g, final crossing of 1 at t ≈ %.1f "+
		"(paper: r0 > 1 early, < 1 late)", peak, eff[len(eff)-1], crossT)
	return res, nil
}

// Fig4cCostComparison regenerates Fig. 4(c): the countermeasure cost of the
// heuristic (feedback-only) policy vs the optimized policy when both must
// drive the infected density below 10^-4 by tf, for tf = 10, 20, ..., 100.
func Fig4cCostComparison(cfg Config) (*Result, error) {
	m, err := fig3Model(cfg)
	if err != nil {
		return nil, err
	}
	ic, err := m.UniformIC(fig4IC)
	if err != nil {
		return nil, err
	}
	opts := fig4Options(cfg)
	cost := opts.Cost

	tfs := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	if cfg.Quick {
		tfs = []float64{20, 60, 100}
	}

	res := &Result{
		ID:    "fig4c",
		Title: "Fig. 4(c): cost of heuristic vs optimized countermeasures (I(tf) ≤ 1e-4)",
	}
	// Each grid point is an independent calibrate-plus-optimize problem on
	// the shared immutable model; fan them out and fold in horizon order.
	type costPair struct {
		heur, opt float64
	}
	pairs, err := par.Map(cfg.workers(), len(tfs), func(i int) (costPair, error) {
		tf := tfs[i]
		heur, err := control.CalibrateHeuristic(m, ic, tf, fig4TargetI, opts.Grid, opts.Eps1Max, opts.Eps2Max, cost)
		if err != nil {
			return costPair{}, fmt.Errorf("heuristic tf=%g: %w", tf, err)
		}
		opt, err := control.OptimizeToTarget(m, ic, tf, fig4TargetI, opts)
		if err != nil {
			return costPair{}, fmt.Errorf("optimized tf=%g: %w", tf, err)
		}
		return costPair{heur: heur.Cost.Running, opt: opt.Cost.Running}, nil
	})
	if err != nil {
		return nil, err
	}
	heurCosts := make([]float64, 0, len(tfs))
	optCosts := make([]float64, 0, len(tfs))
	wins := 0
	for _, p := range pairs {
		heurCosts = append(heurCosts, p.heur)
		optCosts = append(optCosts, p.opt)
		if p.opt < p.heur {
			wins++
		}
	}
	res.Series = append(res.Series,
		plot.Series{Name: "heuristic countermeasures", X: tfs, Y: heurCosts},
		plot.Series{Name: "optimized countermeasures", X: tfs, Y: optCosts},
	)
	res.setScalar("optimizedWins", float64(wins))
	res.setScalar("horizons", float64(len(tfs)))
	var ratio float64
	for i := range tfs {
		ratio += heurCosts[i] / optCosts[i]
	}
	ratio /= float64(len(tfs))
	res.setScalar("meanCostRatio", ratio)
	res.addNote("optimized policy cheaper on %d of %d horizons; mean heuristic/optimized "+
		"cost ratio %.2f (paper: optimized consistently below heuristic)", wins, len(tfs), ratio)
	return res, nil
}
