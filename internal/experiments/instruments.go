package experiments

import (
	"fmt"

	"rumornet/internal/control"
	"rumornet/internal/par"
	"rumornet/internal/plot"
)

// AblationInstruments (ablC) asks the question of Wen et al. ("To shut
// them up or to clarify", cited as [9]) inside the paper's optimal-control
// framework: is it better to spend the whole budget on blocking spreaders,
// on spreading truth, or on the jointly optimized mix? Each variant runs
// the FBSM with one control disabled (bound ≈ 0) or both enabled, on the
// same epidemic and objective.
func AblationInstruments(cfg Config) (*Result, error) {
	m, err := fig3Model(cfg)
	if err != nil {
		return nil, err
	}
	ic, err := m.UniformIC(fig4IC)
	if err != nil {
		return nil, err
	}
	tf := fig4Tf
	if cfg.Quick {
		tf = 40
	}
	const disabled = 1e-9 // Options requires strictly positive bounds

	res := &Result{
		ID:    "ablC",
		Title: "Instrument ablation: block-only vs truth-only vs jointly optimized",
	}
	variants := []struct {
		name             string
		eps1Max, eps2Max float64
	}{
		{"truth only (ε2 ≈ 0)", fig4EpsMax, disabled},
		{"blocking only (ε1 ≈ 0)", disabled, fig4EpsMax},
		{"joint (paper)", fig4EpsMax, fig4EpsMax},
	}
	pols, err := par.Map(cfg.workers(), len(variants), func(i int) (*control.Policy, error) {
		v := variants[i]
		opts := fig4Options(cfg)
		opts.Eps1Max = v.eps1Max
		opts.Eps2Max = v.eps2Max
		pol, err := control.Optimize(m, ic, tf, opts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.name, err)
		}
		return pol, nil
	})
	if err != nil {
		return nil, err
	}
	for i, pol := range pols {
		v := variants[i]
		res.Series = append(res.Series, plot.Series{
			Name: v.name + " mean I(t)",
			X:    pol.Trajectory.T,
			Y:    pol.Trajectory.MeanISeries(),
		})
		res.setScalar("J:"+v.name, pol.Cost.Total)
		res.setScalar("terminalI:"+v.name, pol.Cost.Terminal)
	}
	joint := res.Scalars["J:joint (paper)"]
	truth := res.Scalars["J:truth only (ε2 ≈ 0)"]
	block := res.Scalars["J:blocking only (ε1 ≈ 0)"]
	res.addNote("objective J: truth-only %.4g, blocking-only %.4g, joint %.4g — the "+
		"jointly optimized mix never loses to either single instrument, the premise "+
		"of the paper's combined countermeasure design", truth, block, joint)
	return res, nil
}
