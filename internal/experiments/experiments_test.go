package experiments

import (
	"strings"
	"testing"
)

func quickCfg() Config { return Config{Seed: 1, Quick: true} }

func TestIDsCoverEveryPaperArtifact(t *testing.T) {
	ids := IDs()
	want := []string{
		"tabD",
		"fig2a", "fig2b", "fig2c", "fig2d",
		"fig3a", "fig3b", "fig3c", "fig3d",
		"fig4a", "fig4b", "fig4c",
		"ablA", "ablC", "ablT", "ablW", "ablH", "valABM", "valDK", "extS", "extV",
	}
	have := make(map[string]bool, len(ids))
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if len(ids) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(ids), len(want))
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("nope", quickCfg()); err == nil {
		t.Error("unknown id: want error")
	}
}

func TestGroupPicks(t *testing.T) {
	picks := groupPicks(848, 17)
	if len(picks) != 17 || picks[0] != 0 || picks[len(picks)-1] != 847 {
		t.Errorf("picks = %v", picks)
	}
	for i := 1; i < len(picks); i++ {
		if picks[i] <= picks[i-1] {
			t.Fatalf("picks not strictly increasing: %v", picks)
		}
	}
	all := groupPicks(5, 10)
	if len(all) != 5 {
		t.Errorf("groupPicks(5, 10) = %v, want all 5", all)
	}
}

func TestTabDatasetSummary(t *testing.T) {
	res, err := Run("tabD", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalars["maxDegree"] != 995 || res.Scalars["minDegree"] != 1 {
		t.Errorf("degree support: %v", res.Scalars)
	}
	if m := res.Scalars["meanDegree"]; m < 20 || m > 28 {
		t.Errorf("mean degree = %v, want ≈24", m)
	}
	if len(res.Series) == 0 || len(res.Notes) == 0 {
		t.Error("missing series or notes")
	}
}

func TestFig2aConvergesToE0(t *testing.T) {
	res, err := Run("fig2a", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r0 := res.Scalars["r0"]; r0 < 0.72 || r0 > 0.73 {
		t.Errorf("r0 = %v, want 0.7220", r0)
	}
	// Shape check: every IC's distance must shrink by at least 10x.
	for _, s := range res.Series {
		first, last := s.Y[0], s.Y[len(s.Y)-1]
		if last > first/10 {
			t.Errorf("series %s: Dist0 %v → %v, insufficient convergence", s.Name, first, last)
		}
	}
}

func TestFig3aConvergesToEPlus(t *testing.T) {
	res, err := Run("fig3a", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r0 := res.Scalars["r0"]; r0 < 2.16 || r0 > 2.17 {
		t.Errorf("r0 = %v, want 2.1661", r0)
	}
	if res.Scalars["thetaPlus"] <= 0 {
		t.Error("Θ+ not positive")
	}
	for _, s := range res.Series {
		first, last := s.Y[0], s.Y[len(s.Y)-1]
		if last > first/3 {
			t.Errorf("series %s: Dist+ %v → %v, insufficient convergence", s.Name, first, last)
		}
	}
}

func TestFig2Trajectories(t *testing.T) {
	for _, id := range []string{"fig2b", "fig2c", "fig2d"} {
		res, err := Run(id, quickCfg())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(res.Series) < 10 {
			t.Errorf("%s: only %d series", id, len(res.Series))
		}
		for _, s := range res.Series {
			if !strings.HasPrefix(s.Name, "k=") {
				t.Errorf("%s: series name %q not a degree label", id, s.Name)
			}
		}
	}
	// Extinction regime: every infected series decays strongly (the
	// calibrated linear decay rate is ε2(1 − r0) ≈ 1/72, so by tf = 150
	// the density falls to ~12%% of its peak and keeps falling).
	res, err := Run("fig2c", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Series {
		peak := 0.0
		for _, v := range s.Y {
			if v > peak {
				peak = v
			}
		}
		if last := s.Y[len(s.Y)-1]; last > 0.2*peak {
			t.Errorf("fig2c %s: I(tf) = %v vs peak %v, insufficient decay", s.Name, last, peak)
		}
	}
}

func TestFig3InfectedPersists(t *testing.T) {
	res, err := Run("fig3c", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Epidemic regime: at least the high-degree groups stay infected.
	var persisting int
	for _, s := range res.Series {
		if s.Y[len(s.Y)-1] > 0.01 {
			persisting++
		}
	}
	if persisting == 0 {
		t.Error("no group retains infection in the epidemic regime")
	}
}

func TestFig4aCrossoverShape(t *testing.T) {
	res, err := Run("fig4a", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalars["converged"] != 1 {
		t.Error("FBSM did not converge")
	}
	// The paper's headline shape: truth-spreading dominates early,
	// blocking dominates at the deadline.
	if got := res.Scalars["eps1DominantEarlyFrac"]; got < 0.6 {
		t.Errorf("ε1 dominates only %.0f%% of the early phase, want mostly dominant", 100*got)
	}
	if got := res.Scalars["eps2DominantLateFrac"]; got < 0.6 {
		t.Errorf("ε2 dominates only %.0f%% of the late phase, want mostly dominant", 100*got)
	}
}

func TestFig4bThresholdDecreasesThroughOne(t *testing.T) {
	res, err := Run("fig4b", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalars["peakEff"] <= 1 {
		t.Errorf("peak r_eff = %v, want > 1 (epidemic phase exists)", res.Scalars["peakEff"])
	}
	if res.Scalars["finalEff"] >= 1 {
		t.Errorf("final r_eff = %v, want < 1 (extinct by deadline)", res.Scalars["finalEff"])
	}
	if res.Scalars["crossTime"] <= 0 {
		t.Error("no crossing time recorded")
	}
}

func TestFig4cOptimizedCheaper(t *testing.T) {
	res, err := Run("fig4c", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalars["optimizedWins"] != res.Scalars["horizons"] {
		t.Errorf("optimized cheaper on %v of %v horizons, want all",
			res.Scalars["optimizedWins"], res.Scalars["horizons"])
	}
	if res.Scalars["meanCostRatio"] <= 1 {
		t.Errorf("mean heuristic/optimized ratio = %v, want > 1", res.Scalars["meanCostRatio"])
	}
}

func TestAblationAdjointExactNoWorse(t *testing.T) {
	res, err := Run("ablA", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// The exact adjoint optimizes the true objective; the diagonal variant
	// may match it on weakly coupled problems but must never clearly win.
	exact := res.Scalars["J:exact adjoint"]
	diag := res.Scalars["J:paper diagonal adjoint (Eq. 16)"]
	if exact > diag*1.02 {
		t.Errorf("exact adjoint J = %v worse than diagonal %v", exact, diag)
	}
	if res.Scalars["relativeGap"] < 0 {
		t.Error("relative gap not recorded")
	}
}

func TestAblationInfectivityCalibrationOrdering(t *testing.T) {
	res, err := Run("ablW", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Hub-heavy (linear) infectivity carries E[k²] mass, so the same r0
	// needs the smallest acceptance scale.
	lin := res.Scalars["lambdaScale:ω(k) = k (linear)"]
	sat := res.Scalars["lambdaScale:ω(k) = √k/(1+√k) (saturating, paper)"]
	if lin >= sat {
		t.Errorf("linear λ scale %v not below saturating %v", lin, sat)
	}
	if len(res.Series) != 3 {
		t.Errorf("series = %d, want 3 infectivity families", len(res.Series))
	}
}

func TestAblationHomogeneousDiffers(t *testing.T) {
	res, err := Run("ablH", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	het := res.Scalars["r0 hetero extinction regime (fig2)"]
	hom := res.Scalars["r0 homog extinction regime (fig2)"]
	if het == hom {
		t.Error("homogenization left r0 unchanged; heterogeneity should matter")
	}
}

func TestAblationInstrumentsJointWins(t *testing.T) {
	res, err := Run("ablC", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	joint := res.Scalars["J:joint (paper)"]
	truth := res.Scalars["J:truth only (ε2 ≈ 0)"]
	block := res.Scalars["J:blocking only (ε1 ≈ 0)"]
	if joint > truth*1.001 || joint > block*1.001 {
		t.Errorf("joint J = %v not below truth-only %v and blocking-only %v",
			joint, truth, block)
	}
	if len(res.Series) != 3 {
		t.Errorf("series = %d, want 3", len(res.Series))
	}
}

func TestAblationTargetingDegreeBeatsRandom(t *testing.T) {
	res, err := Run("ablT", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	none := res.Scalars["peakI:no blocking"]
	random := res.Scalars["peakI:random users"]
	degree := res.Scalars["peakI:top Degree"]
	core := res.Scalars["peakI:top Core"]
	if degree >= random {
		t.Errorf("degree-targeted peak %v not below random %v", degree, random)
	}
	if core >= random {
		t.Errorf("core-targeted peak %v not below random %v", core, random)
	}
	if random > none*1.05 {
		t.Errorf("random blocking peak %v above no-blocking %v", random, none)
	}
}

func TestExtensionTraceICHubLoaded(t *testing.T) {
	res, err := Run("extV", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalars["seedMeanDegree"] <= res.Scalars["graphMeanDegree"] {
		t.Errorf("seed mean degree %v not above graph mean %v: traces should be hub-loaded",
			res.Scalars["seedMeanDegree"], res.Scalars["graphMeanDegree"])
	}
	if res.Scalars["theta0Trace"] <= res.Scalars["theta0Uniform"] {
		t.Errorf("trace-driven Θ(0) = %v not above uniform %v",
			res.Scalars["theta0Trace"], res.Scalars["theta0Uniform"])
	}
	if res.Scalars["earlyITrace"] < res.Scalars["earlyIUniform"] {
		t.Errorf("trace-driven early infection %v below uniform %v",
			res.Scalars["earlyITrace"], res.Scalars["earlyIUniform"])
	}
	if len(res.Series) != 3 {
		t.Errorf("series = %d, want 3", len(res.Series))
	}
}

func TestExtensionSpatialFrontSpeed(t *testing.T) {
	res, err := Run("extS", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	ratio := res.Scalars["speedRatio"]
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("front speed ratio = %v, want within 2x of Fisher", ratio)
	}
	if len(res.Series) != 3 {
		t.Errorf("series = %d, want 3 snapshots", len(res.Series))
	}
}

func TestValidationDKHitsClassicalLaw(t *testing.T) {
	res, err := Run("valDK", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if gap := res.Scalars["gapODE"]; gap > 0.01 {
		t.Errorf("ODE final-size gap = %v, want ≤ 0.01", gap)
	}
	if gap := res.Scalars["gapGillespie"]; gap > 0.05 {
		t.Errorf("Gillespie final-size gap = %v, want ≤ 0.05", gap)
	}
	if len(res.Series) != 3 {
		t.Errorf("series = %d, want 3", len(res.Series))
	}
}

func TestValidationABMGaps(t *testing.T) {
	res, err := Run("valABM", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if gap := res.Scalars["maxAbsGap:ABM annealed"]; gap > 0.03 {
		t.Errorf("annealed gap = %v, want ≤ 0.03 (mean-field limit)", gap)
	}
	if len(res.Series) != 3 {
		t.Errorf("series = %d, want ODE + 2 ABM modes", len(res.Series))
	}
}
