// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V) plus this repository's own ablations and
// validations. Each experiment is a pure function from a Config to a
// Result; cmd/figgen renders Results as ASCII charts and CSV files, and the
// repository-level benchmarks time them.
//
// The per-experiment index lives in DESIGN.md; measured-vs-paper notes in
// EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"rumornet/internal/core"
	"rumornet/internal/degreedist"
	"rumornet/internal/digg"
	"rumornet/internal/par"
	"rumornet/internal/plot"
)

// Config controls experiment fidelity.
type Config struct {
	// Seed drives every random choice; experiments are deterministic given
	// a seed. The zero value selects seed 1.
	Seed int64
	// Quick trades fidelity for speed (fewer groups, coarser grids,
	// fewer repetitions) — used by unit tests and quick benchmark runs.
	Quick bool
	// Workers bounds the goroutines used for an experiment's independent
	// sub-runs (initial conditions, grid points, ablation variants) and is
	// forwarded to the agent-based simulator. Zero or negative selects
	// runtime.NumCPU(); 1 restores fully serial execution. Every
	// experiment's output is bit-identical for every value (see DESIGN.md,
	// "Concurrency & determinism").
	Workers int
}

func (c Config) seed() int64 {
	if c.Seed == 0 {
		return 1
	}
	return c.Seed
}

func (c Config) workers() int { return par.Default(c.Workers) }

// Result is the output of one experiment.
type Result struct {
	// ID is the experiment identifier (e.g. "fig2a").
	ID string
	// Title describes the regenerated artifact.
	Title string
	// Series holds the plotted data.
	Series []plot.Series
	// Scalars holds named headline numbers (thresholds, costs, counts).
	Scalars map[string]float64
	// Notes records calibration values and paper-comparison remarks.
	Notes []string
}

func (r *Result) addNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

func (r *Result) setScalar(name string, v float64) {
	if r.Scalars == nil {
		r.Scalars = make(map[string]float64)
	}
	r.Scalars[name] = v
}

// Func runs one experiment.
type Func func(Config) (*Result, error)

// registry maps experiment ids to implementations. It is populated in this
// file only (no init() sprawl) so the set is easy to audit.
func registry() map[string]Func {
	return map[string]Func{
		"tabD":   TabDatasetSummary,
		"fig2a":  Fig2aDistToE0,
		"fig2b":  Fig2bSusceptible,
		"fig2c":  Fig2cInfected,
		"fig2d":  Fig2dRecovered,
		"fig3a":  Fig3aDistToEPlus,
		"fig3b":  Fig3bSusceptible,
		"fig3c":  Fig3cInfected,
		"fig3d":  Fig3dRecovered,
		"fig4a":  Fig4aOptimalControls,
		"fig4b":  Fig4bThresholdEvolution,
		"fig4c":  Fig4cCostComparison,
		"ablA":   AblationAdjoint,
		"ablC":   AblationInstruments,
		"ablT":   AblationTargeting,
		"ablW":   AblationInfectivity,
		"ablH":   AblationHomogeneous,
		"valABM": ValidationABM,
		"valDK":  ValidationDK,
		"extS":   ExtensionSpatialFront,
		"extV":   ExtensionTraceIC,
	}
}

// IDs returns the sorted experiment identifiers.
func IDs() []string {
	reg := registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes the experiment with the given id.
func Run(id string, cfg Config) (*Result, error) {
	f, ok := registry()[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	res, err := f(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", id, err)
	}
	return res, nil
}

// diggDist builds the synthetic Digg2009 degree distribution (truncated in
// Quick mode to keep tests fast).
func diggDist(cfg Config) (*degreedist.Dist, error) {
	rng := rand.New(rand.NewSource(cfg.seed()))
	d, err := digg.Dist(rng)
	if err != nil {
		return nil, err
	}
	if cfg.Quick {
		return d.Truncate(40)
	}
	return d, nil
}

// Paper parameter sets (Section V).
const (
	fig2Alpha = 0.01
	fig2Eps1  = 0.2
	fig2Eps2  = 0.05
	fig2R0    = 0.7220
	fig2Tf    = 150.0

	// The paper prints α = 0.002, ε1 = 0.002, ε2 = 0.0001 for Fig. 3, but
	// those rates give an unphysical positive equilibrium (I+ ≈ 17 ≫ 1)
	// and a relaxation timescale of 1/ε2 = 10^4, i.e. no convergence within
	// the plotted t ∈ (0, 300]. The rescaled regime below keeps the printed
	// threshold r0 = 2.1661 and reproduces the figure's equilibrium levels
	// (S+ ≈ 0.05–0.20, I+ ≈ 0.1–0.45) and its convergence-by-t≈300 shape.
	// See DESIGN.md (substitution table) and EXPERIMENTS.md.
	fig3Alpha = 0.01
	fig3Eps1  = 0.05
	fig3Eps2  = 0.02
	fig3R0    = 2.1661
	fig3Tf    = 300.0

	fig4C1      = 5.0
	fig4C2      = 10.0
	fig4Tf      = 100.0
	fig4EpsMax  = 0.8
	fig4TargetI = 1e-4
)

// paperOmega is the evaluation's infectivity ω(k) = k^0.5/(1 + k^0.5).
func paperOmega() degreedist.KFunc { return degreedist.OmegaSaturating(0.5, 0.5) }

// fig2Model builds the calibrated extinction-regime model (r0 = 0.7220).
func fig2Model(cfg Config) (*core.Model, error) {
	d, err := diggDist(cfg)
	if err != nil {
		return nil, err
	}
	return core.CalibratedModel(d, fig2Alpha, fig2Eps1, fig2Eps2, fig2R0, paperOmega())
}

// fig3Model builds the calibrated epidemic-regime model (r0 = 2.1661).
func fig3Model(cfg Config) (*core.Model, error) {
	d, err := diggDist(cfg)
	if err != nil {
		return nil, err
	}
	return core.CalibratedModel(d, fig3Alpha, fig3Eps1, fig3Eps2, fig3R0, paperOmega())
}

// groupPicks returns up to want indices spread across the n groups,
// mirroring the paper's "i = 1, 50, 100, ..., 800" selection.
func groupPicks(n, want int) []int {
	if want >= n {
		picks := make([]int, n)
		for i := range picks {
			picks[i] = i
		}
		return picks
	}
	picks := make([]int, 0, want)
	step := float64(n-1) / float64(want-1)
	for j := 0; j < want; j++ {
		picks = append(picks, int(float64(j)*step))
	}
	return picks
}
