package experiments

import (
	"fmt"
	"math/rand"

	"rumornet/internal/abm"
	"rumornet/internal/degreedist"
	"rumornet/internal/graph"
	"rumornet/internal/plot"
)

// AblationTargeting (ablT) operationalizes the strategy the paper's
// introduction attributes to prior work — "blocking rumors at influential
// users" identified by Degree, Betweenness or Core ("Rumor ends with
// Sage") — and measures it on an explicit Digg-like graph with the
// agent-based simulator: the same blocking budget (2% of users) is spent
// on users chosen by each centrality, against random and no-op baselines.
func AblationTargeting(cfg Config) (*Result, error) {
	rng := rand.New(rand.NewSource(cfg.seed()))
	nodes := 20000
	trials := 3
	steps := 160
	if cfg.Quick {
		nodes = 4000
		steps = 120
	}
	seq, err := graph.PowerLawDegreeSequence(nodes, 1.8, 1, 100, rng)
	if err != nil {
		return nil, err
	}
	g, err := graph.ConfigurationModel(seq, rng)
	if err != nil {
		return nil, err
	}
	budget := nodes / 50 // block 2% of users

	strategies := []struct {
		name string
		pick func() ([]int, error)
	}{
		{"no blocking", func() ([]int, error) { return nil, nil }},
		{"random users", func() ([]int, error) { return g.RandomK(budget, rng) }},
		{"top Degree", func() ([]int, error) { return g.TopKByOutDegree(budget) }},
		{"top Core", func() ([]int, error) { return g.TopKByCore(budget) }},
		{"top Betweenness", func() ([]int, error) {
			samples := 200
			if cfg.Quick {
				samples = 80
			}
			return g.TopKByBetweenness(budget, samples, rng)
		}},
	}

	// A decisively supercritical rumor, so blocking strategy differences
	// dominate Monte-Carlo noise.
	base := abm.Config{
		Lambda:  degreedist.LambdaLinear(0.35),
		Omega:   degreedist.OmegaSaturating(0.5, 0.5),
		Eps1:    0.002,
		Eps2:    0.05,
		I0:      0.005,
		Dt:      0.5,
		Steps:   steps,
		Mode:    abm.ModeQuenched,
		Workers: cfg.Workers,
	}

	res := &Result{
		ID:    "ablT",
		Title: "Targeted blocking: which influential users to block (2% budget)",
	}
	for _, st := range strategies {
		blocked, err := st.pick()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", st.name, err)
		}
		c := base
		c.Blocked = blocked
		// Paired comparison: every strategy sees the same random stream,
		// so only the blocked set differs between runs.
		r, err := abm.MeanRun(g, c, trials, rand.New(rand.NewSource(cfg.seed()+1)))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", st.name, err)
		}
		res.Series = append(res.Series, plot.Series{Name: st.name, X: r.T, Y: r.I})
		res.setScalar("peakI:"+st.name, r.PeakI())
		res.setScalar("finalI:"+st.name, r.FinalI())
	}
	res.addNote("equal budgets: centrality-targeted blocking (Degree/Core/Betweenness) "+
		"suppresses the outbreak far below random blocking — the \"Rumor ends with Sage\" "+
		"effect the paper's introduction cites; %d of %d users blocked per strategy",
		budget, nodes)
	return res, nil
}
