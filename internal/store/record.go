package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"
)

// WAL framing: every record is
//
//	uint32 little-endian payload length
//	uint32 little-endian CRC32-C (Castagnoli) of the payload
//	payload bytes (JSON-encoded walRecord)
//
// The frame is deliberately minimal: length-prefix + checksum is enough to
// detect both torn tail writes (short frame) and bit rot (CRC mismatch),
// and replay stops at the first bad frame, treating everything before it
// as the durable prefix. See DESIGN.md §10.
const frameHeader = 8

// maxRecordBytes bounds a single WAL payload. A frame whose length field
// exceeds it is treated as corruption rather than an allocation request —
// a flipped bit in the length must not make replay try to read gigabytes.
const maxRecordBytes = 16 << 20

// castagnoli is the CRC32-C table shared by the WAL and the blob store.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// WAL record operations (the Op field of a walRecord).
const (
	opSubmitted = "submitted"
	opStarted   = "started"
	opFinished  = "finished"
	opAttempt   = "attempt"
	opScenario  = "scenario"
	opSnapshot  = "snapshot"
)

// walRecord is the JSON payload of one WAL frame. Submitted records carry
// the full request so recovery can re-enqueue the job; terminal records
// carry only the id and outcome. Snapshot records open a compacted segment
// and carry the entire live state, making every older segment obsolete.
type walRecord struct {
	Op    string `json:"op"`
	JobID string `json:"job_id,omitempty"`
	// Seq is the numeric job sequence the service allocated for JobID;
	// recovery resumes id allocation above the maximum seen.
	Seq uint64 `json:"seq,omitempty"`
	// Status is the terminal outcome of an opFinished record
	// (succeeded/failed/cancelled).
	Status string `json:"status,omitempty"`
	// Attempt is the cumulative lease-grant count of an opAttempt record;
	// recovery restores it so a poison job's budget survives a coordinator
	// restart instead of resetting.
	Attempt int `json:"attempt,omitempty"`
	// Request, Key, TraceID, SubmittedAt and Class describe an
	// opSubmitted job. Class is the admission priority (interactive/
	// batch) so recovery re-enqueues a job into the queue class it was
	// admitted under.
	Request     json.RawMessage `json:"request,omitempty"`
	Key         string          `json:"key,omitempty"`
	TraceID     string          `json:"trace_id,omitempty"`
	SubmittedAt time.Time       `json:"submitted_at,omitempty"`
	Class       string          `json:"class,omitempty"`

	// Scenario is the uploaded degree-distribution table of an opScenario
	// record; recovery re-registers it so recovered jobs that reference it
	// no longer fail with "unknown scenario".
	Scenario *ScenarioState `json:"scenario,omitempty"`

	// Snapshot payload (opSnapshot).
	Jobs      []JobState      `json:"jobs,omitempty"`
	Scenarios []ScenarioState `json:"scenarios,omitempty"`
	MaxSeq    uint64          `json:"max_seq,omitempty"`
}

// ScenarioState is the persisted form of one uploaded scenario table: the
// registration name plus the degree distribution verbatim. Registration is
// append-only service-side, so the WAL never needs update or delete ops
// for it, and snapshots carry the full set.
type ScenarioState struct {
	Name    string    `json:"name"`
	Source  string    `json:"source,omitempty"`
	Degrees []int     `json:"degrees"`
	Probs   []float64 `json:"probs"`
}

// JobState is the recovered view of a job that was submitted but had not
// reached a terminal status when the process stopped.
type JobState struct {
	ID          string          `json:"id"`
	Seq         uint64          `json:"seq"`
	Request     json.RawMessage `json:"request"`
	Key         string          `json:"key"`
	TraceID     string          `json:"trace_id,omitempty"`
	SubmittedAt time.Time       `json:"submitted_at"`
	// Class is the admission priority class recorded at submission
	// (empty for pre-PR-10 records: the service defaults it).
	Class string `json:"class,omitempty"`
	// Started reports whether the job had begun executing; recovery
	// re-enqueues it either way (results are deterministic and idempotent).
	Started bool `json:"started,omitempty"`
	// Attempts is the lease-grant count a clustered coordinator recorded
	// for the job (zero for standalone jobs). It rides snapshots so
	// compaction preserves the poison-job budget.
	Attempts int `json:"attempts,omitempty"`
}

// encodeRecord frames one record: header + JSON payload.
func encodeRecord(rec walRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("store: marshal wal record: %w", err)
	}
	if len(payload) > maxRecordBytes {
		return nil, fmt.Errorf("%w: %d bytes exceeds the %d-byte bound",
			errRecordTooLarge, len(payload), maxRecordBytes)
	}
	buf := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	copy(buf[frameHeader:], payload)
	return buf, nil
}

// errBadFrame marks a frame replay must stop at: torn tail, implausible
// length, or checksum mismatch. It is internal — replay converts it into a
// truncation point, never an error for the caller.
var errBadFrame = errors.New("store: bad wal frame")

// errRecordTooLarge marks an encode rejected by maxRecordBytes. Compaction
// checks for it: a snapshot of an enormous pending set falls back to plain
// rotation instead of failing the triggering append.
var errRecordTooLarge = errors.New("store: wal record too large")

// readRecord decodes the next frame from r. It returns io.EOF at a clean
// end of the stream and errBadFrame (wrapped with detail) for anything
// that cannot be a whole, intact record.
func readRecord(r io.Reader) (walRecord, int64, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return walRecord{}, 0, io.EOF
		}
		// A partial header is a torn write at the tail.
		return walRecord{}, 0, fmt.Errorf("%w: torn header: %v", errBadFrame, err)
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if length > maxRecordBytes {
		return walRecord{}, 0, fmt.Errorf("%w: implausible length %d", errBadFrame, length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return walRecord{}, 0, fmt.Errorf("%w: torn payload: %v", errBadFrame, err)
	}
	if crc32.Checksum(payload, castagnoli) != sum {
		return walRecord{}, 0, fmt.Errorf("%w: checksum mismatch", errBadFrame)
	}
	var rec walRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return walRecord{}, 0, fmt.Errorf("%w: undecodable payload: %v", errBadFrame, err)
	}
	return rec, int64(frameHeader + int(length)), nil
}
