package store

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"
)

// populateWAL writes a log of n submitted+finished pairs plus a handful of
// live jobs — the shape a busy daemon leaves behind.
func populateWAL(b *testing.B, dir string, n int) {
	b.Helper()
	s, err := Open(dir, Options{SyncMode: SyncNone, CompactSegments: 1 << 30, SegmentMaxBytes: 1 << 40})
	if err != nil {
		b.Fatal(err)
	}
	req := json.RawMessage(`{"type":"ode","params":{"lambda0":0.02,"tf":40,"points":50}}`)
	for i := 1; i <= n/2; i++ {
		js := JobState{
			ID: fmt.Sprintf("j-%06d", i), Seq: uint64(i), Request: req,
			Key: fmt.Sprintf("%064d", i), SubmittedAt: time.Now(),
		}
		if err := s.AppendSubmitted(js); err != nil {
			b.Fatal(err)
		}
		if i%16 != 0 { // most jobs finished; every 16th stays live
			if err := s.AppendFinished(js.ID, "succeeded"); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRecovery1k measures cold-start replay of a 1k-record WAL — the
// restart cost the BENCH_PR5 acceptance number tracks.
func BenchmarkRecovery1k(b *testing.B) {
	dir := b.TempDir()
	populateWAL(b, dir, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Open(dir, Options{SyncMode: SyncNone})
		if err != nil {
			b.Fatal(err)
		}
		if s.Snapshot().ReplayRecords == 0 {
			b.Fatal("nothing replayed")
		}
		b.StopTimer()
		s.Close()
		b.StartTimer()
	}
}

// BenchmarkWALAppend measures one submitted-record append under each sync
// policy; the batch/none-to-always gap is the price of per-record fsync.
func BenchmarkWALAppend(b *testing.B) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"Batch", Options{SyncMode: SyncBatch, SyncInterval: 100 * time.Millisecond}},
		{"None", Options{SyncMode: SyncNone}},
		{"Always", Options{SyncMode: SyncAlways}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			dir := b.TempDir()
			s, err := Open(dir, tc.opts)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			req := json.RawMessage(`{"type":"ode","params":{"seed":1}}`)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				js := JobState{
					ID: fmt.Sprintf("j-%06d", i+1), Seq: uint64(i + 1),
					Request: req, Key: fmt.Sprintf("%064d", i+1), SubmittedAt: time.Now(),
				}
				if err := s.AppendSubmitted(js); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPutResult measures the atomic write+rename blob path.
func BenchmarkPutResult(b *testing.B) {
	s, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	payload := make([]byte, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.PutResult(fmt.Sprintf("%064d", i), payload); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	os.RemoveAll(s.Dir())
}
