package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func openTest(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func submitJob(t *testing.T, s *Store, seq uint64) JobState {
	t.Helper()
	js := JobState{
		ID:          fmt.Sprintf("j-%06d", seq),
		Seq:         seq,
		Request:     json.RawMessage(fmt.Sprintf(`{"type":"ode","params":{"seed":%d}}`, seq)),
		Key:         fmt.Sprintf("%064d", seq),
		TraceID:     "0123456789abcdef0123456789abcdef",
		SubmittedAt: time.Now().UTC().Truncate(time.Millisecond),
	}
	if err := s.AppendSubmitted(js); err != nil {
		t.Fatal(err)
	}
	return js
}

// TestRecoveryRoundtrip is the core contract: after a non-drained close,
// reopening the directory yields exactly the jobs that never finished, in
// submission order, with their requests intact, and id allocation resumes
// above the highest sequence ever logged.
func TestRecoveryRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SyncMode: SyncNone})

	j1 := submitJob(t, s, 1) // will finish
	j2 := submitJob(t, s, 2) // started, never finished
	j3 := submitJob(t, s, 3) // queued, never started
	if err := s.AppendStarted(j1.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendFinished(j1.ID, "succeeded"); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendStarted(j2.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := openTest(t, dir, Options{})
	pending := r.PendingJobs()
	if len(pending) != 2 {
		t.Fatalf("pending = %d jobs, want 2: %+v", len(pending), pending)
	}
	if pending[0].ID != j2.ID || pending[1].ID != j3.ID {
		t.Errorf("pending order: %s, %s; want %s, %s", pending[0].ID, pending[1].ID, j2.ID, j3.ID)
	}
	if !pending[0].Started {
		t.Error("j2 lost its started flag")
	}
	if pending[1].Started {
		t.Error("j3 gained a started flag")
	}
	if string(pending[0].Request) != string(j2.Request) {
		t.Errorf("request round-trip: %s != %s", pending[0].Request, j2.Request)
	}
	if !pending[1].SubmittedAt.Equal(j3.SubmittedAt) {
		t.Errorf("submitted_at round-trip: %v != %v", pending[1].SubmittedAt, j3.SubmittedAt)
	}
	if r.MaxSeq() != 3 {
		t.Errorf("max seq = %d, want 3", r.MaxSeq())
	}
	if st := r.Snapshot(); st.ReplayRecords != 6 || st.ReplayTruncations != 0 {
		t.Errorf("replay stats: %+v", st)
	}
}

// TestRotationAndCompaction drives enough records through a tiny segment
// bound to force several rotations and then a compaction, and verifies the
// compacted log still recovers the exact live set.
func TestRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{
		SyncMode:        SyncNone,
		SegmentMaxBytes: 512,
		CompactSegments: 3,
	})
	// Many finished jobs (dead records) plus a few live ones.
	for seq := uint64(1); seq <= 40; seq++ {
		js := submitJob(t, s, seq)
		if seq%10 != 0 { // every 10th stays pending
			if err := s.AppendFinished(js.ID, "succeeded"); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := s.Snapshot()
	if st.Compactions == 0 {
		t.Fatalf("no compaction after 80 records over 512-byte segments: %+v", st)
	}
	if st.WALSegments >= 3 {
		t.Errorf("compaction left %d segments, want < 3", st.WALSegments)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := openTest(t, dir, Options{})
	pending := r.PendingJobs()
	if len(pending) != 4 {
		t.Fatalf("pending after compaction = %d, want 4", len(pending))
	}
	for i, js := range pending {
		if want := fmt.Sprintf("j-%06d", (i+1)*10); js.ID != want {
			t.Errorf("pending[%d] = %s, want %s", i, js.ID, want)
		}
	}
	if r.MaxSeq() != 40 {
		t.Errorf("max seq survived compaction: %d, want 40", r.MaxSeq())
	}
}

// TestExplicitCompact checks the manual trigger drops history immediately.
func TestExplicitCompact(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SyncMode: SyncNone, SegmentMaxBytes: 256, CompactSegments: 100})
	for seq := uint64(1); seq <= 20; seq++ {
		js := submitJob(t, s, seq)
		if err := s.AppendFinished(js.ID, "failed"); err != nil {
			t.Fatal(err)
		}
	}
	live := submitJob(t, s, 21)
	before := s.Snapshot()
	if before.WALSegments < 2 {
		t.Fatalf("want multiple segments before compaction, got %d", before.WALSegments)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after := s.Snapshot()
	if after.WALSegments != 1 {
		t.Errorf("segments after compact = %d, want 1", after.WALSegments)
	}
	if after.WALBytes >= before.WALBytes {
		t.Errorf("compaction did not shrink the log: %d -> %d bytes", before.WALBytes, after.WALBytes)
	}
	s.Close()

	r := openTest(t, dir, Options{})
	if p := r.PendingJobs(); len(p) != 1 || p[0].ID != live.ID {
		t.Errorf("pending after compact+reopen: %+v", p)
	}
}

// TestSyncModes exercises all three durability policies end to end; batch
// mode must become durable within the interval without an explicit sync.
func TestSyncModes(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"always", Options{SyncMode: SyncAlways}},
		{"batch", Options{SyncMode: SyncBatch, SyncInterval: 5 * time.Millisecond}},
		{"none", Options{SyncMode: SyncNone}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s := openTest(t, dir, tc.opts)
			submitJob(t, s, 1)
			if tc.opts.SyncMode == SyncBatch {
				// Give the flusher a couple of intervals to pick it up.
				deadline := time.Now().Add(2 * time.Second)
				for s.Snapshot().Fsyncs == 0 && time.Now().Before(deadline) {
					time.Sleep(time.Millisecond)
				}
				if s.Snapshot().Fsyncs == 0 {
					t.Error("batched flusher never synced")
				}
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			r := openTest(t, dir, Options{})
			if len(r.PendingJobs()) != 1 {
				t.Errorf("pending = %d, want 1", len(r.PendingJobs()))
			}
		})
	}
}

// TestParseSyncMode covers the flag grammar.
func TestParseSyncMode(t *testing.T) {
	cases := []struct {
		in       string
		mode     SyncMode
		interval time.Duration
		wantErr  bool
	}{
		{"always", SyncAlways, 0, false},
		{"none", SyncNone, 0, false},
		{"off", SyncNone, 0, false},
		{"100ms", SyncBatch, 100 * time.Millisecond, false},
		{"2s", SyncBatch, 2 * time.Second, false},
		{"0s", 0, 0, true},
		{"-5ms", 0, 0, true},
		{"sometimes", 0, 0, true},
		{"", 0, 0, true},
	}
	for _, tc := range cases {
		mode, interval, err := ParseSyncMode(tc.in)
		if (err != nil) != tc.wantErr {
			t.Errorf("ParseSyncMode(%q): err = %v, wantErr = %v", tc.in, err, tc.wantErr)
			continue
		}
		if err == nil && (mode != tc.mode || interval != tc.interval) {
			t.Errorf("ParseSyncMode(%q) = (%v, %s), want (%v, %s)", tc.in, mode, interval, tc.mode, tc.interval)
		}
	}
}

// TestHooksFire verifies the latency observers see appends and fsyncs.
func TestHooksFire(t *testing.T) {
	var mu sync.Mutex
	var appends, fsyncs int
	dir := t.TempDir()
	s := openTest(t, dir, Options{
		SyncMode: SyncAlways,
		Hooks: Hooks{
			OnAppend: func(time.Duration) { mu.Lock(); appends++; mu.Unlock() },
			OnFsync:  func(time.Duration) { mu.Lock(); fsyncs++; mu.Unlock() },
		},
	})
	submitJob(t, s, 1)
	if err := s.AppendFinished("j-000001", "succeeded"); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if appends != 2 || fsyncs != 2 {
		t.Errorf("hooks: %d appends, %d fsyncs; want 2, 2", appends, fsyncs)
	}
}

// TestConcurrentAppends hammers the WAL and blob store from many
// goroutines; under -race this is the subsystem's data-race gate.
func TestConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SyncMode: SyncBatch, SyncInterval: time.Millisecond, SegmentMaxBytes: 2048})
	const n = 8
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				seq := uint64(w*100 + i + 1)
				js := JobState{
					ID:          fmt.Sprintf("j-%06d", seq),
					Seq:         seq,
					Request:     json.RawMessage(`{"type":"threshold"}`),
					Key:         fmt.Sprintf("%064d", seq),
					SubmittedAt: time.Now(),
				}
				if err := s.AppendSubmitted(js); err != nil {
					t.Error(err)
					return
				}
				if err := s.PutResult(js.Key, []byte(`{"r0":1.5}`)); err != nil {
					t.Error(err)
					return
				}
				if _, ok := s.GetResult(js.Key); !ok {
					t.Errorf("result %s vanished", js.Key)
					return
				}
				if i%2 == 0 {
					if err := s.AppendFinished(js.ID, "succeeded"); err != nil {
						t.Error(err)
						return
					}
				}
				s.Snapshot()
			}
		}(w)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := openTest(t, dir, Options{})
	if got := len(r.PendingJobs()); got != n*10 {
		t.Errorf("pending = %d, want %d", got, n*10)
	}
	if got := len(r.ResultKeys()); got != n*20 {
		t.Errorf("results = %d, want %d", got, n*20)
	}
}

// TestCloseIdempotent double-closes and appends after close.
func TestCloseIdempotent(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	submitJob(t, s, 1)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := s.AppendStarted("j-000001"); err == nil {
		t.Error("append after close should fail")
	}
}

// TestOpenCreatesLayout checks the directory skeleton appears.
func TestOpenCreatesLayout(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "data")
	s := openTest(t, dir, Options{})
	_ = s
	for _, sub := range []string{walDirName, resultsDirName} {
		if _, err := os.Stat(filepath.Join(dir, sub)); err != nil {
			t.Errorf("missing %s: %v", sub, err)
		}
	}
}

// TestCompactionFallsBackWhenSnapshotTooLarge drives the pending set past
// the single-record bound: compaction cannot snapshot it, so the append
// must fall back to plain rotation and keep every record — never fail, and
// never lose pending jobs.
func TestCompactionFallsBackWhenSnapshotTooLarge(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{
		SyncMode: SyncNone, SegmentMaxBytes: 1 << 20, CompactSegments: 1,
	})
	// Each request is ~7 MiB — an individual record fits the 16 MiB bound,
	// but three pending jobs (~21 MiB) no longer fit one snapshot record.
	pad := make([]byte, 7<<20)
	for i := range pad {
		pad[i] = 'x'
	}
	big := json.RawMessage(`{"pad":"` + string(pad) + `"}`)
	for i := 1; i <= 4; i++ {
		js := JobState{
			ID: fmt.Sprintf("j-%06d", i), Seq: uint64(i), Request: big,
			Key: fmt.Sprintf("%064d", i), SubmittedAt: time.Now(),
		}
		if err := s.AppendSubmitted(js); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, dir, Options{SyncMode: SyncNone})
	if got := len(s2.PendingJobs()); got != 4 {
		t.Errorf("pending after fallback rotation = %d, want all 4", got)
	}
}
