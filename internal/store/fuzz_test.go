package store

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// FuzzWALReplay feeds arbitrary bytes to the segment replayer: whatever
// the file contains, replay must neither panic nor error — corruption is
// a truncation point, not a failure — and the store that results must be
// consistent enough to accept new appends and survive a reopen.
func FuzzWALReplay(f *testing.F) {
	// Seed 1: a well-formed log (submit ×2, start, finish).
	var good bytes.Buffer
	for _, rec := range []walRecord{
		{Op: opSubmitted, JobID: "j-000001", Seq: 1, Key: "00aa", Request: json.RawMessage(`{"type":"ode"}`), SubmittedAt: time.Unix(1700000000, 0)},
		{Op: opSubmitted, JobID: "j-000002", Seq: 2, Key: "00bb", Request: json.RawMessage(`{"type":"abm"}`)},
		{Op: opStarted, JobID: "j-000001"},
		{Op: opFinished, JobID: "j-000001", Status: "succeeded"},
	} {
		frame, err := encodeRecord(rec)
		if err != nil {
			f.Fatal(err)
		}
		good.Write(frame)
	}
	f.Add(good.Bytes())
	// Seed 2: the same log with a torn tail.
	f.Add(good.Bytes()[:good.Len()-7])
	// Seed 3: a snapshot record followed by garbage.
	snap, err := encodeRecord(walRecord{Op: opSnapshot, MaxSeq: 9, Jobs: []JobState{{ID: "j-000009", Seq: 9}}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(append(append([]byte{}, snap...), 0xDE, 0xAD, 0xBE, 0xEF))
	// Seed 4: pure garbage and the empty file.
	f.Add([]byte("not a wal at all"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.MkdirAll(filepath.Join(dir, walDirName), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, walDirName, segmentName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, Options{SyncMode: SyncNone})
		if err != nil {
			t.Fatalf("Open over fuzzed segment: %v", err)
		}
		// Whatever was recovered, the store must keep working.
		pending := s.PendingJobs()
		for _, js := range pending {
			if js.ID == "" {
				t.Errorf("recovered job with empty id: %+v", js)
			}
		}
		if err := s.AppendSubmitted(JobState{
			ID: "j-fuzz", Seq: s.MaxSeq() + 1,
			Request: json.RawMessage(`{"type":"threshold"}`), Key: "00cc",
		}); err != nil {
			t.Fatalf("append after fuzzed replay: %v", err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		// Reopen: the repaired log must now replay cleanly.
		s2, err := Open(dir, Options{SyncMode: SyncNone})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		if s2.Snapshot().ReplayTruncations != 0 {
			t.Error("corruption persisted across the repairing replay")
		}
		if got := len(s2.PendingJobs()); got != len(pending)+1 {
			t.Errorf("pending changed across reopen: %d -> %d", len(pending), got)
		}
		s2.Close()
	})
}
