package store

// Reader is the read-only seam the serving path depends on (PR 7's
// noted follow-on): everything the query tier needs from persistence —
// cached result payloads, surface artifacts and the surface inventory —
// behind an interface a shared or remote content-addressed tier can
// implement later without touching the handlers. *Store satisfies it;
// internal/service carries a test double proving nothing on the serving
// path reaches around the seam.
type Reader interface {
	// GetResult returns a verified result payload by cache key, or
	// (nil, false) on a miss.
	GetResult(key string) ([]byte, bool)
	// GetSurface returns a verified surface artifact by spec key, or
	// (nil, false) on a miss.
	GetSurface(key string) ([]byte, bool)
	// SurfaceKeys lists the stored surface keys newest-first.
	SurfaceKeys() []string
}

var _ Reader = (*Store)(nil)
