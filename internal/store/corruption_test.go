package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// seg1 returns the path of the first WAL segment of dir.
func seg1(dir string) string {
	return filepath.Join(dir, walDirName, segmentName(1))
}

// writeThree populates a store with three submitted jobs and closes it.
func writeThree(t *testing.T, dir string) {
	t.Helper()
	s, err := Open(dir, Options{SyncMode: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		submitJob(t, s, seq)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReplayTruncatedTail chops bytes off the last record — the torn-write
// shape a crash mid-append leaves — and expects replay to keep the intact
// prefix and truncate the file back to it.
func TestReplayTruncatedTail(t *testing.T) {
	for _, chop := range []int64{1, 5, 11} {
		t.Run(fmt.Sprintf("chop%d", chop), func(t *testing.T) {
			dir := t.TempDir()
			writeThree(t, dir)
			st, err := os.Stat(seg1(dir))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(seg1(dir), st.Size()-chop); err != nil {
				t.Fatal(err)
			}

			r := openTest(t, dir, Options{})
			pending := r.PendingJobs()
			if len(pending) != 2 {
				t.Fatalf("pending = %d, want 2 (the intact prefix)", len(pending))
			}
			snap := r.Snapshot()
			if snap.ReplayTruncations != 1 || snap.ReplayRecords != 2 {
				t.Errorf("replay stats: %+v", snap)
			}
			// The file must have been truncated back so new appends are clean.
			submitJob(t, r, 9)
			r.Close()
			r2 := openTest(t, dir, Options{})
			if got := len(r2.PendingJobs()); got != 3 {
				t.Errorf("pending after repair+append+reopen = %d, want 3", got)
			}
			if s2 := r2.Snapshot(); s2.ReplayTruncations != 0 {
				t.Errorf("second replay saw corruption again: %+v", s2)
			}
		})
	}
}

// TestReplayFlippedCRCByte flips one payload byte of the middle record;
// replay must stop there, keeping only the records before it.
func TestReplayFlippedCRCByte(t *testing.T) {
	dir := t.TempDir()
	writeThree(t, dir)
	raw, err := os.ReadFile(seg1(dir))
	if err != nil {
		t.Fatal(err)
	}
	// Frame 1 spans [0, L1); flip a byte inside frame 2's payload.
	l1 := int(raw[0]) | int(raw[1])<<8 | int(raw[2])<<16 | int(raw[3])<<24
	idx := frameHeader + l1 + frameHeader + 4
	raw[idx] ^= 0xFF
	if err := os.WriteFile(seg1(dir), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	r := openTest(t, dir, Options{})
	pending := r.PendingJobs()
	if len(pending) != 1 || pending[0].ID != "j-000001" {
		t.Fatalf("pending = %+v, want only j-000001", pending)
	}
	if snap := r.Snapshot(); snap.ReplayRecords != 1 || snap.ReplayTruncations != 1 {
		t.Errorf("replay stats: %+v", snap)
	}
}

// TestReplayCorruptLengthField blasts the length field of the first record
// to an absurd value; replay must treat it as corruption, not an
// allocation request.
func TestReplayCorruptLengthField(t *testing.T) {
	dir := t.TempDir()
	writeThree(t, dir)
	raw, err := os.ReadFile(seg1(dir))
	if err != nil {
		t.Fatal(err)
	}
	raw[3] = 0xFF // length |= 0xFF000000: > maxRecordBytes
	if err := os.WriteFile(seg1(dir), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	r := openTest(t, dir, Options{})
	if got := len(r.PendingJobs()); got != 0 {
		t.Errorf("pending = %d, want 0 (corruption at record 1)", got)
	}
}

// TestReplayZeroLengthFile opens over an empty (freshly created, never
// written) segment: a legal state after a crash between create and append.
func TestReplayZeroLengthFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, walDirName), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg1(dir), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	r := openTest(t, dir, Options{})
	if got := len(r.PendingJobs()); got != 0 {
		t.Fatalf("pending = %d, want 0", got)
	}
	if snap := r.Snapshot(); snap.ReplayRecords != 0 || snap.ReplayTruncations != 0 {
		t.Errorf("replay stats for empty file: %+v", snap)
	}
	// And the store must be writable afterwards.
	submitJob(t, r, 1)
	r.Close()
	r2 := openTest(t, dir, Options{})
	if got := len(r2.PendingJobs()); got != 1 {
		t.Errorf("pending after reopen = %d, want 1", got)
	}
}

// TestReplayDropsSegmentsAfterCorruption corrupts segment 1 of a
// multi-segment log; segments after the corruption point must be dropped
// (their records depend on state the bad record failed to deliver).
func TestReplayDropsSegmentsAfterCorruption(t *testing.T) {
	dir := t.TempDir()
	// ~260-byte records: two fit per 600-byte segment, so truncating the
	// tail of segment 1 leaves exactly one intact record before the
	// corruption point.
	s, err := Open(dir, Options{SyncMode: SyncNone, SegmentMaxBytes: 600, CompactSegments: 100})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 12; seq++ {
		submitJob(t, s, seq)
	}
	if s.Snapshot().WALSegments < 3 {
		t.Fatalf("test needs ≥ 3 segments, got %d", s.Snapshot().WALSegments)
	}
	s.Close()

	// Corrupt the tail of segment 1.
	st, err := os.Stat(seg1(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg1(dir), st.Size()-3); err != nil {
		t.Fatal(err)
	}

	r := openTest(t, dir, Options{})
	snap := r.Snapshot()
	if snap.WALSegments != 1 {
		t.Errorf("segments after corruption recovery = %d, want 1", snap.WALSegments)
	}
	if snap.ReplayTruncations < 2 {
		t.Errorf("want the tail truncation plus ≥ 1 dropped segment counted, got %d", snap.ReplayTruncations)
	}
	// Only the intact prefix of segment 1 survives.
	pending := r.PendingJobs()
	if len(pending) == 0 || len(pending) >= 12 {
		t.Errorf("pending = %d, want the partial prefix (0 < n < 12)", len(pending))
	}
	for i, js := range pending {
		if want := fmt.Sprintf("j-%06d", i+1); js.ID != want {
			t.Errorf("pending[%d] = %s, want %s", i, js.ID, want)
		}
	}
}

// TestGetResultCorruptBlob flips a payload byte on disk; the read must
// fail closed (miss + quarantine), never return corrupt bytes.
func TestGetResultCorruptBlob(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	key := fmt.Sprintf("%064d", 7)
	if err := s.PutResult(key, []byte(`{"final_i":0.123}`)); err != nil {
		t.Fatal(err)
	}
	path := s.blobPath(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if payload, ok := s.GetResult(key); ok {
		t.Fatalf("corrupt blob served: %q", payload)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt blob not quarantined")
	}
	if st := s.Snapshot(); st.BadBlobs != 1 {
		t.Errorf("bad blob counter = %d, want 1", st.BadBlobs)
	}
}
