package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// WriteFileAtomic writes data to path via a temp file in the same
// directory followed by a rename, so readers never observe a partial file
// and a crash leaves either the old content or the new, never a mix. The
// temp file is fsynced before the rename; the directory is fsynced after,
// making the rename itself durable.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	return writeFileAtomic(path, data, perm, true)
}

// writeFileAtomic is WriteFileAtomic with durability optional: durable=false
// keeps the temp-file+rename atomicity (readers still never see a torn
// file) but skips both fsyncs, leaving persistence to the page cache. The
// blob store uses it under the batched and none sync policies, where the
// matching WAL record is only as durable as the next flush anyway.
func writeFileAtomic(path string, data []byte, perm os.FileMode, durable bool) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: create temp for %s: %w", path, err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename

	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: write %s: %w", tmpName, err)
	}
	if durable {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return fmt.Errorf("store: sync %s: %w", tmpName, err)
		}
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return fmt.Errorf("store: chmod %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: close %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("store: rename %s -> %s: %w", tmpName, path, err)
	}
	if !durable {
		return nil
	}
	return syncDir(dir)
}

// ReplaceFile atomically renames src over dst (POSIX rename semantics) and
// fsyncs the directory so the swap survives a crash.
func ReplaceFile(src, dst string) error {
	if err := os.Rename(src, dst); err != nil {
		return fmt.Errorf("store: rename %s -> %s: %w", src, dst, err)
	}
	return syncDir(filepath.Dir(dst))
}

// syncDir fsyncs a directory so renames and unlinks inside it are durable.
// Filesystems that refuse to sync directories (some network mounts) are
// tolerated: the rename already happened, only its durability is weaker.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: open dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !os.IsPermission(err) {
		// EINVAL from exotic filesystems is non-fatal by the same logic.
		return nil
	}
	return nil
}

// RotatingWriter is an append-only file writer with size-capped rotation:
// once the current file would exceed MaxBytes, it is atomically renamed to
// path+".1" (replacing the previous backup) and a fresh file opened. One
// backup generation bounds total disk use at ~2×MaxBytes while keeping the
// most recent history across the rotation point. rumord uses it for the
// -journal-file JSONL sink, which previously grew without bound.
//
// Writes are serialized internally, so it is safe behind any io.Writer
// consumer. A Write is never split across the rotation boundary: callers
// that emit one line per Write keep whole lines in each generation.
type RotatingWriter struct {
	mu       sync.Mutex
	path     string
	maxBytes int64
	f        *os.File
	size     int64
}

// NewRotatingWriter opens (creating or appending to) path with rotation at
// maxBytes. maxBytes <= 0 disables rotation, leaving plain append-only
// behavior.
func NewRotatingWriter(path string, maxBytes int64) (*RotatingWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: stat %s: %w", path, err)
	}
	return &RotatingWriter{path: path, maxBytes: maxBytes, f: f, size: st.Size()}, nil
}

// Write appends p, rotating first when the append would cross the cap.
func (w *RotatingWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.maxBytes > 0 && w.size > 0 && w.size+int64(len(p)) > w.maxBytes {
		if err := w.rotateLocked(); err != nil {
			return 0, err
		}
	}
	n, err := w.f.Write(p)
	w.size += int64(n)
	return n, err
}

// rotateLocked swaps the live file to the ".1" backup and reopens fresh.
func (w *RotatingWriter) rotateLocked() error {
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("store: rotate close %s: %w", w.path, err)
	}
	if err := ReplaceFile(w.path, w.path+".1"); err != nil {
		return err
	}
	f, err := os.OpenFile(w.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: rotate reopen %s: %w", w.path, err)
	}
	w.f = f
	w.size = 0
	return nil
}

// Close flushes nothing (writes are unbuffered) and closes the live file.
func (w *RotatingWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}
