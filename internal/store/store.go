// Package store is rumord's crash-safe persistence subsystem: an
// append-only write-ahead log of job lifecycle records (length-prefixed,
// CRC32-C-checksummed, fsync-batched, replayed tolerantly on open) plus a
// content-addressed on-disk result store keyed by the service's
// canonicalized cache keys (atomic temp-file+rename writes,
// checksum-verified reads, size/age retention). Opening a store replays
// the log, so a restarted daemon re-enqueues the jobs that never finished
// and re-serves the results that did — without recomputing either. The
// log is compacted automatically: once enough segments accumulate, the
// live state is snapshotted into a fresh segment and the history dropped.
// See DESIGN.md §10 for the formats and recovery semantics.
//
// The package depends only on the standard library; rumord owns the
// single writer (the store takes no cross-process lock).
package store

import (
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// SyncMode selects when WAL appends reach stable storage.
type SyncMode int

const (
	// SyncBatch fsyncs on a timer (Options.SyncInterval): appends are one
	// buffered-by-the-OS write, and at most one interval of acknowledged
	// records is lost to a power failure. The default.
	SyncBatch SyncMode = iota
	// SyncAlways fsyncs every append: nothing acknowledged is ever lost,
	// at the cost of one fsync per record.
	SyncAlways
	// SyncNone never fsyncs: durability is whatever the OS page cache
	// provides. Survives process crashes (the kernel has the data), not
	// power loss.
	SyncNone
)

// ParseSyncMode maps the rumord -wal-sync flag onto a mode: "always",
// "none"/"off", or a Go duration selecting batched fsync at that interval.
func ParseSyncMode(v string) (SyncMode, time.Duration, error) {
	switch v {
	case "always":
		return SyncAlways, 0, nil
	case "none", "off":
		return SyncNone, 0, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, 0, fmt.Errorf("store: -wal-sync %q: want \"always\", \"none\" or a duration like 100ms", v)
	}
	if d <= 0 {
		return 0, 0, fmt.Errorf("store: -wal-sync interval %s must be positive", d)
	}
	return SyncBatch, d, nil
}

// Hooks are optional latency observers wired to the metrics registry by
// the service; nil fields are skipped on the hot path.
type Hooks struct {
	// OnAppend receives the wall time of each WAL append (excluding
	// batched fsyncs, including inline ones under SyncAlways).
	OnAppend func(time.Duration)
	// OnFsync receives the wall time of each segment fsync.
	OnFsync func(time.Duration)
}

// Options parameterizes Open. The zero value selects the documented
// defaults.
type Options struct {
	// SyncMode and SyncInterval set the WAL durability policy (default
	// SyncBatch every 100ms).
	SyncMode     SyncMode
	SyncInterval time.Duration
	// SegmentMaxBytes bounds one WAL segment before rotation (default 4 MiB).
	SegmentMaxBytes int64
	// CompactSegments is the segment count at which rotation compacts
	// instead: the live state is snapshotted into a fresh segment and all
	// older segments dropped (default 4, minimum 2).
	CompactSegments int
	// ResultMaxBytes bounds the total size of the result store; the oldest
	// blobs are removed first (default 1 GiB; negative disables the bound).
	ResultMaxBytes int64
	// ResultMaxAge, when positive, removes result blobs older than this
	// regardless of size (default 0: no age bound).
	ResultMaxAge time.Duration
	// Logger receives recovery, compaction and GC records (nil: discard).
	Logger *slog.Logger
	// Hooks are the optional latency observers.
	Hooks Hooks

	hooks Hooks // resolved copy used internally
}

func (o Options) withDefaults() Options {
	if o.SyncInterval <= 0 {
		o.SyncInterval = 100 * time.Millisecond
	}
	if o.SegmentMaxBytes <= 0 {
		o.SegmentMaxBytes = 4 << 20
	}
	if o.CompactSegments == 0 {
		o.CompactSegments = 4
	}
	if o.CompactSegments < 2 {
		o.CompactSegments = 2
	}
	if o.ResultMaxBytes == 0 {
		o.ResultMaxBytes = 1 << 30
	} else if o.ResultMaxBytes < 0 {
		o.ResultMaxBytes = 0 // explicit disable
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.DiscardHandler)
	}
	o.hooks = o.Hooks
	return o
}

// Stats is a point-in-time snapshot of the store's counters and sizes.
type Stats struct {
	Dir         string `json:"dir"`
	WALSegments int    `json:"wal_segments"`
	WALBytes    int64  `json:"wal_bytes"`
	// Appends and Fsyncs count WAL operations since Open.
	Appends int64 `json:"appends"`
	Fsyncs  int64 `json:"fsyncs"`
	// ReplayRecords is how many intact records the opening replay applied;
	// ReplayTruncations how many corruption points (bad tail records plus
	// dropped later segments) it tolerated.
	ReplayRecords     int64 `json:"replay_records"`
	ReplayTruncations int64 `json:"replay_truncations"`
	Compactions       int64 `json:"compactions"`
	// PendingJobs is the number of logged-but-unfinished jobs.
	PendingJobs int `json:"pending_jobs"`
	// Scenarios is the number of persisted uploaded scenario tables.
	Scenarios int `json:"scenarios"`
	// Results and ResultBytes size the content-addressed result store;
	// ResultEvictions counts retention-GC removals and BadBlobs quarantined
	// checksum failures.
	Results         int   `json:"results"`
	ResultBytes     int64 `json:"result_bytes"`
	ResultEvictions int64 `json:"result_evictions"`
	BadBlobs        int64 `json:"bad_blobs"`
	// Surfaces and SurfaceBytes size the response-surface namespace
	// (exempt from result GC; see surface.go).
	Surfaces     int   `json:"surfaces"`
	SurfaceBytes int64 `json:"surface_bytes"`
}

// Store is an open persistence directory. All methods are safe for
// concurrent use; there must be at most one Store per directory per
// machine (rumord owns it for the life of the process).
type Store struct {
	dir         string
	walDir      string
	resultsDir  string
	surfacesDir string
	opts        Options

	mu            sync.Mutex // WAL state: segment file, pending jobs, stats
	seg           *os.File
	segIdx        uint64
	segSize       int64
	segCount      int
	dirty         bool
	closed        bool
	pending       map[string]*JobState
	pendingOrder  []string
	scenarios     map[string]ScenarioState
	scenarioOrder []string
	maxSeq        uint64
	stats         Stats

	bmu             sync.Mutex // blob + surface index
	blobs           map[string]blobInfo
	blobBytes       int64
	surfaces        map[string]blobInfo
	surfaceBytes    int64
	resultEvictions int64
	badBlobs        int64

	flushStop chan struct{}
	flushDone chan struct{}
}

// Open creates (if needed) the store layout under dir, replays the WAL to
// rebuild the live job state, indexes the result blobs, applies retention
// GC, and arms the batched-fsync flusher. The returned store is ready for
// appends; read PendingJobs/ResultKeys for recovery.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	s := &Store{
		dir:         dir,
		walDir:      filepath.Join(dir, walDirName),
		resultsDir:  filepath.Join(dir, resultsDirName),
		surfacesDir: filepath.Join(dir, surfacesDirName),
		opts:        opts,
		pending:     make(map[string]*JobState),
		scenarios:   make(map[string]ScenarioState),
		blobs:       make(map[string]blobInfo),
		surfaces:    make(map[string]blobInfo),
		flushStop:   make(chan struct{}),
		flushDone:   make(chan struct{}),
	}
	for _, d := range []string{dir, s.walDir, s.resultsDir, s.surfacesDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: mkdir %s: %w", d, err)
		}
	}
	if err := s.replay(); err != nil {
		return nil, err
	}
	if err := s.scanBlobs(); err != nil {
		s.seg.Close()
		return nil, err
	}
	if err := s.scanSurfaces(); err != nil {
		s.seg.Close()
		return nil, err
	}
	if _, err := s.GC(); err != nil {
		s.seg.Close()
		return nil, err
	}
	if opts.SyncMode == SyncBatch {
		go s.flusher()
	} else {
		close(s.flushDone)
	}
	s.stats.Dir = dir
	opts.Logger.Info("store opened", "dir", dir,
		"replayed_records", s.stats.ReplayRecords,
		"pending_jobs", len(s.pending),
		"results", len(s.blobs), "result_bytes", s.blobBytes)
	return s, nil
}

// flusher is the SyncBatch background loop: every SyncInterval it fsyncs
// the active segment if anything was appended since the last sync.
func (s *Store) flusher() {
	defer close(s.flushDone)
	t := time.NewTicker(s.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-s.flushStop:
			return
		case <-t.C:
			s.mu.Lock()
			if s.dirty && !s.closed {
				if err := s.fsyncLocked(); err != nil {
					s.opts.Logger.Warn("wal flush failed", "error", err.Error())
				}
			}
			s.mu.Unlock()
		}
	}
}

// Close stops the flusher, fsyncs any batched appends and closes the
// active segment. Idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.flushStop)
	<-s.flushDone

	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if s.dirty {
		start := time.Now()
		if serr := s.seg.Sync(); serr != nil {
			err = fmt.Errorf("store: close fsync: %w", serr)
		} else {
			s.stats.Fsyncs++
			if s.opts.hooks.OnFsync != nil {
				s.opts.hooks.OnFsync(time.Since(start))
			}
		}
		s.dirty = false
	}
	if cerr := s.seg.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("store: close segment: %w", cerr)
	}
	return err
}

// AppendSubmitted logs a job's submission (the full request rides along so
// recovery can re-enqueue it).
func (s *Store) AppendSubmitted(js JobState) error {
	return s.appendRecord(walRecord{
		Op: opSubmitted, JobID: js.ID, Seq: js.Seq, Request: js.Request,
		Key: js.Key, TraceID: js.TraceID, SubmittedAt: js.SubmittedAt,
		Class: js.Class,
	})
}

// AppendStarted logs that a job began executing.
func (s *Store) AppendStarted(id string) error {
	return s.appendRecord(walRecord{Op: opStarted, JobID: id})
}

// AppendFinished logs a job's terminal outcome (succeeded, failed or
// cancelled); the job will not be re-enqueued by recovery.
func (s *Store) AppendFinished(id, status string) error {
	return s.appendRecord(walRecord{Op: opFinished, JobID: id, Status: status})
}

// AppendAttempt logs a job's cumulative lease-grant count. The clustered
// coordinator writes one per lease so the poison-job attempt budget
// survives a restart; recovery surfaces the count via JobState.Attempts.
func (s *Store) AppendAttempt(id string, attempt int) error {
	return s.appendRecord(walRecord{Op: opAttempt, JobID: id, Attempt: attempt})
}

// AppendScenario logs an uploaded scenario table so recovery can
// re-register it before re-enqueueing the jobs that reference it.
func (s *Store) AppendScenario(sc ScenarioState) error {
	return s.appendRecord(walRecord{Op: opScenario, Scenario: &sc})
}

// Scenarios returns the persisted scenario tables in registration order —
// the re-register set for recovery.
func (s *Store) Scenarios() []ScenarioState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ScenarioState, 0, len(s.scenarioOrder))
	for _, name := range s.scenarioOrder {
		out = append(out, s.scenarios[name])
	}
	return out
}

// Compact forces a snapshot-and-drop compaction regardless of segment
// count (rotation triggers it automatically at CompactSegments).
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	return s.compactLocked()
}

// PendingJobs returns the jobs that were submitted but never reached a
// terminal record, in submission order — the re-enqueue set for recovery.
func (s *Store) PendingJobs() []JobState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobState, 0, len(s.pendingOrder))
	for _, id := range s.pendingOrder {
		out = append(out, *s.pending[id])
	}
	return out
}

// MaxSeq returns the highest job sequence number the log has seen; the
// service resumes id allocation above it.
func (s *Store) MaxSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxSeq
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Snapshot returns the current Stats.
func (s *Store) Snapshot() Stats {
	s.mu.Lock()
	st := s.stats
	st.Dir = s.dir
	st.WALSegments = s.segCount
	st.WALBytes = s.walBytesLocked()
	st.PendingJobs = len(s.pending)
	st.Scenarios = len(s.scenarios)
	s.mu.Unlock()
	s.bmu.Lock()
	st.Results = len(s.blobs)
	st.ResultBytes = s.blobBytes
	st.ResultEvictions = s.resultEvictions
	st.BadBlobs = s.badBlobs
	st.Surfaces = len(s.surfaces)
	st.SurfaceBytes = s.surfaceBytes
	s.bmu.Unlock()
	return st
}
