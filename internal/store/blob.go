package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"time"
)

// resultsDirName is the subdirectory of the store holding result blobs.
const resultsDirName = "results"

// blobMagic heads every result file; a file without it is not ours and is
// never trusted (or deleted) by the store.
var blobMagic = [4]byte{'R', 'B', 'L', '1'}

// blobHeader is magic(4) + crc32c(4) + length(4).
const blobHeader = 12

// blobKeyPattern matches the hex cache keys the service produces; only
// matching files are indexed, so stray files in the results tree are
// ignored rather than misread.
var blobKeyPattern = regexp.MustCompile(`^[0-9a-f]{16,128}$`)

// blobInfo is the in-memory index entry of one on-disk result.
type blobInfo struct {
	size  int64 // file size including header
	mtime time.Time
}

// blobPath shards blobs by the first two key characters, keeping directory
// fan-out bounded on large stores.
func (s *Store) blobPath(key string) string {
	return filepath.Join(s.resultsDir, key[:2], key)
}

// encodeBlob frames a result payload with the shared CRC32-C checksum.
func encodeBlob(payload []byte) []byte {
	buf := make([]byte, blobHeader+len(payload))
	copy(buf[0:4], blobMagic[:])
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	binary.LittleEndian.PutUint32(buf[8:12], uint32(len(payload)))
	copy(buf[blobHeader:], payload)
	return buf
}

// decodeBlob verifies the frame and returns the payload.
func decodeBlob(buf []byte) ([]byte, error) {
	if len(buf) < blobHeader {
		return nil, fmt.Errorf("store: blob truncated: %d bytes", len(buf))
	}
	if [4]byte(buf[0:4]) != blobMagic {
		return nil, fmt.Errorf("store: blob magic mismatch")
	}
	sum := binary.LittleEndian.Uint32(buf[4:8])
	length := binary.LittleEndian.Uint32(buf[8:12])
	if int(length) != len(buf)-blobHeader {
		return nil, fmt.Errorf("store: blob length %d, have %d payload bytes", length, len(buf)-blobHeader)
	}
	payload := buf[blobHeader:]
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, fmt.Errorf("store: blob checksum mismatch")
	}
	return payload, nil
}

// PutResult stores a result payload under its cache key: the framed blob
// is written to a temp file and renamed into place, so readers (and crash
// recovery) only ever see whole, checksummed files. Durability follows the
// store's sync policy — SyncAlways fsyncs file and directory per put, the
// batched and none modes leave it to the page cache (a blob lost to a
// crash just re-runs its job, exactly like the un-flushed WAL records of
// the same window). Re-putting an existing key refreshes its mtime for
// retention purposes.
func (s *Store) PutResult(key string, payload []byte) error {
	if !blobKeyPattern.MatchString(key) {
		return fmt.Errorf("store: invalid result key %q", key)
	}
	dir := filepath.Join(s.resultsDir, key[:2])
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: result shard dir: %w", err)
	}
	framed := encodeBlob(payload)
	if err := writeFileAtomic(s.blobPath(key), framed, 0o644, s.opts.SyncMode == SyncAlways); err != nil {
		return err
	}
	s.bmu.Lock()
	if old, ok := s.blobs[key]; ok {
		s.blobBytes -= old.size
	}
	s.blobs[key] = blobInfo{size: int64(len(framed)), mtime: time.Now()}
	s.blobBytes += int64(len(framed))
	s.bmu.Unlock()
	_, err := s.GC()
	return err
}

// GetResult reads and checksum-verifies one result. A missing key returns
// (nil, false); a corrupt file is quarantined (deleted and counted) and
// reported as a miss, so the caller transparently recomputes.
func (s *Store) GetResult(key string) ([]byte, bool) {
	if !blobKeyPattern.MatchString(key) {
		return nil, false
	}
	buf, err := os.ReadFile(s.blobPath(key))
	if err != nil {
		return nil, false
	}
	payload, err := decodeBlob(buf)
	if err != nil {
		s.opts.Logger.Warn("corrupt result blob dropped", "key", key, "detail", err.Error())
		s.dropBlob(key)
		s.bmu.Lock()
		s.badBlobs++
		s.bmu.Unlock()
		return nil, false
	}
	return payload, true
}

// dropBlob removes a blob file and its index entry.
func (s *Store) dropBlob(key string) {
	os.Remove(s.blobPath(key))
	s.bmu.Lock()
	if info, ok := s.blobs[key]; ok {
		s.blobBytes -= info.size
		delete(s.blobs, key)
	}
	s.bmu.Unlock()
}

// ResultKeys returns the stored keys newest-first (by mtime), the order a
// bounded cache wants to warm in.
func (s *Store) ResultKeys() []string {
	s.bmu.Lock()
	defer s.bmu.Unlock()
	keys := make([]string, 0, len(s.blobs))
	for k := range s.blobs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		ti, tj := s.blobs[keys[i]].mtime, s.blobs[keys[j]].mtime
		if ti.Equal(tj) {
			return keys[i] < keys[j] // deterministic tie-break
		}
		return ti.After(tj)
	})
	return keys
}

// scanBlobs builds the in-memory blob index from the results tree at Open.
func (s *Store) scanBlobs() error {
	shards, err := os.ReadDir(s.resultsDir)
	if err != nil {
		return fmt.Errorf("store: read results dir: %w", err)
	}
	for _, shard := range shards {
		if !shard.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.resultsDir, shard.Name()))
		if err != nil {
			return fmt.Errorf("store: read result shard: %w", err)
		}
		for _, f := range files {
			if f.IsDir() || !blobKeyPattern.MatchString(f.Name()) {
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			s.blobs[f.Name()] = blobInfo{size: info.Size(), mtime: info.ModTime()}
			s.blobBytes += info.Size()
		}
	}
	return nil
}

// GC enforces the retention policy on the result store: blobs older than
// ResultMaxAge go first, then the oldest blobs until total size fits under
// ResultMaxBytes. Returns how many blobs were removed. Zero bounds disable
// the corresponding rule.
func (s *Store) GC() (int, error) {
	s.bmu.Lock()
	type aged struct {
		key  string
		info blobInfo
	}
	var victims []string
	if s.opts.ResultMaxAge > 0 {
		cutoff := time.Now().Add(-s.opts.ResultMaxAge)
		for k, info := range s.blobs {
			if info.mtime.Before(cutoff) {
				victims = append(victims, k)
			}
		}
	}
	if s.opts.ResultMaxBytes > 0 && s.blobBytes > s.opts.ResultMaxBytes {
		all := make([]aged, 0, len(s.blobs))
		for k, info := range s.blobs {
			all = append(all, aged{k, info})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].info.mtime.Equal(all[j].info.mtime) {
				return all[i].key < all[j].key
			}
			return all[i].info.mtime.Before(all[j].info.mtime)
		})
		over := s.blobBytes - s.opts.ResultMaxBytes
		seen := make(map[string]bool, len(victims))
		for _, v := range victims {
			seen[v] = true
			over -= s.blobs[v].size
		}
		for _, a := range all {
			if over <= 0 {
				break
			}
			if !seen[a.key] {
				victims = append(victims, a.key)
				over -= a.info.size
			}
		}
	}
	s.bmu.Unlock()

	for _, k := range victims {
		s.dropBlob(k)
	}
	if len(victims) > 0 {
		s.bmu.Lock()
		s.resultEvictions += int64(len(victims))
		s.bmu.Unlock()
		s.opts.Logger.Info("result store gc", "removed", len(victims))
	}
	return len(victims), nil
}
