package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func key(i int) string { return fmt.Sprintf("%064d", i) }

func TestPutGetRoundtrip(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	payload := []byte(`{"r0":2.1661,"final_i":0.0001}`)
	if err := s.PutResult(key(1), payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.GetResult(key(1))
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("get = (%q, %v), want the original payload", got, ok)
	}
	if _, ok := s.GetResult(key(2)); ok {
		t.Error("unknown key must miss")
	}
	// Re-put refreshes in place.
	if err := s.PutResult(key(1), payload); err != nil {
		t.Fatal(err)
	}
	if st := s.Snapshot(); st.Results != 1 {
		t.Errorf("results = %d, want 1 after re-put", st.Results)
	}
}

func TestPutRejectsBadKey(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	for _, bad := range []string{"", "short", "../../etc/passwd", "ZZ" + key(1)[2:]} {
		if err := s.PutResult(bad, []byte("x")); err == nil {
			t.Errorf("PutResult(%q) accepted an invalid key", bad)
		}
	}
}

// TestResultsSurviveReopen is the warm-cache contract: blobs written
// before a crash index newest-first on reopen and read back verified.
func TestResultsSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	for i := 1; i <= 3; i++ {
		if err := s.PutResult(key(i), []byte(fmt.Sprintf(`{"n":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	// Make mtime ordering unambiguous for the newest-first assertion.
	base := time.Now().Add(-time.Hour)
	for i := 1; i <= 3; i++ {
		mt := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(s.blobPath(key(i)), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	r := openTest(t, dir, Options{})
	keys := r.ResultKeys()
	if len(keys) != 3 {
		t.Fatalf("indexed %d blobs, want 3", len(keys))
	}
	if keys[0] != key(3) || keys[2] != key(1) {
		t.Errorf("order not newest-first: %v", keys)
	}
	for i := 1; i <= 3; i++ {
		got, ok := r.GetResult(key(i))
		if !ok || string(got) != fmt.Sprintf(`{"n":%d}`, i) {
			t.Errorf("blob %d after reopen: (%q, %v)", i, got, ok)
		}
	}
}

// TestGCSizeBound fills past ResultMaxBytes and expects the oldest blobs
// to be removed until the store fits.
func TestGCSizeBound(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("x"), 100) // 112 bytes framed
	s := openTest(t, dir, Options{ResultMaxBytes: 500})
	base := time.Now().Add(-time.Hour)
	for i := 1; i <= 4; i++ {
		if err := s.PutResult(key(i), payload); err != nil {
			t.Fatal(err)
		}
		mt := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(s.blobPath(key(i)), mt, mt); err != nil {
			t.Fatal(err)
		}
		s.bmu.Lock()
		s.blobs[key(i)] = blobInfo{size: s.blobs[key(i)].size, mtime: mt}
		s.bmu.Unlock()
	}
	// 5th put crosses 500 bytes: the oldest (key 1) must go.
	if err := s.PutResult(key(5), payload); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetResult(key(1)); ok {
		t.Error("oldest blob survived the size bound")
	}
	if _, ok := s.GetResult(key(5)); !ok {
		t.Error("newest blob was evicted")
	}
	st := s.Snapshot()
	if st.ResultBytes > 500 {
		t.Errorf("result bytes = %d, want <= 500", st.ResultBytes)
	}
	if st.ResultEvictions == 0 {
		t.Error("eviction counter never moved")
	}
}

// TestGCAgeBound backdates a blob beyond ResultMaxAge and expects GC to
// remove it while keeping the fresh one.
func TestGCAgeBound(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{ResultMaxAge: time.Hour})
	if err := s.PutResult(key(1), []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutResult(key(2), []byte("new")); err != nil {
		t.Fatal(err)
	}
	stale := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(s.blobPath(key(1)), stale, stale); err != nil {
		t.Fatal(err)
	}
	s.bmu.Lock()
	s.blobs[key(1)] = blobInfo{size: s.blobs[key(1)].size, mtime: stale}
	s.bmu.Unlock()

	removed, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("removed = %d, want 1", removed)
	}
	if _, ok := s.GetResult(key(1)); ok {
		t.Error("stale blob survived the age bound")
	}
	if _, ok := s.GetResult(key(2)); !ok {
		t.Error("fresh blob was removed")
	}
}

// TestGCAtOpen verifies retention applies to pre-existing blobs during
// Open, not only on the Put path.
func TestGCAtOpen(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	payload := bytes.Repeat([]byte("y"), 200)
	for i := 1; i <= 5; i++ {
		if err := s.PutResult(key(i), payload); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	r := openTest(t, dir, Options{ResultMaxBytes: 450})
	if st := r.Snapshot(); st.ResultBytes > 450 || st.Results >= 5 {
		t.Errorf("open-time GC did not enforce the bound: %+v", st)
	}
}

// TestScanIgnoresStrayFiles drops a non-blob file into the results tree;
// the index must skip it and never delete it.
func TestScanIgnoresStrayFiles(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	if err := s.PutResult(key(1), []byte("ok")); err != nil {
		t.Fatal(err)
	}
	stray := filepath.Join(dir, resultsDirName, "00", "README.txt")
	if err := os.WriteFile(stray, []byte("not a blob"), 0o644); err != nil {
		t.Fatal(err)
	}
	s.Close()

	r := openTest(t, dir, Options{ResultMaxBytes: 1}) // GC everything it indexes
	if _, err := os.Stat(stray); err != nil {
		t.Errorf("stray file touched by the store: %v", err)
	}
	_ = r
}
