package store

import (
	"bytes"
	"fmt"
	"os"
	"testing"
	"time"
)

func TestSurfacePutGetRoundtrip(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	payload := []byte("SRF1-inner-frame-stands-in-here")
	if err := s.PutSurface(key(1), payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.GetSurface(key(1))
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("get = (%q, %v), want the original payload", got, ok)
	}
	if _, ok := s.GetSurface(key(2)); ok {
		t.Error("unknown surface key must miss")
	}
	// Re-put replaces in place.
	if err := s.PutSurface(key(1), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, _ = s.GetSurface(key(1))
	if string(got) != "v2" {
		t.Errorf("re-put did not replace: %q", got)
	}
	st := s.Snapshot()
	if st.Surfaces != 1 || st.SurfaceBytes == 0 {
		t.Errorf("snapshot = %d surfaces / %d bytes, want 1 / >0", st.Surfaces, st.SurfaceBytes)
	}
	for _, bad := range []string{"", "short", "../../etc/passwd"} {
		if err := s.PutSurface(bad, payload); err == nil {
			t.Errorf("PutSurface(%q) accepted an invalid key", bad)
		}
	}
}

// TestSurfacesSurviveReopen: the serving tier reloads its inventory from
// the scan at Open, newest-first.
func TestSurfacesSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	base := time.Now().Add(-time.Hour)
	for i := 1; i <= 3; i++ {
		if err := s.PutSurface(key(i), []byte(fmt.Sprintf("surface-%d", i))); err != nil {
			t.Fatal(err)
		}
		mt := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(s.surfacePath(key(i)), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	r := openTest(t, dir, Options{})
	keys := r.SurfaceKeys()
	if len(keys) != 3 {
		t.Fatalf("indexed %d surfaces, want 3", len(keys))
	}
	if keys[0] != key(3) || keys[2] != key(1) {
		t.Errorf("order not newest-first: %v", keys)
	}
	for i := 1; i <= 3; i++ {
		got, ok := r.GetSurface(key(i))
		if !ok || string(got) != fmt.Sprintf("surface-%d", i) {
			t.Errorf("surface %d after reopen: (%q, %v)", i, got, ok)
		}
	}
}

// TestSurfaceCorruptionQuarantined: a bit-flipped artifact must read as
// a miss, be deleted, and bump the quarantine counter — the caller then
// rebuilds from the spec.
func TestSurfaceCorruptionQuarantined(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	if err := s.PutSurface(key(1), []byte("surface-payload")); err != nil {
		t.Fatal(err)
	}
	path := s.surfacePath(key(1))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetSurface(key(1)); ok {
		t.Fatal("corrupt surface served")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt surface not quarantined from disk")
	}
	st := s.Snapshot()
	if st.BadBlobs == 0 {
		t.Error("quarantine counter never moved")
	}
	if st.Surfaces != 0 {
		t.Errorf("index still holds %d surfaces", st.Surfaces)
	}
}

// TestSurfacesExemptFromGC: result retention must never evict a surface
// — hours of sweep work are not a cache entry.
func TestSurfacesExemptFromGC(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{ResultMaxBytes: 200, ResultMaxAge: time.Hour})
	big := bytes.Repeat([]byte("s"), 400)
	if err := s.PutSurface(key(1), big); err != nil {
		t.Fatal(err)
	}
	stale := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(s.surfacePath(key(1)), stale, stale); err != nil {
		t.Fatal(err)
	}
	// Drive GC through the result path.
	if err := s.PutResult(key(2), bytes.Repeat([]byte("r"), 300)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GC(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetSurface(key(1)); !ok {
		t.Error("GC evicted a surface")
	}
}

// TestWALRecordsClass: the admission class must survive the WAL round
// trip and compaction snapshots.
func TestWALRecordsClass(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	js := JobState{
		ID: "j-000001", Seq: 1, Request: []byte(`{"type":"ode","class":"batch"}`),
		Key: key(1), SubmittedAt: time.Now().UTC(), Class: "batch",
	}
	if err := s.AppendSubmitted(js); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	r := openTest(t, dir, Options{})
	pend := r.PendingJobs()
	if len(pend) != 1 {
		t.Fatalf("recovered %d pending jobs, want 1", len(pend))
	}
	if pend[0].Class != "batch" {
		t.Errorf("class lost across replay+compaction: %q", pend[0].Class)
	}
}
