package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// walDirName is the subdirectory of the store holding the log segments.
const walDirName = "wal"

// segmentName formats the file name of segment idx; the fixed-width index
// makes lexical order equal replay order.
func segmentName(idx uint64) string { return fmt.Sprintf("wal-%08d.log", idx) }

// listSegments returns the segment indices present in walDir, ascending.
func listSegments(walDir string) ([]uint64, error) {
	entries, err := os.ReadDir(walDir)
	if err != nil {
		return nil, fmt.Errorf("store: read wal dir: %w", err)
	}
	var idxs []uint64
	for _, e := range entries {
		var idx uint64
		if _, err := fmt.Sscanf(e.Name(), "wal-%08d.log", &idx); err == nil {
			idxs = append(idxs, idx)
		}
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	return idxs, nil
}

// replay rebuilds the live state from the segments on disk. It stops at
// the first bad frame — a torn tail write, an implausible length or a
// checksum mismatch — truncates that segment back to its intact prefix,
// and discards any later segments (they depend on state the bad record
// failed to deliver). Everything before the bad frame is the durable
// prefix and is applied. Called once from Open, before the appender is
// armed; no locking needed.
func (s *Store) replay() error {
	idxs, err := listSegments(s.walDir)
	if err != nil {
		return err
	}
	for n, idx := range idxs {
		path := filepath.Join(s.walDir, segmentName(idx))
		good, bad, err := s.replaySegment(path)
		if err != nil {
			return err
		}
		if bad {
			s.stats.ReplayTruncations++
			s.opts.Logger.Warn("wal segment truncated at first bad record",
				"segment", path, "good_bytes", good)
			if err := os.Truncate(path, good); err != nil {
				return fmt.Errorf("store: truncate %s: %w", path, err)
			}
			for _, later := range idxs[n+1:] {
				dropped := filepath.Join(s.walDir, segmentName(later))
				s.opts.Logger.Warn("dropping wal segment after corruption point", "segment", dropped)
				if err := os.Remove(dropped); err != nil {
					return fmt.Errorf("store: drop %s: %w", dropped, err)
				}
				s.stats.ReplayTruncations++
			}
			idxs = idxs[:n+1]
			break
		}
	}
	if len(idxs) == 0 {
		s.segIdx = 1
		return s.openSegment(true)
	}
	s.segIdx = idxs[len(idxs)-1]
	s.segCount = len(idxs)
	return s.openSegment(false)
}

// replaySegment applies the intact prefix of one segment and reports the
// byte offset of the first bad frame (bad == true) or a clean end.
func (s *Store) replaySegment(path string) (good int64, bad bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false, fmt.Errorf("store: open segment: %w", err)
	}
	defer f.Close()
	for {
		rec, n, err := readRecord(f)
		if err == io.EOF {
			return good, false, nil
		}
		if errors.Is(err, errBadFrame) {
			s.opts.Logger.Warn("bad wal record", "segment", path, "offset", good, "detail", err.Error())
			return good, true, nil
		}
		if err != nil {
			return good, false, fmt.Errorf("store: replay %s: %w", path, err)
		}
		s.apply(rec)
		good += n
		s.stats.ReplayRecords++
	}
}

// apply folds one record into the live pending-job state.
func (s *Store) apply(rec walRecord) {
	switch rec.Op {
	case opSubmitted:
		if rec.JobID == "" {
			return // defensively skip: the service never logs anonymous jobs
		}
		if rec.Seq > s.maxSeq {
			s.maxSeq = rec.Seq
		}
		s.addPending(JobState{
			ID: rec.JobID, Seq: rec.Seq, Request: rec.Request, Key: rec.Key,
			TraceID: rec.TraceID, SubmittedAt: rec.SubmittedAt, Class: rec.Class,
		})
	case opStarted:
		if js, ok := s.pending[rec.JobID]; ok {
			js.Started = true
		}
	case opFinished:
		s.dropPending(rec.JobID)
	case opAttempt:
		if js, ok := s.pending[rec.JobID]; ok {
			js.Attempts = rec.Attempt
		}
	case opScenario:
		if rec.Scenario != nil {
			s.addScenario(*rec.Scenario)
		}
	case opSnapshot:
		s.pending = make(map[string]*JobState)
		s.pendingOrder = s.pendingOrder[:0]
		for _, js := range rec.Jobs {
			js := js
			s.addPending(js)
		}
		s.scenarios = make(map[string]ScenarioState)
		s.scenarioOrder = s.scenarioOrder[:0]
		for _, sc := range rec.Scenarios {
			s.addScenario(sc)
		}
		if rec.MaxSeq > s.maxSeq {
			s.maxSeq = rec.MaxSeq
		}
	}
}

// addScenario records one persisted scenario table, first registration
// wins — mirroring the service registry's append-only semantics.
func (s *Store) addScenario(sc ScenarioState) {
	if _, dup := s.scenarios[sc.Name]; dup {
		return
	}
	s.scenarios[sc.Name] = sc
	s.scenarioOrder = append(s.scenarioOrder, sc.Name)
}

func (s *Store) addPending(js JobState) {
	if _, dup := s.pending[js.ID]; dup {
		return
	}
	cp := js
	s.pending[js.ID] = &cp
	s.pendingOrder = append(s.pendingOrder, js.ID)
}

func (s *Store) dropPending(id string) {
	if _, ok := s.pending[id]; !ok {
		return
	}
	delete(s.pending, id)
	for i, jid := range s.pendingOrder {
		if jid == id {
			s.pendingOrder = append(s.pendingOrder[:i], s.pendingOrder[i+1:]...)
			break
		}
	}
}

// openSegment opens the active segment (s.segIdx) for appending, creating
// it when fresh is true.
func (s *Store) openSegment(fresh bool) error {
	path := filepath.Join(s.walDir, segmentName(s.segIdx))
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return fmt.Errorf("store: open segment %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("store: stat segment %s: %w", path, err)
	}
	s.seg = f
	s.segSize = st.Size()
	if fresh {
		s.segCount = 1
	}
	return nil
}

// appendRecord frames and writes one record to the active segment under
// s.mu, rotating (or compacting, once enough segments accumulated) first
// when the append would cross the segment bound, and applying the sync
// policy after the write.
func (s *Store) appendRecord(rec walRecord) error {
	frame, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	start := time.Now()
	if s.segSize > 0 && s.segSize+int64(len(frame)) > s.opts.SegmentMaxBytes {
		if s.segCount >= s.opts.CompactSegments {
			err := s.compactLocked()
			if errors.Is(err, errRecordTooLarge) {
				// The pending set outgrew one snapshot record; keep the
				// history as plain segments until it shrinks.
				err = s.rotateLocked()
			}
			if err != nil {
				return err
			}
		} else if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	n, err := s.seg.Write(frame)
	s.segSize += int64(n)
	if err != nil {
		return fmt.Errorf("store: wal append: %w", err)
	}
	s.apply(rec)
	s.stats.Appends++
	if s.opts.hooks.OnAppend != nil {
		s.opts.hooks.OnAppend(time.Since(start))
	}
	switch s.opts.SyncMode {
	case SyncAlways:
		return s.fsyncLocked()
	case SyncBatch:
		s.dirty = true
	}
	return nil
}

// fsyncLocked syncs the active segment, timing the call. Callers hold s.mu.
func (s *Store) fsyncLocked() error {
	start := time.Now()
	if err := s.seg.Sync(); err != nil {
		return fmt.Errorf("store: wal fsync: %w", err)
	}
	s.dirty = false
	s.stats.Fsyncs++
	if s.opts.hooks.OnFsync != nil {
		s.opts.hooks.OnFsync(time.Since(start))
	}
	return nil
}

// rotateLocked seals the active segment and opens the next one. Callers
// hold s.mu.
func (s *Store) rotateLocked() error {
	if err := s.fsyncLocked(); err != nil {
		return err
	}
	if err := s.seg.Close(); err != nil {
		return fmt.Errorf("store: close segment: %w", err)
	}
	s.segIdx++
	s.segCount++
	path := filepath.Join(s.walDir, segmentName(s.segIdx))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: open segment %s: %w", path, err)
	}
	s.seg = f
	s.segSize = 0
	return syncDir(s.walDir)
}

// compactLocked snapshots the live state into a brand-new segment and
// deletes every older one: the snapshot record supersedes the whole
// history, so the log's size tracks the number of *live* jobs, not the
// number ever run. Callers hold s.mu.
func (s *Store) compactLocked() error {
	snap := walRecord{Op: opSnapshot, MaxSeq: s.maxSeq}
	for _, id := range s.pendingOrder {
		snap.Jobs = append(snap.Jobs, *s.pending[id])
	}
	for _, name := range s.scenarioOrder {
		snap.Scenarios = append(snap.Scenarios, s.scenarios[name])
	}
	frame, err := encodeRecord(snap)
	if err != nil {
		return err
	}

	newIdx := s.segIdx + 1
	path := filepath.Join(s.walDir, segmentName(newIdx))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact open %s: %w", path, err)
	}
	n, err := f.Write(frame)
	if err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("store: compact write %s: %w", path, err)
	}

	// The snapshot is durable; retire the history. Close the old active
	// segment first so its handle is not leaked.
	s.seg.Close()
	s.seg = f
	s.segSize = int64(n)
	s.segIdx = newIdx
	s.dirty = false
	idxs, err := listSegments(s.walDir)
	if err != nil {
		return err
	}
	for _, idx := range idxs {
		if idx >= newIdx {
			continue
		}
		old := filepath.Join(s.walDir, segmentName(idx))
		if err := os.Remove(old); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("store: compact drop %s: %w", old, err)
		}
	}
	s.segCount = 1
	s.stats.Compactions++
	s.opts.Logger.Info("wal compacted", "live_jobs", len(snap.Jobs), "segment", path)
	return syncDir(s.walDir)
}

// walBytesLocked sums the on-disk size of all segments. Callers hold s.mu.
func (s *Store) walBytesLocked() int64 {
	idxs, err := listSegments(s.walDir)
	if err != nil {
		return s.segSize
	}
	var total int64
	for _, idx := range idxs {
		if st, err := os.Stat(filepath.Join(s.walDir, segmentName(idx))); err == nil {
			total += st.Size()
		}
	}
	return total
}
