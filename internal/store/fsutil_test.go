package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileAtomic(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("v2"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "v2" {
		t.Fatalf("read = (%q, %v), want v2", got, err)
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp file left behind: %s", e.Name())
		}
	}
}

// TestRotatingWriterRotates writes past the cap and checks the live file
// restarts while the backup holds the earlier lines intact.
func TestRotatingWriterRotates(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	w, err := NewRotatingWriter(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	var want bytes.Buffer
	for i := 0; i < 10; i++ {
		line := fmt.Sprintf("{\"seq\":%d,\"padding\":\"0123456789\"}\n", i)
		want.WriteString(line)
		if _, err := w.Write([]byte(line)); err != nil {
			t.Fatal(err)
		}
	}

	live, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	backup, err := os.ReadFile(path + ".1")
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(live)) > 64 {
		t.Errorf("live file %d bytes exceeds the 64-byte cap", len(live))
	}
	// Live + backup must be a suffix of everything written: rotation drops
	// only whole oldest generations, never splits or reorders lines.
	joined := string(backup) + string(live)
	if !strings.HasSuffix(want.String(), joined) {
		t.Errorf("backup+live is not a clean suffix of the written stream:\n%q", joined)
	}
	for _, chunk := range []string{string(live), string(backup)} {
		for _, line := range strings.Split(strings.TrimRight(chunk, "\n"), "\n") {
			if line != "" && (!strings.HasPrefix(line, "{") || !strings.HasSuffix(line, "}")) {
				t.Errorf("line split across rotation: %q", line)
			}
		}
	}
}

// TestRotatingWriterAppendsAcrossReopen mirrors a daemon restart: the
// writer must append to what a previous run left.
func TestRotatingWriterAppendsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	w1, err := NewRotatingWriter(path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(w1, "first run")
	w1.Close()

	w2, err := NewRotatingWriter(path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(w2, "second run")
	w2.Close()

	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "first run\nsecond run\n" {
		t.Errorf("content after reopen: %q", got)
	}
}

// TestRotatingWriterNoCap checks maxBytes <= 0 never rotates.
func TestRotatingWriterNoCap(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	w, err := NewRotatingWriter(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 100; i++ {
		fmt.Fprintln(w, strings.Repeat("x", 100))
	}
	if _, err := os.Stat(path + ".1"); !os.IsNotExist(err) {
		t.Error("uncapped writer rotated")
	}
}
