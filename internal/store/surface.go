package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// surfacesDirName is the subdirectory of the store holding response-
// surface artifacts (DESIGN.md §15). Surfaces live beside the result
// blobs but in their own namespace: they are content-addressed by spec
// hash, wear their own "SRF1" inner framing (internal/surface), are
// wrapped in the store's shared blob frame on disk so reads verify
// integrity before the surface codec ever runs, and are exempt from the
// result store's retention GC — a surface is hours of sweep work, not a
// cache entry, and is only replaced by an explicit re-put.
const surfacesDirName = "surfaces"

// surfacePath shards surfaces exactly like result blobs.
func (s *Store) surfacePath(key string) string {
	return filepath.Join(s.surfacesDir, key[:2], key)
}

// PutSurface stores an encoded surface artifact under its spec key,
// atomically (temp file + rename) and fsynced under SyncAlways like
// result blobs. Re-putting a key replaces the artifact.
func (s *Store) PutSurface(key string, payload []byte) error {
	if !blobKeyPattern.MatchString(key) {
		return fmt.Errorf("store: invalid surface key %q", key)
	}
	dir := filepath.Join(s.surfacesDir, key[:2])
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: surface shard dir: %w", err)
	}
	framed := encodeBlob(payload)
	if err := writeFileAtomic(s.surfacePath(key), framed, 0o644, s.opts.SyncMode == SyncAlways); err != nil {
		return err
	}
	s.bmu.Lock()
	if old, ok := s.surfaces[key]; ok {
		s.surfaceBytes -= old.size
	}
	s.surfaces[key] = blobInfo{size: int64(len(framed)), mtime: time.Now()}
	s.surfaceBytes += int64(len(framed))
	s.bmu.Unlock()
	return nil
}

// GetSurface reads and checksum-verifies one surface artifact. A missing
// key returns (nil, false); a corrupt file is quarantined and reported
// as a miss so the caller rebuilds the surface from its spec.
func (s *Store) GetSurface(key string) ([]byte, bool) {
	if !blobKeyPattern.MatchString(key) {
		return nil, false
	}
	buf, err := os.ReadFile(s.surfacePath(key))
	if err != nil {
		return nil, false
	}
	payload, err := decodeBlob(buf)
	if err != nil {
		s.opts.Logger.Warn("corrupt surface blob dropped", "key", key, "detail", err.Error())
		s.dropSurface(key)
		s.bmu.Lock()
		s.badBlobs++
		s.bmu.Unlock()
		return nil, false
	}
	return payload, true
}

// dropSurface removes a surface file and its index entry.
func (s *Store) dropSurface(key string) {
	os.Remove(s.surfacePath(key))
	s.bmu.Lock()
	if info, ok := s.surfaces[key]; ok {
		s.surfaceBytes -= info.size
		delete(s.surfaces, key)
	}
	s.bmu.Unlock()
}

// SurfaceKeys returns the stored surface keys newest-first (by mtime) —
// the reload order for a restarting serving tier.
func (s *Store) SurfaceKeys() []string {
	s.bmu.Lock()
	defer s.bmu.Unlock()
	keys := make([]string, 0, len(s.surfaces))
	for k := range s.surfaces {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		ti, tj := s.surfaces[keys[i]].mtime, s.surfaces[keys[j]].mtime
		if ti.Equal(tj) {
			return keys[i] < keys[j]
		}
		return ti.After(tj)
	})
	return keys
}

// scanSurfaces builds the in-memory surface index from the surfaces tree
// at Open.
func (s *Store) scanSurfaces() error {
	shards, err := os.ReadDir(s.surfacesDir)
	if err != nil {
		return fmt.Errorf("store: read surfaces dir: %w", err)
	}
	for _, shard := range shards {
		if !shard.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.surfacesDir, shard.Name()))
		if err != nil {
			return fmt.Errorf("store: read surface shard: %w", err)
		}
		for _, f := range files {
			if f.IsDir() || !blobKeyPattern.MatchString(f.Name()) {
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			s.surfaces[f.Name()] = blobInfo{size: info.Size(), mtime: info.ModTime()}
			s.surfaceBytes += info.Size()
		}
	}
	return nil
}
