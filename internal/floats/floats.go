// Package floats provides small dense-vector helpers shared by the numeric
// packages in this repository (ODE integrators, the heterogeneous SIR model
// and the optimal-control solver).
//
// All functions operate on []float64 in place where that is the natural Go
// idiom, never allocate unless documented, and panic only on programmer
// errors (mismatched lengths), mirroring the standard library's slice
// built-ins.
package floats

import (
	"math"
	"strconv"
)

// Add adds src to dst element-wise and stores the result in dst.
// It panics if the slices have different lengths.
func Add(dst, src []float64) {
	mustSameLen(len(dst), len(src))
	for i, v := range src {
		dst[i] += v
	}
}

// Sub subtracts src from dst element-wise and stores the result in dst.
// It panics if the slices have different lengths.
func Sub(dst, src []float64) {
	mustSameLen(len(dst), len(src))
	for i, v := range src {
		dst[i] -= v
	}
}

// Scale multiplies every element of dst by c.
func Scale(dst []float64, c float64) {
	for i := range dst {
		dst[i] *= c
	}
}

// AddScaled computes dst += c*src element-wise (the BLAS "axpy" operation).
// It panics if the slices have different lengths.
func AddScaled(dst []float64, c float64, src []float64) {
	mustSameLen(len(dst), len(src))
	for i, v := range src {
		dst[i] += c * v
	}
}

// Fill sets every element of dst to v.
func Fill(dst []float64, v float64) {
	for i := range dst {
		dst[i] = v
	}
}

// Dot returns the inner product of a and b.
// It panics if the slices have different lengths.
func Dot(a, b []float64) float64 {
	mustSameLen(len(a), len(b))
	var sum float64
	for i, v := range a {
		sum += v * b[i]
	}
	return sum
}

// Sum returns the sum of the elements of a.
func Sum(a []float64) float64 {
	var sum float64
	for _, v := range a {
		sum += v
	}
	return sum
}

// Norm2 returns the Euclidean (L2) norm of a.
func Norm2(a []float64) float64 {
	var sum float64
	for _, v := range a {
		sum += v * v
	}
	return math.Sqrt(sum)
}

// NormInf returns the maximum-magnitude (L-infinity) norm of a.
func NormInf(a []float64) float64 {
	var m float64
	for _, v := range a {
		if av := math.Abs(v); av > m {
			m = av
		}
	}
	return m
}

// Dist2 returns the Euclidean distance between a and b.
// It panics if the slices have different lengths.
func Dist2(a, b []float64) float64 {
	mustSameLen(len(a), len(b))
	var sum float64
	for i, v := range a {
		d := v - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// DistInf returns the L-infinity distance between a and b.
// It panics if the slices have different lengths.
func DistInf(a, b []float64) float64 {
	mustSameLen(len(a), len(b))
	var m float64
	for i, v := range a {
		if d := math.Abs(v - b[i]); d > m {
			m = d
		}
	}
	return m
}

// Clamp returns v restricted to the closed interval [lo, hi].
// It panics if lo > hi.
func Clamp(v, lo, hi float64) float64 {
	if lo > hi {
		panic("floats: Clamp with lo > hi (lo=" +
			strconv.FormatFloat(lo, 'g', -1, 64) + ", hi=" +
			strconv.FormatFloat(hi, 'g', -1, 64) + ")")
	}
	switch {
	case v < lo:
		return lo
	case v > hi:
		return hi
	default:
		return v
	}
}

// ClampAll clamps every element of dst to [lo, hi] in place.
func ClampAll(dst []float64, lo, hi float64) {
	for i, v := range dst {
		dst[i] = Clamp(v, lo, hi)
	}
}

// Max returns the maximum element of a. It panics if a is empty.
func Max(a []float64) float64 {
	if len(a) == 0 {
		panic("floats: Max of empty slice")
	}
	m := a[0]
	for _, v := range a[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element of a. It panics if a is empty.
func Min(a []float64) float64 {
	if len(a) == 0 {
		panic("floats: Min of empty slice")
	}
	m := a[0]
	for _, v := range a[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Linspace returns n evenly spaced values from lo to hi inclusive.
// It panics if n < 2.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic("floats: Linspace needs n >= 2, got " + strconv.Itoa(n))
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi // avoid accumulated rounding at the endpoint
	return out
}

// Clone returns a newly allocated copy of a. Clone(nil) returns nil.
func Clone(a []float64) []float64 {
	if a == nil {
		return nil
	}
	out := make([]float64, len(a))
	copy(out, a)
	return out
}

// EqualWithin reports whether a and b have the same length and every pair of
// elements differs by at most tol.
func EqualWithin(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if math.Abs(v-b[i]) > tol {
			return false
		}
	}
	return true
}

// AllFinite reports whether every element of a is finite (not NaN or ±Inf).
func AllFinite(a []float64) bool {
	for _, v := range a {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

func mustSameLen(a, b int) {
	if a != b {
		panic("floats: length mismatch: " + strconv.Itoa(a) + " vs " + strconv.Itoa(b))
	}
}
