package floats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAdd(t *testing.T) {
	dst := []float64{1, 2, 3}
	Add(dst, []float64{10, 20, 30})
	want := []float64{11, 22, 33}
	if !EqualWithin(dst, want, 0) {
		t.Errorf("Add = %v, want %v", dst, want)
	}
}

func TestSub(t *testing.T) {
	dst := []float64{11, 22, 33}
	Sub(dst, []float64{1, 2, 3})
	want := []float64{10, 20, 30}
	if !EqualWithin(dst, want, 0) {
		t.Errorf("Sub = %v, want %v", dst, want)
	}
}

func TestScale(t *testing.T) {
	dst := []float64{1, -2, 3}
	Scale(dst, -2)
	want := []float64{-2, 4, -6}
	if !EqualWithin(dst, want, 0) {
		t.Errorf("Scale = %v, want %v", dst, want)
	}
}

func TestAddScaled(t *testing.T) {
	dst := []float64{1, 1, 1}
	AddScaled(dst, 0.5, []float64{2, 4, 6})
	want := []float64{2, 3, 4}
	if !EqualWithin(dst, want, 1e-15) {
		t.Errorf("AddScaled = %v, want %v", dst, want)
	}
}

func TestFill(t *testing.T) {
	dst := make([]float64, 4)
	Fill(dst, 7)
	for i, v := range dst {
		if v != 7 {
			t.Errorf("dst[%d] = %v, want 7", i, v)
		}
	}
}

func TestDotSumNorms(t *testing.T) {
	a := []float64{3, 4}
	if got := Dot(a, a); got != 25 {
		t.Errorf("Dot = %v, want 25", got)
	}
	if got := Sum(a); got != 7 {
		t.Errorf("Sum = %v, want 7", got)
	}
	if got := Norm2(a); got != 5 {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	if got := NormInf([]float64{-9, 4}); got != 9 {
		t.Errorf("NormInf = %v, want 9", got)
	}
}

func TestDistances(t *testing.T) {
	a := []float64{0, 0}
	b := []float64{3, 4}
	if got := Dist2(a, b); got != 5 {
		t.Errorf("Dist2 = %v, want 5", got)
	}
	if got := DistInf(a, b); got != 4 {
		t.Errorf("DistInf = %v, want 4", got)
	}
}

func TestClamp(t *testing.T) {
	tests := []struct {
		name      string
		v, lo, hi float64
		want      float64
	}{
		{"below", -1, 0, 1, 0},
		{"inside", 0.5, 0, 1, 0.5},
		{"above", 2, 0, 1, 1},
		{"at-lo", 0, 0, 1, 0},
		{"at-hi", 1, 0, 1, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Clamp(tt.v, tt.lo, tt.hi); got != tt.want {
				t.Errorf("Clamp(%v,%v,%v) = %v, want %v", tt.v, tt.lo, tt.hi, got, tt.want)
			}
		})
	}
}

func TestClampPanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Clamp(0, 1, 0) did not panic")
		}
	}()
	Clamp(0, 1, 0)
}

func TestClampAll(t *testing.T) {
	dst := []float64{-5, 0.25, 5}
	ClampAll(dst, 0, 1)
	want := []float64{0, 0.25, 1}
	if !EqualWithin(dst, want, 0) {
		t.Errorf("ClampAll = %v, want %v", dst, want)
	}
}

func TestMinMax(t *testing.T) {
	a := []float64{3, -1, 7, 2}
	if got := Max(a); got != 7 {
		t.Errorf("Max = %v, want 7", got)
	}
	if got := Min(a); got != -1 {
		t.Errorf("Min = %v, want -1", got)
	}
}

func TestLinspace(t *testing.T) {
	got := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	if !EqualWithin(got, want, 1e-15) {
		t.Errorf("Linspace = %v, want %v", got, want)
	}
	if got := Linspace(0, 0.3, 4); got[3] != 0.3 {
		t.Errorf("Linspace endpoint = %v, want exactly 0.3", got[3])
	}
}

func TestClone(t *testing.T) {
	a := []float64{1, 2}
	b := Clone(a)
	b[0] = 99
	if a[0] != 1 {
		t.Error("Clone did not copy: mutation leaked to source")
	}
	if Clone(nil) != nil {
		t.Error("Clone(nil) != nil")
	}
}

func TestAllFinite(t *testing.T) {
	if !AllFinite([]float64{1, -2, 0}) {
		t.Error("AllFinite(finite) = false")
	}
	if AllFinite([]float64{1, math.NaN()}) {
		t.Error("AllFinite(NaN) = true")
	}
	if AllFinite([]float64{math.Inf(1)}) {
		t.Error("AllFinite(+Inf) = true")
	}
}

func TestEqualWithinLengthMismatch(t *testing.T) {
	if EqualWithin([]float64{1}, []float64{1, 2}, 10) {
		t.Error("EqualWithin with different lengths = true")
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with mismatched lengths did not panic")
		}
	}()
	Add([]float64{1}, []float64{1, 2})
}

// Property: Dot is symmetric and Norm2(a)^2 == Dot(a, a).
func TestQuickDotProperties(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		a, b = a[:n], b[:n]
		if !AllFinite(a) || !AllFinite(b) {
			return true // skip pathological random inputs
		}
		// Keep magnitudes bounded so float round-off stays predictable.
		for i := range a {
			a[i] = math.Mod(a[i], 1e3)
			b[i] = math.Mod(b[i], 1e3)
		}
		d1, d2 := Dot(a, b), Dot(b, a)
		if d1 != d2 {
			return false
		}
		n2 := Norm2(a)
		return math.Abs(n2*n2-Dot(a, a)) <= 1e-6*(1+math.Abs(Dot(a, a)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: AddScaled(dst, 1, src) is the same as Add(dst, src).
func TestQuickAddScaledMatchesAdd(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		a, b = a[:n], b[:n]
		x, y := Clone(a), Clone(a)
		Add(x, b)
		AddScaled(y, 1, b)
		return EqualWithin(x, y, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ClampAll output is always within bounds.
func TestQuickClampBounds(t *testing.T) {
	f := func(a []float64) bool {
		ClampAll(a, -1, 1)
		for _, v := range a {
			if math.IsNaN(v) {
				continue // NaN clamps to NaN; documented float behaviour
			}
			if v < -1 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
