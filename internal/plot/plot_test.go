package plot

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func line(name string, n int, f func(i int) (float64, float64)) Series {
	s := Series{Name: name, X: make([]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		s.X[i], s.Y[i] = f(i)
	}
	return s
}

func TestSeriesValidate(t *testing.T) {
	good := line("a", 3, func(i int) (float64, float64) { return float64(i), float64(i) })
	if err := good.Validate(); err != nil {
		t.Errorf("valid series rejected: %v", err)
	}
	bad := []Series{
		{Name: "", X: []float64{1}, Y: []float64{1}},
		{Name: "empty"},
		{Name: "mismatch", X: []float64{1, 2}, Y: []float64{1}},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("series %+v: want error", s)
		}
	}
}

func TestASCIIBasic(t *testing.T) {
	s := line("ramp", 50, func(i int) (float64, float64) { return float64(i), float64(i) })
	out, err := ASCII("test chart", 60, 10, s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "test chart") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "ramp") {
		t.Error("missing legend")
	}
	if !strings.Contains(out, "*") {
		t.Error("missing data glyphs")
	}
	if !strings.Contains(out, "49") { // axis bounds rendered
		t.Error("missing axis label")
	}
	// Monotone ramp: first data row (top) should contain a glyph near the
	// right edge, bottom row near the left.
	lines := strings.Split(out, "\n")
	top := lines[1]
	if pos := strings.IndexByte(top, '*'); pos < len(top)/2 {
		t.Errorf("ramp top-row glyph at %d, want right half", pos)
	}
}

func TestASCIIMultiSeriesGlyphs(t *testing.T) {
	a := line("a", 10, func(i int) (float64, float64) { return float64(i), 0 })
	b := line("b", 10, func(i int) (float64, float64) { return float64(i), 1 })
	out, err := ASCII("", 40, 8, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Error("distinct glyphs not used")
	}
}

func TestASCIIDegenerate(t *testing.T) {
	// Constant series (zero y-range) must not divide by zero.
	s := line("const", 5, func(i int) (float64, float64) { return float64(i), 7 })
	if _, err := ASCII("", 30, 6, s); err != nil {
		t.Errorf("constant series: %v", err)
	}
	// Single point.
	p := Series{Name: "pt", X: []float64{1}, Y: []float64{2}}
	if _, err := ASCII("", 30, 6, p); err != nil {
		t.Errorf("single point: %v", err)
	}
}

func TestASCIIErrors(t *testing.T) {
	s := line("a", 3, func(i int) (float64, float64) { return float64(i), 1 })
	if _, err := ASCII("", 5, 5, s); err == nil {
		t.Error("tiny chart: want error")
	}
	if _, err := ASCII("", 40, 8); err == nil {
		t.Error("no series: want error")
	}
	nan := Series{Name: "nan", X: []float64{math.NaN()}, Y: []float64{math.NaN()}}
	if _, err := ASCII("", 40, 8, nan); err == nil {
		t.Error("all-NaN series: want error")
	}
}

func TestASCIISkipsNaN(t *testing.T) {
	s := Series{
		Name: "gappy",
		X:    []float64{0, 1, 2},
		Y:    []float64{1, math.NaN(), 3},
	}
	if _, err := ASCII("", 40, 8, s); err != nil {
		t.Errorf("series with NaN gap: %v", err)
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	a := Series{Name: "with,comma", X: []float64{1, 2}, Y: []float64{3, 4}}
	if err := WriteCSV(&buf, a); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "series,x,y\nwith;comma,1,3\nwith;comma,2,4\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
	if err := WriteCSV(&bytes.Buffer{}); err == nil {
		t.Error("no series: want error")
	}
	bad := Series{Name: "bad", X: []float64{1}, Y: nil}
	if err := WriteCSV(&bytes.Buffer{}, bad); err == nil {
		t.Error("invalid series: want error")
	}
}

func TestSaveCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "out.csv")
	s := line("a", 3, func(i int) (float64, float64) { return float64(i), float64(i * i) })
	if err := SaveCSV(path, s); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "series,x,y\n") {
		t.Errorf("file content = %q", data)
	}
}

// Property: rendering never panics and always includes every series name,
// for arbitrary finite data.
func TestQuickASCIITotal(t *testing.T) {
	f := func(ys []float64) bool {
		if len(ys) == 0 {
			return true
		}
		for i, y := range ys {
			if math.IsNaN(y) || math.IsInf(y, 0) {
				ys[i] = 0
			}
		}
		s := Series{Name: "q", X: make([]float64, len(ys)), Y: ys}
		for i := range s.X {
			s.X[i] = float64(i)
		}
		out, err := ASCII("t", 40, 8, s)
		return err == nil && strings.Contains(out, "q")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
