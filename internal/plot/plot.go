// Package plot renders experiment results as ASCII line charts for the
// terminal and exports them as CSV for external plotting. Every figure of
// the paper is regenerated through this package by cmd/figgen.
package plot

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Series is a named sequence of (x, y) points.
type Series struct {
	Name string
	X, Y []float64
}

// Validate checks that the series has matching, non-empty coordinates.
func (s Series) Validate() error {
	if s.Name == "" {
		return errors.New("plot: series needs a name")
	}
	if len(s.X) == 0 {
		return fmt.Errorf("plot: series %q is empty", s.Name)
	}
	if len(s.X) != len(s.Y) {
		return fmt.Errorf("plot: series %q has %d x vs %d y", s.Name, len(s.X), len(s.Y))
	}
	return nil
}

var glyphs = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&', '=', '~'}

// ASCII renders the series as a width×height character chart with axis
// annotations and a legend.
func ASCII(title string, width, height int, series ...Series) (string, error) {
	if width < 20 || height < 5 {
		return "", fmt.Errorf("plot: chart %dx%d too small", width, height)
	}
	if len(series) == 0 {
		return "", errors.New("plot: no series")
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if err := s.Validate(); err != nil {
			return "", err
		}
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	if xmin > xmax || ymin > ymax {
		return "", errors.New("plot: no finite points")
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			c := int((x - xmin) / (xmax - xmin) * float64(width-1))
			r := height - 1 - int((y-ymin)/(ymax-ymin)*float64(height-1))
			if c >= 0 && c < width && r >= 0 && r < height {
				grid[r][c] = g
			}
		}
	}

	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	yTop := strconv.FormatFloat(ymax, 'g', 4, 64)
	yBot := strconv.FormatFloat(ymin, 'g', 4, 64)
	labelW := len(yTop)
	if len(yBot) > labelW {
		labelW = len(yBot)
	}
	for r := 0; r < height; r++ {
		label := strings.Repeat(" ", labelW)
		switch r {
		case 0:
			label = pad(yTop, labelW)
		case height - 1:
			label = pad(yBot, labelW)
		}
		b.WriteString(label)
		b.WriteString(" |")
		b.Write(grid[r])
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat(" ", labelW))
	b.WriteString(" +")
	b.WriteString(strings.Repeat("-", width))
	b.WriteByte('\n')
	b.WriteString(strings.Repeat(" ", labelW+2))
	xAxis := strconv.FormatFloat(xmin, 'g', 4, 64) +
		strings.Repeat(" ", max(1, width-len(strconv.FormatFloat(xmin, 'g', 4, 64))-len(strconv.FormatFloat(xmax, 'g', 4, 64)))) +
		strconv.FormatFloat(xmax, 'g', 4, 64)
	b.WriteString(xAxis)
	b.WriteByte('\n')
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", glyphs[si%len(glyphs)], s.Name)
	}
	return b.String(), nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return strings.Repeat(" ", w-len(s)) + s
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// WriteCSV writes the series in long format with header "series,x,y".
func WriteCSV(w io.Writer, series ...Series) error {
	if len(series) == 0 {
		return errors.New("plot: no series")
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("series,x,y\n"); err != nil {
		return fmt.Errorf("plot: write header: %w", err)
	}
	for _, s := range series {
		if err := s.Validate(); err != nil {
			return err
		}
		name := strings.ReplaceAll(s.Name, ",", ";")
		for i := range s.X {
			row := name + "," +
				strconv.FormatFloat(s.X[i], 'g', -1, 64) + "," +
				strconv.FormatFloat(s.Y[i], 'g', -1, 64) + "\n"
			if _, err := bw.WriteString(row); err != nil {
				return fmt.Errorf("plot: write row: %w", err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("plot: flush csv: %w", err)
	}
	return nil
}

// SaveCSV writes the series to path, creating parent directories.
func SaveCSV(path string, series ...Series) (err error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("plot: mkdir for %s: %w", path, err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("plot: create %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("plot: close %s: %w", path, cerr)
		}
	}()
	return WriteCSV(f, series...)
}
