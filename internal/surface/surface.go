// Package surface implements precomputed response surfaces: dense grids
// of solver outputs over a small parameter box (r0, ε1, ε2, horizon …),
// folded into packed float64 tensors and answered by multilinear
// interpolation in microseconds (DESIGN.md §15). A surface is a
// first-class scientific artifact — the parameter-plane maps of
// Moreno et al. and Singh & Singh are exactly this shape — and doubles
// as rumord's serving tier for interactive what-if queries.
//
// The package is deliberately free of service dependencies: a Spec
// carries the job type, scenario fingerprint and base parameters as
// opaque strings/JSON, so the interpolation kernel and codec can be
// tested against analytic functions with no daemon in sight.
package surface

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
)

// MaxPoints caps a single surface's grid size. Construction fans every
// grid point out as an ordinary batch job, so the cap bounds how much
// sweep work one POST /v1/surfaces can enqueue; 4096 points at 4 axes is
// an 8^4 box, far beyond what interactive coverage needs.
const MaxPoints = 4096

// MaxAxes bounds the dimensionality. Eval gathers 2^axes corners per
// query; 8 axes = 256 corners is still microseconds, and no physical
// sweep in this repo has more than 4 free parameters.
const MaxAxes = 8

// ErrOutOfHull reports a query outside the covered region (or off the
// exact coordinate of a degenerate single-point axis). Callers fall back
// to the exact async job path.
var ErrOutOfHull = errors.New("surface: query outside covered region")

// Axis is one grid dimension: a named parameter and its strictly
// increasing sample coordinates.
type Axis struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

// Spec identifies a surface: which job type and scenario it sweeps,
// the axes and their grids, the output fields extracted from each
// result, and the base parameters shared by every grid point (axis
// values override the matching base fields). Base must already be in
// canonical form (sorted keys, defaulted) when identity matters: Key()
// hashes the marshaled Spec verbatim.
type Spec struct {
	JobType     string          `json:"job_type"`
	Scenario    string          `json:"scenario,omitempty"`
	Fingerprint string          `json:"fingerprint,omitempty"`
	Axes        []Axis          `json:"axes"`
	Fields      []string        `json:"fields"`
	Base        json.RawMessage `json:"base,omitempty"`
}

// Validate checks structural invariants: at least one axis and field,
// unique names, strictly increasing finite axis values, and the grid
// within MaxPoints.
func (sp *Spec) Validate() error {
	if sp.JobType == "" {
		return errors.New("surface: spec has no job type")
	}
	if len(sp.Axes) == 0 {
		return errors.New("surface: spec has no axes")
	}
	if len(sp.Axes) > MaxAxes {
		return fmt.Errorf("surface: %d axes exceeds the maximum %d", len(sp.Axes), MaxAxes)
	}
	names := make(map[string]bool, len(sp.Axes))
	for _, ax := range sp.Axes {
		if ax.Name == "" {
			return errors.New("surface: axis with empty name")
		}
		if names[ax.Name] {
			return fmt.Errorf("surface: duplicate axis %q", ax.Name)
		}
		names[ax.Name] = true
		if len(ax.Values) == 0 {
			return fmt.Errorf("surface: axis %q has no values", ax.Name)
		}
		for i, v := range ax.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("surface: axis %q value %d is not finite", ax.Name, i)
			}
			if i > 0 && v <= ax.Values[i-1] {
				return fmt.Errorf("surface: axis %q values not strictly increasing at %d", ax.Name, i)
			}
		}
	}
	if len(sp.Fields) == 0 {
		return errors.New("surface: spec has no output fields")
	}
	fields := make(map[string]bool, len(sp.Fields))
	for _, f := range sp.Fields {
		if f == "" {
			return errors.New("surface: empty field name")
		}
		if fields[f] {
			return fmt.Errorf("surface: duplicate field %q", f)
		}
		fields[f] = true
	}
	if n := sp.Points(); n > MaxPoints {
		return fmt.Errorf("surface: grid has %d points, maximum is %d", n, MaxPoints)
	}
	return nil
}

// Points is the total grid size: the product of the axis lengths.
func (sp *Spec) Points() int {
	n := 1
	for _, ax := range sp.Axes {
		n *= len(ax.Values)
	}
	return n
}

// Coords decomposes a row-major grid index (last axis fastest) into the
// axis coordinates of that point. It is the construction side's
// enumeration order and must match the tensor layout New expects.
func (sp *Spec) Coords(i int) []float64 {
	c := make([]float64, len(sp.Axes))
	for a := len(sp.Axes) - 1; a >= 0; a-- {
		n := len(sp.Axes[a].Values)
		c[a] = sp.Axes[a].Values[i%n]
		i /= n
	}
	return c
}

// Key is the surface's content address: the sha256 of the marshaled
// spec. Two requests for the same sweep hash identically, making
// construction idempotent and the blob store content-addressed.
func (sp *Spec) Key() (string, error) {
	raw, err := json.Marshal(sp)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}

// Surface is a completed grid: the spec plus one packed row-major
// float64 tensor per output field, and precomputed per-field
// interpolation error bounds (see bound.go).
type Surface struct {
	Spec    Spec
	tensors [][]float64 // aligned with Spec.Fields
	bounds  []float64   // global per-field multilinear error bound
}

// New assembles a surface from a spec and per-field tensors (row-major,
// last axis fastest, one value per grid point). Tensors must be finite:
// a NaN would silently poison every interpolated answer touching its
// cell, so construction fails loudly instead.
func New(spec Spec, fields map[string][]float64) (*Surface, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	points := spec.Points()
	s := &Surface{Spec: spec, tensors: make([][]float64, len(spec.Fields))}
	for i, name := range spec.Fields {
		t, ok := fields[name]
		if !ok {
			return nil, fmt.Errorf("surface: field %q missing from tensors", name)
		}
		if len(t) != points {
			return nil, fmt.Errorf("surface: field %q has %d values, grid has %d points", name, len(t), points)
		}
		for j, v := range t {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("surface: field %q point %d is not finite", name, j)
			}
		}
		s.tensors[i] = t
	}
	s.bounds = make([]float64, len(s.tensors))
	for i, t := range s.tensors {
		s.bounds[i] = errorBound(t, spec.Axes)
	}
	return s, nil
}

// Field returns the packed tensor for one output field (nil if absent).
// Exposed for golden tests; serving goes through Eval.
func (s *Surface) Field(name string) []float64 {
	for i, f := range s.Spec.Fields {
		if f == name {
			return s.tensors[i]
		}
	}
	return nil
}

// Bounds returns the per-field global error bounds, aligned with
// Spec.Fields.
func (s *Surface) Bounds() []float64 {
	out := make([]float64, len(s.bounds))
	copy(out, s.bounds)
	return out
}

// degenerateMatch decides whether a query coordinate sits on a
// single-point axis's only sample: a relative 1e-9 tolerance absorbs
// decimal-parse jitter without covering any physically distinct value.
func degenerateMatch(v, sample float64) bool {
	scale := math.Abs(sample)
	if scale < 1 {
		scale = 1
	}
	return math.Abs(v-sample) <= 1e-9*scale
}

// Eval answers a query by multilinear interpolation: locate the grid
// cell containing coords on every axis, gather the 2^axes corner values
// and blend them by the fractional offsets. Returns the interpolated
// value and the global error bound per field, aligned with Spec.Fields.
// Queries outside the hull (or off a degenerate axis's coordinate)
// return ErrOutOfHull.
func (s *Surface) Eval(coords []float64) (values, bounds []float64, err error) {
	axes := s.Spec.Axes
	if len(coords) != len(axes) {
		return nil, nil, fmt.Errorf("surface: got %d coordinates, spec has %d axes", len(coords), len(axes))
	}
	var lo [MaxAxes]int
	var frac [MaxAxes]float64
	for a, ax := range axes {
		v := coords[a]
		if math.IsNaN(v) {
			return nil, nil, fmt.Errorf("surface: coordinate %q is NaN", ax.Name)
		}
		vals := ax.Values
		if len(vals) == 1 {
			if !degenerateMatch(v, vals[0]) {
				return nil, nil, fmt.Errorf("%w: %s=%g not on the single covered value %g", ErrOutOfHull, ax.Name, v, vals[0])
			}
			lo[a], frac[a] = 0, 0
			continue
		}
		if v < vals[0] || v > vals[len(vals)-1] {
			return nil, nil, fmt.Errorf("%w: %s=%g outside [%g, %g]", ErrOutOfHull, ax.Name, v, vals[0], vals[len(vals)-1])
		}
		i := sort.SearchFloat64s(vals, v)
		if i == len(vals) || (i > 0 && vals[i] != v) {
			i--
		}
		if i == len(vals)-1 {
			i-- // v == max: interpolate from the last cell with frac 1
		}
		lo[a] = i
		frac[a] = (v - vals[i]) / (vals[i+1] - vals[i])
	}
	n := len(axes)
	values = make([]float64, len(s.tensors))
	for f, t := range s.tensors {
		acc := 0.0
		for mask := 0; mask < 1<<n; mask++ {
			w := 1.0
			idx := 0
			for a := 0; a < n; a++ {
				i := lo[a]
				if mask>>a&1 == 1 {
					w *= frac[a]
					if len(axes[a].Values) > 1 {
						i++
					}
				} else {
					w *= 1 - frac[a]
				}
				idx = idx*len(axes[a].Values) + i
			}
			if w != 0 {
				acc += w * t[idx]
			}
		}
		values[f] = acc
	}
	return values, s.Bounds(), nil
}
