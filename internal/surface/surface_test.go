package surface

import (
	"errors"
	"math"
	"testing"
)

// buildAnalytic samples f over the spec's grid into every spec field
// (all fields share the tensor — the kernel treats them independently).
func buildAnalytic(t *testing.T, spec Spec, f func(c []float64) float64) *Surface {
	t.Helper()
	points := spec.Points()
	tensor := make([]float64, points)
	for i := 0; i < points; i++ {
		tensor[i] = f(spec.Coords(i))
	}
	fields := make(map[string][]float64, len(spec.Fields))
	for _, name := range spec.Fields {
		fields[name] = tensor
	}
	s, err := New(spec, fields)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func grid(lo, hi float64, n int) []float64 {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return vals
}

// TestEvalExactAtNodes: interpolation must reproduce every grid point
// bit-exactly — the corner weights collapse to a single 1.
func TestEvalExactAtNodes(t *testing.T) {
	spec := Spec{
		JobType: "ode",
		Axes: []Axis{
			{Name: "eps1", Values: grid(0.1, 0.5, 4)},
			{Name: "eps2", Values: grid(0.02, 0.1, 3)},
		},
		Fields: []string{"final_i"},
	}
	f := func(c []float64) float64 { return math.Sin(7*c[0]) * math.Cos(11*c[1]) }
	s := buildAnalytic(t, spec, f)
	for i := 0; i < spec.Points(); i++ {
		c := spec.Coords(i)
		vals, _, err := s.Eval(c)
		if err != nil {
			t.Fatalf("node %v: %v", c, err)
		}
		if vals[0] != f(c) {
			t.Errorf("node %v: got %g want %g", c, vals[0], f(c))
		}
	}
}

// TestMultilinearExact: a function that is itself multilinear must
// interpolate with (near-)zero error anywhere in the hull, and the
// second-difference bound must be ~0 for it.
func TestMultilinearExact(t *testing.T) {
	spec := Spec{
		JobType: "ode",
		Axes: []Axis{
			{Name: "x", Values: grid(0, 2, 5)},
			{Name: "y", Values: grid(-1, 1, 4)},
		},
		Fields: []string{"v"},
	}
	f := func(c []float64) float64 { return 2 + 3*c[0] - c[1] + 0.5*c[0]*c[1] }
	s := buildAnalytic(t, spec, f)
	for _, c := range [][]float64{{0.3, 0.7}, {1.99, -0.99}, {1.1, 0}, {0, 1}} {
		vals, bounds, err := s.Eval(c)
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if err := math.Abs(vals[0] - f(c)); err > 1e-12 {
			t.Errorf("%v: multilinear function interpolated with error %g", c, err)
		}
		if bounds[0] > 1e-12 {
			t.Errorf("%v: bound %g for a curvature-free surface", c, bounds[0])
		}
	}
}

// TestBoundCoversObservedError is the kernel-level golden test: on a
// smooth curved function, the global second-difference bound must be ≥
// the observed interpolation error at every probed off-grid point. The
// service-level golden (internal/service) repeats this against real
// solver runs on the fig4c grid.
func TestBoundCoversObservedError(t *testing.T) {
	spec := Spec{
		JobType: "ode",
		Axes: []Axis{
			{Name: "x", Values: grid(0, 1, 9)},
			{Name: "y", Values: grid(0, 1, 7)},
		},
		Fields: []string{"v"},
	}
	f := func(c []float64) float64 { return math.Sin(3*c[0]) + math.Cos(2*c[1])*c[0] }
	s := buildAnalytic(t, spec, f)
	var worst, bound float64
	for i := 0; i <= 20; i++ {
		for j := 0; j <= 20; j++ {
			c := []float64{float64(i) / 20, float64(j) / 20}
			vals, bounds, err := s.Eval(c)
			if err != nil {
				t.Fatalf("%v: %v", c, err)
			}
			bound = bounds[0]
			if e := math.Abs(vals[0] - f(c)); e > worst {
				worst = e
			}
			if e := math.Abs(vals[0] - f(c)); e > bounds[0] {
				t.Errorf("%v: observed error %g exceeds bound %g", c, e, bounds[0])
			}
		}
	}
	if worst == 0 {
		t.Fatal("probe grid never left the nodes; the test is vacuous")
	}
	if bound <= 0 {
		t.Fatalf("curved surface got bound %g", bound)
	}
}

// TestTwoPointAxisBound: a 2-sample axis has no second difference; the
// bound must fall back to half the largest cell swing and still cover
// the observed error for a monotone function.
func TestTwoPointAxisBound(t *testing.T) {
	spec := Spec{
		JobType: "ode",
		Axes:    []Axis{{Name: "x", Values: []float64{0, 1}}},
		Fields:  []string{"v"},
	}
	f := func(c []float64) float64 { return math.Sqrt(c[0]) }
	s := buildAnalytic(t, spec, f)
	for _, x := range []float64{0.1, 0.25, 0.5, 0.9} {
		vals, bounds, err := s.Eval([]float64{x})
		if err != nil {
			t.Fatal(err)
		}
		if e := math.Abs(vals[0] - f([]float64{x})); e > bounds[0] {
			t.Errorf("x=%g: error %g exceeds two-point bound %g", x, e, bounds[0])
		}
	}
}

// TestDegenerateAxis: a single-point dimension demands an exact
// coordinate match (within parse jitter) and contributes nothing to the
// bound; anything else is out of hull.
func TestDegenerateAxis(t *testing.T) {
	spec := Spec{
		JobType: "ode",
		Axes: []Axis{
			{Name: "x", Values: grid(0, 1, 3)},
			{Name: "tf", Values: []float64{40}},
		},
		Fields: []string{"v"},
	}
	f := func(c []float64) float64 { return c[0] * c[1] }
	s := buildAnalytic(t, spec, f)
	vals, _, err := s.Eval([]float64{0.5, 40})
	if err != nil {
		t.Fatalf("on-coordinate query failed: %v", err)
	}
	if want := 0.5 * 40; math.Abs(vals[0]-want) > 1e-9 {
		t.Errorf("got %g want %g", vals[0], want)
	}
	if _, _, err := s.Eval([]float64{0.5, 40 + 40*1e-10}); err != nil {
		t.Errorf("within-jitter degenerate match rejected: %v", err)
	}
	if _, _, err := s.Eval([]float64{0.5, 41}); !errors.Is(err, ErrOutOfHull) {
		t.Errorf("off-coordinate degenerate query: got %v, want ErrOutOfHull", err)
	}
}

// TestOutOfHull covers both sides of every axis plus dimension
// mismatches.
func TestOutOfHull(t *testing.T) {
	spec := Spec{
		JobType: "ode",
		Axes:    []Axis{{Name: "x", Values: grid(0, 1, 3)}, {Name: "y", Values: grid(2, 3, 3)}},
		Fields:  []string{"v"},
	}
	s := buildAnalytic(t, spec, func(c []float64) float64 { return c[0] + c[1] })
	for _, c := range [][]float64{{-0.1, 2.5}, {1.1, 2.5}, {0.5, 1.9}, {0.5, 3.01}} {
		if _, _, err := s.Eval(c); !errors.Is(err, ErrOutOfHull) {
			t.Errorf("%v: got %v, want ErrOutOfHull", c, err)
		}
	}
	if _, _, err := s.Eval([]float64{0.5}); err == nil || errors.Is(err, ErrOutOfHull) {
		t.Errorf("dimension mismatch: got %v, want a non-hull error", err)
	}
	// Hull boundary itself is covered.
	if _, _, err := s.Eval([]float64{1, 3}); err != nil {
		t.Errorf("upper corner of the hull rejected: %v", err)
	}
}

// TestCodecRoundTrip: Encode→Decode preserves spec, tensors and
// recomputes identical bounds.
func TestCodecRoundTrip(t *testing.T) {
	spec := Spec{
		JobType:     "threshold",
		Scenario:    "digg",
		Fingerprint: "abc123",
		Axes: []Axis{
			{Name: "eps1", Values: grid(0.1, 0.4, 4)},
			{Name: "eps2", Values: []float64{0.05}},
		},
		Fields: []string{"r0", "required_eps1"},
		Base:   []byte(`{"alpha":0.01}`),
	}
	points := spec.Points()
	fields := map[string][]float64{}
	for fi, name := range spec.Fields {
		tensor := make([]float64, points)
		for i := range tensor {
			tensor[i] = float64(fi*100+i) * 1.25
		}
		fields[name] = tensor
	}
	s, err := New(spec, fields)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	k1, _ := s.Spec.Key()
	k2, _ := got.Spec.Key()
	if k1 != k2 {
		t.Errorf("round trip changed the spec key: %s != %s", k1, k2)
	}
	for _, name := range spec.Fields {
		a, b := s.Field(name), got.Field(name)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("field %s point %d: %g != %g", name, i, a[i], b[i])
			}
		}
	}
	ba, bb := s.Bounds(), got.Bounds()
	for i := range ba {
		if ba[i] != bb[i] {
			t.Errorf("bound %d drifted across the codec: %g != %g", i, ba[i], bb[i])
		}
	}
}

// TestCodecCorruption: every single-byte flip must be detected — the
// whole point of CRC framing is that a rotten surface never serves.
func TestCodecCorruption(t *testing.T) {
	spec := Spec{
		JobType: "ode",
		Axes:    []Axis{{Name: "x", Values: grid(0, 1, 3)}},
		Fields:  []string{"v"},
	}
	s := buildAnalytic(t, spec, func(c []float64) float64 { return c[0] })
	raw, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for i := range raw {
		mut := make([]byte, len(raw))
		copy(mut, raw)
		mut[i] ^= 0x40
		if _, err := Decode(mut); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at byte %d decoded cleanly (err=%v)", i, err)
		}
	}
	if _, err := Decode(raw[:len(raw)-3]); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncation decoded cleanly: %v", err)
	}
	if _, err := Decode(nil); !errors.Is(err, ErrCorrupt) {
		t.Errorf("empty blob decoded cleanly: %v", err)
	}
}

// TestSpecValidate sweeps the rejection matrix.
func TestSpecValidate(t *testing.T) {
	ok := Spec{JobType: "ode", Axes: []Axis{{Name: "x", Values: []float64{1, 2}}}, Fields: []string{"v"}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("baseline spec invalid: %v", err)
	}
	big := make([]float64, 70)
	for i := range big {
		big[i] = float64(i)
	}
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"no job type", func(s *Spec) { s.JobType = "" }},
		{"no axes", func(s *Spec) { s.Axes = nil }},
		{"empty axis name", func(s *Spec) { s.Axes[0].Name = "" }},
		{"dup axis", func(s *Spec) { s.Axes = append(s.Axes, Axis{Name: "x", Values: []float64{3}}) }},
		{"empty axis", func(s *Spec) { s.Axes[0].Values = nil }},
		{"not increasing", func(s *Spec) { s.Axes[0].Values = []float64{2, 1} }},
		{"duplicate value", func(s *Spec) { s.Axes[0].Values = []float64{1, 1} }},
		{"nan value", func(s *Spec) { s.Axes[0].Values = []float64{1, math.NaN()} }},
		{"no fields", func(s *Spec) { s.Fields = nil }},
		{"dup field", func(s *Spec) { s.Fields = []string{"v", "v"} }},
		{"too many points", func(s *Spec) {
			s.Axes = []Axis{{Name: "a", Values: big}, {Name: "b", Values: big}}
		}},
	}
	for _, tc := range cases {
		s := Spec{JobType: ok.JobType, Fields: append([]string(nil), ok.Fields...)}
		s.Axes = []Axis{{Name: "x", Values: append([]float64(nil), ok.Axes[0].Values...)}}
		tc.mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: validated", tc.name)
		}
	}
}

// TestNewRejectsBadTensors: missing fields, short tensors and NaNs must
// fail construction, not poison serving.
func TestNewRejectsBadTensors(t *testing.T) {
	spec := Spec{JobType: "ode", Axes: []Axis{{Name: "x", Values: grid(0, 1, 3)}}, Fields: []string{"v"}}
	if _, err := New(spec, map[string][]float64{}); err == nil {
		t.Error("missing field accepted")
	}
	if _, err := New(spec, map[string][]float64{"v": {1, 2}}); err == nil {
		t.Error("short tensor accepted")
	}
	if _, err := New(spec, map[string][]float64{"v": {1, math.NaN(), 3}}); err == nil {
		t.Error("NaN tensor accepted")
	}
}

// TestKeyIdentity: identical specs share a key; any semantic change
// moves it.
func TestKeyIdentity(t *testing.T) {
	a := Spec{JobType: "ode", Axes: []Axis{{Name: "x", Values: []float64{1, 2}}}, Fields: []string{"v"}}
	b := Spec{JobType: "ode", Axes: []Axis{{Name: "x", Values: []float64{1, 2}}}, Fields: []string{"v"}}
	ka, err := a.Key()
	if err != nil {
		t.Fatal(err)
	}
	kb, _ := b.Key()
	if ka != kb {
		t.Errorf("identical specs keyed differently: %s %s", ka, kb)
	}
	b.Axes[0].Values[1] = 3
	if kc, _ := b.Key(); kc == ka {
		t.Error("changed grid kept the same key")
	}
}

// BenchmarkSurfaceEval prices one interpolated answer on a realistic
// 3-axis surface — the microsecond-serving claim, measured.
func BenchmarkSurfaceEval(b *testing.B) {
	spec := Spec{
		JobType: "ode",
		Axes: []Axis{
			{Name: "eps1", Values: grid(0.1, 0.5, 8)},
			{Name: "eps2", Values: grid(0.02, 0.1, 8)},
			{Name: "tf", Values: grid(20, 100, 8)},
		},
		Fields: []string{"final_i", "peak_i", "peak_t"},
	}
	points := spec.Points()
	tensor := make([]float64, points)
	for i := range tensor {
		c := spec.Coords(i)
		tensor[i] = math.Sin(c[0]) * math.Cos(c[1]) * c[2]
	}
	s, err := New(spec, map[string][]float64{"final_i": tensor, "peak_i": tensor, "peak_t": tensor})
	if err != nil {
		b.Fatal(err)
	}
	coords := []float64{0.23, 0.071, 55.5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Eval(coords); err != nil {
			b.Fatal(err)
		}
	}
}
