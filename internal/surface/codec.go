package surface

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Binary surface format "SRF1", framed like the PR 5 blob store so a
// torn or bit-rotted artifact is detected before a single interpolated
// answer leaves it:
//
//	[0:4)  magic "SRF1"
//	[4:8)  crc32c (Castagnoli) of the payload
//	[8:12) payload length, uint32 LE
//	payload:
//	  [0:4) spec JSON length, uint32 LE
//	  spec JSON (the marshaled Spec)
//	  one float64 LE tensor per Spec.Fields entry, Points() values each
//
// Error bounds are not serialized: Decode recomputes them from the
// tensors, so the bound derivation can tighten without invalidating
// stored surfaces (the content address covers only the spec).

const (
	srfMagic  = "SRF1"
	srfHeader = 12
)

// ErrCorrupt reports a surface blob that failed framing or checksum
// validation.
var ErrCorrupt = errors.New("surface: corrupt artifact")

var srfCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// Encode serializes the surface into its framed binary form.
func (s *Surface) Encode() ([]byte, error) {
	spec, err := json.Marshal(s.Spec)
	if err != nil {
		return nil, err
	}
	points := s.Spec.Points()
	payload := make([]byte, 4+len(spec)+8*points*len(s.tensors))
	binary.LittleEndian.PutUint32(payload, uint32(len(spec)))
	copy(payload[4:], spec)
	off := 4 + len(spec)
	for _, t := range s.tensors {
		for _, v := range t {
			binary.LittleEndian.PutUint64(payload[off:], math.Float64bits(v))
			off += 8
		}
	}
	out := make([]byte, srfHeader+len(payload))
	copy(out, srfMagic)
	binary.LittleEndian.PutUint32(out[4:], crc32.Checksum(payload, srfCastagnoli))
	binary.LittleEndian.PutUint32(out[8:], uint32(len(payload)))
	copy(out[srfHeader:], payload)
	return out, nil
}

// Decode parses and validates a framed surface, recomputing error
// bounds. Any framing, checksum, spec or tensor-shape violation returns
// an error wrapping ErrCorrupt.
func Decode(b []byte) (*Surface, error) {
	if len(b) < srfHeader || string(b[:4]) != srfMagic {
		return nil, fmt.Errorf("%w: bad header", ErrCorrupt)
	}
	plen := binary.LittleEndian.Uint32(b[8:])
	if int(plen) != len(b)-srfHeader {
		return nil, fmt.Errorf("%w: length %d does not match %d payload bytes", ErrCorrupt, plen, len(b)-srfHeader)
	}
	payload := b[srfHeader:]
	if got, want := crc32.Checksum(payload, srfCastagnoli), binary.LittleEndian.Uint32(b[4:]); got != want {
		return nil, fmt.Errorf("%w: crc mismatch (got %08x want %08x)", ErrCorrupt, got, want)
	}
	if len(payload) < 4 {
		return nil, fmt.Errorf("%w: truncated payload", ErrCorrupt)
	}
	slen := binary.LittleEndian.Uint32(payload)
	if int(slen) > len(payload)-4 {
		return nil, fmt.Errorf("%w: spec length %d exceeds payload", ErrCorrupt, slen)
	}
	var spec Spec
	if err := json.Unmarshal(payload[4:4+slen], &spec); err != nil {
		return nil, fmt.Errorf("%w: spec: %v", ErrCorrupt, err)
	}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	points := spec.Points()
	rest := payload[4+slen:]
	if len(rest) != 8*points*len(spec.Fields) {
		return nil, fmt.Errorf("%w: %d tensor bytes, want %d", ErrCorrupt, len(rest), 8*points*len(spec.Fields))
	}
	fields := make(map[string][]float64, len(spec.Fields))
	off := 0
	for _, name := range spec.Fields {
		t := make([]float64, points)
		for i := range t {
			t[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[off:]))
			off += 8
		}
		fields[name] = t
	}
	s, err := New(spec, fields)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return s, nil
}
