package surface

import "math"

// Error bound (DESIGN.md §15): for 1-D linear interpolation on a cell of
// width h, the classical remainder is |f(x) − p(x)| ≤ h²·max|f''|/8. We
// do not know f'', but the grid's own second differences estimate it:
// Δ²f(xᵢ) = f(xᵢ₋₁) − 2f(xᵢ) + f(xᵢ₊₁) ≈ h²·f''(xᵢ), so max|Δ²f|/8
// bounds the per-axis error wherever the curvature between samples is no
// wilder than at the samples. Multilinear interpolation errs by at most
// the sum of the per-axis 1-D errors, so the surface bound is
//
//	bound = 2 · Σ_axes max|Δ²f along that axis| / 8
//
// with a safety factor of 2 absorbing both the finite-difference
// approximation of f'' and non-uniform grid spacing (the raw adjacent
// second difference under-estimates curvature when spacing shrinks).
// Axes with only two samples have no second difference; their
// contribution falls back to max|Δf|/2 — half the largest swing across a
// cell, the worst case for any function that stays within the sampled
// range. Single-point axes contribute nothing: Eval requires an exact
// coordinate match on them. The bound is global per field (the max over
// all cells), so one number certifies every in-hull answer; the golden
// test in the service layer checks it against direct solver runs on
// off-grid points.

// errorBound computes the global multilinear interpolation error bound
// for one row-major field tensor.
func errorBound(t []float64, axes []Axis) float64 {
	// Strides of each axis in the row-major layout (last axis fastest).
	n := len(axes)
	strides := make([]int, n)
	stride := 1
	for a := n - 1; a >= 0; a-- {
		strides[a] = stride
		stride *= len(axes[a].Values)
	}
	total := 0.0
	for a := 0; a < n; a++ {
		na := len(axes[a].Values)
		if na < 2 {
			continue
		}
		st := strides[a]
		maxd := 0.0
		// Walk every line parallel to axis a: indices where the a-th
		// coordinate is 0, then step by the stride.
		for base := 0; base < len(t); base++ {
			if (base/st)%na != 0 {
				continue
			}
			if na == 2 {
				if d := math.Abs(t[base+st] - t[base]); d > maxd {
					maxd = d
				}
				continue
			}
			for i := 1; i < na-1; i++ {
				j := base + i*st
				if d := math.Abs(t[j-st] - 2*t[j] + t[j+st]); d > maxd {
					maxd = d
				}
			}
		}
		if na == 2 {
			total += maxd / 2
		} else {
			total += maxd / 8
		}
	}
	return 2 * total
}
