// Package spatial extends the rumor model with temporal–spatial dynamics:
// a one-dimensional reaction–diffusion SIR system over a lattice of
// patches, the PDE lineage the paper's related work builds on (refs [28],
// [29] — the latter, "Reaction-diffusion modeling of malware propagation",
// is by the same authors). Rumors both react locally (the SIR rates of
// System (1), homogeneous within a patch) and diffuse between neighboring
// patches as users move or cross-post:
//
//	∂S/∂t = α − λ S I − ε1 S + D_S ∂²S/∂x²
//	∂I/∂t = λ S I − ε2 I + D_I ∂²I/∂x²
//
// discretized by the method of lines (central differences in space, this
// repository's ODE integrators in time).
package spatial

import (
	"errors"
	"fmt"
	"math"

	"rumornet/internal/ode"
)

// Boundary selects the spatial boundary condition.
type Boundary int

// Boundary conditions.
const (
	// Neumann (reflecting): no flux through the domain ends; diffusion
	// conserves mass.
	Neumann Boundary = iota + 1
	// Periodic: the domain is a ring.
	Periodic
)

// Config parameterizes the reaction–diffusion model.
type Config struct {
	// Patches is the number of spatial cells (≥ 3).
	Patches int
	// Length is the physical domain length (> 0); the cell width is
	// Length/Patches.
	Length float64
	// Alpha, Lambda, Eps1, Eps2 are the local SIR rates (λ here is the
	// mass-action acceptance rate within a patch).
	Alpha, Lambda, Eps1, Eps2 float64
	// DS and DI are the diffusion coefficients of susceptible and
	// infected individuals (≥ 0).
	DS, DI float64
	// Boundary selects reflecting or periodic ends (default Neumann).
	Boundary Boundary
}

func (c Config) validate() error {
	switch {
	case c.Patches < 3:
		return fmt.Errorf("spatial: need >= 3 patches, got %d", c.Patches)
	case c.Length <= 0:
		return fmt.Errorf("spatial: Length = %g must be positive", c.Length)
	case c.Alpha < 0:
		return fmt.Errorf("spatial: Alpha = %g must be non-negative", c.Alpha)
	case c.Lambda < 0:
		return fmt.Errorf("spatial: Lambda = %g must be non-negative", c.Lambda)
	case c.Eps1 < 0 || c.Eps2 < 0:
		return fmt.Errorf("spatial: negative countermeasure rates (%g, %g)", c.Eps1, c.Eps2)
	case c.DS < 0 || c.DI < 0:
		return fmt.Errorf("spatial: negative diffusion (%g, %g)", c.DS, c.DI)
	case c.Boundary != 0 && c.Boundary != Neumann && c.Boundary != Periodic:
		return fmt.Errorf("spatial: unknown boundary %d", int(c.Boundary))
	}
	return nil
}

// Model is the discretized reaction–diffusion system. The packed state is
// [S_0..S_{P-1}, I_0..I_{P-1}].
type Model struct {
	cfg Config
	h2  float64 // cell width squared
}

// New validates the configuration and builds the model.
func New(cfg Config) (*Model, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Boundary == 0 {
		cfg.Boundary = Neumann
	}
	h := cfg.Length / float64(cfg.Patches)
	return &Model{cfg: cfg, h2: h * h}, nil
}

// Patches returns the number of spatial cells.
func (m *Model) Patches() int { return m.cfg.Patches }

// StateDim returns the packed state dimension, 2·Patches.
func (m *Model) StateDim() int { return 2 * m.cfg.Patches }

// Position returns the center coordinate of patch p.
func (m *Model) Position(p int) float64 {
	h := m.cfg.Length / float64(m.cfg.Patches)
	return (float64(p) + 0.5) * h
}

// RHS implements ode.Func for the method-of-lines system.
func (m *Model) RHS(_ float64, y, dydt []float64) {
	p := m.cfg.Patches
	s := y[:p]
	in := y[p : 2*p]
	c := m.cfg
	for i := 0; i < p; i++ {
		force := c.Lambda * s[i] * in[i]
		dydt[i] = c.Alpha - force - c.Eps1*s[i] + c.DS*m.laplacian(s, i)
		dydt[p+i] = force - c.Eps2*in[i] + c.DI*m.laplacian(in, i)
	}
}

func (m *Model) laplacian(u []float64, i int) float64 {
	p := len(u)
	var left, right float64
	switch m.cfg.Boundary {
	case Periodic:
		left = u[(i-1+p)%p]
		right = u[(i+1)%p]
	default: // Neumann: mirror the boundary cell
		if i == 0 {
			left = u[0]
		} else {
			left = u[i-1]
		}
		if i == p-1 {
			right = u[p-1]
		} else {
			right = u[i+1]
		}
	}
	return (left - 2*u[i] + right) / m.h2
}

// SeedCenter builds an initial condition with susceptible density s0
// everywhere and infected density i0 concentrated in the center patch —
// the localized outbreak whose spreading front the experiments track.
func (m *Model) SeedCenter(s0, i0 float64) ([]float64, error) {
	if s0 < 0 || i0 <= 0 {
		return nil, fmt.Errorf("spatial: need s0 >= 0 and i0 > 0 (got %g, %g)", s0, i0)
	}
	y := make([]float64, m.StateDim())
	p := m.cfg.Patches
	for i := 0; i < p; i++ {
		y[i] = s0
	}
	y[p+p/2] = i0
	return y, nil
}

// Simulate integrates the system over (0, tf] with fixed-step RK4. The
// step must satisfy the diffusion stability bound h²/(2·max(DS, DI)); it
// is clamped to half that bound when too large.
func (m *Model) Simulate(ic []float64, tf, step float64) (*ode.Solution, error) {
	if len(ic) != m.StateDim() {
		return nil, fmt.Errorf("spatial: state dimension %d, want %d", len(ic), m.StateDim())
	}
	if tf <= 0 || step <= 0 {
		return nil, fmt.Errorf("spatial: need positive tf and step (got %g, %g)", tf, step)
	}
	if dmax := math.Max(m.cfg.DS, m.cfg.DI); dmax > 0 {
		if stable := m.h2 / (2 * dmax); step > stable/2 {
			step = stable / 2
		}
	}
	rec := 1
	if total := int(tf / step); total > 2000 {
		rec = total / 2000
	}
	sol, err := ode.SolveFixed(m.RHS, ic, 0, tf, step, &ode.RK4{}, &ode.Options{Record: rec})
	if err != nil {
		return nil, fmt.Errorf("spatial: simulate: %w", err)
	}
	return sol, nil
}

// TotalI returns the spatially integrated infected mass Σ_p I_p·h at each
// sample of the solution.
func (m *Model) TotalI(sol *ode.Solution) []float64 {
	p := m.cfg.Patches
	h := m.cfg.Length / float64(p)
	out := make([]float64, len(sol.Y))
	for j, y := range sol.Y {
		var sum float64
		for i := 0; i < p; i++ {
			sum += y[p+i]
		}
		out[j] = sum * h
	}
	return out
}

// ErrNoFront is returned when a patch never exceeds the threshold.
var ErrNoFront = errors.New("spatial: infection front never reached the patch")

// FrontArrivalTimes returns, for each patch, the first time its infected
// density reaches threshold. Patches never reached report ErrNoFront via
// NaN entries and the returned count of reached patches.
func (m *Model) FrontArrivalTimes(sol *ode.Solution, threshold float64) (times []float64, reached int, err error) {
	if threshold <= 0 {
		return nil, 0, fmt.Errorf("spatial: threshold %g must be positive", threshold)
	}
	p := m.cfg.Patches
	times = make([]float64, p)
	for i := range times {
		times[i] = math.NaN()
	}
	for j, y := range sol.Y {
		for i := 0; i < p; i++ {
			if math.IsNaN(times[i]) && y[p+i] >= threshold {
				times[i] = sol.T[j]
				reached++
			}
		}
	}
	return times, reached, nil
}

// FisherSpeed returns the classical front-propagation speed of the
// linearized system, c* = 2·sqrt(DI·r) with local growth rate
// r = λ·S0 − ε2; the measured front speed of a pulled wave converges to it
// from below on a discrete lattice. It returns 0 when the medium is
// subcritical (r ≤ 0).
func (m *Model) FisherSpeed(s0 float64) float64 {
	r := m.cfg.Lambda*s0 - m.cfg.Eps2
	if r <= 0 || m.cfg.DI == 0 {
		return 0
	}
	return 2 * math.Sqrt(m.cfg.DI*r)
}

// MeasureFrontSpeed fits the arrival time of the rightward-moving front as
// a function of distance from the seed and returns distance/time slope.
// It needs at least five reached patches strictly right of the center.
func (m *Model) MeasureFrontSpeed(sol *ode.Solution, threshold float64) (float64, error) {
	times, _, err := m.FrontArrivalTimes(sol, threshold)
	if err != nil {
		return 0, err
	}
	p := m.cfg.Patches
	center := p / 2
	var xs, ts []float64
	for i := center + 1; i < p; i++ {
		if math.IsNaN(times[i]) {
			break
		}
		xs = append(xs, m.Position(i)-m.Position(center))
		ts = append(ts, times[i])
	}
	if len(xs) < 5 {
		return 0, fmt.Errorf("%w (only %d patches reached right of center)", ErrNoFront, len(xs))
	}
	// Least squares x = c·t + b ⇒ slope c is the speed. Skip the first few
	// patches where the front is still forming.
	skip := len(xs) / 4
	xs, ts = xs[skip:], ts[skip:]
	var st, sx, stt, stx float64
	for i := range xs {
		st += ts[i]
		sx += xs[i]
		stt += ts[i] * ts[i]
		stx += ts[i] * xs[i]
	}
	n := float64(len(xs))
	den := stt - st*st/n
	if den <= 0 {
		return 0, errors.New("spatial: degenerate front fit")
	}
	return (stx - st*sx/n) / den, nil
}
