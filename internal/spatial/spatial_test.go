package spatial

import (
	"math"
	"testing"
	"testing/quick"
)

func baseConfig() Config {
	return Config{
		Patches: 101,
		Length:  100,
		Alpha:   0,
		Lambda:  1.0,
		Eps1:    0,
		Eps2:    0.2,
		DS:      0,
		DI:      0.5,
	}
}

func TestConfigValidation(t *testing.T) {
	good := baseConfig()
	if _, err := New(good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"few patches", func(c *Config) { c.Patches = 2 }},
		{"zero length", func(c *Config) { c.Length = 0 }},
		{"negative alpha", func(c *Config) { c.Alpha = -1 }},
		{"negative lambda", func(c *Config) { c.Lambda = -1 }},
		{"negative eps", func(c *Config) { c.Eps2 = -1 }},
		{"negative diffusion", func(c *Config) { c.DI = -1 }},
		{"bad boundary", func(c *Config) { c.Boundary = 99 }},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			c := good
			tt.mutate(&c)
			if _, err := New(c); err == nil {
				t.Error("want error")
			}
		})
	}
}

// TestDiffusionConservesMass: with reactions off and Neumann boundaries,
// diffusion must conserve the infected mass and flatten the profile.
func TestDiffusionConservesMass(t *testing.T) {
	cfg := baseConfig()
	cfg.Lambda = 0
	cfg.Eps2 = 0
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ic, err := m.SeedCenter(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := m.Simulate(ic, 50, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	mass := m.TotalI(sol)
	for j, v := range mass {
		if math.Abs(v-mass[0]) > 1e-8*mass[0] {
			t.Fatalf("mass drift at sample %d: %v vs %v", j, v, mass[0])
		}
	}
	// Profile flattens: final peak far below initial.
	_, yf := sol.Last()
	p := m.Patches()
	var peak float64
	for i := 0; i < p; i++ {
		if yf[p+i] > peak {
			peak = yf[p+i]
		}
	}
	if peak > 0.5 {
		t.Errorf("final peak %v, want diffusion to spread the pulse", peak)
	}
}

// TestSymmetryPreserved: a centered seed on a symmetric domain must stay
// mirror-symmetric.
func TestSymmetryPreserved(t *testing.T) {
	m, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	ic, err := m.SeedCenter(1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := m.Simulate(ic, 20, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	_, yf := sol.Last()
	p := m.Patches()
	for i := 0; i < p/2; i++ {
		mirror := p - 1 - i
		if math.Abs(yf[p+i]-yf[p+mirror]) > 1e-9 {
			t.Fatalf("asymmetry at patch %d: %v vs %v", i, yf[p+i], yf[p+mirror])
		}
	}
}

// TestTravelingFront: a supercritical medium develops a front whose
// arrival times increase monotonically with distance and whose measured
// speed is of the order of the Fisher speed 2√(D·r).
func TestTravelingFront(t *testing.T) {
	m, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	ic, err := m.SeedCenter(1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := m.Simulate(ic, 40, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	times, reached, err := m.FrontArrivalTimes(sol, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if reached < m.Patches()/2 {
		t.Fatalf("front reached only %d of %d patches", reached, m.Patches())
	}
	// Monotone arrivals rightward of the seed.
	center := m.Patches() / 2
	prev := times[center]
	for i := center + 1; i < m.Patches() && !math.IsNaN(times[i]); i++ {
		if times[i] < prev {
			t.Fatalf("front arrival not monotone at patch %d", i)
		}
		prev = times[i]
	}

	speed, err := m.MeasureFrontSpeed(sol, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	fisher := m.FisherSpeed(1)
	if fisher <= 0 {
		t.Fatal("expected supercritical medium")
	}
	if speed < fisher/2 || speed > 2*fisher {
		t.Errorf("measured front speed %v not within 2x of Fisher speed %v", speed, fisher)
	}
}

// TestSubcriticalNoFront: with blocking above the local growth rate the
// rumor cannot invade; distant patches are never reached.
func TestSubcriticalNoFront(t *testing.T) {
	cfg := baseConfig()
	cfg.Eps2 = 1.5 // λ·S0 = 1 < ε2
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ic, err := m.SeedCenter(1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := m.Simulate(ic, 40, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if m.FisherSpeed(1) != 0 {
		t.Error("subcritical medium reports positive Fisher speed")
	}
	if _, err := m.MeasureFrontSpeed(sol, 0.05); err == nil {
		t.Error("subcritical medium: want ErrNoFront from speed fit")
	}
	_, reached, err := m.FrontArrivalTimes(sol, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if reached > m.Patches()/4 {
		t.Errorf("front reached %d patches despite subcritical medium", reached)
	}
}

func TestPeriodicBoundary(t *testing.T) {
	cfg := baseConfig()
	cfg.Boundary = Periodic
	cfg.Lambda = 0
	cfg.Eps2 = 0
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Seed at the edge: on a ring the mass wraps and still conserves.
	ic := make([]float64, m.StateDim())
	ic[m.Patches()] = 1 // I at patch 0
	sol, err := m.Simulate(ic, 30, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	mass := m.TotalI(sol)
	if math.Abs(mass[len(mass)-1]-mass[0]) > 1e-8*mass[0] {
		t.Errorf("ring mass drift: %v vs %v", mass[len(mass)-1], mass[0])
	}
	// Wrap-around: the patch left of the seed (last patch) is populated.
	_, yf := sol.Last()
	if yf[m.StateDim()-1] <= 0 {
		t.Error("no wrap-around diffusion on the ring")
	}
}

func TestRHSHandComputed(t *testing.T) {
	cfg := Config{
		Patches: 3, Length: 3,
		Alpha: 0.1, Lambda: 2, Eps1: 0.3, Eps2: 0.4,
		DS: 0.5, DI: 0.7,
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// h = 1. State: S = [1, 2, 3], I = [0.1, 0.2, 0.3].
	y := []float64{1, 2, 3, 0.1, 0.2, 0.3}
	dydt := make([]float64, 6)
	m.RHS(0, y, dydt)
	// Patch 1 (interior): lapS = 1 − 4 + 3 = 0; lapI = 0.1 − 0.4 + 0.3 = 0.
	wantS1 := 0.1 - 2*2*0.2 - 0.3*2
	if math.Abs(dydt[1]-wantS1) > 1e-12 {
		t.Errorf("dS_1 = %v, want %v", dydt[1], wantS1)
	}
	// Patch 0 (Neumann): lapS = (1 − 2 + 2) = 1; dS_0 = α − λSI − ε1·S + DS·1.
	wantS0 := 0.1 - 2*1*0.1 - 0.3*1 + 0.5*1
	if math.Abs(dydt[0]-wantS0) > 1e-12 {
		t.Errorf("dS_0 = %v, want %v", dydt[0], wantS0)
	}
	// Patch 2 infected (Neumann right): lapI = 0.2 − 0.6 + 0.3 = −0.1.
	wantI2 := 2*3*0.3 - 0.4*0.3 + 0.7*(-0.1)
	if math.Abs(dydt[5]-wantI2) > 1e-12 {
		t.Errorf("dI_2 = %v, want %v", dydt[5], wantI2)
	}
}

func TestSimulateValidation(t *testing.T) {
	m, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Simulate([]float64{1}, 10, 0.1); err == nil {
		t.Error("bad dimension: want error")
	}
	ic, err := m.SeedCenter(1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Simulate(ic, -1, 0.1); err == nil {
		t.Error("negative tf: want error")
	}
	if _, err := m.Simulate(ic, 1, 0); err == nil {
		t.Error("zero step: want error")
	}
	if _, err := m.SeedCenter(-1, 0.1); err == nil {
		t.Error("negative s0: want error")
	}
	if _, err := m.SeedCenter(1, 0); err == nil {
		t.Error("zero i0: want error")
	}
	sol, err := m.Simulate(ic, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.FrontArrivalTimes(sol, 0); err == nil {
		t.Error("zero threshold: want error")
	}
}

func TestQuickDiffusionStability(t *testing.T) {
	// Simulate with random (clamped) steps: the stability clamp must keep
	// the state finite regardless of the requested step.
	f := func(rawStep uint8) bool {
		m, err := New(baseConfig())
		if err != nil {
			return false
		}
		ic, err := m.SeedCenter(1, 0.3)
		if err != nil {
			return false
		}
		step := 0.01 + float64(rawStep)/255*10 // absurd steps allowed
		sol, err := m.Simulate(ic, 5, step)
		if err != nil {
			return false
		}
		_, yf := sol.Last()
		for _, v := range yf {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSimulateFront(b *testing.B) {
	m, err := New(baseConfig())
	if err != nil {
		b.Fatal(err)
	}
	ic, err := m.SeedCenter(1, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Simulate(ic, 10, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}
