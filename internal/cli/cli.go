// Package cli centralizes the exit-code discipline of the cmd/ binaries:
//
//	0 — success (including -h/-help via flag.ErrHelp)
//	1 — runtime failure (I/O, solver divergence, service errors)
//	2 — usage failure (unknown flags, out-of-range flag values)
//
// Commands return errors from a testable run() function; main exits with
// os.Exit(cli.Exit(name, err)). Flag-validation failures are built with
// Usagef (or wrapped with ErrUsage) so they map to exit code 2, matching
// the convention of the flag package and most Unix tools.
package cli

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"

	"rumornet/internal/obs"
)

// ErrUsage marks an error as a command-line usage failure (exit code 2).
var ErrUsage = errors.New("usage")

// Usagef builds a usage error (exit code 2) with a formatted message.
func Usagef(format string, a ...any) error {
	return fmt.Errorf("%w: %s", ErrUsage, fmt.Sprintf(format, a...))
}

// WrapParse normalizes a flag.FlagSet.Parse error: flag.ErrHelp passes
// through untouched (exit 0, help already printed), anything else becomes a
// usage error (exit 2, message already printed by the FlagSet).
func WrapParse(err error) error {
	if err == nil || errors.Is(err, flag.ErrHelp) {
		return err
	}
	return fmt.Errorf("%w: %v", ErrUsage, err)
}

// LogFlags holds the shared -log-level/-log-format flag values registered
// by AddLogFlags. Every cmd/ binary exposes the same pair with the same
// vocabulary, so operators configure logging identically across the suite.
type LogFlags struct {
	Level  *string
	Format *string
}

// AddLogFlags registers -log-level and -log-format on fs with the shared
// defaults (info, text). Call Logger after fs.Parse to validate the values
// and build the logger.
func AddLogFlags(fs *flag.FlagSet) *LogFlags {
	return &LogFlags{
		Level:  fs.String("log-level", "info", "log verbosity: debug, info, warn or error"),
		Format: fs.String("log-format", "text", "log output format: text or json"),
	}
}

// Logger validates the parsed flag values and builds the command's logger
// writing to w. Invalid values are usage errors (exit code 2), consistent
// with every other flag-validation failure.
func (lf *LogFlags) Logger(w io.Writer) (*slog.Logger, error) {
	lg, err := obs.NewLogger(w, *lf.Level, *lf.Format)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUsage, err)
	}
	return lg, nil
}

// Code maps an error from a command's run function to its exit code.
func Code(err error) int {
	switch {
	case err == nil, errors.Is(err, flag.ErrHelp):
		return 0
	case errors.Is(err, ErrUsage):
		return 2
	default:
		return 1
	}
}

// Exit reports err on stderr (unless nil or help) and returns the exit
// code for os.Exit. It is split from os.Exit so tests can assert codes.
func Exit(name string, err error) int {
	return exitTo(os.Stderr, name, err)
}

func exitTo(w io.Writer, name string, err error) int {
	if err != nil && !errors.Is(err, flag.ErrHelp) {
		fmt.Fprintf(w, "%s: %v\n", name, err)
	}
	return Code(err)
}
