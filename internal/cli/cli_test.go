package cli

import (
	"errors"
	"flag"
	"fmt"
	"strings"
	"testing"
)

func TestCode(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, 0},
		{"help", flag.ErrHelp, 0},
		{"wrapped help", fmt.Errorf("parse: %w", flag.ErrHelp), 0},
		{"usage", Usagef("-tf must be positive, got %g", -1.0), 2},
		{"wrapped usage", fmt.Errorf("rumorsim: %w", ErrUsage), 2},
		{"runtime", errors.New("disk on fire"), 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Code(c.err); got != c.want {
				t.Errorf("Code(%v) = %d, want %d", c.err, got, c.want)
			}
		})
	}
}

func TestUsagefMessage(t *testing.T) {
	err := Usagef("bad value %d", 7)
	if !errors.Is(err, ErrUsage) {
		t.Fatalf("Usagef result does not wrap ErrUsage: %v", err)
	}
	if want := "bad value 7"; !strings.Contains(err.Error(), want) {
		t.Errorf("Usagef message %q missing %q", err, want)
	}
}

func TestWrapParse(t *testing.T) {
	if err := WrapParse(nil); err != nil {
		t.Errorf("WrapParse(nil) = %v", err)
	}
	if err := WrapParse(flag.ErrHelp); !errors.Is(err, flag.ErrHelp) {
		t.Errorf("WrapParse(ErrHelp) = %v, want ErrHelp", err)
	}
	if err := WrapParse(errors.New("flag provided but not defined")); Code(err) != 2 {
		t.Errorf("WrapParse(parse error): Code = %d, want 2", Code(err))
	}
}

// TestLogFlags covers the shared -log-level/-log-format pair: defaults,
// every accepted value, and the exit-2 mapping for rejected ones.
func TestLogFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"defaults", nil, 0},
		{"debug json", []string{"-log-level", "debug", "-log-format", "json"}, 0},
		{"warn text", []string{"-log-level", "warn", "-log-format", "text"}, 0},
		{"error level", []string{"-log-level", "error"}, 0},
		{"mixed case", []string{"-log-level", "Info", "-log-format", "JSON"}, 0},
		{"bad level", []string{"-log-level", "loud"}, 2},
		{"bad format", []string{"-log-format", "yaml"}, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			fs := flag.NewFlagSet("x", flag.ContinueOnError)
			lf := AddLogFlags(fs)
			if err := fs.Parse(c.args); err != nil {
				t.Fatal(err)
			}
			var buf strings.Builder
			lg, err := lf.Logger(&buf)
			if got := Code(err); got != c.code {
				t.Fatalf("Logger(%v): Code = %d (err %v), want %d", c.args, got, err, c.code)
			}
			if c.code != 0 {
				return
			}
			lg.Error("probe", "k", 1)
			if !strings.Contains(buf.String(), "probe") {
				t.Errorf("error-level record not written: %q", buf.String())
			}
		})
	}
}

func TestExitWritesStderrMessage(t *testing.T) {
	var buf strings.Builder
	if got := exitTo(&buf, "toolname", errors.New("boom")); got != 1 {
		t.Errorf("exit code = %d, want 1", got)
	}
	if out := buf.String(); !strings.Contains(out, "toolname: boom") {
		t.Errorf("stderr %q missing prefixed message", out)
	}
	buf.Reset()
	if got := exitTo(&buf, "toolname", flag.ErrHelp); got != 0 || buf.Len() != 0 {
		t.Errorf("help: code %d output %q, want 0 and empty", got, buf.String())
	}
}
