package control

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"rumornet/internal/core"
)

// Hamiltonian evaluates the paper's Hamiltonian (Equation (14)) at one
// instant:
//
//	H = Σ_i [c1 ε1² S_i² + c2 ε2² I_i²]
//	  + Σ_i ψ_i (α − λ_i S_i Θ − ε1 S_i)
//	  + Σ_i φ_i (λ_i S_i Θ − ε2 I_i).
func Hamiltonian(m *core.Model, y, psi, phi []float64, e1, e2 float64, cost Cost) float64 {
	n := m.N()
	theta := m.Theta(y)
	alpha := m.Params().Alpha
	var h float64
	for i := 0; i < n; i++ {
		s, inf := y[i], y[n+i]
		force := m.Lambda(i) * s * theta
		h += cost.C1*e1*e1*s*s + cost.C2*e2*e2*inf*inf
		h += psi[i] * (alpha - force - e1*s)
		h += phi[i] * (force - e2*inf)
	}
	return h
}

// HamiltonianSeries recomputes the state and co-state trajectories under a
// policy's final schedule and returns H(t) on the schedule grid. Along an
// exact Pontryagin extremal of this autonomous problem H is constant in
// time; the flatness of the returned series is therefore a direct
// optimality diagnostic for the FBSM output.
func HamiltonianSeries(m *core.Model, ic []float64, pol *Policy, opts Options) ([]float64, error) {
	if pol == nil || pol.Schedule == nil {
		return nil, errors.New("control: nil policy")
	}
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	sched := pol.Schedule
	ctx := context.Background()
	tr, err := simulateOnGrid(ctx, m, ic, sched, nil, 0)
	if err != nil {
		return nil, fmt.Errorf("control: hamiltonian forward pass: %w", err)
	}
	psi, phi, err := backwardSweep(ctx, m, tr, sched, opts, newSweepArena(m.N(), len(sched.T)))
	if err != nil {
		return nil, fmt.Errorf("control: hamiltonian backward pass: %w", err)
	}
	hs := make([]float64, len(sched.T))
	for j := range sched.T {
		hs[j] = Hamiltonian(m, tr.Y[j], psi[j], phi[j], sched.Eps1[j], sched.Eps2[j], opts.Cost)
	}
	return hs, nil
}

// scheduleJSON is the serialized form of a Schedule.
type scheduleJSON struct {
	T    []float64 `json:"t"`
	Eps1 []float64 `json:"eps1"`
	Eps2 []float64 `json:"eps2"`
}

// WriteJSON serializes the schedule as JSON ({"t": [...], "eps1": [...],
// "eps2": [...]}), suitable for handing to an operations dashboard.
func (s *Schedule) WriteJSON(w io.Writer) error {
	if err := s.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(scheduleJSON{T: s.T, Eps1: s.Eps1, Eps2: s.Eps2}); err != nil {
		return fmt.Errorf("control: encode schedule: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("control: flush schedule: %w", err)
	}
	return nil
}

// ReadScheduleJSON parses a schedule previously written by WriteJSON and
// validates it.
func ReadScheduleJSON(r io.Reader) (*Schedule, error) {
	var dto scheduleJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&dto); err != nil {
		return nil, fmt.Errorf("control: decode schedule: %w", err)
	}
	s := &Schedule{T: dto.T, Eps1: dto.Eps1, Eps2: dto.Eps2}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
