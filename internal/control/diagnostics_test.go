package control

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func hamiltonianSpread(hs []float64) (spread, scale float64) {
	min, max := hs[0], hs[0]
	var sum float64
	for _, h := range hs {
		if h < min {
			min = h
		}
		if h > max {
			max = h
		}
		sum += h
	}
	mean := sum / float64(len(hs))
	return max - min, math.Abs(mean) + 1e-12
}

// TestHamiltonianConstantAlongOptimum is the Pontryagin optimality
// diagnostic: for this autonomous problem, H is constant in time along an
// extremal, so the FBSM policy's H series must be nearly flat.
func TestHamiltonianConstantAlongOptimum(t *testing.T) {
	m := controlModel(t)
	ic := controlIC(t, m)
	opts := Options{Grid: testGrid, Eps1Max: testEps1Max, Eps2Max: testEps2Max, Cost: testCost}
	pol, err := Optimize(m, ic, testTf, opts)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := HamiltonianSeries(m, ic, pol, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != len(pol.Schedule.T) {
		t.Fatalf("series length %d, want %d", len(hs), len(pol.Schedule.T))
	}
	spread, scale := hamiltonianSpread(hs)
	if spread > 0.15*scale {
		t.Errorf("H spread %v vs scale %v: not constant along the optimum", spread, scale)
	}
}

// TestHamiltonianFlatterThanSuboptimal: a non-optimal constant policy's H
// (with its own co-states) varies more than the optimum's.
func TestHamiltonianFlatterThanSuboptimal(t *testing.T) {
	m := controlModel(t)
	ic := controlIC(t, m)
	opts := Options{Grid: testGrid, Eps1Max: testEps1Max, Eps2Max: testEps2Max, Cost: testCost}
	pol, err := Optimize(m, ic, testTf, opts)
	if err != nil {
		t.Fatal(err)
	}
	optHS, err := HamiltonianSeries(m, ic, pol, opts)
	if err != nil {
		t.Fatal(err)
	}
	subSched, err := NewConstantSchedule(testTf, testGrid, testEps1Max, 0)
	if err != nil {
		t.Fatal(err)
	}
	subHS, err := HamiltonianSeries(m, ic, &Policy{Schedule: subSched}, opts)
	if err != nil {
		t.Fatal(err)
	}
	optSpread, optScale := hamiltonianSpread(optHS)
	subSpread, subScale := hamiltonianSpread(subHS)
	if optSpread/optScale >= subSpread/subScale {
		t.Errorf("optimal H relative spread %v not below suboptimal %v",
			optSpread/optScale, subSpread/subScale)
	}
}

func TestHamiltonianSeriesValidation(t *testing.T) {
	m := controlModel(t)
	ic := controlIC(t, m)
	opts := Options{Eps1Max: 1, Eps2Max: 1, Cost: testCost}
	if _, err := HamiltonianSeries(m, ic, nil, opts); err == nil {
		t.Error("nil policy: want error")
	}
	if _, err := HamiltonianSeries(m, ic, &Policy{}, opts); err == nil {
		t.Error("nil schedule: want error")
	}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	s, err := NewConstantSchedule(10, 4, 0.1, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	s.Eps1[2] = 0.35
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"eps1"`) {
		t.Errorf("JSON missing eps1 field: %s", buf.String())
	}
	got, err := ReadScheduleJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Horizon() != 10 || got.Eps1[2] != 0.35 || got.Eps2[0] != 0.2 {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestReadScheduleJSONRejectsInvalid(t *testing.T) {
	cases := []string{
		`not json`,
		`{"t":[0],"eps1":[0],"eps2":[0]}`,        // single node
		`{"t":[0,1],"eps1":[0],"eps2":[0,0]}`,    // length mismatch
		`{"t":[0,1],"eps1":[0,-1],"eps2":[0,0]}`, // negative control
		`{"t":[1,0],"eps1":[0,0],"eps2":[0,0]}`,  // non-increasing grid
	}
	for _, in := range cases {
		if _, err := ReadScheduleJSON(strings.NewReader(in)); err == nil {
			t.Errorf("ReadScheduleJSON(%q): want error", in)
		}
	}
}

func TestWriteJSONRejectsInvalidSchedule(t *testing.T) {
	s := &Schedule{T: []float64{0}}
	if err := s.WriteJSON(&bytes.Buffer{}); err == nil {
		t.Error("invalid schedule: want error")
	}
}
