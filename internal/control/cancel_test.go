package control

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestOptimizeCtxCancelled(t *testing.T) {
	m := controlModel(t)
	ic := controlIC(t, m)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := Options{Grid: testGrid, Eps1Max: testEps1Max, Eps2Max: testEps2Max, Cost: testCost}
	if _, err := OptimizeCtx(ctx, m, ic, testTf, opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("OptimizeCtx with cancelled ctx: %v, want context.Canceled", err)
	}
}

func TestOptimizeCtxDeadline(t *testing.T) {
	m := controlModel(t)
	ic := controlIC(t, m)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	// A fine grid guarantees the deadline fires mid-sweep, so the error
	// must surface from inside the forward/backward integrations.
	opts := Options{Grid: 100000, Eps1Max: testEps1Max, Eps2Max: testEps2Max, Cost: testCost}
	if _, err := OptimizeCtx(ctx, m, ic, testTf, opts); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("OptimizeCtx past deadline: %v, want context.DeadlineExceeded", err)
	}
}

func TestEvaluateCostCtxCancelled(t *testing.T) {
	m := controlModel(t)
	ic := controlIC(t, m)
	s, err := NewConstantSchedule(testTf, testGrid, 0.1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := EvaluateCostCtx(ctx, m, ic, s, testCost); !errors.Is(err, context.Canceled) {
		t.Fatalf("EvaluateCostCtx with cancelled ctx: %v, want context.Canceled", err)
	}
}

// TestOptimizeBackgroundUnaffected pins the compatibility contract: the
// ctx-free wrappers behave exactly as before the context plumbing.
func TestOptimizeBackgroundUnaffected(t *testing.T) {
	m := controlModel(t)
	ic := controlIC(t, m)
	opts := Options{Grid: 50, MaxIter: 3, Eps1Max: testEps1Max, Eps2Max: testEps2Max, Cost: testCost}
	pol, err := Optimize(m, ic, 10, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(pol.Schedule.T) != 51 {
		t.Errorf("schedule nodes = %d, want 51", len(pol.Schedule.T))
	}
}
