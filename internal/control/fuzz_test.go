package control

import (
	"strings"
	"testing"
)

// FuzzReadScheduleJSON checks the schedule decoder never panics and every
// accepted schedule validates.
func FuzzReadScheduleJSON(f *testing.F) {
	f.Add(`{"t":[0,1],"eps1":[0.1,0.2],"eps2":[0,0]}`)
	f.Add(`{"t":[1,0],"eps1":[0,0],"eps2":[0,0]}`)
	f.Add(`{}`)
	f.Add(`garbage`)
	f.Fuzz(func(t *testing.T, input string) {
		s, err := ReadScheduleJSON(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("accepted schedule fails validation: %v", err)
		}
		// Interpolation must be total on accepted schedules.
		_ = s.Eps1At(s.Horizon() / 2)
		_ = s.Eps2At(-1)
	})
}
