package control

import (
	"testing"

	"rumornet/internal/obs"
)

// TestOptimizeProgress checks the FBSM telemetry contract: one StageFBSM
// event per iteration carrying a positive residual and the sweep's objective,
// in-sweep forward/backward checkpoints, and no effect on the result.
func TestOptimizeProgress(t *testing.T) {
	m := controlModel(t)
	ic := controlIC(t, m)
	opts := Options{
		Grid: testGrid, MaxIter: 8, Tol: 1e-9,
		Eps1Max: testEps1Max, Eps2Max: testEps2Max, Cost: testCost,
	}

	plain, err := Optimize(m, ic, testTf, opts)
	if err != nil {
		t.Fatal(err)
	}

	var iters []obs.Event
	var forward, backward int
	opts.Progress = func(ev obs.Event) {
		switch ev.Stage {
		case obs.StageFBSM:
			iters = append(iters, ev)
		case obs.StageFBSMForward:
			forward++
		case obs.StageFBSMBackward:
			backward++
		default:
			t.Errorf("unexpected stage %q", ev.Stage)
		}
	}
	opts.ProgressEvery = 50
	traced, err := Optimize(m, ic, testTf, opts)
	if err != nil {
		t.Fatal(err)
	}

	if traced.Iterations != plain.Iterations || traced.Cost.Total != plain.Cost.Total {
		t.Errorf("progress changed the result: %d/%g vs %d/%g",
			traced.Iterations, traced.Cost.Total, plain.Iterations, plain.Cost.Total)
	}
	if len(iters) != traced.Iterations {
		t.Fatalf("StageFBSM events = %d, want one per iteration (%d)", len(iters), traced.Iterations)
	}
	for i, ev := range iters {
		if ev.Step != i+1 || ev.Total != opts.MaxIter {
			t.Errorf("iteration event %d: Step=%d Total=%d", i, ev.Step, ev.Total)
		}
		if ev.Value <= 0 {
			t.Errorf("iteration %d: non-positive residual %g", i+1, ev.Value)
		}
		if ev.Cost <= 0 {
			t.Errorf("iteration %d: non-positive objective %g", i+1, ev.Cost)
		}
		if ev.T != testTf {
			t.Errorf("iteration %d: T=%g, want horizon %g", i+1, ev.T, testTf)
		}
	}
	// With grid 200 and cadence 50, each sweep's integrations emit ~4
	// checkpoints apiece; the final EvaluateCost pass is untraced.
	wantPerSweep := testGrid / 50
	if forward != traced.Iterations*wantPerSweep {
		t.Errorf("forward checkpoints = %d, want %d per sweep over %d sweeps",
			forward, wantPerSweep, traced.Iterations)
	}
	if backward != traced.Iterations*wantPerSweep {
		t.Errorf("backward checkpoints = %d, want %d per sweep over %d sweeps",
			backward, wantPerSweep, traced.Iterations)
	}
}

// The residual series itself should decay: the last reported residual must
// be well below the first on a convergent problem.
func TestOptimizeProgressResidualDecays(t *testing.T) {
	m := controlModel(t)
	ic := controlIC(t, m)
	var residuals []float64
	opts := Options{
		Grid: testGrid, MaxIter: 150, Tol: 1e-4,
		Eps1Max: testEps1Max, Eps2Max: testEps2Max, Cost: testCost,
		Progress: func(ev obs.Event) {
			if ev.Stage == obs.StageFBSM {
				residuals = append(residuals, ev.Value)
			}
		},
	}
	pol, err := Optimize(m, ic, testTf, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !pol.Converged {
		t.Fatalf("test problem should converge within %d iterations", opts.MaxIter)
	}
	first, last := residuals[0], residuals[len(residuals)-1]
	if last > opts.Tol || last >= first {
		t.Errorf("residuals did not decay: first %g, last %g", first, last)
	}
}
