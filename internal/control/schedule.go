// Package control implements Section IV of the paper: optimized
// countermeasures via Pontryagin's maximum principle. The two controls are
// ε1(t) (spreading truth to immunize susceptibles, unit cost c1) and ε2(t)
// (blocking infected spreaders, unit cost c2); the objective (13) is
//
//	J = Σ_i I_i(tf) + ∫_0^tf Σ_i (c1 ε1²(t) S_i²(t) + c2 ε2²(t) I_i²(t)) dt.
//
// The solver is the standard forward–backward sweep method (FBSM): iterate
// a forward state integration, a backward co-state integration with the
// transversality conditions ψ_i(tf) = 0, φ_i(tf) = 1, and the clamped
// stationary-point control update of Equations (18)–(19), with relaxation.
//
// The package also provides the paper's comparison baseline: a heuristic
// feedback controller that reacts only to the current infection state
// (Fig. 4(c)).
package control

import (
	"errors"
	"fmt"
	"math"

	"rumornet/internal/floats"
)

// Schedule is a pair of piecewise-linear control signals sampled on a
// uniform time grid over [0, tf].
type Schedule struct {
	// T is the uniform grid, T[0] = 0 and T[len-1] = tf.
	T []float64
	// Eps1 and Eps2 are the control values at the grid nodes.
	Eps1, Eps2 []float64
}

// NewConstantSchedule builds a schedule with n+1 nodes holding constant
// controls (the FBSM initial guess).
func NewConstantSchedule(tf float64, n int, eps1, eps2 float64) (*Schedule, error) {
	if tf <= 0 {
		return nil, fmt.Errorf("control: non-positive horizon %g", tf)
	}
	if n < 1 {
		return nil, fmt.Errorf("control: need at least 1 grid interval, got %d", n)
	}
	if eps1 < 0 || eps2 < 0 {
		return nil, fmt.Errorf("control: negative control (%g, %g)", eps1, eps2)
	}
	s := &Schedule{
		T:    floats.Linspace(0, tf, n+1),
		Eps1: make([]float64, n+1),
		Eps2: make([]float64, n+1),
	}
	floats.Fill(s.Eps1, eps1)
	floats.Fill(s.Eps2, eps2)
	return s, nil
}

// Validate checks the structural invariants of the schedule.
func (s *Schedule) Validate() error {
	if len(s.T) < 2 {
		return errors.New("control: schedule needs at least 2 nodes")
	}
	if len(s.Eps1) != len(s.T) || len(s.Eps2) != len(s.T) {
		return fmt.Errorf("control: schedule lengths T=%d eps1=%d eps2=%d",
			len(s.T), len(s.Eps1), len(s.Eps2))
	}
	// NaN compares false against everything, so the monotonicity and sign
	// checks below would silently pass a NaN-poisoned schedule; reject
	// non-finite values explicitly first.
	for i, t := range s.T {
		if math.IsNaN(t) || math.IsInf(t, 0) {
			return fmt.Errorf("control: non-finite grid time %g at node %d", t, i)
		}
	}
	for i := 1; i < len(s.T); i++ {
		if s.T[i] <= s.T[i-1] {
			return fmt.Errorf("control: grid not increasing at node %d", i)
		}
	}
	for i := range s.Eps1 {
		if math.IsNaN(s.Eps1[i]) || math.IsInf(s.Eps1[i], 0) ||
			math.IsNaN(s.Eps2[i]) || math.IsInf(s.Eps2[i], 0) {
			return fmt.Errorf("control: non-finite control (ε1=%g, ε2=%g) at node %d",
				s.Eps1[i], s.Eps2[i], i)
		}
		if s.Eps1[i] < 0 || s.Eps2[i] < 0 {
			return fmt.Errorf("control: negative control at node %d", i)
		}
	}
	return nil
}

// Horizon returns tf.
func (s *Schedule) Horizon() float64 { return s.T[len(s.T)-1] }

// Eps1At returns ε1(t) by linear interpolation (clamped at the endpoints).
func (s *Schedule) Eps1At(t float64) float64 { return s.interp(s.Eps1, t) }

// Eps2At returns ε2(t) by linear interpolation (clamped at the endpoints).
func (s *Schedule) Eps2At(t float64) float64 { return s.interp(s.Eps2, t) }

func (s *Schedule) interp(vals []float64, t float64) float64 {
	n := len(s.T)
	if t <= s.T[0] {
		return vals[0]
	}
	if t >= s.T[n-1] {
		return vals[n-1]
	}
	// The grid is uniform; index directly.
	h := (s.T[n-1] - s.T[0]) / float64(n-1)
	j := int((t - s.T[0]) / h)
	if j >= n-1 {
		j = n - 2
	}
	w := (t - s.T[j]) / (s.T[j+1] - s.T[j])
	return vals[j]*(1-w) + vals[j+1]*w
}

// Clone returns a deep copy of the schedule.
func (s *Schedule) Clone() *Schedule {
	return &Schedule{
		T:    floats.Clone(s.T),
		Eps1: floats.Clone(s.Eps1),
		Eps2: floats.Clone(s.Eps2),
	}
}
