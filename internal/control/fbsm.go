package control

import (
	"context"
	"errors"
	"fmt"
	"math"

	"rumornet/internal/core"
	"rumornet/internal/floats"
	"rumornet/internal/obs"
	"rumornet/internal/ode"
)

// Adjoint selects the co-state system integrated in the backward sweep.
type Adjoint int

// Adjoint variants.
const (
	// AdjointExact is the mathematically exact adjoint of System (1),
	// including the cross-group coupling of Θ through every group:
	//
	//	dφ_i/dt = −2 c2 ε2² I_i + (φ(k_i)/⟨k⟩) Σ_j (ψ_j − φ_j) λ_j S_j + φ_i ε2.
	AdjointExact Adjoint = iota + 1
	// AdjointDiagonal is the paper's Equation (16), which keeps only the
	// i = j term of the coupling sum. Provided for ablation; see DESIGN.md.
	AdjointDiagonal
)

// Options configures Optimize.
type Options struct {
	// Grid is the number of uniform time intervals (default 1000).
	Grid int
	// MaxIter bounds the FBSM iterations (default 100).
	MaxIter int
	// Tol is the convergence tolerance on the relative L1 change of both
	// controls between sweeps (default 1e-4).
	Tol float64
	// Relax is the control-update relaxation θ ∈ (0, 1]:
	// u ← (1−θ)u + θ·clamp(u*) (default 0.5).
	Relax float64
	// Adjoint selects the co-state system (default AdjointExact).
	Adjoint Adjoint
	// Eps1Max and Eps2Max are the admissible-control upper bounds of
	// Equation (19); both required (> 0).
	Eps1Max, Eps2Max float64
	// Cost holds the unit costs c1, c2; both must be positive (the
	// stationary controls (18) divide by them).
	Cost Cost
	// TerminalWeight scales the terminal objective: J = w·ΣI(tf) + ∫(...).
	// The paper's objective has w = 1 (default); OptimizeToTarget raises w
	// to force the terminal infection below a target.
	TerminalWeight float64
	// Progress, if non-nil, receives telemetry while the sweep runs: one
	// StageFBSM event per iteration carrying the relative control change
	// (Value) and the objective J of the schedule just swept (Cost), plus
	// StageFBSMForward / StageFBSMBackward checkpoints from inside the
	// integrations so even a single huge-grid sweep is observable. The
	// callback must be cheap and concurrency-safe; it never alters the
	// iteration itself.
	Progress obs.Progress
	// ProgressEvery is the step cadence of the in-sweep checkpoints
	// (default 256 integration steps).
	ProgressEvery int
}

func (o Options) withDefaults() Options {
	if o.Grid <= 0 {
		o.Grid = 1000
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 100
	}
	if o.Tol <= 0 {
		o.Tol = 1e-4
	}
	if o.Relax <= 0 || o.Relax > 1 {
		o.Relax = 0.5
	}
	if o.Adjoint == 0 {
		o.Adjoint = AdjointExact
	}
	if o.TerminalWeight <= 0 {
		o.TerminalWeight = 1
	}
	return o
}

func (o Options) validate() error {
	if o.Eps1Max <= 0 || o.Eps2Max <= 0 {
		return fmt.Errorf("control: admissible bounds required (Eps1Max=%g, Eps2Max=%g)",
			o.Eps1Max, o.Eps2Max)
	}
	if o.Cost.C1 <= 0 || o.Cost.C2 <= 0 {
		return fmt.Errorf("control: positive unit costs required (c1=%g, c2=%g)",
			o.Cost.C1, o.Cost.C2)
	}
	if o.Adjoint != AdjointExact && o.Adjoint != AdjointDiagonal {
		return fmt.Errorf("control: unknown adjoint variant %d", int(o.Adjoint))
	}
	return nil
}

// Policy is the result of an FBSM run.
type Policy struct {
	// Schedule holds the optimized ε1(t), ε2(t).
	Schedule *Schedule
	// Cost is the objective breakdown of the final schedule (with unit
	// terminal weight, i.e. the paper's J).
	Cost Breakdown
	// Trajectory is the state trajectory under the final schedule.
	Trajectory *core.Trajectory
	// Iterations is the number of sweeps performed.
	Iterations int
	// Converged reports whether the control change fell below Tol.
	Converged bool
}

// Optimize runs the forward–backward sweep method for the optimal
// countermeasure problem over (0, tf] from the packed initial condition ic.
func Optimize(m *core.Model, ic []float64, tf float64, opts Options) (*Policy, error) {
	return OptimizeCtx(context.Background(), m, ic, tf, opts)
}

// OptimizeCtx is Optimize with cancellation: ctx is polled between sweep
// stages and inside the forward/backward integrations, so a runaway sweep
// (e.g. a pathological c1/c2 choice that never converges) can be
// interrupted programmatically instead of spinning until MaxIter.
func OptimizeCtx(ctx context.Context, m *core.Model, ic []float64, tf float64, opts Options) (*Policy, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if len(ic) != m.StateDim() {
		return nil, fmt.Errorf("control: initial condition dimension %d, want %d",
			len(ic), m.StateDim())
	}
	// Initial guess: mid-range constant controls.
	sched, err := NewConstantSchedule(tf, opts.Grid, opts.Eps1Max/2, opts.Eps2Max/2)
	if err != nil {
		return nil, err
	}

	n := m.N()
	ng := len(sched.T)
	policy := &Policy{}

	// Per-run arena shared by every backward sweep: the ψ/φ row tables, the
	// co-state initial condition, the interpolation buffer consumed by the
	// co-state RHS, and the RK4 stepper scratch are all allocated once here
	// instead of once per sweep (and, for the interpolation buffer, once
	// per RHS evaluation). MaxIter sweeps then run allocation-free apart
	// from the recorded trajectories themselves.
	arena := newSweepArena(n, ng)

	// Rebadge the forward integration's StageODE checkpoints so a consumer
	// can tell the FBSM forward sweep apart from a plain simulation job.
	// The whole event is forwarded, so the MinI/MassErr invariant fields
	// core computes reach internal/obs/invariant for forward sweeps too.
	var fwdProg obs.Progress
	if opts.Progress != nil {
		prog := opts.Progress
		fwdProg = func(ev obs.Event) {
			ev.Stage = obs.StageFBSMForward
			prog(ev)
		}
	}

	for iter := 1; iter <= opts.MaxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("control: sweep %d: %w", iter, err)
		}

		// (1) Forward sweep: state under current controls.
		tr, err := simulateOnGrid(ctx, m, ic, sched, fwdProg, opts.ProgressEvery)
		if err != nil {
			return nil, fmt.Errorf("control: forward sweep %d: %w", iter, err)
		}

		// (2) Backward sweep: co-states with transversality
		// ψ(tf) = 0, φ(tf) = w.
		psi, phi, err := backwardSweep(ctx, m, tr, sched, opts, arena)
		if err != nil {
			return nil, fmt.Errorf("control: backward sweep %d: %w", iter, err)
		}

		// Objective of the schedule that produced this sweep's trajectory,
		// reusing the forward trajectory already in hand; must run before
		// step (3) overwrites the schedule in place. Only paid when someone
		// is listening.
		var sweepCost float64
		if opts.Progress != nil {
			sweepCost = breakdownOnGrid(m, tr, sched, opts.Cost).Total
		}

		// (3) Control update: clamped stationary point (18)–(19) with
		// relaxation.
		var change, norm float64
		for j := 0; j < ng; j++ {
			y := tr.Y[j]
			var (
				psiS, s2 float64
				phiI, i2 float64
			)
			for i := 0; i < n; i++ {
				s, inf := y[i], y[n+i]
				psiS += psi[j][i] * s
				s2 += s * s
				phiI += phi[j][i] * inf
				i2 += inf * inf
			}
			star1 := 0.0
			if s2 > 0 {
				star1 = psiS / (2 * opts.Cost.C1 * s2)
			}
			star2 := 0.0
			if i2 > 0 {
				star2 = phiI / (2 * opts.Cost.C2 * i2)
			}
			star1 = floats.Clamp(star1, 0, opts.Eps1Max)
			star2 = floats.Clamp(star2, 0, opts.Eps2Max)

			new1 := (1-opts.Relax)*sched.Eps1[j] + opts.Relax*star1
			new2 := (1-opts.Relax)*sched.Eps2[j] + opts.Relax*star2
			change += math.Abs(new1-sched.Eps1[j]) + math.Abs(new2-sched.Eps2[j])
			norm += math.Abs(new1) + math.Abs(new2)
			sched.Eps1[j] = new1
			sched.Eps2[j] = new2
		}

		policy.Iterations = iter
		converged := change <= opts.Tol*math.Max(norm, 1e-12)
		if opts.Progress != nil {
			opts.Progress(obs.Event{
				Stage: obs.StageFBSM,
				Step:  iter,
				Total: opts.MaxIter,
				T:     tf,
				Value: change / math.Max(norm, 1e-12),
				Cost:  sweepCost,
			})
		}
		if converged {
			policy.Converged = true
			break
		}
	}

	bd, tr, err := EvaluateCostCtx(ctx, m, ic, sched, opts.Cost)
	if err != nil {
		return nil, fmt.Errorf("control: final evaluation: %w", err)
	}
	policy.Schedule = sched
	policy.Cost = bd
	policy.Trajectory = tr
	return policy, nil
}

// sweepArena holds the buffers a backward sweep needs, allocated once per
// Optimize run and reused across all MaxIter sweeps.
type sweepArena struct {
	psi, phi [][]float64 // ψ/φ row tables over the schedule grid
	z0       []float64   // transversality condition
	ybuf     []float64   // tr.AtInto scratch for the co-state RHS
	st       *ode.RK4    // backward-integration stepper scratch
}

func newSweepArena(n, ng int) *sweepArena {
	return &sweepArena{
		psi:  make([][]float64, ng),
		phi:  make([][]float64, ng),
		z0:   make([]float64, 2*n),
		ybuf: make([]float64, 2*n),
		st:   ode.NewRK4(2 * n),
	}
}

// backwardSweep integrates the co-state system from tf to 0 and returns
// ψ[j][i], φ[j][i] aligned with the schedule grid. The returned rows alias
// arena.psi/arena.phi and the sweep's solution buffer; they are valid until
// the next sweep reuses the arena.
func backwardSweep(ctx context.Context, m *core.Model, tr *core.Trajectory, sched *Schedule, opts Options, arena *sweepArena) (psi, phi [][]float64, err error) {
	n := m.N()
	ng := len(sched.T)
	tf := sched.Horizon()
	meanK := m.MeanDegree()

	// Packed co-state z = [ψ_1..ψ_n, φ_1..φ_n] as a function of reversed
	// time τ = tf − t: dz/dτ = −g(tf − τ, z). The state interpolation
	// reuses one arena buffer — the sweep's RHS is evaluated four times per
	// RK4 step over the whole grid, so a per-call clone here used to be the
	// dominant allocation of the entire FBSM iteration.
	costateRHS := func(tau float64, z, dz []float64) {
		t := tf - tau
		y := arena.ybuf
		tr.AtInto(t, y)
		e1 := sched.Eps1At(t)
		e2 := sched.Eps2At(t)
		theta := m.Theta(y)

		// Cross-group coupling Σ_j (ψ_j − φ_j) λ_j S_j (exact adjoint).
		var coupling float64
		if opts.Adjoint == AdjointExact {
			for j := 0; j < n; j++ {
				coupling += (z[j] - z[n+j]) * m.Lambda(j) * y[j]
			}
		}

		c1, c2 := opts.Cost.C1, opts.Cost.C2
		for i := 0; i < n; i++ {
			s, inf := y[i], y[n+i]
			lam := m.Lambda(i)
			// dψ_i/dt = −2c1ε1²S_i + ψ_i(λΘ + ε1) − φ_iλΘ
			dpsi := -2*c1*e1*e1*s + z[i]*(lam*theta+e1) - z[n+i]*lam*theta

			var dphi float64
			switch opts.Adjoint {
			case AdjointExact:
				// dφ_i/dt = −2c2ε2²I_i + (φ(k_i)/⟨k⟩)Σ_j(ψ_j−φ_j)λ_jS_j + φ_iε2
				dphi = -2*c2*e2*e2*inf + m.Varphi(i)/meanK*coupling + z[n+i]*e2
			default: // AdjointDiagonal — the paper's Equation (16)
				kterm := m.Varphi(i) / meanK * lam * s
				dphi = -2*c2*e2*e2*inf + z[i]*kterm - z[n+i]*(kterm-e2)
			}
			// Reversed time flips the sign.
			dz[i] = -dpsi
			dz[n+i] = -dphi
		}
	}

	// Transversality: ψ(tf) = 0, φ(tf) = TerminalWeight.
	z0 := arena.z0
	for i := 0; i < n; i++ {
		z0[i] = 0
		z0[n+i] = opts.TerminalWeight
	}
	h := sched.T[1] - sched.T[0]
	oopts := &ode.Options{Record: 1, Ctx: ctx}
	if opts.Progress != nil {
		prog := opts.Progress
		oopts.ProgressEvery = opts.ProgressEvery
		oopts.Progress = func(step, total int, tau float64, _ []float64) {
			// Report in forward time t = tf − τ so consumers see the sweep
			// marching from tf down to 0.
			prog(obs.Event{Stage: obs.StageFBSMBackward, Step: step, Total: total, T: tf - tau})
		}
	}
	sol, err := ode.SolveFixed(costateRHS, z0, 0, tf, h, arena.st, oopts)
	if err != nil {
		return nil, nil, err
	}
	if sol.Len() != ng {
		return nil, nil, errors.New("control: co-state samples misaligned with grid")
	}

	// Unreverse: co-state at grid node j is the backward sample ng-1-j. The
	// row tables live in the arena; only the headers are rewritten here.
	psi, phi = arena.psi, arena.phi
	for j := 0; j < ng; j++ {
		z := sol.Y[ng-1-j]
		psi[j] = z[:n]
		phi[j] = z[n : 2*n]
	}
	return psi, phi, nil
}

// OptimizeToTarget finds a policy whose terminal population-weighted
// infected density Σ_i P(k_i) I_i(tf) is at most target, by geometrically
// raising the terminal weight until the constraint holds. It returns the
// first satisfying policy (with its J evaluated at unit terminal weight,
// the paper's objective).
func OptimizeToTarget(m *core.Model, ic []float64, tf, target float64, opts Options) (*Policy, error) {
	return OptimizeToTargetCtx(context.Background(), m, ic, tf, target, opts)
}

// OptimizeToTargetCtx is OptimizeToTarget with cancellation; ctx reaches
// every inner Optimize call.
func OptimizeToTargetCtx(ctx context.Context, m *core.Model, ic []float64, tf, target float64, opts Options) (*Policy, error) {
	if target <= 0 {
		return nil, fmt.Errorf("control: non-positive target %g", target)
	}
	weight := 1.0
	const maxBoost = 30
	for boost := 0; boost < maxBoost; boost++ {
		opts.TerminalWeight = weight
		pol, err := OptimizeCtx(ctx, m, ic, tf, opts)
		if err != nil {
			return nil, err
		}
		if meanTerminalI(m, pol.Trajectory) <= target {
			return pol, nil
		}
		weight *= 2
	}
	return nil, fmt.Errorf("control: terminal infection target %g unreachable within bounds "+
		"(ε1 ≤ %g, ε2 ≤ %g, tf = %g)", target, opts.Eps1Max, opts.Eps2Max, tf)
}

func meanTerminalI(m *core.Model, tr *core.Trajectory) float64 {
	_, yf := tr.Last()
	var s float64
	for i := 0; i < m.N(); i++ {
		s += m.Dist().Prob(i) * m.I(yf, i)
	}
	return s
}
