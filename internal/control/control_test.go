package control

import (
	"math"
	"testing"
	"testing/quick"

	"rumornet/internal/core"
	"rumornet/internal/degreedist"
)

const (
	testEps1Max = 0.5
	testEps2Max = 0.5
	testTf      = 40.0
	testGrid    = 200
)

var testCost = Cost{C1: 5, C2: 10}

// controlModel returns a strongly epidemic model (r0 = 3 at the weak
// baseline countermeasures) for control experiments.
func controlModel(t testing.TB) *core.Model {
	t.Helper()
	d, err := degreedist.TruncatedPowerLaw(1.5, 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.CalibratedModel(d, 0.01, 0.05, 0.05, 3.0, degreedist.OmegaSaturating(0.5, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func controlIC(t testing.TB, m *core.Model) []float64 {
	t.Helper()
	ic, err := m.UniformIC(0.05)
	if err != nil {
		t.Fatal(err)
	}
	return ic
}

func TestNewConstantSchedule(t *testing.T) {
	s, err := NewConstantSchedule(10, 5, 0.1, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.T) != 6 || s.Horizon() != 10 {
		t.Errorf("grid = %v", s.T)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if s.Eps1At(3.7) != 0.1 || s.Eps2At(9.9) != 0.2 {
		t.Error("constant schedule not constant")
	}
	for _, bad := range []struct {
		tf     float64
		n      int
		e1, e2 float64
	}{{0, 5, 0, 0}, {10, 0, 0, 0}, {10, 5, -1, 0}, {10, 5, 0, -1}} {
		if _, err := NewConstantSchedule(bad.tf, bad.n, bad.e1, bad.e2); err == nil {
			t.Errorf("NewConstantSchedule(%+v): want error", bad)
		}
	}
}

func TestScheduleInterp(t *testing.T) {
	s, err := NewConstantSchedule(2, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Eps1 = []float64{0, 1, 0}
	// Linear interpolation between the nodes at t = 0, 1, 2.
	cases := []struct{ t, want float64 }{
		{-1, 0}, {0, 0}, {0.5, 0.5}, {1, 1}, {1.5, 0.5}, {2, 0}, {3, 0},
	}
	for _, tt := range cases {
		if got := s.Eps1At(tt.t); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Eps1At(%v) = %v, want %v", tt.t, got, tt.want)
		}
	}
}

func TestScheduleValidate(t *testing.T) {
	s, err := NewConstantSchedule(1, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Eps1[1] = -0.5
	if err := s.Validate(); err == nil {
		t.Error("negative control: want error")
	}
	s2 := &Schedule{T: []float64{0, 1}, Eps1: []float64{0}, Eps2: []float64{0, 0}}
	if err := s2.Validate(); err == nil {
		t.Error("length mismatch: want error")
	}
	s3 := &Schedule{T: []float64{0, 0}, Eps1: []float64{0, 0}, Eps2: []float64{0, 0}}
	if err := s3.Validate(); err == nil {
		t.Error("non-increasing grid: want error")
	}
	s4 := &Schedule{T: []float64{0}}
	if err := s4.Validate(); err == nil {
		t.Error("single node: want error")
	}
}

func TestScheduleClone(t *testing.T) {
	s, err := NewConstantSchedule(1, 2, 0.1, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	c := s.Clone()
	c.Eps1[0] = 99
	if s.Eps1[0] == 99 {
		t.Error("Clone shares storage")
	}
}

func TestEvaluateCostZeroControl(t *testing.T) {
	m := controlModel(t)
	ic := controlIC(t, m)
	sched, err := NewConstantSchedule(testTf, testGrid, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	bd, tr, err := EvaluateCost(m, ic, sched, testCost)
	if err != nil {
		t.Fatal(err)
	}
	if bd.Running != 0 {
		t.Errorf("running cost with zero controls = %v, want 0", bd.Running)
	}
	if bd.Terminal <= 0 {
		t.Errorf("terminal infection = %v, want > 0 (epidemic regime)", bd.Terminal)
	}
	if bd.Total != bd.Terminal {
		t.Errorf("Total = %v, want Terminal %v", bd.Total, bd.Terminal)
	}
	if tr.Len() != testGrid+1 {
		t.Errorf("trajectory samples = %d, want %d", tr.Len(), testGrid+1)
	}
}

func TestEvaluateCostValidation(t *testing.T) {
	m := controlModel(t)
	ic := controlIC(t, m)
	sched, err := NewConstantSchedule(testTf, 10, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := EvaluateCost(m, ic, sched, Cost{C1: -1}); err == nil {
		t.Error("negative cost: want error")
	}
	if _, _, err := EvaluateCost(m, []float64{1}, sched, testCost); err == nil {
		t.Error("bad IC: want error")
	}
	bad := &Schedule{T: []float64{0}}
	if _, _, err := EvaluateCost(m, ic, bad, testCost); err == nil {
		t.Error("bad schedule: want error")
	}
}

func TestOptimizeConvergesAndRespectsBounds(t *testing.T) {
	m := controlModel(t)
	ic := controlIC(t, m)
	pol, err := Optimize(m, ic, testTf, Options{
		Grid:    testGrid,
		Eps1Max: testEps1Max,
		Eps2Max: testEps2Max,
		Cost:    testCost,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !pol.Converged {
		t.Errorf("FBSM did not converge in %d iterations", pol.Iterations)
	}
	for j := range pol.Schedule.T {
		if pol.Schedule.Eps1[j] < 0 || pol.Schedule.Eps1[j] > testEps1Max {
			t.Fatalf("ε1[%d] = %v outside [0, %v]", j, pol.Schedule.Eps1[j], testEps1Max)
		}
		if pol.Schedule.Eps2[j] < 0 || pol.Schedule.Eps2[j] > testEps2Max {
			t.Fatalf("ε2[%d] = %v outside [0, %v]", j, pol.Schedule.Eps2[j], testEps2Max)
		}
	}
	if pol.Cost.Total <= 0 {
		t.Errorf("optimized cost = %v, want > 0", pol.Cost.Total)
	}
}

// TestOptimizeBeatsConstantPolicies is the core optimality check: the FBSM
// policy must achieve a lower objective J than naive constant policies.
func TestOptimizeBeatsConstantPolicies(t *testing.T) {
	m := controlModel(t)
	ic := controlIC(t, m)
	pol, err := Optimize(m, ic, testTf, Options{
		Grid:    testGrid,
		Eps1Max: testEps1Max,
		Eps2Max: testEps2Max,
		Cost:    testCost,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, level := range []float64{0, 0.25, 0.5, 1.0} {
		sched, err := NewConstantSchedule(testTf, testGrid, level*testEps1Max, level*testEps2Max)
		if err != nil {
			t.Fatal(err)
		}
		bd, _, err := EvaluateCost(m, ic, sched, testCost)
		if err != nil {
			t.Fatal(err)
		}
		if pol.Cost.Total > bd.Total+1e-9 {
			t.Errorf("optimized J = %v exceeds constant-%v J = %v",
				pol.Cost.Total, level, bd.Total)
		}
	}
}

func TestOptimizeValidation(t *testing.T) {
	m := controlModel(t)
	ic := controlIC(t, m)
	if _, err := Optimize(m, ic, testTf, Options{Cost: testCost}); err == nil {
		t.Error("missing bounds: want error")
	}
	if _, err := Optimize(m, ic, testTf, Options{Eps1Max: 1, Eps2Max: 1}); err == nil {
		t.Error("missing costs: want error")
	}
	if _, err := Optimize(m, ic, testTf, Options{
		Eps1Max: 1, Eps2Max: 1, Cost: testCost, Adjoint: Adjoint(99),
	}); err == nil {
		t.Error("bad adjoint: want error")
	}
	if _, err := Optimize(m, []float64{1}, testTf, Options{
		Eps1Max: 1, Eps2Max: 1, Cost: testCost,
	}); err == nil {
		t.Error("bad IC: want error")
	}
}

func TestAdjointDiagonalCloseToExact(t *testing.T) {
	m := controlModel(t)
	ic := controlIC(t, m)
	base := Options{
		Grid:    testGrid,
		Eps1Max: testEps1Max,
		Eps2Max: testEps2Max,
		Cost:    testCost,
	}
	exact, err := Optimize(m, ic, testTf, base)
	if err != nil {
		t.Fatal(err)
	}
	diag := base
	diag.Adjoint = AdjointDiagonal
	paper, err := Optimize(m, ic, testTf, diag)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's diagonal adjoint drops cross-group coupling; on these
	// parameters the resulting objective should be close to the exact one.
	rel := math.Abs(paper.Cost.Total-exact.Cost.Total) / exact.Cost.Total
	if rel > 0.25 {
		t.Errorf("diagonal J = %v vs exact J = %v (rel diff %v)",
			paper.Cost.Total, exact.Cost.Total, rel)
	}
	// And the exact adjoint must not be worse on the true objective.
	if exact.Cost.Total > paper.Cost.Total*1.05 {
		t.Errorf("exact adjoint J = %v clearly worse than diagonal %v",
			exact.Cost.Total, paper.Cost.Total)
	}
}

func TestOptimizeToTarget(t *testing.T) {
	m := controlModel(t)
	ic := controlIC(t, m)
	const target = 1e-3
	pol, err := OptimizeToTarget(m, ic, testTf, target, Options{
		Grid:    testGrid,
		Eps1Max: testEps1Max,
		Eps2Max: testEps2Max,
		Cost:    testCost,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := meanTerminalI(m, pol.Trajectory); got > target {
		t.Errorf("terminal mean infection = %v, want <= %v", got, target)
	}
	if _, err := OptimizeToTarget(m, ic, testTf, -1, Options{
		Eps1Max: 1, Eps2Max: 1, Cost: testCost,
	}); err == nil {
		t.Error("negative target: want error")
	}
	// Impossible target under feeble bounds.
	if _, err := OptimizeToTarget(m, ic, 5, 1e-12, Options{
		Grid: 50, Eps1Max: 1e-6, Eps2Max: 1e-6, Cost: testCost,
	}); err == nil {
		t.Error("unreachable target: want error")
	}
}

func TestHeuristicZeroGainIsUncontrolled(t *testing.T) {
	m := controlModel(t)
	ic := controlIC(t, m)
	pol, err := HeuristicPolicy(m, ic, testTf, 0, testGrid, testEps1Max, testEps2Max, testCost)
	if err != nil {
		t.Fatal(err)
	}
	for j := range pol.Schedule.T {
		if pol.Schedule.Eps1[j] != 0 || pol.Schedule.Eps2[j] != 0 {
			t.Fatalf("zero gain produced non-zero control at node %d", j)
		}
	}
	if pol.Cost.Running != 0 {
		t.Errorf("running cost = %v, want 0", pol.Cost.Running)
	}
}

func TestHeuristicControlsTrackInfection(t *testing.T) {
	m := controlModel(t)
	ic := controlIC(t, m)
	pol, err := HeuristicPolicy(m, ic, testTf, 5, testGrid, testEps1Max, testEps2Max, testCost)
	if err != nil {
		t.Fatal(err)
	}
	// Feedback controls must be within bounds and positive while the
	// infection is active.
	for j := range pol.Schedule.T {
		e1, e2 := pol.Schedule.Eps1[j], pol.Schedule.Eps2[j]
		if e1 < 0 || e1 > testEps1Max || e2 < 0 || e2 > testEps2Max {
			t.Fatalf("controls out of bounds at node %d: (%v, %v)", j, e1, e2)
		}
	}
	if pol.Schedule.Eps2[0] <= 0 {
		t.Error("feedback control zero despite initial infection")
	}
	if _, err := HeuristicPolicy(m, ic, testTf, -1, testGrid, 1, 1, testCost); err == nil {
		t.Error("negative gain: want error")
	}
	if _, err := HeuristicPolicy(m, ic, testTf, 1, 0, 1, 1, testCost); err == nil {
		t.Error("zero grid: want error")
	}
	if _, err := HeuristicPolicy(m, []float64{1}, testTf, 1, 10, 1, 1, testCost); err == nil {
		t.Error("bad IC: want error")
	}
}

// TestFig4cShapeOptimizedCheaperThanHeuristic reproduces the headline claim
// of Fig. 4(c): at equal terminal infection, the Pontryagin policy costs
// less than the calibrated heuristic feedback policy.
func TestFig4cShapeOptimizedCheaperThanHeuristic(t *testing.T) {
	m := controlModel(t)
	ic := controlIC(t, m)
	const target = 1e-3
	heur, err := CalibrateHeuristic(m, ic, testTf, target, testGrid, testEps1Max, testEps2Max, testCost)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := OptimizeToTarget(m, ic, testTf, target, Options{
		Grid:    testGrid,
		Eps1Max: testEps1Max,
		Eps2Max: testEps2Max,
		Cost:    testCost,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := meanTerminalI(m, heur.Trajectory); got > target {
		t.Fatalf("heuristic terminal infection %v above target", got)
	}
	if opt.Cost.Running >= heur.Cost.Running {
		t.Errorf("optimized running cost %v not below heuristic %v",
			opt.Cost.Running, heur.Cost.Running)
	}
}

func TestCalibrateHeuristicValidation(t *testing.T) {
	m := controlModel(t)
	ic := controlIC(t, m)
	if _, err := CalibrateHeuristic(m, ic, testTf, 0, 10, 1, 1, testCost); err == nil {
		t.Error("zero target: want error")
	}
	// Unreachable: bounds far too small to ever control the epidemic.
	if _, err := CalibrateHeuristic(m, ic, 5, 1e-12, 50, 1e-9, 1e-9, testCost); err == nil {
		t.Error("unreachable target: want error")
	}
}

// Property: the optimized objective never exceeds the initial-guess
// objective (mid-range constant controls), across random cost weights.
func TestQuickOptimizeImprovesOnInitialGuess(t *testing.T) {
	m := controlModel(t)
	ic := controlIC(t, m)
	f := func(c1raw, c2raw uint8) bool {
		cost := Cost{
			C1: 0.5 + float64(c1raw)/16,
			C2: 0.5 + float64(c2raw)/16,
		}
		opts := Options{
			Grid:    100,
			MaxIter: 60,
			Eps1Max: testEps1Max,
			Eps2Max: testEps2Max,
			Cost:    cost,
		}
		pol, err := Optimize(m, ic, 20, opts)
		if err != nil {
			return false
		}
		guess, err := NewConstantSchedule(20, 100, testEps1Max/2, testEps2Max/2)
		if err != nil {
			return false
		}
		bd, _, err := EvaluateCost(m, ic, guess, cost)
		if err != nil {
			return false
		}
		return pol.Cost.Total <= bd.Total+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func BenchmarkOptimizeSmall(b *testing.B) {
	m := controlModel(b)
	ic := controlIC(b, m)
	opts := Options{
		Grid:    100,
		Eps1Max: testEps1Max,
		Eps2Max: testEps2Max,
		Cost:    testCost,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(m, ic, 20, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// Property: enlarging the admissible control box never worsens the
// optimized objective (the smaller box's policy remains feasible).
func TestQuickLargerBoundsNeverHurt(t *testing.T) {
	m := controlModel(t)
	ic := controlIC(t, m)
	f := func(raw uint8) bool {
		small := 0.1 + float64(raw)/255*0.3 // [0.1, 0.4]
		base := Options{
			Grid:    100,
			MaxIter: 150,
			Eps1Max: small,
			Eps2Max: small,
			Cost:    testCost,
		}
		polSmall, err := Optimize(m, ic, 20, base)
		if err != nil {
			return false
		}
		big := base
		big.Eps1Max = small * 2
		big.Eps2Max = small * 2
		polBig, err := Optimize(m, ic, 20, big)
		if err != nil {
			return false
		}
		// Allow a small numerical slack: FBSM converges to a tolerance.
		return polBig.Cost.Total <= polSmall.Cost.Total*1.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
}
