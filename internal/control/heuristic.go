package control

import (
	"fmt"

	"rumornet/internal/core"
)

// HeuristicPolicy builds the paper's comparison baseline (Fig. 4(c)): a
// feedback controller that reacts only to the current infection state with
// no global (anticipatory) planning. At each grid node it sets
//
//	ε2(t) = min(gain · Ī(t), eps2Max)   — block harder when infection is high,
//	ε1(t) = min(gain · Ī(t), eps1Max)   — immunize in proportion as well,
//
// where Ī(t) = Σ_i P(k_i) I_i(t) is the population-weighted infected
// density. The controls are computed step-by-step alongside the forward
// integration, exactly like an operator reacting to the live infection
// level.
func HeuristicPolicy(m *core.Model, ic []float64, tf, gain float64, grid int, eps1Max, eps2Max float64, cost Cost) (*Policy, error) {
	if gain < 0 {
		return nil, fmt.Errorf("control: negative gain %g", gain)
	}
	if grid < 1 {
		return nil, fmt.Errorf("control: need at least 1 grid interval, got %d", grid)
	}
	sched, err := NewConstantSchedule(tf, grid, 0, 0)
	if err != nil {
		return nil, err
	}
	if len(ic) != m.StateDim() {
		return nil, fmt.Errorf("control: initial condition dimension %d, want %d",
			len(ic), m.StateDim())
	}

	// The feedback loop: integrate one grid step at a time, setting the
	// controls from the state at the step start (zero-order hold).
	n := m.N()
	y := append([]float64(nil), ic...)
	for j := 0; j < len(sched.T); j++ {
		var meanI float64
		for i := 0; i < n; i++ {
			meanI += m.Dist().Prob(i) * y[n+i]
		}
		e1 := gain * meanI
		if e1 > eps1Max {
			e1 = eps1Max
		}
		e2 := gain * meanI
		if e2 > eps2Max {
			e2 = eps2Max
		}
		sched.Eps1[j] = e1
		sched.Eps2[j] = e2
		if j+1 == len(sched.T) {
			break
		}
		step, err := m.Simulate(y, sched.T[j+1]-sched.T[j], &core.SimOptions{
			Step:   sched.T[j+1] - sched.T[j],
			Record: 1,
			Eps1At: func(float64) float64 { return e1 },
			Eps2At: func(float64) float64 { return e2 },
		})
		if err != nil {
			return nil, fmt.Errorf("control: heuristic step %d: %w", j, err)
		}
		_, y = step.Last()
	}

	bd, tr, err := EvaluateCost(m, ic, sched, cost)
	if err != nil {
		return nil, fmt.Errorf("control: heuristic evaluation: %w", err)
	}
	return &Policy{Schedule: sched, Cost: bd, Trajectory: tr, Converged: true}, nil
}

// CalibrateHeuristic finds, by bisection, the smallest feedback gain whose
// heuristic policy drives the terminal population-weighted infected density
// below target. The cost of aggressive feedback grows with the gain, so the
// smallest satisfying gain is the cheapest heuristic — the fair comparator
// for Fig. 4(c).
func CalibrateHeuristic(m *core.Model, ic []float64, tf, target float64, grid int, eps1Max, eps2Max float64, cost Cost) (*Policy, error) {
	if target <= 0 {
		return nil, fmt.Errorf("control: non-positive target %g", target)
	}
	terminal := func(gain float64) (*Policy, float64, error) {
		pol, err := HeuristicPolicy(m, ic, tf, gain, grid, eps1Max, eps2Max, cost)
		if err != nil {
			return nil, 0, err
		}
		return pol, meanTerminalI(m, pol.Trajectory), nil
	}

	// Bracket: find a high gain that satisfies the target.
	hi := 1.0
	var (
		polHi *Policy
		err   error
	)
	for iter := 0; ; iter++ {
		var term float64
		polHi, term, err = terminal(hi)
		if err != nil {
			return nil, err
		}
		if term <= target {
			break
		}
		if iter >= 60 {
			return nil, fmt.Errorf("control: heuristic cannot reach terminal target %g "+
				"(bounds ε1 ≤ %g, ε2 ≤ %g, tf = %g)", target, eps1Max, eps2Max, tf)
		}
		hi *= 2
	}
	lo := 0.0
	for iter := 0; iter < 40 && hi-lo > 1e-6*hi; iter++ {
		mid := (lo + hi) / 2
		pol, term, err := terminal(mid)
		if err != nil {
			return nil, err
		}
		if term <= target {
			hi = mid
			polHi = pol
		} else {
			lo = mid
		}
	}
	return polHi, nil
}
