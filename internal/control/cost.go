package control

import (
	"context"
	"fmt"

	"rumornet/internal/core"
	"rumornet/internal/obs"
)

// Cost holds the unit costs of the two countermeasures: c1 for spreading
// truth (immunization) and c2 for blocking spreaders. The paper's Fig. 4
// uses c1 = 5, c2 = 10 ("the cost of blocking rumors is larger than that of
// spreading truth").
type Cost struct {
	C1, C2 float64
}

func (c Cost) validate() error {
	if c.C1 < 0 || c.C2 < 0 {
		return fmt.Errorf("control: negative unit costs (%g, %g)", c.C1, c.C2)
	}
	return nil
}

// Breakdown decomposes the objective (13) for a given policy run.
type Breakdown struct {
	// Terminal is Σ_i I_i(tf).
	Terminal float64
	// Running is ∫ Σ_i (c1 ε1² S_i² + c2 ε2² I_i²) dt.
	Running float64
	// Total = Terminal + Running (the objective J with unit terminal
	// weight).
	Total float64
}

// EvaluateCost simulates the model under the schedule and evaluates the
// objective (13) by trapezoidal quadrature on the schedule's grid.
func EvaluateCost(m *core.Model, ic []float64, sched *Schedule, cost Cost) (Breakdown, *core.Trajectory, error) {
	return EvaluateCostCtx(context.Background(), m, ic, sched, cost)
}

// EvaluateCostCtx is EvaluateCost with cancellation threaded into the
// forward simulation.
func EvaluateCostCtx(ctx context.Context, m *core.Model, ic []float64, sched *Schedule, cost Cost) (Breakdown, *core.Trajectory, error) {
	var bd Breakdown
	if err := cost.validate(); err != nil {
		return bd, nil, err
	}
	if err := sched.Validate(); err != nil {
		return bd, nil, err
	}
	tr, err := simulateOnGrid(ctx, m, ic, sched, nil, 0)
	if err != nil {
		return bd, nil, err
	}
	return breakdownOnGrid(m, tr, sched, cost), tr, nil
}

// breakdownOnGrid evaluates the objective (13) by trapezoidal quadrature
// from a trajectory already aligned with the schedule grid. Split out of
// EvaluateCostCtx so the FBSM progress path can price each sweep's schedule
// without a second forward integration.
func breakdownOnGrid(m *core.Model, tr *core.Trajectory, sched *Schedule, cost Cost) Breakdown {
	var bd Breakdown
	n := m.N()
	integrand := func(j int) float64 {
		y := tr.Y[j]
		e1 := sched.Eps1[j]
		e2 := sched.Eps2[j]
		var sum float64
		for i := 0; i < n; i++ {
			s, inf := y[i], y[n+i]
			sum += cost.C1*e1*e1*s*s + cost.C2*e2*e2*inf*inf
		}
		return sum
	}
	for j := 0; j+1 < len(sched.T); j++ {
		h := sched.T[j+1] - sched.T[j]
		bd.Running += h / 2 * (integrand(j) + integrand(j+1))
	}
	_, yf := tr.Last()
	for i := 0; i < n; i++ {
		bd.Terminal += yf[n+i]
	}
	bd.Total = bd.Terminal + bd.Running
	return bd
}

// simulateOnGrid integrates the controlled model with RK4 using exactly the
// schedule's grid steps, so trajectory samples align with schedule nodes.
// prog, when non-nil, receives in-flight checkpoints every progressEvery
// steps (0 means the default cadence).
func simulateOnGrid(ctx context.Context, m *core.Model, ic []float64, sched *Schedule, prog obs.Progress, progressEvery int) (*core.Trajectory, error) {
	if len(ic) != m.StateDim() {
		return nil, fmt.Errorf("control: initial condition dimension %d, want %d", len(ic), m.StateDim())
	}
	h := sched.T[1] - sched.T[0]
	tr, err := m.SimulateCtx(ctx, ic, sched.Horizon(), &core.SimOptions{
		Step:          h,
		Record:        1,
		Eps1At:        sched.Eps1At,
		Eps2At:        sched.Eps2At,
		Progress:      prog,
		ProgressEvery: progressEvery,
	})
	if err != nil {
		return nil, err
	}
	if tr.Len() != len(sched.T) {
		return nil, fmt.Errorf("control: trajectory samples %d misaligned with grid %d",
			tr.Len(), len(sched.T))
	}
	return tr, nil
}
