package control

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenSchedule is the value serialized in testdata/schedule_golden.json.
func goldenSchedule() *Schedule {
	return &Schedule{
		T:    []float64{0, 2.5, 5, 7.5, 10},
		Eps1: []float64{0.8, 0.6, 0.35, 0.1, 0},
		Eps2: []float64{0, 0.05, 0.125, 0.25, 0.4},
	}
}

// TestScheduleJSONGolden pins the wire format: WriteJSON must emit the
// golden bytes exactly, and ReadScheduleJSON must recover the same value.
// Breaking this test means breaking every saved schedule in the wild.
func TestScheduleJSONGolden(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("testdata", "schedule_golden.json"))
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := goldenSchedule().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), golden) {
		t.Errorf("WriteJSON drifted from golden file:\n got: %q\nwant: %q", buf.Bytes(), golden)
	}

	got, err := ReadScheduleJSON(bytes.NewReader(golden))
	if err != nil {
		t.Fatal(err)
	}
	want := goldenSchedule()
	if len(got.T) != len(want.T) {
		t.Fatalf("round-trip length: got %d nodes, want %d", len(got.T), len(want.T))
	}
	for i := range want.T {
		if got.T[i] != want.T[i] || got.Eps1[i] != want.Eps1[i] || got.Eps2[i] != want.Eps2[i] {
			t.Errorf("node %d: got (%g, %g, %g), want (%g, %g, %g)", i,
				got.T[i], got.Eps1[i], got.Eps2[i], want.T[i], want.Eps1[i], want.Eps2[i])
		}
	}
}

func TestScheduleJSONRoundTripDense(t *testing.T) {
	s, err := NewConstantSchedule(25, 40, 0.3, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadScheduleJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.T {
		if got.T[i] != s.T[i] || got.Eps1[i] != s.Eps1[i] || got.Eps2[i] != s.Eps2[i] {
			t.Fatalf("round trip altered node %d", i)
		}
	}
}

// TestReadScheduleJSONRejects checks that malformed payloads fail on read
// rather than poisoning a later simulation. The NaN/Inf cases matter most:
// NaN compares false against everything, so without an explicit check the
// monotonicity and sign validations would silently pass.
func TestReadScheduleJSONRejects(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"not json", `{"t": [0, 1`},
		{"single node", `{"t":[0],"eps1":[0.1],"eps2":[0.1]}`},
		{"length mismatch", `{"t":[0,1,2],"eps1":[0.1,0.2],"eps2":[0.1,0.2,0.3]}`},
		{"non-increasing grid", `{"t":[0,2,1],"eps1":[0,0,0],"eps2":[0,0,0]}`},
		{"negative control", `{"t":[0,1,2],"eps1":[0.1,-0.2,0.1],"eps2":[0,0,0]}`},
		{"nan time", `{"t":[0,null,2],"eps1":[0,0,0],"eps2":[0,0,0]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadScheduleJSON(strings.NewReader(tc.json)); err == nil {
				t.Errorf("ReadScheduleJSON(%s): want error, got nil", tc.json)
			}
		})
	}
}

func TestScheduleValidateNonFinite(t *testing.T) {
	base := func() *Schedule {
		return &Schedule{
			T:    []float64{0, 1, 2},
			Eps1: []float64{0.1, 0.2, 0.3},
			Eps2: []float64{0.3, 0.2, 0.1},
		}
	}
	cases := []struct {
		name   string
		mutate func(*Schedule)
	}{
		{"nan grid time", func(s *Schedule) { s.T[1] = math.NaN() }},
		{"inf grid time", func(s *Schedule) { s.T[2] = math.Inf(1) }},
		{"nan eps1", func(s *Schedule) { s.Eps1[0] = math.NaN() }},
		{"nan eps2", func(s *Schedule) { s.Eps2[2] = math.NaN() }},
		{"inf eps1", func(s *Schedule) { s.Eps1[1] = math.Inf(-1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base()
			tc.mutate(s)
			if err := s.Validate(); err == nil {
				t.Error("Validate accepted a non-finite schedule")
			}
			var buf bytes.Buffer
			if err := s.WriteJSON(&buf); err == nil {
				t.Error("WriteJSON serialized a non-finite schedule")
			}
		})
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("baseline schedule should be valid: %v", err)
	}
}
