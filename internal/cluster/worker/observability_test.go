package worker_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rumornet/internal/cluster/worker"
	"rumornet/internal/obs/trace"
	"rumornet/internal/service"
	"rumornet/internal/store"
)

// The PR 8 acceptance suite: the cluster-wide observability plane. A job
// executed remotely must look exactly as observable as a local one — one
// trace across both processes, one journal stream on the SSE endpoint, and
// the worker's metrics re-exported from the coordinator's /metrics page.

// getBody GETs a coordinator path and returns status + body.
func (h *harness) getBody(path string) (int, []byte) {
	h.t.Helper()
	resp, err := http.Get(h.ts.URL + path)
	if err != nil {
		h.t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		h.t.Fatal(err)
	}
	return resp.StatusCode, body
}

// startWorkerOpts runs a worker node with extra option tweaks on top of
// the harness's fast test timings.
func (h *harness) startWorkerOpts(id string, mut func(*worker.Options)) {
	h.t.Helper()
	opts := worker.Options{
		Coordinator: h.ts.URL,
		ID:          id,
		PollMin:     2 * time.Millisecond,
		PollMax:     20 * time.Millisecond,
	}
	if mut != nil {
		mut(&opts)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- worker.Run(ctx, opts) }()
	h.t.Cleanup(func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				h.t.Errorf("worker %s: %v", id, err)
			}
		case <-time.After(30 * time.Second):
			h.t.Fatalf("worker %s did not stop", id)
		}
	})
}

// dumpSpans fetches the coordinator's finished spans through the same
// /debug/events handler rumord mounts.
func dumpSpans(t *testing.T, svc *service.Service) []trace.SpanData {
	t.Helper()
	rec := httptest.NewRecorder()
	svc.EventsDumpHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/events", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("events dump: %d %s", rec.Code, rec.Body.String())
	}
	var dump struct {
		Spans []trace.SpanData `json:"spans"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &dump); err != nil {
		t.Fatal(err)
	}
	return dump.Spans
}

// TestClusterObservabilityEndToEnd runs one job through a real worker node
// and checks the three relay planes land on the coordinator:
//
//   - tracing: the worker's stage.* spans carry the job's trace id and
//     parent onto the coordinator's job.<type> span — one coherent trace;
//   - journal: GET /v1/jobs/{id}/events replays the worker's lifecycle
//     entries inside the job's stream, trace-correlated and before the
//     terminal entry;
//   - metrics: GET /metrics re-exports the worker's registry under
//     rumor_worker_*{worker="..."} plus rumor_fleet_* aggregates, and
//     GET /v1/workers carries the telemetry sample.
//
// It also pins the degraded /readyz body shape: a JSON reason list.
func TestClusterObservabilityEndToEnd(t *testing.T) {
	h := newCoordinator(t, nil)

	// Queued work, no workers: degraded, and the body enumerates why.
	queued, err := h.svc.Submit(service.Request{Type: service.JobODE, Scenario: "tiny",
		Params: service.Params{Lambda0: 0.02, Tf: 40, Points: 50}})
	if err != nil {
		t.Fatal(err)
	}
	code, body := h.getBody("/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with queued work, no workers: %d, want 503", code)
	}
	var degraded struct {
		Status  string   `json:"status"`
		Reasons []string `json:"reasons"`
	}
	if err := json.Unmarshal(body, &degraded); err != nil {
		t.Fatalf("degraded body is not JSON: %v\n%s", err, body)
	}
	if degraded.Status != "degraded" || len(degraded.Reasons) == 0 ||
		!strings.Contains(degraded.Reasons[0], "worker") {
		t.Errorf("degraded body = %+v, want status degraded + a no-live-workers reason", degraded)
	}

	h.startWorker("w-obs")
	job := h.waitJob(queued.ID)
	if job.Status != service.StatusSucceeded {
		t.Fatalf("job: %s (%s)", job.Status, job.Error)
	}
	if job.TraceID == "" {
		t.Fatal("job has no trace id")
	}

	// Tracing: one trace spanning both processes. The coordinator owns
	// job.ode; the worker uploaded stage.ode parented under it.
	spans := dumpSpans(t, h.svc)
	var jobSpan, stageSpan *trace.SpanData
	for i := range spans {
		sp := &spans[i]
		if sp.TraceID != job.TraceID {
			continue
		}
		switch {
		case sp.Name == "job.ode":
			jobSpan = sp
		case strings.HasPrefix(sp.Name, "stage."):
			stageSpan = sp
		}
	}
	if jobSpan == nil {
		t.Fatalf("no job.ode span with trace %s among %d spans", job.TraceID, len(spans))
	}
	if stageSpan == nil {
		t.Fatalf("no worker stage.* span with trace %s — the relay dropped the spans", job.TraceID)
	}
	if stageSpan.ParentID != jobSpan.SpanID {
		t.Errorf("stage span parent = %s, want the job span %s", stageSpan.ParentID, jobSpan.SpanID)
	}
	if stageSpan.Attrs["worker"] != "w-obs" || stageSpan.Attrs["job_id"] != job.ID {
		t.Errorf("stage span attrs = %v, want worker and job attribution", stageSpan.Attrs)
	}

	// Journal: the SSE replay carries the worker's lifecycle entries inside
	// the job's stream, trace-correlated, with the terminal entry last.
	code, body = h.getBody("/v1/jobs/" + job.ID + "/events?follow=0")
	if code != http.StatusOK {
		t.Fatalf("events replay: %d %s", code, body)
	}
	stream := string(body)
	execIdx := strings.Index(stream, `executing on worker \"w-obs\"`)
	finishIdx := strings.Index(stream, `executor finished on worker \"w-obs\": succeeded`)
	finalIdx := strings.Index(stream, `"final":true`)
	if execIdx < 0 || finishIdx < 0 {
		t.Fatalf("replay missing worker lifecycle entries:\n%s", stream)
	}
	if finalIdx < 0 || finishIdx > finalIdx {
		t.Errorf("worker entries not ordered before the terminal entry:\n%s", stream)
	}
	if !strings.Contains(stream, fmt.Sprintf(`"trace_id":"%s"`, job.TraceID)) {
		t.Errorf("replay entries not trace-correlated to %s:\n%s", job.TraceID, stream)
	}

	// Metrics: the worker's registry re-exported with a worker label, plus
	// fleet aggregates, after the coordinator's own families. Snapshots
	// relay on a throttle (the health sample rides every send), so the
	// post-job counters converge within a window of the result — the idle
	// worker's lease polls flush them. Poll /metrics until they land.
	wants := []string{
		`rumor_worker_jobs_executed_total{worker="w-obs"} 1`,
		`rumor_worker_runtime_goroutines{worker="w-obs"}`,
		`rumor_worker_invariant_violations_total{check="mass_conservation",worker="w-obs"} 0`,
		"rumor_fleet_jobs_executed_total 1",
		"rumor_fleet_runtime_goroutines",
		"rumor_jobs_submitted_total", // the coordinator's own families stay
	}
	var page string
	for deadline := time.Now().Add(10 * time.Second); ; {
		var code int
		code, body = h.getBody("/metrics")
		if code != http.StatusOK {
			t.Fatalf("metrics: %d", code)
		}
		page = string(body)
		missing := ""
		for _, want := range wants {
			if !strings.Contains(page, want) {
				missing = want
				break
			}
		}
		if missing == "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("metrics page never showed %q:\n%s", missing, page)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Fleet introspection: the registry carries the telemetry sample.
	ws := h.svc.Workers()
	if len(ws) != 1 || ws[0].Telemetry == nil {
		t.Fatalf("workers = %+v, want one worker with telemetry", ws)
	}
	tel := ws[0].Telemetry
	if tel.JobsExecuted != 1 || tel.Goroutines <= 0 || tel.GOMAXPROCS <= 0 ||
		tel.HeapAllocBytes == 0 || tel.UptimeSeconds <= 0 {
		t.Errorf("telemetry sample = %+v, want populated runtime vitals", tel)
	}
	if tel.InvariantViolations != 0 {
		t.Errorf("invariant violations = %d, want 0 on a healthy run", tel.InvariantViolations)
	}

	// Healthy again: readyz recovered with the worker live and queue idle.
	if code, _ = h.getBody("/readyz"); code != http.StatusOK {
		t.Errorf("readyz after completion: %d, want 200", code)
	}
}

// TestWorkerTelemetryDisabled runs a node with DisableTelemetry and checks
// the job still completes while no relay payload reaches the coordinator —
// the wire protocol treats every telemetry field as optional.
func TestWorkerTelemetryDisabled(t *testing.T) {
	h := newCoordinator(t, nil)
	h.startWorkerOpts("w-quiet", func(o *worker.Options) { o.DisableTelemetry = true })

	job, err := h.svc.Submit(service.Request{Type: service.JobODE, Scenario: "tiny",
		Params: service.Params{Lambda0: 0.02, Tf: 40, Points: 50}})
	if err != nil {
		t.Fatal(err)
	}
	done := h.waitJob(job.ID)
	if done.Status != service.StatusSucceeded {
		t.Fatalf("job: %s (%s)", done.Status, done.Error)
	}
	if _, body := h.getBody("/metrics"); strings.Contains(string(body), "rumor_worker_") {
		t.Error("telemetry-disabled worker leaked a registry snapshot onto /metrics")
	}
	ws := h.svc.Workers()
	if len(ws) != 1 || ws[0].Telemetry != nil {
		t.Errorf("workers = %+v, want one worker without telemetry", ws)
	}
	// Progress relay still works without the telemetry payload.
	if done.Progress == nil {
		t.Error("progress relay broken with telemetry disabled")
	}
}

// TestScenarioWALReplay is satellite 1: an uploaded scenario is persisted
// in the WAL, so a coordinator restart re-registers it and the recovered
// job completes instead of failing with "unknown scenario".
func TestScenarioWALReplay(t *testing.T) {
	dir := t.TempDir()
	cfg := service.Config{
		QueueDepth: 16,
		StoreDir:   dir,
		StoreOptions: store.Options{
			SyncMode: store.SyncNone,
		},
		Cluster: service.ClusterConfig{
			Enabled:  true,
			LeaseTTL: time.Hour, // no reaping; the restart does the work
		},
	}
	svc1, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc1.RegisterScenario("uploaded", []int{2, 4, 8}, []float64{0.5, 0.3, 0.2}); err != nil {
		t.Fatal(err)
	}
	job, err := svc1.Submit(service.Request{Type: service.JobThreshold, Scenario: "uploaded",
		Params: service.Params{Lambda0: 0.02}})
	if err != nil {
		t.Fatal(err)
	}
	svc1.Close() // crash with the job queued on an uploaded scenario

	if n := countWAL(t, dir, `"op":"scenario"`); n != 1 {
		t.Fatalf("WAL holds %d scenario records, want 1", n)
	}

	h := &harness{t: t, journal: &syncBuffer{}}
	cfg.JournalSink = h.journal
	h.svc, err = service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.ts = httptest.NewServer(h.svc.Handler())
	t.Cleanup(func() {
		h.ts.Close()
		h.svc.Close()
	})

	// The scenario came back with the store...
	if _, err := h.svc.Scenario("uploaded"); err != nil {
		t.Fatalf("uploaded scenario did not survive the restart: %v", err)
	}
	if got := h.svc.Stats().Store.ScenarioReplays; got != 1 {
		t.Errorf("scenario replays = %d, want 1", got)
	}
	// ...and the recovered job runs to completion on it.
	rec, ok := h.svc.Job(job.ID)
	if !ok || rec.Status != service.StatusQueued {
		t.Fatalf("recovered job = %+v ok=%v, want queued", rec, ok)
	}
	h.startWorker("w-replay")
	done := h.waitJob(job.ID)
	if done.Status != service.StatusSucceeded {
		t.Fatalf("recovered job on replayed scenario: %s (%s)", done.Status, done.Error)
	}

	// Replaying the same WAL again does not duplicate the registration.
	h2, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	if got := h2.Stats().Store.ScenarioReplays; got != 1 {
		t.Errorf("second recovery scenario replays = %d, want 1 (first registration wins)", got)
	}
}
