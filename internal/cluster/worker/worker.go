// Package worker implements the rumord worker node: a stateless loop that
// leases jobs from a coordinator (internal/service's internal API), runs
// them through the same executor standalone mode uses, streams progress
// back on heartbeats, and uploads the terminal result. Workers hold no
// durable state — the coordinator owns the queue, the WAL and the result
// store — so killing one loses at most the work of its current lease, which
// the coordinator's reaper requeues after the lease TTL.
//
// Each node is also a telemetry source (DESIGN.md §13): it keeps its own
// metric registry (solver histograms, job counters, Go runtime gauges),
// times per-stage trace spans parented under the coordinator's job span,
// and journals worker-local lifecycle events — all piggybacked on the
// requests it already makes (heartbeats, result uploads, and between jobs
// the lease poll), so observability costs no extra round trips and needs
// no listening port on the worker.
package worker

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rumornet/internal/cluster"
	"rumornet/internal/obs"
	"rumornet/internal/obs/invariant"
	"rumornet/internal/obs/journal"
	"rumornet/internal/obs/trace"
	"rumornet/internal/service"
)

// Options parameterizes a worker node. Coordinator is required; everything
// else has a sane default.
type Options struct {
	// Coordinator is the coordinator's base URL, e.g. "http://host:8080".
	Coordinator string
	// ID names this worker in leases, metrics and GET /v1/workers
	// (default: "w-<hostname>-<pid>").
	ID string
	// Addr is an optional advertised address recorded in the registry.
	Addr string
	// InnerWorkers bounds each job's internal fan-out (default 1).
	InnerWorkers int
	// PollMin and PollMax bound the jittered exponential backoff between
	// lease polls of an empty queue (defaults 50ms and 2s). A grant resets
	// the backoff, and a worker that just finished a job re-polls
	// immediately.
	PollMin time.Duration
	PollMax time.Duration
	// Heartbeat is the lease-renewal cadence (default: a third of the TTL
	// the coordinator granted, per job).
	Heartbeat time.Duration
	// Client is the HTTP client (default: 30s-timeout client).
	Client *http.Client
	// Logger receives the worker's structured records (nil discards).
	Logger *slog.Logger
	// Registry is the worker's metric registry (default: a fresh one).
	// rumord's worker mode passes its own so -debug-addr can expose the
	// same instruments locally that the coordinator re-exports remotely.
	Registry *obs.Registry
	// DisableTelemetry strips the relay payload — journal entries, spans,
	// registry snapshots and health samples — from heartbeats and result
	// uploads, leaving only the lease protocol and progress events. The
	// overhead benchmarks use it as the baseline arm; operators can use it
	// on pathologically slow links.
	DisableTelemetry bool
}

func (o Options) withDefaults() Options {
	if o.ID == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		o.ID = fmt.Sprintf("w-%s-%d", host, os.Getpid())
	}
	if o.InnerWorkers < 1 {
		o.InnerWorkers = 1
	}
	if o.PollMin <= 0 {
		o.PollMin = 50 * time.Millisecond
	}
	if o.PollMax < o.PollMin {
		o.PollMax = 2 * time.Second
		if o.PollMax < o.PollMin {
			o.PollMax = o.PollMin
		}
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if o.Logger == nil {
		o.Logger = obs.NopLogger()
	}
	if o.Registry == nil {
		o.Registry = obs.NewRegistry()
	}
	return o
}

// eventBufferCap bounds the progress events buffered between heartbeats; a
// chatty solver overwrites nothing downstream (the coordinator's journal is
// a ring anyway), so beyond the cap the oldest buffered events are dropped
// and counted.
const eventBufferCap = 512

// jobSpanRingCap bounds the per-job span ring. A job finishes a handful of
// stage spans; the headroom absorbs pathological stage churn without the
// incremental-upload cursor ever seeing an overwrite.
const jobSpanRingCap = 64

// snapshotEvery throttles the registry-snapshot relay. The snapshot is by
// far the largest telemetry payload (every family, marshaled worker-side
// and re-decoded by the coordinator), and it carries absolute values — so
// resending an unchanged-for-milliseconds copy on every 2ms heartbeat buys
// no freshness a Prometheus scrape could observe. At most one snapshot per
// window rides whichever send fires first (heartbeat, result upload, or
// lease poll — the poll is what lets a worker that just went idle flush
// its final counters). The fixed-size health sample is exempt: it rides
// every heartbeat and result, so /v1/workers stays live.
const snapshotEvery = 250 * time.Millisecond

// node is the per-process telemetry state shared by every job the worker
// runs: the metric registry relayed in snapshots, the counters behind the
// health sample, and the cached MemStats read (heartbeats can tick every
// few milliseconds in tests; ReadMemStats must not run per tick).
type node struct {
	opts    Options
	reg     *obs.Registry
	started time.Time

	jobsExecuted *obs.Counter
	abmStep      *obs.Histogram
	invariants   map[string]*obs.Counter
	invCount     atomic.Int64
	lastStage    atomic.Value // string

	memMu sync.Mutex
	memAt time.Time
	mem   runtime.MemStats

	snapMu sync.Mutex
	snapAt time.Time
}

func newNode(opts Options) *node {
	n := &node{opts: opts, reg: opts.Registry, started: time.Now()}
	obs.RegisterRuntime(n.reg)
	n.jobsExecuted = n.reg.Counter("rumor_jobs_executed_total",
		"Jobs this worker ran to a terminal status (accepted by the coordinator or not).")
	n.abmStep = n.reg.Histogram("rumor_abm_step_seconds",
		"Wall time of one ABM transition sweep on this worker.",
		[]float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1})
	n.invariants = map[string]*obs.Counter{}
	for _, check := range invariant.Checks() {
		n.invariants[check] = n.reg.Counter("rumor_invariant_violations_total",
			"Numerical invariant violations detected by this worker's per-job monitors.",
			obs.L("check", check))
	}
	return n
}

// memSample returns MemStats at most 250ms stale, mirroring the obs
// runtime-gauge sampler: co-heartbeating jobs share one stop-the-world.
func (n *node) memSample() runtime.MemStats {
	n.memMu.Lock()
	defer n.memMu.Unlock()
	if n.memAt.IsZero() || time.Since(n.memAt) > 250*time.Millisecond {
		runtime.ReadMemStats(&n.mem)
		n.memAt = time.Now()
	}
	return n.mem
}

// telemetry builds the health sample piggybacked on heartbeats and uploads.
func (n *node) telemetry() *cluster.Telemetry {
	if n.opts.DisableTelemetry {
		return nil
	}
	ms := n.memSample()
	stage, _ := n.lastStage.Load().(string)
	return &cluster.Telemetry{
		Stage:               stage,
		InvariantViolations: n.invCount.Load(),
		JobsExecuted:        n.jobsExecuted.Value(),
		Goroutines:          runtime.NumGoroutine(),
		GOMAXPROCS:          runtime.GOMAXPROCS(0),
		HeapAllocBytes:      ms.HeapAlloc,
		GCPauseSecondsTotal: float64(ms.PauseTotalNs) / 1e9,
		UptimeSeconds:       time.Since(n.started).Seconds(),
	}
}

// relaySnapshot samples the relay registry, at most once per snapshotEvery
// across all send channels (nil when throttled or telemetry is disabled).
// The first call ships immediately so a short-lived worker still reports;
// a send that then fails on the wire just waits out the window — snapshots
// are absolute values, so nothing is lost, only delayed.
func (n *node) relaySnapshot() obs.Snapshot {
	if n.opts.DisableTelemetry {
		return nil
	}
	n.snapMu.Lock()
	defer n.snapMu.Unlock()
	if !n.snapAt.IsZero() && time.Since(n.snapAt) < snapshotEvery {
		return nil
	}
	n.snapAt = time.Now()
	return n.reg.Snapshot()
}

// Run executes the worker loop until ctx is cancelled. Cancellation drains
// gracefully: the job currently leased (if any) runs to completion and its
// result is uploaded before Run deregisters and returns — a SIGTERM'd
// worker finishes what it claimed. Run only returns a non-nil error for
// unusable options.
func Run(ctx context.Context, opts Options) error {
	opts = opts.withDefaults()
	if opts.Coordinator == "" {
		return errors.New("worker: coordinator URL required")
	}
	n := newNode(opts)
	lg := opts.Logger.With("worker", opts.ID)
	lg.Info("worker started", "coordinator", opts.Coordinator)

	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	delay := opts.PollMin
	for ctx.Err() == nil {
		leased, err := n.lease()
		switch {
		case err != nil:
			if ctx.Err() != nil {
				break
			}
			lg.Warn("lease poll failed", "error", err.Error())
			delay = sleepBackoff(ctx, rng, delay, opts)
		case leased == nil: // empty queue
			delay = sleepBackoff(ctx, rng, delay, opts)
		default:
			delay = opts.PollMin
			n.runLeased(leased, lg)
			// Re-poll immediately: a saturated queue keeps the worker busy
			// back to back.
		}
	}
	deregister(opts)
	lg.Info("worker stopped")
	return nil
}

// sleepBackoff sleeps the current backoff delay (±50% jitter, interruptible
// by ctx) and returns the next delay, doubled up to PollMax.
func sleepBackoff(ctx context.Context, rng *rand.Rand, delay time.Duration, opts Options) time.Duration {
	jittered := delay/2 + time.Duration(rng.Int63n(int64(delay)+1))
	t := time.NewTimer(jittered)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
	next := delay * 2
	if next > opts.PollMax {
		next = opts.PollMax
	}
	return next
}

// runLeased executes one leased job end to end: heartbeat loop, executor,
// result upload. The job runs under its own timeout context detached from
// the worker's run context, so a drain (SIGTERM) lets it finish.
func (n *node) runLeased(leased *service.LeasedJob, lg *slog.Logger) {
	opts := n.opts
	jlg := lg.With("job_id", leased.JobID, "trace_id", leased.TraceID)
	jlg.Info("job leased", "type", leased.Request.Type,
		"attempt", leased.Attempt, "max_attempts", leased.MaxAttempts)

	timeout := time.Duration(leased.TimeoutMS) * time.Millisecond
	if timeout <= 0 {
		timeout = time.Minute
	}
	jobCtx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	// Worker-side tracing: stage spans parented under the coordinator's
	// job span via the leased traceparent, so the coordinator's
	// http.request → job.<type> chain and these spans share one trace id.
	// The tracer is per job; finished spans upload incrementally (cursor
	// below) on heartbeats, with the tail riding the result.
	parent, _ := trace.ParseTraceparent(leased.Traceparent)
	jobTracer := trace.New(jobSpanRingCap)

	// The worker's own invariant monitor: the coordinator re-monitors the
	// relayed event stream, but the relay buffer is bounded — this count
	// (relayed in the health sample and the registry snapshot) sees every
	// event. Entries in the job journal stay the coordinator's call, so a
	// violation is journaled exactly once.
	monitor := invariant.New(invariant.Config{}, func(v invariant.Violation) {
		n.invCount.Add(1)
		if c := n.invariants[v.Check]; c != nil {
			c.Inc()
		}
		jlg.Warn("invariant violation", "check", v.Check, "detail", v.Msg,
			"stage", v.Event.Stage, "step", v.Event.Step, "t", v.Event.T)
	})

	// Progress events, worker journal entries and the span-upload cursor
	// buffer here between heartbeats; the sink runs on solver goroutines,
	// so the buffer is locked.
	var (
		mu         sync.Mutex
		events     []service.ProgressEvent
		jentries   []journal.Entry
		stageSpans map[string]*trace.Span
		sentSpans  int
		dropped    int
	)
	addEntry := func(kind, msg string) {
		if opts.DisableTelemetry {
			return
		}
		e := journal.Entry{
			JobID: leased.JobID, TraceID: leased.TraceID,
			Kind: kind, Msg: msg,
		}
		mu.Lock()
		jentries = append(jentries, e)
		mu.Unlock()
	}
	sink := func(ev obs.Event) {
		n.lastStage.Store(ev.Stage)
		// Monitor outside the buffer lock: Observe only touches the
		// monitor's own latch state.
		monitor.Observe(ev)
		if ev.Stage == obs.StageABM && ev.Elapsed > 0 {
			n.abmStep.Observe(ev.Elapsed.Seconds())
		}
		mu.Lock()
		if !opts.DisableTelemetry {
			if stageSpans == nil {
				stageSpans = make(map[string]*trace.Span)
			}
			if _, ok := stageSpans[ev.Stage]; !ok {
				stageSpans[ev.Stage] = jobTracer.StartSpan("stage."+ev.Stage, parent,
					obs.L("worker", opts.ID), obs.L("job_id", leased.JobID))
			}
		}
		if len(events) >= eventBufferCap {
			events = events[1:]
			dropped++
		}
		events = append(events, service.WireProgress(ev))
		mu.Unlock()
	}
	drain := func() []service.ProgressEvent {
		mu.Lock()
		out := events
		events = nil
		mu.Unlock()
		return out
	}
	// drainRelay pops the telemetry tail: journal entries plus the spans
	// finished since the last upload (the ring never wraps at jobSpanRingCap,
	// so the cursor is a plain offset).
	drainRelay := func() ([]journal.Entry, []trace.SpanData) {
		if opts.DisableTelemetry {
			return nil, nil
		}
		mu.Lock()
		je := jentries
		jentries = nil
		fin := jobTracer.Finished()
		if sentSpans > len(fin) {
			sentSpans = len(fin)
		}
		spans := fin[sentSpans:]
		sentSpans = len(fin)
		mu.Unlock()
		return je, spans
	}
	endStageSpans := func(status string) {
		mu.Lock()
		for _, sp := range stageSpans {
			sp.SetAttr("status", status)
			sp.End()
		}
		stageSpans = nil
		mu.Unlock()
	}

	addEntry(journal.KindLifecycle, fmt.Sprintf(
		"executing on worker %q (attempt %d/%d)",
		opts.ID, leased.Attempt, leased.MaxAttempts))

	// The heartbeat loop extends the lease and relays buffered progress and
	// telemetry. A conflict (the coordinator reaped or re-granted the
	// lease) marks the lease lost and cancels the job: finishing it would
	// waste cycles on a result the fenced upload is going to reject anyway.
	hb := opts.Heartbeat
	if hb <= 0 {
		hb = time.Duration(leased.LeaseTTLMS) * time.Millisecond / 3
	}
	if hb <= 0 {
		hb = time.Second
	}
	var leaseLost bool
	var lostMu sync.Mutex
	stopHB := make(chan struct{})
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		t := time.NewTicker(hb)
		defer t.Stop()
		for {
			select {
			case <-stopHB:
				return
			case <-t.C:
			}
			je, spans := drainRelay()
			ack, status, err := heartbeat(opts, leased, service.HeartbeatRequest{
				WorkerID:   opts.ID,
				LeaseToken: leased.LeaseToken,
				Events:     drain(),
				Journal:    je,
				Spans:      spans,
				Metrics:    n.relaySnapshot(),
				Telemetry:  n.telemetry(),
			})
			switch {
			case err != nil:
				jlg.Warn("heartbeat failed", "error", err.Error())
			case status == http.StatusConflict || status == http.StatusNotFound:
				lostMu.Lock()
				leaseLost = true
				lostMu.Unlock()
				jlg.Warn("lease lost; abandoning job", "status", status)
				cancel()
				return
			case ack.Cancel:
				jlg.Info("cancellation requested by coordinator")
				cancel()
			}
		}
	}()

	start := time.Now()
	sc, err := service.ScenarioFromTable(leased.Scenario)
	var raw json.RawMessage
	if err == nil {
		raw, err = service.ExecuteRequest(jobCtx, sc, leased.Request, opts.InnerWorkers, sink)
	}
	close(stopHB)
	<-hbDone

	res := service.ResultRequest{
		WorkerID:   opts.ID,
		LeaseToken: leased.LeaseToken,
	}
	switch {
	case err == nil:
		res.Status = string(service.StatusSucceeded)
		res.Result = raw
	case errors.Is(err, context.DeadlineExceeded):
		res.Status = string(service.StatusFailed)
		res.Error = fmt.Sprintf("timed out after %s: %v", timeout, err)
	case errors.Is(err, context.Canceled):
		res.Status = string(service.StatusCancelled)
		res.Error = fmt.Sprintf("cancelled by client: %v", err)
	default:
		res.Status = string(service.StatusFailed)
		res.Error = err.Error()
	}
	if dropped > 0 {
		jlg.Warn("progress events dropped by the heartbeat buffer", "dropped", dropped)
	}
	n.jobsExecuted.Inc()
	n.lastStage.Store("")
	endStageSpans(res.Status)
	addEntry(journal.KindLifecycle, fmt.Sprintf(
		"executor finished on worker %q: %s", opts.ID, res.Status))
	// Assemble the final relay after the spans closed and the finish entry
	// landed, so the result upload carries the complete worker-side tail.
	res.Events = drain()
	res.Journal, res.Spans = drainRelay()
	res.Metrics = n.relaySnapshot()
	res.Telemetry = n.telemetry()

	lostMu.Lock()
	lost := leaseLost
	lostMu.Unlock()
	if lost {
		return // the coordinator moved on; a stale upload would 409 anyway
	}
	status, err := upload(opts, leased, res)
	elapsed := time.Since(start)
	switch {
	case err != nil:
		jlg.Warn("result upload failed", "error", err.Error(),
			"elapsed_ms", float64(elapsed)/float64(time.Millisecond))
	case status == http.StatusConflict:
		jlg.Warn("result upload rejected: stale lease",
			"elapsed_ms", float64(elapsed)/float64(time.Millisecond))
	default:
		jlg.Info("job finished", "status", res.Status,
			"elapsed_ms", float64(elapsed)/float64(time.Millisecond))
	}
}

// lease polls the coordinator for the next job: (nil, nil) when the queue
// is empty (204). When the snapshot throttle window has elapsed, the poll
// doubles as a telemetry send — the only channel a worker between leases
// has, and what keeps an idle fleet's /metrics re-export converged.
//
// The request runs on a detached context, like heartbeats and uploads: the
// instant the poll is sent, the coordinator may grant (and record) a lease,
// so a drain signal must not abort the in-flight read — the worker has to
// learn what it now holds and finish it. Run checks its own ctx between
// polls; shutdown waits at most one poll round trip.
func (n *node) lease() (*service.LeasedJob, error) {
	opts := n.opts
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	req := service.LeaseRequest{WorkerID: opts.ID, Addr: opts.Addr}
	if snap := n.relaySnapshot(); snap != nil {
		req.Metrics = snap
		req.Telemetry = n.telemetry()
	}
	var leased service.LeasedJob
	status, err := postJSON(ctx, opts,
		opts.Coordinator+"/v1/internal/lease", req, &leased)
	if err != nil {
		return nil, err
	}
	switch status {
	case http.StatusOK:
		return &leased, nil
	case http.StatusNoContent:
		return nil, nil
	default:
		return nil, fmt.Errorf("lease: unexpected status %d", status)
	}
}

// heartbeat extends the job's lease, shipping the buffered progress and
// telemetry relay. HTTP-level failures return err; application rejections
// return the status.
func heartbeat(opts Options, leased *service.LeasedJob, req service.HeartbeatRequest) (service.HeartbeatAck, int, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var ack service.HeartbeatAck
	status, err := postJSON(ctx, opts,
		fmt.Sprintf("%s/v1/internal/jobs/%s/heartbeat", opts.Coordinator, leased.JobID),
		req, &ack)
	return ack, status, err
}

// upload posts the terminal result. It uses a generous detached context:
// the job is done, losing the upload to a worker shutdown would waste it.
func upload(opts Options, leased *service.LeasedJob, res service.ResultRequest) (int, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return postJSON(ctx, opts,
		fmt.Sprintf("%s/v1/internal/jobs/%s/result", opts.Coordinator, leased.JobID),
		res, nil)
}

// deregister says goodbye on drain, best effort.
func deregister(opts Options) {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	postJSON(ctx, opts,
		fmt.Sprintf("%s/v1/internal/workers/%s/deregister", opts.Coordinator, opts.ID),
		struct{}{}, nil)
}

// postJSON posts body as JSON and decodes a 2xx response into out (when
// non-nil and the response has a body). Non-2xx statuses are returned for
// the caller to interpret, not turned into errors.
func postJSON(ctx context.Context, opts Options, url string, body, out any) (int, error) {
	blob, err := json.Marshal(body)
	if err != nil {
		return 0, fmt.Errorf("worker: marshal request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(blob))
	if err != nil {
		return 0, fmt.Errorf("worker: build request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := opts.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if out != nil && resp.StatusCode >= 200 && resp.StatusCode < 300 && resp.StatusCode != http.StatusNoContent {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("worker: decode response: %w", err)
		}
	}
	return resp.StatusCode, nil
}
