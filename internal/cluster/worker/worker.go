// Package worker implements the rumord worker node: a stateless loop that
// leases jobs from a coordinator (internal/service's internal API), runs
// them through the same executor standalone mode uses, streams progress
// back on heartbeats, and uploads the terminal result. Workers hold no
// durable state — the coordinator owns the queue, the WAL and the result
// store — so killing one loses at most the work of its current lease, which
// the coordinator's reaper requeues after the lease TTL.
package worker

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"time"

	"rumornet/internal/obs"
	"rumornet/internal/service"
)

// Options parameterizes a worker node. Coordinator is required; everything
// else has a sane default.
type Options struct {
	// Coordinator is the coordinator's base URL, e.g. "http://host:8080".
	Coordinator string
	// ID names this worker in leases, metrics and GET /v1/workers
	// (default: "w-<hostname>-<pid>").
	ID string
	// Addr is an optional advertised address recorded in the registry.
	Addr string
	// InnerWorkers bounds each job's internal fan-out (default 1).
	InnerWorkers int
	// PollMin and PollMax bound the jittered exponential backoff between
	// lease polls of an empty queue (defaults 50ms and 2s). A grant resets
	// the backoff, and a worker that just finished a job re-polls
	// immediately.
	PollMin time.Duration
	PollMax time.Duration
	// Heartbeat is the lease-renewal cadence (default: a third of the TTL
	// the coordinator granted, per job).
	Heartbeat time.Duration
	// Client is the HTTP client (default: 30s-timeout client).
	Client *http.Client
	// Logger receives the worker's structured records (nil discards).
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.ID == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		o.ID = fmt.Sprintf("w-%s-%d", host, os.Getpid())
	}
	if o.InnerWorkers < 1 {
		o.InnerWorkers = 1
	}
	if o.PollMin <= 0 {
		o.PollMin = 50 * time.Millisecond
	}
	if o.PollMax < o.PollMin {
		o.PollMax = 2 * time.Second
		if o.PollMax < o.PollMin {
			o.PollMax = o.PollMin
		}
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if o.Logger == nil {
		o.Logger = obs.NopLogger()
	}
	return o
}

// eventBufferCap bounds the progress events buffered between heartbeats; a
// chatty solver overwrites nothing downstream (the coordinator's journal is
// a ring anyway), so beyond the cap the oldest buffered events are dropped
// and counted.
const eventBufferCap = 512

// Run executes the worker loop until ctx is cancelled. Cancellation drains
// gracefully: the job currently leased (if any) runs to completion and its
// result is uploaded before Run deregisters and returns — a SIGTERM'd
// worker finishes what it claimed. Run only returns a non-nil error for
// unusable options.
func Run(ctx context.Context, opts Options) error {
	opts = opts.withDefaults()
	if opts.Coordinator == "" {
		return errors.New("worker: coordinator URL required")
	}
	lg := opts.Logger.With("worker", opts.ID)
	lg.Info("worker started", "coordinator", opts.Coordinator)

	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	delay := opts.PollMin
	for ctx.Err() == nil {
		leased, err := lease(ctx, opts)
		switch {
		case err != nil:
			if ctx.Err() != nil {
				break
			}
			lg.Warn("lease poll failed", "error", err.Error())
			delay = sleepBackoff(ctx, rng, delay, opts)
		case leased == nil: // empty queue
			delay = sleepBackoff(ctx, rng, delay, opts)
		default:
			delay = opts.PollMin
			runLeased(opts, leased, lg)
			// Re-poll immediately: a saturated queue keeps the worker busy
			// back to back.
		}
	}
	deregister(opts)
	lg.Info("worker stopped")
	return nil
}

// sleepBackoff sleeps the current backoff delay (±50% jitter, interruptible
// by ctx) and returns the next delay, doubled up to PollMax.
func sleepBackoff(ctx context.Context, rng *rand.Rand, delay time.Duration, opts Options) time.Duration {
	jittered := delay/2 + time.Duration(rng.Int63n(int64(delay)+1))
	t := time.NewTimer(jittered)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
	next := delay * 2
	if next > opts.PollMax {
		next = opts.PollMax
	}
	return next
}

// runLeased executes one leased job end to end: heartbeat loop, executor,
// result upload. The job runs under its own timeout context detached from
// the worker's run context, so a drain (SIGTERM) lets it finish.
func runLeased(opts Options, leased *service.LeasedJob, lg *slog.Logger) {
	jlg := lg.With("job_id", leased.JobID, "trace_id", leased.TraceID)
	jlg.Info("job leased", "type", leased.Request.Type,
		"attempt", leased.Attempt, "max_attempts", leased.MaxAttempts)

	timeout := time.Duration(leased.TimeoutMS) * time.Millisecond
	if timeout <= 0 {
		timeout = time.Minute
	}
	jobCtx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	// Progress events buffer here between heartbeats; the sink runs on
	// solver goroutines, so the buffer is locked.
	var (
		mu      sync.Mutex
		events  []service.ProgressEvent
		dropped int
	)
	sink := func(ev obs.Event) {
		mu.Lock()
		if len(events) >= eventBufferCap {
			events = events[1:]
			dropped++
		}
		events = append(events, service.WireProgress(ev))
		mu.Unlock()
	}
	drain := func() []service.ProgressEvent {
		mu.Lock()
		out := events
		events = nil
		mu.Unlock()
		return out
	}

	// The heartbeat loop extends the lease and relays buffered progress.
	// A conflict (the coordinator reaped or re-granted the lease) marks the
	// lease lost and cancels the job: finishing it would waste cycles on a
	// result the fenced upload is going to reject anyway.
	hb := opts.Heartbeat
	if hb <= 0 {
		hb = time.Duration(leased.LeaseTTLMS) * time.Millisecond / 3
	}
	if hb <= 0 {
		hb = time.Second
	}
	var leaseLost bool
	var lostMu sync.Mutex
	stopHB := make(chan struct{})
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		t := time.NewTicker(hb)
		defer t.Stop()
		for {
			select {
			case <-stopHB:
				return
			case <-t.C:
			}
			ack, status, err := heartbeat(opts, leased, drain())
			switch {
			case err != nil:
				jlg.Warn("heartbeat failed", "error", err.Error())
			case status == http.StatusConflict || status == http.StatusNotFound:
				lostMu.Lock()
				leaseLost = true
				lostMu.Unlock()
				jlg.Warn("lease lost; abandoning job", "status", status)
				cancel()
				return
			case ack.Cancel:
				jlg.Info("cancellation requested by coordinator")
				cancel()
			}
		}
	}()

	start := time.Now()
	sc, err := service.ScenarioFromTable(leased.Scenario)
	var raw json.RawMessage
	if err == nil {
		raw, err = service.ExecuteRequest(jobCtx, sc, leased.Request, opts.InnerWorkers, sink)
	}
	close(stopHB)
	<-hbDone

	res := service.ResultRequest{
		WorkerID:   opts.ID,
		LeaseToken: leased.LeaseToken,
		Events:     drain(),
	}
	switch {
	case err == nil:
		res.Status = string(service.StatusSucceeded)
		res.Result = raw
	case errors.Is(err, context.DeadlineExceeded):
		res.Status = string(service.StatusFailed)
		res.Error = fmt.Sprintf("timed out after %s: %v", timeout, err)
	case errors.Is(err, context.Canceled):
		res.Status = string(service.StatusCancelled)
		res.Error = fmt.Sprintf("cancelled by client: %v", err)
	default:
		res.Status = string(service.StatusFailed)
		res.Error = err.Error()
	}
	if dropped > 0 {
		jlg.Warn("progress events dropped by the heartbeat buffer", "dropped", dropped)
	}

	lostMu.Lock()
	lost := leaseLost
	lostMu.Unlock()
	if lost {
		return // the coordinator moved on; a stale upload would 409 anyway
	}
	status, err := upload(opts, leased, res)
	elapsed := time.Since(start)
	switch {
	case err != nil:
		jlg.Warn("result upload failed", "error", err.Error(),
			"elapsed_ms", float64(elapsed)/float64(time.Millisecond))
	case status == http.StatusConflict:
		jlg.Warn("result upload rejected: stale lease",
			"elapsed_ms", float64(elapsed)/float64(time.Millisecond))
	default:
		jlg.Info("job finished", "status", res.Status,
			"elapsed_ms", float64(elapsed)/float64(time.Millisecond))
	}
}

// lease polls the coordinator for the next job: (nil, nil) when the queue
// is empty (204).
func lease(ctx context.Context, opts Options) (*service.LeasedJob, error) {
	var leased service.LeasedJob
	status, err := postJSON(ctx, opts,
		opts.Coordinator+"/v1/internal/lease",
		service.LeaseRequest{WorkerID: opts.ID, Addr: opts.Addr}, &leased)
	if err != nil {
		return nil, err
	}
	switch status {
	case http.StatusOK:
		return &leased, nil
	case http.StatusNoContent:
		return nil, nil
	default:
		return nil, fmt.Errorf("lease: unexpected status %d", status)
	}
}

// heartbeat extends the job's lease, shipping buffered progress events.
// HTTP-level failures return err; application rejections return the status.
func heartbeat(opts Options, leased *service.LeasedJob, events []service.ProgressEvent) (service.HeartbeatAck, int, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var ack service.HeartbeatAck
	status, err := postJSON(ctx, opts,
		fmt.Sprintf("%s/v1/internal/jobs/%s/heartbeat", opts.Coordinator, leased.JobID),
		service.HeartbeatRequest{
			WorkerID: opts.ID, LeaseToken: leased.LeaseToken, Events: events,
		}, &ack)
	return ack, status, err
}

// upload posts the terminal result. It uses a generous detached context:
// the job is done, losing the upload to a worker shutdown would waste it.
func upload(opts Options, leased *service.LeasedJob, res service.ResultRequest) (int, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return postJSON(ctx, opts,
		fmt.Sprintf("%s/v1/internal/jobs/%s/result", opts.Coordinator, leased.JobID),
		res, nil)
}

// deregister says goodbye on drain, best effort.
func deregister(opts Options) {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	postJSON(ctx, opts,
		fmt.Sprintf("%s/v1/internal/workers/%s/deregister", opts.Coordinator, opts.ID),
		struct{}{}, nil)
}

// postJSON posts body as JSON and decodes a 2xx response into out (when
// non-nil and the response has a body). Non-2xx statuses are returned for
// the caller to interpret, not turned into errors.
func postJSON(ctx context.Context, opts Options, url string, body, out any) (int, error) {
	blob, err := json.Marshal(body)
	if err != nil {
		return 0, fmt.Errorf("worker: marshal request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(blob))
	if err != nil {
		return 0, fmt.Errorf("worker: build request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := opts.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if out != nil && resp.StatusCode >= 200 && resp.StatusCode < 300 && resp.StatusCode != http.StatusNoContent {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("worker: decode response: %w", err)
		}
	}
	return resp.StatusCode, nil
}
