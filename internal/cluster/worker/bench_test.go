package worker_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"rumornet/internal/cluster/worker"
	"rumornet/internal/service"
)

// The BENCH_PR7 suite: sustained job throughput of a clustered coordinator
// at 1/2/4 in-process worker nodes against the standalone in-process pool
// at the same widths (jobs/sec = 1e9 / ns_per_op), plus a near-zero-compute
// threshold pair that isolates the per-job coordinator overhead — the
// lease, heartbeat and result-upload round trips a remote job pays that an
// in-process job does not.

// startCluster boots a coordinator with n worker nodes attached over real
// HTTP, polling tightly so the queue, not the backoff, paces the run.
func startCluster(b *testing.B, n int) *service.Service {
	b.Helper()
	svc, err := service.New(service.Config{
		QueueDepth: 64,
		Cluster:    service.ClusterConfig{Enabled: true},
	})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			worker.Run(ctx, worker.Options{
				Coordinator: ts.URL,
				ID:          fmt.Sprintf("bw-%d", i),
				PollMin:     time.Millisecond,
				PollMax:     5 * time.Millisecond,
			})
		}(i)
	}
	b.Cleanup(func() {
		cancel()
		wg.Wait()
		ts.Close()
		svc.Close()
	})
	return svc
}

func startStandalone(b *testing.B, workers int) *service.Service {
	b.Helper()
	svc, err := service.New(service.Config{Workers: workers, QueueDepth: 64})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(svc.Close)
	return svc
}

func benchWait(b *testing.B, s *service.Service, id string) {
	b.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		job, ok := s.Job(id)
		if !ok {
			b.Fatalf("job %s disappeared", id)
		}
		if job.Status.Terminal() {
			if job.Status != service.StatusSucceeded {
				b.Fatalf("job %s: %s (%s)", id, job.Status, job.Error)
			}
			return
		}
		time.Sleep(time.Millisecond)
	}
	b.Fatalf("job %s did not settle", id)
}

// benchThroughput drives the standard workload — Digg2009 ODE integrations,
// a distinct cache key per iteration — in waves that keep every worker
// saturated, the way real clients drive a daemon.
func benchThroughput(b *testing.B, svc *service.Service, req service.Request) {
	const wave = 16 // well under the queue depth
	b.ResetTimer()
	for done := 0; done < b.N; {
		n := min(wave, b.N-done)
		ids := make([]string, 0, n)
		for j := 0; j < n; j++ {
			req.Params.Seed = int64(done + j + 1)
			job, err := svc.Submit(req)
			if err != nil {
				b.Fatal(err)
			}
			ids = append(ids, job.ID)
		}
		for _, id := range ids {
			benchWait(b, svc, id)
		}
		done += n
	}
}

var odeReq = service.Request{Type: service.JobODE,
	Params: service.Params{Lambda0: 0.02, Tf: 150, Points: 150}}

func BenchmarkClusterODE(b *testing.B) {
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("w%d", n), func(b *testing.B) {
			benchThroughput(b, startCluster(b, n), odeReq)
		})
	}
}

func BenchmarkStandaloneODE(b *testing.B) {
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("w%d", n), func(b *testing.B) {
			benchThroughput(b, startStandalone(b, n), odeReq)
		})
	}
}

// The threshold job computes in microseconds, so the pair's ns_per_op
// difference is almost entirely the coordinator's per-job overhead.
var thresholdReq = service.Request{Type: service.JobThreshold,
	Params: service.Params{Lambda0: 0.02}}

func BenchmarkClusterThreshold(b *testing.B) {
	benchThroughput(b, startCluster(b, 1), thresholdReq)
}

func BenchmarkStandaloneThreshold(b *testing.B) {
	benchThroughput(b, startStandalone(b, 1), thresholdReq)
}

// The BENCH_PR8 pair: the same near-zero-compute workload through one
// worker node with the telemetry relay on (default) vs off. The heartbeat
// is forced fast so relay payloads actually ride heartbeats mid-job, not
// just the result upload; both arms pay the same HTTP round trips, so the
// ns_per_op difference is the relay serialization itself — journal entries,
// finished spans and the health sample per send, plus the registry
// snapshot on its 250ms throttle window. The PR 8 claim is < 5% overhead.
func startClusterRelay(b *testing.B, disable bool) *service.Service {
	b.Helper()
	svc, err := service.New(service.Config{
		QueueDepth: 64,
		Cluster:    service.ClusterConfig{Enabled: true},
	})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		worker.Run(ctx, worker.Options{
			Coordinator:      ts.URL,
			ID:               "bw-relay",
			PollMin:          time.Millisecond,
			PollMax:          5 * time.Millisecond,
			Heartbeat:        2 * time.Millisecond,
			DisableTelemetry: disable,
		})
	}()
	b.Cleanup(func() {
		cancel()
		<-done
		ts.Close()
		svc.Close()
	})
	return svc
}

func BenchmarkClusterThresholdRelayOn(b *testing.B) {
	benchThroughput(b, startClusterRelay(b, false), thresholdReq)
}

func BenchmarkClusterThresholdRelayOff(b *testing.B) {
	benchThroughput(b, startClusterRelay(b, true), thresholdReq)
}
