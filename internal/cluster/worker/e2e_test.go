package worker_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"rumornet/internal/cluster/worker"
	"rumornet/internal/service"
	"rumornet/internal/store"
)

// The cluster crash matrix: coordinator + worker nodes wired over real HTTP
// (httptest), exercising lease grant, heartbeat relay, crash-tolerant
// requeue, fencing, poison-job budgets, coordinator restart recovery and
// drain — the suite ROADMAP tier 2 runs under -race.

// syncBuffer collects the coordinator's journal mirror from concurrent
// writers.
type syncBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

// harness couples a coordinator-mode Service to an httptest.Server the
// worker nodes dial.
type harness struct {
	t       *testing.T
	svc     *service.Service
	ts      *httptest.Server
	journal *syncBuffer
}

// newCoordinator boots a coordinator with fast test timings (60ms leases,
// 5ms reaps); mut adjusts the config before construction.
func newCoordinator(t *testing.T, mut func(*service.Config)) *harness {
	t.Helper()
	jb := &syncBuffer{}
	cfg := service.Config{
		QueueDepth:  16,
		JournalSink: jb,
		Cluster: service.ClusterConfig{
			Enabled:      true,
			LeaseTTL:     60 * time.Millisecond,
			ReapInterval: 5 * time.Millisecond,
			MaxAttempts:  3,
		},
	}
	if mut != nil {
		mut(&cfg)
	}
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	if _, err := svc.RegisterScenario("tiny", []int{2, 4, 8}, []float64{0.5, 0.3, 0.2}); err != nil {
		t.Fatal(err)
	}
	return &harness{t: t, svc: svc, ts: ts, journal: jb}
}

// startWorker runs a worker node against the harness and returns a stop
// function that drains it (ctx cancel, then wait for Run to return).
func (h *harness) startWorker(id string) (stop func()) {
	h.t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- worker.Run(ctx, worker.Options{
			Coordinator: h.ts.URL,
			ID:          id,
			PollMin:     2 * time.Millisecond,
			PollMax:     20 * time.Millisecond,
		})
	}()
	var once sync.Once
	stop = func() {
		once.Do(func() {
			cancel()
			select {
			case err := <-done:
				if err != nil {
					h.t.Errorf("worker %s: %v", id, err)
				}
			case <-time.After(30 * time.Second):
				h.t.Fatalf("worker %s did not stop", id)
			}
		})
	}
	h.t.Cleanup(stop)
	return stop
}

func (h *harness) waitJob(id string) service.Job {
	h.t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		job, ok := h.svc.Job(id)
		if !ok {
			h.t.Fatalf("job %s disappeared", id)
		}
		if job.Status.Terminal() {
			return job
		}
		time.Sleep(2 * time.Millisecond)
	}
	h.t.Fatalf("job %s did not settle", id)
	return service.Job{}
}

// waitStatus polls until the job reads the wanted (non-terminal) status.
func (h *harness) waitStatus(id string, want service.Status) {
	h.t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		job, ok := h.svc.Job(id)
		if !ok {
			h.t.Fatalf("job %s disappeared", id)
		}
		if job.Status == want {
			return
		}
		if job.Status.Terminal() {
			h.t.Fatalf("job %s settled as %s (%s) while waiting for %s", id, job.Status, job.Error, want)
		}
		time.Sleep(time.Millisecond)
	}
	h.t.Fatalf("job %s never reached %s", id, want)
}

// postJSON posts to the harness's API and returns status + body.
func (h *harness) postJSON(path string, body any) (int, []byte) {
	h.t.Helper()
	blob, err := json.Marshal(body)
	if err != nil {
		h.t.Fatal(err)
	}
	resp, err := http.Post(h.ts.URL+path, "application/json", bytes.NewReader(blob))
	if err != nil {
		h.t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}

// countWAL counts occurrences of substr across the data dir's WAL segments.
// Frames are length-prefixed JSON, so a JSON-shaped needle is unambiguous.
func countWAL(t *testing.T, dir, substr string) int {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal", "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, seg := range segs {
		raw, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		n += bytes.Count(raw, []byte(substr))
	}
	return n
}

// TestClusterEndToEnd runs a mixed workload across two worker nodes and
// checks the public API semantics a clustered deployment must preserve:
// degraded readiness without workers, per-job worker attribution, the
// registry, and cluster stats.
func TestClusterEndToEnd(t *testing.T) {
	h := newCoordinator(t, nil)

	// Queued work with no live workers: degraded readiness (503).
	job1, err := h.svc.Submit(service.Request{
		Type: service.JobThreshold, Scenario: "tiny",
		Params: service.Params{Lambda0: 0.02, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(h.ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz with queued work and no workers: %d, want 503", resp.StatusCode)
	}

	h.startWorker("w-1")
	h.startWorker("w-2")

	ids := []string{job1.ID}
	for i, body := range []service.Request{
		{Type: service.JobThreshold, Scenario: "tiny", Params: service.Params{Lambda0: 0.02, Seed: 2}},
		{Type: service.JobODE, Scenario: "tiny", Params: service.Params{Lambda0: 0.02, Tf: 40, Points: 50}},
		{Type: service.JobABM, Scenario: "tiny", Params: service.Params{Lambda0: 0.02, Trials: 2, Nodes: 500, Tf: 30}},
	} {
		job, err := h.svc.Submit(body)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, job.ID)
	}
	for _, id := range ids {
		job := h.waitJob(id)
		if job.Status != service.StatusSucceeded {
			t.Fatalf("job %s: %s (%s)", id, job.Status, job.Error)
		}
		if job.Worker != "w-1" && job.Worker != "w-2" {
			t.Errorf("job %s completed by %q, want one of the two workers", id, job.Worker)
		}
		if len(job.Result) == 0 || job.ElapsedMS <= 0 {
			t.Errorf("job %s: missing result or elapsed (%f)", id, job.ElapsedMS)
		}
	}

	// Both nodes are registered and live; readiness recovered.
	ws := h.svc.Workers()
	if len(ws) != 2 || ws[0].ID != "w-1" || ws[1].ID != "w-2" {
		t.Fatalf("Workers = %+v, want w-1 and w-2", ws)
	}
	var completed int64
	for _, w := range ws {
		if !w.Live {
			t.Errorf("worker %s not live", w.ID)
		}
		completed += w.JobsCompleted
	}
	if completed != int64(len(ids)) {
		t.Errorf("completed across workers = %d, want %d", completed, len(ids))
	}
	if resp, err = http.Get(h.ts.URL + "/readyz"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("readyz with live workers: %d, want 200", resp.StatusCode)
	}
	st := h.svc.Stats()
	if st.Cluster == nil || st.Cluster.Workers != 2 || st.Cluster.LeasesActive != 0 {
		t.Errorf("cluster stats = %+v, want 2 workers, 0 active leases", st.Cluster)
	}
	if !strings.Contains(h.journal.String(), "lease granted to worker") {
		t.Error("journal missing lease-grant events")
	}
}

// TestWorkerKillRequeue is the acceptance crash scenario: a worker leases a
// job and dies silently; the lease expires, the coordinator requeues the
// job, a surviving worker completes it with a byte-identical result, and
// the dead worker's late upload bounces off the fencing token — leaving
// exactly one terminal WAL record.
func TestWorkerKillRequeue(t *testing.T) {
	dir := t.TempDir()
	h := newCoordinator(t, func(cfg *service.Config) {
		cfg.StoreDir = dir
		cfg.StoreOptions = store.Options{SyncMode: store.SyncNone}
	})

	req := service.Request{Type: service.JobODE, Scenario: "tiny",
		Params: service.Params{Lambda0: 0.02, Tf: 40, Points: 50}}
	job, err := h.svc.Submit(req)
	if err != nil {
		t.Fatal(err)
	}

	// "w-dead" claims the job and is never heard from again.
	leased, err := h.svc.LeaseNext("w-dead", "")
	if err != nil || leased == nil {
		t.Fatalf("lease: %v, %v", leased, err)
	}
	if leased.JobID != job.ID || leased.Attempt != 1 {
		t.Fatalf("leased = %+v, want attempt 1 of %s", leased, job.ID)
	}
	if running, _ := h.svc.Job(job.ID); running.Worker != "w-dead" {
		t.Errorf("running job attributes worker %q, want w-dead", running.Worker)
	}

	// The survivor picks the job up after the lease expires.
	h.startWorker("w-live")
	done := h.waitJob(job.ID)
	if done.Status != service.StatusSucceeded {
		t.Fatalf("job after requeue: %s (%s)", done.Status, done.Error)
	}
	if done.Worker != "w-live" {
		t.Errorf("completed by %q, want the survivor w-live", done.Worker)
	}
	st := h.svc.Stats()
	if st.Cluster.LeaseExpirations < 1 || st.Cluster.Requeues < 1 {
		t.Errorf("cluster stats = %+v, want >=1 expiration and requeue", st.Cluster)
	}
	// The journal mirror JSON-escapes the quoted worker names.
	jl := h.journal.String()
	if !strings.Contains(jl, `lease granted to worker \"w-dead\"`) ||
		!strings.Contains(jl, "requeued") ||
		!strings.Contains(jl, `lease granted to worker \"w-live\"`) {
		t.Errorf("journal does not show the job migrating:\n%s", jl)
	}

	// The dead worker wakes up and uploads against its superseded token:
	// fenced out with 409, job untouched.
	code, body := h.postJSON("/v1/internal/jobs/"+job.ID+"/result", service.ResultRequest{
		WorkerID:   "w-dead",
		LeaseToken: leased.LeaseToken,
		Status:     string(service.StatusFailed),
		Error:      "late and wrong",
	})
	if code != http.StatusConflict {
		t.Errorf("late upload: %d %s, want 409", code, body)
	}
	// And so does its late heartbeat.
	code, body = h.postJSON("/v1/internal/jobs/"+job.ID+"/heartbeat", service.HeartbeatRequest{
		WorkerID: "w-dead", LeaseToken: leased.LeaseToken,
	})
	if code != http.StatusConflict {
		t.Errorf("late heartbeat: %d %s, want 409", code, body)
	}
	after, _ := h.svc.Job(job.ID)
	if after.Status != service.StatusSucceeded || !bytes.Equal(after.Result, done.Result) {
		t.Errorf("late upload mutated the job: %s", after.Status)
	}

	// Exactly one terminal WAL record — the late upload added nothing.
	needle := fmt.Sprintf(`"op":"finished","job_id":"%s"`, job.ID)
	if n := countWAL(t, dir, needle); n != 1 {
		t.Errorf("WAL holds %d terminal records for %s, want exactly 1", n, job.ID)
	}

	// Byte-identical to a standalone run of the same request.
	alone, err := service.New(service.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer alone.Close()
	if _, err := alone.RegisterScenario("tiny", []int{2, 4, 8}, []float64{0.5, 0.3, 0.2}); err != nil {
		t.Fatal(err)
	}
	ref, err := alone.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for !ref.Status.Terminal() {
		if time.Now().After(deadline) {
			t.Fatal("standalone reference job did not settle")
		}
		time.Sleep(2 * time.Millisecond)
		ref, _ = alone.Job(ref.ID)
	}
	if ref.Status != service.StatusSucceeded {
		t.Fatalf("standalone reference: %s (%s)", ref.Status, ref.Error)
	}
	if !bytes.Equal(ref.Result, done.Result) {
		t.Errorf("cluster result differs from standalone:\n%s\nvs\n%s", done.Result, ref.Result)
	}
}

// TestCoordinatorRestartWithLeasedJob restarts the coordinator while a job
// is leased out: WAL replay re-enqueues the job under its original id with
// the attempt budget intact, the old worker's heartbeat (its token died
// with the old process) is rejected, and the job completes on a fresh
// lease.
func TestCoordinatorRestartWithLeasedJob(t *testing.T) {
	dir := t.TempDir()
	cfg := service.Config{
		QueueDepth: 16,
		StoreDir:   dir,
		StoreOptions: store.Options{
			SyncMode: store.SyncNone,
		},
		Cluster: service.ClusterConfig{
			Enabled:  true,
			LeaseTTL: time.Hour, // no reaping in this test; restart does the work
		},
	}
	svc1, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The built-in scenario; uploaded tables survive restarts too via their
	// own WAL records (TestScenarioWALReplay covers that path).
	job, err := svc1.Submit(service.Request{Type: service.JobThreshold,
		Params: service.Params{Lambda0: 0.02}})
	if err != nil {
		t.Fatal(err)
	}
	leased, err := svc1.LeaseNext("w-old", "")
	if err != nil || leased == nil || leased.Attempt != 1 {
		t.Fatalf("lease: %+v, %v", leased, err)
	}
	svc1.Close() // the "crash": the leased job has no terminal WAL record

	h := &harness{t: t, journal: &syncBuffer{}}
	cfg.JournalSink = h.journal
	h.svc, err = service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.ts = httptest.NewServer(h.svc.Handler())
	t.Cleanup(func() {
		h.ts.Close()
		h.svc.Close()
	})

	// Recovery re-enqueued the job under its original id.
	rec, ok := h.svc.Job(job.ID)
	if !ok || rec.Status != service.StatusQueued {
		t.Fatalf("recovered job = %+v ok=%v, want %s queued", rec, ok, job.ID)
	}
	// The old worker's heartbeat carries a token of the previous process
	// life: every restart invalidates all tokens.
	code, body := h.postJSON("/v1/internal/jobs/"+job.ID+"/heartbeat", service.HeartbeatRequest{
		WorkerID: "w-old", LeaseToken: leased.LeaseToken,
	})
	if code != http.StatusConflict {
		t.Errorf("stale heartbeat after restart: %d %s, want 409", code, body)
	}

	// A fresh lease continues the attempt count where the WAL left it.
	leased2, err := h.svc.LeaseNext("w-new", "")
	if err != nil || leased2 == nil {
		t.Fatalf("lease after restart: %v, %v", leased2, err)
	}
	if leased2.JobID != job.ID || leased2.Attempt != 2 {
		t.Errorf("leased after restart = attempt %d of %s, want attempt 2 of %s",
			leased2.Attempt, leased2.JobID, job.ID)
	}

	// Complete it through the executor a real worker runs.
	sc, err := service.ScenarioFromTable(leased2.Scenario)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := service.ExecuteRequest(context.Background(), sc, leased2.Request, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	fin, err := h.svc.CompleteLease(job.ID, service.ResultRequest{
		WorkerID:   "w-new",
		LeaseToken: leased2.LeaseToken,
		Status:     string(service.StatusSucceeded),
		Result:     raw,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fin.Status != service.StatusSucceeded || fin.Worker != "w-new" {
		t.Errorf("completed job = %s by %q, want succeeded by w-new", fin.Status, fin.Worker)
	}
}

// TestPoisonJobExhaustsBudget leases a job to workers that keep dying until
// MaxAttempts is spent, then checks the job fails terminally instead of
// crash-looping the cluster forever.
func TestPoisonJobExhaustsBudget(t *testing.T) {
	h := newCoordinator(t, func(cfg *service.Config) {
		cfg.Cluster.MaxAttempts = 2
		cfg.Cluster.LeaseTTL = 40 * time.Millisecond
	})
	job, err := h.svc.Submit(service.Request{Type: service.JobThreshold, Scenario: "tiny",
		Params: service.Params{Lambda0: 0.02}})
	if err != nil {
		t.Fatal(err)
	}

	// Attempt 1: lease and go silent; the reaper requeues.
	leased, err := h.svc.LeaseNext("w-flaky", "")
	if err != nil || leased == nil || leased.Attempt != 1 {
		t.Fatalf("first lease: %+v, %v", leased, err)
	}
	h.waitStatus(job.ID, service.StatusQueued)

	// Attempt 2: lease and go silent again; the budget is spent, so expiry
	// is terminal.
	deadline := time.Now().Add(30 * time.Second)
	for {
		leased, err = h.svc.LeaseNext("w-flaky", "")
		if err != nil {
			t.Fatal(err)
		}
		if leased != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("requeued job never became leasable")
		}
		time.Sleep(time.Millisecond)
	}
	if leased.Attempt != 2 {
		t.Fatalf("second lease attempt = %d, want 2", leased.Attempt)
	}

	done := h.waitJob(job.ID)
	if done.Status != service.StatusFailed || !strings.Contains(done.Error, "attempt budget is exhausted (2/2)") {
		t.Fatalf("poison job = %s (%s), want terminal failure naming the budget", done.Status, done.Error)
	}
	st := h.svc.Stats()
	if st.Cluster.LeaseExpirations != 2 || st.Cluster.Requeues != 1 {
		t.Errorf("cluster stats = %+v, want 2 expirations, 1 requeue", st.Cluster)
	}
}

// TestHeartbeatRelaysProgressAndCancel drives the heartbeat path by hand:
// relayed events surface as the job's live progress, a client cancellation
// rides back on the ack, and the worker's cancelled upload settles the job.
func TestHeartbeatRelaysProgressAndCancel(t *testing.T) {
	h := newCoordinator(t, func(cfg *service.Config) {
		cfg.Cluster.LeaseTTL = 5 * time.Second // no reaping mid-test
	})
	job, err := h.svc.Submit(service.Request{Type: service.JobODE, Scenario: "tiny",
		Params: service.Params{Lambda0: 0.02, Tf: 40}})
	if err != nil {
		t.Fatal(err)
	}
	leased, err := h.svc.LeaseNext("w-hb", "")
	if err != nil || leased == nil {
		t.Fatalf("lease: %v, %v", leased, err)
	}

	code, body := h.postJSON("/v1/internal/jobs/"+job.ID+"/heartbeat", service.HeartbeatRequest{
		WorkerID: "w-hb", LeaseToken: leased.LeaseToken,
		Events: []service.ProgressEvent{{Stage: "ode", Step: 5, Total: 100, T: 1.5, Value: 0.2}},
	})
	if code != http.StatusOK {
		t.Fatalf("heartbeat: %d %s", code, body)
	}
	var ack service.HeartbeatAck
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Cancel {
		t.Error("uncancelled job acked cancel")
	}
	live, _ := h.svc.Job(job.ID)
	if live.Progress == nil || live.Progress.Stage != "ode" || live.Progress.Step != 5 {
		t.Errorf("relayed progress = %+v, want the heartbeat's ode step 5", live.Progress)
	}

	// An upload that is not terminal is a bad request, not a state change.
	if code, body = h.postJSON("/v1/internal/jobs/"+job.ID+"/result", service.ResultRequest{
		WorkerID: "w-hb", LeaseToken: leased.LeaseToken, Status: "running",
	}); code != http.StatusBadRequest {
		t.Errorf("non-terminal upload: %d %s, want 400", code, body)
	}

	// Cancel client-side; the next heartbeat tells the worker to stop.
	if _, err := h.svc.Cancel(job.ID); err != nil {
		t.Fatal(err)
	}
	code, body = h.postJSON("/v1/internal/jobs/"+job.ID+"/heartbeat", service.HeartbeatRequest{
		WorkerID: "w-hb", LeaseToken: leased.LeaseToken,
	})
	if code != http.StatusOK {
		t.Fatalf("heartbeat after cancel: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatal(err)
	}
	if !ack.Cancel {
		t.Error("heartbeat after client cancel did not ack cancel")
	}

	// The worker winds down and uploads the cancellation.
	if code, body = h.postJSON("/v1/internal/jobs/"+job.ID+"/result", service.ResultRequest{
		WorkerID: "w-hb", LeaseToken: leased.LeaseToken,
		Status: string(service.StatusCancelled), Error: "cancelled by client",
	}); code != http.StatusOK {
		t.Fatalf("cancelled upload: %d %s", code, body)
	}
	done := h.waitJob(job.ID)
	if done.Status != service.StatusCancelled {
		t.Errorf("job = %s, want cancelled", done.Status)
	}
	// The released lease fences any further traffic.
	if code, body = h.postJSON("/v1/internal/jobs/"+job.ID+"/heartbeat", service.HeartbeatRequest{
		WorkerID: "w-hb", LeaseToken: leased.LeaseToken,
	}); code != http.StatusConflict {
		t.Errorf("heartbeat after release: %d %s, want 409", code, body)
	}
}

// TestCoordinatorDrainWaitsForRemoteJobs drains a coordinator with work
// still queued and leased: remote workers keep leasing from the closed
// queue's buffer and every job settles before Drain returns.
func TestCoordinatorDrainWaitsForRemoteJobs(t *testing.T) {
	h := newCoordinator(t, func(cfg *service.Config) {
		cfg.Cluster.LeaseTTL = 500 * time.Millisecond
	})
	h.startWorker("w-drain")

	var ids []string
	for seed := 1; seed <= 3; seed++ {
		job, err := h.svc.Submit(service.Request{Type: service.JobThreshold, Scenario: "tiny",
			Params: service.Params{Lambda0: 0.02, Seed: int64(seed)}})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, job.ID)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := h.svc.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, id := range ids {
		job, _ := h.svc.Job(id)
		if job.Status != service.StatusSucceeded {
			t.Errorf("job %s after drain: %s (%s), want succeeded", id, job.Status, job.Error)
		}
	}
}

// TestWorkerDrainFinishesLeasedJob SIGTERMs (ctx-cancels) a worker mid-job:
// Run returns only after the leased job completed and its result uploaded.
func TestWorkerDrainFinishesLeasedJob(t *testing.T) {
	h := newCoordinator(t, func(cfg *service.Config) {
		cfg.Cluster.LeaseTTL = 5 * time.Second
	})
	// Slow enough (millions of ABM node-steps) that the cancel lands mid-job.
	job, err := h.svc.Submit(service.Request{Type: service.JobABM, Scenario: "tiny",
		Params: service.Params{Lambda0: 0.001, Trials: 3, Nodes: 20000, Tf: 150}})
	if err != nil {
		t.Fatal(err)
	}
	stop := h.startWorker("w-term")
	h.waitStatus(job.ID, service.StatusRunning)

	stop() // blocks until Run returns — i.e. until the drain completed

	done, _ := h.svc.Job(job.ID)
	if done.Status != service.StatusSucceeded {
		t.Fatalf("job after worker drain: %s (%s), want succeeded before Run returned",
			done.Status, done.Error)
	}
	if done.Worker != "w-term" {
		t.Errorf("completed by %q, want the drained worker", done.Worker)
	}
}
