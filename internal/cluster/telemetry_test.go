package cluster

import (
	"testing"
	"time"
)

// TestSetTelemetryAndLeaseAge covers the registry's telemetry columns: the
// sample a worker relays shows up (copied, not aliased) on Workers(), the
// oldest-lease age tracks grant/extend time, and deregistration drops both.
func TestSetTelemetryAndLeaseAge(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	tbl := New(10*time.Second, time.Minute, clock)

	tbl.Touch("w-1", "host:1")
	tel := Telemetry{Stage: "ode", JobsExecuted: 3, Goroutines: 12, HeapAllocBytes: 1 << 20}
	tbl.SetTelemetry("w-1", tel)
	tel.Stage = "mutated-after-store" // the table must have copied

	ws := tbl.Workers()
	if len(ws) != 1 || ws[0].Telemetry == nil {
		t.Fatalf("Workers = %+v, want one worker with telemetry", ws)
	}
	if got := ws[0].Telemetry; got.Stage != "ode" || got.JobsExecuted != 3 {
		t.Errorf("telemetry = %+v, want the stored sample unmutated", got)
	}
	// The returned sample is itself a copy: mutating it must not leak back.
	ws[0].Telemetry.Stage = "scribbled"
	if got := tbl.Workers()[0].Telemetry.Stage; got != "ode" {
		t.Errorf("Workers leaked a live telemetry pointer (stage %q)", got)
	}

	// No leases: no age reported.
	if age := ws[0].OldestLeaseAgeMS; age != 0 {
		t.Errorf("lease age with no leases = %g, want 0", age)
	}

	// Grant two leases at different times; the age reflects the older one.
	tbl.Grant("j-1", "w-1", 1)
	now = now.Add(2 * time.Second)
	tbl.Grant("j-2", "w-1", 1)
	now = now.Add(1 * time.Second)
	if age := tbl.Workers()[0].OldestLeaseAgeMS; age != 3000 {
		t.Errorf("oldest lease age = %gms, want 3000", age)
	}

	// Extending the older lease resets its age; the other becomes oldest.
	lease, _ := tbl.Leased("j-1")
	if _, err := tbl.Extend("j-1", lease.Token); err != nil {
		t.Fatal(err)
	}
	if age := tbl.Workers()[0].OldestLeaseAgeMS; age != 1000 {
		t.Errorf("oldest lease age after extend = %gms, want 1000", age)
	}

	// Telemetry for an unknown worker registers it (touch semantics), and
	// deregistration forgets the sample with the worker.
	tbl.SetTelemetry("w-2", Telemetry{Stage: "abm"})
	if ws := tbl.Workers(); len(ws) != 2 {
		t.Fatalf("Workers after sample from new node = %d entries, want 2", len(ws))
	}
	tbl.Deregister("w-2")
	for _, w := range tbl.Workers() {
		if w.ID == "w-2" {
			t.Errorf("deregistered worker still listed: %+v", w)
		}
	}
}
