// Package cluster holds the coordinator-side state machine of distributed
// rumord: a lease table handing queued jobs to remote workers under fenced,
// TTL-bounded leases, and a worker registry tracking liveness and
// throughput per node. internal/service owns the job queue and threads it
// through this table; internal/cluster/worker is the node that acquires
// the leases over HTTP. See DESIGN.md §12 for the lease state machine and
// why fencing tokens make duplicate result uploads safe.
//
// The package depends only on the standard library and is deliberately
// ignorant of jobs' contents: a lease is (job id, worker id, token,
// deadline). The clock is injectable so expiry tests are deterministic.
package cluster

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Lease errors, mapped onto HTTP statuses by internal/service: a stale
// token (the lease expired and was re-granted, or the coordinator
// restarted) must be rejected with a conflict so a dead worker's late
// heartbeat or result upload cannot corrupt a job another worker now owns.
var (
	// ErrNotLeased marks an operation on a job that holds no active lease.
	ErrNotLeased = errors.New("cluster: job not leased")
	// ErrStaleToken marks a token that does not match the job's current
	// lease — the fencing failure.
	ErrStaleToken = errors.New("cluster: stale lease token")
)

// Lease is one active (or just-expired/just-released) claim of a job by a
// worker. Values are snapshots; the table owns the live state.
type Lease struct {
	JobID  string
	Worker string
	// Token fences the lease: it embeds the attempt number and 8 random
	// bytes, is minted fresh on every grant, and must accompany every
	// heartbeat and result upload. A requeue (or coordinator restart)
	// invalidates it.
	Token string
	// Attempt counts lease grants for this job, 1-based.
	Attempt  int
	Deadline time.Time
	// Cancel reports that the coordinator wants the job stopped; workers
	// read it from heartbeat acknowledgements.
	Cancel bool
}

// Telemetry is the self-reported health snapshot a worker piggybacks on
// heartbeats and result uploads: what it is doing right now plus a few Go
// runtime vitals. The coordinator stores the latest sample per worker and
// serves it on GET /v1/workers; rumorctl workers/top render it.
type Telemetry struct {
	// Stage is the most recent solver stage the worker reported
	// (warmup/sweep/ode/fbsm/...), empty when idle.
	Stage string `json:"stage,omitempty"`
	// InvariantViolations counts invariant-monitor trips on the worker
	// since it started, across all jobs it executed.
	InvariantViolations int64 `json:"invariant_violations"`
	// JobsExecuted counts jobs the worker ran to a terminal status,
	// whether or not the upload was accepted.
	JobsExecuted int64 `json:"jobs_executed"`
	// Go runtime vitals, sampled at send time.
	Goroutines          int     `json:"goroutines"`
	GOMAXPROCS          int     `json:"gomaxprocs"`
	HeapAllocBytes      uint64  `json:"heap_alloc_bytes"`
	GCPauseSecondsTotal float64 `json:"gc_pause_seconds_total"`
	// UptimeSeconds is how long the worker process has been running.
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// WorkerInfo is the registry's view of one worker node, served by
// GET /v1/workers.
type WorkerInfo struct {
	ID   string `json:"id"`
	Addr string `json:"addr,omitempty"`
	// Live reports a lease poll or heartbeat within the liveness window.
	Live       bool `json:"live"`
	LeasesHeld int  `json:"leases_held"`
	// JobsCompleted counts result uploads accepted from this worker.
	JobsCompleted int64     `json:"jobs_completed"`
	LastSeen      time.Time `json:"last_seen"`
	// OldestLeaseAgeMS is how long ago the oldest lease this worker still
	// holds was granted or last extended, in milliseconds — a growing value
	// against a short heartbeat interval means the worker stopped
	// heartbeating and the lease is drifting toward expiry. Zero when the
	// worker holds no leases.
	OldestLeaseAgeMS float64 `json:"oldest_lease_age_ms,omitempty"`
	// Telemetry is the last self-reported sample, nil until the worker's
	// first heartbeat or result upload carries one.
	Telemetry *Telemetry `json:"telemetry,omitempty"`
}

type workerState struct {
	addr      string
	lastSeen  time.Time
	completed int64
	tel       *Telemetry
}

// Table is the lease table plus worker registry. All methods are safe for
// concurrent use; the zero value is not usable, call New.
type Table struct {
	ttl      time.Duration
	liveness time.Duration
	now      func() time.Time

	mu      sync.Mutex
	leases  map[string]*Lease // by job id
	workers map[string]*workerState
}

// New returns a table granting leases of the given TTL and considering a
// worker live within the liveness window of its last poll or heartbeat.
// now is the clock (nil: time.Now).
func New(ttl, liveness time.Duration, now func() time.Time) *Table {
	if now == nil {
		now = time.Now
	}
	return &Table{
		ttl:      ttl,
		liveness: liveness,
		now:      now,
		leases:   make(map[string]*Lease),
		workers:  make(map[string]*workerState),
	}
}

// TTL returns the lease duration granted by this table.
func (t *Table) TTL() time.Duration { return t.ttl }

// Touch records that a worker was seen (lease poll, heartbeat or upload),
// registering it on first contact.
func (t *Table) Touch(workerID, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.touchLocked(workerID, addr)
}

func (t *Table) touchLocked(workerID, addr string) *workerState {
	w := t.workers[workerID]
	if w == nil {
		w = &workerState{}
		t.workers[workerID] = w
	}
	if addr != "" {
		w.addr = addr
	}
	w.lastSeen = t.now()
	return w
}

// Grant leases jobID to workerID under a fresh fenced token. Any previous
// lease of the job is superseded (its token goes stale). attempt is the
// 1-based grant count the caller tracks.
func (t *Table) Grant(jobID, workerID string, attempt int) Lease {
	var buf [8]byte
	rand.Read(buf[:]) // crypto/rand.Read never fails on supported platforms
	t.mu.Lock()
	defer t.mu.Unlock()
	t.touchLocked(workerID, "")
	l := &Lease{
		JobID:    jobID,
		Worker:   workerID,
		Token:    fmt.Sprintf("%s.a%d.%s", jobID, attempt, hex.EncodeToString(buf[:])),
		Attempt:  attempt,
		Deadline: t.now().Add(t.ttl),
	}
	t.leases[jobID] = l
	return *l
}

// check validates a (job, token) pair. Callers hold t.mu.
func (t *Table) checkLocked(jobID, token string) (*Lease, error) {
	l, ok := t.leases[jobID]
	if !ok {
		return nil, ErrNotLeased
	}
	if l.Token != token {
		return nil, ErrStaleToken
	}
	return l, nil
}

// Extend validates the token and pushes the lease deadline out by one TTL,
// returning the refreshed snapshot (including the cancel flag). It also
// touches the owning worker.
func (t *Table) Extend(jobID, token string) (Lease, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, err := t.checkLocked(jobID, token)
	if err != nil {
		return Lease{}, err
	}
	l.Deadline = t.now().Add(t.ttl)
	t.touchLocked(l.Worker, "")
	return *l, nil
}

// Release validates the token and removes the lease — the result-upload
// path. The owning worker's completion count is bumped and it is touched.
func (t *Table) Release(jobID, token string) (Lease, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, err := t.checkLocked(jobID, token)
	if err != nil {
		return Lease{}, err
	}
	delete(t.leases, jobID)
	t.touchLocked(l.Worker, "").completed++
	return *l, nil
}

// Drop removes a job's lease unconditionally (job cancelled or terminally
// failed coordinator-side). A no-op when none is held.
func (t *Table) Drop(jobID string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.leases, jobID)
}

// RequestCancel marks a leased job for cancellation; the flag rides back
// on the next heartbeat acknowledgement. Reports whether a lease was held.
func (t *Table) RequestCancel(jobID string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.leases[jobID]
	if ok {
		l.Cancel = true
	}
	return ok
}

// Expired pops and returns every lease whose deadline has passed, oldest
// deadline first. The popped tokens are thereby invalidated: a worker that
// went silent past the TTL can no longer heartbeat or upload against them.
func (t *Table) Expired() []Lease {
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Lease
	for id, l := range t.leases {
		if now.After(l.Deadline) {
			out = append(out, *l)
			delete(t.leases, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Deadline.Before(out[j].Deadline) })
	return out
}

// Active returns the number of live leases.
func (t *Table) Active() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.leases)
}

// Leased returns the active lease of jobID, if any.
func (t *Table) Leased(jobID string) (Lease, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.leases[jobID]
	if !ok {
		return Lease{}, false
	}
	return *l, true
}

// SetTelemetry stores the latest self-reported sample for workerID,
// registering the worker on first contact (heartbeats can race the first
// lease poll through a proxy).
func (t *Table) SetTelemetry(workerID string, tel Telemetry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	w := t.touchLocked(workerID, "")
	cp := tel
	w.tel = &cp
}

// Deregister removes a worker from the registry (the SIGTERM-drain
// goodbye). Leases it still holds are untouched — they expire normally,
// which is the safe default if a "draining" worker in fact died mid-job.
func (t *Table) Deregister(workerID string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.workers, workerID)
}

// LiveWorkers counts workers seen within the liveness window.
func (t *Table) LiveWorkers() int {
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, w := range t.workers {
		if now.Sub(w.lastSeen) <= t.liveness {
			n++
		}
	}
	return n
}

// Workers snapshots the registry sorted by worker id.
func (t *Table) Workers() []WorkerInfo {
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	held := make(map[string]int, len(t.workers))
	oldest := make(map[string]time.Duration, len(t.workers))
	for _, l := range t.leases {
		held[l.Worker]++
		// Deadline was set to (grant-or-extend time + ttl), so the time
		// since the lease was last refreshed is now − (deadline − ttl).
		if age := now.Sub(l.Deadline.Add(-t.ttl)); age > oldest[l.Worker] {
			oldest[l.Worker] = age
		}
	}
	out := make([]WorkerInfo, 0, len(t.workers))
	for id, w := range t.workers {
		info := WorkerInfo{
			ID:               id,
			Addr:             w.addr,
			Live:             now.Sub(w.lastSeen) <= t.liveness,
			LeasesHeld:       held[id],
			JobsCompleted:    w.completed,
			LastSeen:         w.lastSeen,
			OldestLeaseAgeMS: float64(oldest[id]) / float64(time.Millisecond),
		}
		if w.tel != nil {
			cp := *w.tel
			info.Telemetry = &cp
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
