package cluster

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is an injectable, manually advanced clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestGrantExtendRelease(t *testing.T) {
	clk := newFakeClock()
	tb := New(10*time.Second, 30*time.Second, clk.Now)

	l := tb.Grant("j-1", "w-a", 1)
	if l.JobID != "j-1" || l.Worker != "w-a" || l.Attempt != 1 {
		t.Fatalf("grant = %+v", l)
	}
	if !strings.HasPrefix(l.Token, "j-1.a1.") || len(l.Token) != len("j-1.a1.")+16 {
		t.Errorf("token %q: want j-1.a1.<16 hex chars>", l.Token)
	}
	if want := clk.Now().Add(10 * time.Second); !l.Deadline.Equal(want) {
		t.Errorf("deadline = %v, want %v", l.Deadline, want)
	}
	if tb.Active() != 1 {
		t.Errorf("Active = %d, want 1", tb.Active())
	}

	// Extend pushes the deadline out from the current clock.
	clk.Advance(7 * time.Second)
	ext, err := tb.Extend("j-1", l.Token)
	if err != nil {
		t.Fatal(err)
	}
	if want := clk.Now().Add(10 * time.Second); !ext.Deadline.Equal(want) {
		t.Errorf("extended deadline = %v, want %v", ext.Deadline, want)
	}

	// Release pops the lease and credits the worker.
	rel, err := tb.Release("j-1", l.Token)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Worker != "w-a" || tb.Active() != 0 {
		t.Errorf("release = %+v, active %d", rel, tb.Active())
	}
	ws := tb.Workers()
	if len(ws) != 1 || ws[0].JobsCompleted != 1 || ws[0].LeasesHeld != 0 {
		t.Errorf("registry after release = %+v", ws)
	}

	// The released token is dead.
	if _, err := tb.Extend("j-1", l.Token); !errors.Is(err, ErrNotLeased) {
		t.Errorf("extend after release: %v, want ErrNotLeased", err)
	}
}

func TestFencing(t *testing.T) {
	clk := newFakeClock()
	tb := New(10*time.Second, 30*time.Second, clk.Now)

	l1 := tb.Grant("j-1", "w-a", 1)
	l2 := tb.Grant("j-1", "w-b", 2) // re-grant supersedes; l1's token is stale
	if l1.Token == l2.Token {
		t.Fatal("re-grant reused the token")
	}
	if _, err := tb.Extend("j-1", l1.Token); !errors.Is(err, ErrStaleToken) {
		t.Errorf("stale extend: %v, want ErrStaleToken", err)
	}
	if _, err := tb.Release("j-1", l1.Token); !errors.Is(err, ErrStaleToken) {
		t.Errorf("stale release: %v, want ErrStaleToken", err)
	}
	if _, err := tb.Release("j-1", l2.Token); err != nil {
		t.Errorf("current release: %v", err)
	}
	if _, err := tb.Release("j-9", "whatever"); !errors.Is(err, ErrNotLeased) {
		t.Errorf("unknown job: %v, want ErrNotLeased", err)
	}
}

func TestTokensUnique(t *testing.T) {
	tb := New(time.Second, time.Second, nil)
	seen := make(map[string]bool)
	for i := 0; i < 64; i++ {
		l := tb.Grant(fmt.Sprintf("j-%d", i), "w", 1)
		if seen[l.Token] {
			t.Fatalf("duplicate token %q", l.Token)
		}
		seen[l.Token] = true
	}
}

func TestExpired(t *testing.T) {
	clk := newFakeClock()
	tb := New(10*time.Second, 30*time.Second, clk.Now)

	a := tb.Grant("j-a", "w-1", 1)
	clk.Advance(3 * time.Second)
	tb.Grant("j-b", "w-2", 1)

	if got := tb.Expired(); len(got) != 0 {
		t.Fatalf("nothing due yet, Expired = %+v", got)
	}

	// 8s later j-a (deadline t+10) is past due, j-b (t+13) is not.
	clk.Advance(8 * time.Second)
	got := tb.Expired()
	if len(got) != 1 || got[0].JobID != "j-a" {
		t.Fatalf("Expired = %+v, want just j-a", got)
	}
	// Popping invalidated the token: the late worker is fenced out.
	if _, err := tb.Extend("j-a", a.Token); !errors.Is(err, ErrNotLeased) {
		t.Errorf("extend after expiry: %v, want ErrNotLeased", err)
	}
	if tb.Active() != 1 {
		t.Errorf("Active = %d, want 1 (j-b)", tb.Active())
	}

	// Both a re-grant of j-a and j-b expire eventually, oldest deadline first.
	tb.Grant("j-a", "w-3", 2)
	clk.Advance(time.Minute)
	got = tb.Expired()
	if len(got) != 2 || got[0].JobID != "j-b" || got[1].JobID != "j-a" {
		t.Fatalf("Expired = %+v, want j-b (older deadline) then j-a", got)
	}
}

func TestExtendDefersExpiry(t *testing.T) {
	clk := newFakeClock()
	tb := New(10*time.Second, 30*time.Second, clk.Now)
	l := tb.Grant("j-1", "w-a", 1)
	for i := 0; i < 5; i++ {
		clk.Advance(9 * time.Second)
		if got := tb.Expired(); len(got) != 0 {
			t.Fatalf("lease expired despite heartbeats: %+v", got)
		}
		if _, err := tb.Extend("j-1", l.Token); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(11 * time.Second)
	if got := tb.Expired(); len(got) != 1 {
		t.Fatalf("Expired = %+v, want the abandoned lease", got)
	}
}

func TestRequestCancel(t *testing.T) {
	tb := New(10*time.Second, 30*time.Second, nil)
	if tb.RequestCancel("j-1") {
		t.Error("cancel of unleased job reported a lease")
	}
	l := tb.Grant("j-1", "w-a", 1)
	if !tb.RequestCancel("j-1") {
		t.Error("cancel of leased job reported no lease")
	}
	ext, err := tb.Extend("j-1", l.Token)
	if err != nil {
		t.Fatal(err)
	}
	if !ext.Cancel {
		t.Error("heartbeat after RequestCancel does not carry the cancel flag")
	}
}

func TestDrop(t *testing.T) {
	tb := New(10*time.Second, 30*time.Second, nil)
	l := tb.Grant("j-1", "w-a", 1)
	tb.Drop("j-1")
	tb.Drop("j-1") // idempotent
	if _, err := tb.Extend("j-1", l.Token); !errors.Is(err, ErrNotLeased) {
		t.Errorf("extend after drop: %v, want ErrNotLeased", err)
	}
}

func TestRegistryLiveness(t *testing.T) {
	clk := newFakeClock()
	tb := New(10*time.Second, 30*time.Second, clk.Now)

	tb.Touch("w-a", "10.0.0.5:0")
	clk.Advance(20 * time.Second)
	tb.Touch("w-b", "")
	tb.Grant("j-1", "w-b", 1)

	if n := tb.LiveWorkers(); n != 2 {
		t.Errorf("LiveWorkers = %d, want 2", n)
	}
	// 15s later w-a (last seen 35s ago) is past the 30s window.
	clk.Advance(15 * time.Second)
	if n := tb.LiveWorkers(); n != 1 {
		t.Errorf("LiveWorkers = %d, want 1", n)
	}
	ws := tb.Workers()
	if len(ws) != 2 || ws[0].ID != "w-a" || ws[1].ID != "w-b" {
		t.Fatalf("Workers = %+v, want w-a then w-b", ws)
	}
	if ws[0].Live || ws[0].Addr != "10.0.0.5:0" {
		t.Errorf("w-a = %+v, want lost with its advertised addr", ws[0])
	}
	if !ws[1].Live || ws[1].LeasesHeld != 1 {
		t.Errorf("w-b = %+v, want live with one lease held", ws[1])
	}

	tb.Deregister("w-a")
	if ws := tb.Workers(); len(ws) != 1 || ws[0].ID != "w-b" {
		t.Errorf("Workers after deregister = %+v, want just w-b", ws)
	}
	// Deregistering does not drop leases; they expire on schedule instead.
	tb.Deregister("w-b")
	if tb.Active() != 1 {
		t.Errorf("Active after deregister = %d, want the lease to survive", tb.Active())
	}
}

func TestLeased(t *testing.T) {
	tb := New(10*time.Second, 30*time.Second, nil)
	if _, ok := tb.Leased("j-1"); ok {
		t.Error("Leased reported a lease on an empty table")
	}
	tb.Grant("j-1", "w-a", 3)
	l, ok := tb.Leased("j-1")
	if !ok || l.Worker != "w-a" || l.Attempt != 3 {
		t.Errorf("Leased = %+v ok=%v", l, ok)
	}
}

// TestConcurrentAccess hammers the table from many goroutines under -race.
func TestConcurrentAccess(t *testing.T) {
	tb := New(time.Millisecond, time.Second, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w := fmt.Sprintf("w-%d", g)
			for i := 0; i < 100; i++ {
				id := fmt.Sprintf("j-%d-%d", g, i)
				l := tb.Grant(id, w, 1)
				tb.Extend(id, l.Token)
				if i%3 == 0 {
					tb.Release(id, l.Token)
				}
				tb.Expired()
				tb.Workers()
				tb.LiveWorkers()
			}
		}(g)
	}
	wg.Wait()
}
