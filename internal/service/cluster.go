package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"rumornet/internal/cluster"
	"rumornet/internal/degreedist"
	"rumornet/internal/obs"
	"rumornet/internal/obs/invariant"
	"rumornet/internal/obs/journal"
	"rumornet/internal/obs/trace"
)

// This file is the coordinator side of distributed rumord (DESIGN.md §12).
// When Config.Cluster.Enabled is set, the Service starts no local workers;
// instead remote worker nodes (internal/cluster/worker) claim queued jobs
// over the internal API:
//
//	POST /v1/internal/lease                  — claim the next queued job
//	POST /v1/internal/jobs/{id}/heartbeat    — extend the lease, relay progress
//	POST /v1/internal/jobs/{id}/result       — upload the terminal outcome
//	POST /v1/internal/workers/{id}/deregister — graceful goodbye on drain
//
// Every grant mints a fenced lease token; heartbeats and uploads carrying a
// token that is no longer current are rejected with ErrStaleLease (409), so
// a worker presumed dead cannot corrupt a job that has since been requeued.
// The public API is unchanged: leased jobs read as running with live
// progress (the heartbeat feeds the same sink pipeline runJob wires), and a
// result upload lands blob + terminal WAL record before the terminal status
// publishes — the PR 5 durability-before-visibility ordering, extended from
// process crash to node loss.

// ErrStaleLease marks a heartbeat or result upload whose lease token is no
// longer current (409): the lease expired and the job was requeued, or the
// coordinator restarted and all tokens died with it.
var ErrStaleLease = errors.New("stale lease")

// ClusterConfig parameterizes coordinator mode. The zero value (Enabled ==
// false) keeps the service standalone: an in-process worker pool and no
// internal API.
type ClusterConfig struct {
	// Enabled switches the service to coordinator mode: no local workers,
	// jobs execute on remote nodes under leases.
	Enabled bool
	// LeaseTTL is how long a granted lease lives without a heartbeat
	// (default 15s). Expiry requeues the job, so the TTL bounds how long a
	// dead worker delays its jobs.
	LeaseTTL time.Duration
	// MaxAttempts bounds lease grants per job (default 3); a job whose
	// budget is exhausted fails terminally instead of crash-looping the
	// cluster (the poison-job guard).
	MaxAttempts int
	// WorkerLiveness is the window within which a worker must have polled
	// or heartbeated to count as live for /readyz and /v1/workers
	// (default 3x LeaseTTL).
	WorkerLiveness time.Duration
	// ReapInterval is the lease-reaper cadence (default LeaseTTL/4).
	ReapInterval time.Duration
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 15 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.WorkerLiveness <= 0 {
		c.WorkerLiveness = 3 * c.LeaseTTL
	}
	if c.ReapInterval <= 0 {
		c.ReapInterval = c.LeaseTTL / 4
		if c.ReapInterval <= 0 {
			c.ReapInterval = time.Millisecond
		}
	}
	return c
}

// ScenarioTable is the wire form of a scenario: the exact degree table,
// from which a worker rebuilds the Scenario (and the identical fingerprint,
// hence identical cache keys and bit-identical results).
type ScenarioTable struct {
	Name    string    `json:"name"`
	Source  string    `json:"source"`
	Degrees []int     `json:"degrees"`
	Probs   []float64 `json:"probs"`
}

// ScenarioFromTable rebuilds a Scenario from its wire table. Workers call
// it on every leased job; construction is microseconds against the solver
// seconds it precedes.
func ScenarioFromTable(t ScenarioTable) (*Scenario, error) {
	d, err := degreedist.New(t.Degrees, t.Probs)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", t.Name, err)
	}
	return &Scenario{
		Name:        t.Name,
		Source:      t.Source,
		Groups:      d.N(),
		MinDegree:   d.MinDegree(),
		MaxDegree:   d.MaxDegree(),
		MeanDegree:  d.MeanDegree(),
		Fingerprint: fingerprintDist(d),
		dist:        d,
	}, nil
}

// scenarioTable flattens a registered scenario into its wire form.
func scenarioTable(sc *Scenario) ScenarioTable {
	d := sc.dist
	t := ScenarioTable{
		Name:    sc.Name,
		Source:  sc.Source,
		Degrees: make([]int, d.N()),
		Probs:   make([]float64, d.N()),
	}
	for i := 0; i < d.N(); i++ {
		t.Degrees[i] = d.Degree(i)
		t.Probs[i] = d.Prob(i)
	}
	return t
}

// ExecuteRequest runs one resolved request against a scenario and returns
// the marshalled result payload — the executor worker nodes share with the
// coordinator's standalone mode, so a job computes the identical bytes
// wherever it runs. The request must carry canonicalized parameters (a
// LeasedJob always does).
func ExecuteRequest(ctx context.Context, sc *Scenario, req Request, innerWorkers int, prog obs.Progress) (json.RawMessage, error) {
	if innerWorkers < 1 {
		innerWorkers = 1
	}
	payload, err := execute(withInnerWorkers(ctx, innerWorkers), sc, req, prog)
	if err != nil {
		return nil, err
	}
	return json.Marshal(payload)
}

// ProgressEvent is the wire form of one solver checkpoint (obs.Event),
// relayed coordinator-ward in heartbeat and result payloads.
type ProgressEvent struct {
	Stage     string  `json:"stage,omitempty"`
	Step      int     `json:"step,omitempty"`
	Total     int     `json:"total,omitempty"`
	T         float64 `json:"t,omitempty"`
	Value     float64 `json:"value,omitempty"`
	Cost      float64 `json:"cost,omitempty"`
	ElapsedUS int64   `json:"elapsed_us,omitempty"`
	MinI      float64 `json:"min_i,omitempty"`
	MassErr   float64 `json:"mass_err,omitempty"`
}

// WireProgress converts a solver checkpoint to its wire form.
func WireProgress(ev obs.Event) ProgressEvent {
	return ProgressEvent{
		Stage: ev.Stage, Step: ev.Step, Total: ev.Total, T: ev.T,
		Value: ev.Value, Cost: ev.Cost,
		ElapsedUS: ev.Elapsed.Microseconds(),
		MinI:      ev.MinI, MassErr: ev.MassErr,
	}
}

func (p ProgressEvent) toObs() obs.Event {
	return obs.Event{
		Stage: p.Stage, Step: p.Step, Total: p.Total, T: p.T,
		Value: p.Value, Cost: p.Cost,
		Elapsed: time.Duration(p.ElapsedUS) * time.Microsecond,
		MinI:    p.MinI, MassErr: p.MassErr,
	}
}

// LeaseRequest is the body of POST /v1/internal/lease. The optional
// telemetry relay (DESIGN.md §13) lets the poll double as a metrics send:
// workers throttle registry snapshots to one per window across channels,
// and between leases the poll is the only request a worker makes — without
// it, an idle node's final counters would never reach /metrics.
type LeaseRequest struct {
	WorkerID  string             `json:"worker_id"`
	Addr      string             `json:"addr,omitempty"`
	Metrics   obs.Snapshot       `json:"metrics,omitempty"`
	Telemetry *cluster.Telemetry `json:"telemetry,omitempty"`
}

// LeasedJob is the coordinator's answer to a successful lease: everything a
// stateless worker needs to execute the job and nothing more.
type LeasedJob struct {
	JobID    string        `json:"job_id"`
	TraceID  string        `json:"trace_id,omitempty"`
	Request  Request       `json:"request"`
	Scenario ScenarioTable `json:"scenario"`
	// TimeoutMS is the job's wall-clock budget; the worker enforces it
	// locally (the lease TTL separately bounds silence, not runtime).
	TimeoutMS int64 `json:"timeout_ms"`
	// LeaseToken fences this grant; every heartbeat and the result upload
	// must present it.
	LeaseToken  string `json:"lease_token"`
	LeaseTTLMS  int64  `json:"lease_ttl_ms"`
	Attempt     int    `json:"attempt"`
	MaxAttempts int    `json:"max_attempts"`
	// Traceparent is the W3C context of the coordinator's job span. The
	// worker parents its stage spans under it, so the coordinator's
	// http.request → job.<type> chain and the worker's stage.* spans share
	// one trace id end to end (DESIGN.md §13).
	Traceparent string `json:"traceparent,omitempty"`
}

// HeartbeatRequest is the body of POST /v1/internal/jobs/{id}/heartbeat.
// Beyond the lease extension it is the telemetry relay: solver checkpoints
// (Events), worker-side journal entries, finished spans, a registry
// snapshot and a runtime-health sample all piggyback on the beat — no
// extra round trips, and a worker that can heartbeat can always report.
type HeartbeatRequest struct {
	WorkerID   string          `json:"worker_id"`
	LeaseToken string          `json:"lease_token"`
	Events     []ProgressEvent `json:"events,omitempty"`
	// Journal carries worker-local lifecycle entries for this job; the
	// coordinator merges them into the job's flight recorder (their JobID,
	// TraceID and Seq are restamped server-side — a worker cannot write
	// into another job's journal).
	Journal []journal.Entry `json:"journal,omitempty"`
	// Spans are finished worker-side spans, uploaded incrementally; the
	// coordinator imports them into its span ring so /debug/events shows
	// one coherent trace for a remotely-executed job.
	Spans []trace.SpanData `json:"spans,omitempty"`
	// Metrics is a snapshot of the worker's metric registry, re-exported by
	// the coordinator as rumor_worker_*{worker="..."} plus rumor_fleet_*
	// aggregates.
	Metrics obs.Snapshot `json:"metrics,omitempty"`
	// Telemetry is the worker's health sample for GET /v1/workers.
	Telemetry *cluster.Telemetry `json:"telemetry,omitempty"`
}

// HeartbeatAck extends the lease and carries the coordinator's cancel
// request back to the worker.
type HeartbeatAck struct {
	LeaseTTLMS int64 `json:"lease_ttl_ms"`
	Cancel     bool  `json:"cancel,omitempty"`
}

// ResultRequest is the body of POST /v1/internal/jobs/{id}/result.
type ResultRequest struct {
	WorkerID   string `json:"worker_id"`
	LeaseToken string `json:"lease_token"`
	// Status is the terminal outcome the worker reached: succeeded, failed
	// or cancelled.
	Status string          `json:"status"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	// Events is the tail of progress events since the last heartbeat,
	// applied before the job finalizes so the journal is complete.
	Events []ProgressEvent `json:"events,omitempty"`
	// Journal, Spans, Metrics and Telemetry are the final telemetry relay —
	// the same piggyback as HeartbeatRequest, so a job that finishes inside
	// one heartbeat interval still delivers its worker-side trace and
	// journal tail with the result.
	Journal   []journal.Entry    `json:"journal,omitempty"`
	Spans     []trace.SpanData   `json:"spans,omitempty"`
	Metrics   obs.Snapshot       `json:"metrics,omitempty"`
	Telemetry *cluster.Telemetry `json:"telemetry,omitempty"`
}

// ClusterStats is the cluster section of /v1/stats on a coordinator.
type ClusterStats struct {
	// Workers counts registered workers seen within the liveness window.
	Workers      int `json:"workers"`
	LeasesActive int `json:"leases_active"`
	// LeaseExpirations counts leases reaped after their TTL passed without
	// a heartbeat; Requeues the expired jobs that re-entered the queue
	// (the difference fell to cancellation or the attempt budget).
	LeaseExpirations int64 `json:"lease_expirations"`
	Requeues         int64 `json:"requeues"`
}

// Workers snapshots the worker registry (empty, never nil, on a standalone
// service, so GET /v1/workers is well-formed in every mode).
func (s *Service) Workers() []cluster.WorkerInfo {
	if s.table == nil {
		return []cluster.WorkerInfo{}
	}
	ws := s.table.Workers()
	if ws == nil {
		ws = []cluster.WorkerInfo{}
	}
	return ws
}

// DegradedReasons enumerates why the service should not receive submit
// traffic, empty when healthy. A load balancer keys off the /readyz status
// code alone; the reasons are for the operator who asks *why* the instance
// dropped out — queued work with zero live workers (every accepted job
// would sit until a worker appears) and durable-store append failures
// (accepted jobs may not survive a crash) are different pages.
func (s *Service) DegradedReasons() []string {
	var reasons []string
	if s.table != nil {
		if qd := s.queueLen(); qd > 0 && s.table.LiveWorkers() == 0 {
			reasons = append(reasons, fmt.Sprintf("no live workers, %d jobs queued", qd))
		}
	}
	if n := s.met.walErrors.Value(); n > 0 {
		reasons = append(reasons, fmt.Sprintf("durable store reported %d append/fsync errors", n))
	}
	if s.sat != nil && s.sat.Saturated() {
		reasons = append(reasons, s.sat.reason())
	}
	return reasons
}

// Degraded reports the first degradation reason, or "" when healthy.
func (s *Service) Degraded() string {
	if reasons := s.DegradedReasons(); len(reasons) > 0 {
		return reasons[0]
	}
	return ""
}

// DeregisterWorker removes a worker from the registry — the drain goodbye.
// Its leases, if any remain, expire normally.
func (s *Service) DeregisterWorker(id string) {
	if s.table == nil {
		return
	}
	s.table.Deregister(id)
	s.dropWorkerTelemetry(id)
	s.cfg.Logger.Info("worker deregistered", "worker", id)
}

// LeaseNext claims the next queued job for a worker, interactive class
// first — remote lease ordering honours the same admission priority as the
// local worker pool. It returns (nil, nil) when both queues are empty (or
// draining and dry) — the worker backs off and polls again.
func (s *Service) LeaseNext(workerID, addr string) (*LeasedJob, error) {
	if s.table == nil {
		return nil, fmt.Errorf("%w: not a coordinator", ErrNotFound)
	}
	if workerID == "" {
		return nil, fmt.Errorf("%w: worker_id required", ErrBadRequest)
	}
	s.table.Touch(workerID, addr)
	for {
		r := s.tryDequeue()
		if r == nil {
			return nil, nil
		}
		if lj := s.grantLease(r, workerID); lj != nil {
			return lj, nil
		}
		// The job left the queued state while buffered (cancelled);
		// try the next one.
	}
}

// grantLease moves one dequeued job to running under a fresh lease, wiring
// the same per-job pipeline runJob builds (logger, invariant monitor,
// progress sink) so relayed remote events flow through identical plumbing.
// Returns nil if the job is no longer queued.
func (s *Service) grantLease(r *jobRecord, workerID string) *LeasedJob {
	lg := s.cfg.Logger.With("job_id", r.job.ID, "type", r.job.Type,
		"trace_id", r.job.TraceID, "worker", workerID)
	monitor := invariant.New(s.cfg.Invariants, func(v invariant.Violation) {
		s.met.invariantViolation(v.Check)
		s.journal.Append(journal.Entry{
			JobID: r.job.ID, TraceID: r.job.TraceID,
			Kind: journal.KindInvariant, Check: v.Check, Msg: v.Msg,
			Stage: v.Event.Stage, Step: v.Event.Step, T: v.Event.T,
			Value: v.Event.Value,
		})
		lg.Warn("invariant violation", "check", v.Check, "detail", v.Msg,
			"stage", v.Event.Stage, "step", v.Event.Step, "t", v.Event.T)
	})
	sink := s.progressSink(r, monitor, lg)

	s.mu.Lock()
	if r.job.Status != StatusQueued { // cancelled while queued
		s.mu.Unlock()
		return nil
	}
	r.attempts++
	attempt := r.attempts
	lease := s.table.Grant(r.job.ID, workerID, attempt)
	start := time.Now()
	r.job.Status = StatusRunning
	r.job.StartedAt = &start
	r.job.Worker = workerID
	r.monitor = monitor
	r.sink = sink
	s.walStarted(r.job.ID)
	s.walAttempt(r.job.ID, attempt)
	s.mu.Unlock()

	queueWait := start.Sub(r.job.SubmittedAt)
	s.met.queueWaitObserve(r.req.Class, queueWait)
	if s.sat != nil {
		s.sat.observe(queueWait, start)
	}
	s.met.running.Inc()
	s.journal.Append(journal.Entry{
		JobID: r.job.ID, TraceID: r.job.TraceID,
		Kind: journal.KindLease,
		Msg: fmt.Sprintf("lease granted to worker %q (attempt %d/%d)",
			workerID, attempt, s.cfg.Cluster.MaxAttempts),
	})
	s.journal.Append(journal.Entry{
		JobID: r.job.ID, TraceID: r.job.TraceID,
		Kind: journal.KindLifecycle, Msg: "started",
	})
	lg.Info("job leased", "attempt", attempt,
		"lease_ttl", s.table.TTL().String(),
		"queue_wait_ms", float64(start.Sub(r.job.SubmittedAt))/float64(time.Millisecond))
	return &LeasedJob{
		JobID:       r.job.ID,
		TraceID:     r.job.TraceID,
		Request:     r.req,
		Scenario:    scenarioTable(r.sc),
		TimeoutMS:   r.timeout.Milliseconds(),
		LeaseToken:  lease.Token,
		LeaseTTLMS:  s.table.TTL().Milliseconds(),
		Attempt:     attempt,
		MaxAttempts: s.cfg.Cluster.MaxAttempts,
		Traceparent: r.span.Context().Traceparent(),
	}
}

// ExtendLease validates the token, pushes the lease deadline out, relays
// the carried progress events through the job's sink — so SSE streams,
// GET /v1/jobs/{id} progress, invariant monitoring and metrics all keep
// working for a remotely-executing job — and merges the piggybacked
// telemetry (journal entries, spans, metrics, health sample).
func (s *Service) ExtendLease(id string, req HeartbeatRequest) (HeartbeatAck, error) {
	if s.table == nil {
		return HeartbeatAck{}, fmt.Errorf("%w: not a coordinator", ErrNotFound)
	}
	s.mu.Lock()
	r, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return HeartbeatAck{}, fmt.Errorf("%w: job %q", ErrNotFound, id)
	}
	lease, err := s.table.Extend(id, req.LeaseToken)
	if err != nil {
		s.mu.Unlock()
		return HeartbeatAck{}, fmt.Errorf("%w: %v", ErrStaleLease, err)
	}
	sink := r.sink
	cancelled := r.userCancelled
	jobID, traceID := r.job.ID, r.job.TraceID
	s.mu.Unlock()

	for _, ev := range req.Events {
		sink(ev.toObs())
	}
	s.mergeWorkerRelay(jobID, traceID, req.Journal, req.Spans)
	s.storeWorkerTelemetry(lease.Worker, req.Metrics, req.Telemetry)
	return HeartbeatAck{
		LeaseTTLMS: s.table.TTL().Milliseconds(),
		Cancel:     lease.Cancel || cancelled,
	}, nil
}

// CompleteLease finalizes a remotely-executed job from its result upload.
// The fenced release comes first — a stale token cannot finish a job — and
// a succeeded job's blob and terminal WAL record land on disk before the
// terminal status publishes, exactly runJob's ordering.
func (s *Service) CompleteLease(id string, res ResultRequest) (Job, error) {
	if s.table == nil {
		return Job{}, fmt.Errorf("%w: not a coordinator", ErrNotFound)
	}
	// Upload arrival closes the execute segment: the coordinator cannot see
	// inside the worker's wall clock, so lease-grant -> arrival (network
	// hop included) is what "execute" means in cluster mode (latency.go).
	arrive := time.Now()
	st := Status(res.Status)
	if !st.Terminal() || !validStatus(st) {
		return Job{}, fmt.Errorf("%w: status %q is not terminal (want succeeded, failed or cancelled)", ErrBadRequest, res.Status)
	}
	if st == StatusSucceeded && !json.Valid(res.Result) {
		return Job{}, fmt.Errorf("%w: succeeded upload must carry a JSON result", ErrBadRequest)
	}

	s.mu.Lock()
	r, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return Job{}, fmt.Errorf("%w: job %q", ErrNotFound, id)
	}
	lease, err := s.table.Release(id, res.LeaseToken)
	if err != nil {
		s.mu.Unlock()
		return Job{}, fmt.Errorf("%w: %v", ErrStaleLease, err)
	}
	sink := r.sink
	monitor := r.monitor
	started := r.job.StartedAt
	s.mu.Unlock()

	// The lease is released: the reaper can no longer requeue this job and
	// no other worker can claim it, so finalization below is single-writer.
	for _, ev := range res.Events {
		sink(ev.toObs())
	}
	// Merge the final telemetry relay before the Final journal entry lands,
	// so an SSE replay reads worker-side entries in causal order.
	s.mergeWorkerRelay(id, r.job.TraceID, res.Journal, res.Spans)
	s.storeWorkerTelemetry(lease.Worker, res.Metrics, res.Telemetry)
	if st == StatusSucceeded {
		// Theorem 5 consistency of the finished trajectory, as in runJob.
		if r.req.Type == JobODE && monitor != nil {
			var odeRes ODEResult
			if json.Unmarshal(res.Result, &odeRes) == nil {
				monitor.CheckOutcome(odeRes.R0, odeRes.FinalI)
			}
		}
		// Durability before visibility: blob + terminal record land while
		// the job still reads as running.
		s.storePutResult(r.key, res.Result)
		s.walFinished(id, StatusSucceeded)
	}

	s.mu.Lock()
	fin := time.Now()
	from := r.job.SubmittedAt
	if started != nil {
		from = *started
	}
	elapsed := fin.Sub(from)
	r.job.FinishedAt = &fin
	r.job.ElapsedMS = float64(elapsed) / float64(time.Millisecond)
	if s.met.segments != nil && started != nil {
		r.job.Latency = &JobLatency{
			QueueWaitMS: float64(started.Sub(r.job.SubmittedAt)) / float64(time.Millisecond),
			ExecuteMS:   float64(arrive.Sub(*started)) / float64(time.Millisecond),
			SerializeMS: float64(fin.Sub(arrive)) / float64(time.Millisecond),
		}
	}
	r.job.Status = st
	switch st {
	case StatusSucceeded:
		r.job.Result = res.Result
		if evicted := s.cache.put(r.key, res.Result); len(evicted) > 0 {
			s.met.cacheEvictions.Add(int64(len(evicted)))
			s.trimEvictedLocked(evicted)
		}
		s.keyJobs[r.key] = append(s.keyJobs[r.key], r.job.ID)
	default:
		r.job.Error = res.Error
		s.walFinished(id, st)
	}
	job := r.snapshot()
	s.mu.Unlock()

	s.met.running.Dec()
	s.met.outcome(st)
	s.met.observe(r.job.Type, elapsed)
	if started != nil {
		s.met.segmentObserve(started.Sub(job.SubmittedAt), arrive.Sub(*started), fin.Sub(arrive))
	}
	s.met.workerLatency(lease.Worker, elapsed)
	msg := "finished: " + string(st)
	if res.Error != "" {
		msg += ": " + res.Error
	}
	s.journal.Append(journal.Entry{
		JobID: id, TraceID: job.TraceID,
		Kind: journal.KindLifecycle, Msg: msg, Final: true,
	})
	r.endSpans(st)
	lg := s.cfg.Logger.With("job_id", id, "worker", lease.Worker)
	if st == StatusSucceeded {
		lg.Info("remote job finished", "status", st,
			"elapsed_ms", job.ElapsedMS, "attempt", lease.Attempt)
	} else {
		lg.Warn("remote job finished", "status", st,
			"elapsed_ms", job.ElapsedMS, "attempt", lease.Attempt, "error", res.Error)
	}
	return job, nil
}

// reaper periodically requeues (or terminally fails) jobs whose lease
// expired. It runs for the service's whole life — draining does not stop
// it, Close does.
func (s *Service) reaper(interval time.Duration) {
	defer s.reaperWG.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-t.C:
			s.reapExpired()
		}
	}
}

// reapExpired pops every expired lease and settles its job: requeue under
// the attempt budget, terminal failure beyond it (or terminal cancellation
// if the user already asked). Popping the lease invalidates its token, so
// the presumed-dead worker's late heartbeat or upload bounces off
// ErrStaleLease.
func (s *Service) reapExpired() {
	for _, lease := range s.table.Expired() {
		s.met.leaseExpirations.Inc()
		s.met.running.Dec()

		s.mu.Lock()
		r, ok := s.jobs[lease.JobID]
		if !ok || r.job.Status != StatusRunning {
			s.mu.Unlock()
			continue
		}
		switch {
		case r.userCancelled:
			s.finishReapedLocked(r, StatusCancelled, fmt.Sprintf(
				"cancelled by client; lease expired on worker %q", lease.Worker))
		case r.attempts >= s.cfg.Cluster.MaxAttempts:
			s.finishReapedLocked(r, StatusFailed, fmt.Sprintf(
				"lease expired on worker %q and the attempt budget is exhausted (%d/%d)",
				lease.Worker, r.attempts, s.cfg.Cluster.MaxAttempts))
		case s.draining:
			// The queue channel is closed; pushing would panic. Leave the
			// job running-without-a-lease: it has no terminal WAL record,
			// so the next process life re-enqueues it — crash semantics,
			// which is what a drain racing a worker death is.
			s.mu.Unlock()
			s.cfg.Logger.Warn("lease expired while draining; job deferred to restart",
				"job_id", lease.JobID, "worker", lease.Worker)
		default:
			r.job.Status = StatusQueued
			r.job.StartedAt = nil
			r.job.Worker = ""
			attempts := r.attempts // read before unlock: the next grant increments it
			select {
			case s.queues[classIndex(r.req.Class)] <- r:
				s.mu.Unlock()
				s.met.requeues.Inc()
				s.journal.Append(journal.Entry{
					JobID: lease.JobID, TraceID: r.job.TraceID,
					Kind: journal.KindLease,
					Msg: fmt.Sprintf("lease expired on worker %q; requeued (attempt %d/%d used)",
						lease.Worker, attempts, s.cfg.Cluster.MaxAttempts),
				})
				s.cfg.Logger.Warn("lease expired; job requeued",
					"job_id", lease.JobID, "worker", lease.Worker,
					"attempt", attempts, "max_attempts", s.cfg.Cluster.MaxAttempts)
			default:
				s.finishReapedLocked(r, StatusFailed, fmt.Sprintf(
					"lease expired on worker %q and the queue is full", lease.Worker))
			}
		}
	}
}

// finishReapedLocked terminally settles a job the reaper could not requeue.
// Callers hold s.mu; it unlocks.
func (s *Service) finishReapedLocked(r *jobRecord, st Status, reason string) {
	fin := time.Now()
	s.walFinished(r.job.ID, st)
	r.job.Status = st
	r.job.Error = reason
	r.job.FinishedAt = &fin
	r.job.Worker = ""
	s.mu.Unlock()

	s.met.outcome(st)
	s.journal.Append(journal.Entry{
		JobID: r.job.ID, TraceID: r.job.TraceID,
		Kind: journal.KindLease, Msg: "lease expired: " + reason,
	})
	s.journal.Append(journal.Entry{
		JobID: r.job.ID, TraceID: r.job.TraceID,
		Kind: journal.KindLifecycle, Msg: "finished: " + string(st) + ": " + reason,
		Final: true,
	})
	r.endSpans(st)
	s.cfg.Logger.Warn("reaped job finished", "job_id", r.job.ID,
		"status", st, "error", reason)
}

// clusterRoutes mounts the internal worker API (coordinator mode only).
func (s *Service) clusterRoutes(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/internal/lease", s.handleLease)
	mux.HandleFunc("POST /v1/internal/jobs/{id}/heartbeat", s.handleHeartbeat)
	mux.HandleFunc("POST /v1/internal/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("POST /v1/internal/workers/{id}/deregister", func(w http.ResponseWriter, r *http.Request) {
		s.DeregisterWorker(r.PathValue("id"))
		w.WriteHeader(http.StatusNoContent)
	})
}

func (s *Service) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Store the relay before leasing: it lands even on a 204 from an empty
	// queue, which is exactly the idle-worker flush case.
	s.storeWorkerTelemetry(req.WorkerID, req.Metrics, req.Telemetry)
	lj, err := s.LeaseNext(req.WorkerID, req.Addr)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	if lj == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, lj)
}

func (s *Service) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ack, err := s.ExtendLease(r.PathValue("id"), req)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ack)
}

func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	var req ResultRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, err := s.CompleteLease(r.PathValue("id"), req)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}
