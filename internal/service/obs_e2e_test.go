package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"rumornet/internal/obs"
)

// getRaw fetches a path without JSON decoding, returning the response body
// and headers.
func (e *testServer) getRaw(path string) (string, http.Header) {
	e.t.Helper()
	resp, err := e.ts.Client().Get(e.ts.URL + path)
	if err != nil {
		e.t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		e.t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		e.t.Fatalf("GET %s: status %d — body %s", path, resp.StatusCode, raw)
	}
	return string(raw), resp.Header
}

// TestE2EMetricsEndpoint verifies the acceptance criterion: GET /metrics
// returns valid Prometheus text format including the job latency histogram
// and the queue gauges, with counters consistent with the jobs just run.
func TestE2EMetricsEndpoint(t *testing.T) {
	e := newE2E(t, Config{Workers: 2, QueueDepth: 8})
	body := `{"type":"ode","scenario":"tiny","params":{"lambda0":0.02,"tf":40,"points":50}}`
	mustSucceed(t, e.submitAndWait(body))
	e.post("/v1/jobs", body, http.StatusOK) // cache hit

	text, hdr := e.getRaw("/metrics")
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q, want Prometheus text 0.0.4", ct)
	}
	for _, want := range []string{
		"# TYPE rumor_job_duration_seconds histogram",
		`rumor_job_duration_seconds_count{type="ode"} 1`,
		`rumor_job_duration_seconds_bucket{type="ode",le="+Inf"} 1`,
		"# TYPE rumor_queue_depth gauge",
		"rumor_queue_depth 0",
		"rumor_queue_capacity 8",
		"rumor_workers 2",
		"rumor_jobs_submitted_total 2",
		"rumor_cache_hits_total 1",
		"rumor_cache_misses_total 1",
		`rumor_jobs_finished_total{status="succeeded"} 2`,
		"# TYPE rumor_queue_wait_seconds histogram",
		"rumor_queue_wait_seconds_count 1",
		"# TYPE rumor_http_requests_total counter",
		"rumor_jobs_running 0",
		"rumor_draining 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	// Histogram bucket cumulativity for the job-duration family.
	var prev int64 = -1
	var buckets int
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, `rumor_job_duration_seconds_bucket{type="ode",le="`) {
			continue
		}
		var v int64
		if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &v); err != nil {
			t.Fatalf("unparseable bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		prev = v
		buckets++
	}
	if buckets != len(jobDurationBuckets)+1 {
		t.Errorf("ode bucket lines = %d, want %d", buckets, len(jobDurationBuckets)+1)
	}
}

// TestE2ERequestID verifies the middleware: generated ids are returned,
// client-supplied ids are echoed verbatim.
func TestE2ERequestID(t *testing.T) {
	e := newE2E(t, Config{Workers: 1})
	_, hdr := e.getRaw("/healthz")
	if rid := hdr.Get("X-Request-Id"); !strings.HasPrefix(rid, "r-") {
		t.Errorf("generated request id %q, want r-NNNNNN", rid)
	}

	req, err := http.NewRequest(http.MethodGet, e.ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "trace-abc123")
	resp, err := e.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rid := resp.Header.Get("X-Request-Id"); rid != "trace-abc123" {
		t.Errorf("client request id not echoed: %q", rid)
	}
}

// TestE2EFBSMProgressLive is the acceptance criterion for solver tracing: a
// running FBSM job exposes live progress on GET /v1/jobs/{id}. The huge
// grid parks the job inside its first forward sweep, whose checkpoints
// (every 256 of 400k integration steps) appear long before any result.
func TestE2EFBSMProgressLive(t *testing.T) {
	e := newE2E(t, Config{Workers: 1})
	job := e.post("/v1/jobs",
		`{"type":"fbsm","scenario":"tiny","params":{"lambda0":0.02,"grid":400000},"timeout_sec":120}`,
		http.StatusAccepted)

	deadline := time.Now().Add(30 * time.Second)
	var cur Job
	for {
		e.do(http.MethodGet, "/v1/jobs/"+job.ID, "", http.StatusOK, &cur)
		if cur.Progress != nil {
			break
		}
		if cur.Status.Terminal() {
			t.Fatalf("job settled before any progress: %+v", cur)
		}
		if time.Now().After(deadline) {
			t.Fatal("no progress surfaced on a running FBSM job")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if cur.Status != StatusRunning {
		t.Errorf("progress on a %s job, want running", cur.Status)
	}
	p := cur.Progress
	if !strings.HasPrefix(p.Stage, obs.StageFBSM) {
		t.Errorf("stage %q, want an fbsm stage", p.Stage)
	}
	if p.Step < 1 || p.UpdatedAt.IsZero() {
		t.Errorf("implausible checkpoint: %+v", p)
	}
	e.do(http.MethodDelete, "/v1/jobs/"+job.ID, "", http.StatusOK, nil)
	e.wait(job.ID)
}

// TestE2EProgressRetained: once a job completes, its final checkpoint stays
// on the record — for FBSM that is the last iteration's convergence
// residual (Value) and objective (Cost).
func TestE2EProgressRetained(t *testing.T) {
	e := newE2E(t, Config{Workers: 2})
	job := e.submitAndWait(`{"type":"fbsm","scenario":"tiny","params":{"lambda0":0.05,"tf":20,"grid":120,"eps_max":0.6}}`)
	mustSucceed(t, job)
	p := job.Progress
	if p == nil {
		t.Fatal("completed FBSM job retained no progress")
	}
	if p.Stage != obs.StageFBSM {
		t.Fatalf("final stage %q, want %q (the per-iteration event)", p.Stage, obs.StageFBSM)
	}
	var res FBSMResult
	if err := json.Unmarshal(job.Result, &res); err != nil {
		t.Fatal(err)
	}
	if p.Step != res.Iterations {
		t.Errorf("final checkpoint at iteration %d, result says %d", p.Step, res.Iterations)
	}
	if p.Value <= 0 {
		t.Errorf("convergence residual %g, want > 0", p.Value)
	}
	if p.Cost <= 0 {
		t.Errorf("objective %g, want > 0", p.Cost)
	}

	ode := e.submitAndWait(`{"type":"ode","scenario":"tiny","params":{"lambda0":0.02,"tf":40,"points":50}}`)
	mustSucceed(t, ode)
	if ode.Progress == nil || ode.Progress.Stage != obs.StageODE {
		t.Fatalf("completed ODE job progress: %+v", ode.Progress)
	}
	if ode.Progress.Step != ode.Progress.Total {
		t.Errorf("final ODE checkpoint %d/%d, want the last step", ode.Progress.Step, ode.Progress.Total)
	}
}

// lockedBuffer serializes writes so the service's worker goroutines and the
// test can share one log sink without a data race.
type lockedBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

// TestE2EStructuredLogging wires a JSON logger into the service and checks
// the job lifecycle records carry correlatable ids.
func TestE2EStructuredLogging(t *testing.T) {
	var buf lockedBuffer
	lg, err := obs.NewLogger(&buf, "debug", "json")
	if err != nil {
		t.Fatal(err)
	}
	e := newE2E(t, Config{Workers: 1, Logger: lg, ProgressLogEvery: 1})
	job := e.submitAndWait(`{"type":"ode","scenario":"tiny","params":{"lambda0":0.02,"tf":40,"points":50}}`)
	mustSucceed(t, job)

	var queued, started, finished, progressed, httpLogged bool
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		forThisJob := rec["job_id"] == job.ID
		switch rec["msg"] {
		case "job queued":
			queued = queued || forThisJob
		case "job started":
			started = started || forThisJob
		case "job finished":
			if forThisJob {
				finished = true
				if rec["status"] != string(StatusSucceeded) {
					t.Errorf("finish record status: %v", rec)
				}
			}
		case "job progress":
			progressed = progressed || forThisJob
		case "http request":
			if rid, _ := rec["request_id"].(string); rid != "" {
				httpLogged = true
			}
		}
	}
	if !queued || !started || !finished {
		t.Errorf("lifecycle records missing: queued=%v started=%v finished=%v in\n%s",
			queued, started, finished, buf.String())
	}
	if !progressed {
		t.Error("no progress record despite ProgressLogEvery=1")
	}
	if !httpLogged {
		t.Error("no http request record with a request id")
	}
}

// TestE2EMetricsConcurrentScrape hammers /metrics while jobs execute; under
// -race this is the scrape-under-load gate of the tier-2 acceptance
// criteria.
func TestE2EMetricsConcurrentScrape(t *testing.T) {
	e := newE2E(t, Config{Workers: 4, QueueDepth: 64})
	const submitters, scrapes = 8, 40
	var wg sync.WaitGroup
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"type":"threshold","scenario":"tiny","params":{"seed":%d}}`, i+1)
			resp, err := e.ts.Client().Post(e.ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(i)
	}
	errc := make(chan error, scrapes)
	for i := 0; i < scrapes; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := e.ts.Client().Get(e.ts.URL + "/metrics")
			if err != nil {
				errc <- err
				return
			}
			raw, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				errc <- err
				return
			}
			if resp.StatusCode != http.StatusOK || !strings.Contains(string(raw), "rumor_jobs_submitted_total") {
				errc <- fmt.Errorf("scrape status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Errorf("concurrent scrape: %v", err)
	}
	for _, j := range e.svc.Jobs() {
		e.wait(j.ID)
	}
}

// TestE2ENoGoroutineLeak runs a full service lifecycle — jobs, scrapes, a
// cancellation — and asserts the goroutine count settles back to the
// pre-service baseline after Close.
func TestE2ENoGoroutineLeak(t *testing.T) {
	// Let goroutines from sibling tests settle before taking the baseline.
	settle := func(target int) bool {
		deadline := time.Now().Add(10 * time.Second)
		for runtime.NumGoroutine() > target {
			if time.Now().After(deadline) {
				return false
			}
			time.Sleep(10 * time.Millisecond)
		}
		return true
	}
	settle(runtime.NumGoroutine()) // one pass purely to quiesce
	before := runtime.NumGoroutine()

	func() {
		e := newE2E(t, Config{Workers: 3, QueueDepth: 8})
		mustSucceed(t, e.submitAndWait(`{"type":"threshold","scenario":"tiny"}`))
		park := e.post("/v1/jobs",
			`{"type":"fbsm","scenario":"tiny","params":{"lambda0":0.02,"grid":400000},"timeout_sec":120}`,
			http.StatusAccepted)
		e.getRaw("/metrics")
		// An SSE stream opened and torn down mid-job must not leave its
		// handler or journal subscriber behind.
		ch, cancelSSE := e.openSSE("/v1/jobs/" + park.ID + "/events")
		nextSSE(t, ch, 30*time.Second, func(ev sseEvent) bool { return ev.event != "comment" })
		cancelSSE()
		for range ch {
		}
		e.do(http.MethodDelete, "/v1/jobs/"+park.ID, "", http.StatusOK, nil)
		e.wait(park.ID)
		// newE2E registered ts.Close + svc.Close via t.Cleanup, which runs
		// only at test end — close both here instead, in the same order.
		e.ts.Close()
		e.svc.Close()
	}()

	// +2 tolerates runtime-internal goroutines (GC workers, timers) that
	// may have started legitimately during the burst.
	if !settle(before + 2) {
		t.Fatalf("goroutines leaked: %d before, %d after shutdown", before, runtime.NumGoroutine())
	}
}
