package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"rumornet/internal/abm"
	"rumornet/internal/control"
	"rumornet/internal/core"
	"rumornet/internal/degreedist"
	"rumornet/internal/graph"
	"rumornet/internal/obs"
)

// JobType selects the computation a job performs.
type JobType string

// Job types.
const (
	// JobODE integrates System (1) and returns the population-weighted
	// infected trajectory.
	JobODE JobType = "ode"
	// JobThreshold runs the critical-condition analysis (Theorems 1–5):
	// r0, verdict, equilibria and threshold sensitivities.
	JobThreshold JobType = "threshold"
	// JobABM cross-validates the mean field with the agent-based
	// Monte-Carlo model on a realized configuration graph.
	JobABM JobType = "abm"
	// JobFBSM computes the Section IV optimal countermeasure schedule via
	// the forward–backward sweep method.
	JobFBSM JobType = "fbsm"
)

func validJobType(t JobType) bool {
	switch t {
	case JobODE, JobThreshold, JobABM, JobFBSM:
		return true
	}
	return false
}

// Params is the union of scenario parameters across job types; unused
// fields are ignored by the executor for the given type. Zero values mean
// "use the documented default", mirroring the CLI flags.
type Params struct {
	// Shared epidemic parameters.
	Alpha   float64 `json:"alpha,omitempty"`   // default 0.01
	Eps1    float64 `json:"eps1,omitempty"`    // default 0.2 (fbsm: 0.05)
	Eps2    float64 `json:"eps2,omitempty"`    // default 0.05 (fbsm: 0.02)
	R0      float64 `json:"r0,omitempty"`      // calibrate λ(k)=scale·k to this threshold (0: use Lambda0)
	Lambda0 float64 `json:"lambda0,omitempty"` // λ(k) = Lambda0·k when R0 == 0; default 0.001
	I0      float64 `json:"i0,omitempty"`      // default 0.1
	Tf      float64 `json:"tf,omitempty"`      // default 150 (fbsm: 100)
	Groups  int     `json:"groups,omitempty"`  // truncate to lowest-degree groups (0: all)
	Points  int     `json:"points,omitempty"`  // max trajectory samples returned; default 500
	Seed    int64   `json:"seed,omitempty"`    // default 1

	// ABM-only.
	Trials int     `json:"trials,omitempty"` // required >= 1 for abm jobs
	Nodes  int     `json:"nodes,omitempty"`  // default 20000
	Dt     float64 `json:"dt,omitempty"`     // default 0.5

	// FBSM-only.
	C1     float64 `json:"c1,omitempty"`      // default 5
	C2     float64 `json:"c2,omitempty"`      // default 10
	EpsMax float64 `json:"eps_max,omitempty"` // default 0.8
	Grid   int     `json:"grid,omitempty"`    // default 1000
	Target float64 `json:"target,omitempty"`  // terminal infection target (0: plain objective)
}

// withDefaults resolves zero fields to the documented defaults so that an
// explicit default and an omitted field canonicalize to the same cache key.
func (p Params) withDefaults(t JobType) Params {
	if p.Alpha == 0 {
		p.Alpha = 0.01
	}
	if p.Eps1 == 0 {
		if t == JobFBSM {
			p.Eps1 = 0.05
		} else {
			p.Eps1 = 0.2
		}
	}
	if p.Eps2 == 0 {
		if t == JobFBSM {
			p.Eps2 = 0.02
		} else {
			p.Eps2 = 0.05
		}
	}
	if p.R0 == 0 && p.Lambda0 == 0 {
		if t == JobFBSM {
			p.R0 = 2.1661 // the paper's Fig. 4 epidemic scenario
		} else {
			p.Lambda0 = 0.001
		}
	}
	if p.I0 == 0 {
		p.I0 = 0.1
	}
	if p.Tf == 0 {
		if t == JobFBSM {
			p.Tf = 100
		} else {
			p.Tf = 150
		}
	}
	if p.Points == 0 {
		p.Points = 500
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if t == JobABM {
		if p.Nodes == 0 {
			p.Nodes = 20000
		}
		if p.Dt == 0 {
			p.Dt = 0.5
		}
	}
	if t == JobFBSM {
		if p.C1 == 0 {
			p.C1 = 5
		}
		if p.C2 == 0 {
			p.C2 = 10
		}
		if p.EpsMax == 0 {
			p.EpsMax = 0.8
		}
		if p.Grid == 0 {
			p.Grid = 1000
		}
	}
	return p
}

// validate rejects out-of-range parameters with actionable messages; it
// runs after withDefaults, at submission time, so bad requests fail with
// 400 before consuming a queue slot.
func (p Params) validate(t JobType) error {
	switch {
	case p.Alpha < 0:
		return fmt.Errorf("alpha = %g must be non-negative", p.Alpha)
	case p.Eps1 <= 0 || p.Eps2 <= 0:
		return fmt.Errorf("eps1 = %g and eps2 = %g must be positive", p.Eps1, p.Eps2)
	case p.R0 < 0:
		return fmt.Errorf("r0 = %g must be non-negative", p.R0)
	case p.R0 == 0 && p.Lambda0 <= 0:
		return fmt.Errorf("lambda0 = %g must be positive when r0 is unset", p.Lambda0)
	case p.I0 <= 0 || p.I0 >= 1:
		return fmt.Errorf("i0 = %g outside (0, 1)", p.I0)
	case p.Tf <= 0:
		return fmt.Errorf("tf = %g must be positive", p.Tf)
	case p.Groups < 0:
		return fmt.Errorf("groups = %d must be non-negative", p.Groups)
	case p.Points < 2:
		return fmt.Errorf("points = %d must be at least 2", p.Points)
	}
	if t == JobABM {
		switch {
		case p.Trials < 1:
			return fmt.Errorf("trials = %d must be at least 1 for abm jobs", p.Trials)
		case p.Nodes < 2:
			return fmt.Errorf("nodes = %d must be at least 2", p.Nodes)
		case p.Dt <= 0:
			return fmt.Errorf("dt = %g must be positive", p.Dt)
		}
	}
	if t == JobFBSM {
		switch {
		case p.C1 <= 0 || p.C2 <= 0:
			return fmt.Errorf("c1 = %g and c2 = %g must be positive", p.C1, p.C2)
		case p.EpsMax <= 0:
			return fmt.Errorf("eps_max = %g must be positive", p.EpsMax)
		case p.Grid < 1:
			return fmt.Errorf("grid = %d must be at least 1", p.Grid)
		case p.Target < 0:
			return fmt.Errorf("target = %g must be non-negative", p.Target)
		}
	}
	return nil
}

// Class is a job's admission-priority class (DESIGN.md §15). The service
// runs one bounded queue per class; workers and cluster leases always drain
// interactive work first, and the saturation detector sheds batch
// submissions before interactive ones.
type Class string

// Admission classes.
const (
	// ClassInteractive is the default: latency-sensitive work (direct
	// submissions, /v1/query fallbacks) that must never sit behind a sweep.
	ClassInteractive Class = "interactive"
	// ClassBatch marks throughput work — surface-construction sweeps tag
	// their grid-point jobs batch — that yields to interactive traffic and
	// is shed first under saturation.
	ClassBatch Class = "batch"
)

// withDefault resolves the empty class to interactive, so pre-existing
// clients (and pre-PR-10 WAL records) keep their latency semantics.
func (c Class) withDefault() Class {
	if c == "" {
		return ClassInteractive
	}
	return c
}

func validClass(c Class) bool {
	return c == "" || c == ClassInteractive || c == ClassBatch
}

// classIndex maps a class onto its queue slot (0 = interactive, 1 = batch).
func classIndex(c Class) int {
	if c == ClassBatch {
		return 1
	}
	return 0
}

// Request is the body of POST /v1/jobs.
type Request struct {
	Type     JobType `json:"type"`
	Scenario string  `json:"scenario,omitempty"` // default BuiltinScenario
	Params   Params  `json:"params"`
	// Class is the admission-priority class (default interactive). It is
	// deliberately excluded from the cache key: the result of a computation
	// does not depend on how politely it queued.
	Class Class `json:"class,omitempty"`
	// TimeoutSec is the per-job wall-clock budget in seconds (0: server
	// default). Values above the server cap are clamped.
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
}

// cacheKey content-addresses a request: SHA-256 over the job type, the
// scenario table fingerprint, and the canonicalized (defaults-resolved)
// parameters. The timeout is deliberately excluded — it bounds the
// computation, it does not change the result.
func cacheKey(t JobType, scenarioFingerprint string, p Params) string {
	blob, err := json.Marshal(p)
	if err != nil { // Params is plain numbers; cannot happen
		panic(fmt.Sprintf("service: marshal params: %v", err))
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00", t, scenarioFingerprint)
	h.Write(blob)
	return hex.EncodeToString(h.Sum(nil))
}

// Status is a job's lifecycle state.
type Status string

// Job lifecycle states.
const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusSucceeded Status = "succeeded"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusSucceeded || s == StatusFailed || s == StatusCancelled
}

func validStatus(s Status) bool {
	switch s {
	case StatusQueued, StatusRunning, StatusSucceeded, StatusFailed, StatusCancelled:
		return true
	}
	return false
}

// Job is the API view of a submitted job. Result is populated only in
// StatusSucceeded; Error only in StatusFailed/StatusCancelled.
type Job struct {
	ID       string  `json:"id"`
	Type     JobType `json:"type"`
	Scenario string  `json:"scenario"`
	Status   Status  `json:"status"`
	// Class is the admission-priority class the job queued under.
	Class Class `json:"class,omitempty"`
	// TraceID is the W3C trace the job belongs to: the client's traceparent
	// trace when the submission carried one, else a server-generated one.
	// Grep the logs or the journal for it to correlate across layers.
	TraceID  string `json:"trace_id,omitempty"`
	CacheHit bool   `json:"cache_hit,omitempty"`
	// Worker is the cluster worker currently executing the job (coordinator
	// mode only; cleared on requeue, retained on completion).
	Worker      string          `json:"worker,omitempty"`
	Error       string          `json:"error,omitempty"`
	Result      json.RawMessage `json:"result,omitempty"`
	SubmittedAt time.Time       `json:"submitted_at"`
	StartedAt   *time.Time      `json:"started_at,omitempty"`
	FinishedAt  *time.Time      `json:"finished_at,omitempty"`
	// ElapsedMS is the execution latency (start to finish) in
	// milliseconds; 0 for cache hits.
	ElapsedMS float64 `json:"elapsed_ms"`
	// Latency attributes the end-to-end latency to queue-wait/execute/
	// serialize segments (latency.go); populated on terminal statuses of
	// executed jobs, nil for cache hits and while running.
	Latency *JobLatency `json:"latency,omitempty"`
	// Progress is the latest solver checkpoint of a running job; the final
	// checkpoint is retained once the job finishes. Nil for cache hits,
	// queued jobs, and job types that finished before the first checkpoint.
	Progress *JobProgress `json:"progress,omitempty"`
}

// JobProgress is the API view of a solver progress event (see
// internal/obs): for FBSM jobs Value is the per-iteration relative control
// change (the convergence residual) and Cost the objective J of the swept
// schedule; for ODE and ABM jobs Value is Θ(t) and the infected fraction
// respectively.
type JobProgress struct {
	Stage     string    `json:"stage"`
	Step      int       `json:"step"`
	Total     int       `json:"total,omitempty"`
	T         float64   `json:"t,omitempty"`
	Value     float64   `json:"value,omitempty"`
	Cost      float64   `json:"cost,omitempty"`
	UpdatedAt time.Time `json:"updated_at"`
}

// ODEResult is the payload of a succeeded JobODE.
type ODEResult struct {
	R0      float64   `json:"r0"`
	Verdict string    `json:"verdict"`
	T       []float64 `json:"t"`
	MeanI   []float64 `json:"mean_i"` // population-weighted infected fraction
	PeakT   float64   `json:"peak_t"`
	PeakI   float64   `json:"peak_i"`
	FinalI  float64   `json:"final_i"`
}

// ThresholdResult is the payload of a succeeded JobThreshold.
type ThresholdResult struct {
	R0      float64 `json:"r0"`
	Verdict string  `json:"verdict"`
	// S0 is the susceptible density of the rumor-free equilibrium E0
	// (α/ε1) and E0Physical whether E0 lies in the state space Ω.
	S0         float64 `json:"s0"`
	E0Physical bool    `json:"e0_physical"`
	// ThetaPlus is the equilibrium infectivity Θ+ of E+ when r0 > 1.
	ThetaPlus *float64 `json:"theta_plus,omitempty"`
	// Elasticities of r0 (d ln r0 / d ln p): the planner's levers.
	ElastAlpha float64 `json:"elast_alpha"`
	ElastEps1  float64 `json:"elast_eps1"`
	ElastEps2  float64 `json:"elast_eps2"`
	// RequiredEps1/2 drive r0 to 1 holding the other control fixed.
	RequiredEps1 float64 `json:"required_eps1"`
	RequiredEps2 float64 `json:"required_eps2"`
}

// ABMResult is the payload of a succeeded JobABM.
type ABMResult struct {
	Trials int       `json:"trials"`
	Nodes  int       `json:"nodes"`
	T      []float64 `json:"t"`
	I      []float64 `json:"i"`
	PeakI  float64   `json:"peak_i"`
	FinalI float64   `json:"final_i"`
}

// FBSMResult is the payload of a succeeded JobFBSM.
type FBSMResult struct {
	Converged  bool      `json:"converged"`
	Iterations int       `json:"iterations"`
	Terminal   float64   `json:"terminal"`
	Running    float64   `json:"running"`
	Total      float64   `json:"total"`
	T          []float64 `json:"t"`
	Eps1       []float64 `json:"eps1"`
	Eps2       []float64 `json:"eps2"`
}

// buildModel assembles the mean-field model for a scenario + params pair.
func buildModel(sc *Scenario, p Params) (*core.Model, *degreedist.Dist, error) {
	dist := sc.Dist()
	if p.Groups > 0 {
		var err error
		if dist, err = dist.Truncate(p.Groups); err != nil {
			return nil, nil, err
		}
	}
	omega := degreedist.OmegaSaturating(0.5, 0.5)
	var (
		m   *core.Model
		err error
	)
	if p.R0 > 0 {
		m, err = core.CalibratedModel(dist, p.Alpha, p.Eps1, p.Eps2, p.R0, omega)
	} else {
		m, err = core.NewModel(dist, core.Params{
			Alpha:  p.Alpha,
			Eps1:   p.Eps1,
			Eps2:   p.Eps2,
			Lambda: degreedist.LambdaLinear(p.Lambda0),
			Omega:  omega,
		})
	}
	if err != nil {
		return nil, nil, err
	}
	return m, dist, nil
}

// execute runs one job to completion (or cancellation via ctx) and returns
// the JSON-marshalable result payload. prog, when non-nil, receives the
// solver's progress checkpoints (threshold jobs finish in microseconds and
// emit none).
func execute(ctx context.Context, sc *Scenario, req Request, prog obs.Progress) (any, error) {
	p := req.Params
	switch req.Type {
	case JobODE:
		return executeODE(ctx, sc, p, prog)
	case JobThreshold:
		return executeThreshold(sc, p)
	case JobABM:
		return executeABM(ctx, sc, p, prog)
	case JobFBSM:
		return executeFBSM(ctx, sc, p, prog)
	default:
		return nil, fmt.Errorf("unknown job type %q", req.Type)
	}
}

func executeODE(ctx context.Context, sc *Scenario, p Params, prog obs.Progress) (any, error) {
	m, _, err := buildModel(sc, p)
	if err != nil {
		return nil, err
	}
	ic, err := m.UniformIC(p.I0)
	if err != nil {
		return nil, err
	}
	// Integrate on the default fine step but record only ~Points samples,
	// keeping the JSON payload bounded.
	step := p.Tf / 2000
	rec := int(math.Ceil(2000 / float64(p.Points-1)))
	tr, err := m.SimulateCtx(ctx, ic, p.Tf, &core.SimOptions{Step: step, Record: rec, Progress: prog})
	if err != nil {
		return nil, err
	}
	mean := tr.MeanISeries()
	peak := tr.Peak()
	return &ODEResult{
		R0:      m.R0(),
		Verdict: m.Classify().String(),
		T:       tr.T,
		MeanI:   mean,
		PeakT:   peak.Time,
		PeakI:   peak.Value,
		FinalI:  mean[len(mean)-1],
	}, nil
}

func executeThreshold(sc *Scenario, p Params) (any, error) {
	m, _, err := buildModel(sc, p)
	if err != nil {
		return nil, err
	}
	eq, err := m.Analyze()
	if err != nil {
		return nil, err
	}
	sens := m.Sensitivity()
	req1, err := m.RequiredEps1(1)
	if err != nil {
		return nil, err
	}
	req2, err := m.RequiredEps2(1)
	if err != nil {
		return nil, err
	}
	res := &ThresholdResult{
		R0:           eq.R0,
		Verdict:      eq.Verdict.String(),
		S0:           m.S(eq.Zero.Y, 0),
		E0Physical:   eq.Zero.Physical,
		ElastAlpha:   sens.ElastAlpha,
		ElastEps1:    sens.ElastEps1,
		ElastEps2:    sens.ElastEps2,
		RequiredEps1: req1,
		RequiredEps2: req2,
	}
	if eq.Positive != nil {
		theta := eq.Positive.Theta
		res.ThetaPlus = &theta
	}
	return res, nil
}

func executeABM(ctx context.Context, sc *Scenario, p Params, prog obs.Progress) (any, error) {
	_, dist, err := buildModel(sc, p) // validates the scenario/params pair
	if err != nil {
		return nil, err
	}
	omega := degreedist.OmegaSaturating(0.5, 0.5)
	lamScale := p.Lambda0
	if p.R0 > 0 {
		if lamScale, err = core.CalibrateLambdaScale(dist, p.Alpha, p.Eps1, p.Eps2, p.R0, omega); err != nil {
			return nil, err
		}
	}
	rng := rand.New(rand.NewSource(p.Seed))
	g, err := graph.ConfigurationModel(sampleDegrees(dist, p.Nodes, rng), rng)
	if err != nil {
		return nil, err
	}
	steps := int(p.Tf / p.Dt)
	if steps < 1 {
		steps = 1
	}
	res, err := abm.MeanRunCtx(ctx, g, abm.Config{
		Lambda:   degreedist.LambdaLinear(lamScale),
		Omega:    omega,
		Eps1:     p.Eps1,
		Eps2:     p.Eps2,
		I0:       p.I0,
		Dt:       p.Dt,
		Steps:    steps,
		Mode:     abm.ModeQuenched,
		Workers:  innerWorkersFromCtx(ctx),
		Progress: prog,
	}, p.Trials, rng)
	if err != nil {
		return nil, err
	}
	return &ABMResult{
		Trials: p.Trials,
		Nodes:  g.NumNodes(),
		T:      res.T,
		I:      res.I,
		PeakI:  res.PeakI(),
		FinalI: res.FinalI(),
	}, nil
}

func executeFBSM(ctx context.Context, sc *Scenario, p Params, prog obs.Progress) (any, error) {
	m, _, err := buildModel(sc, p)
	if err != nil {
		return nil, err
	}
	ic, err := m.UniformIC(p.I0)
	if err != nil {
		return nil, err
	}
	opts := control.Options{
		Grid:     p.Grid,
		MaxIter:  250,
		Eps1Max:  p.EpsMax,
		Eps2Max:  p.EpsMax,
		Cost:     control.Cost{C1: p.C1, C2: p.C2},
		Progress: prog,
	}
	var pol *control.Policy
	if p.Target > 0 {
		pol, err = control.OptimizeToTargetCtx(ctx, m, ic, p.Tf, p.Target, opts)
	} else {
		pol, err = control.OptimizeCtx(ctx, m, ic, p.Tf, opts)
	}
	if err != nil {
		return nil, err
	}
	return &FBSMResult{
		Converged:  pol.Converged,
		Iterations: pol.Iterations,
		Terminal:   pol.Cost.Terminal,
		Running:    pol.Cost.Running,
		Total:      pol.Cost.Total,
		T:          pol.Schedule.T,
		Eps1:       pol.Schedule.Eps1,
		Eps2:       pol.Schedule.Eps2,
	}, nil
}

// sampleDegrees draws an out-degree sequence by inverse-CDF sampling
// (mirrors cmd/rumorsim; kept local to avoid the service depending on a
// main package).
func sampleDegrees(d *degreedist.Dist, n int, rng *rand.Rand) []int {
	cdf := make([]float64, d.N())
	var cum float64
	for i := 0; i < d.N(); i++ {
		cum += d.Prob(i)
		cdf[i] = cum
	}
	seq := make([]int, n)
	for i := range seq {
		g := sort.SearchFloat64s(cdf, rng.Float64())
		if g >= d.N() {
			g = d.N() - 1
		}
		seq[i] = d.Degree(g)
	}
	return seq
}

// innerWorkersKey carries the per-job fan-out bound through the executor's
// context, so execute stays a pure function of (ctx, scenario, request).
type innerWorkersKey struct{}

func withInnerWorkers(ctx context.Context, n int) context.Context {
	return context.WithValue(ctx, innerWorkersKey{}, n)
}

func innerWorkersFromCtx(ctx context.Context) int {
	if n, ok := ctx.Value(innerWorkersKey{}).(int); ok {
		return n
	}
	return 1
}
