package service

import (
	"time"

	"rumornet/internal/obs"
	"rumornet/internal/obs/invariant"
	"rumornet/internal/par"
	"rumornet/internal/store"
)

// Stats is the /v1/stats payload: a consistent snapshot of the service's
// operational counters.
type Stats struct {
	QueueDepth int `json:"queue_depth"`
	// QueueInteractive/QueueBatch split the depth by admission class (each
	// class has its own QueueCapacity-bounded buffer).
	QueueInteractive int  `json:"queue_interactive"`
	QueueBatch       int  `json:"queue_batch"`
	QueueCapacity    int  `json:"queue_capacity"`
	Workers          int  `json:"workers"`
	Draining         bool `json:"draining"`

	Jobs struct {
		Submitted int64 `json:"submitted"`
		Completed int64 `json:"completed"`
		Failed    int64 `json:"failed"`
		Cancelled int64 `json:"cancelled"`
		Rejected  int64 `json:"rejected"` // queue-full or draining refusals
		// Shed counts batch submissions refused while the saturation
		// detector reported saturated (a subset of Rejected).
		Shed int64 `json:"shed"`
	} `json:"jobs"`

	Cache struct {
		Hits     int64   `json:"hits"`
		Misses   int64   `json:"misses"`
		Entries  int     `json:"entries"`
		Capacity int     `json:"capacity"`
		HitRate  float64 `json:"hit_rate"`
	} `json:"cache"`

	// LatencyMS aggregates execution latency per job type (cache hits
	// excluded: they never execute).
	LatencyMS map[string]LatencySummary `json:"latency_ms"`

	// Store reports the durable job store when the daemon runs with
	// -data-dir; omitted for a fully in-memory service.
	Store *StoreStats `json:"store,omitempty"`

	// Cluster reports the lease table and worker registry on a coordinator;
	// omitted in standalone mode.
	Cluster *ClusterStats `json:"cluster,omitempty"`

	// Surface reports the response-surface serving tier (surface.go):
	// surfaces loaded, resident bytes, query hit/fallback split. Omitted
	// until the first surface or query touches the tier.
	Surface *SurfaceStats `json:"surface,omitempty"`
}

// StoreStats extends the store's own snapshot with the service-level
// recovery and disk-hit counters.
type StoreStats struct {
	store.Stats
	// RecoveredJobs counts unfinished jobs re-enqueued by startup recovery;
	// RecoveredResults the results warmed into the memory cache.
	RecoveredJobs    int64 `json:"recovered_jobs"`
	RecoveredResults int64 `json:"recovered_results"`
	// ResultHits counts submissions answered from the on-disk result store
	// after a memory-cache miss; WALErrors failed store operations.
	ResultHits int64 `json:"result_hits"`
	WALErrors  int64 `json:"wal_errors"`
	// ScenarioReplays counts uploaded scenario tables re-registered from
	// the WAL by startup recovery.
	ScenarioReplays int64 `json:"scenario_replays"`
}

// LatencySummary aggregates per-job-type execution latency.
type LatencySummary struct {
	Count int64   `json:"count"`
	Total float64 `json:"total"`
	Mean  float64 `json:"mean"`
	Max   float64 `json:"max"`
}

// jobDurationBuckets span rumord's execution latencies: sub-millisecond
// threshold analyses up to the 10-minute timeout cap.
var jobDurationBuckets = []float64{
	0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300, 600,
}

// queueWaitBuckets span the queue dwell time: instant hand-off on an idle
// pool up to minutes behind a saturated one.
var queueWaitBuckets = []float64{
	0.0001, 0.001, 0.01, 0.05, 0.1, 0.5, 1, 5, 15, 60, 300,
}

// metrics is the service's instrumentation: every instrument lives in an
// obs.Registry (scraped at GET /metrics) and doubles as the backing store
// for the legacy /v1/stats payload, which snapshots the same atomics. The
// per-type and per-status maps are built once here and read-only afterwards,
// so the hot paths (submit, runJob) touch only lock-free instruments —
// replacing the former whole-struct mutex.
type metrics struct {
	reg *obs.Registry

	submitted *obs.Counter
	rejected  *obs.Counter
	outcomes  map[Status]*obs.Counter

	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	cacheEvictions *obs.Counter

	latency   map[JobType]*obs.Histogram // execution latency per job type
	queueWait *obs.Histogram
	// queueWaitClass decomposes the queue dwell time by admission class —
	// the starvation dashboard: interactive dwell must stay flat while the
	// batch series absorbs the sweep backlog.
	queueWaitClass map[Class]*obs.Histogram
	// shed counts batch submissions refused under saturation (a subset of
	// rejected).
	shed *obs.Counter
	// segments decomposes end-to-end job latency (latency.go); nil when
	// Config.DisableSegmentMetrics benched the hooks away.
	segments map[string]*obs.Histogram
	abmStep  *obs.Histogram // per-sweep wall time from StageABM events
	running  *obs.Gauge     // jobs currently executing (busy workers)

	httpRequests map[string]*obs.Counter // by method; code recorded per call
	httpDuration *obs.Histogram

	invariants map[string]*obs.Counter // violations by check name
	sseClients *obs.Gauge              // live /v1/jobs/{id}/events streams

	// Surface-tier instruments (surface.go).
	surfaceQueries map[string]*obs.Counter // by outcome (hit/fallback_*)
	surfaceBuilds  *obs.Counter

	// Durable-store instruments (registered unconditionally; all stay zero
	// for an in-memory service).
	walAppend        *obs.Histogram
	walFsync         *obs.Histogram
	walErrors        *obs.Counter
	diskHits         *obs.Counter
	recoveredJobs    *obs.Counter
	recoveredResults *obs.Counter
	scenarioReplays  *obs.Counter

	// Cluster instruments (registered unconditionally; all stay zero on a
	// standalone service).
	leaseExpirations *obs.Counter
	requeues         *obs.Counter
}

// walBuckets span WAL append/fsync latencies: microsecond buffered writes
// up to ~100ms spinning-disk fsyncs.
var walBuckets = []float64{
	1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1,
}

func newMetrics(disableSegments bool) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{
		reg: reg,
		submitted: reg.Counter("rumor_jobs_submitted_total",
			"Jobs accepted by POST /v1/jobs (cache hits included)."),
		rejected: reg.Counter("rumor_jobs_rejected_total",
			"Submissions refused because the queue was full or the service draining."),
		outcomes: map[Status]*obs.Counter{},
		cacheHits: reg.Counter("rumor_cache_hits_total",
			"Submissions answered from the result cache."),
		cacheMisses: reg.Counter("rumor_cache_misses_total",
			"Submissions that had to execute."),
		cacheEvictions: reg.Counter("rumor_cache_evictions_total",
			"Result-cache entries evicted by the LRU bound."),
		latency: map[JobType]*obs.Histogram{},
		queueWait: reg.Histogram("rumor_queue_wait_seconds",
			"Dwell time between submission and execution start.", queueWaitBuckets),
		abmStep: reg.Histogram("rumor_abm_step_seconds",
			"Wall time of one ABM transition sweep, sampled at the progress cadence.",
			[]float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1}),
		running: reg.Gauge("rumor_jobs_running",
			"Jobs currently executing on the worker pool."),
		httpRequests: map[string]*obs.Counter{},
		httpDuration: reg.Histogram("rumor_http_request_duration_seconds",
			"HTTP request handling latency.",
			[]float64{0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5}),
	}
	for _, st := range []Status{StatusSucceeded, StatusFailed, StatusCancelled} {
		m.outcomes[st] = reg.Counter("rumor_jobs_finished_total",
			"Jobs reaching a terminal status.", obs.L("status", string(st)))
	}
	for _, t := range []JobType{JobODE, JobThreshold, JobABM, JobFBSM} {
		m.latency[t] = reg.Histogram("rumor_job_duration_seconds",
			"Job execution latency (cache hits excluded).",
			jobDurationBuckets, obs.L("type", string(t)))
	}
	m.queueWaitClass = map[Class]*obs.Histogram{}
	for _, c := range []Class{ClassInteractive, ClassBatch} {
		m.queueWaitClass[c] = reg.Histogram("rumor_queue_wait_class_seconds",
			"Queue dwell time decomposed by admission class.",
			queueWaitBuckets, obs.L("class", string(c)))
	}
	m.shed = reg.Counter("rumor_jobs_shed_total",
		"Batch submissions refused while the saturation detector reported saturated.")
	// Pre-register every invariant check so a scrape shows the zero series
	// (the dashboards' "nothing fired" is an explicit 0, not a gap).
	m.invariants = map[string]*obs.Counter{}
	for _, check := range invariant.Checks() {
		m.invariants[check] = reg.Counter("rumor_invariant_violations_total",
			"Numerical invariant violations detected by the per-job monitors.",
			obs.L("check", check))
	}
	if !disableSegments {
		m.segments = map[string]*obs.Histogram{}
		for _, seg := range []string{segQueueWait, segExecute, segSerialize} {
			m.segments[seg] = reg.Histogram("rumor_job_latency_segment_seconds",
				"End-to-end job latency decomposed into queue-wait/execute/serialize segments (DESIGN.md §14).",
				queueWaitBuckets, obs.L("segment", seg))
		}
	}
	m.surfaceQueries = map[string]*obs.Counter{}
	for _, outcome := range []string{outcomeHit, outcomeFallbackUncovered, outcomeFallbackTolerance} {
		m.surfaceQueries[outcome] = reg.Counter("rumor_surface_queries_total",
			"Interactive queries answered by the response-surface tier, by outcome.",
			obs.L("outcome", outcome))
	}
	m.surfaceBuilds = reg.Counter("rumor_surface_builds_total",
		"Response-surface constructions started (reloads from the store excluded).")
	m.sseClients = reg.Gauge("rumor_sse_clients",
		"Live GET /v1/jobs/{id}/events streams.")
	m.walAppend = reg.Histogram("rumor_wal_append_seconds",
		"Wall time of one WAL append (write path; inline fsync included under -wal-sync always).",
		walBuckets)
	m.walFsync = reg.Histogram("rumor_wal_fsync_seconds",
		"Wall time of one WAL segment fsync.", walBuckets)
	m.walErrors = reg.Counter("rumor_store_wal_errors_total",
		"Durable-store operations that failed (the job continues in-memory).")
	m.diskHits = reg.Counter("rumor_store_result_hits_total",
		"Submissions answered from the on-disk result store after a memory-cache miss.")
	m.recoveredJobs = reg.Counter("rumor_store_recovered_jobs_total",
		"Unfinished jobs re-enqueued by startup recovery.")
	m.recoveredResults = reg.Counter("rumor_store_recovered_results_total",
		"Persisted results warmed into the memory cache by startup recovery.")
	m.scenarioReplays = reg.Counter("rumor_store_scenario_replays_total",
		"Uploaded scenario tables re-registered from the WAL by startup recovery.")
	m.leaseExpirations = reg.Counter("rumor_cluster_lease_expirations_total",
		"Cluster leases reaped after their TTL passed without a heartbeat.")
	m.requeues = reg.Counter("rumor_cluster_requeues_total",
		"Jobs returned to the queue after their lease expired.")
	return m
}

// queueWaitObserve records one queue dwell sample against the aggregate
// histogram and the job's admission-class series.
func (m *metrics) queueWaitObserve(c Class, wait time.Duration) {
	m.queueWait.Observe(wait.Seconds())
	if h := m.queueWaitClass[c.withDefault()]; h != nil {
		h.Observe(wait.Seconds())
	}
}

// workerLatency records one remote job execution (lease grant to result
// upload) against the per-worker histogram, created on the worker's first
// completion (obs.Registry instruments are get-or-create by name+labels).
func (m *metrics) workerLatency(worker string, elapsed time.Duration) {
	m.reg.Histogram("rumor_cluster_worker_job_seconds",
		"Remote job latency from lease grant to result upload, per worker.",
		jobDurationBuckets, obs.L("worker", worker)).Observe(elapsed.Seconds())
}

// registerDerived adds the gauges whose values are read from live service
// state at scrape time. Split from newMetrics because they close over the
// Service being constructed.
func (m *metrics) registerDerived(s *Service) {
	// Go runtime self-telemetry (DESIGN.md §13): standalone and coordinator
	// modes register here; worker nodes register the same gauges on their
	// own relay registry in internal/cluster/worker.
	obs.RegisterRuntime(m.reg)
	m.reg.GaugeFunc("rumor_queue_depth",
		"Jobs queued but not yet running (both admission classes).",
		func() float64 { return float64(s.queueLen()) })
	for i, c := range []Class{ClassInteractive, ClassBatch} {
		q := s.queues[i]
		m.reg.GaugeFunc("rumor_queue_depth_class",
			"Jobs queued but not yet running, by admission class.",
			func() float64 { return float64(len(q)) }, obs.L("class", string(c)))
	}
	m.reg.Gauge("rumor_queue_capacity",
		"Bound of the job queue.").Set(float64(s.cfg.QueueDepth))
	m.reg.Gauge("rumor_workers",
		"Size of the job worker pool.").Set(float64(s.cfg.Workers))
	m.reg.GaugeFunc("rumor_fanout_workers_active",
		"internal/par fan-out workers currently executing shards (process-wide).",
		func() float64 { return float64(par.Active()) })
	m.reg.GaugeFunc("rumor_cache_entries",
		"Entries resident in the result cache.",
		func() float64 { return float64(s.cache.len()) })
	m.reg.Gauge("rumor_cache_capacity",
		"Bound of the result cache.").Set(float64(s.cfg.CacheEntries))
	m.reg.GaugeFunc("rumor_draining",
		"1 once graceful shutdown began, else 0.",
		func() float64 {
			if s.Ready() {
				return 0
			}
			return 1
		})
	if s.sat != nil {
		m.reg.GaugeFunc("rumor_saturated",
			"1 while the queue-wait p99 over the sliding window exceeds the configured budget, else 0.",
			func() float64 {
				if s.sat.Saturated() {
					return 1
				}
				return 0
			})
		m.reg.GaugeFunc("rumor_queue_wait_window_p99_seconds",
			"Queue-wait p99 over the saturation detector's sliding window.",
			func() float64 { return s.sat.p99() })
	}
	m.reg.GaugeFunc("rumor_surface_loaded",
		"Response surfaces resident and ready to serve queries.",
		func() float64 { return float64(s.surf.readyCount()) })
	m.reg.GaugeFunc("rumor_surface_bytes",
		"Total encoded size of the resident response surfaces.",
		func() float64 { return float64(s.surf.residentBytes()) })
	m.reg.GaugeFunc("rumor_journal_entries",
		"Flight-recorder entries resident across all jobs.",
		func() float64 { return float64(s.journal.TotalLen()) })
	m.reg.GaugeFunc("rumor_journal_dropped_total",
		"Journal entries dropped on slow SSE subscribers (process lifetime).",
		func() float64 { return float64(s.journal.Dropped()) })
	m.reg.GaugeFunc("rumor_trace_spans_finished",
		"Finished spans resident in the trace ring.",
		func() float64 { return float64(len(s.tracer.Finished())) })
	if s.table != nil {
		m.reg.GaugeFunc("rumor_cluster_workers",
			"Cluster workers seen within the liveness window.",
			func() float64 { return float64(s.table.LiveWorkers()) })
		m.reg.GaugeFunc("rumor_cluster_leases_active",
			"Jobs currently leased to cluster workers.",
			func() float64 { return float64(s.table.Active()) })
	}
	if s.store != nil {
		m.reg.GaugeFunc("rumor_store_results",
			"Result blobs resident in the durable store.",
			func() float64 { return float64(s.store.Snapshot().Results) })
		m.reg.GaugeFunc("rumor_store_result_bytes",
			"Total size of the durable result store.",
			func() float64 { return float64(s.store.Snapshot().ResultBytes) })
		m.reg.GaugeFunc("rumor_store_wal_segments",
			"WAL segments on disk.",
			func() float64 { return float64(s.store.Snapshot().WALSegments) })
		m.reg.GaugeFunc("rumor_store_wal_bytes",
			"Total size of the WAL segments on disk.",
			func() float64 { return float64(s.store.Snapshot().WALBytes) })
		m.reg.GaugeFunc("rumor_store_pending_jobs",
			"Jobs logged as submitted whose terminal record has not landed.",
			func() float64 { return float64(s.store.Snapshot().PendingJobs) })
	}
}

// invariantViolation counts one fired check.
func (m *metrics) invariantViolation(check string) {
	if c := m.invariants[check]; c != nil {
		c.Inc()
	}
}

func (m *metrics) submit()    { m.submitted.Inc() }
func (m *metrics) reject()    { m.rejected.Inc() }
func (m *metrics) cacheHit()  { m.cacheHits.Inc() }
func (m *metrics) cacheMiss() { m.cacheMisses.Inc() }

// outcome records a terminal job status.
func (m *metrics) outcome(status Status) {
	if c := m.outcomes[status]; c != nil {
		c.Inc()
	}
}

// observe records one execution latency sample for a job type (cache hits
// and queued-cancellations never execute and are not observed).
func (m *metrics) observe(t JobType, elapsed time.Duration) {
	if h := m.latency[t]; h != nil {
		h.Observe(elapsed.Seconds())
	}
}

// httpObserve records one handled HTTP request.
func (m *metrics) httpObserve(method string, code int, elapsed time.Duration) {
	m.reg.Counter("rumor_http_requests_total",
		"HTTP requests handled, by method and status code.",
		obs.L("method", method), obs.L("code", httpCodeLabel(code))).Inc()
	m.httpDuration.Observe(elapsed.Seconds())
}

// httpCodeLabel keeps the status-code label bounded to the small set of
// codes the API emits (plus a catch-all), honouring the cardinality rules.
func httpCodeLabel(code int) string {
	switch code {
	case 200:
		return "200"
	case 201:
		return "201"
	case 202:
		return "202"
	case 400:
		return "400"
	case 404:
		return "404"
	case 405:
		return "405"
	case 409:
		return "409"
	case 500:
		return "500"
	case 503:
		return "503"
	default:
		return "other"
	}
}

// snapshot fills the counter section of a Stats value from the live
// instruments. Counters are read individually; the snapshot is near-
// consistent, which is all /v1/stats ever promised.
func (m *metrics) snapshot(st *Stats) {
	st.Jobs.Submitted = m.submitted.Value()
	st.Jobs.Completed = m.outcomes[StatusSucceeded].Value()
	st.Jobs.Failed = m.outcomes[StatusFailed].Value()
	st.Jobs.Cancelled = m.outcomes[StatusCancelled].Value()
	st.Jobs.Rejected = m.rejected.Value()
	st.Jobs.Shed = m.shed.Value()
	st.Cache.Hits = m.cacheHits.Value()
	st.Cache.Misses = m.cacheMisses.Value()
	if total := st.Cache.Hits + st.Cache.Misses; total > 0 {
		st.Cache.HitRate = float64(st.Cache.Hits) / float64(total)
	}
	st.LatencyMS = make(map[string]LatencySummary)
	for t, h := range m.latency {
		count := h.Count()
		if count == 0 {
			continue // preserve the legacy shape: only types that executed
		}
		totalMS := h.Sum() * 1e3
		st.LatencyMS[string(t)] = LatencySummary{
			Count: count,
			Total: totalMS,
			Mean:  totalMS / float64(count),
			Max:   h.Max() * 1e3,
		}
	}
}
