package service

import (
	"sync"
	"time"
)

// Stats is the /v1/stats payload: a consistent snapshot of the service's
// operational counters.
type Stats struct {
	QueueDepth    int  `json:"queue_depth"`
	QueueCapacity int  `json:"queue_capacity"`
	Workers       int  `json:"workers"`
	Draining      bool `json:"draining"`

	Jobs struct {
		Submitted int64 `json:"submitted"`
		Completed int64 `json:"completed"`
		Failed    int64 `json:"failed"`
		Cancelled int64 `json:"cancelled"`
		Rejected  int64 `json:"rejected"` // queue-full or draining refusals
	} `json:"jobs"`

	Cache struct {
		Hits     int64   `json:"hits"`
		Misses   int64   `json:"misses"`
		Entries  int     `json:"entries"`
		Capacity int     `json:"capacity"`
		HitRate  float64 `json:"hit_rate"`
	} `json:"cache"`

	// LatencyMS aggregates execution latency per job type (cache hits
	// excluded: they never execute).
	LatencyMS map[string]LatencySummary `json:"latency_ms"`
}

// LatencySummary aggregates per-job-type execution latency.
type LatencySummary struct {
	Count int64   `json:"count"`
	Total float64 `json:"total"`
	Mean  float64 `json:"mean"`
	Max   float64 `json:"max"`
}

// metrics is the internal mutable counterpart of Stats.
type metrics struct {
	mu        sync.Mutex
	submitted int64
	completed int64
	failed    int64
	cancelled int64
	rejected  int64
	hits      int64
	misses    int64
	latency   map[JobType]*LatencySummary
}

func newMetrics() *metrics {
	return &metrics{latency: make(map[JobType]*LatencySummary)}
}

func (m *metrics) submit()    { m.bump(&m.submitted) }
func (m *metrics) reject()    { m.bump(&m.rejected) }
func (m *metrics) cacheHit()  { m.bump(&m.hits) }
func (m *metrics) cacheMiss() { m.bump(&m.misses) }

func (m *metrics) bump(field *int64) {
	m.mu.Lock()
	*field++
	m.mu.Unlock()
}

// outcome records a terminal job status.
func (m *metrics) outcome(status Status) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch status {
	case StatusSucceeded:
		m.completed++
	case StatusFailed:
		m.failed++
	case StatusCancelled:
		m.cancelled++
	}
}

// observe records one execution latency sample for a job type (cache hits
// and queued-cancellations never execute and are not observed).
func (m *metrics) observe(t JobType, elapsed time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ls := m.latency[t]
	if ls == nil {
		ls = &LatencySummary{}
		m.latency[t] = ls
	}
	ms := float64(elapsed) / float64(time.Millisecond)
	ls.Count++
	ls.Total += ms
	if ms > ls.Max {
		ls.Max = ms
	}
	ls.Mean = ls.Total / float64(ls.Count)
}

// snapshot fills the counter section of a Stats value.
func (m *metrics) snapshot(st *Stats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st.Jobs.Submitted = m.submitted
	st.Jobs.Completed = m.completed
	st.Jobs.Failed = m.failed
	st.Jobs.Cancelled = m.cancelled
	st.Jobs.Rejected = m.rejected
	st.Cache.Hits = m.hits
	st.Cache.Misses = m.misses
	if total := m.hits + m.misses; total > 0 {
		st.Cache.HitRate = float64(m.hits) / float64(total)
	}
	st.LatencyMS = make(map[string]LatencySummary, len(m.latency))
	for t, ls := range m.latency {
		st.LatencyMS[string(t)] = *ls
	}
}
