package service

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// metricsText scrapes GET /metrics and returns the exposition body.
func (e *testServer) metricsText() string {
	e.t.Helper()
	resp, err := e.ts.Client().Get(e.ts.URL + "/metrics")
	if err != nil {
		e.t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		e.t.Fatal(err)
	}
	return string(raw)
}

// TestE2ELatencyAttribution submits a job through the HTTP stack and
// asserts the terminal record carries the queue-wait/execute/serialize
// decomposition and that the segment histograms counted it.
func TestE2ELatencyAttribution(t *testing.T) {
	e := newE2E(t, Config{Workers: 2})
	job := e.submitAndWait(`{"type":"ode","scenario":"tiny","params":{"lambda0":0.02,"tf":40,"points":50}}`)
	mustSucceed(t, job)

	if job.Latency == nil {
		t.Fatal("terminal job carries no latency attribution")
	}
	if job.Latency.ExecuteMS <= 0 {
		t.Errorf("execute segment = %gms, want positive", job.Latency.ExecuteMS)
	}
	if job.Latency.QueueWaitMS < 0 || job.Latency.SerializeMS < 0 {
		t.Errorf("negative segment: %+v", job.Latency)
	}
	// The segments partition submission->visibility, so their sum must
	// cover at least the recorded execution latency.
	sum := job.Latency.QueueWaitMS + job.Latency.ExecuteMS + job.Latency.SerializeMS
	if sum < job.ElapsedMS {
		t.Errorf("segments sum to %gms, below elapsed %gms", sum, job.ElapsedMS)
	}

	// Cache hits have no segments to attribute (they answer synchronously
	// with 200, not 202).
	hit := e.post("/v1/jobs", `{"type":"ode","scenario":"tiny","params":{"lambda0":0.02,"tf":40,"points":50}}`, http.StatusOK)
	if !hit.CacheHit {
		t.Fatal("second identical submission should hit the cache")
	}
	if hit.Latency != nil {
		t.Errorf("cache hit carries latency attribution: %+v", hit.Latency)
	}

	text := e.metricsText()
	for _, seg := range []string{segQueueWait, segExecute, segSerialize} {
		if !strings.Contains(text, `rumor_job_latency_segment_seconds_count{segment="`+seg+`"} 1`) {
			t.Errorf("segment %q not counted exactly once in /metrics", seg)
		}
	}
	if !strings.Contains(text, "rumor_saturated 0") {
		t.Error("rumor_saturated gauge missing or nonzero on an idle service")
	}
}

// TestE2ELatencyAttributionDisabled covers the bench knob: no segment
// series in /metrics, no per-job fields.
func TestE2ELatencyAttributionDisabled(t *testing.T) {
	e := newE2E(t, Config{Workers: 2, DisableSegmentMetrics: true, SaturationBudget: -1})
	job := e.submitAndWait(`{"type":"ode","scenario":"tiny","params":{"lambda0":0.02,"tf":40,"points":50}}`)
	mustSucceed(t, job)
	if job.Latency != nil {
		t.Errorf("latency attribution present with segments disabled: %+v", job.Latency)
	}
	text := e.metricsText()
	if strings.Contains(text, "rumor_job_latency_segment_seconds") {
		t.Error("segment histograms exported with segments disabled")
	}
	if strings.Contains(text, "rumor_saturated") {
		t.Error("saturation gauge exported with the detector disabled")
	}
}

// TestE2ESaturationFlip is the acceptance-criteria E2E: a burst past the
// single worker's capacity drives queue-wait p99 over a tiny budget, the
// rumor_saturated gauge flips, and /readyz reports degraded with the
// saturation reason.
func TestE2ESaturationFlip(t *testing.T) {
	e := newE2E(t, Config{
		Workers:          1,
		SaturationBudget: 2 * time.Millisecond,
		SaturationWindow: time.Minute, // no rotation during the test
	})

	// Before the burst: healthy.
	e.do(http.MethodGet, "/readyz", "", http.StatusOK, nil)

	// Park the single worker inside a huge FBSM grid, so the burst below
	// queues behind it for as long as we choose to hold it — the queue
	// waits are then bounded below by the hold time no matter how the
	// scheduler slices this box, instead of racing submission speed
	// against execution speed.
	park := e.post("/v1/jobs",
		`{"type":"fbsm","scenario":"tiny","params":{"lambda0":0.02,"grid":400000},"timeout_sec":120}`,
		http.StatusAccepted)
	deadline := time.Now().Add(30 * time.Second)
	for {
		var cur Job
		e.do(http.MethodGet, "/v1/jobs/"+park.ID, "", http.StatusOK, &cur)
		if cur.Status == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("parked job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}

	ids := make([]string, 0, 8)
	for i := 0; i < cap(ids); i++ {
		job := e.post("/v1/jobs", fmt.Sprintf(
			`{"type":"ode","scenario":"tiny","params":{"lambda0":0.02,"tf":40,"points":50,"seed":%d}}`,
			i+1), http.StatusAccepted)
		ids = append(ids, job.ID)
	}
	// Hold the burst queued well past the 2ms budget, then release the
	// worker: every one of the 8 queue-wait samples lands >= 25ms.
	time.Sleep(25 * time.Millisecond)
	e.do(http.MethodDelete, "/v1/jobs/"+park.ID, "", http.StatusOK, nil)
	e.wait(park.ID)
	for _, id := range ids {
		e.wait(id)
	}

	if !e.svc.sat.Saturated() {
		t.Fatalf("saturation did not flip: windowed p99 %.1fms vs 2ms budget",
			e.svc.sat.p99()*1e3)
	}
	if flips := e.svc.sat.flips.Load(); flips < 1 {
		t.Errorf("healthy->saturated transitions = %d, want at least 1", flips)
	}
	if !strings.Contains(e.metricsText(), "rumor_saturated 1") {
		t.Error("rumor_saturated gauge did not flip in /metrics")
	}

	var ready struct {
		Status  string   `json:"status"`
		Reasons []string `json:"reasons"`
	}
	e.do(http.MethodGet, "/readyz", "", http.StatusServiceUnavailable, &ready)
	if ready.Status != "degraded" {
		t.Errorf("readyz status = %q, want degraded", ready.Status)
	}
	found := false
	for _, r := range ready.Reasons {
		if strings.Contains(r, "saturated") {
			found = true
		}
	}
	if !found {
		t.Errorf("readyz reasons %v carry no saturation detail", ready.Reasons)
	}
}

// TestSatWindowRotation drives the detector with a synthetic clock: the
// verdict must recover once the slow samples age out of the window.
func TestSatWindowRotation(t *testing.T) {
	sw := newSatWindow(10*time.Millisecond, 2*time.Second) // 1s epochs
	base := time.Unix(1000, 0)

	for i := 0; i < 100; i++ {
		sw.observe(50*time.Millisecond, base)
	}
	if !sw.Saturated() {
		t.Fatal("all samples 5x over budget, detector idle")
	}

	// One epoch later the slow samples are still in the window (prev).
	for i := 0; i < 10; i++ {
		sw.observe(time.Millisecond, base.Add(1100*time.Millisecond))
	}
	if !sw.Saturated() {
		t.Fatal("slow epoch aged into prev but still inside the window; must stay saturated")
	}

	// Two more epochs of fast traffic: the slow epoch is gone.
	for i := 0; i < 100; i++ {
		sw.observe(time.Millisecond, base.Add(2200*time.Millisecond))
	}
	for i := 0; i < 100; i++ {
		sw.observe(time.Millisecond, base.Add(3300*time.Millisecond))
	}
	if sw.Saturated() {
		t.Fatalf("slow samples aged out (windowed p99 %.1fms) but verdict stuck saturated",
			sw.p99()*1e3)
	}

	// A long idle gap clears the whole window.
	sw.observe(time.Millisecond, base.Add(time.Hour))
	if got := sw.p99(); got > 0.002 {
		t.Errorf("after a full-window gap p99 = %gms; stale samples survived", got*1e3)
	}
}
