package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// Handler returns the service's JSON API:
//
//	GET    /healthz              — liveness (200 while the process runs)
//	GET    /readyz               — readiness (503 once draining)
//	GET    /v1/stats             — queue depth, cache hit rate, latency
//	GET    /v1/scenarios         — list registered scenarios
//	POST   /v1/scenarios         — register an uploaded P(k) table
//	GET    /v1/scenarios/{name}  — one scenario's summary
//	GET    /v1/jobs              — list retained jobs
//	POST   /v1/jobs              — submit a job (202 + snapshot)
//	GET    /v1/jobs/{id}         — poll a job; result inline when done
//	DELETE /v1/jobs/{id}         — cancel a job
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.Ready() {
			writeError(w, http.StatusServiceUnavailable, errors.New("draining"))
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /v1/scenarios", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"scenarios": s.Scenarios()})
	})
	mux.HandleFunc("POST /v1/scenarios", s.handleRegisterScenario)
	mux.HandleFunc("GET /v1/scenarios/{name}", func(w http.ResponseWriter, r *http.Request) {
		sc, err := s.Scenario(r.PathValue("name"))
		if err != nil {
			writeServiceError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, sc)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"jobs": s.Jobs()})
	})
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := s.Job(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("job %q not found", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, job)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, err := s.Cancel(r.PathValue("id"))
		if err != nil {
			writeServiceError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, job)
	})
	return mux
}

// scenarioUpload is the body of POST /v1/scenarios.
type scenarioUpload struct {
	Name    string    `json:"name"`
	Degrees []int     `json:"degrees"`
	Probs   []float64 `json:"probs"`
}

func (s *Service) handleRegisterScenario(w http.ResponseWriter, r *http.Request) {
	var up scenarioUpload
	if err := decodeBody(r, &up); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sc, err := s.RegisterScenario(up.Name, up.Degrees, up.Probs)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, sc)
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, err := s.Submit(req)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+job.ID)
	// A cache hit is already complete; report 200 so clients can skip the
	// poll loop entirely.
	code := http.StatusAccepted
	if job.Status.Terminal() {
		code = http.StatusOK
	}
	writeJSON(w, code, job)
}

// decodeBody strictly decodes a JSON body, rejecting unknown fields so
// typos like "epsmax" fail loudly instead of silently using defaults.
func decodeBody(r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<22)) // 4 MiB
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("decode request body: %w", err)
	}
	return nil
}

// writeServiceError maps the package's sentinel errors onto HTTP statuses.
func writeServiceError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrBadRequest):
		writeError(w, http.StatusBadRequest, err)
	case errors.Is(err, ErrNotFound):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, errDuplicate):
		writeError(w, http.StatusConflict, err)
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// Headers are gone; nothing more we can do than drop the conn.
		return
	}
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
