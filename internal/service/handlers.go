package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"rumornet/internal/obs"
	"rumornet/internal/obs/trace"
)

// Handler returns the service's JSON API:
//
//	GET    /healthz              — liveness (200 while the process runs)
//	GET    /readyz               — readiness (503 once draining)
//	GET    /metrics              — Prometheus text exposition
//	GET    /v1/stats             — queue depth, cache hit rate, latency
//	GET    /v1/scenarios         — list registered scenarios
//	POST   /v1/scenarios         — register an uploaded P(k) table
//	GET    /v1/scenarios/{name}  — one scenario's summary
//	GET    /v1/jobs              — bounded newest-first job index
//	                               (?limit=N&status=queued|running|...)
//	POST   /v1/jobs              — submit a job (202 + snapshot)
//	GET    /v1/jobs/{id}         — poll a job; result inline when done
//	GET    /v1/jobs/{id}/events  — replay the job's flight recorder, then
//	                               stream live events over SSE (?follow=0
//	                               for replay only)
//	DELETE /v1/jobs/{id}         — cancel a job
//	POST   /v1/surfaces          — build (or reload) a response surface
//	                               from a sweep spec (202 while building)
//	GET    /v1/surfaces          — list resident surfaces and their status
//	GET/POST /v1/query           — interpolated answer from a covering
//	                               surface (microseconds, with error bound),
//	                               falling back to an exact interactive job
//
// Every route runs behind the telemetry middleware: a request id (client
// X-Request-Id or generated) is echoed back, attached to the
// context logger, and the request is counted and timed in the metrics
// registry.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.Ready() {
			writeError(w, http.StatusServiceUnavailable, errors.New("draining"))
			return
		}
		if reasons := s.DegradedReasons(); len(reasons) > 0 {
			// Degraded instances must not receive more submit traffic; load
			// balancers key off the 503 alone, while the body enumerates
			// every reason (no live workers, store errors, ...) for the
			// operator paged to find out why the instance dropped out.
			writeJSON(w, http.StatusServiceUnavailable,
				map[string]any{"status": "degraded", "reasons": reasons})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /v1/scenarios", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"scenarios": s.Scenarios()})
	})
	mux.HandleFunc("POST /v1/scenarios", s.handleRegisterScenario)
	mux.HandleFunc("GET /v1/scenarios/{name}", func(w http.ResponseWriter, r *http.Request) {
		sc, err := s.Scenario(r.PathValue("name"))
		if err != nil {
			writeServiceError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, sc)
	})
	mux.HandleFunc("GET /v1/workers", func(w http.ResponseWriter, r *http.Request) {
		ws := s.Workers()
		writeJSON(w, http.StatusOK, map[string]any{"workers": ws, "count": len(ws)})
	})
	if s.table != nil {
		s.clusterRoutes(mux)
	}
	mux.HandleFunc("POST /v1/surfaces", s.handleBuildSurface)
	mux.HandleFunc("GET /v1/surfaces", s.handleSurfaceIndex)
	mux.HandleFunc("GET /v1/query", s.handleQueryGet)
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("GET /v1/jobs", s.handleJobIndex)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := s.Job(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("job %q not found", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, job)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, err := s.Cancel(r.PathValue("id"))
		if err != nil {
			writeServiceError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, job)
	})
	return s.telemetry(mux)
}

// handleMetrics serves GET /metrics: the service's own registry followed by
// the cluster telemetry re-export — each worker's relayed snapshot under
// rumor_worker_*{worker="..."} and the fleet aggregate under rumor_fleet_*.
// Standalone services have no snapshots and render exactly the registry.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.ContentType)
	if err := s.met.reg.WritePrometheus(w); err != nil {
		return // client went away mid-scrape
	}
	s.writeWorkerMetrics(w)
}

// MetricsHandler returns just the Prometheus exposition endpoint (including
// the cluster re-export), without the API routes or telemetry middleware.
// rumord mounts it on the opt-in -debug-addr listener so an operator can
// scrape a daemon whose API port is firewalled off.
func (s *Service) MetricsHandler() http.Handler {
	return http.HandlerFunc(s.handleMetrics)
}

// telemetry wraps the API mux with request-id and trace propagation,
// request logging and HTTP metrics. The request id is the client's
// X-Request-Id when given (so a caller can correlate across services) or
// generated; either way it is echoed in the response and attached to the
// context logger that handlers and the job runner retrieve via
// obs.LoggerFromContext. A W3C traceparent header, when present, parents
// the per-request span (and through it the job span a submission opens);
// either way the request's own traceparent is echoed in the response so
// un-instrumented clients can still grab the trace id.
func (s *Service) telemetry(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rid := r.Header.Get("X-Request-Id")
		if rid == "" {
			rid = fmt.Sprintf("r-%06d", s.reqSeq.Add(1))
		}
		w.Header().Set("X-Request-Id", rid)

		parent, _ := trace.ParseTraceparent(r.Header.Get("traceparent"))
		span := s.tracer.StartSpan("http.request", parent,
			obs.L("method", r.Method), obs.L("path", r.URL.Path),
			obs.L("request_id", rid))
		sc := span.Context()
		w.Header().Set("traceparent", sc.Traceparent())

		lg := s.cfg.Logger.With("request_id", rid, "trace_id", sc.TraceID.String())
		ctx := obs.ContextWithLogger(r.Context(), lg)
		ctx = trace.ContextWithSpanContext(ctx, sc)
		r = r.WithContext(ctx)

		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(sw, r)

		elapsed := time.Since(start)
		span.SetAttr("status", httpCodeLabel(sw.code))
		span.End()
		s.met.httpObserve(r.Method, sw.code, elapsed)
		lg.Debug("http request",
			"method", r.Method, "path", r.URL.Path, "status", sw.code,
			"elapsed_ms", float64(elapsed)/float64(time.Millisecond))
	})
}

// statusWriter captures the response code for the telemetry middleware.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so the SSE handler can stream
// through the middleware.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// scenarioUpload is the body of POST /v1/scenarios.
type scenarioUpload struct {
	Name    string    `json:"name"`
	Degrees []int     `json:"degrees"`
	Probs   []float64 `json:"probs"`
}

func (s *Service) handleRegisterScenario(w http.ResponseWriter, r *http.Request) {
	var up scenarioUpload
	if err := decodeBody(r, &up); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sc, err := s.RegisterScenario(up.Name, up.Degrees, up.Probs)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, sc)
}

// Bounds of the GET /v1/jobs index: the default page and the hard cap a
// client may raise it to (MaxJobs can retain thousands of records; the
// index stays one bounded response either way).
const (
	defaultJobIndexLimit = 100
	maxJobIndexLimit     = 1000
)

// handleJobIndex serves GET /v1/jobs: up to ?limit= retained jobs (default
// 100, capped at 1000), newest submission first, optionally filtered by
// ?status=. "total" counts every retained job matching the filter, so
// clients can tell a full page from the full set.
func (s *Service) handleJobIndex(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := defaultJobIndexLimit
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("limit %q must be a positive integer", v))
			return
		}
		limit = n
	}
	if limit > maxJobIndexLimit {
		limit = maxJobIndexLimit
	}
	status := Status(q.Get("status"))
	if status != "" && !validStatus(status) {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("status %q unknown (want queued, running, succeeded, failed or cancelled)", status))
		return
	}
	jobs, total := s.JobIndex(limit, status)
	writeJSON(w, http.StatusOK, map[string]any{
		"jobs": jobs, "count": len(jobs), "total": total,
	})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, err := s.SubmitCtx(r.Context(), req)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+job.ID)
	// A cache hit is already complete; report 200 so clients can skip the
	// poll loop entirely.
	code := http.StatusAccepted
	if job.Status.Terminal() {
		code = http.StatusOK
	}
	writeJSON(w, code, job)
}

// decodeBody strictly decodes a JSON body, rejecting unknown fields so
// typos like "epsmax" fail loudly instead of silently using defaults.
func decodeBody(r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<22)) // 4 MiB
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("decode request body: %w", err)
	}
	return nil
}

// writeServiceError maps the package's sentinel errors onto HTTP statuses.
func writeServiceError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrBadRequest):
		writeError(w, http.StatusBadRequest, err)
	case errors.Is(err, ErrNotFound):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, errDuplicate), errors.Is(err, ErrStaleLease):
		writeError(w, http.StatusConflict, err)
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDraining), errors.Is(err, ErrSaturated):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// Headers are gone; nothing more we can do than drop the conn.
		return
	}
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
