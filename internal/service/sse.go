package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"rumornet/internal/obs/journal"
	"rumornet/internal/obs/trace"
)

// handleJobEvents serves GET /v1/jobs/{id}/events: it replays the job's
// flight-recorder history (oldest first; seq gaps reveal ring overwrites)
// and then — unless ?follow=0 — streams live entries as Server-Sent Events
// until the job's terminal entry, a client disconnect, or the journal being
// trimmed by eviction. Idle streams carry heartbeat comments every
// Config.SSEHeartbeat so proxies keep the connection open.
//
// Wire format: one SSE message per journal entry, with the entry's seq as
// the SSE id, its kind (lifecycle | progress | invariant) as the event
// name, and the JSON-marshaled entry as data. Heartbeats are comment lines
// and invisible to EventSource clients.
func (s *Service) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.Job(id); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("job %q not found", id))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	follow := r.URL.Query().Get("follow") != "0"

	// Subscribe before inspecting the job again: the snapshot and the live
	// channel are registered atomically, so every entry is either in the
	// history or arrives on the channel — none are lost in between.
	history, ch, cancel := s.journal.Subscribe(id)
	defer cancel()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // defeat proxy buffering
	w.WriteHeader(http.StatusOK)
	s.met.sseClients.Inc()
	defer s.met.sseClients.Dec()

	sawFinal := false
	for _, e := range history {
		writeSSE(w, e)
		sawFinal = sawFinal || e.Final
	}
	flusher.Flush()
	if !follow || sawFinal {
		return
	}
	// A terminal job whose history carries no Final entry had its journal
	// trimmed (or the final append is microseconds away); ending the replay
	// here beats waiting for an entry that may never come.
	if job, ok := s.Job(id); ok && job.Status.Terminal() {
		return
	}

	hb := time.NewTicker(s.cfg.SSEHeartbeat)
	defer hb.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case e, open := <-ch:
			if !open {
				return // journal trimmed: the job's history is gone
			}
			writeSSE(w, e)
			// Drain whatever queued behind it before flushing once.
			for drained := false; !drained; {
				select {
				case e, open := <-ch:
					if !open {
						flusher.Flush()
						return
					}
					writeSSE(w, e)
					if e.Final {
						flusher.Flush()
						return
					}
				default:
					drained = true
				}
			}
			flusher.Flush()
			if e.Final {
				return
			}
		case <-hb.C:
			io.WriteString(w, ": heartbeat\n\n")
			flusher.Flush()
		}
	}
}

// writeSSE renders one journal entry as an SSE message. Marshal errors
// cannot happen (Entry is plain scalars) and are swallowed: a malformed
// frame would corrupt the whole stream.
func writeSSE(w io.Writer, e journal.Entry) {
	data, err := json.Marshal(e)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Kind, data)
}

// EventsDumpHandler dumps the whole flight recorder plus the finished
// trace spans as one JSON document. rumord mounts it at /debug/events on
// the opt-in debug listener, next to pprof — the crash-forensics
// counterpart to the per-job SSE stream.
func (s *Service) EventsDumpHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var jbuf bytes.Buffer
		if err := s.journal.WriteJSON(&jbuf); err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, struct {
			Journal      json.RawMessage  `json:"journal"`
			Spans        []trace.SpanData `json:"spans"`
			SpansDropped int64            `json:"spans_dropped"`
		}{
			Journal:      json.RawMessage(jbuf.Bytes()),
			Spans:        s.tracer.Finished(),
			SpansDropped: s.tracer.Dropped(),
		})
	})
}
