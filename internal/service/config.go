package service

import (
	"fmt"
	"io"
	"log/slog"
	"time"

	"rumornet/internal/obs"
	"rumornet/internal/obs/invariant"
	"rumornet/internal/store"
)

// Config parameterizes a Service. The zero value is not usable directly;
// New applies the documented defaults first and then validates.
type Config struct {
	// Workers is the number of goroutines executing jobs (default:
	// runtime.NumCPU via par.Default). Each job additionally fans its own
	// inner work (ABM trials, transition-sweep shards) across
	// InnerWorkers goroutines.
	Workers int
	// InnerWorkers bounds the per-job fan-out handed to internal/par
	// (default 1: with Workers jobs in flight, per-job parallelism is
	// usually counterproductive; raise it for a lightly loaded daemon).
	InnerWorkers int
	// QueueDepth bounds the number of queued-but-not-running jobs
	// (default 64). Submissions beyond the bound are rejected so a burst
	// degrades into fast 503s instead of unbounded memory growth.
	QueueDepth int
	// CacheEntries is the capacity of the content-addressed result cache
	// (default 256; negative disables caching).
	CacheEntries int
	// MaxJobs bounds the number of job records retained for polling
	// (default 4096); the oldest finished jobs are evicted first.
	MaxJobs int
	// DefaultTimeout applies to jobs that do not request one
	// (default 60s).
	DefaultTimeout time.Duration
	// MaxTimeout caps the per-job timeout a client may request
	// (default 10m).
	MaxTimeout time.Duration
	// Seed drives the built-in synthetic Digg2009 scenario construction
	// (default 1, matching the CLIs).
	Seed int64
	// Logger receives the service's structured records: job lifecycle at
	// info, HTTP requests and solver progress at debug. Nil discards
	// everything, so tests and embedders that don't care stay silent.
	Logger *slog.Logger
	// ProgressLogEvery logs every Nth solver progress event of a job at
	// debug level (default 25; progress is still always visible on
	// GET /v1/jobs/{id} regardless). Negative disables progress logging.
	ProgressLogEvery int
	// JournalEntries is the per-job capacity of the flight-recorder ring
	// (default 256): once a job has emitted more events, the oldest are
	// overwritten and GET /v1/jobs/{id}/events replays only the tail,
	// revealed by gaps in the seq numbers.
	JournalEntries int
	// JournalSink, when non-nil, additionally receives every journal entry
	// as one JSON line (rumord's -journal-file). Writes happen inline on
	// the emitting goroutine; hand in a buffered or async writer for slow
	// destinations.
	JournalSink io.Writer
	// TraceSpans bounds the in-memory finished-span ring exported at
	// /debug/events (default 1024).
	TraceSpans int
	// SSEHeartbeat is the idle keep-alive cadence of the
	// GET /v1/jobs/{id}/events stream (default 15s): a comment line that
	// defeats idle-connection timeouts in proxies without waking clients.
	SSEHeartbeat time.Duration
	// Invariants sets the numerical invariant-monitor tolerances; the zero
	// value selects internal/obs/invariant's documented defaults.
	Invariants invariant.Config
	// StoreDir, when non-empty, opens (creating if needed) the durable job
	// store rooted there: every accepted job is logged to a write-ahead log
	// and every result persisted to a content-addressed blob store, so a
	// restarted daemon re-enqueues unfinished jobs and serves completed
	// results without recomputing them (rumord's -data-dir). Empty keeps
	// the service fully in-memory.
	StoreDir string
	// StoreOptions tunes the store when StoreDir is set (sync policy,
	// segment sizing, result retention). The Logger defaults to Config.
	// Logger and the Hooks are always overridden to feed the service's
	// metrics registry.
	StoreOptions store.Options
	// StoreReader, when non-nil, overrides the read-only persistence seam
	// the serving paths use (cache-miss result reads, response-surface
	// artifacts). Defaults to the store StoreDir opened; tests inject a
	// double here to prove the serving tier never reaches around the seam,
	// and a shared or remote content-addressed tier can slot in the same
	// way. Writes still go to the local store when one is configured.
	StoreReader store.Reader
	// Cluster, when Enabled, runs the service as a coordinator: no local
	// worker pool, jobs execute on remote worker nodes under fenced leases
	// (see cluster.go and DESIGN.md §12).
	Cluster ClusterConfig
	// SaturationBudget is the queue-wait p99 budget: when the p99 dwell
	// time over the sliding SaturationWindow exceeds it, the service
	// reports saturated (rumor_saturated gauge, /readyz degraded reason)
	// so load balancers shed before timeouts pile up (default 2s;
	// negative disables the detector). See DESIGN.md §14.
	SaturationBudget time.Duration
	// SaturationWindow is the sliding window the saturation detector
	// evaluates over (default 30s). Implemented as two rotating epochs, so
	// the visible history spans between half and the full window.
	SaturationWindow time.Duration
	// DisableSegmentMetrics turns off the per-segment latency histograms
	// (rumor_job_latency_segment_seconds) and per-job attribution fields.
	// Exists so the segments-off/on benchmark pair can price the hooks;
	// production keeps them on.
	DisableSegmentMetrics bool
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = defaultWorkers()
	}
	if c.InnerWorkers <= 0 {
		c.InnerWorkers = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	} else if c.CacheEntries < 0 {
		c.CacheEntries = 0 // explicit disable
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4096
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Logger == nil {
		c.Logger = obs.NopLogger()
	}
	if c.ProgressLogEvery == 0 {
		c.ProgressLogEvery = 25
	} else if c.ProgressLogEvery < 0 {
		c.ProgressLogEvery = 0 // explicit disable
	}
	if c.JournalEntries <= 0 {
		c.JournalEntries = 256
	}
	if c.TraceSpans <= 0 {
		c.TraceSpans = 1024
	}
	if c.SSEHeartbeat <= 0 {
		c.SSEHeartbeat = 15 * time.Second
	}
	if c.SaturationBudget == 0 {
		c.SaturationBudget = 2 * time.Second
	} else if c.SaturationBudget < 0 {
		c.SaturationBudget = 0 // explicit disable
	}
	if c.SaturationWindow <= 0 {
		c.SaturationWindow = 30 * time.Second
	}
	c.Cluster = c.Cluster.withDefaults()
	return c
}

func (c Config) validate() error {
	if c.DefaultTimeout > c.MaxTimeout {
		return fmt.Errorf("service: default timeout %s exceeds max timeout %s",
			c.DefaultTimeout, c.MaxTimeout)
	}
	return nil
}
