package service

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

// tinyScenario registers a 3-group degree table that keeps jobs cheap.
func tinyScenario(t *testing.T, s *Service) *Scenario {
	t.Helper()
	sc, err := s.RegisterScenario("tiny", []int{2, 4, 8}, []float64{0.5, 0.3, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// waitTerminal polls until the job settles; jobs in these tests finish in
// milliseconds, so the deadline only guards against hangs.
func waitTerminal(t *testing.T, s *Service, id string) Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		job, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if job.Status.Terminal() {
			return job
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not settle", id)
	return Job{}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Workers < 1 || c.InnerWorkers != 1 || c.QueueDepth != 64 {
		t.Errorf("worker/queue defaults wrong: %+v", c)
	}
	if c.CacheEntries != 256 {
		t.Errorf("CacheEntries default = %d, want 256", c.CacheEntries)
	}
	if got := (Config{CacheEntries: -1}).withDefaults().CacheEntries; got != 0 {
		t.Errorf("CacheEntries(-1) = %d, want 0 (disabled)", got)
	}
	if err := (Config{DefaultTimeout: time.Hour, MaxTimeout: time.Minute}).withDefaults().validate(); err == nil {
		t.Error("default timeout above max: want error")
	}
}

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	c.put("a", json.RawMessage(`1`))
	c.put("b", json.RawMessage(`2`))
	if _, ok := c.get("a"); !ok { // a becomes MRU
		t.Fatal("a missing")
	}
	c.put("c", json.RawMessage(`3`)) // evicts b (LRU)
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted")
	}
	if v, ok := c.get("a"); !ok || string(v) != `1` {
		t.Errorf("a = %s, %v; want 1, true", v, ok)
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}

	off := newResultCache(0)
	off.put("x", json.RawMessage(`9`))
	if _, ok := off.get("x"); ok || off.len() != 0 {
		t.Error("disabled cache stored an entry")
	}
}

// TestCacheKeyCanonicalization: omitting a parameter and spelling out its
// default must land on the same cache entry; changing any parameter or the
// scenario must not.
func TestCacheKeyCanonicalization(t *testing.T) {
	omitted := Params{}.withDefaults(JobODE)
	explicit := Params{Alpha: 0.01, Eps1: 0.2, Eps2: 0.05, Lambda0: 0.001,
		I0: 0.1, Tf: 150, Points: 500, Seed: 1}.withDefaults(JobODE)
	if cacheKey(JobODE, "fp", omitted) != cacheKey(JobODE, "fp", explicit) {
		t.Error("explicit defaults and omitted fields should share a cache key")
	}
	perturbed := omitted
	perturbed.Tf = 151
	if cacheKey(JobODE, "fp", omitted) == cacheKey(JobODE, "fp", perturbed) {
		t.Error("different tf should change the cache key")
	}
	if cacheKey(JobODE, "fp", omitted) == cacheKey(JobThreshold, "fp", omitted) {
		t.Error("different job type should change the cache key")
	}
	if cacheKey(JobODE, "fp", omitted) == cacheKey(JobODE, "fp2", omitted) {
		t.Error("different scenario fingerprint should change the cache key")
	}
}

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		name string
		typ  JobType
		mut  func(*Params)
		ok   bool
	}{
		{"ode defaults", JobODE, func(p *Params) {}, true},
		{"negative alpha", JobODE, func(p *Params) { p.Alpha = -1 }, false},
		{"negative tf", JobODE, func(p *Params) { p.Tf = -3 }, false},
		{"i0 too big", JobODE, func(p *Params) { p.I0 = 2 }, false},
		{"one point", JobODE, func(p *Params) { p.Points = 1 }, false},
		{"abm needs trials", JobABM, func(p *Params) {}, false},
		{"abm ok", JobABM, func(p *Params) { p.Trials = 2 }, true},
		{"abm tiny graph", JobABM, func(p *Params) { p.Trials = 1; p.Nodes = 1 }, false},
		{"fbsm defaults", JobFBSM, func(p *Params) {}, true},
		{"fbsm negative target", JobFBSM, func(p *Params) { p.Target = -1 }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := Params{}
			tc.mut(&p)
			p = p.withDefaults(tc.typ)
			tc.mut(&p) // reapply so defaults don't paper over the mutation
			err := p.validate(tc.typ)
			if (err == nil) != tc.ok {
				t.Errorf("validate(%s, %+v) = %v, want ok=%v", tc.typ, p, err, tc.ok)
			}
		})
	}
}

func TestScenarioRegistry(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	if _, err := s.Scenario(BuiltinScenario); err != nil {
		t.Fatalf("built-in scenario missing: %v", err)
	}
	sc := tinyScenario(t, s)
	if sc.Groups != 3 || sc.MinDegree != 2 || sc.MaxDegree != 8 {
		t.Errorf("tiny scenario summary wrong: %+v", sc)
	}
	if len(sc.Fingerprint) != 64 {
		t.Errorf("fingerprint %q is not a sha256 hex digest", sc.Fingerprint)
	}

	if _, err := s.RegisterScenario("tiny", []int{1}, []float64{1}); !errors.Is(err, errDuplicate) {
		t.Errorf("duplicate name: got %v, want errDuplicate", err)
	}
	if _, err := s.RegisterScenario("bad name!", []int{1}, []float64{1}); err == nil {
		t.Error("invalid name accepted")
	}
	if _, err := s.RegisterScenario("negprob", []int{1, 2}, []float64{0.5, -0.5}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("negative probability: got %v, want ErrBadRequest", err)
	}

	// Same table registered under a different name shares the fingerprint
	// (and therefore the cache namespace).
	sc2, err := s.RegisterScenario("tiny2", []int{2, 4, 8}, []float64{0.5, 0.3, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if sc2.Fingerprint != sc.Fingerprint {
		t.Error("identical tables should share a fingerprint")
	}

	names := make([]string, 0, 3)
	for _, got := range s.Scenarios() {
		names = append(names, got.Name)
	}
	if strings.Join(names, ",") != "digg2009,tiny,tiny2" {
		t.Errorf("Scenarios() = %v, want sorted [digg2009 tiny tiny2]", names)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	cases := []struct {
		name string
		req  Request
	}{
		{"unknown type", Request{Type: "quantum"}},
		{"unknown scenario", Request{Type: JobODE, Scenario: "nope"}},
		{"bad params", Request{Type: JobODE, Params: Params{Tf: -1}}},
		{"negative timeout", Request{Type: JobODE, TimeoutSec: -2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := s.Submit(tc.req); !errors.Is(err, ErrBadRequest) {
				t.Errorf("Submit = %v, want ErrBadRequest", err)
			}
		})
	}
	st := s.Stats()
	if st.Jobs.Submitted != 0 {
		t.Errorf("rejected submissions counted as submitted: %+v", st.Jobs)
	}
}

// TestThresholdJobAndCache drives the whole engine without HTTP: a
// threshold job on the tiny scenario succeeds, and an identical second
// submission completes synchronously from the cache.
func TestThresholdJobAndCache(t *testing.T) {
	s := newTestService(t, Config{Workers: 2})
	tinyScenario(t, s)
	req := Request{Type: JobThreshold, Scenario: "tiny", Params: Params{Lambda0: 0.02, Tf: 30}}

	job, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if job.ID != "j-000001" || job.CacheHit {
		t.Errorf("first submission: %+v", job)
	}
	done := waitTerminal(t, s, job.ID)
	if done.Status != StatusSucceeded {
		t.Fatalf("job failed: %s", done.Error)
	}
	var res ThresholdResult
	if err := json.Unmarshal(done.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.R0 <= 0 || res.Verdict == "" {
		t.Errorf("threshold result looks empty: %+v", res)
	}

	again, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit || again.Status != StatusSucceeded {
		t.Fatalf("second submission should be a synchronous cache hit: %+v", again)
	}
	if string(again.Result) != string(done.Result) {
		t.Error("cached result differs from the original")
	}
	st := s.Stats()
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 || st.Cache.HitRate != 0.5 {
		t.Errorf("cache stats: %+v", st.Cache)
	}
	if st.Jobs.Submitted != 2 || st.Jobs.Completed != 2 {
		t.Errorf("job stats: %+v", st.Jobs)
	}
	if ls, ok := st.LatencyMS[string(JobThreshold)]; !ok || ls.Count != 1 {
		t.Errorf("latency should record exactly the one executed job: %+v", st.LatencyMS)
	}
}

func TestDrainRejectsNewWork(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	tinyScenario(t, s)
	job, err := s.Submit(Request{Type: JobThreshold, Scenario: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if s.Ready() {
		t.Error("Ready() should be false after Drain")
	}
	// The queued job completed during the drain.
	if got, _ := s.Job(job.ID); got.Status != StatusSucceeded {
		t.Errorf("queued job after drain: %+v", got)
	}
	if _, err := s.Submit(Request{Type: JobThreshold, Scenario: "tiny", Params: Params{Seed: 9}}); !errors.Is(err, ErrDraining) {
		t.Errorf("Submit after drain = %v, want ErrDraining", err)
	}
	if s.Stats().Jobs.Rejected != 1 {
		t.Errorf("rejected counter: %+v", s.Stats().Jobs)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	// No workers: submissions stay queued forever, so Cancel hits the
	// queued path deterministically.
	s, err := New(Config{Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	tinyScenario(t, s)

	// Park the single worker on a long FBSM job, then cancel a queued one.
	slow := Request{Type: JobFBSM, Scenario: "tiny", Params: Params{Grid: 400000, Lambda0: 0.02}}
	parked, err := s.Submit(slow)
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(Request{Type: JobThreshold, Scenario: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != StatusCancelled {
		t.Errorf("cancel queued: %+v", got)
	}
	// Cancelling again is a no-op returning the settled snapshot.
	if again, err := s.Cancel(queued.ID); err != nil || again.Status != StatusCancelled {
		t.Errorf("re-cancel: %+v, %v", again, err)
	}
	if _, err := s.Cancel("j-999999"); !errors.Is(err, ErrNotFound) {
		t.Errorf("cancel unknown job = %v, want ErrNotFound", err)
	}

	// Unpark: cancel the slow job too, and wait for it to settle so Close
	// does not race the worker.
	if _, err := s.Cancel(parked.ID); err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, s, parked.ID)
	if fin.Status != StatusCancelled && fin.Status != StatusSucceeded {
		t.Errorf("parked job settled as %s (%s)", fin.Status, fin.Error)
	}
}

func TestJobTimeout(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, DefaultTimeout: 20 * time.Millisecond})
	tinyScenario(t, s)
	// A 400k-interval FBSM sweep takes far longer than 20ms.
	job, err := s.Submit(Request{Type: JobFBSM, Scenario: "tiny", Params: Params{Grid: 400000, Lambda0: 0.02}})
	if err != nil {
		t.Fatal(err)
	}
	done := waitTerminal(t, s, job.ID)
	if done.Status != StatusFailed || !strings.Contains(done.Error, "timed out") {
		t.Errorf("want timeout failure, got %s (%s)", done.Status, done.Error)
	}
	if s.Stats().Jobs.Failed != 1 {
		t.Errorf("failed counter: %+v", s.Stats().Jobs)
	}
}

func TestJobRetentionEviction(t *testing.T) {
	s := newTestService(t, Config{Workers: 2, MaxJobs: 3})
	tinyScenario(t, s)
	var last Job
	for i := 0; i < 5; i++ {
		job, err := s.Submit(Request{Type: JobThreshold, Scenario: "tiny", Params: Params{Seed: int64(i + 1)}})
		if err != nil {
			t.Fatal(err)
		}
		last = waitTerminal(t, s, job.ID)
	}
	if last.Status != StatusSucceeded {
		t.Fatalf("job failed: %s", last.Error)
	}
	jobs := s.Jobs()
	if len(jobs) > 3 {
		t.Errorf("retained %d jobs, want <= 3", len(jobs))
	}
	if _, ok := s.Job("j-000001"); ok {
		t.Error("oldest job should have been evicted")
	}
	if _, ok := s.Job(last.ID); !ok {
		t.Error("newest job should be retained")
	}
}
