package service

import (
	"container/list"
	"encoding/json"
	"sync"
)

// resultCache is a content-addressed LRU cache of marshaled job results.
// Keys are cacheKey digests, so identical (scenario, params) submissions —
// regardless of field order or explicit-vs-defaulted parameters — resolve
// to the same entry and repeated requests are O(1).
type resultCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type cacheEntry struct {
	key string
	val json.RawMessage
}

// newResultCache returns a cache bounded to capacity entries; capacity 0
// disables caching (every Get misses, every Put is dropped).
func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap: capacity,
		ll:  list.New(),
		m:   make(map[string]*list.Element),
	}
}

func (c *resultCache) get(key string) (json.RawMessage, bool) {
	if c.cap == 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	// RawMessage values are written once and never mutated after Put, so
	// handing out the shared slice is safe.
	return el.Value.(*cacheEntry).val, true
}

// put inserts or refreshes an entry and returns the keys the LRU bound
// evicted, so the caller can count them and release per-key state (journal
// entries of the evicted jobs) without the cache knowing about either.
func (c *resultCache) put(key string, val json.RawMessage) (evicted []string) {
	if c.cap == 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).val = val
		return nil
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		k := oldest.Value.(*cacheEntry).key
		delete(c.m, k)
		evicted = append(evicted, k)
	}
	return evicted
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
