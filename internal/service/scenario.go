package service

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"regexp"
	"sort"
	"sync"

	"rumornet/internal/degreedist"
)

// BuiltinScenario is the name of the calibrated synthetic Digg2009 degree
// distribution registered at service start (the paper's evaluation
// substrate, Section V).
const BuiltinScenario = "digg2009"

// Scenario is a registered degree-distribution a job can run against. The
// distribution is built once at registration and shared read-only by every
// job, which amortizes model construction across requests.
type Scenario struct {
	Name        string  `json:"name"`
	Source      string  `json:"source"` // "builtin" or "uploaded"
	Groups      int     `json:"groups"`
	MinDegree   int     `json:"min_degree"`
	MaxDegree   int     `json:"max_degree"`
	MeanDegree  float64 `json:"mean_degree"`
	Fingerprint string  `json:"fingerprint"` // content address of the table

	dist *degreedist.Dist
}

// Dist returns the scenario's immutable degree distribution.
func (sc *Scenario) Dist() *degreedist.Dist { return sc.dist }

var scenarioName = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9_.-]{0,63}$`)

// registry is the concurrency-safe scenario table. Scenarios are append-
// only: jobs hold *Scenario pointers, so deletion would invalidate queued
// work; operators restart the daemon to reset the table.
type registry struct {
	mu sync.RWMutex
	m  map[string]*Scenario
}

func newRegistry() *registry {
	return &registry{m: make(map[string]*Scenario)}
}

func (r *registry) register(name, source string, dist *degreedist.Dist) (*Scenario, error) {
	if !scenarioName.MatchString(name) {
		return nil, fmt.Errorf("service: invalid scenario name %q (want %s)", name, scenarioName)
	}
	if err := dist.Validate(); err != nil {
		return nil, fmt.Errorf("service: scenario %q: %w", name, err)
	}
	sc := &Scenario{
		Name:        name,
		Source:      source,
		Groups:      dist.N(),
		MinDegree:   dist.MinDegree(),
		MaxDegree:   dist.MaxDegree(),
		MeanDegree:  dist.MeanDegree(),
		Fingerprint: fingerprintDist(dist),
		dist:        dist,
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.m[name]; dup {
		return nil, fmt.Errorf("service: scenario %q already registered: %w", name, errDuplicate)
	}
	r.m[name] = sc
	return sc, nil
}

func (r *registry) get(name string) (*Scenario, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	sc, ok := r.m[name]
	return sc, ok
}

func (r *registry) list() []*Scenario {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Scenario, 0, len(r.m))
	for _, sc := range r.m {
		out = append(out, sc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// fingerprintDist content-addresses a degree table: SHA-256 over the exact
// (degree, probability-bits) pairs. Two scenarios with bit-identical tables
// share cache entries regardless of the name they were registered under.
func fingerprintDist(d *degreedist.Dist) string {
	h := sha256.New()
	var buf [16]byte
	for i := 0; i < d.N(); i++ {
		binary.LittleEndian.PutUint64(buf[:8], uint64(d.Degree(i)))
		binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(d.Prob(i)))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}
