package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// testServer couples a Service to an httptest.Server, exercising the same
// handler stack cmd/rumord serves.
type testServer struct {
	t   *testing.T
	svc *Service
	ts  *httptest.Server
}

func newE2E(t *testing.T, cfg Config) *testServer {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	e := &testServer{t: t, svc: svc, ts: ts}
	e.post("/v1/scenarios", `{"name":"tiny","degrees":[2,4,8],"probs":[0.5,0.3,0.2]}`, http.StatusCreated)
	return e
}

// do issues a request and decodes the JSON response into out (if non-nil),
// asserting the status code.
func (e *testServer) do(method, path, body string, wantStatus int, out any) {
	e.t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, e.ts.URL+path, rd)
	if err != nil {
		e.t.Fatal(err)
	}
	resp, err := e.ts.Client().Do(req)
	if err != nil {
		e.t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		e.t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		e.t.Fatalf("%s %s: status %d, want %d — body %s", method, path, resp.StatusCode, wantStatus, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			e.t.Fatalf("%s %s: decode %q: %v", method, path, raw, err)
		}
	}
}

func (e *testServer) post(path, body string, wantStatus int) Job {
	e.t.Helper()
	var job Job
	e.do(http.MethodPost, path, body, wantStatus, &job)
	return job
}

// submitAndWait submits a job and polls GET /v1/jobs/{id} until terminal.
func (e *testServer) submitAndWait(body string) Job {
	e.t.Helper()
	job := e.post("/v1/jobs", body, http.StatusAccepted)
	return e.wait(job.ID)
}

func (e *testServer) wait(id string) Job {
	e.t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var job Job
		e.do(http.MethodGet, "/v1/jobs/"+id, "", http.StatusOK, &job)
		if job.Status.Terminal() {
			return job
		}
		time.Sleep(3 * time.Millisecond)
	}
	e.t.Fatalf("job %s did not settle", id)
	return Job{}
}

func mustSucceed(t *testing.T, job Job) {
	t.Helper()
	if job.Status != StatusSucceeded {
		t.Fatalf("job %s: %s (%s)", job.ID, job.Status, job.Error)
	}
}

func TestE2EODEJob(t *testing.T) {
	e := newE2E(t, Config{Workers: 2})
	job := e.submitAndWait(`{"type":"ode","scenario":"tiny","params":{"lambda0":0.02,"tf":40,"points":50}}`)
	mustSucceed(t, job)
	var res ODEResult
	if err := json.Unmarshal(job.Result, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.T) < 2 || len(res.T) != len(res.MeanI) {
		t.Fatalf("trajectory shape: %d times, %d values", len(res.T), len(res.MeanI))
	}
	if len(res.T) > 60 {
		t.Errorf("points bound ignored: %d samples returned", len(res.T))
	}
	if res.R0 <= 0 || res.PeakI < res.FinalI {
		t.Errorf("implausible ODE result: %+v", res)
	}
	if job.ElapsedMS <= 0 {
		t.Error("elapsed_ms missing for an executed job")
	}
}

func TestE2EThresholdJob(t *testing.T) {
	e := newE2E(t, Config{Workers: 2})
	job := e.submitAndWait(`{"type":"threshold","scenario":"tiny","params":{"r0":1.6,"tf":30}}`)
	mustSucceed(t, job)
	var res ThresholdResult
	if err := json.Unmarshal(job.Result, &res); err != nil {
		t.Fatal(err)
	}
	// The model was calibrated to r0 = 1.6; supercritical, so E+ exists.
	if res.R0 < 1.55 || res.R0 > 1.65 {
		t.Errorf("calibrated r0 = %g, want ≈ 1.6", res.R0)
	}
	if res.ThetaPlus == nil || *res.ThetaPlus <= 0 {
		t.Errorf("supercritical scenario should report Θ+: %+v", res)
	}
	if res.RequiredEps1 <= 0 || res.RequiredEps2 <= 0 {
		t.Errorf("required controls missing: %+v", res)
	}
}

func TestE2EABMJob(t *testing.T) {
	e := newE2E(t, Config{Workers: 2, InnerWorkers: 2})
	job := e.submitAndWait(`{"type":"abm","scenario":"tiny","params":{"lambda0":0.05,"tf":10,"trials":2,"nodes":600}}`)
	mustSucceed(t, job)
	var res ABMResult
	if err := json.Unmarshal(job.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Trials != 2 || res.Nodes != 600 {
		t.Errorf("abm sizes: %+v", res)
	}
	if len(res.T) != len(res.I) || len(res.T) < 2 {
		t.Errorf("abm trajectory shape: %d/%d", len(res.T), len(res.I))
	}
}

func TestE2EFBSMJob(t *testing.T) {
	e := newE2E(t, Config{Workers: 2})
	job := e.submitAndWait(`{"type":"fbsm","scenario":"tiny","params":{"lambda0":0.05,"tf":20,"grid":120,"eps_max":0.6}}`)
	mustSucceed(t, job)
	var res FBSMResult
	if err := json.Unmarshal(job.Result, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.T) != 121 || len(res.Eps1) != 121 || len(res.Eps2) != 121 {
		t.Fatalf("schedule length %d/%d/%d, want 121", len(res.T), len(res.Eps1), len(res.Eps2))
	}
	if res.Total <= 0 || res.Iterations < 1 {
		t.Errorf("implausible policy: %+v", res)
	}
	for i, v := range res.Eps1 {
		if v < 0 || v > 0.6 || res.Eps2[i] < 0 || res.Eps2[i] > 0.6 {
			t.Fatalf("control out of [0, eps_max] at node %d: %g, %g", i, v, res.Eps2[i])
		}
	}
}

// TestE2ECacheHit verifies the acceptance-criterion path: identical
// resubmission returns synchronously with cache_hit=true, byte-identical
// result, and /v1/stats reflects it.
func TestE2ECacheHit(t *testing.T) {
	e := newE2E(t, Config{Workers: 2})
	body := `{"type":"ode","scenario":"tiny","params":{"lambda0":0.02,"tf":40,"points":50}}`
	first := e.submitAndWait(body)
	mustSucceed(t, first)

	// Field order and explicit defaults must not defeat the cache.
	reordered := `{"params":{"tf":40,"points":50,"lambda0":0.02,"alpha":0.01},"scenario":"tiny","type":"ode"}`
	hit := e.post("/v1/jobs", reordered, http.StatusOK)
	if !hit.CacheHit || hit.Status != StatusSucceeded {
		t.Fatalf("want synchronous cache hit, got %+v", hit)
	}
	if !bytes.Equal(hit.Result, first.Result) {
		t.Error("cached result differs from the original")
	}

	var st Stats
	e.do(http.MethodGet, "/v1/stats", "", http.StatusOK, &st)
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Errorf("cache counters: %+v", st.Cache)
	}
	if st.Cache.HitRate != 0.5 {
		t.Errorf("hit rate = %g, want 0.5", st.Cache.HitRate)
	}
	if st.Jobs.Completed != 2 {
		t.Errorf("completed = %d, want 2", st.Jobs.Completed)
	}
	if ls := st.LatencyMS["ode"]; ls.Count != 1 {
		t.Errorf("latency must exclude cache hits: %+v", st.LatencyMS)
	}
}

func TestE2ETimeout(t *testing.T) {
	e := newE2E(t, Config{Workers: 1})
	job := e.post("/v1/jobs",
		`{"type":"fbsm","scenario":"tiny","params":{"lambda0":0.02,"grid":400000},"timeout_sec":0.05}`,
		http.StatusAccepted)
	done := e.wait(job.ID)
	if done.Status != StatusFailed || !strings.Contains(done.Error, "timed out") {
		t.Errorf("want timeout failure, got %s (%s)", done.Status, done.Error)
	}
}

func TestE2ECancelRunning(t *testing.T) {
	e := newE2E(t, Config{Workers: 1})
	job := e.post("/v1/jobs",
		`{"type":"fbsm","scenario":"tiny","params":{"lambda0":0.02,"grid":400000},"timeout_sec":120}`,
		http.StatusAccepted)
	// Wait for the worker to pick it up, then cancel mid-flight.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var cur Job
		e.do(http.MethodGet, "/v1/jobs/"+job.ID, "", http.StatusOK, &cur)
		if cur.Status == StatusRunning {
			break
		}
		if cur.Status.Terminal() {
			t.Fatalf("job settled before it could be cancelled: %+v", cur)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	e.do(http.MethodDelete, "/v1/jobs/"+job.ID, "", http.StatusOK, nil)
	done := e.wait(job.ID)
	if done.Status != StatusCancelled || !strings.Contains(done.Error, "cancelled by client") {
		t.Errorf("want client cancellation, got %s (%s)", done.Status, done.Error)
	}
}

func TestE2EQueueFull(t *testing.T) {
	e := newE2E(t, Config{Workers: 1, QueueDepth: 1})
	park := e.post("/v1/jobs",
		`{"type":"fbsm","scenario":"tiny","params":{"lambda0":0.02,"grid":400000},"timeout_sec":120}`,
		http.StatusAccepted)
	// Wait until the worker dequeues the parked job, freeing the queue slot.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var cur Job
		e.do(http.MethodGet, "/v1/jobs/"+park.ID, "", http.StatusOK, &cur)
		if cur.Status == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("parked job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	e.post("/v1/jobs", `{"type":"threshold","scenario":"tiny"}`, http.StatusAccepted) // fills the slot
	var errResp struct {
		Error string `json:"error"`
	}
	e.do(http.MethodPost, "/v1/jobs", `{"type":"threshold","scenario":"tiny","params":{"seed":7}}`,
		http.StatusServiceUnavailable, &errResp)
	if !strings.Contains(errResp.Error, "queue full") {
		t.Errorf("503 body: %+v", errResp)
	}
	e.do(http.MethodDelete, "/v1/jobs/"+park.ID, "", http.StatusOK, nil)
	e.wait(park.ID)
}

func TestE2EBadRequests(t *testing.T) {
	e := newE2E(t, Config{Workers: 1})
	cases := []struct {
		name, method, path, body string
		status                   int
	}{
		{"unknown type", "POST", "/v1/jobs", `{"type":"quantum"}`, 400},
		{"unknown field", "POST", "/v1/jobs", `{"type":"ode","params":{"epsmax":1}}`, 400},
		{"malformed json", "POST", "/v1/jobs", `{"type":`, 400},
		{"unknown scenario", "POST", "/v1/jobs", `{"type":"ode","scenario":"nope"}`, 400},
		{"bad params", "POST", "/v1/jobs", `{"type":"abm","scenario":"tiny"}`, 400},
		{"job not found", "GET", "/v1/jobs/j-424242", "", 404},
		{"cancel not found", "DELETE", "/v1/jobs/j-424242", "", 404},
		{"scenario not found", "GET", "/v1/scenarios/ghost", "", 404},
		{"duplicate scenario", "POST", "/v1/scenarios", `{"name":"tiny","degrees":[1],"probs":[1]}`, 409},
		{"invalid table", "POST", "/v1/scenarios", `{"name":"neg","degrees":[1,2],"probs":[2,-1]}`, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var errResp struct {
				Error string `json:"error"`
			}
			e.do(tc.method, tc.path, tc.body, tc.status, &errResp)
			if errResp.Error == "" {
				t.Error("error envelope missing")
			}
		})
	}
}

func TestE2EOperationalEndpoints(t *testing.T) {
	e := newE2E(t, Config{Workers: 2, QueueDepth: 8})
	var health map[string]string
	e.do(http.MethodGet, "/healthz", "", http.StatusOK, &health)
	if health["status"] != "ok" {
		t.Errorf("healthz: %v", health)
	}
	e.do(http.MethodGet, "/readyz", "", http.StatusOK, nil)

	var scList struct {
		Scenarios []Scenario `json:"scenarios"`
	}
	e.do(http.MethodGet, "/v1/scenarios", "", http.StatusOK, &scList)
	if len(scList.Scenarios) != 2 { // builtin + tiny
		t.Fatalf("scenario list: %+v", scList)
	}
	var builtin Scenario
	e.do(http.MethodGet, "/v1/scenarios/"+BuiltinScenario, "", http.StatusOK, &builtin)
	if builtin.Groups == 0 || builtin.Fingerprint == "" {
		t.Errorf("builtin scenario summary: %+v", builtin)
	}

	var st Stats
	e.do(http.MethodGet, "/v1/stats", "", http.StatusOK, &st)
	if st.QueueCapacity != 8 || st.Workers != 2 || st.Draining {
		t.Errorf("stats shape: %+v", st)
	}
}

// TestE2EConcurrentSubmissions hammers the API from many goroutines; run
// under -race this doubles as the data-race check for the whole stack.
func TestE2EConcurrentSubmissions(t *testing.T) {
	e := newE2E(t, Config{Workers: 4, QueueDepth: 64})
	const n = 24
	var wg sync.WaitGroup
	ids := make([]string, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Three distinct parameter sets so cache hits and misses mix.
			body := fmt.Sprintf(`{"type":"threshold","scenario":"tiny","params":{"seed":%d}}`, i%3+1)
			resp, err := e.ts.Client().Post(e.ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			var job Job
			if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
				errs[i] = err
				return
			}
			ids[i] = job.ID
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submission %d: %v", i, err)
		}
	}
	for _, id := range ids {
		if job := e.wait(id); job.Status != StatusSucceeded {
			t.Errorf("job %s: %s (%s)", id, job.Status, job.Error)
		}
	}
	var st Stats
	e.do(http.MethodGet, "/v1/stats", "", http.StatusOK, &st)
	if st.Jobs.Completed != n {
		t.Errorf("completed = %d, want %d", st.Jobs.Completed, n)
	}
	if st.Cache.Hits+st.Cache.Misses != n || st.Cache.Misses < 3 {
		t.Errorf("cache accounting: %+v", st.Cache)
	}
}
