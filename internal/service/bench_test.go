package service

import (
	"testing"
	"time"
)

func benchService(b *testing.B) *Service {
	b.Helper()
	s, err := New(Config{Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Close)
	if _, err := s.RegisterScenario("tiny", []int{2, 4, 8}, []float64{0.5, 0.3, 0.2}); err != nil {
		b.Fatal(err)
	}
	return s
}

func benchWait(b *testing.B, s *Service, id string) Job {
	b.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		job, ok := s.Job(id)
		if !ok {
			b.Fatalf("job %s disappeared", id)
		}
		if job.Status.Terminal() {
			if job.Status != StatusSucceeded {
				b.Fatalf("job %s: %s (%s)", id, job.Status, job.Error)
			}
			return job
		}
		time.Sleep(time.Millisecond)
	}
	b.Fatalf("job %s did not settle", id)
	return Job{}
}

// BenchmarkJobColdODE measures the full submit→execute→poll cost of an ODE
// job that misses the cache (the seed changes every iteration, so each
// submission is a distinct cache key).
func BenchmarkJobColdODE(b *testing.B) {
	s := benchService(b)
	req := Request{Type: JobODE, Scenario: "tiny", Params: Params{Lambda0: 0.02, Tf: 40, Points: 50}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req.Params.Seed = int64(i + 1)
		job, err := s.Submit(req)
		if err != nil {
			b.Fatal(err)
		}
		benchWait(b, s, job.ID)
	}
}

// BenchmarkJobCacheHit measures the same request resolved from the result
// cache: Submit completes synchronously, no queue, no solver. The ratio to
// BenchmarkJobColdODE is the headline number for the PR's caching claim.
func BenchmarkJobCacheHit(b *testing.B) {
	s := benchService(b)
	req := Request{Type: JobODE, Scenario: "tiny", Params: Params{Lambda0: 0.02, Tf: 40, Points: 50}}
	job, err := s.Submit(req)
	if err != nil {
		b.Fatal(err)
	}
	benchWait(b, s, job.ID)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hit, err := s.Submit(req)
		if err != nil {
			b.Fatal(err)
		}
		if !hit.CacheHit {
			b.Fatal("expected a cache hit")
		}
	}
}

// benchJobThroughput measures sustained job throughput on the standard
// workload — ODE integrations over the built-in Digg2009 scenario, the job
// the paper's experiments submit (~tens of ms each; a distinct cache key
// every iteration, so each one executes). Jobs are submitted in waves that
// keep the worker pool saturated, the way real clients drive a daemon, so
// the store's per-job filesystem work overlaps other jobs' compute instead
// of being measured as serial latency.
func benchJobThroughput(b *testing.B, cfg Config) {
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Close)
	req := Request{Type: JobODE, Params: Params{Lambda0: 0.02, Tf: 150, Points: 150}}
	const wave = 16 // well under the default queue depth
	b.ResetTimer()
	for done := 0; done < b.N; {
		n := min(wave, b.N-done)
		ids := make([]string, 0, n)
		for j := 0; j < n; j++ {
			req.Params.Seed = int64(done + j + 1)
			job, err := s.Submit(req)
			if err != nil {
				b.Fatal(err)
			}
			ids = append(ids, job.ID)
		}
		for _, id := range ids {
			benchWait(b, s, id)
		}
		done += n
	}
}

// BenchmarkJobThroughputWALOff/On are the BENCH_PR5 acceptance pair: the
// durable store (batched fsync, the default policy) must hold job
// throughput within a few percent of the in-memory service.
func BenchmarkJobThroughputWALOff(b *testing.B) {
	benchJobThroughput(b, Config{Workers: 2})
}

func BenchmarkJobThroughputWALOn(b *testing.B) {
	benchJobThroughput(b, Config{Workers: 2, StoreDir: b.TempDir()})
}

// BenchmarkJobSegmentsOff/On price the PR 9 latency-attribution hooks
// (segment histograms + per-job fields + the saturation window's
// per-dequeue HDR record and p99 walk) on the same saturated workload the
// WAL pair uses: On must hold throughput within the repo's 5% gate of Off.
func BenchmarkJobSegmentsOff(b *testing.B) {
	benchJobThroughput(b, Config{Workers: 2, DisableSegmentMetrics: true, SaturationBudget: -1})
}

func BenchmarkJobSegmentsOn(b *testing.B) {
	benchJobThroughput(b, Config{Workers: 2}) // segments + saturation on by default
}

// BenchmarkSubmitReject measures the fast-fail path for invalid requests:
// the cost of a 400 before any queue or solver work.
func BenchmarkSubmitReject(b *testing.B) {
	s := benchService(b)
	req := Request{Type: JobType("bogus")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Submit(req); err == nil {
			b.Fatal("want error")
		}
	}
}
