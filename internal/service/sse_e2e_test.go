package service

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rumornet/internal/obs"
	"rumornet/internal/obs/journal"
)

// sseEvent is one parsed frame of a Server-Sent-Events stream. Heartbeat
// comments surface with event == "comment".
type sseEvent struct {
	id    string
	event string
	data  string
}

// entry decodes the frame's data as a journal entry.
func (ev sseEvent) entry(t *testing.T) journal.Entry {
	t.Helper()
	var e journal.Entry
	if err := json.Unmarshal([]byte(ev.data), &e); err != nil {
		t.Fatalf("undecodable SSE data %q: %v", ev.data, err)
	}
	return e
}

// openSSE starts a streaming GET against the events endpoint and parses
// frames into a channel, closed when the server ends the stream or cancel
// is called.
func (e *testServer) openSSE(path string) (<-chan sseEvent, context.CancelFunc) {
	e.t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, e.ts.URL+path, nil)
	if err != nil {
		cancel()
		e.t.Fatal(err)
	}
	resp, err := e.ts.Client().Do(req)
	if err != nil {
		cancel()
		e.t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		cancel()
		e.t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		e.t.Errorf("content type %q, want text/event-stream", ct)
	}
	ch := make(chan sseEvent, 1024)
	go func() {
		defer close(ch)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		var ev sseEvent
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == "":
				if ev != (sseEvent{}) {
					ch <- ev
					ev = sseEvent{}
				}
			case strings.HasPrefix(line, ": "):
				ch <- sseEvent{event: "comment", data: strings.TrimPrefix(line, ": ")}
			case strings.HasPrefix(line, "id: "):
				ev.id = strings.TrimPrefix(line, "id: ")
			case strings.HasPrefix(line, "event: "):
				ev.event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				ev.data = strings.TrimPrefix(line, "data: ")
			}
		}
	}()
	return ch, cancel
}

// nextSSE receives the next frame matching pred, failing after timeout.
func nextSSE(t *testing.T, ch <-chan sseEvent, timeout time.Duration, pred func(sseEvent) bool) sseEvent {
	t.Helper()
	deadline := time.After(timeout)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				t.Fatal("SSE stream closed before the expected frame")
			}
			if pred(ev) {
				return ev
			}
		case <-deadline:
			t.Fatal("timed out waiting for an SSE frame")
		}
	}
}

// TestE2ETraceSSEAndInvariantInjection is the PR's acceptance path: a
// client submits a parked FBSM job with a W3C traceparent; the job adopts
// the client's trace id (visible on the snapshot, the response header and
// every journal entry); GET /v1/jobs/{id}/events replays the lifecycle
// history and then streams live sweep checkpoints; an injected
// mass-conservation violation shows up on the stream and in
// rumor_invariant_violations_total; cancellation delivers the terminal
// entry and ends the stream.
func TestE2ETraceSSEAndInvariantInjection(t *testing.T) {
	// A parked forward sweep emits thousands of checkpoints; a deep ring
	// keeps the early lifecycle entries replayable for the whole test.
	e := newE2E(t, Config{Workers: 1, JournalEntries: 1 << 16})

	const clientTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	req, err := http.NewRequest(http.MethodPost, e.ts.URL+"/v1/jobs",
		strings.NewReader(`{"type":"fbsm","scenario":"tiny","params":{"lambda0":0.02,"grid":400000},"timeout_sec":120}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", "00-"+clientTrace+"-00f067aa0ba902b7-01")
	resp, err := e.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if job.TraceID != clientTrace {
		t.Fatalf("job trace id %q, want the client's %q", job.TraceID, clientTrace)
	}
	if tp := resp.Header.Get("traceparent"); !strings.Contains(tp, clientTrace) {
		t.Errorf("response traceparent %q does not carry the client trace", tp)
	}

	// Wait until the worker parks inside the first forward sweep.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var cur Job
		e.do(http.MethodGet, "/v1/jobs/"+job.ID, "", http.StatusOK, &cur)
		if cur.Status == StatusRunning {
			break
		}
		if cur.Status.Terminal() {
			t.Fatalf("job settled prematurely: %+v", cur)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}

	ch, cancel := e.openSSE("/v1/jobs/" + job.ID + "/events")
	defer cancel()

	// Replay: the queued and started lifecycle entries, in order, all on
	// the client's trace.
	first := nextSSE(t, ch, 10*time.Second, func(ev sseEvent) bool { return ev.event != "comment" })
	if en := first.entry(t); en.Kind != journal.KindLifecycle || en.Msg != "queued" {
		t.Fatalf("first replayed entry %+v, want the queued lifecycle record", en)
	} else if en.TraceID != clientTrace {
		t.Fatalf("journal entry trace id %q, want %q", en.TraceID, clientTrace)
	}
	started := nextSSE(t, ch, 10*time.Second, func(ev sseEvent) bool { return ev.event == string(journal.KindLifecycle) })
	if en := started.entry(t); en.Msg != "started" {
		t.Fatalf("second lifecycle entry %+v, want started", en)
	}

	// Live streaming: forward-sweep checkpoints keep arriving while the
	// job runs.
	prog := nextSSE(t, ch, 30*time.Second, func(ev sseEvent) bool { return ev.event == string(journal.KindProgress) })
	if en := prog.entry(t); !strings.HasPrefix(en.Stage, obs.StageFBSM) {
		t.Fatalf("live progress stage %q, want an fbsm stage", en.Stage)
	} else if en.TraceID != clientTrace {
		t.Fatalf("progress entry trace id %q, want %q", en.TraceID, clientTrace)
	}

	// Inject a mass-conservation violation through the job's real progress
	// sink — the same pipeline a leaking integration would take.
	e.svc.mu.Lock()
	sink := e.svc.jobs[job.ID].sink
	e.svc.mu.Unlock()
	if sink == nil {
		t.Fatal("running job has no progress sink")
	}
	sink(obs.Event{Stage: obs.StageODE, Step: 1, T: 1, Value: 0.5, MassErr: 1})

	viol := nextSSE(t, ch, 10*time.Second, func(ev sseEvent) bool { return ev.event == string(journal.KindInvariant) })
	en := viol.entry(t)
	if en.Check != "mass_conservation" {
		t.Fatalf("violation check %q, want mass_conservation", en.Check)
	}
	if en.TraceID != clientTrace || en.Msg == "" {
		t.Errorf("violation entry lacks trace or message: %+v", en)
	}
	metrics, _ := e.getRaw("/metrics")
	if !strings.Contains(metrics, `rumor_invariant_violations_total{check="mass_conservation"} 1`) {
		t.Error("violation counter not incremented")
	}
	if !strings.Contains(metrics, "rumor_sse_clients 1") {
		t.Error("open stream not reflected in rumor_sse_clients")
	}

	// Cancellation delivers the terminal entry and the server closes the
	// stream.
	e.do(http.MethodDelete, "/v1/jobs/"+job.ID, "", http.StatusOK, nil)
	e.wait(job.ID)
	fin := nextSSE(t, ch, 10*time.Second, func(ev sseEvent) bool {
		return ev.event != "comment" && ev.event != string(journal.KindProgress)
	})
	if en := fin.entry(t); !en.Final || !strings.Contains(en.Msg, "cancelled") {
		t.Fatalf("terminal entry %+v, want a final cancelled record", en)
	}
	select {
	case _, open := <-ch:
		for open {
			_, open = <-ch
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stream not closed after the terminal entry")
	}
}

// TestE2ESSEHeartbeat opens a stream on a queued job — nothing flows, so
// only heartbeats keep the connection alive — then cancels the job and
// expects the terminal entry to end the stream.
func TestE2ESSEHeartbeat(t *testing.T) {
	e := newE2E(t, Config{Workers: 1, SSEHeartbeat: 30 * time.Millisecond})
	park := e.post("/v1/jobs",
		`{"type":"fbsm","scenario":"tiny","params":{"lambda0":0.02,"grid":400000},"timeout_sec":120}`,
		http.StatusAccepted)
	queued := e.post("/v1/jobs", `{"type":"threshold","scenario":"tiny"}`, http.StatusAccepted)

	ch, cancel := e.openSSE("/v1/jobs/" + queued.ID + "/events")
	defer cancel()
	nextSSE(t, ch, 10*time.Second, func(ev sseEvent) bool {
		return ev.event == "comment" && ev.data == "heartbeat"
	})

	e.do(http.MethodDelete, "/v1/jobs/"+queued.ID, "", http.StatusOK, nil)
	fin := nextSSE(t, ch, 10*time.Second, func(ev sseEvent) bool {
		return ev.event == string(journal.KindLifecycle) && ev.data != "" && strings.Contains(ev.data, "finished")
	})
	if en := fin.entry(t); !en.Final {
		t.Fatalf("cancel entry not final: %+v", en)
	}

	e.do(http.MethodDelete, "/v1/jobs/"+park.ID, "", http.StatusOK, nil)
	e.wait(park.ID)
}

// TestE2ESSEReplayOnly: ?follow=0 returns the full history of a finished
// job and closes immediately; unknown jobs 404.
func TestE2ESSEReplayOnly(t *testing.T) {
	e := newE2E(t, Config{Workers: 1})
	job := e.submitAndWait(`{"type":"threshold","scenario":"tiny"}`)
	mustSucceed(t, job)

	ch, cancel := e.openSSE("/v1/jobs/" + job.ID + "/events?follow=0")
	defer cancel()
	var msgs []string
	for ev := range ch {
		msgs = append(msgs, ev.entry(t).Msg)
	}
	if len(msgs) != 3 || msgs[0] != "queued" || msgs[1] != "started" || !strings.Contains(msgs[2], "succeeded") {
		t.Fatalf("replayed lifecycle = %v", msgs)
	}

	var errResp struct {
		Error string `json:"error"`
	}
	e.do(http.MethodGet, "/v1/jobs/j-424242/events", "", http.StatusNotFound, &errResp)
	if errResp.Error == "" {
		t.Error("404 error envelope missing")
	}

	// Cache hits replay instantly too: submitted + final, no execution.
	hit := e.post("/v1/jobs", `{"type":"threshold","scenario":"tiny"}`, http.StatusOK)
	if !hit.CacheHit {
		t.Fatalf("expected a cache hit: %+v", hit)
	}
	hch, hcancel := e.openSSE("/v1/jobs/" + hit.ID + "/events")
	defer hcancel()
	var hmsgs []string
	for ev := range hch {
		hmsgs = append(hmsgs, ev.entry(t).Msg)
	}
	if len(hmsgs) != 2 || hmsgs[0] != "submitted" || !strings.Contains(hmsgs[1], "cache hit") {
		t.Fatalf("cache-hit replay = %v", hmsgs)
	}
}

// TestE2ECacheEvictionTrimsJournal is the retention hardening: evicting a
// cached result also releases the journal entries of every job that
// produced or was served from it.
func TestE2ECacheEvictionTrimsJournal(t *testing.T) {
	e := newE2E(t, Config{Workers: 1, CacheEntries: 1})
	a := e.submitAndWait(`{"type":"threshold","scenario":"tiny","params":{"seed":1}}`)
	mustSucceed(t, a)
	if n := e.svc.journal.Len(a.ID); n == 0 {
		t.Fatal("job A has no journal entries before eviction")
	}

	b := e.submitAndWait(`{"type":"threshold","scenario":"tiny","params":{"seed":2}}`)
	mustSucceed(t, b)
	if n := e.svc.journal.Len(a.ID); n != 0 {
		t.Fatalf("job A retains %d journal entries after its cache entry was evicted", n)
	}
	if n := e.svc.journal.Len(b.ID); n == 0 {
		t.Fatal("job B journal trimmed although its result is resident")
	}

	// The events endpoint now replays nothing for A but still 200s: the
	// job record itself is retained for polling.
	ch, cancel := e.openSSE("/v1/jobs/" + a.ID + "/events?follow=0")
	defer cancel()
	if ev, open := <-ch; open {
		t.Fatalf("trimmed job replayed %+v", ev)
	}
}

// TestE2EDebugEventsDump exercises the /debug/events payload: journal
// entries grouped by job plus finished trace spans with parent/child
// links.
func TestE2EDebugEventsDump(t *testing.T) {
	e := newE2E(t, Config{Workers: 1})
	job := e.submitAndWait(`{"type":"ode","scenario":"tiny","params":{"lambda0":0.02,"tf":40,"points":50}}`)
	mustSucceed(t, job)

	srv := httptest.NewServer(e.svc.EventsDumpHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var dump struct {
		Journal struct {
			Jobs     map[string][]journal.Entry `json:"jobs"`
			JobCount int                        `json:"job_count"`
		} `json:"journal"`
		Spans []struct {
			Name     string `json:"name"`
			TraceID  string `json:"trace_id"`
			ParentID string `json:"parent_span_id"`
		} `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	entries := dump.Journal.Jobs[job.ID]
	if len(entries) < 3 {
		t.Fatalf("dump has %d entries for %s, want the full lifecycle", len(entries), job.ID)
	}
	var jobSpan, stageSpan bool
	for _, sp := range dump.Spans {
		switch sp.Name {
		case "job.ode":
			jobSpan = sp.TraceID == job.TraceID
		case "stage." + obs.StageODE:
			stageSpan = sp.TraceID == job.TraceID && sp.ParentID != ""
		}
	}
	if !jobSpan || !stageSpan {
		t.Errorf("span dump missing job/stage spans on trace %s: job=%v stage=%v",
			job.TraceID, jobSpan, stageSpan)
	}
}
