// Package service implements rumord's simulation-as-a-service layer: a
// scenario registry, a bounded asynchronous job queue executing on a fixed
// worker pool, a content-addressed LRU result cache, per-job timeouts with
// context cancellation threaded into the solvers (internal/core,
// internal/control, internal/abm), and operational introspection
// (health/readiness/stats). See DESIGN.md §7.
//
// The package is HTTP-agnostic at its core — Submit/Job/Cancel/Drain are
// plain methods — with the JSON API bolted on in handlers.go, so the same
// engine can back other transports later.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rumornet/internal/cluster"
	"rumornet/internal/degreedist"
	"rumornet/internal/digg"
	"rumornet/internal/obs"
	"rumornet/internal/obs/invariant"
	"rumornet/internal/obs/journal"
	"rumornet/internal/obs/trace"
	"rumornet/internal/par"
	"rumornet/internal/store"
)

// Sentinel errors mapped to HTTP statuses by handlers.go.
var (
	// ErrBadRequest marks malformed or out-of-range client input (400).
	ErrBadRequest = errors.New("bad request")
	// ErrNotFound marks an unknown job or scenario id (404).
	ErrNotFound = errors.New("not found")
	// ErrQueueFull is returned when the bounded queue rejects a
	// submission (503): back off and retry.
	ErrQueueFull = errors.New("job queue full")
	// ErrSaturated is returned for batch submissions while the queue-wait
	// saturation detector reports saturated (503): under overload the
	// service sheds throughput work first so interactive latency recovers.
	ErrSaturated = errors.New("saturated: batch admission suspended")
	// ErrDraining is returned for submissions after drain began (503).
	ErrDraining = errors.New("service draining")
	// errDuplicate marks a scenario-name collision (409).
	errDuplicate = errors.New("duplicate")
)

func defaultWorkers() int { return par.Default(0) }

// jobRecord is the service-internal state of a job; every field is guarded
// by Service.mu except the immutable req/sc/key/timeout set at submission.
type jobRecord struct {
	job     Job
	req     Request
	sc      *Scenario
	key     string
	seq     uint64
	timeout time.Duration

	cancel        context.CancelFunc // non-nil while running locally; nil for leased jobs
	userCancelled bool

	// attempts counts cluster lease grants (0 for standalone execution);
	// the reaper terminally fails the job once it reaches
	// Cluster.MaxAttempts. Recovery restores it from the WAL.
	attempts int

	// prog is the latest solver checkpoint, written by the executing
	// worker's progress sink and read by snapshots without taking
	// Service.mu: stored values are immutable once published.
	prog atomic.Pointer[JobProgress]

	// span is the job's trace span, opened at submission (as a child of
	// the submitting HTTP request when one carried a traceparent) and
	// ended when the job reaches a terminal status.
	span *trace.Span
	// monitor evaluates the numerical invariants against this job's
	// progress stream; violations land in the journal, the metrics and
	// the log exactly once per check.
	monitor *invariant.Monitor
	// sink is the progress sink runJob wired for this execution, kept so
	// tests can inject synthetic events through the full pipeline.
	sink obs.Progress

	// spanMu guards the per-stage child spans; progress events arrive
	// from concurrent ABM trial goroutines.
	spanMu     sync.Mutex
	stageSpans map[string]*trace.Span
}

// Service is the resident simulation engine behind cmd/rumord.
type Service struct {
	cfg       Config
	scenarios *registry
	cache     *resultCache
	met       *metrics
	tracer    *trace.Tracer
	journal   *journal.Journal
	// store is the durable WAL + result store (nil without Config.StoreDir).
	// Set once in New before the workers start, never mutated after.
	store *store.Store
	// reader is the read-only persistence seam the serving paths use
	// (cache-miss disk reads, surface artifacts): Config.StoreReader when
	// injected, else the store itself, else nil. Set once in New.
	reader store.Reader
	// surf is the response-surface registry (surface.go); always non-nil.
	surf *surfaceManager
	// surfWG tracks surface-construction goroutines; Close waits for them
	// after the workers exit so no build touches a closed store.
	surfWG sync.WaitGroup
	// sat is the queue-wait saturation detector (latency.go); nil when
	// Config.SaturationBudget disabled it. Set once in New.
	sat *satWindow
	// table is the cluster lease table + worker registry (nil unless
	// Config.Cluster.Enabled). Set once in New, never mutated after. Lock
	// order: Service.mu before table's internal mutex, and the table never
	// calls back into the service.
	table *cluster.Table

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup
	// reaperWG tracks the lease reaper separately from the worker pool:
	// Drain waits on wg only (the reaper must keep running while remote
	// workers drain their leases); Close waits on both.
	reaperWG sync.WaitGroup

	mu      sync.Mutex
	jobs    map[string]*jobRecord
	order   []string            // submission order, for bounded retention
	keyJobs map[string][]string // cache key -> jobs whose journal it retains
	seq     uint64
	// queues is one bounded channel per admission class, indexed by
	// classIndex (0 = interactive, 1 = batch). Workers and cluster leases
	// drain interactive first — a queued batch sweep never delays a queued
	// interactive job by more than the job already executing.
	queues   [2]chan *jobRecord
	draining bool

	reqSeq atomic.Uint64 // request-id generator for the HTTP middleware

	// telMu guards the per-worker registry snapshots relayed on heartbeats
	// and result uploads; /metrics re-exports them as rumor_worker_* series
	// and rumor_fleet_* aggregates. Separate from mu: a scrape must not
	// contend with the job table.
	telMu       sync.Mutex
	workerSnaps map[string]obs.Snapshot
}

// New builds a Service, registers the built-in Digg2009 scenario, and
// starts the worker pool. Call Drain (graceful) or Close (immediate) to
// shut it down.
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &Service{
		cfg:       cfg,
		scenarios: newRegistry(),
		cache:     newResultCache(cfg.CacheEntries),
		met:       newMetrics(cfg.DisableSegmentMetrics),
		tracer:    trace.New(cfg.TraceSpans),
		journal:   journal.New(cfg.JournalEntries, cfg.JournalSink),
		jobs:      make(map[string]*jobRecord),
		keyJobs:   make(map[string][]string),
		queues: [2]chan *jobRecord{
			make(chan *jobRecord, cfg.QueueDepth),
			make(chan *jobRecord, cfg.QueueDepth),
		},
		surf: newSurfaceManager(),
	}
	if cfg.Cluster.Enabled {
		s.table = cluster.New(cfg.Cluster.LeaseTTL, cfg.Cluster.WorkerLiveness, nil)
	}
	if cfg.SaturationBudget > 0 {
		s.sat = newSatWindow(cfg.SaturationBudget, cfg.SaturationWindow)
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())

	// The store opens before registerDerived (its gauges close over s.store)
	// and before the workers start (recovery re-enqueues ahead of any
	// live submission).
	if cfg.StoreDir != "" {
		opts := cfg.StoreOptions
		if opts.Logger == nil {
			opts.Logger = cfg.Logger
		}
		opts.Hooks = store.Hooks{
			OnAppend: func(d time.Duration) { s.met.walAppend.Observe(d.Seconds()) },
			OnFsync:  func(d time.Duration) { s.met.walFsync.Observe(d.Seconds()) },
		}
		st, err := store.Open(cfg.StoreDir, opts)
		if err != nil {
			return nil, fmt.Errorf("service: open store: %w", err)
		}
		s.store = st
	}
	// The serving paths read through the seam: an injected Reader wins (a
	// shared or remote tier, or a test double), else the local store backs
	// it, else reads are simply skipped.
	s.reader = cfg.StoreReader
	if s.reader == nil && s.store != nil {
		s.reader = s.store
	}
	fail := func(err error) (*Service, error) {
		if s.store != nil {
			s.store.Close()
		}
		return nil, err
	}
	s.met.registerDerived(s)

	// The built-in scenario is the expensive one (a 71k-user synthetic
	// network); building it once here is exactly the amortization the
	// one-shot CLIs cannot offer.
	dist, err := digg.Dist(rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return fail(fmt.Errorf("service: built-in scenario: %w", err))
	}
	if _, err := s.scenarios.register(BuiltinScenario, "builtin", dist); err != nil {
		return fail(err)
	}
	if s.store != nil {
		s.recoverFromStore()
	}
	if s.reader != nil {
		s.reloadSurfaces()
	}

	if s.table != nil {
		// Coordinator mode: no local workers, remote nodes lease the queue;
		// the reaper recycles leases their owners stopped renewing.
		s.reaperWG.Add(1)
		go s.reaper(cfg.Cluster.ReapInterval)
	} else {
		for i := 0; i < cfg.Workers; i++ {
			s.wg.Add(1)
			go s.worker()
		}
	}
	cfg.Logger.Info("service started",
		"workers", cfg.Workers, "cluster", cfg.Cluster.Enabled,
		"inner_workers", cfg.InnerWorkers,
		"queue_depth", cfg.QueueDepth, "cache_entries", cfg.CacheEntries,
		"store_dir", cfg.StoreDir)
	return s, nil
}

// snapshot copies the API view of a record, attaching the latest progress
// checkpoint. Callers hold s.mu for the job copy; the progress pointer is
// read atomically and its target is immutable.
func (r *jobRecord) snapshot() Job {
	job := r.job
	if p := r.prog.Load(); p != nil {
		job.Progress = p
	}
	return job
}

// RegisterScenario adds an uploaded degree table under the given name and,
// when a durable store is configured, persists the table in the WAL — so a
// coordinator restart re-registers it and recovered jobs that reference it
// no longer fail with "unknown scenario".
func (s *Service) RegisterScenario(name string, degrees []int, probs []float64) (*Scenario, error) {
	d, err := degreedist.New(degrees, probs)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	sc, err := s.scenarios.register(name, "uploaded", d)
	if err != nil {
		return nil, err
	}
	s.walScenario(name, "uploaded", degrees, probs)
	return sc, nil
}

// Scenario returns a registered scenario by name.
func (s *Service) Scenario(name string) (*Scenario, error) {
	sc, ok := s.scenarios.get(name)
	if !ok {
		return nil, fmt.Errorf("%w: scenario %q", ErrNotFound, name)
	}
	return sc, nil
}

// Scenarios lists registered scenarios sorted by name.
func (s *Service) Scenarios() []*Scenario { return s.scenarios.list() }

// Submit validates and enqueues a job, returning its initial snapshot. A
// result-cache hit completes the job synchronously (Status ==
// StatusSucceeded, CacheHit == true) without consuming a queue slot.
func (s *Service) Submit(req Request) (Job, error) {
	return s.SubmitCtx(context.Background(), req)
}

// SubmitCtx is Submit with trace propagation: when ctx carries a span
// context (the HTTP middleware puts the request span there, itself a child
// of the client's traceparent when one was sent), the job's span — and so
// every journal entry and log line the job emits — joins that trace.
func (s *Service) SubmitCtx(ctx context.Context, req Request) (Job, error) {
	req, sc, key, timeout, err := s.resolveRequest(req)
	if err != nil {
		return Job{}, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.met.reject()
		s.cfg.Logger.Warn("job rejected", "reason", "draining", "type", req.Type)
		return Job{}, ErrDraining
	}
	s.seq++
	now := time.Now()
	span := s.tracer.StartSpan("job."+string(req.Type),
		trace.SpanContextFromContext(ctx),
		obs.L("scenario", req.Scenario))
	r := &jobRecord{
		job: Job{
			ID:          fmt.Sprintf("j-%06d", s.seq),
			Type:        req.Type,
			Scenario:    req.Scenario,
			Status:      StatusQueued,
			Class:       req.Class,
			TraceID:     span.Context().TraceID.String(),
			SubmittedAt: now,
		},
		req:     req,
		sc:      sc,
		key:     key,
		seq:     s.seq,
		timeout: timeout,
		span:    span,
	}
	span.SetAttr("job_id", r.job.ID)

	if raw, hit := s.cache.get(key); hit {
		return s.finishCacheHitLocked(r, raw, "memory"), nil
	}
	// Memory miss: a result persisted by an earlier process life (or
	// evicted by the LRU bound since) may still be on disk. The read goes
	// through the Reader seam and also repopulates the memory cache, so one
	// submission pays the I/O.
	if s.reader != nil {
		if blob, ok := s.reader.GetResult(key); ok {
			raw := json.RawMessage(blob)
			if evicted := s.cache.put(key, raw); len(evicted) > 0 {
				s.met.cacheEvictions.Add(int64(len(evicted)))
				s.trimEvictedLocked(evicted)
			}
			return s.finishCacheHitLocked(r, raw, "disk"), nil
		}
	}

	// Saturation sheds batch work first: an overloaded queue recovers by
	// refusing sweeps, not interactive submissions. Checked after the cache
	// — a hit costs no queue slot, so shedding it would only waste work.
	if req.Class == ClassBatch && s.sat != nil && s.sat.Saturated() {
		span.End()
		s.met.reject()
		s.met.shed.Inc()
		s.cfg.Logger.Warn("job rejected", "reason", "saturated", "class", req.Class, "type", req.Type)
		return Job{}, ErrSaturated
	}

	select {
	case s.queues[classIndex(req.Class)] <- r:
		s.met.submit()
		s.met.cacheMiss()
		s.insertLocked(r)
		s.walSubmitted(r)
		s.journal.Append(journal.Entry{
			JobID: r.job.ID, TraceID: r.job.TraceID,
			Kind: journal.KindLifecycle, Msg: "queued",
		})
		s.cfg.Logger.Info("job queued",
			"job_id", r.job.ID, "type", r.job.Type, "scenario", r.job.Scenario,
			"class", r.req.Class, "timeout", timeout.String(), "trace_id", r.job.TraceID)
		return r.job, nil
	default:
		span.End()
		s.met.reject()
		s.cfg.Logger.Warn("job rejected", "reason", "queue full", "type", req.Type)
		return Job{}, ErrQueueFull
	}
}

// resolveRequest validates a request, resolves its scenario, canonicalizes
// the parameters, and derives the timeout and cache key. Shared by
// SubmitCtx and startup recovery so a recovered request passes exactly the
// submission-time checks.
func (s *Service) resolveRequest(req Request) (Request, *Scenario, string, time.Duration, error) {
	if !validJobType(req.Type) {
		return req, nil, "", 0, fmt.Errorf("%w: unknown job type %q (want ode, threshold, abm or fbsm)", ErrBadRequest, req.Type)
	}
	if req.Scenario == "" {
		req.Scenario = BuiltinScenario
	}
	sc, ok := s.scenarios.get(req.Scenario)
	if !ok {
		return req, nil, "", 0, fmt.Errorf("%w: unknown scenario %q", ErrBadRequest, req.Scenario)
	}
	if !validClass(req.Class) {
		return req, nil, "", 0, fmt.Errorf("%w: unknown class %q (want interactive or batch)", ErrBadRequest, req.Class)
	}
	req.Class = req.Class.withDefault()
	req.Params = req.Params.withDefaults(req.Type)
	if err := req.Params.validate(req.Type); err != nil {
		return req, nil, "", 0, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if req.TimeoutSec < 0 {
		return req, nil, "", 0, fmt.Errorf("%w: timeout_sec = %g must be non-negative", ErrBadRequest, req.TimeoutSec)
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutSec > 0 {
		timeout = time.Duration(req.TimeoutSec * float64(time.Second))
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	key := cacheKey(req.Type, sc.Fingerprint, req.Params)
	return req, sc, key, timeout, nil
}

// finishCacheHitLocked completes a submission synchronously from a cached
// result (source: "memory" or "disk") — no queue slot, no execution.
// Callers hold s.mu and have r.job initialized to StatusQueued.
func (s *Service) finishCacheHitLocked(r *jobRecord, raw json.RawMessage, source string) Job {
	s.met.submit()
	s.met.cacheHit()
	if source == "disk" {
		s.met.diskHits.Inc()
	}
	s.met.outcome(StatusSucceeded)
	fin := time.Now()
	r.job.Status = StatusSucceeded
	r.job.CacheHit = true
	r.job.Result = raw
	r.job.FinishedAt = &fin
	s.insertLocked(r)
	// The hit job's journal lives exactly as long as the cache entry
	// backing it; record the dependency so eviction trims both.
	s.keyJobs[r.key] = append(s.keyJobs[r.key], r.job.ID)
	s.journal.Append(journal.Entry{
		JobID: r.job.ID, TraceID: r.job.TraceID,
		Kind: journal.KindLifecycle, Msg: "submitted",
	})
	s.journal.Append(journal.Entry{
		JobID: r.job.ID, TraceID: r.job.TraceID,
		Kind: journal.KindLifecycle, Msg: "finished: succeeded (cache hit)",
		Final: true,
	})
	r.span.SetAttr("cache_hit", source)
	r.span.End()
	s.cfg.Logger.Info("job served from cache",
		"job_id", r.job.ID, "type", r.job.Type, "scenario", r.job.Scenario,
		"source", source, "trace_id", r.job.TraceID)
	return r.job
}

// insertLocked records the job and evicts the oldest finished jobs beyond
// the retention bound, releasing the evicted jobs' journal entries with
// them. Callers hold s.mu.
func (s *Service) insertLocked(r *jobRecord) {
	s.jobs[r.job.ID] = r
	s.order = append(s.order, r.job.ID)
	for len(s.jobs) > s.cfg.MaxJobs {
		evicted := false
		for i, id := range s.order {
			if rec, ok := s.jobs[id]; ok && rec.job.Status.Terminal() {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				s.journal.Remove(id)
				s.dropKeyJobLocked(rec.key, id)
				evicted = true
				break
			}
		}
		if !evicted {
			break // everything live; let the map exceed the soft bound
		}
	}
}

// dropKeyJobLocked removes one job from the cache-key back-reference list.
// Callers hold s.mu.
func (s *Service) dropKeyJobLocked(key, id string) {
	ids := s.keyJobs[key]
	for i, jid := range ids {
		if jid == id {
			ids = append(ids[:i], ids[i+1:]...)
			break
		}
	}
	if len(ids) == 0 {
		delete(s.keyJobs, key)
	} else {
		s.keyJobs[key] = ids
	}
}

// trimEvicted releases the journal entries of every job whose cached
// result was just evicted — the hardening contract: once a result is no
// longer resident, neither is its event history. Callers hold s.mu.
func (s *Service) trimEvictedLocked(keys []string) {
	for _, k := range keys {
		for _, id := range s.keyJobs[k] {
			s.journal.Remove(id)
		}
		delete(s.keyJobs, k)
	}
}

// Job returns a snapshot of the job with the given id.
func (s *Service) Job(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return r.snapshot(), true
}

// Jobs returns snapshots of all retained jobs in submission order.
func (s *Service) Jobs() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.jobs))
	for _, id := range s.order {
		if r, ok := s.jobs[id]; ok {
			out = append(out, r.snapshot())
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// JobIndex returns up to limit retained jobs, newest submission first,
// optionally filtered by status (""), plus the total number of retained
// jobs matching the filter — the bounded GET /v1/jobs view: a daemon that
// has retained thousands of jobs answers in one small page.
func (s *Service) JobIndex(limit int, status Status) ([]Job, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := limit
	if n > len(s.order) {
		n = len(s.order)
	}
	out := make([]Job, 0, n)
	total := 0
	for i := len(s.order) - 1; i >= 0; i-- {
		r, ok := s.jobs[s.order[i]]
		if !ok || (status != "" && r.job.Status != status) {
			continue
		}
		total++
		if len(out) < limit {
			out = append(out, r.snapshot())
		}
	}
	return out, total
}

// Cancel stops a job: queued jobs finish immediately as cancelled, running
// jobs have their context cancelled and settle asynchronously. Cancelling
// a finished job is a no-op returning its final snapshot.
func (s *Service) Cancel(id string) (Job, error) {
	s.mu.Lock()
	r, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return Job{}, fmt.Errorf("%w: job %q", ErrNotFound, id)
	}
	switch r.job.Status {
	case StatusQueued:
		fin := time.Now()
		// Terminal record first: once a poller can observe the cancelled
		// status the WAL will not re-enqueue the job after a restart.
		s.walFinished(r.job.ID, StatusCancelled)
		r.job.Status = StatusCancelled
		r.job.Error = "cancelled before start"
		r.job.FinishedAt = &fin
		job := r.job
		s.mu.Unlock()
		s.met.outcome(StatusCancelled)
		s.journal.Append(journal.Entry{
			JobID: id, TraceID: job.TraceID,
			Kind: journal.KindLifecycle, Msg: "finished: cancelled before start",
			Final: true,
		})
		r.span.SetAttr("status", string(StatusCancelled))
		r.span.End()
		s.cfg.Logger.Info("job cancelled while queued", "job_id", id)
		return job, nil
	case StatusRunning:
		r.userCancelled = true
		cancel := r.cancel
		job := r.snapshot()
		s.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		if s.table != nil {
			// Leased jobs have no local cancel func; the flag rides back on
			// the next heartbeat ack and the worker stops the job there.
			s.table.RequestCancel(id)
		}
		s.cfg.Logger.Info("job cancellation requested", "job_id", id)
		return job, nil
	default:
		job := r.snapshot()
		s.mu.Unlock()
		return job, nil
	}
}

// Stats returns a consistent snapshot of the operational counters.
func (s *Service) Stats() Stats {
	st := Stats{
		QueueCapacity: s.cfg.QueueDepth,
		Workers:       s.cfg.Workers,
	}
	s.mu.Lock()
	st.QueueInteractive = len(s.queues[0])
	st.QueueBatch = len(s.queues[1])
	st.QueueDepth = st.QueueInteractive + st.QueueBatch
	st.Draining = s.draining
	s.mu.Unlock()
	st.Cache.Entries = s.cache.len()
	st.Cache.Capacity = s.cfg.CacheEntries
	s.met.snapshot(&st)
	if s.store != nil {
		st.Store = &StoreStats{
			Stats:            s.store.Snapshot(),
			RecoveredJobs:    s.met.recoveredJobs.Value(),
			RecoveredResults: s.met.recoveredResults.Value(),
			ResultHits:       s.met.diskHits.Value(),
			WALErrors:        s.met.walErrors.Value(),
			ScenarioReplays:  s.met.scenarioReplays.Value(),
		}
	}
	if s.table != nil {
		st.Cluster = &ClusterStats{
			Workers:          s.table.LiveWorkers(),
			LeasesActive:     s.table.Active(),
			LeaseExpirations: s.met.leaseExpirations.Value(),
			Requeues:         s.met.requeues.Value(),
		}
	}
	st.Surface = s.surf.stats()
	return st
}

// queueLen is the total buffered depth across both admission classes.
func (s *Service) queueLen() int { return len(s.queues[0]) + len(s.queues[1]) }

// Ready reports whether the service accepts new submissions.
func (s *Service) Ready() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.draining
}

// Drain stops accepting submissions, lets queued and running jobs finish,
// and returns once the workers exit (or ctx expires, in which case the
// remaining jobs keep running and Close should follow). On a coordinator
// "running" means leased: drain additionally waits for remote workers to
// drain the buffered queue and upload their in-flight results.
func (s *Service) Drain(ctx context.Context) error {
	s.cfg.Logger.Info("drain started")
	s.stopIntake()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		if s.table != nil {
			// Closing the queue did not stop remote leasing: a buffered
			// receive on a closed channel still yields the remaining jobs,
			// so workers keep claiming until the buffer is dry, and
			// in-flight uploads keep landing. Poll both down to zero.
			for s.queueLen() > 0 || s.table.Active() > 0 {
				select {
				case <-ctx.Done():
					return // leave done open; the outer select reports the interrupt
				case <-time.After(20 * time.Millisecond):
				}
			}
		}
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain interrupted: %w", ctx.Err())
	}
}

// Close shuts down immediately: intake stops, running jobs are cancelled,
// and Close blocks until the workers exit. Shutdown-cancelled jobs get no
// terminal WAL record on purpose: a restart over the same data directory
// re-enqueues them (see recoverFromStore). The store closes last so every
// worker's appends land.
func (s *Service) Close() {
	s.stopIntake()
	s.baseCancel()
	s.wg.Wait()
	s.reaperWG.Wait() // the reaper appends to the WAL; stop it before the store closes
	s.surfWG.Wait()   // surface builds persist artifacts; stop them before the store closes
	if s.store != nil {
		if err := s.store.Close(); err != nil {
			s.cfg.Logger.Warn("store close failed", "error", err.Error())
		}
	}
}

func (s *Service) stopIntake() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.draining {
		s.draining = true
		close(s.queues[0]) // workers drain the buffered jobs then exit
		close(s.queues[1])
	}
}

func (s *Service) worker() {
	defer s.wg.Done()
	for {
		r, ok := s.dequeue()
		if !ok {
			return
		}
		s.runJob(r)
	}
}

// dequeue claims the next job for a local worker, interactive first: a
// nonblocking pass over the interactive queue precedes every blocking wait,
// so buffered interactive work always overtakes buffered batch work. It
// returns ok == false once both queues are closed and dry.
func (s *Service) dequeue() (*jobRecord, bool) {
	inter, batch := s.queues[0], s.queues[1]
	for inter != nil || batch != nil {
		if inter != nil {
			select {
			case r, ok := <-inter:
				if !ok {
					inter = nil
					continue
				}
				return r, true
			default:
			}
		}
		// Nothing interactive buffered: block on both (a nil channel never
		// fires, which is how a closed-and-dry class drops out).
		select {
		case r, ok := <-inter:
			if !ok {
				inter = nil
				continue
			}
			return r, true
		case r, ok := <-batch:
			if !ok {
				batch = nil
				continue
			}
			return r, true
		}
	}
	return nil, false
}

// tryDequeue claims the next buffered job without blocking, interactive
// first — the cluster lease path (LeaseNext returns "empty" rather than
// parking the worker's poll).
func (s *Service) tryDequeue() *jobRecord {
	for _, q := range s.queues {
		select {
		case r, ok := <-q:
			if ok {
				return r
			}
			// closed and dry: fall through to the other class
		default:
		}
	}
	return nil
}

// runJob executes one dequeued job under its timeout and finalizes its
// record, metrics, journal, trace span and (on success) the result cache.
func (s *Service) runJob(r *jobRecord) {
	// Job-scoped logger, threaded through ctx so solver-adjacent code can
	// correlate its records with this job and its trace.
	lg := s.cfg.Logger.With("job_id", r.job.ID, "type", r.job.Type,
		"trace_id", r.job.TraceID)
	monitor := invariant.New(s.cfg.Invariants, func(v invariant.Violation) {
		s.met.invariantViolation(v.Check)
		s.journal.Append(journal.Entry{
			JobID: r.job.ID, TraceID: r.job.TraceID,
			Kind: journal.KindInvariant, Check: v.Check, Msg: v.Msg,
			Stage: v.Event.Stage, Step: v.Event.Step, T: v.Event.T,
			Value: v.Event.Value,
		})
		lg.Warn("invariant violation", "check", v.Check, "detail", v.Msg,
			"stage", v.Event.Stage, "step", v.Event.Step, "t", v.Event.T)
	})
	sink := s.progressSink(r, monitor, lg)

	s.mu.Lock()
	if r.job.Status != StatusQueued { // cancelled while queued
		s.mu.Unlock()
		return
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, r.timeout)
	ctx = withInnerWorkers(ctx, s.cfg.InnerWorkers)
	r.cancel = cancel
	r.monitor = monitor
	r.sink = sink
	start := time.Now()
	r.job.Status = StatusRunning
	r.job.StartedAt = &start
	s.walStarted(r.job.ID)
	s.mu.Unlock()
	defer cancel()

	queueWait := start.Sub(r.job.SubmittedAt)
	s.met.queueWaitObserve(r.req.Class, queueWait)
	if s.sat != nil {
		s.sat.observe(queueWait, start)
	}
	s.met.running.Inc()
	defer s.met.running.Dec()

	ctx = obs.ContextWithLogger(ctx, lg)
	s.journal.Append(journal.Entry{
		JobID: r.job.ID, TraceID: r.job.TraceID,
		Kind: journal.KindLifecycle, Msg: "started",
	})
	lg.Info("job started", "queue_wait_ms",
		float64(start.Sub(r.job.SubmittedAt))/float64(time.Millisecond))

	payload, err := execute(ctx, r.sc, r.req, sink)
	execDone := time.Now() // everything after is the serialize segment
	var raw json.RawMessage
	if err == nil {
		raw, err = json.Marshal(payload)
		// Theorem 5 consistency of the finished trajectory; any violation
		// lands in the journal before the terminal entry below.
		if res, ok := payload.(*ODEResult); ok && err == nil {
			monitor.CheckOutcome(res.R0, res.FinalI)
		}
	}
	if err == nil {
		// Durability before visibility: the result blob and the terminal
		// record land on disk while the job still reads as running, so a
		// poller that observes "succeeded" and kills the process cannot
		// lose the result. Deliberately outside s.mu — the blob write is
		// hundreds of microseconds of filesystem work and must not
		// serialize the other workers.
		s.storePutResult(r.key, raw)
		s.walFinished(r.job.ID, StatusSucceeded)
	}

	s.mu.Lock()
	fin := time.Now()
	elapsed := fin.Sub(start)
	r.job.FinishedAt = &fin
	r.job.ElapsedMS = float64(elapsed) / float64(time.Millisecond)
	if s.met.segments != nil {
		r.job.Latency = &JobLatency{
			QueueWaitMS: float64(queueWait) / float64(time.Millisecond),
			ExecuteMS:   float64(execDone.Sub(start)) / float64(time.Millisecond),
			SerializeMS: float64(fin.Sub(execDone)) / float64(time.Millisecond),
		}
	}
	shutdownCancel := false
	switch {
	case err == nil:
		r.job.Status = StatusSucceeded
		r.job.Result = raw
		if evicted := s.cache.put(r.key, raw); len(evicted) > 0 {
			s.met.cacheEvictions.Add(int64(len(evicted)))
			s.trimEvictedLocked(evicted)
		}
		s.keyJobs[r.key] = append(s.keyJobs[r.key], r.job.ID)
	case r.userCancelled:
		r.job.Status = StatusCancelled
		r.job.Error = fmt.Sprintf("cancelled by client: %v", err)
	case errors.Is(err, context.DeadlineExceeded):
		r.job.Status = StatusFailed
		r.job.Error = fmt.Sprintf("timed out after %s: %v", r.timeout, err)
	case errors.Is(err, context.Canceled):
		r.job.Status = StatusCancelled
		r.job.Error = fmt.Sprintf("cancelled by shutdown: %v", err)
		// No terminal WAL record: a shutdown-cancelled job is the crash /
		// redeploy case, and the restarted daemon must re-enqueue it.
		shutdownCancel = true
	default:
		r.job.Status = StatusFailed
		r.job.Error = err.Error()
	}
	status := r.job.Status
	jobType := r.job.Type
	errMsg := r.job.Error
	// Success already logged its terminal record (with the blob) above;
	// shutdown cancellation deliberately logs none.
	if !shutdownCancel && status != StatusSucceeded {
		s.walFinished(r.job.ID, status)
	}
	s.mu.Unlock()

	s.met.outcome(status)
	s.met.observe(jobType, elapsed)
	s.met.segmentObserve(queueWait, execDone.Sub(start), fin.Sub(execDone))
	msg := "finished: " + string(status)
	if errMsg != "" {
		msg += ": " + errMsg
	}
	s.journal.Append(journal.Entry{
		JobID: r.job.ID, TraceID: r.job.TraceID,
		Kind: journal.KindLifecycle, Msg: msg, Final: true,
	})
	r.endSpans(status)
	if status == StatusSucceeded {
		lg.Info("job finished", "status", status,
			"elapsed_ms", float64(elapsed)/float64(time.Millisecond))
	} else {
		lg.Warn("job finished", "status", status,
			"elapsed_ms", float64(elapsed)/float64(time.Millisecond), "error", errMsg)
	}
}

// stageSpan opens the per-stage child span the first time a stage reports;
// FBSM's repeated forward/backward sweeps share one span per stage. Safe
// for concurrent progress emitters.
func (r *jobRecord) stageSpan(tr *trace.Tracer, stage string) {
	r.spanMu.Lock()
	defer r.spanMu.Unlock()
	if r.stageSpans == nil {
		r.stageSpans = make(map[string]*trace.Span)
	}
	if _, ok := r.stageSpans[stage]; !ok {
		r.stageSpans[stage] = tr.StartSpan("stage."+stage, r.span.Context())
	}
}

// endSpans closes the stage spans and then the job span.
func (r *jobRecord) endSpans(status Status) {
	r.spanMu.Lock()
	for _, sp := range r.stageSpans {
		sp.End()
	}
	r.stageSpans = nil
	r.spanMu.Unlock()
	r.span.SetAttr("status", string(status))
	r.span.End()
}

// progressSink adapts solver progress events onto the job record (for
// GET /v1/jobs/{id}), the flight-recorder journal (replayed and streamed by
// GET /v1/jobs/{id}/events), the invariant monitor, the per-stage trace
// spans, the metrics registry, and — every ProgressLogEvery-th event — the
// structured log. Solvers may call it from worker goroutines; everything it
// touches is atomic or internally locked.
func (s *Service) progressSink(r *jobRecord, monitor *invariant.Monitor, lg *slog.Logger) obs.Progress {
	var n atomic.Int64
	every := int64(s.cfg.ProgressLogEvery)
	return func(ev obs.Event) {
		jp := &JobProgress{
			Stage:     ev.Stage,
			Step:      ev.Step,
			Total:     ev.Total,
			T:         ev.T,
			Value:     ev.Value,
			Cost:      ev.Cost,
			UpdatedAt: time.Now(),
		}
		r.prog.Store(jp)
		// Standalone mode opens coordinator-local stage spans; in cluster
		// mode the executing worker times its own stage spans and uploads
		// them with the heartbeat/result relay, so opening a second set
		// here would double every stage in the trace.
		if s.table == nil {
			r.stageSpan(s.tracer, ev.Stage)
		}
		// Monitor first: a violation's journal entry then precedes the
		// checkpoint that triggered it in the replay, reading causally.
		monitor.Observe(ev)
		s.journal.Append(journal.Entry{
			JobID: r.job.ID, TraceID: r.job.TraceID,
			Kind: journal.KindProgress, Stage: ev.Stage,
			Step: ev.Step, Total: ev.Total, T: ev.T, Value: ev.Value,
			Cost: ev.Cost,
		})
		if ev.Stage == obs.StageABM && ev.Elapsed > 0 {
			s.met.abmStep.Observe(ev.Elapsed.Seconds())
		}
		if every > 0 && n.Add(1)%every == 0 {
			lg.Debug("job progress", "stage", ev.Stage, "step", ev.Step,
				"total", ev.Total, "t", ev.T, "value", ev.Value, "cost", ev.Cost)
		}
	}
}
