// Package service implements rumord's simulation-as-a-service layer: a
// scenario registry, a bounded asynchronous job queue executing on a fixed
// worker pool, a content-addressed LRU result cache, per-job timeouts with
// context cancellation threaded into the solvers (internal/core,
// internal/control, internal/abm), and operational introspection
// (health/readiness/stats). See DESIGN.md §7.
//
// The package is HTTP-agnostic at its core — Submit/Job/Cancel/Drain are
// plain methods — with the JSON API bolted on in handlers.go, so the same
// engine can back other transports later.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rumornet/internal/degreedist"
	"rumornet/internal/digg"
	"rumornet/internal/obs"
	"rumornet/internal/par"
)

// Sentinel errors mapped to HTTP statuses by handlers.go.
var (
	// ErrBadRequest marks malformed or out-of-range client input (400).
	ErrBadRequest = errors.New("bad request")
	// ErrNotFound marks an unknown job or scenario id (404).
	ErrNotFound = errors.New("not found")
	// ErrQueueFull is returned when the bounded queue rejects a
	// submission (503): back off and retry.
	ErrQueueFull = errors.New("job queue full")
	// ErrDraining is returned for submissions after drain began (503).
	ErrDraining = errors.New("service draining")
	// errDuplicate marks a scenario-name collision (409).
	errDuplicate = errors.New("duplicate")
)

func defaultWorkers() int { return par.Default(0) }

// jobRecord is the service-internal state of a job; every field is guarded
// by Service.mu except the immutable req/sc/key/timeout set at submission.
type jobRecord struct {
	job     Job
	req     Request
	sc      *Scenario
	key     string
	timeout time.Duration

	cancel        context.CancelFunc // non-nil while running
	userCancelled bool

	// prog is the latest solver checkpoint, written by the executing
	// worker's progress sink and read by snapshots without taking
	// Service.mu: stored values are immutable once published.
	prog atomic.Pointer[JobProgress]
}

// Service is the resident simulation engine behind cmd/rumord.
type Service struct {
	cfg       Config
	scenarios *registry
	cache     *resultCache
	met       *metrics

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*jobRecord
	order    []string // submission order, for bounded retention
	seq      uint64
	queue    chan *jobRecord
	draining bool

	reqSeq atomic.Uint64 // request-id generator for the HTTP middleware
}

// New builds a Service, registers the built-in Digg2009 scenario, and
// starts the worker pool. Call Drain (graceful) or Close (immediate) to
// shut it down.
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &Service{
		cfg:       cfg,
		scenarios: newRegistry(),
		cache:     newResultCache(cfg.CacheEntries),
		met:       newMetrics(),
		jobs:      make(map[string]*jobRecord),
		queue:     make(chan *jobRecord, cfg.QueueDepth),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.met.registerDerived(s)

	// The built-in scenario is the expensive one (a 71k-user synthetic
	// network); building it once here is exactly the amortization the
	// one-shot CLIs cannot offer.
	dist, err := digg.Dist(rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, fmt.Errorf("service: built-in scenario: %w", err)
	}
	if _, err := s.scenarios.register(BuiltinScenario, "builtin", dist); err != nil {
		return nil, err
	}

	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	cfg.Logger.Info("service started",
		"workers", cfg.Workers, "inner_workers", cfg.InnerWorkers,
		"queue_depth", cfg.QueueDepth, "cache_entries", cfg.CacheEntries)
	return s, nil
}

// snapshot copies the API view of a record, attaching the latest progress
// checkpoint. Callers hold s.mu for the job copy; the progress pointer is
// read atomically and its target is immutable.
func (r *jobRecord) snapshot() Job {
	job := r.job
	if p := r.prog.Load(); p != nil {
		job.Progress = p
	}
	return job
}

// RegisterScenario adds an uploaded degree table under the given name.
func (s *Service) RegisterScenario(name string, degrees []int, probs []float64) (*Scenario, error) {
	d, err := degreedist.New(degrees, probs)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return s.scenarios.register(name, "uploaded", d)
}

// Scenario returns a registered scenario by name.
func (s *Service) Scenario(name string) (*Scenario, error) {
	sc, ok := s.scenarios.get(name)
	if !ok {
		return nil, fmt.Errorf("%w: scenario %q", ErrNotFound, name)
	}
	return sc, nil
}

// Scenarios lists registered scenarios sorted by name.
func (s *Service) Scenarios() []*Scenario { return s.scenarios.list() }

// Submit validates and enqueues a job, returning its initial snapshot. A
// result-cache hit completes the job synchronously (Status ==
// StatusSucceeded, CacheHit == true) without consuming a queue slot.
func (s *Service) Submit(req Request) (Job, error) {
	if !validJobType(req.Type) {
		return Job{}, fmt.Errorf("%w: unknown job type %q (want ode, threshold, abm or fbsm)", ErrBadRequest, req.Type)
	}
	if req.Scenario == "" {
		req.Scenario = BuiltinScenario
	}
	sc, ok := s.scenarios.get(req.Scenario)
	if !ok {
		return Job{}, fmt.Errorf("%w: unknown scenario %q", ErrBadRequest, req.Scenario)
	}
	req.Params = req.Params.withDefaults(req.Type)
	if err := req.Params.validate(req.Type); err != nil {
		return Job{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if req.TimeoutSec < 0 {
		return Job{}, fmt.Errorf("%w: timeout_sec = %g must be non-negative", ErrBadRequest, req.TimeoutSec)
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutSec > 0 {
		timeout = time.Duration(req.TimeoutSec * float64(time.Second))
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	key := cacheKey(req.Type, sc.Fingerprint, req.Params)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.met.reject()
		s.cfg.Logger.Warn("job rejected", "reason", "draining", "type", req.Type)
		return Job{}, ErrDraining
	}
	s.seq++
	now := time.Now()
	r := &jobRecord{
		job: Job{
			ID:          fmt.Sprintf("j-%06d", s.seq),
			Type:        req.Type,
			Scenario:    req.Scenario,
			Status:      StatusQueued,
			SubmittedAt: now,
		},
		req:     req,
		sc:      sc,
		key:     key,
		timeout: timeout,
	}

	if raw, hit := s.cache.get(key); hit {
		s.met.submit()
		s.met.cacheHit()
		s.met.outcome(StatusSucceeded)
		fin := time.Now()
		r.job.Status = StatusSucceeded
		r.job.CacheHit = true
		r.job.Result = raw
		r.job.FinishedAt = &fin
		s.insertLocked(r)
		s.cfg.Logger.Info("job served from cache",
			"job_id", r.job.ID, "type", r.job.Type, "scenario", r.job.Scenario)
		return r.job, nil
	}

	select {
	case s.queue <- r:
		s.met.submit()
		s.met.cacheMiss()
		s.insertLocked(r)
		s.cfg.Logger.Info("job queued",
			"job_id", r.job.ID, "type", r.job.Type, "scenario", r.job.Scenario,
			"timeout", timeout.String())
		return r.job, nil
	default:
		s.met.reject()
		s.cfg.Logger.Warn("job rejected", "reason", "queue full", "type", req.Type)
		return Job{}, ErrQueueFull
	}
}

// insertLocked records the job and evicts the oldest finished jobs beyond
// the retention bound. Callers hold s.mu.
func (s *Service) insertLocked(r *jobRecord) {
	s.jobs[r.job.ID] = r
	s.order = append(s.order, r.job.ID)
	for len(s.jobs) > s.cfg.MaxJobs {
		evicted := false
		for i, id := range s.order {
			if rec, ok := s.jobs[id]; ok && rec.job.Status.Terminal() {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			break // everything live; let the map exceed the soft bound
		}
	}
}

// Job returns a snapshot of the job with the given id.
func (s *Service) Job(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return r.snapshot(), true
}

// Jobs returns snapshots of all retained jobs in submission order.
func (s *Service) Jobs() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.jobs))
	for _, id := range s.order {
		if r, ok := s.jobs[id]; ok {
			out = append(out, r.snapshot())
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Cancel stops a job: queued jobs finish immediately as cancelled, running
// jobs have their context cancelled and settle asynchronously. Cancelling
// a finished job is a no-op returning its final snapshot.
func (s *Service) Cancel(id string) (Job, error) {
	s.mu.Lock()
	r, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return Job{}, fmt.Errorf("%w: job %q", ErrNotFound, id)
	}
	switch r.job.Status {
	case StatusQueued:
		fin := time.Now()
		r.job.Status = StatusCancelled
		r.job.Error = "cancelled before start"
		r.job.FinishedAt = &fin
		job := r.job
		s.mu.Unlock()
		s.met.outcome(StatusCancelled)
		s.cfg.Logger.Info("job cancelled while queued", "job_id", id)
		return job, nil
	case StatusRunning:
		r.userCancelled = true
		cancel := r.cancel
		job := r.snapshot()
		s.mu.Unlock()
		cancel()
		s.cfg.Logger.Info("job cancellation requested", "job_id", id)
		return job, nil
	default:
		job := r.snapshot()
		s.mu.Unlock()
		return job, nil
	}
}

// Stats returns a consistent snapshot of the operational counters.
func (s *Service) Stats() Stats {
	st := Stats{
		QueueCapacity: s.cfg.QueueDepth,
		Workers:       s.cfg.Workers,
	}
	s.mu.Lock()
	st.QueueDepth = len(s.queue)
	st.Draining = s.draining
	s.mu.Unlock()
	st.Cache.Entries = s.cache.len()
	st.Cache.Capacity = s.cfg.CacheEntries
	s.met.snapshot(&st)
	return st
}

// Ready reports whether the service accepts new submissions.
func (s *Service) Ready() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.draining
}

// Drain stops accepting submissions, lets queued and running jobs finish,
// and returns once the workers exit (or ctx expires, in which case the
// remaining jobs keep running and Close should follow).
func (s *Service) Drain(ctx context.Context) error {
	s.cfg.Logger.Info("drain started")
	s.stopIntake()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain interrupted: %w", ctx.Err())
	}
}

// Close shuts down immediately: intake stops, running jobs are cancelled,
// and Close blocks until the workers exit.
func (s *Service) Close() {
	s.stopIntake()
	s.baseCancel()
	s.wg.Wait()
}

func (s *Service) stopIntake() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.draining {
		s.draining = true
		close(s.queue) // workers drain the buffered jobs then exit
	}
}

func (s *Service) worker() {
	defer s.wg.Done()
	for r := range s.queue {
		s.runJob(r)
	}
}

// runJob executes one dequeued job under its timeout and finalizes its
// record, metrics and (on success) the result cache.
func (s *Service) runJob(r *jobRecord) {
	s.mu.Lock()
	if r.job.Status != StatusQueued { // cancelled while queued
		s.mu.Unlock()
		return
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, r.timeout)
	ctx = withInnerWorkers(ctx, s.cfg.InnerWorkers)
	r.cancel = cancel
	start := time.Now()
	r.job.Status = StatusRunning
	r.job.StartedAt = &start
	s.mu.Unlock()
	defer cancel()

	s.met.queueWait.Observe(start.Sub(r.job.SubmittedAt).Seconds())
	s.met.running.Inc()
	defer s.met.running.Dec()

	// Job-scoped logger, threaded through ctx so solver-adjacent code can
	// correlate its records with this job.
	lg := s.cfg.Logger.With("job_id", r.job.ID, "type", r.job.Type)
	ctx = obs.ContextWithLogger(ctx, lg)
	lg.Info("job started", "queue_wait_ms",
		float64(start.Sub(r.job.SubmittedAt))/float64(time.Millisecond))

	payload, err := execute(ctx, r.sc, r.req, s.progressSink(r, lg))
	var raw json.RawMessage
	if err == nil {
		raw, err = json.Marshal(payload)
	}

	s.mu.Lock()
	fin := time.Now()
	elapsed := fin.Sub(start)
	r.job.FinishedAt = &fin
	r.job.ElapsedMS = float64(elapsed) / float64(time.Millisecond)
	switch {
	case err == nil:
		r.job.Status = StatusSucceeded
		r.job.Result = raw
		if evicted := s.cache.put(r.key, raw); evicted > 0 {
			s.met.cacheEvictions.Add(int64(evicted))
		}
	case r.userCancelled:
		r.job.Status = StatusCancelled
		r.job.Error = fmt.Sprintf("cancelled by client: %v", err)
	case errors.Is(err, context.DeadlineExceeded):
		r.job.Status = StatusFailed
		r.job.Error = fmt.Sprintf("timed out after %s: %v", r.timeout, err)
	case errors.Is(err, context.Canceled):
		r.job.Status = StatusCancelled
		r.job.Error = fmt.Sprintf("cancelled by shutdown: %v", err)
	default:
		r.job.Status = StatusFailed
		r.job.Error = err.Error()
	}
	status := r.job.Status
	jobType := r.job.Type
	errMsg := r.job.Error
	s.mu.Unlock()

	s.met.outcome(status)
	s.met.observe(jobType, elapsed)
	if status == StatusSucceeded {
		lg.Info("job finished", "status", status,
			"elapsed_ms", float64(elapsed)/float64(time.Millisecond))
	} else {
		lg.Warn("job finished", "status", status,
			"elapsed_ms", float64(elapsed)/float64(time.Millisecond), "error", errMsg)
	}
}

// progressSink adapts solver progress events onto the job record (for
// GET /v1/jobs/{id}), the metrics registry, and — every ProgressLogEvery-th
// event — the structured log. Solvers may call it from worker goroutines;
// everything it touches is atomic.
func (s *Service) progressSink(r *jobRecord, lg *slog.Logger) obs.Progress {
	var n atomic.Int64
	every := int64(s.cfg.ProgressLogEvery)
	return func(ev obs.Event) {
		jp := &JobProgress{
			Stage:     ev.Stage,
			Step:      ev.Step,
			Total:     ev.Total,
			T:         ev.T,
			Value:     ev.Value,
			Cost:      ev.Cost,
			UpdatedAt: time.Now(),
		}
		r.prog.Store(jp)
		if ev.Stage == obs.StageABM && ev.Elapsed > 0 {
			s.met.abmStep.Observe(ev.Elapsed.Seconds())
		}
		if every > 0 && n.Add(1)%every == 0 {
			lg.Debug("job progress", "stage", ev.Stage, "step", ev.Step,
				"total", ev.Total, "t", ev.T, "value", ev.Value, "cost", ev.Cost)
		}
	}
}
