package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rumornet/internal/surface"
)

// This file is the response-surface serving tier (DESIGN.md §15): sweep
// specs expand into ordinary batch jobs through the existing queue, the
// per-point scalars fold into a packed surface artifact (internal/surface),
// and interactive queries answer by multilinear interpolation in
// microseconds — with an explicit error bound — falling back to an exact
// interactive job when the query leaves the covered region or the bound
// exceeds the caller's tolerance. Artifacts persist content-addressed in
// the store, so a restart reloads hours of sweep work in milliseconds.

// Query outcomes (the outcome label of rumor_surface_queries_total).
const (
	outcomeHit               = "hit"
	outcomeFallbackUncovered = "fallback_uncovered"
	outcomeFallbackTolerance = "fallback_tolerance"
)

// surfacePollInterval is the cadence at which a surface build polls its
// in-flight grid-point jobs for terminal status.
const surfacePollInterval = 2 * time.Millisecond

// surfaceBuildWindow bounds the grid-point jobs a build keeps in flight:
// enough to keep the batch queue fed without monopolizing its depth.
const surfaceBuildWindow = 16

// axisAccessor reads and writes one sweepable Params field by name.
type axisAccessor struct {
	get func(*Params) float64
	set func(*Params, float64)
}

// axisParams enumerates the parameters a sweep may grid over. All are
// strictly positive in any valid request, which resolveSweep exploits: a
// zero axis value would be re-resolved by withDefaults and silently change
// the grid, so positivity is enforced up front.
var axisParams = map[string]axisAccessor{
	"alpha":   {func(p *Params) float64 { return p.Alpha }, func(p *Params, v float64) { p.Alpha = v }},
	"eps1":    {func(p *Params) float64 { return p.Eps1 }, func(p *Params, v float64) { p.Eps1 = v }},
	"eps2":    {func(p *Params) float64 { return p.Eps2 }, func(p *Params, v float64) { p.Eps2 = v }},
	"r0":      {func(p *Params) float64 { return p.R0 }, func(p *Params, v float64) { p.R0 = v }},
	"lambda0": {func(p *Params) float64 { return p.Lambda0 }, func(p *Params, v float64) { p.Lambda0 = v }},
	"i0":      {func(p *Params) float64 { return p.I0 }, func(p *Params, v float64) { p.I0 = v }},
	"tf":      {func(p *Params) float64 { return p.Tf }, func(p *Params, v float64) { p.Tf = v }},
}

// surfaceFields enumerates the scalar result fields a surface may extract,
// by job type (trajectory arrays cannot interpolate into one tensor cell).
var surfaceFields = map[JobType]map[string]bool{
	JobODE:       {"r0": true, "peak_t": true, "peak_i": true, "final_i": true},
	JobThreshold: {"r0": true, "s0": true, "elast_alpha": true, "elast_eps1": true, "elast_eps2": true, "required_eps1": true, "required_eps2": true},
	JobABM:       {"peak_i": true, "final_i": true},
	JobFBSM:      {"terminal": true, "running": true, "total": true, "iterations": true},
}

// defaultSurfaceFields is the field set a sweep records when the spec
// names none.
var defaultSurfaceFields = map[JobType][]string{
	JobODE:       {"final_i", "peak_i", "peak_t"},
	JobThreshold: {"r0", "required_eps1", "required_eps2"},
	JobABM:       {"final_i", "peak_i"},
	JobFBSM:      {"total", "terminal", "running"},
}

// SweepAxis is one dimension of a sweep spec: explicit Values, or a
// Min/Max/Points linear grid.
type SweepAxis struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values,omitempty"`
	Min    float64   `json:"min,omitempty"`
	Max    float64   `json:"max,omitempty"`
	Points int       `json:"points,omitempty"`
}

// SweepSpec is the body of POST /v1/surfaces: the base request every grid
// point shares, the axes to grid over, and the scalar output fields to
// record. The grid points run as ordinary batch jobs through the queue —
// cached, WAL-logged, leasable to cluster workers — and fold into one
// surface artifact when the last one lands.
type SweepSpec struct {
	Type     JobType     `json:"type"`
	Scenario string      `json:"scenario,omitempty"`
	Params   Params      `json:"params"`
	Axes     []SweepAxis `json:"axes"`
	// Fields are the scalar result fields to extract per grid point
	// (default: the type's documented set).
	Fields []string `json:"fields,omitempty"`
	// TimeoutSec is the per-grid-point job timeout (0: server default).
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
}

// Query is the body of POST /v1/query (GET encodes the same fields as URL
// parameters): an exact request the caller wants answered fast, plus the
// interpolation-error tolerance they will accept.
type Query struct {
	Type     JobType `json:"type"`
	Scenario string  `json:"scenario,omitempty"`
	Params   Params  `json:"params"`
	// Fields restricts the answer to a subset of the surface's fields
	// (default: everything the covering surface recorded).
	Fields []string `json:"fields,omitempty"`
	// Tolerance is the maximum acceptable interpolation error bound per
	// field; a covering surface whose bound exceeds it falls back to the
	// exact job path. 0 accepts any bound.
	Tolerance float64 `json:"tolerance,omitempty"`
	// TimeoutSec bounds the fallback job (0: server default).
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
}

// QueryResult is the /v1/query response envelope. Source "surface" carries
// interpolated Values with their ErrorBound; source "job" carries the
// fallback job snapshot (terminal inline when the result cache answered).
type QueryResult struct {
	Source     string             `json:"source"` // "surface" | "job"
	SurfaceKey string             `json:"surface_key,omitempty"`
	Values     map[string]float64 `json:"values,omitempty"`
	ErrorBound map[string]float64 `json:"error_bound,omitempty"`
	// Reason explains a fallback: out of covered region, or bound above
	// tolerance.
	Reason string `json:"fallback_reason,omitempty"`
	Job    *Job   `json:"job,omitempty"`
}

// SurfaceInfo is the API view of one surface (GET /v1/surfaces).
type SurfaceInfo struct {
	Key        string         `json:"key"`
	Type       JobType        `json:"type"`
	Scenario   string         `json:"scenario"`
	Status     string         `json:"status"` // "building" | "ready" | "failed"
	Error      string         `json:"error,omitempty"`
	Axes       []surface.Axis `json:"axes"`
	Fields     []string       `json:"fields"`
	Points     int            `json:"points"`
	PointsDone int            `json:"points_done"`
	Bytes      int            `json:"bytes,omitempty"`
	// ErrorBound is the per-field global interpolation bound of a ready
	// surface.
	ErrorBound map[string]float64 `json:"error_bound,omitempty"`
}

// SurfaceStats is the surface section of /v1/stats.
type SurfaceStats struct {
	Loaded   int   `json:"loaded"`
	Building int   `json:"building"`
	Failed   int   `json:"failed"`
	Bytes    int64 `json:"bytes"`
	Queries  int64 `json:"queries"`
	Hits     int64 `json:"hits"`
	// Fallbacks counts queries routed to the exact job path (uncovered
	// region or tolerance exceeded).
	Fallbacks int64   `json:"fallbacks"`
	HitRate   float64 `json:"hit_rate"`
}

// Surface entry statuses.
const (
	surfaceBuilding = "building"
	surfaceReady    = "ready"
	surfaceFailed   = "failed"
)

// surfaceEntry is the registry state of one surface. status/surf/bytes/
// errMsg are guarded by surfaceManager.mu; pointsDone is atomic so the
// build goroutine updates progress without the lock.
type surfaceEntry struct {
	key        string
	spec       surface.Spec
	baseParams Params // unmarshaled spec.Base, for query matching
	status     string
	errMsg     string
	surf       *surface.Surface
	size       int
	pointsDone atomic.Int64
}

// surfaceManager is the registry behind /v1/surfaces and /v1/query.
type surfaceManager struct {
	mu      sync.RWMutex
	entries map[string]*surfaceEntry
	order   []string // insertion order; lookups scan newest first

	hits      atomic.Int64
	fallbacks atomic.Int64
}

func newSurfaceManager() *surfaceManager {
	return &surfaceManager{entries: make(map[string]*surfaceEntry)}
}

func (m *surfaceManager) infoLocked(e *surfaceEntry) SurfaceInfo {
	info := SurfaceInfo{
		Key:        e.key,
		Type:       JobType(e.spec.JobType),
		Scenario:   e.spec.Scenario,
		Status:     e.status,
		Error:      e.errMsg,
		Axes:       e.spec.Axes,
		Fields:     e.spec.Fields,
		Points:     e.spec.Points(),
		PointsDone: int(e.pointsDone.Load()),
		Bytes:      e.size,
	}
	if e.status == surfaceReady && e.surf != nil {
		info.ErrorBound = make(map[string]float64, len(e.spec.Fields))
		for i, f := range e.spec.Fields {
			info.ErrorBound[f] = e.surf.Bounds()[i]
		}
	}
	return info
}

func (m *surfaceManager) info(key string) (SurfaceInfo, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	e, ok := m.entries[key]
	if !ok {
		return SurfaceInfo{}, false
	}
	return m.infoLocked(e), true
}

func (m *surfaceManager) list() []SurfaceInfo {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]SurfaceInfo, 0, len(m.order))
	for i := len(m.order) - 1; i >= 0; i-- {
		if e, ok := m.entries[m.order[i]]; ok {
			out = append(out, m.infoLocked(e))
		}
	}
	return out
}

func (m *surfaceManager) readyCount() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	n := 0
	for _, e := range m.entries {
		if e.status == surfaceReady {
			n++
		}
	}
	return n
}

func (m *surfaceManager) residentBytes() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var total int64
	for _, e := range m.entries {
		if e.status == surfaceReady {
			total += int64(e.size)
		}
	}
	return total
}

func (m *surfaceManager) stats() *SurfaceStats {
	m.mu.RLock()
	st := &SurfaceStats{}
	for _, e := range m.entries {
		switch e.status {
		case surfaceReady:
			st.Loaded++
			st.Bytes += int64(e.size)
		case surfaceBuilding:
			st.Building++
		case surfaceFailed:
			st.Failed++
		}
	}
	n := len(m.entries)
	m.mu.RUnlock()
	st.Hits = m.hits.Load()
	st.Fallbacks = m.fallbacks.Load()
	st.Queries = st.Hits + st.Fallbacks
	if st.Queries > 0 {
		st.HitRate = float64(st.Hits) / float64(st.Queries)
	}
	if n == 0 && st.Queries == 0 {
		return nil // tier untouched; keep /v1/stats compact
	}
	return st
}

// install publishes a ready surface (build completion or store reload).
func (m *surfaceManager) install(e *surfaceEntry, surf *surface.Surface, size int) {
	m.mu.Lock()
	e.surf = surf
	e.size = size
	e.status = surfaceReady
	e.errMsg = ""
	m.mu.Unlock()
}

func (m *surfaceManager) fail(e *surfaceEntry, err error) {
	m.mu.Lock()
	e.status = surfaceFailed
	e.errMsg = err.Error()
	m.mu.Unlock()
}

// surfaceHit is a successful interpolation: the values and bounds of the
// requested fields plus the worst bound among them.
type surfaceHit struct {
	key      string
	values   map[string]float64
	bounds   map[string]float64
	maxBound float64
}

// lookup finds a ready surface covering the canonicalized query and
// evaluates it. qblob is the canonical marshal of qp; a surface covers the
// query iff substituting the query's axis coordinates into the surface's
// base parameters reproduces qblob exactly — every non-axis parameter must
// match, and the axis coordinates must fall inside the grid hull.
func (m *surfaceManager) lookup(jobType JobType, fingerprint string, qp Params, qblob []byte, fields []string) *surfaceHit {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for i := len(m.order) - 1; i >= 0; i-- {
		e := m.entries[m.order[i]]
		if e == nil || e.status != surfaceReady ||
			e.spec.JobType != string(jobType) || e.spec.Fingerprint != fingerprint {
			continue
		}
		want := fields
		if len(want) == 0 {
			want = e.spec.Fields
		}
		idx := make([]int, 0, len(want))
		ok := true
		for _, f := range want {
			found := -1
			for j, sf := range e.spec.Fields {
				if sf == f {
					found = j
					break
				}
			}
			if found < 0 {
				ok = false
				break
			}
			idx = append(idx, found)
		}
		if !ok {
			continue
		}
		bp := e.baseParams
		coords := make([]float64, len(e.spec.Axes))
		for a, ax := range e.spec.Axes {
			acc, known := axisParams[ax.Name]
			if !known {
				ok = false
				break
			}
			coords[a] = acc.get(&qp)
			acc.set(&bp, coords[a])
		}
		if !ok {
			continue
		}
		blob, err := json.Marshal(bp)
		if err != nil || !bytes.Equal(blob, qblob) {
			continue
		}
		values, bounds, err := e.surf.Eval(coords)
		if err != nil {
			continue // out of hull here; another surface may still cover it
		}
		hit := &surfaceHit{
			key:    e.key,
			values: make(map[string]float64, len(want)),
			bounds: make(map[string]float64, len(want)),
		}
		for n, f := range want {
			hit.values[f] = values[idx[n]]
			hit.bounds[f] = bounds[idx[n]]
			if bounds[idx[n]] > hit.maxBound {
				hit.maxBound = bounds[idx[n]]
			}
		}
		return hit
	}
	return nil
}

// resolveSweep validates a sweep spec and resolves it into the canonical
// surface spec plus the base batch request its grid points submit as.
func (s *Service) resolveSweep(sw SweepSpec) (surface.Spec, Request, error) {
	if len(sw.Axes) == 0 {
		return surface.Spec{}, Request{}, fmt.Errorf("%w: sweep needs at least one axis", ErrBadRequest)
	}
	axes := make([]surface.Axis, len(sw.Axes))
	for i, ax := range sw.Axes {
		if _, known := axisParams[ax.Name]; !known {
			return surface.Spec{}, Request{}, fmt.Errorf(
				"%w: unknown axis %q (want alpha, eps1, eps2, r0, lambda0, i0 or tf)", ErrBadRequest, ax.Name)
		}
		vals := ax.Values
		if len(vals) == 0 {
			switch {
			case ax.Points < 1:
				return surface.Spec{}, Request{}, fmt.Errorf(
					"%w: axis %q needs explicit values or points >= 1", ErrBadRequest, ax.Name)
			case ax.Points == 1:
				vals = []float64{ax.Min}
			case ax.Max <= ax.Min:
				return surface.Spec{}, Request{}, fmt.Errorf(
					"%w: axis %q: max %g must exceed min %g", ErrBadRequest, ax.Name, ax.Max, ax.Min)
			default:
				vals = make([]float64, ax.Points)
				step := (ax.Max - ax.Min) / float64(ax.Points-1)
				for j := range vals {
					vals[j] = ax.Min + float64(j)*step
				}
				vals[ax.Points-1] = ax.Max // exact endpoint despite rounding
			}
		}
		for _, v := range vals {
			if v <= 0 {
				// A zero value would be re-resolved by withDefaults at
				// submission and silently shift the grid point.
				return surface.Spec{}, Request{}, fmt.Errorf(
					"%w: axis %q values must be positive (got %g)", ErrBadRequest, ax.Name, v)
			}
		}
		axes[i] = surface.Axis{Name: ax.Name, Values: vals}
	}

	base := Request{
		Type: sw.Type, Scenario: sw.Scenario, Params: sw.Params,
		TimeoutSec: sw.TimeoutSec, Class: ClassBatch,
	}
	// Pin every axis field to its grid origin before canonicalization, so
	// the defaults resolver sees the swept values (e.g. a swept r0 keeps
	// lambda0 at zero) and the spec identity is deterministic.
	for i := range axes {
		axisParams[axes[i].Name].set(&base.Params, axes[i].Values[0])
	}
	rreq, sc, _, _, err := s.resolveRequest(base)
	if err != nil {
		return surface.Spec{}, Request{}, err
	}

	fields := sw.Fields
	if len(fields) == 0 {
		fields = defaultSurfaceFields[rreq.Type]
	}
	for _, f := range fields {
		if !surfaceFields[rreq.Type][f] {
			return surface.Spec{}, Request{}, fmt.Errorf(
				"%w: field %q is not a scalar output of %s jobs", ErrBadRequest, f, rreq.Type)
		}
	}

	blob, err := json.Marshal(rreq.Params)
	if err != nil {
		return surface.Spec{}, Request{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	spec := surface.Spec{
		JobType:     string(rreq.Type),
		Scenario:    rreq.Scenario,
		Fingerprint: sc.Fingerprint,
		Axes:        axes,
		Fields:      fields,
		Base:        blob,
	}
	if err := spec.Validate(); err != nil {
		return surface.Spec{}, Request{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return spec, rreq, nil
}

// BuildSurface resolves a sweep spec and ensures its surface exists:
// already-resident specs return their current state (idempotent by content
// key), persisted artifacts reload from the store, and anything else starts
// an asynchronous construction whose grid points run as batch jobs through
// the ordinary queue. Poll GET /v1/surfaces for completion.
func (s *Service) BuildSurface(sw SweepSpec) (SurfaceInfo, error) {
	spec, base, err := s.resolveSweep(sw)
	if err != nil {
		return SurfaceInfo{}, err
	}
	key, err := spec.Key()
	if err != nil {
		return SurfaceInfo{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}

	m := s.surf
	m.mu.Lock()
	if e, ok := m.entries[key]; ok && e.status != surfaceFailed {
		info := m.infoLocked(e)
		m.mu.Unlock()
		return info, nil
	}
	e, existed := m.entries[key], false
	if e != nil {
		existed = true // failed earlier; retry the build
		e.status = surfaceBuilding
		e.errMsg = ""
		e.pointsDone.Store(0)
	} else {
		e = &surfaceEntry{key: key, spec: spec, status: surfaceBuilding}
		if err := json.Unmarshal(spec.Base, &e.baseParams); err != nil {
			m.mu.Unlock()
			return SurfaceInfo{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
	}

	// An identical sweep persisted by an earlier process life decodes in
	// milliseconds instead of re-running the grid.
	if s.reader != nil {
		if blob, ok := s.reader.GetSurface(key); ok {
			if surf, derr := surface.Decode(blob); derr == nil {
				e.surf = surf
				e.size = len(blob)
				e.status = surfaceReady
				e.pointsDone.Store(int64(spec.Points()))
			} else {
				s.cfg.Logger.Warn("persisted surface undecodable; rebuilding",
					"key", key, "error", derr.Error())
			}
		}
	}
	if !existed {
		m.entries[key] = e
		m.order = append(m.order, key)
	}
	launch := e.status == surfaceBuilding
	info := m.infoLocked(e)
	m.mu.Unlock()

	if launch {
		s.met.surfaceBuilds.Inc()
		s.surfWG.Add(1)
		go s.buildSurface(e, base)
		s.cfg.Logger.Info("surface build started",
			"key", key, "type", spec.JobType, "scenario", spec.Scenario,
			"points", spec.Points(), "fields", strings.Join(spec.Fields, ","))
	} else {
		s.cfg.Logger.Info("surface reloaded from store", "key", key, "bytes", e.size)
	}
	return info, nil
}

// buildSurface runs the grid: every point submits as a batch job (cached
// results answer instantly, cluster workers may lease the rest), a bounded
// window keeps the queue fed without monopolizing it, and the collected
// scalars fold into the packed artifact, persist, and publish.
func (s *Service) buildSurface(e *surfaceEntry, base Request) {
	defer s.surfWG.Done()
	n := e.spec.Points()
	fields := make(map[string][]float64, len(e.spec.Fields))
	for _, f := range e.spec.Fields {
		fields[f] = make([]float64, n)
	}

	type pending struct {
		idx int
		id  string
	}
	var inflight []pending

	// drainOne blocks until the oldest in-flight grid point reaches a
	// terminal status and extracts its fields.
	drainOne := func() error {
		p := inflight[0]
		inflight = inflight[1:]
		for {
			job, ok := s.Job(p.id)
			if !ok {
				return fmt.Errorf("grid point %d: job %s evicted mid-build", p.idx, p.id)
			}
			if job.Status.Terminal() {
				if job.Status != StatusSucceeded {
					return fmt.Errorf("grid point %d: %s: %s", p.idx, job.Status, job.Error)
				}
				for _, f := range e.spec.Fields {
					v, err := extractField(job.Result, f)
					if err != nil {
						return fmt.Errorf("grid point %d: %v", p.idx, err)
					}
					fields[f][p.idx] = v
				}
				e.pointsDone.Add(1)
				return nil
			}
			select {
			case <-s.baseCtx.Done():
				return fmt.Errorf("surface build aborted: %w", s.baseCtx.Err())
			case <-time.After(surfacePollInterval):
			}
		}
	}

	for i := 0; i < n; i++ {
		req := base
		coords := e.spec.Coords(i)
		for a, ax := range e.spec.Axes {
			axisParams[ax.Name].set(&req.Params, coords[a])
		}
		for {
			job, err := s.Submit(req)
			if err == nil {
				if job.Status.Terminal() { // cache hit: extract inline
					if job.Status != StatusSucceeded {
						s.surf.fail(e, fmt.Errorf("grid point %d: %s: %s", i, job.Status, job.Error))
						return
					}
					bad := false
					for _, f := range e.spec.Fields {
						v, ferr := extractField(job.Result, f)
						if ferr != nil {
							s.surf.fail(e, fmt.Errorf("grid point %d: %v", i, ferr))
							bad = true
							break
						}
						fields[f][i] = v
					}
					if bad {
						return
					}
					e.pointsDone.Add(1)
				} else {
					inflight = append(inflight, pending{i, job.ID})
				}
				break
			}
			if errors.Is(err, ErrQueueFull) || errors.Is(err, ErrSaturated) {
				// Back off by finishing a point we already own; if none is
				// in flight, wait for the queue to move.
				if len(inflight) > 0 {
					if derr := drainOne(); derr != nil {
						s.surf.fail(e, derr)
						return
					}
					continue
				}
				select {
				case <-s.baseCtx.Done():
					s.surf.fail(e, fmt.Errorf("surface build aborted: %w", s.baseCtx.Err()))
					return
				case <-time.After(10 * surfacePollInterval):
				}
				continue
			}
			s.surf.fail(e, fmt.Errorf("grid point %d: %w", i, err))
			return
		}
		if len(inflight) >= surfaceBuildWindow {
			if err := drainOne(); err != nil {
				s.surf.fail(e, err)
				return
			}
		}
	}
	for len(inflight) > 0 {
		if err := drainOne(); err != nil {
			s.surf.fail(e, err)
			return
		}
	}

	surf, err := surface.New(e.spec, fields)
	if err != nil {
		s.surf.fail(e, err)
		return
	}
	blob, err := surf.Encode()
	if err != nil {
		s.surf.fail(e, err)
		return
	}
	if s.store != nil {
		if perr := s.store.PutSurface(e.key, blob); perr != nil {
			// Serving continues from memory; only restart warm-up is lost.
			s.cfg.Logger.Warn("surface artifact not persisted",
				"key", e.key, "error", perr.Error())
		}
	}
	s.surf.install(e, surf, len(blob))
	s.cfg.Logger.Info("surface ready",
		"key", e.key, "points", n, "bytes", len(blob))
}

// reloadSurfaces loads every persisted artifact through the Reader seam at
// startup, so a restarted daemon serves its surfaces without re-running a
// single grid point. Called from New; no locking concerns.
func (s *Service) reloadSurfaces() {
	loaded := 0
	for _, key := range s.reader.SurfaceKeys() {
		blob, ok := s.reader.GetSurface(key)
		if !ok {
			continue // quarantined between listing and read
		}
		surf, err := surface.Decode(blob)
		if err != nil {
			s.cfg.Logger.Warn("persisted surface undecodable; skipped",
				"key", key, "error", err.Error())
			continue
		}
		e := &surfaceEntry{key: key, spec: surf.Spec, status: surfaceReady, surf: surf, size: len(blob)}
		if err := json.Unmarshal(surf.Spec.Base, &e.baseParams); err != nil {
			s.cfg.Logger.Warn("persisted surface has undecodable base params; skipped",
				"key", key, "error", err.Error())
			continue
		}
		e.pointsDone.Store(int64(surf.Spec.Points()))
		s.surf.mu.Lock()
		if _, dup := s.surf.entries[key]; !dup {
			s.surf.entries[key] = e
			s.surf.order = append(s.surf.order, key)
			loaded++
		}
		s.surf.mu.Unlock()
	}
	if loaded > 0 {
		s.cfg.Logger.Info("surfaces reloaded", "count", loaded)
	}
}

// Surfaces lists the resident surfaces, newest first.
func (s *Service) Surfaces() []SurfaceInfo { return s.surf.list() }

// Surface returns one surface's state by content key.
func (s *Service) Surface(key string) (SurfaceInfo, bool) { return s.surf.info(key) }

// Query answers an exact request from a covering response surface in
// microseconds — with the interpolation error bound in the envelope — or
// falls back to the exact path: an interactive job submission whose
// snapshot (terminal inline on a cache hit) rides back in the envelope.
func (s *Service) Query(q Query) (QueryResult, error) {
	if q.Tolerance < 0 {
		return QueryResult{}, fmt.Errorf("%w: tolerance %g must be non-negative", ErrBadRequest, q.Tolerance)
	}
	req := Request{
		Type: q.Type, Scenario: q.Scenario, Params: q.Params,
		TimeoutSec: q.TimeoutSec, Class: ClassInteractive,
	}
	rreq, sc, _, _, err := s.resolveRequest(req)
	if err != nil {
		return QueryResult{}, err
	}
	qblob, err := json.Marshal(rreq.Params)
	if err != nil {
		return QueryResult{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}

	outcome, reason := outcomeFallbackUncovered, "no covering surface"
	if hit := s.surf.lookup(rreq.Type, sc.Fingerprint, rreq.Params, qblob, q.Fields); hit != nil {
		if q.Tolerance == 0 || hit.maxBound <= q.Tolerance {
			s.met.surfaceQuery(outcomeHit)
			s.surf.hits.Add(1)
			return QueryResult{
				Source:     "surface",
				SurfaceKey: hit.key,
				Values:     hit.values,
				ErrorBound: hit.bounds,
			}, nil
		}
		outcome = outcomeFallbackTolerance
		reason = fmt.Sprintf("error bound %.3g exceeds tolerance %.3g", hit.maxBound, q.Tolerance)
	}
	s.met.surfaceQuery(outcome)
	s.surf.fallbacks.Add(1)
	job, err := s.Submit(rreq)
	if err != nil {
		return QueryResult{}, err
	}
	return QueryResult{Source: "job", Reason: reason, Job: &job}, nil
}

// extractField reads one scalar field from a result payload by its JSON
// name.
func extractField(raw json.RawMessage, field string) (float64, error) {
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		return 0, fmt.Errorf("undecodable result: %v", err)
	}
	v, ok := m[field]
	if !ok {
		return 0, fmt.Errorf("result has no field %q", field)
	}
	f, ok := v.(float64)
	if !ok {
		return 0, fmt.Errorf("result field %q is not a number", field)
	}
	return f, nil
}

// surfaceQuery counts one query outcome.
func (m *metrics) surfaceQuery(outcome string) {
	if c := m.surfaceQueries[outcome]; c != nil {
		c.Inc()
	}
}

// --- HTTP handlers -------------------------------------------------------

func (s *Service) handleBuildSurface(w http.ResponseWriter, r *http.Request) {
	var sw SweepSpec
	if err := decodeBody(r, &sw); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	info, err := s.BuildSurface(sw)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	code := http.StatusAccepted
	if info.Status == surfaceReady {
		code = http.StatusOK
	}
	writeJSON(w, code, info)
}

func (s *Service) handleSurfaceIndex(w http.ResponseWriter, r *http.Request) {
	list := s.Surfaces()
	writeJSON(w, http.StatusOK, map[string]any{"surfaces": list, "count": len(list)})
}

func (s *Service) handleQuery(w http.ResponseWriter, r *http.Request) {
	var q Query
	if err := decodeBody(r, &q); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.serveQuery(w, q)
}

func (s *Service) handleQueryGet(w http.ResponseWriter, r *http.Request) {
	q, err := queryFromURL(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.serveQuery(w, q)
}

func (s *Service) serveQuery(w http.ResponseWriter, q Query) {
	res, err := s.Query(q)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	code := http.StatusOK
	if res.Job != nil && !res.Job.Status.Terminal() {
		// The fallback job is asynchronous; point the caller at the poll URL.
		w.Header().Set("Location", "/v1/jobs/"+res.Job.ID)
		code = http.StatusAccepted
	}
	writeJSON(w, code, res)
}

// queryFromURL decodes GET /v1/query parameters: ?type=ode&r0=1.8&... with
// fields comma-separated. Only the sweepable float parameters (plus the ABM
// integer extras) are addressable this way; POST takes the full Params.
func queryFromURL(v url.Values) (Query, error) {
	var q Query
	q.Type = JobType(v.Get("type"))
	q.Scenario = v.Get("scenario")
	if f := v.Get("fields"); f != "" {
		q.Fields = strings.Split(f, ",")
	}
	for _, fld := range []struct {
		name string
		dst  *float64
	}{
		{"tolerance", &q.Tolerance},
		{"timeout_sec", &q.TimeoutSec},
	} {
		if raw := v.Get(fld.name); raw != "" {
			f, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				return Query{}, fmt.Errorf("parameter %q: %v", fld.name, err)
			}
			*fld.dst = f
		}
	}
	for name, acc := range axisParams {
		if raw := v.Get(name); raw != "" {
			f, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				return Query{}, fmt.Errorf("parameter %q: %v", name, err)
			}
			acc.set(&q.Params, f)
		}
	}
	for _, fld := range []struct {
		name string
		dst  *int
	}{
		{"trials", &q.Params.Trials},
		{"nodes", &q.Params.Nodes},
		{"seed", nil}, // handled below: int64
	} {
		if fld.dst == nil {
			continue
		}
		if raw := v.Get(fld.name); raw != "" {
			n, err := strconv.Atoi(raw)
			if err != nil {
				return Query{}, fmt.Errorf("parameter %q: %v", fld.name, err)
			}
			*fld.dst = n
		}
	}
	if raw := v.Get("seed"); raw != "" {
		n, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return Query{}, fmt.Errorf("parameter %q: %v", "seed", err)
		}
		q.Params.Seed = n
	}
	return q, nil
}
