package service

import (
	"encoding/json"
	"fmt"
	"time"

	"rumornet/internal/degreedist"
	"rumornet/internal/obs/journal"
	"rumornet/internal/obs/trace"
	"rumornet/internal/store"
)

// This file is the service side of the durable job store: the WAL append
// helpers called on the submission and execution paths, and the startup
// recovery that turns a write-ahead log plus result store back into live
// service state. The contract with runJob/Cancel:
//
//   - every job that enters the queue gets an opSubmitted record (with the
//     full request, so recovery can re-enqueue it verbatim);
//   - every terminal outcome the service *chose* (success, failure, user
//     cancellation, timeout) gets an opFinished record;
//   - a shutdown-cancelled job gets NO terminal record — crash and
//     redeploy look identical in the log, and both re-run the job.
//
// WAL errors never fail the job: the daemon keeps serving from memory and
// the failure is counted (rumor_store_wal_errors_total) and logged.

// walSubmitted logs a job's enqueue. Callers hold s.mu.
func (s *Service) walSubmitted(r *jobRecord) {
	if s.store == nil {
		return
	}
	blob, err := json.Marshal(r.req)
	if err == nil {
		err = s.store.AppendSubmitted(store.JobState{
			ID: r.job.ID, Seq: r.seq, Request: blob, Key: r.key,
			TraceID: r.job.TraceID, SubmittedAt: r.job.SubmittedAt,
			Class: string(r.req.Class),
		})
	}
	s.walErrored("submitted", r.job.ID, err)
}

// walStarted logs a job's transition to running. Callers hold s.mu.
func (s *Service) walStarted(id string) {
	if s.store == nil {
		return
	}
	s.walErrored("started", id, s.store.AppendStarted(id))
}

// walFinished logs a terminal outcome. Callers hold s.mu, so the record is
// on disk before any poller can observe the terminal status.
func (s *Service) walFinished(id string, status Status) {
	if s.store == nil {
		return
	}
	s.walErrored("finished", id, s.store.AppendFinished(id, string(status)))
}

// walAttempt logs a job's cumulative lease-grant count so the poison-job
// attempt budget survives a coordinator restart. Callers hold s.mu.
func (s *Service) walAttempt(id string, attempt int) {
	if s.store == nil {
		return
	}
	s.walErrored("attempt", id, s.store.AppendAttempt(id, attempt))
}

// walScenario logs an uploaded scenario table so a restart re-registers it
// before recovered jobs try to resolve it.
func (s *Service) walScenario(name, source string, degrees []int, probs []float64) {
	if s.store == nil {
		return
	}
	s.walErrored("scenario", name, s.store.AppendScenario(store.ScenarioState{
		Name: name, Source: source, Degrees: degrees, Probs: probs,
	}))
}

// storePutResult persists a succeeded job's result blob. Callers hold s.mu.
func (s *Service) storePutResult(key string, raw json.RawMessage) {
	if s.store == nil {
		return
	}
	s.walErrored("put result", key, s.store.PutResult(key, raw))
}

// walErrored counts and logs a failed store operation (no-op on nil).
func (s *Service) walErrored(op, id string, err error) {
	if err == nil {
		return
	}
	s.met.walErrors.Inc()
	s.cfg.Logger.Warn("durable store operation failed",
		"op", op, "id", id, "error", err.Error())
}

// recoverFromStore rebuilds service state from an opened store: completed
// results warm the memory cache (newest first, bounded by its capacity),
// unfinished jobs re-enter the queue under their original ids, and the
// sequence counter resumes above everything the log has seen. Called from
// New after scenario registration and before the workers start; the lock
// discipline of the helpers it shares with the live paths still applies.
func (s *Service) recoverFromStore() {
	// Scenario tables first: recovered jobs referencing an uploaded
	// scenario resolve only if the table is already registered. The
	// built-in name collides by design (it was never WAL-logged, but be
	// defensive about hand-edited logs) and is skipped silently.
	replayed := 0
	for _, sc := range s.store.Scenarios() {
		d, err := degreedist.New(sc.Degrees, sc.Probs)
		if err == nil {
			_, err = s.scenarios.register(sc.Name, sc.Source, d)
		}
		if err != nil {
			s.cfg.Logger.Warn("persisted scenario not re-registered",
				"scenario", sc.Name, "error", err.Error())
			continue
		}
		replayed++
	}
	s.met.scenarioReplays.Add(int64(replayed))

	keys := s.store.ResultKeys()
	if limit := s.cfg.CacheEntries; limit > 0 && len(keys) > limit {
		keys = keys[:limit]
	}
	warmed := 0
	// Oldest of the kept set first, so the newest results end up most
	// recently used and survive LRU pressure longest.
	for i := len(keys) - 1; i >= 0; i-- {
		if blob, ok := s.store.GetResult(keys[i]); ok {
			s.cache.put(keys[i], json.RawMessage(blob))
			warmed++
		}
	}
	s.met.recoveredResults.Add(int64(warmed))

	if max := s.store.MaxSeq(); s.seq < max {
		s.seq = max
	}
	pending := s.store.PendingJobs()
	requeued, served, failed := 0, 0, 0
	for _, js := range pending {
		switch s.requeueRecovered(js) {
		case StatusQueued:
			requeued++
		case StatusSucceeded:
			served++
		default:
			failed++
		}
	}
	s.met.recoveredJobs.Add(int64(requeued))
	if warmed > 0 || len(pending) > 0 || replayed > 0 {
		s.cfg.Logger.Info("recovery complete",
			"results_warmed", warmed, "scenarios_replayed", replayed,
			"jobs_requeued", requeued,
			"jobs_served_from_cache", served, "jobs_failed", failed,
			"next_seq", s.seq+1)
	}
}

// requeueRecovered re-admits one logged-but-unfinished job and returns the
// status it settled into: StatusQueued (re-enqueued), StatusSucceeded (its
// result was already on disk — the crash hit between the blob write and
// the terminal record) or StatusFailed (the request no longer resolves,
// e.g. an uploaded scenario that was not re-registered, or the queue is
// full). Failures get a terminal WAL record so the log stops re-delivering
// them; either way the job is visible to GET /v1/jobs under its old id.
func (s *Service) requeueRecovered(js store.JobState) Status {
	var req Request
	reason := ""
	if err := json.Unmarshal(js.Request, &req); err != nil {
		reason = fmt.Sprintf("recovery: undecodable request: %v", err)
	}
	// The WAL records the admission class both inside the request blob and
	// on the JobState; prefer the explicit field when the blob predates it.
	if req.Class == "" && js.Class != "" {
		req.Class = Class(js.Class)
	}
	var (
		sc      *Scenario
		key     string
		timeout time.Duration
	)
	if reason == "" {
		var err error
		req, sc, key, timeout, err = s.resolveRequest(req)
		if err != nil {
			reason = fmt.Sprintf("recovery: %v", err)
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.jobs[js.ID]; dup {
		return StatusFailed // defensive: the log should never duplicate ids
	}
	submitted := js.SubmittedAt
	if submitted.IsZero() {
		submitted = time.Now()
	}
	span := s.tracer.StartSpan("job."+string(req.Type), trace.SpanContext{})
	span.SetAttr("job_id", js.ID)
	span.SetAttr("recovered", "true")
	r := &jobRecord{
		job: Job{
			ID:          js.ID,
			Type:        req.Type,
			Scenario:    req.Scenario,
			Status:      StatusQueued,
			Class:       req.Class,
			TraceID:     span.Context().TraceID.String(),
			SubmittedAt: submitted,
		},
		req:      req,
		sc:       sc,
		key:      key,
		seq:      js.Seq,
		timeout:  timeout,
		span:     span,
		attempts: js.Attempts,
	}

	if reason == "" {
		// The job may have completed just before the crash: result blob
		// written, terminal record lost. The warmed cache answers it.
		if raw, hit := s.cache.get(key); hit {
			s.met.outcome(StatusSucceeded)
			fin := time.Now()
			r.job.Status = StatusSucceeded
			r.job.CacheHit = true
			r.job.Result = raw
			r.job.FinishedAt = &fin
			s.walFinished(js.ID, StatusSucceeded)
			s.insertLocked(r)
			s.keyJobs[key] = append(s.keyJobs[key], js.ID)
			s.journal.Append(journal.Entry{
				JobID: js.ID, TraceID: r.job.TraceID,
				Kind: journal.KindLifecycle, Msg: "finished: succeeded (recovered result)",
				Final: true,
			})
			span.SetAttr("status", string(StatusSucceeded))
			span.End()
			return StatusSucceeded
		}
		select {
		case s.queues[classIndex(req.Class)] <- r:
			s.insertLocked(r)
			s.journal.Append(journal.Entry{
				JobID: js.ID, TraceID: r.job.TraceID,
				Kind: journal.KindLifecycle, Msg: "recovered: re-queued after restart",
			})
			s.cfg.Logger.Info("job recovered",
				"job_id", js.ID, "type", req.Type, "scenario", req.Scenario,
				"was_started", js.Started)
			return StatusQueued
		default:
			reason = "recovery: queue full"
		}
	}

	s.met.outcome(StatusFailed)
	fin := time.Now()
	r.job.Status = StatusFailed
	r.job.Error = reason
	r.job.FinishedAt = &fin
	s.walFinished(js.ID, StatusFailed)
	s.insertLocked(r)
	s.journal.Append(journal.Entry{
		JobID: js.ID, TraceID: r.job.TraceID,
		Kind: journal.KindLifecycle, Msg: "finished: failed: " + reason,
		Final: true,
	})
	span.SetAttr("status", string(StatusFailed))
	span.End()
	s.cfg.Logger.Warn("recovered job failed", "job_id", js.ID, "error", reason)
	return StatusFailed
}
