package service

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rumornet/internal/store"
)

// buildAndWait kicks off a sweep and polls until its surface settles.
func buildAndWait(t *testing.T, s *Service, sw SweepSpec) SurfaceInfo {
	t.Helper()
	info, err := s.BuildSurface(sw)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		got, ok := s.Surface(info.Key)
		if !ok {
			t.Fatalf("surface %s disappeared", info.Key)
		}
		if got.Status == surfaceReady {
			return got
		}
		if got.Status == surfaceFailed {
			t.Fatalf("surface build failed: %s", got.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("surface %s did not settle", info.Key)
	return SurfaceInfo{}
}

// thresholdSweep is the canonical test sweep: a deterministic job type on
// the cheap tiny scenario, gridding the two forgetting-mechanism rates.
func thresholdSweep(n int) SweepSpec {
	return SweepSpec{
		Type:     JobThreshold,
		Scenario: "tiny",
		Axes: []SweepAxis{
			{Name: "eps1", Min: 0.10, Max: 0.40, Points: n},
			{Name: "eps2", Min: 0.02, Max: 0.10, Points: n},
		},
	}
}

// TestSurfaceGoldenBound builds an eps1 x eps2 threshold surface and checks
// every off-grid interpolated answer against the direct solver: the
// reported error bound must actually bound the observed error, and the hit
// must be orders of magnitude closer than the bound claims is possible.
func TestSurfaceGoldenBound(t *testing.T) {
	s := newTestService(t, Config{Workers: 4, QueueDepth: 64})
	tinyScenario(t, s)
	info := buildAndWait(t, s, thresholdSweep(5))
	if info.Points != 25 || info.PointsDone != 25 {
		t.Fatalf("points = %d/%d, want 25/25", info.PointsDone, info.Points)
	}
	if len(info.ErrorBound) == 0 {
		t.Fatal("ready surface reports no error bound")
	}

	// Off-grid probes strictly inside the hull, away from any grid plane.
	probes := []struct{ eps1, eps2 float64 }{
		{0.137, 0.033}, {0.221, 0.071}, {0.333, 0.047}, {0.389, 0.093},
	}
	for _, p := range probes {
		q := Query{
			Type: JobThreshold, Scenario: "tiny",
			Params: Params{Eps1: p.eps1, Eps2: p.eps2},
		}
		res, err := s.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Source != "surface" {
			t.Fatalf("probe (%g,%g): source = %q (%s), want surface",
				p.eps1, p.eps2, res.Source, res.Reason)
		}

		// The same request through the exact path (cache defeated by
		// nothing: the query params never ran as a job).
		job, err := s.Submit(Request{Type: JobThreshold, Scenario: "tiny",
			Params: Params{Eps1: p.eps1, Eps2: p.eps2}})
		if err != nil {
			t.Fatal(err)
		}
		job = waitTerminal(t, s, job.ID)
		if job.Status != StatusSucceeded {
			t.Fatalf("exact job: %s: %s", job.Status, job.Error)
		}
		for _, f := range []string{"r0", "required_eps1", "required_eps2"} {
			exact, err := extractField(job.Result, f)
			if err != nil {
				t.Fatal(err)
			}
			got, okV := res.Values[f]
			bound, okB := res.ErrorBound[f]
			if !okV || !okB {
				t.Fatalf("probe (%g,%g): field %q missing from envelope", p.eps1, p.eps2, f)
			}
			diff := math.Abs(got - exact)
			// The bound is a curvature estimate, not a hard guarantee; a
			// tiny epsilon absorbs float noise on near-linear fields.
			if diff > bound+1e-12 {
				t.Errorf("probe (%g,%g) field %s: |%g - %g| = %g exceeds bound %g",
					p.eps1, p.eps2, f, got, exact, diff, bound)
			}
		}
	}

	st := s.Stats()
	if st.Surface == nil {
		t.Fatal("stats: surface section missing")
	}
	if st.Surface.Loaded != 1 || st.Surface.Hits != int64(len(probes)) {
		t.Errorf("stats: loaded=%d hits=%d, want 1, %d",
			st.Surface.Loaded, st.Surface.Hits, len(probes))
	}
	if st.Surface.Bytes <= 0 {
		t.Error("stats: ready surface reports zero bytes")
	}
}

// TestSurfaceQueryFallbacks covers both fallback triggers: a query outside
// the covered region and a tolerance tighter than the surface's bound. Both
// must come back as exact interactive jobs with the reason spelled out.
func TestSurfaceQueryFallbacks(t *testing.T) {
	s := newTestService(t, Config{Workers: 2, QueueDepth: 32})
	tinyScenario(t, s)
	buildAndWait(t, s, thresholdSweep(3))

	// eps1 far above the grid's max: no surface covers it.
	out, err := s.Query(Query{Type: JobThreshold, Scenario: "tiny",
		Params: Params{Eps1: 0.9, Eps2: 0.05}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Source != "job" || out.Job == nil {
		t.Fatalf("out-of-hull: source = %q, want job", out.Source)
	}
	if out.Reason == "" {
		t.Error("out-of-hull: fallback reason missing")
	}
	waitTerminal(t, s, out.Job.ID)

	// In the hull, but demanding impossible accuracy.
	tol, err := s.Query(Query{Type: JobThreshold, Scenario: "tiny",
		Params: Params{Eps1: 0.17, Eps2: 0.05}, Tolerance: 1e-300})
	if err != nil {
		t.Fatal(err)
	}
	if tol.Source != "job" {
		t.Fatalf("tight tolerance: source = %q, want job", tol.Source)
	}
	waitTerminal(t, s, tol.Job.ID)
	if tol.Job.Class != ClassInteractive {
		t.Errorf("fallback job class = %q, want interactive", tol.Job.Class)
	}

	st := s.Stats()
	if st.Surface == nil || st.Surface.Fallbacks != 2 {
		t.Fatalf("stats: fallbacks = %+v, want 2", st.Surface)
	}
}

// TestPriorityClassStarvation proves interactive work overtakes a queued
// batch backlog: with no workers draining the queue (coordinator mode), a
// pile of batch jobs is enqueued first, an interactive job afterwards —
// and the lease order still hands out the interactive job first.
func TestPriorityClassStarvation(t *testing.T) {
	s := newTestService(t, Config{QueueDepth: 32,
		Cluster: ClusterConfig{Enabled: true, LeaseTTL: time.Minute}})
	tinyScenario(t, s)

	for i := 0; i < 8; i++ {
		_, err := s.Submit(Request{Type: JobThreshold, Scenario: "tiny", Class: ClassBatch,
			Params: Params{Tf: float64(100 + i)}}) // distinct keys: no dedup
		if err != nil {
			t.Fatal(err)
		}
	}
	inter, err := s.Submit(Request{Type: JobThreshold, Scenario: "tiny",
		Params: Params{Tf: 777}}) // class defaults to interactive
	if err != nil {
		t.Fatal(err)
	}
	if inter.Class != ClassInteractive {
		t.Fatalf("default class = %q, want interactive", inter.Class)
	}

	lease, err := s.LeaseNext("w1", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if lease == nil {
		t.Fatal("queue is non-empty but LeaseNext returned nothing")
	}
	if lease.JobID != inter.ID {
		t.Fatalf("first lease = %s (class %q), want the interactive job %s",
			lease.JobID, lease.Request.Class, inter.ID)
	}
	// With the interactive queue drained, batch leases flow again.
	next, err := s.LeaseNext("w1", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if next == nil || next.Request.Class != ClassBatch {
		t.Fatalf("second lease = %+v, want a batch job", next)
	}

	st := s.Stats()
	if st.QueueInteractive != 0 || st.QueueBatch != 7 {
		t.Errorf("queue split = %d/%d, want 0 interactive, 7 batch",
			st.QueueInteractive, st.QueueBatch)
	}
}

// TestBatchShedWhenSaturated: a saturated service rejects new batch work
// with ErrSaturated but keeps admitting interactive jobs.
func TestBatchShedWhenSaturated(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, QueueDepth: 32,
		SaturationBudget: time.Nanosecond, SaturationWindow: time.Minute})
	tinyScenario(t, s)

	// Trip the detector: any observed queue wait exceeds a 1ns budget.
	for !s.sat.Saturated() {
		job, err := s.Submit(Request{Type: JobThreshold, Scenario: "tiny"})
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, s, job.ID)
	}

	_, err := s.Submit(Request{Type: JobThreshold, Scenario: "tiny", Class: ClassBatch,
		Params: Params{Tf: 123}})
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("batch under saturation: err = %v, want ErrSaturated", err)
	}
	job, err := s.Submit(Request{Type: JobThreshold, Scenario: "tiny",
		Params: Params{Tf: 124}})
	if err != nil {
		t.Fatalf("interactive under saturation: %v", err)
	}
	waitTerminal(t, s, job.ID)
	if got := s.Stats().Jobs.Shed; got != 1 {
		t.Errorf("shed count = %d, want 1", got)
	}
}

// TestSurfaceQueryDuringBuild hammers the query and listing paths while a
// construction is folding grid points in — the race the -race run is for.
func TestSurfaceQueryDuringBuild(t *testing.T) {
	s := newTestService(t, Config{Workers: 4, QueueDepth: 64})
	tinyScenario(t, s)
	// A ready surface first, so concurrent queries exercise the hit path
	// too, not just "no covering surface".
	buildAndWait(t, s, thresholdSweep(3))

	sw := thresholdSweep(4) // distinct grid: a second, concurrent build
	info, err := s.BuildSurface(sw)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_, qerr := s.Query(Query{Type: JobThreshold, Scenario: "tiny",
					Params: Params{Eps1: 0.11 + 0.01*float64(g), Eps2: 0.03}})
				if qerr != nil {
					t.Errorf("query during build: %v", qerr)
					return
				}
				s.Surfaces()
				s.Stats()
			}
		}(g)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		got, ok := s.Surface(info.Key)
		if !ok {
			t.Fatal("building surface disappeared")
		}
		if got.Status == surfaceReady {
			break
		}
		if got.Status == surfaceFailed {
			t.Fatalf("build failed: %s", got.Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("build did not settle")
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
}

// fakeReader is a store.Reader double: canned blobs plus call counters, so
// the test can prove the serving tier reads through the seam and not
// around it.
type fakeReader struct {
	results     map[string][]byte
	surfaces    map[string][]byte
	surfaceGets atomic.Int64
	resultGets  atomic.Int64
}

func (f *fakeReader) GetResult(key string) ([]byte, bool) {
	f.resultGets.Add(1)
	b, ok := f.results[key]
	return b, ok
}

func (f *fakeReader) GetSurface(key string) ([]byte, bool) {
	f.surfaceGets.Add(1)
	b, ok := f.surfaces[key]
	return b, ok
}

func (f *fakeReader) SurfaceKeys() []string {
	keys := make([]string, 0, len(f.surfaces))
	for k := range f.surfaces {
		keys = append(keys, k)
	}
	return keys
}

var _ store.Reader = (*fakeReader)(nil)

// TestSurfaceReaderSeam builds a surface against a real on-disk store,
// copies the persisted artifacts into a fakeReader, and starts a second,
// storeless service with the double injected: the surface must reload and
// serve hits through the seam alone.
func TestSurfaceReaderSeam(t *testing.T) {
	dir := t.TempDir()
	a := newTestService(t, Config{Workers: 2, QueueDepth: 32, StoreDir: dir})
	tinyScenario(t, a)
	built := buildAndWait(t, a, thresholdSweep(3))
	a.Close()

	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fake := &fakeReader{results: map[string][]byte{}, surfaces: map[string][]byte{}}
	for _, k := range st.SurfaceKeys() {
		if b, ok := st.GetSurface(k); ok {
			fake.surfaces[k] = b
		}
	}
	st.Close()
	if len(fake.surfaces) != 1 {
		t.Fatalf("persisted surfaces = %d, want 1", len(fake.surfaces))
	}

	b := newTestService(t, Config{Workers: 2, QueueDepth: 32, StoreReader: fake})
	tinyScenario(t, b)
	got, ok := b.Surface(built.Key)
	if !ok || got.Status != surfaceReady {
		t.Fatalf("surface not reloaded through the seam: %+v (ok=%v)", got, ok)
	}
	if fake.surfaceGets.Load() == 0 {
		t.Fatal("reload never called the Reader double")
	}
	res, err := b.Query(Query{Type: JobThreshold, Scenario: "tiny",
		Params: Params{Eps1: 0.17, Eps2: 0.05}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "surface" || res.SurfaceKey != built.Key {
		t.Fatalf("query after seam reload: source=%q key=%q, want surface/%s (%s)",
			res.Source, res.SurfaceKey, built.Key, res.Reason)
	}

	// BuildSurface of the same spec must come back ready instantly — the
	// artifact answers through the seam, no grid re-run.
	info, err := b.BuildSurface(thresholdSweep(3))
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != surfaceReady {
		t.Fatalf("rebuild of persisted spec: status = %q, want ready", info.Status)
	}
}

// TestSurfaceBuildNoGoroutineLeak runs construction fan-outs — one that
// completes and one that Close aborts mid-build — and asserts the
// goroutine count settles back to the baseline.
func TestSurfaceBuildNoGoroutineLeak(t *testing.T) {
	settle := func(target int) bool {
		deadline := time.Now().Add(10 * time.Second)
		for runtime.NumGoroutine() > target {
			if time.Now().After(deadline) {
				return false
			}
			time.Sleep(10 * time.Millisecond)
		}
		return true
	}
	settle(runtime.NumGoroutine())
	before := runtime.NumGoroutine()

	func() {
		s := newTestService(t, Config{Workers: 2, QueueDepth: 16})
		tinyScenario(t, s)
		buildAndWait(t, s, thresholdSweep(3))
		// A second build with slow ABM points is still in flight when Close
		// tears the service down; the build goroutine must notice and exit.
		_, err := s.BuildSurface(SweepSpec{
			Type: JobABM, Scenario: "tiny",
			Axes:   []SweepAxis{{Name: "eps1", Min: 0.1, Max: 0.4, Points: 8}},
			Params: Params{Trials: 50, Nodes: 500},
		})
		if err != nil {
			t.Error(err)
		}
		s.Close()
	}()

	if !settle(before + 2) {
		t.Fatalf("goroutines leaked: %d before, %d after shutdown",
			before, runtime.NumGoroutine())
	}
}

// TestSweepSpecValidation exercises the sweep resolver's rejections.
func TestSweepSpecValidation(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, QueueDepth: 8})
	tinyScenario(t, s)
	cases := []struct {
		name string
		sw   SweepSpec
	}{
		{"no axes", SweepSpec{Type: JobThreshold, Scenario: "tiny"}},
		{"unknown axis", SweepSpec{Type: JobThreshold, Scenario: "tiny",
			Axes: []SweepAxis{{Name: "gamma", Min: 1, Max: 2, Points: 3}}}},
		{"zero points", SweepSpec{Type: JobThreshold, Scenario: "tiny",
			Axes: []SweepAxis{{Name: "eps1", Min: 0.1, Max: 0.2}}}},
		{"max below min", SweepSpec{Type: JobThreshold, Scenario: "tiny",
			Axes: []SweepAxis{{Name: "eps1", Min: 0.2, Max: 0.1, Points: 3}}}},
		{"zero axis value", SweepSpec{Type: JobThreshold, Scenario: "tiny",
			Axes: []SweepAxis{{Name: "eps1", Values: []float64{0, 0.1}}}}},
		{"field of wrong type", SweepSpec{Type: JobThreshold, Scenario: "tiny",
			Axes:   []SweepAxis{{Name: "eps1", Min: 0.1, Max: 0.2, Points: 2}},
			Fields: []string{"terminal"}}},
		{"trajectory field", SweepSpec{Type: JobODE, Scenario: "tiny",
			Axes:   []SweepAxis{{Name: "r0", Min: 1.5, Max: 2.5, Points: 2}},
			Fields: []string{"mean_i"}}},
		{"unknown scenario", SweepSpec{Type: JobThreshold, Scenario: "nope",
			Axes: []SweepAxis{{Name: "eps1", Min: 0.1, Max: 0.2, Points: 2}}}},
	}
	for _, tc := range cases {
		if _, err := s.BuildSurface(tc.sw); err == nil {
			t.Errorf("%s: accepted, want error", tc.name)
		} else if tc.name != "unknown scenario" && !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: err = %v, want ErrBadRequest", tc.name, err)
		}
	}
}

// TestSurfaceRestartReload: the durable round trip without a double — a
// daemon with a data dir builds a surface, restarts, and serves hits
// without re-running a single grid point.
func TestSurfaceRestartReload(t *testing.T) {
	dir := t.TempDir()
	a := newTestService(t, Config{Workers: 2, QueueDepth: 32, StoreDir: dir})
	tinyScenario(t, a)
	built := buildAndWait(t, a, thresholdSweep(3))
	a.Close()

	// No tinyScenario here: the WAL replays the uploaded table on restart.
	b := newTestService(t, Config{Workers: 2, QueueDepth: 32, StoreDir: dir})
	got, ok := b.Surface(built.Key)
	if !ok || got.Status != surfaceReady {
		t.Fatalf("surface not reloaded after restart: %+v (ok=%v)", got, ok)
	}
	res, err := b.Query(Query{Type: JobThreshold, Scenario: "tiny",
		Params: Params{Eps1: 0.17, Eps2: 0.05}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "surface" {
		t.Fatalf("query after restart: source = %q (%s), want surface", res.Source, res.Reason)
	}
	if fmt.Sprint(b.Stats().Surface.Loaded) != "1" {
		t.Errorf("loaded = %d, want 1", b.Stats().Surface.Loaded)
	}
}
