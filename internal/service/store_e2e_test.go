package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"rumornet/internal/store"
)

// storeConfig is the durable-service test configuration: one worker so a
// slow job deterministically parks the queue, SyncNone because the tests
// stop processes politely (the OS page cache keeps the bytes).
func storeConfig(dir string) Config {
	return Config{
		Workers:      1,
		QueueDepth:   16,
		StoreDir:     dir,
		StoreOptions: store.Options{SyncMode: store.SyncNone},
	}
}

func waitJob(t *testing.T, s *Service, id string) Job {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		job, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if job.Status.Terminal() {
			return job
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not settle", id)
	return Job{}
}

func waitRunning(t *testing.T, s *Service, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		job, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if job.Status == StatusRunning {
			return
		}
		if job.Status.Terminal() {
			t.Fatalf("job %s finished (%s) before the crash could interrupt it", id, job.Status)
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never started", id)
}

// TestStoreCrashRecoveryE2E is the PR's acceptance scenario: a daemon
// completes one job, is killed with one job running and one queued, and a
// restart over the same data directory serves the completed result from
// the warmed cache without recomputing and re-runs the interrupted jobs to
// completion under their original ids.
func TestStoreCrashRecoveryE2E(t *testing.T) {
	dir := t.TempDir()
	cfg := storeConfig(dir)

	svc1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reqA := Request{Type: JobThreshold, Params: Params{Lambda0: 0.02}}
	jobA, err := svc1.Submit(reqA)
	if err != nil {
		t.Fatal(err)
	}
	mustSucceed(t, waitJob(t, svc1, jobA.ID))

	// B is slow enough (tens of millions of ABM node-steps) that Close
	// lands while it is mid-flight; C queues behind it on the lone worker.
	jobB, err := svc1.Submit(Request{Type: JobABM,
		Params: Params{Lambda0: 0.001, Trials: 3, Nodes: 20000, Tf: 150}})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, svc1, jobB.ID)
	jobC, err := svc1.Submit(Request{Type: JobODE, Params: Params{Lambda0: 0.02, Tf: 40}})
	if err != nil {
		t.Fatal(err)
	}
	// Abrupt stop: Close cancels B (and C runs against the dead context).
	// Neither gets a terminal WAL record — the crash/redeploy shape.
	svc1.Close()

	svc2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()

	st := svc2.Stats()
	if st.Store == nil {
		t.Fatal("stats missing the store section")
	}
	if st.Store.RecoveredJobs != 2 {
		t.Errorf("recovered jobs = %d, want 2 (B and C)", st.Store.RecoveredJobs)
	}
	if st.Store.RecoveredResults < 1 {
		t.Errorf("recovered results = %d, want >= 1 (A's)", st.Store.RecoveredResults)
	}

	// A's result must be served from the warmed cache — synchronously,
	// without recomputing.
	hit, err := svc2.Submit(reqA)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.CacheHit || hit.Status != StatusSucceeded {
		t.Errorf("resubmitted A: status %s, cache_hit %v — want a synchronous cache hit", hit.Status, hit.CacheHit)
	}
	if hit.ID != "j-000004" {
		t.Errorf("post-recovery id = %s, want j-000004 (sequence resumed above the log)", hit.ID)
	}

	// B and C re-run to completion under their original ids.
	for _, id := range []string{jobB.ID, jobC.ID} {
		job := waitJob(t, svc2, id)
		mustSucceed(t, job)
		if job.CacheHit {
			t.Errorf("job %s recovered as cache hit; want a real re-run", id)
		}
	}

	// A third life: everything settled, nothing left to re-enqueue.
	svc2.Close()
	svc3, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc3.Close()
	if got := svc3.Stats().Store.PendingJobs; got != 0 {
		t.Errorf("pending after clean restart = %d, want 0", got)
	}
	if st3 := svc3.Stats().Store; st3.RecoveredJobs != 0 {
		t.Errorf("third life re-enqueued %d jobs, want 0", st3.RecoveredJobs)
	}
}

// TestRecoverySyntheticWAL drives recovery off a hand-written log — fully
// deterministic coverage of the edge outcomes: a valid job re-runs, a job
// whose uploaded scenario vanished with the process fails with a terminal
// record (so the log stops re-delivering it), and an undecodable request
// fails the same way.
func TestRecoverySyntheticWAL(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{SyncMode: store.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	appendJob := func(id string, seq uint64, request string) {
		t.Helper()
		if err := st.AppendSubmitted(store.JobState{
			ID: id, Seq: seq, Request: json.RawMessage(request),
			Key: fmt.Sprintf("%064d", seq), SubmittedAt: time.Now(),
		}); err != nil {
			t.Fatal(err)
		}
	}
	appendJob("j-000005", 5, `{"type":"ode","params":{"lambda0":0.02,"tf":40,"points":50}}`)
	appendJob("j-000006", 6, `{"type":"ode","scenario":"ghost","params":{"lambda0":0.02}}`)
	appendJob("j-000007", 7, `{"type":123}`)
	if err := st.AppendStarted("j-000005"); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	cfg := storeConfig(dir)
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustSucceed(t, waitJob(t, svc, "j-000005"))

	ghost := waitJob(t, svc, "j-000006")
	if ghost.Status != StatusFailed || !strings.Contains(ghost.Error, "ghost") {
		t.Errorf("ghost-scenario job: %s (%s), want failed naming the scenario", ghost.Status, ghost.Error)
	}
	bad := waitJob(t, svc, "j-000007")
	if bad.Status != StatusFailed {
		t.Errorf("undecodable job: %s, want failed", bad.Status)
	}

	fresh, err := svc.Submit(Request{Type: JobThreshold, Params: Params{Lambda0: 0.01}})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.ID != "j-000008" {
		t.Errorf("fresh id = %s, want j-000008 (above the synthetic log's max seq)", fresh.ID)
	}
	svc.Close()

	// The failure records are terminal: a second life has nothing pending.
	svc2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if got := svc2.Stats().Store.PendingJobs; got != 0 {
		t.Errorf("pending after failures were logged = %d, want 0", got)
	}
	if _, ok := svc2.Job("j-000006"); ok {
		t.Error("terminally failed job re-created on restart")
	}
}

// TestDiskFallbackAfterEviction pins the second cache tier: a result
// evicted from the memory LRU is still answered from the blob store, and
// the read repopulates the memory cache.
func TestDiskFallbackAfterEviction(t *testing.T) {
	cfg := storeConfig(t.TempDir())
	cfg.CacheEntries = 1
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	reqX := Request{Type: JobODE, Params: Params{Lambda0: 0.02, Tf: 40, Points: 50}}
	x, err := svc.Submit(reqX)
	if err != nil {
		t.Fatal(err)
	}
	mustSucceed(t, waitJob(t, svc, x.ID))
	// Y evicts X from the single-entry memory cache; X's blob stays on disk.
	y, err := svc.Submit(Request{Type: JobODE, Params: Params{Lambda0: 0.03, Tf: 40, Points: 50}})
	if err != nil {
		t.Fatal(err)
	}
	mustSucceed(t, waitJob(t, svc, y.ID))

	hit, err := svc.Submit(reqX)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.CacheHit || hit.Status != StatusSucceeded {
		t.Fatalf("evicted result: status %s, cache_hit %v — want a synchronous disk hit", hit.Status, hit.CacheHit)
	}
	if got := svc.Stats().Store.ResultHits; got != 1 {
		t.Errorf("disk hits = %d, want 1", got)
	}
}

// TestE2EJobIndex exercises the bounded GET /v1/jobs index: newest-first
// order, limit paging, status filtering, and 400s for malformed queries.
func TestE2EJobIndex(t *testing.T) {
	e := newE2E(t, Config{Workers: 2})
	var ids []string
	for seed := 1; seed <= 3; seed++ {
		job := e.submitAndWait(fmt.Sprintf(`{"type":"threshold","scenario":"tiny","params":{"seed":%d}}`, seed))
		mustSucceed(t, job)
		ids = append(ids, job.ID)
	}

	var page struct {
		Jobs  []Job `json:"jobs"`
		Count int   `json:"count"`
		Total int   `json:"total"`
	}
	e.do(http.MethodGet, "/v1/jobs?limit=2", "", http.StatusOK, &page)
	if page.Count != 2 || len(page.Jobs) != 2 || page.Total != 3 {
		t.Fatalf("limit=2 page: count %d, total %d, jobs %d", page.Count, page.Total, len(page.Jobs))
	}
	if page.Jobs[0].ID != ids[2] || page.Jobs[1].ID != ids[1] {
		t.Errorf("page order = [%s %s], want newest first [%s %s]",
			page.Jobs[0].ID, page.Jobs[1].ID, ids[2], ids[1])
	}

	e.do(http.MethodGet, "/v1/jobs?status=succeeded", "", http.StatusOK, &page)
	if page.Total != 3 || page.Count != 3 {
		t.Errorf("status=succeeded: count %d, total %d, want 3/3", page.Count, page.Total)
	}
	e.do(http.MethodGet, "/v1/jobs?status=failed", "", http.StatusOK, &page)
	if page.Total != 0 {
		t.Errorf("status=failed total = %d, want 0", page.Total)
	}

	e.do(http.MethodGet, "/v1/jobs?limit=0", "", http.StatusBadRequest, nil)
	e.do(http.MethodGet, "/v1/jobs?limit=x", "", http.StatusBadRequest, nil)
	e.do(http.MethodGet, "/v1/jobs?status=bogus", "", http.StatusBadRequest, nil)
}
