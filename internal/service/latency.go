package service

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rumornet/internal/obs"
)

// Latency attribution (DESIGN.md §14): end-to-end job latency decomposes
// into three segments, each observed into
// rumor_job_latency_segment_seconds{segment} and surfaced per job on
// GET /v1/jobs/{id} so a slow request is attributable at a glance.
//
//   - queue_wait: submission accepted -> execution start (local worker
//     dequeue, or cluster lease grant). Pure contention: it grows without
//     bound past saturation and is what the saturation detector watches.
//   - execute: execution start -> solver payload ready (remote: lease
//     grant -> result upload arrival, which folds in the network hop —
//     the coordinator cannot see inside the worker's wall clock without
//     trusting it).
//   - serialize: payload ready -> terminal status visible to pollers
//     (JSON marshal, result-blob write, terminal WAL record, publish).
//
// The segments are measured from the same time.Now() samples that already
// drive StartedAt/FinishedAt/ElapsedMS, so queue_wait+execute+serialize
// spans submission->visibility exactly.

// segment label values, also the JSON field order on JobLatency.
const (
	segQueueWait = "queue_wait"
	segExecute   = "execute"
	segSerialize = "serialize"
)

// JobLatency is the per-job latency attribution on GET /v1/jobs/{id},
// populated when the job reaches a terminal status via execution (cache
// hits skip it: they have no segments to attribute).
type JobLatency struct {
	QueueWaitMS float64 `json:"queue_wait_ms"`
	ExecuteMS   float64 `json:"execute_ms"`
	SerializeMS float64 `json:"serialize_ms"`
}

// segmentObserve records one job's segment decomposition into the
// per-segment histograms. A nil receiver field set (segments disabled via
// Config.DisableSegmentMetrics) makes it a no-op so the bench pair can
// price the hooks.
func (m *metrics) segmentObserve(queueWait, execute, serialize time.Duration) {
	if m.segments == nil {
		return
	}
	m.segments[segQueueWait].Observe(queueWait.Seconds())
	m.segments[segExecute].Observe(execute.Seconds())
	m.segments[segSerialize].Observe(serialize.Seconds())
}

// satWindow is the saturation detector: queue-wait samples feed a sliding
// window (two rotating HDR epochs, so the visible window spans between one
// and two rotation periods), and whenever the windowed p99 exceeds the
// configured budget the service reports saturated — a 0/1 gauge
// (rumor_saturated) plus a /readyz degraded reason, so load balancers and
// operators see queue collapse the moment the tail crosses the SLO, not
// after timeouts pile up.
type satWindow struct {
	budget float64       // queue-wait p99 budget, seconds
	epoch  time.Duration // rotation period (= half the sliding window)

	mu      sync.Mutex
	cur     *obs.HDR  // epoch being filled
	prev    *obs.HDR  // last full epoch; p99 reads merge cur+prev
	scratch *obs.HDR  // merge target, reused to avoid per-read allocation
	rotated time.Time // when cur last became current

	saturated atomic.Bool
	flips     atomic.Int64 // healthy->saturated transitions, for tests/metrics
}

// satQueueWaitHDR is the window's recorder layout: 100µs to 10min (the
// MaxTimeout cap) at <2% relative error — far finer than the fixed
// queueWaitBuckets, which matters because the detector compares a p99
// against a budget that may sit between two coarse bucket bounds.
func satQueueWaitHDR() *obs.HDR { return obs.NewHDR(1e-4, 600, 64) }

func newSatWindow(budget, window time.Duration) *satWindow {
	return &satWindow{
		budget:  budget.Seconds(),
		epoch:   window / 2,
		cur:     satQueueWaitHDR(),
		prev:    satQueueWaitHDR(),
		scratch: satQueueWaitHDR(),
	}
}

// observe records one queue-wait sample and re-evaluates saturation. now
// is passed in (not sampled here) so the caller's existing clock read is
// reused and tests can drive the rotation deterministically.
func (sw *satWindow) observe(queueWait time.Duration, now time.Time) {
	sw.mu.Lock()
	sw.rotateLocked(now)
	sw.cur.Record(queueWait.Seconds())
	p99 := sw.windowQuantileLocked(0.99)
	sw.mu.Unlock()

	over := p99 > sw.budget
	if over && !sw.saturated.Swap(true) {
		sw.flips.Add(1)
	} else if !over {
		sw.saturated.Store(false)
	}
}

// rotateLocked ages out epochs. One epoch elapsed: cur becomes prev. Two
// or more: the whole window is stale, both epochs clear (and with them the
// saturated verdict, on the next observe).
func (sw *satWindow) rotateLocked(now time.Time) {
	if sw.rotated.IsZero() {
		sw.rotated = now
		return
	}
	elapsed := now.Sub(sw.rotated)
	if elapsed < sw.epoch {
		return
	}
	if elapsed >= 2*sw.epoch {
		sw.cur.Reset()
		sw.prev.Reset()
	} else {
		sw.cur, sw.prev = sw.prev, sw.cur
		sw.cur.Reset()
	}
	sw.rotated = now
}

func (sw *satWindow) windowQuantileLocked(p float64) float64 {
	sw.scratch.Reset()
	sw.scratch.Merge(sw.cur)  //nolint:errcheck // identical layouts by construction
	sw.scratch.Merge(sw.prev) //nolint:errcheck
	return sw.scratch.Quantile(p)
}

// p99 reports the current windowed queue-wait p99 in seconds (0 with no
// samples in the window). Exported at rumor_queue_wait_window_p99_seconds.
func (sw *satWindow) p99() float64 {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.windowQuantileLocked(0.99)
}

// Saturated reports whether the windowed queue-wait p99 currently exceeds
// the budget.
func (sw *satWindow) Saturated() bool { return sw.saturated.Load() }

// reason renders the /readyz degraded detail for a saturated window.
func (sw *satWindow) reason() string {
	return fmt.Sprintf("saturated: queue-wait p99 %.0fms over the last %s exceeds the %.0fms budget",
		sw.p99()*1e3, 2*sw.epoch, sw.budget*1e3)
}
