package service

import (
	"io"
	"sort"
	"strings"

	"rumornet/internal/cluster"
	"rumornet/internal/obs"
	"rumornet/internal/obs/journal"
	"rumornet/internal/obs/trace"
)

// This file is the coordinator side of the cluster telemetry relay
// (DESIGN.md §13). Workers piggyback three kinds of observability payload
// on the requests they already make (heartbeats and result uploads):
//
//   - journal entries: worker-local lifecycle events merged into the job's
//     flight recorder, so GET /v1/jobs/{id}/events replays one complete
//     stream whether the job ran locally or on a node;
//   - finished spans: imported into the coordinator's span ring, so
//     /debug/events shows the coordinator's http.request → job.<type>
//     chain and the worker's stage.* spans as one trace;
//   - a registry snapshot + health sample: stored per worker, re-exported
//     on GET /metrics as rumor_worker_*{worker="..."} plus rumor_fleet_*
//     aggregates, and served on GET /v1/workers.

// Relay bounds: a single heartbeat cannot grow the journal or span ring by
// more than this, no matter what a buggy (or hostile) worker sends. The
// truncation is head-biased for spans (newest kept: the tail of the upload
// is the most recent work) and tail-biased for journal entries (oldest
// kept: replay order stays causal).
const (
	maxRelayJournal = 256
	maxRelaySpans   = 256
)

// mergeWorkerRelay folds a worker's uploaded journal entries and finished
// spans into the coordinator's own observability state. Entry identity is
// restamped server-side — JobID and TraceID are forced to the leased job's
// values and Seq is reallocated by the journal — so a worker can annotate
// only the job it holds a valid lease for (the caller has already fenced
// the token).
func (s *Service) mergeWorkerRelay(jobID, traceID string, entries []journal.Entry, spans []trace.SpanData) {
	if len(entries) > maxRelayJournal {
		entries = entries[:maxRelayJournal]
	}
	for _, e := range entries {
		e.JobID = jobID
		e.TraceID = traceID
		e.Seq = 0
		s.journal.Append(e)
	}
	if len(spans) > maxRelaySpans {
		spans = spans[len(spans)-maxRelaySpans:]
	}
	s.tracer.Import(spans)
}

// storeWorkerTelemetry records a worker's relayed registry snapshot (for
// the /metrics re-export) and health sample (for GET /v1/workers).
func (s *Service) storeWorkerTelemetry(workerID string, snap obs.Snapshot, tel *cluster.Telemetry) {
	if workerID == "" {
		return
	}
	if len(snap) > 0 {
		s.telMu.Lock()
		if s.workerSnaps == nil {
			s.workerSnaps = make(map[string]obs.Snapshot)
		}
		s.workerSnaps[workerID] = snap
		s.telMu.Unlock()
	}
	if tel != nil && s.table != nil {
		s.table.SetTelemetry(workerID, *tel)
	}
}

// dropWorkerTelemetry forgets a worker's relayed snapshot — the deregister
// path, so a drained node's series age out of /metrics with it.
func (s *Service) dropWorkerTelemetry(workerID string) {
	s.telMu.Lock()
	delete(s.workerSnaps, workerID)
	s.telMu.Unlock()
}

// renameWorkerMetric maps a worker-registry family name onto the
// coordinator's re-export namespace: rumor_X → rumor_worker_X. The worker
// label distinguishes nodes; the rename keeps the series disjoint from the
// coordinator's own rumor_* families on the shared /metrics page.
func renameWorkerMetric(name string) string {
	return "rumor_worker_" + strings.TrimPrefix(name, "rumor_")
}

// renameFleetMetric maps onto the cluster-aggregate namespace:
// rumor_X → rumor_fleet_X.
func renameFleetMetric(name string) string {
	return "rumor_fleet_" + strings.TrimPrefix(name, "rumor_")
}

// writeWorkerMetrics renders the relayed per-worker snapshots after the
// coordinator's own registry on /metrics:
//
//   - each worker's families, renamed rumor_worker_* and labelled with its
//     id (all workers merged first, so HELP/TYPE appear once per family);
//   - the fleet aggregate, renamed rumor_fleet_*: counters and gauges
//     summed, histograms bucket-merged across workers.
//
// Standalone services (no snapshots) write nothing.
func (s *Service) writeWorkerMetrics(w io.Writer) error {
	s.telMu.Lock()
	ids := make([]string, 0, len(s.workerSnaps))
	for id := range s.workerSnaps {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	labelled := make([]obs.Snapshot, 0, len(ids))
	raw := make([]obs.Snapshot, 0, len(ids))
	for _, id := range ids {
		snap := s.workerSnaps[id]
		labelled = append(labelled, snap.WithLabel(obs.L("worker", id)))
		raw = append(raw, snap)
	}
	s.telMu.Unlock()
	if len(raw) == 0 {
		return nil
	}
	perWorker := obs.MergeSnapshots(labelled...)
	if err := perWorker.WritePrometheus(w, renameWorkerMetric); err != nil {
		return err
	}
	fleet := obs.MergeSnapshots(raw...)
	return fleet.WritePrometheus(w, renameFleetMetric)
}
