package stats

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	got, err := Mean([]float64{1, 2, 3, 4})
	if err != nil || got != 2.5 {
		t.Errorf("Mean = %v, %v; want 2.5, nil", got, err)
	}
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("Mean(nil) error = %v, want ErrEmpty", err)
	}
}

func TestVarianceStdDev(t *testing.T) {
	v, err := Variance([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want %v", v, 32.0/7)
	}
	sd, _ := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(sd-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("StdDev = %v", sd)
	}
	if _, err := Variance([]float64{1}); err == nil {
		t.Error("Variance of single value: want error")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4}
	tests := []struct {
		q, want float64
	}{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75},
	}
	for _, tt := range tests {
		got, err := Quantile(xs, tt.q)
		if err != nil || math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, %v; want %v", tt.q, got, err, tt.want)
		}
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("Quantile(1.5): want error")
	}
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrEmpty) {
		t.Error("Quantile(nil): want ErrEmpty")
	}
	one, _ := Quantile([]float64{42}, 0.3)
	if one != 42 {
		t.Errorf("Quantile single = %v, want 42", one)
	}
}

func TestRMSE(t *testing.T) {
	got, err := RMSE([]float64{0, 0}, []float64{3, 4})
	if err != nil || math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Errorf("RMSE = %v, %v", got, err)
	}
	if _, err := RMSE([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch: want error")
	}
	if _, err := RMSE(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Error("empty: want ErrEmpty")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	got, err := MaxAbsDiff([]float64{1, 5}, []float64{2, 2})
	if err != nil || got != 3 {
		t.Errorf("MaxAbsDiff = %v, %v; want 3, nil", got, err)
	}
}

func TestKSDistanceIdentical(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	d, err := KSDistance(a, a)
	if err != nil || d > 1e-12 {
		t.Errorf("KS(a,a) = %v, %v; want 0", d, err)
	}
}

func TestKSDistanceDisjoint(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 11, 12}
	d, err := KSDistance(a, b)
	if err != nil || math.Abs(d-1) > 1e-12 {
		t.Errorf("KS(disjoint) = %v, want 1", d)
	}
}

func TestKSDistanceKnown(t *testing.T) {
	// Half of b shifted fully above a ⇒ KS = 0.5.
	a := []float64{1, 2, 3, 4}
	b := []float64{1, 2, 30, 40}
	d, _ := KSDistance(a, b)
	if math.Abs(d-0.5) > 1e-12 {
		t.Errorf("KS = %v, want 0.5", d)
	}
}

func TestLinearFit(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 2x + 1
	slope, icpt, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slope-2) > 1e-12 || math.Abs(icpt-1) > 1e-12 {
		t.Errorf("LinearFit = %v, %v; want 2, 1", slope, icpt)
	}
	if _, _, err := LinearFit([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("constant x: want error")
	}
}

func TestPowerLawFitRecoversExponent(t *testing.T) {
	// Sample from a discrete power law with gamma = 2.5 via inverse CDF of
	// the continuous approximation, then check the MLE recovers it.
	// A discrete power law with exponent gamma is well approximated by
	// rounding a continuous Pareto with xmin = kmin - 1/2 — exactly the
	// shift the Clauset MLE assumes. The approximation is documented to be
	// accurate for kmin >= 6 (Clauset–Shalizi–Newman 2009, §3.4).
	rng := rand.New(rand.NewSource(7))
	const (
		gamma = 2.5
		kmin  = 6
	)
	ks := make([]int, 20000)
	for i := range ks {
		u := rng.Float64()
		x := (kmin - 0.5) * math.Pow(1-u, -1/(gamma-1))
		ks[i] = int(math.Floor(x + 0.5))
		if ks[i] < kmin {
			ks[i] = kmin
		}
	}
	got, n, err := PowerLawFit(ks, kmin)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(ks) {
		t.Errorf("n = %d, want %d", n, len(ks))
	}
	if math.Abs(got-gamma) > 0.15 {
		t.Errorf("PowerLawFit gamma = %v, want ~%v", got, gamma)
	}
}

func TestPowerLawFitErrors(t *testing.T) {
	if _, _, err := PowerLawFit([]int{5, 6}, 0); err == nil {
		t.Error("kmin=0: want error")
	}
	if _, _, err := PowerLawFit([]int{1}, 5); !errors.Is(err, ErrEmpty) {
		t.Error("all filtered: want ErrEmpty")
	}
}

func TestHistogram(t *testing.T) {
	counts, err := Histogram([]float64{0.1, 0.2, 0.6, 0.9, -5, 99}, 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 3 || counts[1] != 3 {
		t.Errorf("Histogram = %v, want [3 3]", counts)
	}
	if _, err := Histogram(nil, 0, 1, 0); err == nil {
		t.Error("nbins=0: want error")
	}
	if _, err := Histogram(nil, 1, 0, 3); err == nil {
		t.Error("hi<=lo: want error")
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("Summarize = %+v", s)
	}
	if _, err := Summarize(nil); !errors.Is(err, ErrEmpty) {
		t.Error("empty: want ErrEmpty")
	}
	one, err := Summarize([]float64{7})
	if err != nil || one.StdDev != 0 {
		t.Errorf("single-element Summarize = %+v, %v", one, err)
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(raw []uint8, q1, q2 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		a, b := float64(q1)/255, float64(q2)/255
		if a > b {
			a, b = b, a
		}
		qa, err1 := Quantile(xs, a)
		qb, err2 := Quantile(xs, b)
		if err1 != nil || err2 != nil {
			return false
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return qa <= qb+1e-12 && qa >= sorted[0]-1e-12 && qb <= sorted[len(sorted)-1]+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: KS distance is symmetric and within [0, 1].
func TestQuickKSSymmetry(t *testing.T) {
	f := func(ra, rb []uint8) bool {
		if len(ra) == 0 || len(rb) == 0 {
			return true
		}
		a := make([]float64, len(ra))
		b := make([]float64, len(rb))
		for i, v := range ra {
			a[i] = float64(v)
		}
		for i, v := range rb {
			b[i] = float64(v)
		}
		d1, err1 := KSDistance(a, b)
		d2, err2 := KSDistance(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(d1-d2) < 1e-12 && d1 >= 0 && d1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: RMSE(a, a) == 0.
func TestQuickRMSEIdentity(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		a := make([]float64, len(raw))
		for i, v := range raw {
			a[i] = float64(v)
		}
		d, err := RMSE(a, a)
		return err == nil && d == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
