// Package stats provides the summary statistics, distribution distances and
// discrete power-law fitting used to calibrate and verify the synthetic
// Digg2009 network and to compare simulated trajectories.
package stats

import (
	"errors"
	"math"
	"sort"

	"rumornet/internal/floats"
)

// ErrEmpty is returned by statistics that are undefined on empty input.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs, or an error if xs is empty.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	return floats.Sum(xs) / float64(len(xs)), nil
}

// Variance returns the unbiased sample variance of xs. It requires at least
// two observations.
func Variance(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	m, _ := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1), nil
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. xs need not be sorted.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, errors.New("stats: quantile out of [0,1]")
	}
	s := floats.Clone(xs)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo], nil
	}
	w := pos - float64(lo)
	return s[lo]*(1-w) + s[hi]*w, nil
}

// Median returns the 0.5 quantile of xs.
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }

// RMSE returns the root-mean-square error between a and b.
// It returns an error if the slices differ in length or are empty.
func RMSE(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, errors.New("stats: RMSE length mismatch")
	}
	if len(a) == 0 {
		return 0, ErrEmpty
	}
	var ss float64
	for i := range a {
		d := a[i] - b[i]
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(a))), nil
}

// MaxAbsDiff returns the L-infinity distance between a and b.
func MaxAbsDiff(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, errors.New("stats: MaxAbsDiff length mismatch")
	}
	if len(a) == 0 {
		return 0, ErrEmpty
	}
	return floats.DistInf(a, b), nil
}

// KSDistance returns the two-sample Kolmogorov–Smirnov statistic between
// empirical samples a and b: the supremum distance between their empirical
// CDFs.
func KSDistance(a, b []float64) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, ErrEmpty
	}
	sa := floats.Clone(a)
	sb := floats.Clone(b)
	sort.Float64s(sa)
	sort.Float64s(sb)
	var (
		i, j int
		d    float64
	)
	na, nb := float64(len(sa)), float64(len(sb))
	for i < len(sa) && j < len(sb) {
		// Advance past all observations equal to the smaller current value
		// in BOTH samples so ties are handled symmetrically.
		v := sa[i]
		if sb[j] < v {
			v = sb[j]
		}
		for i < len(sa) && sa[i] == v {
			i++
		}
		for j < len(sb) && sb[j] == v {
			j++
		}
		if diff := math.Abs(float64(i)/na - float64(j)/nb); diff > d {
			d = diff
		}
	}
	return d, nil
}

// LinearFit returns the least-squares slope and intercept of y against x.
// It requires at least two points with non-constant x.
func LinearFit(x, y []float64) (slope, intercept float64, err error) {
	if len(x) != len(y) {
		return 0, 0, errors.New("stats: LinearFit length mismatch")
	}
	if len(x) < 2 {
		return 0, 0, ErrEmpty
	}
	mx, _ := Mean(x)
	my, _ := Mean(y)
	var sxx, sxy float64
	for i := range x {
		dx := x[i] - mx
		sxx += dx * dx
		sxy += dx * (y[i] - my)
	}
	if sxx == 0 {
		return 0, 0, errors.New("stats: LinearFit with constant x")
	}
	slope = sxy / sxx
	return slope, my - slope*mx, nil
}

// PowerLawFit estimates the exponent gamma of a discrete power law
// P(k) ∝ k^-gamma from integer observations ks with known kmin, using the
// Clauset–Shalizi–Newman continuous approximation
//
//	gamma ≈ 1 + n / Σ ln(k_i / (kmin - 1/2)).
//
// Observations below kmin are ignored. It returns an error if fewer than two
// observations survive.
func PowerLawFit(ks []int, kmin int) (gamma float64, n int, err error) {
	if kmin < 1 {
		return 0, 0, errors.New("stats: PowerLawFit needs kmin >= 1")
	}
	var sum float64
	for _, k := range ks {
		if k < kmin {
			continue
		}
		sum += math.Log(float64(k) / (float64(kmin) - 0.5))
		n++
	}
	if n < 2 {
		return 0, 0, ErrEmpty
	}
	return 1 + float64(n)/sum, n, nil
}

// Histogram counts observations into nbins equal-width bins over [lo, hi].
// Values outside the range are clamped into the edge bins.
func Histogram(xs []float64, lo, hi float64, nbins int) ([]int, error) {
	if nbins <= 0 {
		return nil, errors.New("stats: Histogram needs nbins > 0")
	}
	if hi <= lo {
		return nil, errors.New("stats: Histogram needs hi > lo")
	}
	counts := make([]int, nbins)
	width := (hi - lo) / float64(nbins)
	for _, x := range xs {
		bin := int((x - lo) / width)
		if bin < 0 {
			bin = 0
		}
		if bin >= nbins {
			bin = nbins - 1
		}
		counts[bin]++
	}
	return counts, nil
}

// Summary bundles the basic description of a sample.
type Summary struct {
	N            int
	Mean, StdDev float64
	Min, Max     float64
	Median, P90  float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	m, _ := Mean(xs)
	sd := 0.0
	if len(xs) > 1 {
		sd, _ = StdDev(xs)
	}
	med, _ := Median(xs)
	p90, _ := Quantile(xs, 0.9)
	return Summary{
		N:      len(xs),
		Mean:   m,
		StdDev: sd,
		Min:    floats.Min(xs),
		Max:    floats.Max(xs),
		Median: med,
		P90:    p90,
	}, nil
}
