package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"
)

// WriteArtifact renders a sweep as a BENCH-style JSON artifact
// (scripts/loadgen.sh → BENCH_PR9.json). The shape follows the repo's
// bench.sh conventions: machine-readable header, then one entry per line
// inside each array so scripts/benchdiff.sh can parse it line-oriented —
// the "latency" entries carry phase+endpoint+p99_ms on a single line,
// which is what the p99 regression gate keys on.
func WriteArtifact(w io.Writer, suite, note, mix string, hotFraction float64, res *Result) error {
	now := time.Now().UTC().Format(time.RFC3339)
	fmt.Fprintf(w, "{\n")
	fmt.Fprintf(w, "  %q: %q,\n", "suite", suite)
	fmt.Fprintf(w, "  %q: %q,\n", "date", now)
	fmt.Fprintf(w, "  %q: %q,\n", "go", runtime.Version())
	fmt.Fprintf(w, "  %q: %q,\n", "goos", runtime.GOOS)
	fmt.Fprintf(w, "  %q: %q,\n", "goarch", runtime.GOARCH)
	fmt.Fprintf(w, "  %q: %d,\n", "cpus", runtime.NumCPU())
	fmt.Fprintf(w, "  %q: %d,\n", "gomaxprocs", runtime.GOMAXPROCS(0))
	if note != "" {
		fmt.Fprintf(w, "  %q: %q,\n", "note", note)
	}
	fmt.Fprintf(w, "  %q: %q,\n", "target", res.Target)
	fmt.Fprintf(w, "  %q: %q,\n", "mix", mix)
	fmt.Fprintf(w, "  %q: %g,\n", "hot_fraction", hotFraction)

	fmt.Fprintf(w, "  %q: [\n", "phases")
	for i, ph := range res.Phases {
		line, err := json.Marshal(struct {
			Phase            string  `json:"phase"`
			OfferedRPS       float64 `json:"offered_rps"`
			AchievedRPS      float64 `json:"achieved_rps"`
			DurationS        float64 `json:"duration_s"`
			DrainS           float64 `json:"drain_s"`
			Requests         int64   `json:"requests"`
			Completed        int64   `json:"completed"`
			CacheHits        int64   `json:"cache_hits"`
			SurfaceHits      int64   `json:"surface_hits"`
			SurfaceFallbacks int64   `json:"surface_fallbacks"`
			Rejected         int64   `json:"rejected"`
			Errors           int64   `json:"errors"`
			Saturated        bool    `json:"saturated"`
		}{ph.Phase, round2(ph.OfferedRPS), round2(ph.AchievedRPS), round2(ph.DurationS),
			round2(ph.DrainS), ph.Requests, ph.Completed, ph.CacheHits,
			ph.SurfaceHits, ph.SurfaceFallbacks, ph.Rejected, ph.Errors, ph.Saturated})
		if err != nil {
			return err
		}
		comma := ","
		if i == len(res.Phases)-1 {
			comma = ""
		}
		fmt.Fprintf(w, "    %s%s\n", line, comma)
	}
	fmt.Fprintf(w, "  ],\n")

	fmt.Fprintf(w, "  %q: [\n", "latency")
	type flat struct {
		Phase string `json:"phase"`
		EndpointStats
	}
	var flats []flat
	for _, ph := range res.Phases {
		for _, ep := range ph.Endpoints {
			ep.MeanMS, ep.P50MS, ep.P90MS = round4(ep.MeanMS), round4(ep.P50MS), round4(ep.P90MS)
			ep.P99MS, ep.P999MS, ep.MaxMS = round4(ep.P99MS), round4(ep.P999MS), round4(ep.MaxMS)
			ep.RelErrPct = round4(ep.RelErrPct)
			flats = append(flats, flat{ph.Phase, ep})
		}
	}
	for i, f := range flats {
		line, err := json.Marshal(f)
		if err != nil {
			return err
		}
		comma := ","
		if i == len(flats)-1 {
			comma = ""
		}
		fmt.Fprintf(w, "    %s%s\n", line, comma)
	}
	fmt.Fprintf(w, "  ]\n}\n")
	return nil
}

func round2(v float64) float64 { return roundTo(v, 100) }
func round4(v float64) float64 { return roundTo(v, 10000) }

func roundTo(v, scale float64) float64 {
	if v >= 0 {
		return float64(int64(v*scale+0.5)) / scale
	}
	return float64(int64(v*scale-0.5)) / scale
}
