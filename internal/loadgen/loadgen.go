// Package loadgen is rumord's open-loop load generator (DESIGN.md §14):
// it offers requests to the POST /v1/jobs → poll API at a constant
// configured rate — on a schedule fixed before the server's behaviour is
// known — and measures every latency from the request's *scheduled* send
// time, not the moment the client got around to sending it.
//
// The open-loop discipline is the whole point. A closed-loop driver (N
// workers, each submitting the moment the previous response lands) slows
// its own offered rate exactly when the server stalls, so the stall
// swallows the requests that would have recorded it — Gil Tene's
// "coordinated omission". Measuring from the scheduled tick instead means
// a request that spent 900ms waiting for an in-flight slot plus 100ms on
// the wire reports one second, which is precisely what a user arriving at
// that tick would have experienced. Past saturation the measured latency
// then grows without bound — the signal the saturation detector and the
// BENCH_PR9 sweep exist to capture — instead of plateauing at a
// comfortable lie.
//
// Latencies land in obs.HDR histograms (bounded relative error at every
// scale, lossless merge), one per endpoint: the submit round trip, the
// end-to-end submit→terminal path, and the three server-attributed
// segments relayed back on the terminal job record.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rumornet/internal/obs"
)

// Endpoint names recorded per phase. "submit" is the POST round trip,
// "e2e" scheduled-send→terminal-status, "query" the GET /v1/query round
// trip (surface hits answer inside it; fallbacks additionally ride the
// e2e histogram), and the segment: entries are the server's own
// attribution relayed on the terminal job record.
const (
	EndpointSubmit = "submit"
	EndpointE2E    = "e2e"
	EndpointQuery  = "query"
	SegQueueWait   = "segment:queue_wait"
	SegExecute     = "segment:execute"
	SegSerialize   = "segment:serialize"
)

var endpoints = []string{EndpointSubmit, EndpointE2E, EndpointQuery, SegQueueWait, SegExecute, SegSerialize}

// Query-surface grid bounds: BuildQuerySurface constructs the threshold
// eps1 x eps2 surface over exactly this hull, and queryURL samples inside
// it (hits) or far outside it (forced fallbacks).
const (
	querySurfEps1Min, querySurfEps1Max = 0.10, 0.40
	querySurfEps2Min, querySurfEps2Max = 0.02, 0.10
	querySurfPoints                    = 4
)

// MixEntry weights one job type in the offered traffic.
type MixEntry struct {
	Type   string // "ode", "threshold", "abm", "fbsm"
	Weight int
}

// Phase is one constant-rate segment of the sweep.
type Phase struct {
	Name     string        // artifact label, e.g. "r25"
	Rate     float64       // offered requests per second
	Duration time.Duration // dispatch window (completions may drain past it)
}

// Config parameterizes a run. The zero value is not usable; fill BaseURL
// (or drive an httptest server) and call Run.
type Config struct {
	// BaseURL is the rumord root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Client is the HTTP client (default: http.DefaultClient with
	// sensible connection reuse left to the transport).
	Client *http.Client
	// Mix weights the offered job types (default: 100% ode).
	Mix []MixEntry
	// Scenario is the scenario name every request targets. Empty targets
	// the server's built-in Digg2009 scenario — heavyweight jobs; register
	// and point at a small one for high-rate sweeps (see EnsureScenario).
	Scenario string
	// HotFraction of requests draw their seed from a small hot set of
	// HotKeys distinct values, so they hit the result cache after first
	// touch; the rest get a unique seed and always execute (cache-cold).
	HotFraction float64
	// HotKeys is the size of the hot key set (default 8).
	HotKeys int
	// QueryFraction routes this share of scheduled requests to the
	// GET /v1/query interpolated-answer path instead of submit→poll; call
	// BuildQuerySurface first or every query falls back to an exact job.
	QueryFraction float64
	// QueryFallbackFraction of the query requests aim outside the covered
	// region on purpose, so a sweep prices the fallback path alongside the
	// hits. The rest sample strictly inside the surface hull.
	QueryFallbackFraction float64
	// MaxInFlight bounds concurrently outstanding requests (default 512).
	// A request that had to wait for a slot still measures from its
	// scheduled tick — the wait IS latency, not an excuse.
	MaxInFlight int
	// PollInterval is the GET /v1/jobs/{id} poll cadence (default 2ms).
	PollInterval time.Duration
	// Progress, when non-nil, receives one human-readable line per phase.
	Progress io.Writer
}

func (c Config) withDefaults() Config {
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	if len(c.Mix) == 0 {
		c.Mix = []MixEntry{{Type: "ode", Weight: 1}}
	}
	if c.HotKeys <= 0 {
		c.HotKeys = 8
	}
	if c.HotFraction < 0 {
		c.HotFraction = 0
	} else if c.HotFraction > 1 {
		c.HotFraction = 1
	}
	if c.QueryFraction < 0 {
		c.QueryFraction = 0
	} else if c.QueryFraction > 1 {
		c.QueryFraction = 1
	}
	if c.QueryFallbackFraction < 0 {
		c.QueryFallbackFraction = 0
	} else if c.QueryFallbackFraction > 1 {
		c.QueryFallbackFraction = 1
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 512
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 2 * time.Millisecond
	}
	return c
}

// EndpointStats is one endpoint's latency summary within a phase, all in
// milliseconds. RelErrPct bounds the quantile estimation error inherited
// from the HDR bucket width (the extremes are exact).
type EndpointStats struct {
	Endpoint  string  `json:"endpoint"`
	Count     int64   `json:"count"`
	MeanMS    float64 `json:"mean_ms"`
	P50MS     float64 `json:"p50_ms"`
	P90MS     float64 `json:"p90_ms"`
	P99MS     float64 `json:"p99_ms"`
	P999MS    float64 `json:"p999_ms"`
	MaxMS     float64 `json:"max_ms"`
	RelErrPct float64 `json:"rel_err_pct"`
}

// PhaseResult is one phase's outcome: offered vs achieved rate, outcome
// counts, the server's saturation verdict, and per-endpoint quantiles.
// Rejected counts submissions the server shed with 503 (queue full or
// draining) — deliberate admission control under overload, reported apart
// from Errors so a sweep past saturation doesn't read as broken.
type PhaseResult struct {
	Phase       string  `json:"phase"`
	OfferedRPS  float64 `json:"offered_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
	DurationS   float64 `json:"duration_s"` // dispatch window
	DrainS      float64 `json:"drain_s"`    // dispatch start -> last completion
	Requests    int64   `json:"requests"`
	Completed   int64   `json:"completed"`
	CacheHits   int64   `json:"cache_hits"`
	// SurfaceHits / SurfaceFallbacks split the query-mix traffic: answered
	// by interpolation vs routed to the exact-job fallback.
	SurfaceHits      int64           `json:"surface_hits"`
	SurfaceFallbacks int64           `json:"surface_fallbacks"`
	Rejected         int64           `json:"rejected"`
	Errors           int64           `json:"errors"`
	Saturated        bool            `json:"saturated"` // rumor_saturated seen 1 during the phase
	Endpoints        []EndpointStats `json:"endpoints"`
}

// Result is a whole sweep.
type Result struct {
	Target string        `json:"target"`
	Phases []PhaseResult `json:"phases"`
}

// recorders hold one HDR per endpoint behind a mutex; request goroutines
// are few hundred per second, so contention is negligible and the merge
// discipline stays trivial.
type recorders struct {
	mu   sync.Mutex
	hdrs map[string]*obs.HDR
}

func newRecorders() *recorders {
	r := &recorders{hdrs: make(map[string]*obs.HDR, len(endpoints))}
	for _, ep := range endpoints {
		r.hdrs[ep] = obs.DefaultLatencyHDR()
	}
	return r
}

func (r *recorders) record(endpoint string, d time.Duration) {
	r.mu.Lock()
	r.hdrs[endpoint].Record(d.Seconds())
	r.mu.Unlock()
}

func (r *recorders) stats() []EndpointStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]EndpointStats, 0, len(endpoints))
	for _, ep := range endpoints {
		h := r.hdrs[ep]
		if h.Count() == 0 {
			continue
		}
		out = append(out, EndpointStats{
			Endpoint:  ep,
			Count:     h.Count(),
			MeanMS:    h.Mean() * 1e3,
			P50MS:     h.Quantile(0.50) * 1e3,
			P90MS:     h.Quantile(0.90) * 1e3,
			P99MS:     h.Quantile(0.99) * 1e3,
			P999MS:    h.Quantile(0.999) * 1e3,
			MaxMS:     h.Max() * 1e3,
			RelErrPct: h.RelativeError() * 100,
		})
	}
	return out
}

// Generator runs sweeps against one target.
type Generator struct {
	cfg  Config
	cold atomic.Int64 // unique-seed counter across the whole run
}

// New builds a Generator after applying Config defaults.
func New(cfg Config) *Generator {
	return &Generator{cfg: cfg.withDefaults()}
}

// EnsureScenario registers a deliberately small scenario (600-node degree
// mix) under the configured name so high-rate sweeps measure the serving
// stack, not 71k-user solves. Safe to call against a server that already
// has it (409 is success); a no-op when Config.Scenario is empty.
func (g *Generator) EnsureScenario(ctx context.Context) error {
	if g.cfg.Scenario == "" {
		return nil
	}
	body := fmt.Sprintf(`{"name":%q,"degrees":[2,4,8],"probs":[0.5,0.3,0.2]}`, g.cfg.Scenario)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		g.cfg.BaseURL+"/v1/scenarios", strings.NewReader(body))
	if err != nil {
		return err
	}
	resp, err := g.cfg.Client.Do(req)
	if err != nil {
		return fmt.Errorf("loadgen: register scenario: %w", err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusConflict {
		return fmt.Errorf("loadgen: register scenario: unexpected status %d", resp.StatusCode)
	}
	return nil
}

// Run executes the phases in order and returns the sweep result. Phases
// share the generator's cold-key counter (a cold key never repeats across
// phases) but record into fresh histograms each.
func (g *Generator) Run(ctx context.Context, phases []Phase) (*Result, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("loadgen: no phases")
	}
	res := &Result{Target: g.cfg.BaseURL}
	for _, ph := range phases {
		pr, err := g.runPhase(ctx, ph)
		if err != nil {
			return res, err
		}
		res.Phases = append(res.Phases, *pr)
		if w := g.cfg.Progress; w != nil {
			fmt.Fprintf(w, "phase %-8s offered %7.1f rps  achieved %7.1f rps  p99 %s  shed %d  errors %d  saturated=%v\n",
				pr.Phase, pr.OfferedRPS, pr.AchievedRPS, p99String(pr), pr.Rejected, pr.Errors, pr.Saturated)
		}
	}
	return res, nil
}

func p99String(pr *PhaseResult) string {
	for _, ep := range pr.Endpoints {
		if ep.Endpoint == EndpointE2E {
			return fmt.Sprintf("%.1fms", ep.P99MS)
		}
	}
	return "n/a"
}

func (g *Generator) runPhase(ctx context.Context, ph Phase) (*PhaseResult, error) {
	if ph.Rate <= 0 || ph.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: phase %q needs positive rate and duration", ph.Name)
	}
	n := int(math.Round(ph.Rate * ph.Duration.Seconds()))
	if n < 1 {
		n = 1
	}
	rec := newRecorders()
	pr := &PhaseResult{
		Phase:      ph.Name,
		OfferedRPS: ph.Rate,
		DurationS:  ph.Duration.Seconds(),
		Requests:   int64(n),
	}
	var (
		completed atomic.Int64
		cacheHits atomic.Int64
		surfHits  atomic.Int64
		surfFalls atomic.Int64
		rejected  atomic.Int64
		errs      atomic.Int64
		saturated atomic.Bool
		wg        sync.WaitGroup
	)
	sem := make(chan struct{}, g.cfg.MaxInFlight)
	interval := time.Duration(float64(time.Second) / ph.Rate)
	qi := 0 // query-request index, advanced only on query dispatches
	start := time.Now()

	// Saturation sampler: the gauge can flip mid-phase and (with a short
	// window) flip back before the drain ends, so poll while dispatching.
	samplerCtx, stopSampler := context.WithCancel(ctx)
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		t := time.NewTicker(100 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-samplerCtx.Done():
				return
			case <-t.C:
				if g.scrapeSaturated(samplerCtx) {
					saturated.Store(true)
				}
			}
		}
	}()

	for i := 0; i < n; i++ {
		scheduled := start.Add(time.Duration(i) * interval)
		if d := time.Until(scheduled); d > 0 {
			select {
			case <-ctx.Done():
				stopSampler()
				samplerWG.Wait()
				return nil, ctx.Err()
			case <-time.After(d):
			}
		}
		// Dispatch never blocks on the in-flight bound: the goroutine
		// acquires its slot itself, and the wait is part of the measured
		// latency because the clock started at `scheduled`.
		if g.isQuery(i) {
			u := g.queryURL(qi)
			qi++
			wg.Add(1)
			go func(scheduled time.Time, u string) {
				defer wg.Done()
				select {
				case sem <- struct{}{}:
				case <-ctx.Done():
					errs.Add(1)
					return
				}
				defer func() { <-sem }()
				o, err := g.queryOne(ctx, scheduled, u, rec)
				switch {
				case err != nil:
					errs.Add(1)
				case o == outcomeSurfaceHit:
					surfHits.Add(1)
					completed.Add(1)
				case o == outcomeShed:
					rejected.Add(1)
				default:
					surfFalls.Add(1)
					completed.Add(1)
				}
			}(scheduled, u)
			continue
		}
		body := g.requestBody(i)
		wg.Add(1)
		go func(scheduled time.Time, body []byte) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				errs.Add(1)
				return
			}
			defer func() { <-sem }()
			o, err := g.one(ctx, scheduled, body, rec)
			switch {
			case err != nil:
				errs.Add(1)
			case o == outcomeHit:
				cacheHits.Add(1)
				completed.Add(1)
			case o == outcomeShed:
				rejected.Add(1)
			default:
				completed.Add(1)
			}
		}(scheduled, body)
	}
	wg.Wait()
	drain := time.Since(start)
	// One final scrape after the drain: with a generous window the gauge
	// holds its verdict well past the burst that caused it.
	if g.scrapeSaturated(ctx) {
		saturated.Store(true)
	}
	stopSampler()
	samplerWG.Wait()

	pr.DrainS = drain.Seconds()
	pr.Completed = completed.Load()
	pr.CacheHits = cacheHits.Load()
	pr.SurfaceHits = surfHits.Load()
	pr.SurfaceFallbacks = surfFalls.Load()
	pr.Rejected = rejected.Load()
	pr.Errors = errs.Load()
	pr.Saturated = saturated.Load()
	if drain > 0 {
		pr.AchievedRPS = float64(pr.Completed) / drain.Seconds()
	}
	pr.Endpoints = rec.stats()
	return pr, nil
}

// requestBody builds the i-th request deterministically: the mix rotates
// by cumulative weight, and the hot/cold split interleaves evenly (request
// i is hot iff the running hot quota crosses an integer at i).
func (g *Generator) requestBody(i int) []byte {
	total := 0
	for _, m := range g.cfg.Mix {
		total += m.Weight
	}
	slot := i % total
	var typ string
	for _, m := range g.cfg.Mix {
		if slot < m.Weight {
			typ = m.Type
			break
		}
		slot -= m.Weight
	}

	hot := int(float64(i+1)*g.cfg.HotFraction) > int(float64(i)*g.cfg.HotFraction)
	var seed int64
	if hot {
		seed = int64(i%g.cfg.HotKeys) + 1
	} else {
		seed = 1_000_000 + g.cold.Add(1) // disjoint from the hot range
	}

	var b bytes.Buffer
	b.WriteString(`{"type":"`)
	b.WriteString(typ)
	b.WriteString(`"`)
	if g.cfg.Scenario != "" {
		fmt.Fprintf(&b, `,"scenario":%q`, g.cfg.Scenario)
	}
	// Small fixed parameter sets per type, so the cache key varies only
	// with the seed: hot seeds repeat (hits), cold seeds never do.
	switch typ {
	case "threshold":
		fmt.Fprintf(&b, `,"params":{"r0":1.6,"tf":30,"seed":%d}}`, seed)
	case "abm":
		fmt.Fprintf(&b, `,"params":{"lambda0":0.05,"tf":10,"trials":1,"nodes":400,"seed":%d}}`, seed)
	case "fbsm":
		fmt.Fprintf(&b, `,"params":{"lambda0":0.05,"tf":20,"grid":120,"eps_max":0.6,"seed":%d}}`, seed)
	default: // ode
		fmt.Fprintf(&b, `,"params":{"lambda0":0.02,"tf":40,"points":50,"seed":%d}}`, seed)
	}
	return b.Bytes()
}

// jobView is the slice of the job record the generator reads back.
type jobView struct {
	ID       string `json:"id"`
	Status   string `json:"status"`
	CacheHit bool   `json:"cache_hit"`
	Error    string `json:"error"`
	Latency  *struct {
		QueueWaitMS float64 `json:"queue_wait_ms"`
		ExecuteMS   float64 `json:"execute_ms"`
		SerializeMS float64 `json:"serialize_ms"`
	} `json:"latency"`
}

func terminal(status string) bool {
	switch status {
	case "succeeded", "failed", "cancelled":
		return true
	}
	return false
}

// outcome classifies one completed request.
type outcome int

const (
	outcomeDone       outcome = iota // executed to terminal success
	outcomeHit                       // answered synchronously from the result cache
	outcomeShed                      // shed by admission control (503: queue full / draining / saturated)
	outcomeSurfaceHit                // answered by surface interpolation
	outcomeFallback                  // query fell back to the exact job path
)

// isQuery decides whether the i-th scheduled request goes to the query
// endpoint, interleaving evenly at QueryFraction (same integer-crossing
// trick as the hot/cold split).
func (g *Generator) isQuery(i int) bool {
	f := g.cfg.QueryFraction
	return int(float64(i+1)*f) > int(float64(i)*f)
}

// queryURL builds the qi-th query deterministically: fallbacks interleave
// at QueryFallbackFraction and aim far outside the grid; the rest take a
// golden-ratio low-discrepancy walk strictly inside the hull, so hits
// sample the whole surface instead of one cell.
func (g *Generator) queryURL(qi int) string {
	f := g.cfg.QueryFallbackFraction
	fallback := int(float64(qi+1)*f) > int(float64(qi)*f)
	var eps1, eps2 float64
	if fallback {
		eps1, eps2 = 0.9, 0.05 // eps1 far above the grid max: uncovered
	} else {
		u := math.Mod(float64(qi)*0.6180339887498949, 1)
		v := math.Mod(float64(qi)*0.7548776662466927, 1)
		eps1 = querySurfEps1Min + (0.02+0.96*u)*(querySurfEps1Max-querySurfEps1Min)
		eps2 = querySurfEps2Min + (0.02+0.96*v)*(querySurfEps2Max-querySurfEps2Min)
	}
	var b strings.Builder
	b.WriteString(g.cfg.BaseURL)
	b.WriteString("/v1/query?type=threshold")
	if g.cfg.Scenario != "" {
		b.WriteString("&scenario=")
		b.WriteString(url.QueryEscape(g.cfg.Scenario))
	}
	fmt.Fprintf(&b, "&eps1=%.6f&eps2=%.6f", eps1, eps2)
	return b.String()
}

// queryOne drives one GET /v1/query: a surface hit answers inside the
// round trip; a fallback envelope carries the exact job, which is polled
// to terminal so the e2e histogram prices the full fallback path.
func (g *Generator) queryOne(ctx context.Context, scheduled time.Time, rawURL string, rec *recorders) (outcome, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rawURL, nil)
	if err != nil {
		return outcomeDone, err
	}
	resp, err := g.cfg.Client.Do(req)
	if err != nil {
		return outcomeDone, err
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return outcomeDone, err
	}
	rec.record(EndpointQuery, time.Since(scheduled))

	switch resp.StatusCode {
	case http.StatusOK, http.StatusAccepted:
	case http.StatusServiceUnavailable:
		return outcomeShed, nil
	default:
		return outcomeDone, fmt.Errorf("loadgen: query status %d: %s", resp.StatusCode, raw)
	}
	var env struct {
		Source string   `json:"source"`
		Job    *jobView `json:"job"`
	}
	if err := json.Unmarshal(raw, &env); err != nil {
		return outcomeDone, fmt.Errorf("loadgen: decode query response: %w", err)
	}
	if env.Source == "surface" {
		return outcomeSurfaceHit, nil
	}
	if env.Job == nil {
		return outcomeDone, fmt.Errorf("loadgen: fallback envelope carries no job")
	}
	job := *env.Job
	if err := g.pollJob(ctx, &job, rec); err != nil {
		return outcomeDone, err
	}
	rec.record(EndpointE2E, time.Since(scheduled))
	if job.Status != "succeeded" {
		return outcomeDone, fmt.Errorf("loadgen: fallback job %s %s: %s", job.ID, job.Status, job.Error)
	}
	return outcomeFallback, nil
}

// one drives a single request: submit, then poll to terminal. Every
// latency is measured from scheduled.
func (g *Generator) one(ctx context.Context, scheduled time.Time, body []byte, rec *recorders) (outcome, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		g.cfg.BaseURL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return outcomeDone, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := g.cfg.Client.Do(req)
	if err != nil {
		return outcomeDone, err
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return outcomeDone, err
	}
	submitDone := time.Now()
	rec.record(EndpointSubmit, submitDone.Sub(scheduled))

	switch resp.StatusCode {
	case http.StatusOK, http.StatusAccepted:
	case http.StatusServiceUnavailable:
		// Deliberate load shedding, the server's last defense past
		// saturation — an expected sweep outcome, not a failure. The 503
		// round trip stays in the submit histogram.
		return outcomeShed, nil
	default:
		return outcomeDone, fmt.Errorf("loadgen: submit status %d: %s", resp.StatusCode, raw)
	}

	var job jobView
	if err := json.Unmarshal(raw, &job); err != nil {
		return outcomeDone, fmt.Errorf("loadgen: decode submit response (%d): %w", resp.StatusCode, err)
	}
	if resp.StatusCode == http.StatusOK { // cache hit: terminal synchronously
		rec.record(EndpointE2E, submitDone.Sub(scheduled))
		return outcomeHit, nil
	}

	if err := g.pollJob(ctx, &job, rec); err != nil {
		return outcomeDone, err
	}
	rec.record(EndpointE2E, time.Since(scheduled))
	if job.Status != "succeeded" {
		return outcomeDone, fmt.Errorf("loadgen: job %s %s: %s", job.ID, job.Status, job.Error)
	}
	return outcomeDone, nil
}

// pollJob drives GET /v1/jobs/{id} until the job settles, then records the
// server-attributed segments from the terminal record.
func (g *Generator) pollJob(ctx context.Context, job *jobView, rec *recorders) error {
	for !terminal(job.Status) {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(g.cfg.PollInterval):
		}
		preq, err := http.NewRequestWithContext(ctx, http.MethodGet,
			g.cfg.BaseURL+"/v1/jobs/"+job.ID, nil)
		if err != nil {
			return err
		}
		presp, err := g.cfg.Client.Do(preq)
		if err != nil {
			return err
		}
		praw, err := io.ReadAll(presp.Body)
		presp.Body.Close()
		if err != nil {
			return err
		}
		if presp.StatusCode != http.StatusOK {
			return fmt.Errorf("loadgen: poll status %d: %s", presp.StatusCode, praw)
		}
		if err := json.Unmarshal(praw, job); err != nil {
			return fmt.Errorf("loadgen: decode poll response: %w", err)
		}
	}
	if job.Latency != nil {
		rec.record(SegQueueWait, time.Duration(job.Latency.QueueWaitMS*float64(time.Millisecond)))
		rec.record(SegExecute, time.Duration(job.Latency.ExecuteMS*float64(time.Millisecond)))
		rec.record(SegSerialize, time.Duration(job.Latency.SerializeMS*float64(time.Millisecond)))
	}
	return nil
}

// BuildQuerySurface asks the server to construct the threshold response
// surface the query mix targets (eps1 x eps2 over the documented grid on
// Config.Scenario) and blocks until it is ready, so a sweep prices
// serving, not construction. Idempotent: an identical resident or
// persisted surface comes back ready immediately.
func (g *Generator) BuildQuerySurface(ctx context.Context) error {
	scenario := ""
	if g.cfg.Scenario != "" {
		scenario = fmt.Sprintf(",\"scenario\":%q", g.cfg.Scenario)
	}
	body := fmt.Sprintf(
		`{"type":"threshold"%s,"axes":[{"name":"eps1","min":%g,"max":%g,"points":%d},{"name":"eps2","min":%g,"max":%g,"points":%d}]}`,
		scenario,
		querySurfEps1Min, querySurfEps1Max, querySurfPoints,
		querySurfEps2Min, querySurfEps2Max, querySurfPoints)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		g.cfg.BaseURL+"/v1/surfaces", strings.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := g.cfg.Client.Do(req)
	if err != nil {
		return fmt.Errorf("loadgen: build surface: %w", err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("loadgen: build surface: status %d: %s", resp.StatusCode, raw)
	}
	var info struct {
		Key    string `json:"key"`
		Status string `json:"status"`
		Error  string `json:"error"`
	}
	if err := json.Unmarshal(raw, &info); err != nil {
		return fmt.Errorf("loadgen: decode surface response: %w", err)
	}
	for info.Status == "building" {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(25 * time.Millisecond):
		}
		lreq, err := http.NewRequestWithContext(ctx, http.MethodGet,
			g.cfg.BaseURL+"/v1/surfaces", nil)
		if err != nil {
			return err
		}
		lresp, err := g.cfg.Client.Do(lreq)
		if err != nil {
			return err
		}
		lraw, err := io.ReadAll(lresp.Body)
		lresp.Body.Close()
		if err != nil {
			return err
		}
		if lresp.StatusCode != http.StatusOK {
			return fmt.Errorf("loadgen: list surfaces: status %d: %s", lresp.StatusCode, lraw)
		}
		var list struct {
			Surfaces []struct {
				Key    string `json:"key"`
				Status string `json:"status"`
				Error  string `json:"error"`
			} `json:"surfaces"`
		}
		if err := json.Unmarshal(lraw, &list); err != nil {
			return fmt.Errorf("loadgen: decode surface list: %w", err)
		}
		found := false
		for _, s := range list.Surfaces {
			if s.Key == info.Key {
				info.Status, info.Error = s.Status, s.Error
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("loadgen: surface %s vanished mid-build", info.Key)
		}
	}
	if info.Status != "ready" {
		return fmt.Errorf("loadgen: surface build %s: %s", info.Status, info.Error)
	}
	return nil
}

// scrapeSaturated reads the rumor_saturated gauge off /metrics; any
// failure reads as "not saturated" (the sweep must not die because a
// scrape raced a restart).
func (g *Generator) scrapeSaturated(ctx context.Context) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, g.cfg.BaseURL+"/metrics", nil)
	if err != nil {
		return false
	}
	resp, err := g.cfg.Client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		return false
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, "rumor_saturated ") {
			return strings.TrimSpace(strings.TrimPrefix(line, "rumor_saturated ")) != "0"
		}
	}
	return false
}
