package loadgen

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rumornet/internal/service"
)

// newTestTarget stands up an in-process rumord (the same handler stack the
// daemon serves) with a saturation budget below the detector's HDR floor
// (100µs), so the very first executed job's queue wait flips the gauge —
// the smoke then proves the whole submit→poll→scrape pipeline without
// betting on this box's real capacity (the full tier-1 suite may be
// compiling the rest of the repo on the same CPU, slowing jobs 10x).
func newTestTarget(t *testing.T) *httptest.Server {
	t.Helper()
	svc, err := service.New(service.Config{
		Workers:          1,
		SaturationBudget: time.Microsecond,
		SaturationWindow: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return ts
}

// TestSmokeSweep is the tier-2 loadgen smoke (scripts/verify.sh): a short
// two-phase sweep against an in-process rumord on the sub-millisecond
// "loadtiny" scenario. Deliberately timing-robust — it asserts the
// pipeline (scheduled-tick dispatch, submit→poll, cache-hit accounting,
// segment relay, saturation scrape, artifact schema), not this box's
// capacity: the micro saturation budget guarantees the flip, and cache
// hits are asserted on the second phase only, whose hot keys the fully
// drained first phase has already cached. The real past-capacity story
// (achieved < offered, queue-wait collapse) is recorded in BENCH_PR9.json
// and proven deterministically in internal/service's saturation E2E.
func TestSmokeSweep(t *testing.T) {
	ts := newTestTarget(t)
	g := New(Config{
		BaseURL:     ts.URL,
		Client:      ts.Client(),
		HotFraction: 0.5,
		Scenario:    "loadtiny",
		Mix:         []MixEntry{{Type: "ode", Weight: 1}},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := g.EnsureScenario(ctx); err != nil {
		t.Fatal(err)
	}

	res, err := g.Run(ctx, []Phase{
		{Name: "warm", Rate: 50, Duration: 500 * time.Millisecond},
		{Name: "burst", Rate: 100, Duration: 500 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 2 {
		t.Fatalf("got %d phases, want 2", len(res.Phases))
	}
	for _, ph := range res.Phases {
		if ph.Errors > 0 {
			t.Errorf("phase %s: %d errors", ph.Phase, ph.Errors)
		}
		if ph.Completed != ph.Requests {
			t.Errorf("phase %s: completed %d of %d", ph.Phase, ph.Completed, ph.Requests)
		}
		if ph.AchievedRPS <= 0 {
			t.Errorf("phase %s: achieved rate not self-reported", ph.Phase)
		}
		for _, ep := range ph.Endpoints {
			if ep.Count == 0 || ep.P50MS <= 0 || ep.P99MS <= 0 || ep.P999MS < ep.P99MS {
				t.Errorf("phase %s endpoint %s: degenerate quantiles %+v", ph.Phase, ep.Endpoint, ep)
			}
		}
		// Segment endpoints must be present: the server attributed
		// latency on every executed job.
		found := map[string]bool{}
		for _, ep := range ph.Endpoints {
			found[ep.Endpoint] = true
		}
		for _, want := range []string{EndpointSubmit, EndpointE2E, SegQueueWait, SegExecute, SegSerialize} {
			if !found[want] {
				t.Errorf("phase %s: endpoint %q missing", ph.Phase, want)
			}
		}
	}
	past := res.Phases[1]
	if past.CacheHits == 0 {
		t.Error("second phase repeated the warmed hot keys but saw no cache hits")
	}
	if !past.Saturated {
		t.Error("micro saturation budget did not flip the gauge: the scrape path is broken")
	}

	// The artifact must be valid JSON carrying the sweep.
	var sb strings.Builder
	if err := WriteArtifact(&sb, "smoke", "", "ode=1", 0.5, res); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Suite  string `json:"suite"`
		Target string `json:"target"`
		Phases []struct {
			Phase     string  `json:"phase"`
			Offered   float64 `json:"offered_rps"`
			Achieved  float64 `json:"achieved_rps"`
			Saturated bool    `json:"saturated"`
		} `json:"phases"`
		Latency []struct {
			Phase    string  `json:"phase"`
			Endpoint string  `json:"endpoint"`
			P99MS    float64 `json:"p99_ms"`
		} `json:"latency"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &parsed); err != nil {
		t.Fatalf("artifact is not valid JSON: %v\n%s", err, sb.String())
	}
	if parsed.Suite != "smoke" || len(parsed.Phases) != 2 {
		t.Fatalf("artifact header drifted: %+v", parsed)
	}
	if !parsed.Phases[1].Saturated {
		t.Error("artifact lost the saturation verdict")
	}
	if len(parsed.Latency) != len(res.Phases[0].Endpoints)+len(res.Phases[1].Endpoints) {
		t.Errorf("artifact flattened %d latency entries, want %d",
			len(parsed.Latency), len(res.Phases[0].Endpoints)+len(res.Phases[1].Endpoints))
	}
	for _, l := range parsed.Latency {
		if l.P99MS <= 0 {
			t.Errorf("artifact entry %s/%s has zero p99", l.Phase, l.Endpoint)
		}
	}
}

// TestSurfaceSmoke is the tier-2 response-surface smoke (scripts/verify.sh):
// build the tiny threshold surface on loadtiny over HTTP, then run a mixed
// phase where half the requests are queries — most inside the hull
// (interpolated hits), a quarter aimed outside it (forced exact-job
// fallbacks) — and check the hit/fallback split, the query endpoint's
// histogram, and the artifact schema. Timing-robust by design: it asserts
// the pipeline, not this box's speed (BENCH_PR10.json records that).
func TestSurfaceSmoke(t *testing.T) {
	// Not newTestTarget: its micro saturation budget latches the server
	// saturated, which (correctly) sheds the batch grid jobs a surface
	// build submits — this smoke needs construction to complete.
	svc, err := service.New(service.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})

	g := New(Config{
		BaseURL:               ts.URL,
		Client:                ts.Client(),
		Scenario:              "loadtiny",
		QueryFraction:         0.5,
		QueryFallbackFraction: 0.25,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := g.EnsureScenario(ctx); err != nil {
		t.Fatal(err)
	}
	if err := g.BuildQuerySurface(ctx); err != nil {
		t.Fatal(err)
	}
	// Idempotent: the same spec resolves to the same content key and
	// answers ready without re-running a grid point.
	if err := g.BuildQuerySurface(ctx); err != nil {
		t.Fatalf("rebuild of an existing surface: %v", err)
	}

	res, err := g.Run(ctx, []Phase{{Name: "mix", Rate: 100, Duration: 500 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	ph := res.Phases[0]
	if ph.Errors > 0 {
		t.Errorf("%d errors in the mixed phase", ph.Errors)
	}
	if ph.Completed != ph.Requests {
		t.Errorf("completed %d of %d", ph.Completed, ph.Requests)
	}
	if ph.SurfaceHits == 0 {
		t.Error("no surface hits: in-hull queries did not interpolate")
	}
	if ph.SurfaceFallbacks == 0 {
		t.Error("no fallbacks: out-of-hull queries did not reach the exact path")
	}
	if ph.SurfaceHits <= ph.SurfaceFallbacks {
		t.Errorf("hit/fallback split %d/%d: expected hits to dominate at fallback fraction 0.25",
			ph.SurfaceHits, ph.SurfaceFallbacks)
	}
	found := map[string]int64{}
	for _, ep := range ph.Endpoints {
		found[ep.Endpoint] = ep.Count
	}
	if found[EndpointQuery] != ph.SurfaceHits+ph.SurfaceFallbacks {
		t.Errorf("query endpoint recorded %d samples, want %d",
			found[EndpointQuery], ph.SurfaceHits+ph.SurfaceFallbacks)
	}
	if found[EndpointE2E] == 0 {
		t.Error("e2e endpoint empty: submit-path and fallback jobs both missing")
	}

	var sb strings.Builder
	if err := WriteArtifact(&sb, "surface-smoke", "", "ode=1", 0.5, res); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Phases []struct {
			SurfaceHits      int64 `json:"surface_hits"`
			SurfaceFallbacks int64 `json:"surface_fallbacks"`
		} `json:"phases"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &parsed); err != nil {
		t.Fatalf("artifact is not valid JSON: %v\n%s", err, sb.String())
	}
	if parsed.Phases[0].SurfaceHits != ph.SurfaceHits ||
		parsed.Phases[0].SurfaceFallbacks != ph.SurfaceFallbacks {
		t.Errorf("artifact lost the hit/fallback split: %+v", parsed.Phases[0])
	}
}

// TestEnsureScenario covers the high-rate-sweep setup path: registering
// the small scenario succeeds (201) and is idempotent (409 = ok).
func TestEnsureScenario(t *testing.T) {
	ts := newTestTarget(t)
	g := New(Config{BaseURL: ts.URL, Client: ts.Client(), Scenario: "loadtiny"})
	ctx := context.Background()
	if err := g.EnsureScenario(ctx); err != nil {
		t.Fatal(err)
	}
	if err := g.EnsureScenario(ctx); err != nil {
		t.Fatalf("re-registering an existing scenario must be a no-op: %v", err)
	}
	// The registered scenario is actually usable.
	res, err := g.Run(ctx, []Phase{{Name: "tiny", Rate: 50, Duration: 200 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	if ph := res.Phases[0]; ph.Errors > 0 || ph.Completed != ph.Requests {
		t.Fatalf("tiny-scenario phase failed: %+v", ph)
	}
}

// TestRequestBodyMixAndKeys pins the deterministic mix rotation and
// hot/cold interleave.
func TestRequestBodyMixAndKeys(t *testing.T) {
	g := New(Config{
		BaseURL:     "http://unused",
		Mix:         []MixEntry{{Type: "ode", Weight: 2}, {Type: "abm", Weight: 1}},
		HotFraction: 0.5,
		HotKeys:     4,
	})
	types := map[string]int{}
	hot, cold := 0, 0
	for i := 0; i < 300; i++ {
		var req struct {
			Type   string `json:"type"`
			Params struct {
				Seed int64 `json:"seed"`
			} `json:"params"`
		}
		if err := json.Unmarshal(g.requestBody(i), &req); err != nil {
			t.Fatalf("request %d is not valid JSON: %v", i, err)
		}
		types[req.Type]++
		if req.Params.Seed >= 1_000_000 {
			cold++
		} else {
			hot++
			if req.Params.Seed < 1 || req.Params.Seed > 4 {
				t.Fatalf("hot seed %d outside the 4-key hot set", req.Params.Seed)
			}
		}
	}
	if types["ode"] != 200 || types["abm"] != 100 {
		t.Errorf("mix rotation drifted: %v", types)
	}
	if hot != 150 || cold != 150 {
		t.Errorf("hot/cold split %d/%d, want 150/150 at fraction 0.5", hot, cold)
	}
}
