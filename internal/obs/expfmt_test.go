package obs

import (
	"bufio"
	"flag"
	"os"
	"strconv"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the expfmt golden file")

// goldenRegistry builds a registry with every metric type, labelled and
// unlabelled series, and label values that exercise the escaping rules.
func goldenRegistry() *Registry {
	r := NewRegistry()

	c := r.Counter("rumor_jobs_total", "Jobs submitted since start.", L("type", "ode"))
	c.Add(42)
	r.Counter("rumor_jobs_total", "Jobs submitted since start.", L("type", "fbsm")).Add(7)

	g := r.Gauge("rumor_queue_depth", "Jobs queued but not running.")
	g.Set(3)
	r.GaugeFunc("rumor_queue_capacity", "Bound of the job queue.", func() float64 { return 64 })

	esc := r.Counter("rumor_escapes_total", "Help with a backslash \\ and\nnewline.",
		L("path", `a\b"c`+"\n"))
	esc.Inc()

	h := r.Histogram("rumor_job_duration_seconds", "Execution latency.",
		[]float64{0.1, 0.5, 2.5}, L("type", "ode"))
	for _, v := range []float64{0.05, 0.1, 0.3, 1, 10} {
		h.Observe(v)
	}
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()

	const path = "testdata/metrics.golden"
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -update` to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden file:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestExpositionWellFormed re-parses the golden output line by line: every
// sample line must be `name{labels} value` with a parseable value, buckets
// must be cumulative and end at +Inf == _count, and HELP/TYPE must precede
// their samples.
func TestExpositionWellFormed(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}

	var (
		lastBucket   = map[string]int64{} // series prefix -> last cumulative count
		bucketFinal  = map[string]int64{} // +Inf value per histogram series
		countSamples = map[string]int64{}
		typed        = map[string]bool{}
	)
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			typed[parts[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("sample line without value: %q", line)
		}
		key, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil && valStr != "+Inf" {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			name = key[:i]
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count", "_overflow_total"} {
			base = strings.TrimSuffix(base, suf)
		}
		if !typed[name] && !typed[base] {
			t.Errorf("sample %q before its TYPE line", line)
		}
		if strings.HasSuffix(name, "_bucket") {
			series := key[:strings.Index(key, "le=\"")]
			if int64(val) < lastBucket[series] {
				t.Errorf("bucket counts not cumulative at %q: %d after %d", line, int64(val), lastBucket[series])
			}
			lastBucket[series] = int64(val)
			if strings.Contains(key, `le="+Inf"`) {
				bucketFinal[series] = int64(val)
			}
		}
		if strings.HasSuffix(name, "_count") {
			countSamples[key] = int64(val)
		}
	}
	if len(bucketFinal) == 0 {
		t.Fatal("no histogram buckets found")
	}
	for series, inf := range bucketFinal {
		// The +Inf bucket must hold every observation, matching _count.
		if inf != 5 {
			t.Errorf("+Inf bucket of %s = %d, want 5 (all observations)", series, inf)
		}
	}
	if got := countSamples[`rumor_job_duration_seconds_count{type="ode"}`]; got != 5 {
		t.Errorf("_count = %d, want 5 (keys: %v)", got, countSamples)
	}
}

// TestHistogramOverflow verifies over-range observations are counted and
// exported instead of silently clamping into +Inf: the golden registry's
// histogram has explicit bounds up to 2.5 and observes a 10.
func TestHistogramOverflow(t *testing.T) {
	h := NewHistogram([]float64{0.1, 0.5, 2.5})
	for _, v := range []float64{0.05, 0.1, 0.3, 1, 10} {
		h.Observe(v)
	}
	if got := h.Overflow(); got != 1 {
		t.Errorf("Overflow() = %d, want 1 (only the 10 is past the last bound)", got)
	}
	h.Observe(2.5) // exactly on the bound: le semantics, not an overflow
	if got := h.Overflow(); got != 1 {
		t.Errorf("Overflow() after boundary observation = %d, want 1", got)
	}

	var sb strings.Builder
	if err := goldenRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `rumor_job_duration_seconds_overflow_total{type="ode"} 1`
	if !strings.Contains(sb.String(), want+"\n") {
		t.Errorf("exposition missing %q:\n%s", want, sb.String())
	}
}
