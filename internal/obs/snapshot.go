package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// This file is the registry snapshot/merge codec used by the cluster
// telemetry relay (DESIGN.md §13): a worker node serializes its registry
// into a compact JSON-able Snapshot, piggybacks it on heartbeats, and the
// coordinator re-renders the snapshot on its own /metrics under renamed
// families with a worker label — plus fleet-level aggregates merged
// across workers. The wire form is decoupled from the registry's internal
// types so the two processes only share this codec, not live metrics.

// HistogramSnapshot is the wire form of one histogram series: the bucket
// layout plus per-bucket (non-cumulative) counts, with the +Inf overflow
// bucket last, so the receiving side can re-render cumulative buckets or
// merge layouts bucket-by-bucket.
type HistogramSnapshot struct {
	Upper  []float64 `json:"upper"`
	Counts []int64   `json:"counts"` // len(Upper)+1; last is +Inf
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Max    float64   `json:"max"`
}

// SeriesSnapshot is one sampled series. Exactly one of Counter, Gauge or
// Histogram is set, matching the family type. Gauge-funcs are sampled at
// snapshot time and travel as plain gauges.
type SeriesSnapshot struct {
	Labels    []Label            `json:"labels,omitempty"`
	Counter   *int64             `json:"counter,omitempty"`
	Gauge     *float64           `json:"gauge,omitempty"`
	Histogram *HistogramSnapshot `json:"histogram,omitempty"`
}

// FamilySnapshot is one sampled metric family.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Help   string           `json:"help,omitempty"`
	Type   string           `json:"type"`
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot is a point-in-time sample of a whole registry, families sorted
// by name and series by label signature (the same order WritePrometheus
// renders), so snapshots are byte-stable run to run.
type Snapshot []FamilySnapshot

// Snapshot samples every registered series. Values are read atomically
// per series; like a scrape, the whole snapshot is near-consistent rather
// than a single atomic cut.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.fams[name]
	}
	r.mu.Unlock()

	snap := make(Snapshot, 0, len(fams))
	for _, f := range fams {
		fs := FamilySnapshot{Name: f.name, Help: f.help, Type: f.typ}
		series := append([]*series(nil), f.series...)
		sort.Slice(series, func(i, j int) bool { return series[i].sig < series[j].sig })
		for _, s := range series {
			ss := SeriesSnapshot{Labels: append([]Label(nil), s.labels...)}
			switch {
			case s.c != nil:
				v := s.c.Value()
				ss.Counter = &v
			case s.gf != nil:
				v := s.gf()
				ss.Gauge = &v
			case s.g != nil:
				v := s.g.Value()
				ss.Gauge = &v
			case s.h != nil:
				hs := &HistogramSnapshot{
					Upper:  append([]float64(nil), s.h.upper...),
					Counts: make([]int64, len(s.h.counts)),
					Sum:    s.h.Sum(),
					Max:    s.h.Max(),
				}
				for i := range s.h.counts {
					hs.Counts[i] = s.h.counts[i].Load()
					hs.Count += hs.Counts[i]
				}
				ss.Histogram = hs
			default:
				continue // registered but never materialized; nothing to sample
			}
			fs.Series = append(fs.Series, ss)
		}
		if len(fs.Series) > 0 {
			snap = append(snap, fs)
		}
	}
	return snap
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format. rename (nil for identity) maps each family name — the
// coordinator uses it to re-export a worker's rumor_* families as
// rumor_worker_*. extra labels are appended to every series — the
// coordinator attaches worker="<id>". The caller interleaves this with a
// live registry render, so HELP/TYPE dedup across calls is the caller's
// concern; within one snapshot each family emits its pair once.
func (snap Snapshot) WritePrometheus(w io.Writer, rename func(string) string, extra ...Label) error {
	bw := bufio.NewWriter(w)
	writef := func(format string, args ...any) {
		fmt.Fprintf(bw, format, args...)
	}
	for _, f := range snap {
		name := f.Name
		if rename != nil {
			name = rename(name)
		}
		if err := checkName(name); err != nil {
			continue // a hostile or corrupt relay must not break the scrape
		}
		if f.Help != "" {
			writef("# HELP %s %s\n", name, escapeHelp(f.Help))
		}
		writef("# TYPE %s %s\n", name, f.Type)
		for _, s := range f.Series {
			labels := mergeLabels(s.Labels, extra)
			switch {
			case s.Counter != nil:
				writef("%s%s %d\n", name, labelString(labels, nil), *s.Counter)
			case s.Gauge != nil:
				writef("%s%s %s\n", name, labelString(labels, nil), formatFloat(*s.Gauge))
			case s.Histogram != nil && len(s.Histogram.Counts) == len(s.Histogram.Upper)+1:
				var cum int64
				for i, upper := range s.Histogram.Upper {
					cum += s.Histogram.Counts[i]
					le := Label{Name: "le", Value: formatFloat(upper)}
					writef("%s_bucket%s %d\n", name, labelString(labels, &le), cum)
				}
				cum += s.Histogram.Counts[len(s.Histogram.Upper)]
				le := Label{Name: "le", Value: "+Inf"}
				writef("%s_bucket%s %d\n", name, labelString(labels, &le), cum)
				writef("%s_sum%s %s\n", name, labelString(labels, nil), formatFloat(s.Histogram.Sum))
				writef("%s_count%s %d\n", name, labelString(labels, nil), cum)
				writef("%s_overflow_total%s %d\n", name, labelString(labels, nil),
					s.Histogram.Counts[len(s.Histogram.Upper)])
			}
		}
	}
	return bw.Flush()
}

// WithLabel returns a deep-enough copy of the snapshot with extra appended
// to every series' label set (series that already carry a label of the
// same name keep their own value). The coordinator uses it to stamp each
// worker's snapshot with worker="<id>" before merging the fleet into one
// rendering.
func (snap Snapshot) WithLabel(extra ...Label) Snapshot {
	out := make(Snapshot, len(snap))
	for i, f := range snap {
		nf := FamilySnapshot{Name: f.Name, Help: f.Help, Type: f.Type,
			Series: make([]SeriesSnapshot, len(f.Series))}
		for j, s := range f.Series {
			ns := cloneSeries(s)
			ns.Labels = mergeLabels(ns.Labels, extra)
			nf.Series[j] = ns
		}
		out[i] = nf
	}
	return out
}

// mergeLabels appends extra after the series' own labels, skipping extras
// whose name a series label already uses (the series' value wins — a
// worker must not spoof the coordinator-assigned worker label).
func mergeLabels(own, extra []Label) []Label {
	if len(extra) == 0 {
		return own
	}
	out := append([]Label(nil), own...)
next:
	for _, e := range extra {
		for _, l := range own {
			if l.Name == e.Name {
				continue next
			}
		}
		out = append(out, e)
	}
	return out
}

// MergeSnapshots folds snapshots from several processes into fleet-level
// aggregates: counters and gauges sum, histogram buckets add
// element-wise when the layouts match (series with mismatched layouts are
// skipped), and Max takes the max. Series are merged by family name plus
// label signature; families must agree on type or the later snapshot's
// family is skipped. Gauges sum because the fleet aggregate of
// goroutines, heap bytes or queue depths is a total, not an average —
// per-worker values stay visible on the re-exported rumor_worker_* form.
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	type key struct {
		fam string
		sig string
	}
	fams := make(map[string]*FamilySnapshot)
	order := make([]string, 0)
	idx := make(map[key]int) // index into fams[fam].Series
	for _, snap := range snaps {
		for _, f := range snap {
			mf := fams[f.Name]
			if mf == nil {
				fams[f.Name] = &FamilySnapshot{Name: f.Name, Help: f.Help, Type: f.Type}
				mf = fams[f.Name]
				order = append(order, f.Name)
			} else if mf.Type != f.Type {
				continue
			}
			for _, s := range f.Series {
				k := key{fam: f.Name, sig: labelSignature(s.Labels)}
				i, ok := idx[k]
				if !ok {
					idx[k] = len(mf.Series)
					mf.Series = append(mf.Series, cloneSeries(s))
					continue
				}
				mergeSeries(&mf.Series[i], s)
			}
		}
	}
	sort.Strings(order)
	out := make(Snapshot, 0, len(order))
	for _, name := range order {
		out = append(out, *fams[name])
	}
	return out
}

func cloneSeries(s SeriesSnapshot) SeriesSnapshot {
	out := SeriesSnapshot{Labels: append([]Label(nil), s.Labels...)}
	switch {
	case s.Counter != nil:
		v := *s.Counter
		out.Counter = &v
	case s.Gauge != nil:
		v := *s.Gauge
		out.Gauge = &v
	case s.Histogram != nil:
		h := *s.Histogram
		h.Upper = append([]float64(nil), s.Histogram.Upper...)
		h.Counts = append([]int64(nil), s.Histogram.Counts...)
		out.Histogram = &h
	}
	return out
}

func mergeSeries(dst *SeriesSnapshot, src SeriesSnapshot) {
	switch {
	case dst.Counter != nil && src.Counter != nil:
		*dst.Counter += *src.Counter
	case dst.Gauge != nil && src.Gauge != nil:
		*dst.Gauge += *src.Gauge
	case dst.Histogram != nil && src.Histogram != nil:
		d, s := dst.Histogram, src.Histogram
		if len(d.Upper) != len(s.Upper) || len(d.Counts) != len(s.Counts) {
			return
		}
		for i, u := range d.Upper {
			if u != s.Upper[i] {
				return
			}
		}
		for i := range d.Counts {
			d.Counts[i] += s.Counts[i]
		}
		d.Count += s.Count
		d.Sum += s.Sum
		if s.Max > d.Max {
			d.Max = s.Max
		}
	}
}
