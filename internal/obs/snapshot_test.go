package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// buildRegistry populates a registry the way a worker node does: counters
// with and without labels, a gauge, a gauge-func and a histogram.
func buildRegistry(jobs int64, goroutines float64, obs ...float64) *Registry {
	r := NewRegistry()
	r.Counter("rumor_jobs_executed_total", "jobs").Add(jobs)
	r.Counter("rumor_invariant_violations_total", "trips", L("check", "theta_range")).Add(2)
	r.Gauge("rumor_queue_depth", "depth").Set(3)
	r.GaugeFunc("rumor_runtime_goroutines", "goroutines", func() float64 { return goroutines })
	h := r.Histogram("rumor_abm_step_seconds", "steps", []float64{0.1, 1})
	for _, v := range obs {
		h.Observe(v)
	}
	return r
}

func TestSnapshotRoundTrip(t *testing.T) {
	snap := buildRegistry(5, 7, 0.05, 0.5, 2).Snapshot()

	// The snapshot is JSON-able: the relay ships it inside heartbeat bodies.
	blob, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := back.WritePrometheus(&sb, nil); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{
		"# TYPE rumor_jobs_executed_total counter",
		"rumor_jobs_executed_total 5",
		`rumor_invariant_violations_total{check="theta_range"} 2`,
		"rumor_queue_depth 3",
		"rumor_runtime_goroutines 7", // gauge-funcs travel as plain gauges
		`rumor_abm_step_seconds_bucket{le="0.1"} 1`,
		`rumor_abm_step_seconds_bucket{le="1"} 2`,
		`rumor_abm_step_seconds_bucket{le="+Inf"} 3`,
		"rumor_abm_step_seconds_count 3",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("rendered snapshot missing %q:\n%s", want, got)
		}
	}
}

func TestSnapshotRename(t *testing.T) {
	snap := buildRegistry(1, 1).Snapshot()
	var sb strings.Builder
	rename := func(name string) string { return "rumor_worker_" + strings.TrimPrefix(name, "rumor_") }
	if err := snap.WritePrometheus(&sb, rename, L("worker", "w-1")); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{
		`rumor_worker_jobs_executed_total{worker="w-1"} 1`,
		// The extra label lands after the series' own labels.
		`rumor_worker_invariant_violations_total{check="theta_range",worker="w-1"} 2`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("renamed render missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "rumor_jobs_executed_total") {
		t.Error("rename left an un-prefixed family behind")
	}
}

// TestSnapshotLabelAntiSpoof: a series that already carries a label of the
// injected name keeps its own value — a worker cannot impersonate another
// by pre-labelling its series worker="other".
func TestSnapshotLabelAntiSpoof(t *testing.T) {
	r := NewRegistry()
	r.Counter("rumor_sneaky_total", "spoof", L("worker", "other")).Add(9)
	var sb strings.Builder
	if err := r.Snapshot().WritePrometheus(&sb, nil, L("worker", "w-real")); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.Contains(got, `{worker="other"}`) || strings.Contains(got, "w-real") {
		t.Errorf("injected label overrode the series' own:\n%s", got)
	}
}

// TestSnapshotRenameRejectsInvalidNames: a hostile relay cannot corrupt the
// scrape with a family name outside the Prometheus charset.
func TestSnapshotRenameRejectsInvalidNames(t *testing.T) {
	snap := Snapshot{{Name: `bad"name{}`, Type: "counter",
		Series: []SeriesSnapshot{{Counter: ptrInt64(1)}}}}
	var sb strings.Builder
	if err := snap.WritePrometheus(&sb, nil); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Errorf("invalid family rendered anyway:\n%s", sb.String())
	}
}

func ptrInt64(v int64) *int64 { return &v }

func TestMergeSnapshots(t *testing.T) {
	a := buildRegistry(5, 7, 0.05).Snapshot()
	b := buildRegistry(3, 4, 0.5, 2).Snapshot()
	merged := MergeSnapshots(a, b)

	var sb strings.Builder
	if err := merged.WritePrometheus(&sb, nil); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{
		"rumor_jobs_executed_total 8", // counters sum
		"rumor_queue_depth 6",         // gauges sum too: fleet totals
		"rumor_runtime_goroutines 11",
		`rumor_abm_step_seconds_bucket{le="+Inf"} 3`, // histograms bucket-merge
		"rumor_abm_step_seconds_count 3",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("merged render missing %q:\n%s", want, got)
		}
	}

	// Max takes the max across workers.
	for _, f := range merged {
		if f.Name == "rumor_abm_step_seconds" {
			if max := f.Series[0].Histogram.Max; max != 2 {
				t.Errorf("merged histogram max = %g, want 2", max)
			}
		}
	}
}

// TestMergeSnapshotsLayoutMismatch: histograms with different bucket layouts
// keep the first layout instead of producing a corrupt sum.
func TestMergeSnapshotsLayoutMismatch(t *testing.T) {
	mk := func(buckets []float64) Snapshot {
		r := NewRegistry()
		r.Histogram("rumor_h", "h", buckets).Observe(0.5)
		return r.Snapshot()
	}
	merged := MergeSnapshots(mk([]float64{0.1, 1}), mk([]float64{0.5}))
	if len(merged) != 1 || merged[0].Series[0].Histogram.Count != 1 {
		t.Errorf("mismatched layouts merged: %+v", merged)
	}
}

func TestSnapshotWithLabel(t *testing.T) {
	orig := buildRegistry(1, 1).Snapshot()
	labelled := orig.WithLabel(L("worker", "w-9"))

	// The original is untouched (deep-enough copy).
	for _, f := range orig {
		for _, s := range f.Series {
			for _, l := range s.Labels {
				if l.Name == "worker" {
					t.Fatalf("WithLabel mutated the source snapshot: %+v", s.Labels)
				}
			}
		}
	}
	for _, f := range labelled {
		for _, s := range f.Series {
			found := false
			for _, l := range s.Labels {
				found = found || (l.Name == "worker" && l.Value == "w-9")
			}
			if !found {
				t.Errorf("family %s series %v missing the injected label", f.Name, s.Labels)
			}
		}
	}
}
