// Package trace is a minimal, dependency-free distributed-tracing model
// for the rumord stack: span and trace identifiers, W3C traceparent
// propagation, parent/child span links with attributes, and a bounded
// in-memory exporter for post-hoc inspection on /debug/events.
//
// It deliberately implements only what the service needs — there is no
// sampling, no batching, no wire exporter. A span is cheap enough to wrap
// every HTTP request and every job stage; finished spans land in a fixed
// ring so a long-lived daemon never grows without bound. See DESIGN.md §9
// for the span taxonomy.
package trace

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rumornet/internal/obs"
)

// TraceID identifies one causal request tree (16 bytes, hex-encoded on the
// wire). The zero value means "absent".
type TraceID [16]byte

// SpanID identifies one span within a trace (8 bytes). The zero value
// means "absent".
type SpanID [8]byte

// IsZero reports whether the id is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the id is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String returns the 32-char lowercase hex form ("" for the zero id).
func (t TraceID) String() string {
	if t.IsZero() {
		return ""
	}
	return hex.EncodeToString(t[:])
}

// String returns the 16-char lowercase hex form ("" for the zero id).
func (s SpanID) String() string {
	if s.IsZero() {
		return ""
	}
	return hex.EncodeToString(s[:])
}

// SpanContext is the propagated identity of a span: what crosses process
// boundaries in the traceparent header. The zero value means "no trace".
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	Flags   byte // bit 0: sampled
}

// Valid reports whether both ids are non-zero, as W3C requires.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// Traceparent renders the W3C header value
// "00-<trace-id>-<span-id>-<flags>". Returns "" for an invalid context.
func (sc SpanContext) Traceparent() string {
	if !sc.Valid() {
		return ""
	}
	return fmt.Sprintf("00-%s-%s-%02x", sc.TraceID.String(), sc.SpanID.String(), sc.Flags)
}

// ParseTraceparent parses a W3C traceparent header value. It returns
// ok == false for anything malformed — wrong field count or length,
// non-lowercase-hex digits, the reserved version "ff", or an all-zero
// trace or span id — so callers treat a bad header exactly like an absent
// one and start a fresh trace. Versions above 00 are accepted with extra
// trailing fields ignored, per the spec's forward-compatibility rule.
func ParseTraceparent(s string) (SpanContext, bool) {
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) < 4 {
		return SpanContext{}, false
	}
	ver, ok := hexBytes(parts[0], 1)
	if !ok || ver[0] == 0xff {
		return SpanContext{}, false
	}
	if ver[0] == 0 && len(parts) != 4 {
		return SpanContext{}, false // version 00 has exactly four fields
	}
	tid, ok := hexBytes(parts[1], 16)
	if !ok {
		return SpanContext{}, false
	}
	sid, ok := hexBytes(parts[2], 8)
	if !ok {
		return SpanContext{}, false
	}
	flags, ok := hexBytes(parts[3], 1)
	if !ok {
		return SpanContext{}, false
	}
	var sc SpanContext
	copy(sc.TraceID[:], tid)
	copy(sc.SpanID[:], sid)
	sc.Flags = flags[0]
	if !sc.Valid() {
		return SpanContext{}, false // all-zero ids are explicitly invalid
	}
	return sc, true
}

// hexBytes decodes s into exactly n bytes of lowercase hex.
func hexBytes(s string, n int) ([]byte, bool) {
	if len(s) != 2*n || strings.ToLower(s) != s {
		return nil, false
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return nil, false
	}
	return b, true
}

// idState is the process-wide id generator: a crypto/rand seed mixed with
// an atomic counter through SplitMix64, so ids are unique and unpredictable
// without taking a lock or draining entropy per span.
var idState struct {
	seed uint64
	ctr  atomic.Uint64
	once sync.Once
}

func nextRand() uint64 {
	idState.once.Do(func() {
		var b [8]byte
		if _, err := crand.Read(b[:]); err == nil {
			idState.seed = binary.LittleEndian.Uint64(b[:])
		} else {
			idState.seed = uint64(time.Now().UnixNano())
		}
	})
	// SplitMix64 finalizer over seed+counter: distinct inputs give
	// distinct, well-mixed outputs.
	z := idState.seed + idState.ctr.Add(1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewTraceID returns a fresh non-zero trace id.
func NewTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		binary.BigEndian.PutUint64(t[:8], nextRand())
		binary.BigEndian.PutUint64(t[8:], nextRand())
	}
	return t
}

// NewSpanID returns a fresh non-zero span id.
func NewSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		binary.BigEndian.PutUint64(s[:], nextRand())
	}
	return s
}

// SpanData is the exported snapshot of a finished span.
type SpanData struct {
	Name       string            `json:"name"`
	TraceID    string            `json:"trace_id"`
	SpanID     string            `json:"span_id"`
	ParentID   string            `json:"parent_span_id,omitempty"`
	Start      time.Time         `json:"start"`
	End        time.Time         `json:"end"`
	DurationMS float64           `json:"duration_ms"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// Span is one in-flight timed operation. Create with Tracer.Start or
// Tracer.StartSpan; call End exactly once (extra Ends are no-ops). Methods
// are safe for concurrent use; a nil *Span is inert, so call sites need no
// "is tracing on" branches.
type Span struct {
	tracer *Tracer
	name   string
	sc     SpanContext
	parent SpanID
	start  time.Time

	mu    sync.Mutex
	attrs []obs.Label
	ended bool
}

// Context returns the span's propagated identity.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// SetAttr attaches (or appends) a string attribute.
func (s *Span) SetAttr(name, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, obs.L(name, value))
	s.mu.Unlock()
}

// End finishes the span and hands it to the tracer's bounded exporter.
// Second and later calls are no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	end := time.Now()
	data := SpanData{
		Name:       s.name,
		TraceID:    s.sc.TraceID.String(),
		SpanID:     s.sc.SpanID.String(),
		ParentID:   s.parent.String(),
		Start:      s.start,
		End:        end,
		DurationMS: float64(end.Sub(s.start)) / float64(time.Millisecond),
	}
	if len(s.attrs) > 0 {
		data.Attrs = make(map[string]string, len(s.attrs))
		for _, l := range s.attrs {
			data.Attrs[l.Name] = l.Value
		}
	}
	s.mu.Unlock()
	s.tracer.export(data)
}

// Tracer creates spans and retains the most recent finished ones in a
// fixed ring for /debug/events. The zero value is not usable; call New.
type Tracer struct {
	mu      sync.Mutex
	ring    []SpanData
	next    int
	filled  bool
	dropped int64
}

// New returns a tracer retaining up to capacity finished spans (minimum 1;
// values below it are raised).
func New(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]SpanData, 0, capacity)}
}

// StartSpan begins a span. A valid parent links the span into the parent's
// trace; an invalid (zero) parent starts a fresh trace. attrs are attached
// up front.
func (t *Tracer) StartSpan(name string, parent SpanContext, attrs ...obs.Label) *Span {
	if t == nil {
		return nil
	}
	sc := SpanContext{SpanID: NewSpanID(), Flags: 1}
	var parentID SpanID
	if parent.Valid() {
		sc.TraceID = parent.TraceID
		sc.Flags = parent.Flags | 1
		parentID = parent.SpanID
	} else {
		sc.TraceID = NewTraceID()
	}
	return &Span{
		tracer: t,
		name:   name,
		sc:     sc,
		parent: parentID,
		start:  time.Now(),
		attrs:  attrs,
	}
}

// Start begins a span whose parent (if any) is carried by ctx, and returns
// the child context carrying the new span's identity.
func (t *Tracer) Start(ctx context.Context, name string, attrs ...obs.Label) (context.Context, *Span) {
	sp := t.StartSpan(name, SpanContextFromContext(ctx), attrs...)
	return ContextWithSpanContext(ctx, sp.Context()), sp
}

// export appends a finished span to the ring, overwriting the oldest entry
// once full and counting the overwritten spans as dropped.
func (t *Tracer) export(data SpanData) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, data)
		return
	}
	t.ring[t.next] = data
	t.next = (t.next + 1) % cap(t.ring)
	t.filled = true
	t.dropped++
}

// Import adds externally finished spans — uploaded by a worker node with
// its heartbeat or result — to the ring as if they had ended locally, in
// the order given (oldest first keeps ring eviction sensible).
func (t *Tracer) Import(spans []SpanData) {
	for _, sp := range spans {
		t.export(sp)
	}
}

// Finished returns the retained finished spans, oldest first.
func (t *Tracer) Finished() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanData, 0, len(t.ring))
	if t.filled {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring...)
	}
	return out
}

// Dropped returns how many finished spans the ring has overwritten.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// spanCtxKey carries a SpanContext through a context.Context.
type spanCtxKey struct{}

// ContextWithSpanContext returns a child context carrying sc.
func ContextWithSpanContext(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// SpanContextFromContext returns the span context carried by ctx, or the
// zero SpanContext when none was attached.
func SpanContextFromContext(ctx context.Context) SpanContext {
	if sc, ok := ctx.Value(spanCtxKey{}).(SpanContext); ok {
		return sc
	}
	return SpanContext{}
}
