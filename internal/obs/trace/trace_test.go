package trace

import (
	"context"
	"strings"
	"sync"
	"testing"
)

func TestParseTraceparent(t *testing.T) {
	const valid = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	cases := []struct {
		name string
		in   string
		ok   bool
	}{
		{"valid", valid, true},
		{"valid unsampled", "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00", true},
		{"surrounding whitespace", " " + valid + " ", true},
		{"future version", "01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", true},
		{"future version with suffix", "42-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra", true},
		{"empty", "", false},
		{"garbage", "not-a-traceparent", false},
		{"reserved version ff", "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", false},
		{"malformed version", "0x-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", false},
		{"three-char version", "000-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", false},
		{"short trace id", "00-0af7651916cd43dd8448eb211c8031-b7ad6b7169203331-01", false},
		{"long trace id", "00-0af7651916cd43dd8448eb211c80319c00-b7ad6b7169203331-01", false},
		{"non-hex trace id", "00-0af7651916cd43dd8448eb211c80319z-b7ad6b7169203331-01", false},
		{"uppercase hex rejected", "00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01", false},
		{"short span id", "00-0af7651916cd43dd8448eb211c80319c-b7ad6b71692033-01", false},
		{"all-zero trace id", "00-00000000000000000000000000000000-b7ad6b7169203331-01", false},
		{"all-zero span id", "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", false},
		{"missing flags", "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331", false},
		{"version 00 with extra field", valid + "-zz", false},
		{"short flags", valid[:len(valid)-1], false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc, ok := ParseTraceparent(tc.in)
			if ok != tc.ok {
				t.Fatalf("ParseTraceparent(%q) ok = %v, want %v", tc.in, ok, tc.ok)
			}
			if !ok && sc.Valid() {
				t.Errorf("rejected input yielded a valid context: %+v", sc)
			}
			if ok && !sc.Valid() {
				t.Errorf("accepted input yielded an invalid context: %+v", sc)
			}
		})
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	const in = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	sc, ok := ParseTraceparent(in)
	if !ok {
		t.Fatal("valid header rejected")
	}
	if got := sc.Traceparent(); got != in {
		t.Errorf("round trip %q -> %q", in, got)
	}
	if sc.TraceID.String() != "0af7651916cd43dd8448eb211c80319c" {
		t.Errorf("trace id %q", sc.TraceID.String())
	}
	if sc.SpanID.String() != "b7ad6b7169203331" {
		t.Errorf("span id %q", sc.SpanID.String())
	}
	if (SpanContext{}).Traceparent() != "" {
		t.Error("zero context should render empty")
	}
}

func TestIDGeneration(t *testing.T) {
	seen := make(map[TraceID]bool)
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if id.IsZero() {
			t.Fatal("zero trace id generated")
		}
		if seen[id] {
			t.Fatalf("duplicate trace id after %d draws", i)
		}
		seen[id] = true
	}
	if len(NewSpanID().String()) != 16 {
		t.Error("span id hex length")
	}
}

func TestSpanParentChildAndExport(t *testing.T) {
	tr := New(16)
	ctx, root := tr.Start(context.Background(), "http.request")
	ctx, child := tr.Start(ctx, "job.fbsm")
	_, grand := tr.Start(ctx, "stage.fbsm/forward")

	if child.Context().TraceID != root.Context().TraceID {
		t.Error("child left the parent's trace")
	}
	if grand.Context().TraceID != root.Context().TraceID {
		t.Error("grandchild left the parent's trace")
	}
	if child.Context().SpanID == root.Context().SpanID {
		t.Error("child reused the parent's span id")
	}
	grand.SetAttr("grid", "400000")
	grand.End()
	child.End()
	root.End()
	root.End() // double End is a no-op

	fin := tr.Finished()
	if len(fin) != 3 {
		t.Fatalf("finished spans = %d, want 3", len(fin))
	}
	if fin[0].Name != "stage.fbsm/forward" || fin[2].Name != "http.request" {
		t.Errorf("export order: %q, %q, %q", fin[0].Name, fin[1].Name, fin[2].Name)
	}
	if fin[0].ParentID != child.Context().SpanID.String() {
		t.Errorf("grandchild parent %q, want %q", fin[0].ParentID, child.Context().SpanID.String())
	}
	if fin[0].Attrs["grid"] != "400000" {
		t.Errorf("attrs: %v", fin[0].Attrs)
	}
	if fin[2].ParentID != "" {
		t.Errorf("root should have no parent, got %q", fin[2].ParentID)
	}
}

func TestTracerRingBound(t *testing.T) {
	tr := New(4)
	for i := 0; i < 10; i++ {
		tr.StartSpan("s", SpanContext{}).End()
	}
	if got := len(tr.Finished()); got != 4 {
		t.Errorf("retained spans = %d, want 4", got)
	}
	if tr.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", tr.Dropped())
	}
}

func TestNilSafety(t *testing.T) {
	var sp *Span
	sp.SetAttr("a", "b")
	sp.End()
	if sp.Context().Valid() {
		t.Error("nil span has a valid context")
	}
	var tr *Tracer
	if tr.Finished() != nil || tr.Dropped() != 0 {
		t.Error("nil tracer not inert")
	}
	if SpanContextFromContext(context.Background()).Valid() {
		t.Error("empty context carries a span")
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := New(64)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				_, sp := tr.Start(context.Background(), "concurrent")
				sp.SetAttr("j", "1")
				sp.End()
			}
		}()
	}
	wg.Wait()
	fin := tr.Finished()
	if len(fin) != 64 {
		t.Fatalf("retained = %d, want the ring bound 64", len(fin))
	}
	for _, d := range fin {
		if !strings.HasPrefix(d.Name, "concurrent") || d.TraceID == "" {
			t.Fatalf("corrupt span data: %+v", d)
		}
	}
}
