package obs

import (
	"fmt"
	"math"
)

// HDR is a log-bucketed high-dynamic-range histogram for latency
// recording (internal/loadgen, the service's saturation window). Unlike
// the fixed-bucket Histogram — whose ~18 hand-picked bounds are right for
// a Prometheus scrape but far too coarse for quantile reporting — an HDR
// covers its whole [Min, Max) value range with buckets of bounded
// *relative* width: each power of two is subdivided into `sub` linear
// sub-buckets, so every bucket spans at most a factor (1 + 1/sub) and a
// quantile read off the histogram is within RelativeError() of the exact
// sample quantile, at any scale from microseconds to minutes. This is the
// same log-linear layout as HdrHistogram (Gil Tene's coordinated-omission
// work), restated over float64 seconds.
//
// Counts are exact integers, so two HDRs with the same layout merge
// losslessly (Merge): per-worker recorders in the load generator combine
// into one distribution with no re-sampling error.
//
// The zero value is not usable; call NewHDR. HDR is NOT safe for
// concurrent use — record into per-goroutine instances and Merge, or wrap
// with a lock (the service's saturation window does the latter).
type HDR struct {
	min, max float64
	sub      int
	minExp   int // exponent of the first tracked power of two
	nExp     int // number of tracked powers of two
	counts   []int64

	total      int64
	sum        float64
	vmin, vmax float64 // exact extremes of in-range + clamped observations
	under      int64   // observations below min, clamped into the first bucket
	over       int64   // observations at/above max, clamped into the last bucket
}

// DefaultLatencyHDR returns the layout used for end-to-end request
// latencies: 1µs to ~2048s at under 1% relative error (128 sub-buckets
// per power of two; ~4k buckets, 32 KiB).
func DefaultLatencyHDR() *HDR { return NewHDR(1e-6, 2048, 128) }

// NewHDR builds an HDR covering [min, max) with `sub` linear sub-buckets
// per power of two. min and max must be positive with min < max; sub must
// be at least 1 (relative error 1/sub — 128 gives <1%). Malformed layouts
// panic: a programmer error caught at construction.
func NewHDR(min, max float64, sub int) *HDR {
	switch {
	case !(min > 0) || math.IsInf(min, 0):
		panic(fmt.Sprintf("obs: HDR min %g must be positive and finite", min))
	case !(max > min) || math.IsInf(max, 0):
		panic(fmt.Sprintf("obs: HDR max %g must be finite and above min %g", max, min))
	case sub < 1:
		panic(fmt.Sprintf("obs: HDR sub-bucket count %d must be at least 1", sub))
	}
	minExp := ilogb2(min)
	maxExp := ilogb2(max)
	h := &HDR{
		min: min, max: max, sub: sub,
		minExp: minExp,
		nExp:   maxExp - minExp + 1,
	}
	h.counts = make([]int64, h.nExp*sub)
	return h
}

// ilogb2 returns floor(log2(v)) for positive finite v.
func ilogb2(v float64) int {
	frac, exp := math.Frexp(v) // v = frac * 2^exp, frac in [0.5, 1)
	_ = frac
	return exp - 1
}

// bucket maps a positive value to its bucket index, clamping out-of-range
// values into the first/last bucket.
func (h *HDR) bucket(v float64) int {
	if v < h.min {
		return 0
	}
	frac, exp := math.Frexp(v) // frac in [0.5, 1)
	m := 2*frac - 1            // mantissa offset in [0, 1)
	e := exp - 1 - h.minExp    // power-of-two slot
	i := e*h.sub + int(m*float64(h.sub))
	if i >= len(h.counts) {
		return len(h.counts) - 1
	}
	return i
}

// Record adds one observation. Non-positive and NaN values clamp into the
// first bucket (a latency of exactly 0 is a timer-resolution artifact, not
// a signal); values at or above Max clamp into the last bucket and are
// additionally counted in Overflow, so a saturated tail is visible rather
// than silently truncated.
func (h *HDR) Record(v float64) {
	if math.IsNaN(v) || v < 0 {
		v = 0
	}
	switch {
	case v < h.min:
		h.under++
		h.counts[0]++
	case v >= h.max:
		h.over++
		h.counts[len(h.counts)-1]++
	default:
		h.counts[h.bucket(v)]++
	}
	h.total++
	h.sum += v
	if h.total == 1 || v < h.vmin {
		h.vmin = v
	}
	if v > h.vmax {
		h.vmax = v
	}
}

// Count returns the number of recorded observations.
func (h *HDR) Count() int64 { return h.total }

// Sum returns the sum of all observations.
func (h *HDR) Sum() float64 { return h.sum }

// Mean returns the exact arithmetic mean (0 before any observation).
func (h *HDR) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Min and Max return the exact extreme observations (0 when empty).
func (h *HDR) Min() float64 { return h.vmin }
func (h *HDR) Max() float64 { return h.vmax }

// Overflow returns the number of observations clamped into the last
// bucket because they were at or above the layout's Max; Underflow the
// ones below Min clamped into the first.
func (h *HDR) Overflow() int64  { return h.over }
func (h *HDR) Underflow() int64 { return h.under }

// RelativeError is the worst-case relative half-width of one bucket: a
// quantile estimate is within this factor of the exact sample quantile
// (for in-range values; clamped ones are pinned to the exact Min/Max).
func (h *HDR) RelativeError() float64 { return 1 / float64(h.sub) }

// bucketBounds returns the [lo, hi) value range of bucket i.
func (h *HDR) bucketBounds(i int) (lo, hi float64) {
	e := i / h.sub
	s := i % h.sub
	scale := math.Ldexp(1, h.minExp+e) // 2^(minExp+e)
	lo = scale * (1 + float64(s)/float64(h.sub))
	hi = scale * (1 + float64(s+1)/float64(h.sub))
	return lo, hi
}

// Quantile estimates the p-quantile (p in [0, 1]) as the midpoint of the
// bucket holding the target rank, clamped to the exact observed [Min,
// Max]. Returns 0 before any observation. The estimate is within
// RelativeError of the exact sample quantile; QuantileBounds returns the
// hard interval.
func (h *HDR) Quantile(p float64) float64 {
	lo, hi := h.QuantileBounds(p)
	mid := (lo + hi) / 2
	if mid < h.vmin {
		mid = h.vmin
	}
	if mid > h.vmax {
		mid = h.vmax
	}
	return mid
}

// QuantileBounds returns the value interval [lo, hi] guaranteed to
// contain the exact p-quantile of the recorded samples: the bounds of the
// bucket holding the target rank, tightened by the exact observed
// extremes. Returns (0, 0) before any observation.
func (h *HDR) QuantileBounds(p float64) (lo, hi float64) {
	if h.total == 0 {
		return 0, 0
	}
	if p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	// Rank-based definition: the k-th smallest sample with
	// k = max(1, ceil(p·n)) — p=0 is the minimum, p=1 the maximum.
	rank := int64(math.Ceil(p * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	// The extreme ranks are the exact tracked extremes — this is what keeps
	// the p=1 (and p=0) report honest even when the sample was clamped into
	// an out-of-range bucket.
	if rank == 1 {
		return h.vmin, h.vmin
	}
	if rank == h.total {
		return h.vmax, h.vmax
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			lo, hi = h.bucketBounds(i)
			// The exact extremes tighten the bucket: clamped samples (and
			// the open-ended last bucket) stay bounded by reality.
			if lo < h.vmin {
				lo = h.vmin
			}
			if hi > h.vmax {
				hi = h.vmax
			}
			if lo > hi {
				lo = hi
			}
			return lo, hi
		}
	}
	return h.vmax, h.vmax // unreachable: cum == total >= rank
}

// Merge adds other's counts into h. The layouts must be identical
// (same min, max and sub-bucket count) — counts are exact integers, so
// the merge is lossless and Quantile over the merged histogram equals
// Quantile over a single histogram fed both streams.
func (h *HDR) Merge(other *HDR) error {
	if other == nil {
		return nil
	}
	if h.min != other.min || h.max != other.max || h.sub != other.sub {
		return fmt.Errorf("obs: HDR layout mismatch: [%g, %g)/%d vs [%g, %g)/%d",
			h.min, h.max, h.sub, other.min, other.max, other.sub)
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if other.total > 0 {
		if h.total == 0 || other.vmin < h.vmin {
			h.vmin = other.vmin
		}
		if other.vmax > h.vmax {
			h.vmax = other.vmax
		}
	}
	h.total += other.total
	h.sum += other.sum
	h.under += other.under
	h.over += other.over
	return nil
}

// Reset zeroes every count, keeping the layout — the saturation window
// recycles epochs this way instead of reallocating 32 KiB per rotation.
func (h *HDR) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total, h.sum = 0, 0
	h.vmin, h.vmax = 0, 0
	h.under, h.over = 0, 0
}

// Clone returns an independent copy (same layout, same counts).
func (h *HDR) Clone() *HDR {
	c := NewHDR(h.min, h.max, h.sub)
	c.Merge(h) //nolint:errcheck // identical layout by construction
	return c
}
