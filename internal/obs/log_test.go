package obs

import (
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug,
		"info":  slog.LevelInfo,
		"INFO":  slog.LevelInfo,
		"warn":  slog.LevelWarn,
		"error": slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel(loud) should fail")
	}
}

func TestNewLoggerFormats(t *testing.T) {
	var sb strings.Builder
	lg, err := NewLogger(&sb, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	lg.Debug("hidden")
	lg.Info("visible", "job_id", "j-000001")
	line := strings.TrimSpace(sb.String())
	if strings.Count(line, "\n") != 0 {
		t.Fatalf("want exactly one log line, got %q", sb.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("json log line %q: %v", line, err)
	}
	if rec["msg"] != "visible" || rec["job_id"] != "j-000001" {
		t.Errorf("log record: %v", rec)
	}

	sb.Reset()
	lg, err = NewLogger(&sb, "warn", "text")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hidden")
	lg.Warn("shown")
	if !strings.Contains(sb.String(), "msg=shown") || strings.Contains(sb.String(), "hidden") {
		t.Errorf("text log filtering: %q", sb.String())
	}

	if _, err := NewLogger(&sb, "info", "xml"); err == nil {
		t.Error("xml format should fail")
	}
	if _, err := NewLogger(&sb, "loud", "text"); err == nil {
		t.Error("bad level should fail")
	}
}

func TestContextLogger(t *testing.T) {
	if LoggerFromContext(context.Background()) == nil {
		t.Fatal("missing logger must fall back to nop, not nil")
	}
	var sb strings.Builder
	lg, err := NewLogger(&sb, "debug", "text")
	if err != nil {
		t.Fatal(err)
	}
	ctx := ContextWithLogger(context.Background(), lg.With("request_id", "r-1"))
	LoggerFromContext(ctx).Info("correlated")
	if !strings.Contains(sb.String(), "request_id=r-1") {
		t.Errorf("context logger lost attrs: %q", sb.String())
	}
}

func TestProgressEmit(t *testing.T) {
	var got []Event
	var p Progress = func(ev Event) { got = append(got, ev) }
	p.Emit(Event{Stage: StageFBSM, Step: 3, Value: 0.5})
	var nilP Progress
	nilP.Emit(Event{Stage: StageODE}) // must not panic
	if len(got) != 1 || got[0].Stage != StageFBSM || got[0].Step != 3 {
		t.Errorf("events: %+v", got)
	}
}
