// Package obs is the repository's dependency-free observability layer:
//
//   - a metrics Registry of atomic counters, gauges and fixed-bucket
//     histograms, exported in the Prometheus text exposition format
//     (expfmt.go) and scraped by rumord's GET /metrics;
//   - log/slog constructors with a shared -log-level/-log-format flag
//     vocabulary and context propagation, so a request or job id attached
//     at the HTTP edge correlates every log line it causes (log.go);
//   - a solver progress vocabulary (Event/Progress in progress.go) threaded
//     through internal/ode, internal/core, internal/control and
//     internal/abm, surfaced live on rumord's GET /v1/jobs/{id}.
//
// The package deliberately depends only on the standard library; solver
// packages may import it without pulling in any service machinery. All
// metric types are safe for concurrent use and their hot paths
// (Counter.Inc, Gauge.Set, Histogram.Observe) are lock-free.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name/value pair attached to a metric series. Series are
// registered with a fixed label set — cardinality is decided at
// registration time, never at observation time (see DESIGN.md §8 for the
// cardinality rules).
type Label struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Registry holds metric families and renders them in Prometheus text
// format. The zero value is not usable; call NewRegistry. Registration
// takes a mutex; observations on the returned metrics are lock-free.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// family groups every series registered under one metric name; HELP/TYPE
// lines are emitted once per family.
type family struct {
	name, help string
	typ        string // "counter", "gauge", "histogram"
	series     []*series
}

// series is one (name, labels) time series.
type series struct {
	labels []Label
	sig    string // canonical label signature, for dedup and sort

	c  *Counter
	g  *Gauge
	gf func() float64
	h  *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// Counter registers (or returns the existing) counter series under name
// with the given labels. It panics on a malformed name or a type conflict
// with a previously registered family — both programmer errors caught at
// startup.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.register(name, help, "counter", labels)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge registers (or returns the existing) settable gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.register(name, help, "gauge", labels)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time.
// fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.register(name, help, "gauge", labels)
	s.gf = fn
}

// Histogram registers (or returns the existing) histogram series with the
// given bucket upper bounds (ascending; a +Inf bucket is implicit). A nil
// buckets slice selects DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	s := r.register(name, help, "histogram", labels)
	if s.h == nil {
		s.h = NewHistogram(buckets)
	}
	return s.h
}

func (r *Registry) register(name, help, typ string, labels []Label) *series {
	if err := checkName(name); err != nil {
		panic(fmt.Sprintf("obs: %v", err))
	}
	for _, l := range labels {
		if err := checkName(l.Name); err != nil {
			panic(fmt.Sprintf("obs: label of %s: %v", name, err))
		}
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	sig := labelSignature(sorted)

	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.fams[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s re-registered as %s, was %s", name, typ, f.typ))
	}
	for _, s := range f.series {
		if s.sig == sig {
			return s
		}
	}
	s := &series{labels: sorted, sig: sig}
	f.series = append(f.series, s)
	return s
}

// checkName enforces the Prometheus metric/label name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func checkName(name string) error {
	if name == "" {
		return fmt.Errorf("empty metric or label name")
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("invalid metric or label name %q", name)
		}
	}
	return nil
}

func labelSignature(sorted []Label) string {
	if len(sorted) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range sorted {
		b.WriteString(l.Name)
		b.WriteByte('\x00')
		b.WriteString(l.Value)
		b.WriteByte('\x00')
	}
	return b.String()
}

// Counter is a monotonically increasing integer metric. The zero value is
// usable; all methods are lock-free and safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative increments are ignored (counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float metric that may go up and down. The zero value is
// usable; all methods are lock-free and safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (use a negative delta to subtract).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefBuckets are the default latency buckets in seconds, spanning sub-ms
// HTTP handling up to rumord's 10-minute job-timeout cap.
var DefBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60, 120, 300, 600,
}

// Histogram counts observations into fixed buckets and tracks their sum
// and maximum. Observations are lock-free; a concurrent scrape sees a
// near-consistent snapshot (counts may trail the sum by in-flight
// observations, which Prometheus tolerates by design).
type Histogram struct {
	upper  []float64 // ascending bucket upper bounds; +Inf is implicit
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomicFloat
	max    atomicFloat
}

// ValidateBuckets checks a histogram bucket layout: the slice must be
// non-empty, strictly ascending, and every bound finite — the +Inf
// overflow bucket is implicit, so an explicit +Inf (or any non-finite)
// bound would silently shadow it, and NewHistogram rejects it here at
// registration instead. A nil slice is valid (it selects DefBuckets).
func ValidateBuckets(buckets []float64) error {
	if buckets == nil {
		return nil
	}
	if len(buckets) == 0 {
		return fmt.Errorf("histogram buckets empty (pass nil for DefBuckets)")
	}
	for i, b := range buckets {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return fmt.Errorf("histogram bucket %d is %g; bounds must be finite (+Inf is implicit)", i, b)
		}
		if i > 0 && b <= buckets[i-1] {
			return fmt.Errorf("histogram buckets not ascending at %d: %g after %g", i, b, buckets[i-1])
		}
	}
	return nil
}

// NewHistogram builds an unregistered histogram (Registry.Histogram is the
// usual entry point). A nil buckets slice selects DefBuckets; anything
// else must satisfy ValidateBuckets, and a malformed layout panics — a
// programmer error caught at registration, before any observation is
// misbinned.
func NewHistogram(buckets []float64) *Histogram {
	if err := ValidateBuckets(buckets); err != nil {
		panic(fmt.Sprintf("obs: %v", err))
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	h := &Histogram{
		upper:  append([]float64(nil), buckets...),
		counts: make([]atomic.Int64, len(buckets)+1), // last is +Inf
	}
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v) // first bucket with upper >= v (le semantics)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
	h.max.storeMax(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// Max returns the largest observation (0 before any observation).
func (h *Histogram) Max() float64 { return h.max.load() }

// Overflow returns the number of observations above the highest explicit
// bucket bound — the ones the fixed layout can only clamp into the +Inf
// bucket. A nonzero overflow means the bucket layout no longer covers the
// distribution and quantile reads above it are pinned to Max; the registry
// exports it as a companion <name>_overflow_total counter so the condition
// is visible on a scrape instead of silently degrading accuracy.
func (h *Histogram) Overflow() int64 { return h.counts[len(h.upper)].Load() }

// Quantile estimates the p-quantile (p in [0, 1]) by linear interpolation
// inside the bucket holding the target rank, the same estimate
// Prometheus's histogram_quantile computes. Samples in the +Inf overflow
// bucket clamp to the observed maximum. Returns 0 before any observation.
func (h *Histogram) Quantile(p float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	rank := p * float64(total)
	var cum int64
	lower := 0.0
	for i, upper := range h.upper {
		n := h.counts[i].Load()
		if float64(cum)+float64(n) >= rank {
			if n == 0 {
				return upper
			}
			frac := (rank - float64(cum)) / float64(n)
			return lower + frac*(upper-lower)
		}
		cum += n
		lower = upper
	}
	return h.max.load()
}

// atomicFloat is a float64 with lock-free add and max, stored as bits.
type atomicFloat struct {
	bits atomic.Uint64
}

func (a *atomicFloat) load() float64 { return math.Float64frombits(a.bits.Load()) }

func (a *atomicFloat) add(v float64) {
	for {
		old := a.bits.Load()
		if a.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (a *atomicFloat) storeMax(v float64) {
	for {
		old := a.bits.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if a.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}
