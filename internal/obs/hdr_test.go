package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile is the reference implementation the HDR is golden-tested
// against: the k-th smallest sample with k = max(1, ceil(p·n)).
func exactQuantile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	k := int(math.Ceil(p * float64(len(sorted))))
	if k < 1 {
		k = 1
	}
	if k > len(sorted) {
		k = len(sorted)
	}
	return sorted[k-1]
}

var quantilePoints = []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1}

// TestHDRMatchesReference drives the HDR and a keep-every-sample reference
// with identical streams across several shapes and asserts, for every
// quantile point, that (a) the exact sample quantile lies inside
// QuantileBounds and (b) the point estimate is within the advertised
// relative error.
func TestHDRMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	shapes := map[string]func() float64{
		// Log-uniform across six decades: every bucket scale exercised.
		"loguniform": func() float64 { return math.Pow(10, -6+6*rng.Float64()) },
		// Lognormal around 10ms: the realistic latency body + tail.
		"lognormal": func() float64 { return 0.01 * math.Exp(0.8*rng.NormFloat64()) },
		// Bimodal: cache hits ~100µs, cold solves ~50ms.
		"bimodal": func() float64 {
			if rng.Intn(2) == 0 {
				return 1e-4 * (1 + 0.2*rng.Float64())
			}
			return 5e-2 * (1 + 0.2*rng.Float64())
		},
	}
	for name, draw := range shapes {
		t.Run(name, func(t *testing.T) {
			h := DefaultLatencyHDR()
			samples := make([]float64, 0, 20000)
			for i := 0; i < 20000; i++ {
				v := draw()
				h.Record(v)
				samples = append(samples, v)
			}
			sort.Float64s(samples)
			for _, p := range quantilePoints {
				exact := exactQuantile(samples, p)
				lo, hi := h.QuantileBounds(p)
				if exact < lo || exact > hi {
					t.Errorf("p=%g: exact %g outside bounds [%g, %g]", p, exact, lo, hi)
				}
				got := h.Quantile(p)
				if relErr := math.Abs(got-exact) / exact; relErr > h.RelativeError() {
					t.Errorf("p=%g: estimate %g vs exact %g, rel err %.4f > %.4f",
						p, got, exact, relErr, h.RelativeError())
				}
			}
		})
	}
}

// TestHDRQuantileEdges pins the distribution edges the estimator must not
// fumble: empty, a single observation, and all mass inside one bucket.
func TestHDRQuantileEdges(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		h := DefaultLatencyHDR()
		for _, p := range quantilePoints {
			if got := h.Quantile(p); got != 0 {
				t.Errorf("empty Quantile(%g) = %g, want 0", p, got)
			}
			if lo, hi := h.QuantileBounds(p); lo != 0 || hi != 0 {
				t.Errorf("empty QuantileBounds(%g) = (%g, %g), want (0, 0)", p, lo, hi)
			}
		}
		if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
			t.Errorf("empty histogram reports count=%d sum=%g mean=%g",
				h.Count(), h.Sum(), h.Mean())
		}
	})
	t.Run("single", func(t *testing.T) {
		h := DefaultLatencyHDR()
		h.Record(0.0042)
		for _, p := range quantilePoints {
			// One sample: every quantile is exactly it (the bounds collapse
			// to the exact extremes).
			if got := h.Quantile(p); got != 0.0042 {
				t.Errorf("single Quantile(%g) = %g, want 0.0042", p, got)
			}
		}
		if h.Min() != 0.0042 || h.Max() != 0.0042 {
			t.Errorf("single min/max = %g/%g", h.Min(), h.Max())
		}
	})
	t.Run("all-mass-one-bucket", func(t *testing.T) {
		h := DefaultLatencyHDR()
		for i := 0; i < 1000; i++ {
			h.Record(0.001) // identical value: one bucket holds everything
		}
		for _, p := range quantilePoints {
			if got := h.Quantile(p); got != 0.001 {
				t.Errorf("Quantile(%g) = %g, want 0.001 (bounds clamp to exact extremes)", p, got)
			}
		}
	})
	t.Run("clamping", func(t *testing.T) {
		h := NewHDR(1e-3, 1, 32)
		h.Record(-5)   // negative -> treated as 0 -> underflow clamp
		h.Record(1e-9) // below min
		h.Record(42)   // above max
		h.Record(0.5)  // in range
		if h.Underflow() != 2 || h.Overflow() != 1 {
			t.Errorf("under/over = %d/%d, want 2/1", h.Underflow(), h.Overflow())
		}
		if h.Count() != 4 {
			t.Errorf("count = %d, want 4 (clamped observations still count)", h.Count())
		}
		if h.Max() != 42 {
			t.Errorf("max = %g, want the exact overflowed 42", h.Max())
		}
		// p=1 must report the exact max even though the sample was clamped.
		if got := h.Quantile(1); got != 42 {
			t.Errorf("Quantile(1) = %g, want 42", got)
		}
	})
}

// TestHDRMergeEquivalence is the merge-then-quantile vs
// observe-then-quantile satellite: splitting one stream across k
// recorders and merging must reproduce the single-recorder histogram
// exactly (counts are integers; the merge is lossless).
func TestHDRMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	single := DefaultLatencyHDR()
	parts := []*HDR{DefaultLatencyHDR(), DefaultLatencyHDR(), DefaultLatencyHDR()}
	for i := 0; i < 9000; i++ {
		v := 0.002 * math.Exp(1.1*rng.NormFloat64())
		single.Record(v)
		parts[i%len(parts)].Record(v)
	}
	merged := DefaultLatencyHDR()
	for _, p := range parts {
		if err := merged.Merge(p); err != nil {
			t.Fatal(err)
		}
	}
	if merged.Count() != single.Count() {
		t.Fatalf("merged count %d, want %d", merged.Count(), single.Count())
	}
	// Sums accumulate in different orders, so allow float rounding slack.
	if math.Abs(merged.Sum()-single.Sum()) > 1e-9*single.Sum() {
		t.Fatalf("merged sum %g, want %g", merged.Sum(), single.Sum())
	}
	if merged.Min() != single.Min() || merged.Max() != single.Max() {
		t.Fatalf("merged min/max %g/%g, want %g/%g",
			merged.Min(), merged.Max(), single.Min(), single.Max())
	}
	for _, p := range quantilePoints {
		mLo, mHi := merged.QuantileBounds(p)
		sLo, sHi := single.QuantileBounds(p)
		if mLo != sLo || mHi != sHi {
			t.Errorf("p=%g: merged bounds (%g, %g) != single (%g, %g)", p, mLo, mHi, sLo, sHi)
		}
		if merged.Quantile(p) != single.Quantile(p) {
			t.Errorf("p=%g: merged quantile %g != single %g", p, merged.Quantile(p), single.Quantile(p))
		}
	}
}

func TestHDRMergeLayoutMismatch(t *testing.T) {
	a := NewHDR(1e-6, 100, 64)
	b := NewHDR(1e-6, 200, 64)
	if err := a.Merge(b); err == nil {
		t.Fatal("merging mismatched layouts must fail")
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("merging nil must be a no-op, got %v", err)
	}
}

func TestHDRResetAndClone(t *testing.T) {
	h := NewHDR(1e-6, 100, 64)
	for i := 1; i <= 100; i++ {
		h.Record(float64(i) * 1e-3)
	}
	c := h.Clone()
	h.Reset()
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Errorf("reset histogram still reports count=%d p50=%g", h.Count(), h.Quantile(0.5))
	}
	if c.Count() != 100 {
		t.Errorf("clone lost counts: %d", c.Count())
	}
	if got, want := c.Quantile(0.5), 0.05; math.Abs(got-want)/want > c.RelativeError() {
		t.Errorf("clone p50 = %g, want ~%g", got, want)
	}
}

func TestNewHDRPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero-min":    func() { NewHDR(0, 1, 8) },
		"max-leq-min": func() { NewHDR(1, 1, 8) },
		"zero-sub":    func() { NewHDR(1e-6, 1, 0) },
		"inf-max":     func() { NewHDR(1e-6, math.Inf(1), 8) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("want panic")
				}
			}()
			fn()
		})
	}
}

// TestHistogramQuantileEdges covers the same distribution edges for the
// fixed-bucket Histogram's interpolating estimator.
func TestHistogramQuantileEdges(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		h := NewHistogram([]float64{1, 2, 4})
		if got := h.Quantile(0.99); got != 0 {
			t.Errorf("empty Quantile = %g, want 0", got)
		}
	})
	t.Run("single", func(t *testing.T) {
		h := NewHistogram([]float64{1, 2, 4})
		h.Observe(1.5)
		got := h.Quantile(0.5)
		if got < 1 || got > 2 {
			t.Errorf("single-sample Quantile(0.5) = %g, outside its bucket (1, 2]", got)
		}
	})
	t.Run("all-mass-one-bucket", func(t *testing.T) {
		h := NewHistogram([]float64{1, 2, 4})
		for i := 0; i < 100; i++ {
			h.Observe(3)
		}
		for _, p := range []float64{0.01, 0.5, 0.999} {
			got := h.Quantile(p)
			if got < 2 || got > 4 {
				t.Errorf("Quantile(%g) = %g, outside the (2, 4] bucket holding all mass", p, got)
			}
		}
	})
	t.Run("overflow-clamps-to-max", func(t *testing.T) {
		h := NewHistogram([]float64{1})
		h.Observe(100)
		if got := h.Quantile(0.99); got != 100 {
			t.Errorf("over-range Quantile = %g, want the observed max 100", got)
		}
	})
}
