package invariant

import (
	"sort"
	"sync"
	"testing"

	"rumornet/internal/obs"
)

// collect returns a monitor recording violations into the returned slice
// pointer's target (reads are safe once the emitting calls return).
func collect(cfg Config) (*Monitor, *[]Violation) {
	var (
		mu sync.Mutex
		vs []Violation
	)
	m := New(cfg, func(v Violation) {
		mu.Lock()
		vs = append(vs, v)
		mu.Unlock()
	})
	return m, &vs
}

func TestCleanTrajectoryIsSilent(t *testing.T) {
	m, vs := collect(Config{})
	for i := 1; i <= 100; i++ {
		m.Observe(obs.Event{Stage: obs.StageODE, Step: i, T: float64(i), Value: 0.3, MinI: 0.01, MassErr: 0})
		m.Observe(obs.Event{Stage: obs.StageABM, Step: i, Value: 0.4, MassErr: 0})
	}
	for i := 1; i <= 20; i++ {
		m.Observe(obs.Event{Stage: obs.StageFBSM, Step: i, Value: 1.0 / float64(i)})
	}
	m.CheckOutcome(0.8, 0.01) // subcritical, extinct: fine
	m.CheckOutcome(2.5, 0.4)  // supercritical, endemic: fine
	if len(*vs) != 0 {
		t.Fatalf("clean stream produced violations: %+v", *vs)
	}
}

func TestChecksFireOncePerJob(t *testing.T) {
	cases := []struct {
		name  string
		check string
		emit  func(m *Monitor)
	}{
		{"mass ode", CheckMass, func(m *Monitor) {
			m.Observe(obs.Event{Stage: obs.StageODE, T: 3, MassErr: 0.5})
		}},
		{"mass fbsm forward", CheckMass, func(m *Monitor) {
			m.Observe(obs.Event{Stage: obs.StageFBSMForward, T: 3, MassErr: 1e-3})
		}},
		{"mass abm", CheckMass, func(m *Monitor) {
			m.Observe(obs.Event{Stage: obs.StageABM, T: 3, MassErr: 0.01, Value: 0.2})
		}},
		{"theta high", CheckTheta, func(m *Monitor) {
			m.Observe(obs.Event{Stage: obs.StageODE, Value: 1.2})
		}},
		{"theta negative", CheckTheta, func(m *Monitor) {
			m.Observe(obs.Event{Stage: obs.StageFBSMForward, Value: -0.1})
		}},
		{"abm fraction out of range", CheckTheta, func(m *Monitor) {
			m.Observe(obs.Event{Stage: obs.StageABM, Value: 1.5})
		}},
		{"negative density", CheckNegative, func(m *Monitor) {
			m.Observe(obs.Event{Stage: obs.StageODE, Value: 0.2, MinI: -1e-3})
		}},
		{"r0 outcome", CheckR0Outcome, func(m *Monitor) {
			m.CheckOutcome(0.9, 0.3)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, vs := collect(Config{})
			tc.emit(m)
			tc.emit(m) // latch: the repeat must not fire again
			if len(*vs) != 1 {
				t.Fatalf("violations = %d, want exactly 1 (latched)", len(*vs))
			}
			v := (*vs)[0]
			if v.Check != tc.check {
				t.Errorf("check %q, want %q", v.Check, tc.check)
			}
			if v.Msg == "" {
				t.Error("empty violation message")
			}
			if got := m.Violations(); len(got) != 1 || got[0] != tc.check {
				t.Errorf("Violations() = %v", got)
			}
		})
	}
}

func TestFBSMDivergence(t *testing.T) {
	m, vs := collect(Config{DivergeAfter: 3})
	// Decreasing, then a 2-long bump (below the threshold), then recovery.
	for i, r := range []float64{1, 0.5, 0.6, 0.7, 0.3, 0.2} {
		m.Observe(obs.Event{Stage: obs.StageFBSM, Step: i + 1, Value: r})
	}
	if len(*vs) != 0 {
		t.Fatalf("sub-threshold oscillation flagged: %+v", *vs)
	}
	// Three consecutive increases trip DivergeAfter=3.
	for i, r := range []float64{0.25, 0.3, 0.35} {
		m.Observe(obs.Event{Stage: obs.StageFBSM, Step: 7 + i, Value: r})
	}
	if len(*vs) != 1 || (*vs)[0].Check != CheckDivergence {
		t.Fatalf("violations: %+v", *vs)
	}
	if (*vs)[0].Event.Step != 9 {
		t.Errorf("flagged at iteration %d, want 9", (*vs)[0].Event.Step)
	}
}

func TestR0OutcomeRespectsThreshold(t *testing.T) {
	m, vs := collect(Config{R0ExtinctI: 0.1})
	m.CheckOutcome(0.9, 0.09) // below the tail threshold: fine
	m.CheckOutcome(1.8, 0.5)  // supercritical may stay endemic: fine
	if len(*vs) != 0 {
		t.Fatalf("false positives: %+v", *vs)
	}
	m.CheckOutcome(0.9, 0.11)
	if len(*vs) != 1 {
		t.Fatalf("missed the r0 contradiction: %+v", *vs)
	}
}

func TestTolerancesRespected(t *testing.T) {
	m, vs := collect(Config{MassTol: 1e-3, NegTol: 1e-3, ThetaTol: 1e-3})
	m.Observe(obs.Event{Stage: obs.StageODE, MassErr: 5e-4, MinI: -5e-4, Value: 1.0005})
	if len(*vs) != 0 {
		t.Fatalf("within-tolerance event flagged: %+v", *vs)
	}
	m.Observe(obs.Event{Stage: obs.StageODE, MassErr: 2e-3, MinI: -2e-3, Value: 1.002})
	got := m.Violations()
	sort.Strings(got)
	want := []string{CheckMass, CheckNegative, CheckTheta}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("violations = %v, want %v", got, want)
	}
}

func TestNilMonitorInert(t *testing.T) {
	var m *Monitor
	m.Observe(obs.Event{Stage: obs.StageODE, MassErr: 1})
	m.CheckOutcome(0.5, 1)
	if m.Violations() != nil {
		t.Error("nil monitor reported violations")
	}
}

func TestConcurrentObserve(t *testing.T) {
	m, vs := collect(Config{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				m.Observe(obs.Event{Stage: obs.StageABM, Step: i, Value: 0.3, MassErr: 0.5})
			}
		}(w)
	}
	wg.Wait()
	if len(*vs) != 1 {
		t.Fatalf("violations = %d under concurrency, want the single latched one", len(*vs))
	}
}

func TestChecksListMatchesConstants(t *testing.T) {
	got := Checks()
	if len(got) != 5 {
		t.Fatalf("Checks() = %v", got)
	}
	seen := map[string]bool{}
	for _, c := range got {
		seen[c] = true
	}
	for _, want := range []string{CheckMass, CheckTheta, CheckNegative, CheckDivergence, CheckR0Outcome} {
		if !seen[want] {
			t.Errorf("Checks() missing %q", want)
		}
	}
}
