// Package invariant watches solver progress events for numerical
// violations of the model's mathematical guarantees — the checks related
// rumor-model work validates trajectories against, evaluated online so a
// silently-diverging job is flagged while it runs instead of after a bad
// figure ships.
//
// The checks and their grounding (see DESIGN.md §9 for tolerances):
//
//   - mass_conservation: System (1) gives d(S_i+I_i)/dt = α − ε1·S_i −
//     ε2·I_i ≤ α per degree group, so S_i+I_i may exceed 1 only by the
//     α-inflow envelope: S_i(t)+I_i(t) ≤ 1 + α·t (R_i = 1−S_i−I_i is
//     derived, DESIGN.md §2). Event.MassErr carries the worst excess.
//     The ABM's compartment counts partition the node set exactly, so its
//     MassErr is |S+I+R − 1|.
//   - theta_range: Θ(t) = (1/⟨k⟩)·Σ_j φ(k_j)·I_j is a convex-ish average
//     of densities and must stay in [0, 1] (Eq. (2)); Event.Value carries
//     Θ for ODE checkpoints and the infected fraction for ABM steps.
//   - negative_density: I_i(t) ≥ 0 for every group — the RK4 integration
//     of Eq. (1) can undershoot on coarse grids. Event.MinI carries the
//     smallest group density.
//   - fbsm_divergence: the forward–backward sweep's relative control
//     change (Event.Value on fbsm iterations) should trend down; K
//     consecutive increases flag a non-converging Pontryagin iteration
//     (Section IV / Eq. (13)–(19)).
//   - r0_outcome: Theorem 5 — r0 ≤ 1 implies extinction, so a final
//     infected fraction materially above zero contradicts the threshold
//     theory (Eq. (5) defines r0).
//
// A Monitor is per-job and latches: each check fires at most once per job,
// so a violation storm costs one journal entry, one counter increment and
// one WARN instead of thousands.
package invariant

import (
	"fmt"
	"sync"

	"rumornet/internal/obs"
)

// Check names, used as the check label of
// rumor_invariant_violations_total and in journal entries.
const (
	CheckMass       = "mass_conservation"
	CheckTheta      = "theta_range"
	CheckNegative   = "negative_density"
	CheckDivergence = "fbsm_divergence"
	CheckR0Outcome  = "r0_outcome"
)

// Checks lists every check name, for metric pre-registration.
func Checks() []string {
	return []string{CheckMass, CheckTheta, CheckNegative, CheckDivergence, CheckR0Outcome}
}

// Config sets the detection tolerances. The zero value selects the
// documented defaults.
type Config struct {
	// MassTol bounds the per-group mass excess max_i(S_i+I_i − (1+α·t))
	// before CheckMass fires (default 1e-6 — RK4 roundoff is orders of
	// magnitude below it at the paper's step sizes).
	MassTol float64
	// ThetaTol pads the admissible Θ range to [−ThetaTol, 1+ThetaTol]
	// (default 1e-9).
	ThetaTol float64
	// NegTol is how far below zero a group density may undershoot before
	// CheckNegative fires (default 1e-9).
	NegTol float64
	// DivergeAfter is how many consecutive residual increases flag a
	// diverging FBSM iteration (default 5 — the relaxed sweep oscillates
	// by one or two on hard problems without being lost).
	DivergeAfter int
	// R0ExtinctI is the final infected fraction a subcritical (r0 ≤ 1)
	// run may end with before CheckR0Outcome fires (default 0.05 —
	// extinction is asymptotic, finite horizons retain a tail).
	R0ExtinctI float64
}

func (c Config) withDefaults() Config {
	if c.MassTol <= 0 {
		c.MassTol = 1e-6
	}
	if c.ThetaTol <= 0 {
		c.ThetaTol = 1e-9
	}
	if c.NegTol <= 0 {
		c.NegTol = 1e-9
	}
	if c.DivergeAfter <= 0 {
		c.DivergeAfter = 5
	}
	if c.R0ExtinctI <= 0 {
		c.R0ExtinctI = 0.05
	}
	return c
}

// Violation describes one detected invariant breach.
type Violation struct {
	// Check is the Check* constant that fired.
	Check string
	// Msg is a human-readable description with the observed magnitude.
	Msg string
	// Event is the progress checkpoint that triggered the check (zero for
	// CheckR0Outcome, which evaluates the final result).
	Event obs.Event
}

// Monitor evaluates the checks against one job's progress stream. Safe
// for concurrent use — ABM trial fan-outs emit from several goroutines. A
// nil Monitor is inert.
type Monitor struct {
	cfg    Config
	onViol func(Violation)

	mu      sync.Mutex
	fired   map[string]bool
	prevRes float64
	resSeen bool
	incRuns int
}

// New builds a monitor calling onViolation for each first-per-check
// breach. onViolation runs inline on the emitting goroutine with the
// monitor locked: it must be cheap and must not call back into the
// Monitor.
func New(cfg Config, onViolation func(Violation)) *Monitor {
	return &Monitor{cfg: cfg.withDefaults(), onViol: onViolation, fired: make(map[string]bool)}
}

// violate latches and reports a check. Callers hold m.mu.
func (m *Monitor) violateLocked(check, msg string, ev obs.Event) {
	if m.fired[check] {
		return
	}
	m.fired[check] = true
	if m.onViol != nil {
		m.onViol(Violation{Check: check, Msg: msg, Event: ev})
	}
}

// Observe evaluates one progress event. It is designed to sit on the
// service's progress sink: a handful of float compares per event.
func (m *Monitor) Observe(ev obs.Event) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	switch ev.Stage {
	case obs.StageODE, obs.StageFBSMForward:
		if ev.MassErr > m.cfg.MassTol {
			m.violateLocked(CheckMass,
				fmt.Sprintf("group mass S+I exceeds the 1+α·t envelope by %.3g at t=%.4g (tol %g)",
					ev.MassErr, ev.T, m.cfg.MassTol), ev)
		}
		if ev.Value < -m.cfg.ThetaTol || ev.Value > 1+m.cfg.ThetaTol {
			m.violateLocked(CheckTheta,
				fmt.Sprintf("Θ(t) = %.6g outside [0, 1] at t=%.4g", ev.Value, ev.T), ev)
		}
		if ev.MinI < -m.cfg.NegTol {
			m.violateLocked(CheckNegative,
				fmt.Sprintf("group density I_i = %.3g below zero at t=%.4g (tol %g)",
					ev.MinI, ev.T, m.cfg.NegTol), ev)
		}
	case obs.StageABM:
		if ev.MassErr > m.cfg.MassTol {
			m.violateLocked(CheckMass,
				fmt.Sprintf("ABM compartments do not partition the nodes: |S+I+R−1| = %.3g at t=%.4g",
					ev.MassErr, ev.T), ev)
		}
		if ev.Value < -m.cfg.ThetaTol || ev.Value > 1+m.cfg.ThetaTol {
			m.violateLocked(CheckTheta,
				fmt.Sprintf("ABM infected fraction %.6g outside [0, 1] at t=%.4g", ev.Value, ev.T), ev)
		}
	case obs.StageFBSM:
		if m.resSeen && ev.Value > m.prevRes {
			m.incRuns++
			if m.incRuns >= m.cfg.DivergeAfter {
				m.violateLocked(CheckDivergence,
					fmt.Sprintf("FBSM residual rose for %d consecutive sweeps (%.3g at iteration %d)",
						m.incRuns, ev.Value, ev.Step), ev)
			}
		} else {
			m.incRuns = 0
		}
		m.prevRes = ev.Value
		m.resSeen = true
	}
}

// CheckOutcome evaluates the Theorem 5 consistency of a finished run:
// call it with the model's threshold r0 and the final population-weighted
// infected fraction.
func (m *Monitor) CheckOutcome(r0, finalI float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if r0 <= 1 && finalI > m.cfg.R0ExtinctI {
		m.violateLocked(CheckR0Outcome,
			fmt.Sprintf("r0 = %.4g ≤ 1 predicts extinction (Theorem 5) but final infected fraction is %.4g (threshold %g)",
				r0, finalI, m.cfg.R0ExtinctI), obs.Event{})
	}
}

// Violations returns the names of the checks that have fired, in no
// particular order.
func (m *Monitor) Violations() []string {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.fired))
	for c := range m.fired {
		out = append(out, c)
	}
	return out
}
