package obs

import (
	"runtime"
	"sync"
	"time"
)

// Go runtime self-telemetry (DESIGN.md §13): gauge-funcs over a cached
// MemStats sample so a scrape that reads several heap gauges pays for at
// most one runtime.ReadMemStats stop-the-world per refresh window instead
// of one per gauge. Registered by every rumord mode — standalone,
// coordinator and worker — and relayed from workers to the coordinator
// in registry snapshots.

// runtimeSampleMaxAge bounds how stale the shared MemStats sample may be.
// Scrape cadences are seconds; 250ms keeps co-scraped gauges mutually
// consistent without hammering ReadMemStats under concurrent scrapers.
const runtimeSampleMaxAge = 250 * time.Millisecond

type runtimeSampler struct {
	mu   sync.Mutex
	at   time.Time
	ms   runtime.MemStats
	seen bool
}

func (s *runtimeSampler) sample() runtime.MemStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.seen || time.Since(s.at) > runtimeSampleMaxAge {
		runtime.ReadMemStats(&s.ms)
		s.at = time.Now()
		s.seen = true
	}
	return s.ms
}

// RegisterRuntime registers the Go runtime gauges on r. Safe to call more
// than once per registry (re-registration replaces the sampling funcs).
func RegisterRuntime(r *Registry) {
	s := &runtimeSampler{}
	r.GaugeFunc("rumor_runtime_goroutines",
		"Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("rumor_runtime_gomaxprocs",
		"GOMAXPROCS of the process.",
		func() float64 { return float64(runtime.GOMAXPROCS(0)) })
	r.GaugeFunc("rumor_runtime_heap_alloc_bytes",
		"Bytes of allocated heap objects (MemStats.HeapAlloc).",
		func() float64 { return float64(s.sample().HeapAlloc) })
	r.GaugeFunc("rumor_runtime_heap_sys_bytes",
		"Bytes of heap memory obtained from the OS (MemStats.HeapSys).",
		func() float64 { return float64(s.sample().HeapSys) })
	r.GaugeFunc("rumor_runtime_gc_pause_seconds_total",
		"Cumulative GC stop-the-world pause time (MemStats.PauseTotalNs).",
		func() float64 { return float64(s.sample().PauseTotalNs) / 1e9 })
	r.GaugeFunc("rumor_runtime_gc_cycles_total",
		"Completed GC cycles (MemStats.NumGC).",
		func() float64 { return float64(s.sample().NumGC) })
}
