package obs

import (
	"io"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if again := r.Counter("jobs_total", "jobs"); again != c {
		t.Error("re-registration did not return the existing counter")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "queue depth")
	g.Set(3)
	g.Inc()
	g.Dec()
	g.Add(-0.5)
	if got := g.Value(); got != 2.5 {
		t.Errorf("gauge = %g, want 2.5", got)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 8} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 14 {
		t.Errorf("sum = %g, want 14", h.Sum())
	}
	if h.Max() != 8 {
		t.Errorf("max = %g, want 8", h.Max())
	}
	// le-semantics: 1.0 lands in the le="1" bucket.
	wantCounts := []int64{2, 1, 1, 1} // (≤1], (1,2], (2,4], +Inf
	for i, want := range wantCounts {
		if got := h.counts[i].Load(); got != want {
			t.Errorf("bucket %d count = %d, want %d", i, got, want)
		}
	}
	// Median rank 2.5 falls in the first bucket ((0,1], 2 samples span
	// ranks 0–2) — no: cumulative 2 < 2.5, so it interpolates in (1,2].
	if q := h.Quantile(0.5); q < 1 || q > 2 {
		t.Errorf("p50 = %g, want within (1, 2]", q)
	}
	// p99 rank 4.95 is in the overflow bucket -> clamps to the max.
	if q := h.Quantile(0.99); q != 8 {
		t.Errorf("p99 = %g, want 8 (observed max)", q)
	}
	if q := NewHistogram(nil).Quantile(0.5); q != 0 {
		t.Errorf("empty histogram quantile = %g, want 0", q)
	}
}

func TestHistogramDefaultBuckets(t *testing.T) {
	h := NewHistogram(nil)
	if len(h.upper) != len(DefBuckets) {
		t.Fatalf("default buckets: %d, want %d", len(h.upper), len(DefBuckets))
	}
	h.Observe(math.Inf(1))
	if got := h.counts[len(h.upper)].Load(); got != 1 {
		t.Errorf("+Inf observation not in overflow bucket")
	}
}

func TestRegisterPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("ok_name", "")
	for name, fn := range map[string]func(){
		"bad metric name": func() { r.Counter("1bad", "") },
		"bad label name":  func() { r.Counter("ok2", "", L("le$", "x")) },
		"type conflict":   func() { r.Gauge("ok_name", "") },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		})
	}
}

// TestConcurrentScrape hammers every metric type from many goroutines
// while scrapes run concurrently; under -race (tier 2) this is the
// data-race gate for the registry, and it sanity-checks the final totals.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total", "hits", L("kind", "a"))
	g := r.Gauge("temp", "gauge under churn")
	h := r.Histogram("lat_seconds", "latency", []float64{0.01, 0.1, 1}, L("op", "x"))
	r.GaugeFunc("derived", "computed at scrape", func() float64 { return float64(c.Value()) })

	const (
		writers = 8
		perG    = 2000
		scrapes = 50
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%100) / 100)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < scrapes; i++ {
			if err := r.WritePrometheus(io.Discard); err != nil {
				t.Errorf("scrape %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()

	if got := c.Value(); got != writers*perG {
		t.Errorf("counter = %d, want %d", got, writers*perG)
	}
	if got := h.Count(); got != writers*perG {
		t.Errorf("histogram count = %d, want %d", got, writers*perG)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `hits_total{kind="a"} 16000`) {
		t.Errorf("final scrape missing settled counter:\n%s", sb.String())
	}
}

// TestValidateBuckets is the registration-time layout gate: non-monotonic,
// empty and non-finite bucket slices must be rejected with a clear error
// before any observation can be misbinned, while nil stays the DefBuckets
// shorthand.
func TestValidateBuckets(t *testing.T) {
	cases := []struct {
		name    string
		buckets []float64
		ok      bool
	}{
		{"nil selects defaults", nil, true},
		{"single bucket", []float64{1}, true},
		{"ascending", []float64{0.01, 0.1, 1, 10}, true},
		{"negative bounds ascending", []float64{-5, -1, 0, 2}, true},
		{"empty non-nil", []float64{}, false},
		{"descending", []float64{1, 0.1}, false},
		{"duplicate bound", []float64{1, 1, 2}, false},
		{"plateau mid-slice", []float64{0.1, 5, 5, 9}, false},
		{"explicit +Inf", []float64{1, 2, math.Inf(1)}, false},
		{"-Inf bound", []float64{math.Inf(-1), 0, 1}, false},
		{"NaN bound", []float64{1, math.NaN(), 3}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateBuckets(tc.buckets)
			if tc.ok && err != nil {
				t.Errorf("ValidateBuckets(%v) = %v, want nil", tc.buckets, err)
			}
			if !tc.ok && err == nil {
				t.Errorf("ValidateBuckets(%v) accepted a malformed layout", tc.buckets)
			}
		})
	}
}

func TestNewHistogramRejectsBadBuckets(t *testing.T) {
	for name, buckets := range map[string][]float64{
		"empty":        {},
		"non-monotone": {2, 1},
		"infinite":     {1, math.Inf(1)},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected a registration panic")
				}
			}()
			NewHistogram(buckets)
		})
	}
}
