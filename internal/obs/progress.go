package obs

import "time"

// Solver stages reported through Progress events. The solver packages emit
// these; internal/service maps them onto the job progress surfaced by
// GET /v1/jobs/{id} and onto registry metrics.
const (
	// StageODE is a mean-field integration checkpoint (internal/core on
	// top of internal/ode): Step/Total count accepted steps, T is the
	// integration time reached and Value the infectivity Θ(t).
	StageODE = "ode"
	// StageFBSM is one completed forward–backward sweep iteration
	// (internal/control): Step/Total count iterations, Value is the
	// relative L1 control-change residual the convergence test uses and
	// Cost the objective J of the schedule the sweep evaluated.
	StageFBSM = "fbsm"
	// StageFBSMForward and StageFBSMBackward are checkpoints inside one
	// sweep's forward state / backward co-state integration, emitted so a
	// long sweep is visible before its first iteration completes.
	StageFBSMForward  = "fbsm/forward"
	StageFBSMBackward = "fbsm/backward"
	// StageABM is one agent-based transition-sweep step (internal/abm):
	// Step/Total count time steps, T is simulation time, Value the
	// infected fraction and Elapsed the wall time of the sweep.
	StageABM = "abm"
	// StageABMTrials is MeanRun's trial fan-out: Step/Total count
	// completed trials.
	StageABMTrials = "abm/trials"
)

// Event is one solver progress checkpoint. Fields beyond Stage and Step
// are stage-specific; unused ones are zero. Events are values — receivers
// may retain them.
type Event struct {
	// Stage identifies the emitting loop (Stage* constants).
	Stage string
	// Step is the unit count reached: accepted ODE steps, FBSM
	// iterations, ABM time steps, completed trials.
	Step int
	// Total is the known unit total, or 0 when open-ended.
	Total int
	// T is the solver time reached, where meaningful.
	T float64
	// Value is the stage's headline scalar: Θ(t) for ODE checkpoints,
	// the convergence residual for FBSM iterations, the infected
	// fraction for ABM steps.
	Value float64
	// Cost is the FBSM objective J estimate (0 elsewhere).
	Cost float64
	// Elapsed is the wall time of the unit, where measured (ABM sweep
	// steps).
	Elapsed time.Duration

	// MinI is the smallest per-group infected density at the checkpoint
	// (ODE and FBSM-forward events): negative values mean the integration
	// undershot the I_i >= 0 bound. internal/obs/invariant watches it.
	MinI float64
	// MassErr is the checkpoint's worst mass-conservation excess: for ODE
	// and FBSM-forward events max_i(S_i+I_i - (1+alpha*t)) — System (1)'s
	// inflow alpha bounds d(S+I)/dt, so values above ~roundoff mean the
	// integration is leaking mass; for ABM steps |S+I+R - 1|, which the
	// exact compartment counts keep at 0. Non-positive values are healthy.
	MassErr float64
}

// Progress receives solver checkpoints. A nil Progress means "no
// instrumentation" and costs one branch per cadence window in the solver
// hot loops. Implementations must be safe for concurrent use: fan-outs
// (ABM trials, sharded sweeps) report from multiple goroutines, and must
// be fast — solvers call them inline.
type Progress func(Event)

// Emit calls p with ev when p is non-nil; solvers use it so emission sites
// stay one-liners.
func (p Progress) Emit(ev Event) {
	if p != nil {
		p(ev)
	}
}
