package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition format content type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, series
// sorted by label signature, one HELP/TYPE pair per family, histogram
// buckets cumulative with an explicit +Inf bucket. A scrape concurrent
// with metric updates sees a near-consistent snapshot; each individual
// value is read atomically.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.fams[name]
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		// Series order is fixed by the sorted label signature so scrapes
		// are byte-stable run to run.
		series := append([]*series(nil), f.series...)
		sort.Slice(series, func(i, j int) bool { return series[i].sig < series[j].sig })
		for _, s := range series {
			writeSeries(bw, f, s)
		}
	}
	return bw.Flush()
}

func writeSeries(w *bufio.Writer, f *family, s *series) {
	switch {
	case s.c != nil:
		fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(s.labels, nil), s.c.Value())
	case s.gf != nil:
		fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(s.labels, nil), formatFloat(s.gf()))
	case s.g != nil:
		fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(s.labels, nil), formatFloat(s.g.Value()))
	case s.h != nil:
		var cum int64
		for i, upper := range s.h.upper {
			cum += s.h.counts[i].Load()
			le := Label{Name: "le", Value: formatFloat(upper)}
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(s.labels, &le), cum)
		}
		cum += s.h.counts[len(s.h.upper)].Load()
		le := Label{Name: "le", Value: "+Inf"}
		fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(s.labels, &le), cum)
		fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(s.labels, nil), formatFloat(s.h.Sum()))
		fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(s.labels, nil), cum)
		// Companion counter: observations above the last explicit bound.
		// Silent clamping into +Inf hides a bucket layout that no longer
		// covers the distribution; this makes it alertable.
		fmt.Fprintf(w, "%s_overflow_total%s %d\n", f.name, labelString(s.labels, nil), s.h.Overflow())
	}
}

// labelString renders {a="x",b="y"} (empty string for no labels). extra,
// when non-nil, is appended after the registered labels — used for the
// histogram "le" label.
func labelString(labels []Label, extra *Label) string {
	if len(labels) == 0 && extra == nil {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if extra != nil {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extra.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

// formatFloat renders a sample value the way Prometheus clients do:
// shortest round-trip representation, with Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry as a Prometheus scrape endpoint.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_ = r.WritePrometheus(w) // headers are gone on error; nothing to do
	})
}
