package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps the shared -log-level vocabulary (debug, info, warn,
// error; case-insensitive) onto slog levels.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", s)
	}
}

// NewLogger builds a slog.Logger writing to w at the given level in the
// given format ("text" or "json"). The level/format vocabulary is shared
// by the -log-level/-log-format flags of every cmd/ binary.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
	}
}

// NopLogger returns a logger that discards everything — the default
// wherever no logger was configured, so call sites never nil-check.
func NopLogger() *slog.Logger { return slog.New(slog.DiscardHandler) }

// loggerKey carries a *slog.Logger through a context.Context.
type loggerKey struct{}

// ContextWithLogger returns a child context carrying l. rumord's HTTP
// middleware attaches a request-scoped logger (with request_id) here, and
// the job runner a job-scoped one (with job_id), so every log line caused
// by a request or job is correlatable.
func ContextWithLogger(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, loggerKey{}, l)
}

// LoggerFromContext returns the logger carried by ctx, or NopLogger when
// none was attached.
func LoggerFromContext(ctx context.Context) *slog.Logger {
	if l, ok := ctx.Value(loggerKey{}).(*slog.Logger); ok && l != nil {
		return l
	}
	return NopLogger()
}
