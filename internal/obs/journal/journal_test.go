package journal

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestAppendReplay(t *testing.T) {
	j := New(16, nil)
	j.Append(Entry{JobID: "j-1", Kind: KindLifecycle, Msg: "queued"})
	j.Append(Entry{JobID: "j-1", Kind: KindProgress, Stage: "ode", Step: 256})
	j.Append(Entry{JobID: "j-2", Kind: KindLifecycle, Msg: "queued"})

	got := j.Replay("j-1")
	if len(got) != 2 {
		t.Fatalf("replay = %d entries, want 2", len(got))
	}
	if got[0].Seq != 1 || got[1].Seq != 2 {
		t.Errorf("seqs %d, %d — want 1, 2", got[0].Seq, got[1].Seq)
	}
	if got[0].Time.IsZero() {
		t.Error("append did not stamp Time")
	}
	if got[1].Stage != "ode" || got[1].Step != 256 {
		t.Errorf("progress entry mangled: %+v", got[1])
	}
	if j.Replay("j-2")[0].Seq != 1 {
		t.Error("per-job seq not independent")
	}
	if j.Replay("unknown") != nil {
		t.Error("unknown job should replay nil")
	}
	if j.TotalLen() != 3 {
		t.Errorf("TotalLen = %d, want 3", j.TotalLen())
	}
}

// TestRingWraparound is the satellite's replay-order case: a ring of 8
// holding 20 appends must replay the last 8 entries oldest-first, with the
// Seq jump making the overwritten prefix visible.
func TestRingWraparound(t *testing.T) {
	j := New(8, nil)
	const total = 20
	for i := 1; i <= total; i++ {
		j.Append(Entry{JobID: "j-1", Kind: KindProgress, Step: i})
	}
	got := j.Replay("j-1")
	if len(got) != 8 {
		t.Fatalf("replay = %d entries, want the ring bound 8", len(got))
	}
	for i, e := range got {
		wantSeq := uint64(total - 8 + 1 + i)
		if e.Seq != wantSeq || e.Step != int(wantSeq) {
			t.Fatalf("entry %d: Seq=%d Step=%d, want %d (oldest-first)", i, e.Seq, e.Step, wantSeq)
		}
	}
	// A second full lap keeps the order straight.
	for i := total + 1; i <= total+8; i++ {
		j.Append(Entry{JobID: "j-1", Step: i})
	}
	got = j.Replay("j-1")
	if got[0].Seq != total+1 || got[7].Seq != total+8 {
		t.Fatalf("after second lap: first Seq=%d last Seq=%d", got[0].Seq, got[7].Seq)
	}
}

func TestSubscribeReplayThenLive(t *testing.T) {
	j := New(16, nil)
	j.Append(Entry{JobID: "j-1", Msg: "queued", Kind: KindLifecycle})
	history, ch, cancel := j.Subscribe("j-1")
	defer cancel()
	if len(history) != 1 || history[0].Msg != "queued" {
		t.Fatalf("history: %+v", history)
	}
	j.Append(Entry{JobID: "j-1", Kind: KindProgress, Step: 5})
	select {
	case e := <-ch:
		if e.Step != 5 || e.Seq != 2 {
			t.Errorf("live entry: %+v", e)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("live entry never arrived")
	}
	cancel()
	cancel() // idempotent
	if _, ok := <-ch; ok {
		t.Error("channel still open after cancel")
	}
	if j.Subscribers("j-1") != 0 {
		t.Errorf("subscribers = %d after cancel", j.Subscribers("j-1"))
	}
}

func TestRemoveClosesSubscribers(t *testing.T) {
	j := New(16, nil)
	j.Append(Entry{JobID: "j-1", Msg: "queued"})
	_, ch, cancel := j.Subscribe("j-1")
	defer cancel()
	j.Remove("j-1")
	select {
	case _, ok := <-ch:
		if ok {
			t.Error("expected a closed channel after Remove")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("channel not closed by Remove")
	}
	if j.Len("j-1") != 0 || j.Replay("j-1") != nil {
		t.Error("entries retained after Remove")
	}
	cancel() // must not panic on an already-removed subscription
	j.Remove("j-1")
}

func TestSlowSubscriberDrops(t *testing.T) {
	j := New(8, nil)
	_, ch, cancel := j.Subscribe("j-1")
	defer cancel()
	for i := 0; i < subBuffer+10; i++ {
		j.Append(Entry{JobID: "j-1", Step: i})
	}
	if j.Dropped() != 10 {
		t.Errorf("dropped = %d, want 10", j.Dropped())
	}
	if len(ch) != subBuffer {
		t.Errorf("buffered = %d, want %d", len(ch), subBuffer)
	}
}

func TestJSONLSink(t *testing.T) {
	var buf strings.Builder
	j := New(8, &syncWriter{w: &buf})
	j.Append(Entry{JobID: "j-1", Kind: KindLifecycle, Msg: "queued", TraceID: "abc"})
	j.Append(Entry{JobID: "j-1", Kind: KindInvariant, Check: "mass_conservation", Value: 0.2})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("sink lines = %d, want 2", len(lines))
	}
	var e Entry
	if err := json.Unmarshal([]byte(lines[1]), &e); err != nil {
		t.Fatalf("sink line not JSON: %v", err)
	}
	if e.Check != "mass_conservation" || e.Seq != 2 || e.TraceID != "" {
		t.Errorf("sink entry: %+v", e)
	}
}

func TestWriteJSONDump(t *testing.T) {
	j := New(8, nil)
	j.Append(Entry{JobID: "j-2", Msg: "queued"})
	j.Append(Entry{JobID: "j-1", Msg: "queued"})
	var buf strings.Builder
	if err := j.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Jobs     map[string][]Entry `json:"jobs"`
		JobCount int                `json:"job_count"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &dump); err != nil {
		t.Fatal(err)
	}
	if dump.JobCount != 2 || len(dump.Jobs["j-1"]) != 1 {
		t.Errorf("dump: %+v", dump)
	}
}

// syncWriter guards a strings.Builder for the sink test.
type syncWriter struct {
	mu sync.Mutex
	w  *strings.Builder
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

func TestConcurrentAppendSubscribe(t *testing.T) {
	j := New(64, nil)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("j-%d", w%2)
			for i := 0; i < 200; i++ {
				j.Append(Entry{JobID: id, Step: i})
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			id := fmt.Sprintf("j-%d", r%2)
			history, ch, cancel := j.Subscribe(id)
			var last uint64
			for _, e := range history {
				if e.Seq <= last {
					t.Errorf("history out of order: %d after %d", e.Seq, last)
				}
				last = e.Seq
			}
			for i := 0; i < 20; i++ {
				select {
				case e, ok := <-ch:
					if !ok {
						cancel()
						return
					}
					if e.Seq <= last {
						t.Errorf("live entry out of order: %d after %d", e.Seq, last)
					}
					last = e.Seq
				case <-time.After(time.Second):
					i = 20
				}
			}
			cancel()
		}(r)
	}
	wg.Wait()
	if j.Len("j-0") != 64 {
		t.Errorf("ring len = %d, want 64", j.Len("j-0"))
	}
}
