// Package journal is a per-job flight recorder: a fixed-size ring buffer
// of timestamped events for every job the service runs, with replay,
// live subscription (backing rumord's SSE endpoint), an optional JSONL
// sink for durable capture, and explicit removal so evicted jobs leave no
// payload behind. See DESIGN.md §9 for the retention rules.
//
// The package depends only on the standard library; entries are plain
// values, so publishing one to a subscriber never races with the writer.
package journal

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Entry kinds.
const (
	// KindLifecycle marks submission/start/finish transitions.
	KindLifecycle = "lifecycle"
	// KindProgress mirrors one solver progress checkpoint (obs.Event).
	KindProgress = "progress"
	// KindInvariant records a numerical-invariant violation
	// (internal/obs/invariant).
	KindInvariant = "invariant"
	// KindLease records cluster lease transitions — grant, expiry, requeue
	// — so a job's journal shows it migrating between workers.
	KindLease = "lease"
)

// Entry is one recorded event of a job. Entries are immutable once
// appended; Seq increases by one per job starting at 1, so a replay gap
// (ring overwrite) is visible to consumers as a Seq jump.
type Entry struct {
	Seq     uint64    `json:"seq"`
	Time    time.Time `json:"time"`
	JobID   string    `json:"job_id"`
	TraceID string    `json:"trace_id,omitempty"`
	Kind    string    `json:"kind"`
	// Msg is the lifecycle transition or invariant description; empty for
	// progress entries.
	Msg string `json:"msg,omitempty"`
	// Check names the violated invariant (KindInvariant only).
	Check string `json:"check,omitempty"`
	// Final marks the job's last entry; streams close after sending it.
	Final bool `json:"final,omitempty"`

	// Progress payload (KindProgress, and KindInvariant where relevant).
	Stage string  `json:"stage,omitempty"`
	Step  int     `json:"step,omitempty"`
	Total int     `json:"total,omitempty"`
	T     float64 `json:"t,omitempty"`
	Value float64 `json:"value,omitempty"`
	Cost  float64 `json:"cost,omitempty"`
}

// subscriber is one live listener on a job's entry stream.
type subscriber struct {
	ch     chan Entry
	closed bool
}

// jobLog is the per-job ring plus its live subscribers.
type jobLog struct {
	ring []Entry // capacity perJob, filled circularly
	next int     // write position once len(ring) == cap
	seq  uint64
	subs map[*subscriber]struct{}
}

// Journal is the service-wide flight recorder. The zero value is not
// usable; call New. All methods are safe for concurrent use.
type Journal struct {
	perJob int
	sink   io.Writer // optional JSONL sink, nil to disable

	mu      sync.Mutex
	jobs    map[string]*jobLog
	dropped atomic.Int64 // live entries dropped on slow subscribers
}

// subBuffer is the per-subscriber channel depth. Sends beyond it are
// dropped (and counted) rather than blocking the job's worker: the journal
// must never backpressure a solver.
const subBuffer = 256

// New returns a journal retaining up to perJob entries per job (minimum 8;
// smaller values are raised). sink, when non-nil, additionally receives
// every entry as one JSON line; writes are serialized under the journal
// lock and errors are ignored (the sink is best-effort capture, the ring
// is the source of truth).
func New(perJob int, sink io.Writer) *Journal {
	if perJob < 8 {
		perJob = 8
	}
	return &Journal{perJob: perJob, sink: sink, jobs: make(map[string]*jobLog)}
}

func (j *Journal) logFor(id string) *jobLog {
	l := j.jobs[id]
	if l == nil {
		l = &jobLog{ring: make([]Entry, 0, j.perJob), subs: make(map[*subscriber]struct{})}
		j.jobs[id] = l
	}
	return l
}

// Append records one entry for e.JobID, stamping Seq (per job) and Time
// (when zero), writes it to the JSONL sink, and fans it out to live
// subscribers. Slow subscribers lose entries rather than block.
func (j *Journal) Append(e Entry) {
	if e.JobID == "" {
		return
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	j.mu.Lock()
	l := j.logFor(e.JobID)
	l.seq++
	e.Seq = l.seq
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, e)
	} else {
		l.ring[l.next] = e
		l.next = (l.next + 1) % cap(l.ring)
	}
	if j.sink != nil {
		if blob, err := json.Marshal(e); err == nil {
			j.sink.Write(append(blob, '\n'))
		}
	}
	for s := range l.subs {
		select {
		case s.ch <- e:
		default:
			j.dropped.Add(1)
		}
	}
	j.mu.Unlock()
}

// replayLocked returns the retained entries oldest-first. Callers hold j.mu.
func (l *jobLog) replayLocked() []Entry {
	out := make([]Entry, 0, len(l.ring))
	if len(l.ring) == cap(l.ring) && l.next > 0 {
		out = append(out, l.ring[l.next:]...)
		out = append(out, l.ring[:l.next]...)
	} else {
		out = append(out, l.ring...)
	}
	return out
}

// Replay returns the retained entries of a job, oldest first (nil for an
// unknown job).
func (j *Journal) Replay(jobID string) []Entry {
	j.mu.Lock()
	defer j.mu.Unlock()
	l := j.jobs[jobID]
	if l == nil {
		return nil
	}
	return l.replayLocked()
}

// Subscribe atomically snapshots a job's history and registers a live
// listener, so the caller sees every entry exactly once: first the
// returned history, then the channel, with no gap in between. The channel
// closes when cancel is called or the job is removed. cancel is idempotent
// and must be called to release the subscription.
func (j *Journal) Subscribe(jobID string) (history []Entry, ch <-chan Entry, cancel func()) {
	s := &subscriber{ch: make(chan Entry, subBuffer)}
	j.mu.Lock()
	l := j.logFor(jobID)
	history = l.replayLocked()
	l.subs[s] = struct{}{}
	j.mu.Unlock()

	cancel = func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if s.closed {
			return
		}
		s.closed = true
		close(s.ch)
		if l := j.jobs[jobID]; l != nil {
			delete(l.subs, s)
		}
	}
	return history, s.ch, cancel
}

// Remove drops every retained entry of a job and closes its live
// subscriptions — called when the job's record or cached result is
// evicted, so the journal never outlives the payload it describes.
func (j *Journal) Remove(jobID string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	l := j.jobs[jobID]
	if l == nil {
		return
	}
	delete(j.jobs, jobID)
	for s := range l.subs {
		if !s.closed {
			s.closed = true
			close(s.ch)
		}
	}
}

// Len returns the number of retained entries for a job.
func (j *Journal) Len(jobID string) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	if l := j.jobs[jobID]; l != nil {
		return len(l.ring)
	}
	return 0
}

// TotalLen returns the number of retained entries across all jobs.
func (j *Journal) TotalLen() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	var n int
	for _, l := range j.jobs {
		n += len(l.ring)
	}
	return n
}

// Subscribers returns the number of live subscriptions on a job.
func (j *Journal) Subscribers(jobID string) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	if l := j.jobs[jobID]; l != nil {
		return len(l.subs)
	}
	return 0
}

// Dropped returns how many live entries were discarded because a
// subscriber's buffer was full.
func (j *Journal) Dropped() int64 { return j.dropped.Load() }

// WriteJSON dumps the recorder as one JSON object — jobs sorted by id,
// entries oldest first — for /debug/events.
func (j *Journal) WriteJSON(w io.Writer) error {
	j.mu.Lock()
	ids := make([]string, 0, len(j.jobs))
	for id := range j.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	dump := make(map[string][]Entry, len(ids))
	for _, id := range ids {
		dump[id] = j.jobs[id].replayLocked()
	}
	dropped := j.dropped.Load()
	j.mu.Unlock()

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(map[string]any{
		"jobs":            dump,
		"job_count":       len(ids),
		"dropped_entries": dropped,
	}); err != nil {
		return fmt.Errorf("journal: dump: %w", err)
	}
	return nil
}
