package journal_test

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"rumornet/internal/abm"
	"rumornet/internal/degreedist"
	"rumornet/internal/graph"
	"rumornet/internal/obs"
	"rumornet/internal/obs/invariant"
	"rumornet/internal/obs/journal"
	"rumornet/internal/obs/trace"
	"rumornet/internal/ode"
)

// The instrumentation-overhead pairs recorded by scripts/bench.sh pr4: the
// pr3 solver hot loops (32-dim RK4 integration, 10k-node quenched ABM
// sweep) with no hook versus the full per-checkpoint flight-recorder path
// the service attaches — stage-span lookup, invariant monitoring and a
// journal append. The acceptance bound is <5% overhead on both pairs.

// benchSink replicates Service.progressSink's per-event observability
// work: one trace span per distinct stage (mutex-guarded map), an
// invariant check, and a ring append with the event's payload.
type benchSink struct {
	tracer  *trace.Tracer
	monitor *invariant.Monitor
	jnl     *journal.Journal

	mu    sync.Mutex
	spans map[string]*trace.Span
}

func newBenchSink() *benchSink {
	return &benchSink{
		tracer:  trace.New(1024),
		monitor: invariant.New(invariant.Config{}, nil),
		jnl:     journal.New(256, nil),
		spans:   make(map[string]*trace.Span),
	}
}

func (s *benchSink) hook(ev obs.Event) {
	s.mu.Lock()
	if _, ok := s.spans[ev.Stage]; !ok {
		s.spans[ev.Stage] = s.tracer.StartSpan("stage."+ev.Stage, trace.SpanContext{})
	}
	s.mu.Unlock()
	s.monitor.Observe(ev)
	s.jnl.Append(journal.Entry{
		JobID: "bench", Kind: journal.KindProgress, Stage: ev.Stage,
		Step: ev.Step, Total: ev.Total, T: ev.T, Value: ev.Value,
		Cost: ev.Cost,
	})
}

// decayRHS is the same linear test system the pr3 ODE pair integrates.
func decayRHS(_ float64, y, dydt []float64) {
	for i := range y {
		dydt[i] = -y[i]
	}
}

func benchODE(b *testing.B, opts *ode.Options) {
	y0 := make([]float64, 32)
	for i := range y0 {
		y0[i] = 1 + math.Sqrt(float64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ode.SolveFixed(decayRHS, y0, 0, 2, 0.001, &ode.RK4{}, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkODEJournalOff(b *testing.B) {
	benchODE(b, &ode.Options{Record: 64})
}

func BenchmarkODEJournalOn(b *testing.B) {
	sink := newBenchSink()
	benchODE(b, &ode.Options{
		Record: 64,
		Progress: func(step, total int, t float64, y []float64) {
			// Mirror core.Simulate's adapter: an O(n) scan filling the
			// invariant fields, then the service sink. The decay state is
			// positive everywhere, so the benign MinI keeps the monitor on
			// its no-violation fast path.
			minI := y[0]
			for _, v := range y[1:] {
				if v < minI {
					minI = v
				}
			}
			sink.hook(obs.Event{Stage: obs.StageODE, Step: step, Total: total,
				T: t, Value: 0.5, MinI: minI})
		},
	})
}

func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(11))
	seq, err := graph.PowerLawDegreeSequence(10000, 1.8, 1, 20, rng)
	if err != nil {
		b.Fatal(err)
	}
	g, err := graph.ConfigurationModel(seq, rng)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func benchABM(b *testing.B, prog obs.Progress) {
	g := benchGraph(b)
	cfg := abm.Config{
		Lambda:   degreedist.LambdaLinear(0.02),
		Omega:    degreedist.OmegaSaturating(0.5, 0.5),
		Eps1:     0.005,
		Eps2:     0.05,
		I0:       0.05,
		Dt:       0.5,
		Steps:    50,
		Mode:     abm.ModeQuenched,
		Progress: prog,
	}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := abm.Run(g, cfg, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkABMJournalOff(b *testing.B) {
	benchABM(b, nil)
}

func BenchmarkABMJournalOn(b *testing.B) {
	sink := newBenchSink()
	benchABM(b, sink.hook)
}
