package digg

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"rumornet/internal/degreedist"
)

func TestCalibrateGamma(t *testing.T) {
	gamma, err := CalibrateGamma(PaperMeanDegree, PaperMinDegree, PaperMaxDegree)
	if err != nil {
		t.Fatal(err)
	}
	// Analysis in DESIGN.md: the published Digg stats are consistent with a
	// truncated power law of exponent ≈ 1.5.
	if gamma < 1.3 || gamma > 1.7 {
		t.Errorf("calibrated gamma = %v, want ≈1.5", gamma)
	}
	// Verify the calibration actually hits the target mean.
	d := mustDist(t, gamma)
	if m := d.MeanDegree(); math.Abs(m-PaperMeanDegree) > 0.01 {
		t.Errorf("calibrated mean = %v, want %v", m, PaperMeanDegree)
	}
}

func TestCalibrateGammaErrors(t *testing.T) {
	if _, err := CalibrateGamma(24, 5, 5); err == nil {
		t.Error("degenerate range: want error")
	}
	if _, err := CalibrateGamma(1e6, 1, 995); err == nil {
		t.Error("unreachable mean: want error")
	}
	if _, err := CalibrateGamma(0.5, 1, 995); err == nil {
		t.Error("mean below kmin: want error")
	}
}

func TestSampleDegreeSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	seq, err := SampleDegreeSequence(PaperUsers, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != PaperUsers {
		t.Fatalf("len = %d", len(seq))
	}
	var (
		sum      int
		min, max = math.MaxInt, 0
	)
	for _, k := range seq {
		sum += k
		if k < min {
			min = k
		}
		if k > max {
			max = k
		}
	}
	if min != PaperMinDegree || max != PaperMaxDegree {
		t.Errorf("degree support [%d, %d], want [%d, %d]", min, max, PaperMinDegree, PaperMaxDegree)
	}
	mean := float64(sum) / float64(len(seq))
	if math.Abs(mean-PaperMeanDegree) > 1.5 {
		t.Errorf("mean degree = %v, want ≈%v", mean, PaperMeanDegree)
	}
	if _, err := SampleDegreeSequence(1, rng); err == nil {
		t.Error("n=1: want error")
	}
}

func TestDistMatchesPaperGroups(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d, err := Dist(rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// The paper reports 848 distinct degree groups; the sampled count is
	// stochastic but should land in the same regime.
	if d.N() < PaperGroups*8/10 || d.N() > PaperMaxDegree {
		t.Errorf("groups = %d, want ≈%d", d.N(), PaperGroups)
	}
	if math.Abs(d.MeanDegree()-PaperMeanDegree) > 1.5 {
		t.Errorf("mean degree = %v, want ≈%v", d.MeanDegree(), PaperMeanDegree)
	}
}

func TestGenerateMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full 71k-node generation in -short mode")
	}
	rng := rand.New(rand.NewSource(1))
	g, err := Generate(rng)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(g)
	if ok, why := s.MatchesPaper(); !ok {
		t.Errorf("synthetic graph does not match paper: %s (stats: %s)", why, s)
	}
	// A follower graph at this density must be almost fully weakly
	// connected.
	if s.LargestWCC < 9*PaperUsers/10 {
		t.Errorf("largest WCC = %d, want ≥ 90%% of %d", s.LargestWCC, PaperUsers)
	}
}

func TestMatchesPaperDetectsMismatch(t *testing.T) {
	good := Stats{
		Users: PaperUsers, Links: PaperLinks, Groups: PaperGroups,
		MinDegree: 1, MaxDegree: 995, MeanDegree: 24,
	}
	if ok, why := good.MatchesPaper(); !ok {
		t.Fatalf("paper stats rejected: %s", why)
	}
	cases := []struct {
		name   string
		mutate func(*Stats)
	}{
		{"users", func(s *Stats) { s.Users = 10 }},
		{"links", func(s *Stats) { s.Links = 10 }},
		{"max", func(s *Stats) { s.MaxDegree = 10 }},
		{"min", func(s *Stats) { s.MinDegree = 3 }},
		{"mean", func(s *Stats) { s.MeanDegree = 99 }},
		{"groups", func(s *Stats) { s.Groups = 10 }},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			s := good
			tt.mutate(&s)
			if ok, _ := s.MatchesPaper(); ok {
				t.Errorf("mutated %s still matches", tt.name)
			}
		})
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Users: 5, Links: 6, Groups: 2, MinDegree: 1, MaxDegree: 3, MeanDegree: 1.2}
	if got := s.String(); !strings.Contains(got, "users=5") {
		t.Errorf("String() = %q", got)
	}
}

func TestLoadFriendsCSV(t *testing.T) {
	in := strings.Join([]string{
		"mutual,friend_date,user_id,friend_id", // header
		"1,1254192988,10,20",                   // mutual: both arcs
		"0,1254192989,10,30",                   // one arc 30→10
		"# trailing comment",
		"",
	}, "\n")
	g, ids, err := LoadFriendsCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 {
		t.Fatalf("nodes = %d, want 3", g.NumNodes())
	}
	if g.NumEdges() != 3 {
		t.Errorf("edges = %d, want 3 (mutual pair + single)", g.NumEdges())
	}
	// First-seen order: friend=20, user=10, then friend=30.
	if ids[0] != 20 || ids[1] != 10 || ids[2] != 30 {
		t.Errorf("ids = %v", ids)
	}
	// Edge direction: friend → user.
	found := false
	for _, v := range g.OutNeighbors(2) { // node 2 is raw id 30
		if v == 1 { // node 1 is raw id 10
			found = true
		}
	}
	if !found {
		t.Error("missing arc 30 → 10")
	}
}

func TestLoadFriendsCSVErrors(t *testing.T) {
	cases := []string{
		"1,2,3\n",            // too few fields
		"1,x,y,z\nbad,1,2,3", // bad mutual flag past header
		"0,1,abc,3\n",        // bad user id
		"0,1,3,abc\n",        // bad friend id
	}
	for _, in := range cases {
		if _, _, err := LoadFriendsCSV(strings.NewReader(in)); err == nil {
			t.Errorf("LoadFriendsCSV(%q): want error", in)
		}
	}
}

// Property: calibration hits any achievable target mean.
func TestQuickCalibration(t *testing.T) {
	f := func(raw uint8) bool {
		target := 2 + float64(raw)/255*80 // [2, 82]
		gamma, err := CalibrateGamma(target, 1, 995)
		if err != nil {
			return false
		}
		d, err := degreedist.TruncatedPowerLaw(gamma, 1, 995)
		if err != nil {
			return false
		}
		return math.Abs(d.MeanDegree()-target) < 0.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func mustDist(t *testing.T, gamma float64) *degreedist.Dist {
	t.Helper()
	d, err := degreedist.TruncatedPowerLaw(gamma, PaperMinDegree, PaperMaxDegree)
	if err != nil {
		t.Fatalf("TruncatedPowerLaw(%v): %v", gamma, err)
	}
	return d
}
